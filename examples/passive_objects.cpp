//===- examples/passive_objects.cpp - Section 3.1's passive objects -------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The other half of the SCOOPP object model: passive objects.  "Passive
/// objects are supported to make easier the reuse of existing code.
/// These objects are placed in the context of the parallel object that
/// created them, and only copies of them are allowed to move between
/// parallel objects."
///
/// A passive binary tree (plain sequential code) is built on the driver
/// node, then *copies* of it are shipped into a parallel object on
/// another node, which sums and locally mutates its copy; the driver's
/// original stays untouched.
///
//===----------------------------------------------------------------------===//

#include "core/ObjectManager.h"
#include "core/Passive.h"
#include "core/Proxy.h"
#include "core/World.h"

#include <cstdio>

using namespace parcs;

namespace {

/// A reusable passive class: a binary tree node.
class TreeNode : public serial::SerializableObject {
public:
  static constexpr const char *TypeNameStr = "example.TreeNode";
  int32_t Value = 0;
  TreeNode *Left = nullptr;
  TreeNode *Right = nullptr;

  std::string_view typeName() const override { return TypeNameStr; }
  void writeFields(serial::ObjectWriter &Writer) const override {
    Writer.write(Value);
    Writer.writeRef(Left);
    Writer.writeRef(Right);
  }
  bool readFields(serial::ObjectReader &Reader) override {
    return Reader.read(Value) && Reader.readRefAs(Left) &&
           Reader.readRefAs(Right);
  }
};

int32_t sumTree(const TreeNode *Node) {
  if (!Node)
    return 0;
  return Node->Value + sumTree(Node->Left) + sumTree(Node->Right);
}

/// A parallel object that consumes tree copies.
class TreeCruncher : public remoting::CallHandler {
public:
  explicit TreeCruncher(vm::Node &Host) : Host(Host) {}

  sim::Task<ErrorOr<remoting::Bytes>>
  handleCall(std::string_view Method, const remoting::Bytes &Args) override {
    if (Method != "crunch")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    serial::ObjectPool Pool; // The copy lives in this grain's context.
    auto Root = scoopp::decodePassiveGraph(Args, Pool);
    if (!Root)
      co_return Root.error();
    auto *Tree = serial::objectCast<TreeNode>(*Root);
    if (!Tree)
      co_return Error(ErrorCode::MalformedMessage, "expected a TreeNode");
    co_await Host.compute(sim::SimTime::microseconds(50));
    int32_t Sum = sumTree(Tree);
    Tree->Value = -9999; // Mutating the copy: invisible to the sender.
    co_return serial::encodeValues(Sum);
  }

private:
  vm::Node &Host;
};

TreeNode *buildTree(serial::ObjectPool &Pool, int Depth, int32_t &Counter) {
  if (Depth == 0)
    return nullptr;
  TreeNode *Node = Pool.create<TreeNode>();
  Node->Value = Counter++;
  Node->Left = buildTree(Pool, Depth - 1, Counter);
  Node->Right = buildTree(Pool, Depth - 1, Counter);
  return Node;
}

sim::Task<void> driver(scoopp::ScooppRuntime &Runtime) {
  // Plain sequential code builds the passive structure.
  serial::ObjectPool Mine;
  int32_t Counter = 1;
  TreeNode *Tree = buildTree(Mine, 4, Counter);
  std::printf("built a passive tree of %d nodes, local sum = %d\n",
              Counter - 1, sumTree(Tree));

  scoopp::ProxyBase Cruncher(Runtime, 0);
  Error E = co_await Cruncher.create("TreeCruncher");
  if (E) {
    std::printf("create failed: %s\n", E.str().c_str());
    co_return;
  }
  std::printf("TreeCruncher placed on node %d\n", Cruncher.ref().Node);

  // Ship two copies; the remote mutates each copy, never our original.
  for (int Round = 1; Round <= 2; ++Round) {
    auto Sum = co_await Cruncher.invokeSync(
        "crunch", scoopp::encodePassiveGraph(Tree));
    int32_t Value = 0;
    if (Sum && serial::decodeValues(*Sum, Value))
      std::printf("round %d: remote sum of the copy = %d, local root "
                  "still = %d\n",
                  Round, Value, Tree->Value);
  }
  std::printf("virtual time: %s\n", Runtime.sim().now().str().c_str());
}

} // namespace

int main() {
  serial::TypeRegistry::global().registerType<TreeNode>();
  scoopp::ParallelClassRegistry Registry;
  Registry.registerClass(
      {"TreeCruncher",
       [](scoopp::ScooppRuntime &, vm::Node &Host)
           -> std::shared_ptr<remoting::CallHandler> {
         return std::make_shared<TreeCruncher>(Host);
       }});
  scoopp::ScooppWorld World(2, std::move(Registry));
  World.runMain([](scoopp::ScooppRuntime &Runtime) -> sim::Task<void> {
    return driver(Runtime);
  });
  return 0;
}
