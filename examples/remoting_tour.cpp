//===- examples/remoting_tour.cpp - Section 2 as runnable code ------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 2 comparison (Figs. 1 and 2) as a program: the
/// same DivideServer exposed once the Java RMI way (explicit export +
/// registry bind + lookup) and once the C# remoting way (well-known
/// service type + Activator.GetObject), plus C#'s asynchronous delegates
/// (BeginInvoke / EndInvoke) which "in Java ... must be explicitly
/// programmed using threads".
///
//===----------------------------------------------------------------------===//

#include "net/Network.h"
#include "remoting/Remoting.h"
#include "rmi/Rmi.h"
#include "vm/Cluster.h"

#include <cstdio>

using namespace parcs;

namespace {

/// Fig. 1/2's divide server, usable by both stacks.
class DivideServer : public remoting::CallHandler {
public:
  explicit DivideServer(vm::Node &Host) : Host(Host) {}

  sim::Task<ErrorOr<remoting::Bytes>>
  handleCall(std::string_view Method, const remoting::Bytes &Args) override {
    if (Method != "divide")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    double A = 0, B = 0;
    if (!serial::decodeValues(Args, A, B))
      co_return Error(ErrorCode::MalformedMessage, "divide args");
    co_await Host.compute(sim::SimTime::microseconds(1));
    co_return serial::encodeValues(A / B);
  }

private:
  vm::Node &Host;
};

//===----------------------------------------------------------------------===//
// The Java RMI way (paper Fig. 1)
//===----------------------------------------------------------------------===//

sim::Task<void> rmiFlavour(vm::Cluster &Machines,
                           remoting::RpcEndpoint &Server,
                           remoting::RpcEndpoint &Client) {
  // Step 2 of the paper's list: instantiate, export, register by name.
  Server.publish("DivideServerImpl",
                 std::make_shared<DivideServer>(Machines.node(1)));
  Error Bind = co_await rmi::Naming::rebind(
      Server, "rmi://node0:1099/DivideServer", "DivideServerImpl");
  if (Bind) {
    std::printf("rmi bind failed: %s\n", Bind.str().c_str());
    co_return;
  }

  // Step 3: the client contacts the name server for a reference.
  sim::SimTime Start = Machines.sim().now();
  auto Handle = co_await rmi::Naming::lookup(
      Client, "rmi://node0:1099/DivideServer");
  if (!Handle) {
    std::printf("rmi lookup failed: %s\n", Handle.error().str().c_str());
    co_return;
  }
  ErrorOr<double> Result =
      co_await Handle->invokeTyped<double>("divide", 355.0, 113.0);
  sim::SimTime Elapsed = Machines.sim().now() - Start;
  if (Result)
    std::printf("Java RMI:      355/113 = %.6f  (lookup + call took %s)\n",
                *Result, Elapsed.str().c_str());
}

//===----------------------------------------------------------------------===//
// The C# remoting way (paper Fig. 2)
//===----------------------------------------------------------------------===//

sim::Task<void> remotingFlavour(vm::Cluster &Machines,
                                remoting::RpcEndpoint &Server,
                                remoting::RpcEndpoint &Client) {
  // The server only registers a factory (WellKnownObjectMode.Singleton):
  // no explicit instance, no name-server round trip for the client.
  vm::Node &HostNode = Machines.node(1);
  Server.publishWellKnown(
      "DivideServer",
      [&HostNode] { return std::make_shared<DivideServer>(HostNode); },
      remoting::WellKnownObjectMode::Singleton);

  // Activator.GetObject is purely local: it just builds a proxy.
  sim::SimTime Start = Machines.sim().now();
  auto Handle =
      remoting::getObject(Client, "tcp://node1:1050/DivideServer");
  if (!Handle) {
    std::printf("getObject failed: %s\n", Handle.error().str().c_str());
    co_return;
  }
  ErrorOr<double> Result =
      co_await Handle->invokeTyped<double>("divide", 355.0, 113.0);
  sim::SimTime Elapsed = Machines.sim().now() - Start;
  if (Result)
    std::printf("C# remoting:   355/113 = %.6f  (GetObject + call took "
                "%s)\n",
                *Result, Elapsed.str().c_str());

  // Asynchronous delegates: kick off two divisions in the background,
  // then EndInvoke both.
  auto R1 = remoting::beginInvoke<double>(Machines.sim(), *Handle, "divide",
                                          1.0, 3.0);
  auto R2 = remoting::beginInvoke<double>(Machines.sim(), *Handle, "divide",
                                          2.0, 3.0);
  ErrorOr<double> V1 = co_await R1;
  ErrorOr<double> V2 = co_await R2;
  if (V1 && V2)
    std::printf("delegates:     1/3 = %.4f and 2/3 = %.4f (overlapped "
                "BeginInvoke)\n",
                *V1, *V2);
}

} // namespace

int main() {
  {
    vm::Cluster Machines(2, vm::VmKind::SunJvm142);
    net::Network Net(Machines.sim(), 2);
    remoting::RpcEndpoint Server(
        Machines.node(1), Net,
        remoting::stackProfile(remoting::StackKind::JavaRmi),
        rmi::RegistryPort);
    remoting::RpcEndpoint Client(
        Machines.node(0), Net,
        remoting::stackProfile(remoting::StackKind::JavaRmi),
        rmi::RegistryPort);
    rmi::installRegistry(Client); // rmiregistry runs on node 0.
    Machines.sim().spawn(rmiFlavour(Machines, Server, Client));
    Machines.sim().run();
  }
  {
    vm::Cluster Machines(2, vm::VmKind::MonoVm117);
    net::Network Net(Machines.sim(), 2);
    remoting::RpcEndpoint Server(
        Machines.node(1), Net,
        remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117),
        1050);
    remoting::RpcEndpoint Client(
        Machines.node(0), Net,
        remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117),
        1050);
    Machines.sim().spawn(remotingFlavour(Machines, Server, Client));
    Machines.sim().run();
  }
  std::printf("\nnote the paper's point: remoting needs no name-server "
              "round trip and\nno generated stubs, and delegates give "
              "asynchrony for free\n");
  return 0;
}
