//===- examples/prime_pipeline.cpp - the paper's running example ----------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PrimeServer/PrimeFilter pipeline the paper uses throughout
/// Section 3: a dynamically growing chain of parallel objects sieving
/// primes.  Runs the same workload under three grain-size regimes and
/// shows how SCOOPP's adaptations change the traffic without changing
/// the answer.
///
/// Usage: prime_pipeline [maxN]   (default 3000)
///
//===----------------------------------------------------------------------===//

#include "apps/sieve/Sieve.h"
#include "core/ObjectManager.h"
#include "net/Network.h"
#include "vm/Cluster.h"

#include <cstdio>
#include <cstdlib>

using namespace parcs;
using namespace parcs::apps;

namespace {

struct Outcome {
  size_t PrimeCount = 0;
  int Filters = 0;
  double Seconds = 0;
  uint64_t Messages = 0;
  uint64_t Packed = 0;
  uint64_t Local = 0;
  uint64_t Remote = 0;
};

Outcome runRegime(std::shared_ptr<const sieve::SieveJob> Job,
                  scoopp::GrainPolicy Grain) {
  vm::Cluster Machines(3, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), Machines.nodeCount());
  scoopp::ParallelClassRegistry Registry;
  sieve::registerSieveClasses(Registry, Job);
  scoopp::ScooppConfig Config;
  Config.Grain = Grain;
  scoopp::ScooppRuntime Runtime(Machines, Net, std::move(Registry), Config);

  Outcome Out;
  struct Driver {
    static sim::Task<void> run(scoopp::ScooppRuntime &Runtime,
                               std::shared_ptr<const sieve::SieveJob> Job,
                               Outcome &Out) {
      auto Result = co_await sieve::runSievePipeline(Runtime, 0, Job);
      if (!Result) {
        std::printf("pipeline failed: %s\n", Result.error().str().c_str());
        co_return;
      }
      Out.PrimeCount = Result->Primes.size();
      Out.Filters = Result->FilterCount;
      Out.Seconds = Runtime.sim().now().toSecondsF();
    }
  };
  Machines.sim().spawn(Driver::run(Runtime, Job, Out));
  Machines.sim().run();
  Out.Messages = Net.messagesDelivered();
  Out.Packed = Runtime.stats().PackedMessages;
  Out.Local = Runtime.stats().LocalCreations;
  Out.Remote = Runtime.stats().RemoteCreations;
  return Out;
}

void show(const char *Name, const Outcome &Out) {
  std::printf("%-22s primes=%zu filters=%d time=%.3fs messages=%llu "
              "packed=%llu creations(local/remote)=%llu/%llu\n",
              Name, Out.PrimeCount, Out.Filters, Out.Seconds,
              static_cast<unsigned long long>(Out.Messages),
              static_cast<unsigned long long>(Out.Packed),
              static_cast<unsigned long long>(Out.Local),
              static_cast<unsigned long long>(Out.Remote));
}

} // namespace

int main(int Argc, char **Argv) {
  auto Job = std::make_shared<sieve::SieveJob>();
  Job->MaxN = Argc >= 2 ? std::atoi(Argv[1]) : 3000;
  if (Job->MaxN < 2) {
    std::printf("usage: prime_pipeline [maxN >= 2]\n");
    return 1;
  }
  Job->FilterCapacity = 8;
  Job->BatchSize = 16;

  std::printf("sieving primes up to %d over a PrimeFilter pipeline "
              "(3 dual-CPU Mono nodes)\n\n",
              Job->MaxN);

  scoopp::GrainPolicy Fine; // Every filter is a distributed object.
  show("fine-grained", runRegime(Job, Fine));

  scoopp::GrainPolicy Aggregating;
  Aggregating.MaxCallsPerMessage = 16;
  show("call aggregation x16", runRegime(Job, Aggregating));

  scoopp::GrainPolicy Adaptive;
  Adaptive.Adaptive = true;
  Adaptive.MaxCallsPerMessage = 32;
  show("adaptive (SCOOPP)", runRegime(Job, Adaptive));

  scoopp::GrainPolicy Packed;
  Packed.AgglomerateObjects = true;
  show("fully agglomerated", runRegime(Job, Packed));

  sieve::SequentialSieveResult Seq =
      sieve::sequentialSieve(*Job, vm::VmKind::MonoVm117);
  std::printf("\nsequential reference: primes=%zu time=%.2fms (Mono VM)\n",
              Seq.Primes.size(), Seq.Seconds * 1e3);
  return 0;
}
