//===- examples/quickstart.cpp - ParC# in 5 minutes -----------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: boot a simulated 3-node Mono cluster, define one parallel
/// class (a counter), create it through the SCOOPP runtime, call it
/// asynchronously and synchronously, and read the runtime's statistics.
///
/// Everything runs in *virtual time* on a deterministic simulator: the
/// printed times are the times the paper's testbed would observe, and a
/// re-run produces identical output.  The same determinism holds on the
/// parallel simulation kernel (PARCS_SIM_THREADS=N, see the PDES section
/// of docs/perf.md): goldens are byte-identical at any thread count.
///
//===----------------------------------------------------------------------===//

#include "core/ObjectManager.h"
#include "core/Proxy.h"
#include "core/Scoopp.h"
#include "net/Network.h"
#include "vm/Cluster.h"

#include <cstdio>

using namespace parcs;

namespace {

/// The implementation object (IO): what the paper writes as
/// `class CounterImpl : MarshalByRefObject`.
class CounterImpl : public remoting::CallHandler {
public:
  explicit CounterImpl(vm::Node &Host) : Host(Host) {}

  sim::Task<ErrorOr<remoting::Bytes>>
  handleCall(std::string_view Method, const remoting::Bytes &Args) override {
    if (Method == "add") {
      int32_t Value = 0;
      if (!serial::decodeValues(Args, Value))
        co_return Error(ErrorCode::MalformedMessage, "add args");
      co_await Host.compute(sim::SimTime::microseconds(3));
      Sum += Value;
      co_return remoting::Bytes{};
    }
    if (Method == "total")
      co_return serial::encodeValues(Sum);
    co_return Error(ErrorCode::UnknownMethod, std::string(Method));
  }

private:
  vm::Node &Host;
  int32_t Sum = 0;
};

/// The proxy object (PO): what the paper's preprocessor generates (see
/// the parcgen_demo example for the automated version).
class CounterProxy : public scoopp::ProxyBase {
public:
  using ProxyBase::ProxyBase;
  sim::Task<Error> create() { return ProxyBase::create("Counter"); }
  sim::Task<void> add(int32_t Value) { // Asynchronous (void).
    return invokeAsync("add", serial::encodeValues(Value));
  }
  sim::Task<ErrorOr<int32_t>> total() { // Synchronous (returns a value).
    return invokeSyncTyped<int32_t>("total");
  }
};

sim::Task<void> mainProgram(scoopp::ScooppRuntime &Runtime) {
  // Create a parallel object; the object manager places it on a node.
  CounterProxy Counter(Runtime, /*HomeNode=*/0);
  Error E = co_await Counter.create();
  if (E) {
    std::printf("create failed: %s\n", E.str().c_str());
    co_return;
  }
  std::printf("counter placed on node %d (home is node 0)\n",
              Counter.ref().Node);

  // Asynchronous calls: buffered by method-call aggregation, shipped as
  // one packed message once 8 are pending.
  for (int32_t I = 1; I <= 20; ++I)
    co_await Counter.add(I);

  // A synchronous call flushes pending aggregates first, so it observes
  // every add.
  ErrorOr<int32_t> Total = co_await Counter.total();
  if (Total)
    std::printf("total = %d (expected 210) at virtual time %s\n", *Total,
                Runtime.sim().now().str().c_str());
}

} // namespace

int main() {
  // The paper's testbed shape: dual-CPU nodes, 100 Mbit Ethernet,
  // Mono 1.1.7.
  vm::Cluster Machines(3, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), Machines.nodeCount());

  scoopp::ParallelClassRegistry Registry;
  Registry.registerClass(
      {"Counter",
       [](scoopp::ScooppRuntime &, vm::Node &Host)
           -> std::shared_ptr<remoting::CallHandler> {
         return std::make_shared<CounterImpl>(Host);
       }});

  scoopp::ScooppConfig Config;
  Config.Grain.MaxCallsPerMessage = 8; // Method-call aggregation.
  scoopp::ScooppRuntime Runtime(Machines, Net, std::move(Registry), Config);

  Machines.sim().spawn(mainProgram(Runtime));
  Machines.sim().run();

  const scoopp::ScooppStats &Stats = Runtime.stats();
  std::printf("stats: %llu async calls in %llu packed messages, "
              "%llu sync calls, %llu network messages\n",
              static_cast<unsigned long long>(Stats.RemoteAsyncCalls),
              static_cast<unsigned long long>(Stats.PackedMessages),
              static_cast<unsigned long long>(Stats.RemoteSyncCalls),
              static_cast<unsigned long long>(Net.messagesDelivered()));
  return 0;
}
