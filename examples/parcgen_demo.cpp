//===- examples/parcgen_demo.cpp - the preprocessor flow ------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's preprocessor flow, end to end: examples/pci/matrix.pci
/// declares a parallel class in the .pci dialect; the build invokes the
/// `parcgen` tool on it (see examples/CMakeLists.txt), producing
/// MatrixGen.h with the proxy (PO), the skeleton (IO base) and the
/// registration helper; this file implements the skeleton and drives a
/// small row-sum farm through the generated proxy.
///
//===----------------------------------------------------------------------===//

#include "MatrixGen.h"
#include "core/ObjectManager.h"
#include "net/Network.h"
#include "vm/Cluster.h"

#include <cmath>
#include <cstdio>

using namespace parcs;
using examples::matrix::Row;
using examples::matrix::RowWorkerProxy;
using examples::matrix::RowWorkerSkeleton;

namespace {

/// Implementation of the generated skeleton: accumulates the squared
/// norm of every row (chain) it receives.  The parameter is a *copy* of
/// the caller's passive Row graph, decoded for the duration of the call.
class RowWorkerImpl : public RowWorkerSkeleton {
public:
  using RowWorkerSkeleton::RowWorkerSkeleton;

  sim::Task<Unit> accumulate(Row *First) override {
    for (const Row *Cursor = First; Cursor; Cursor = Cursor->next) {
      double RowSum = 0;
      for (double V : Cursor->values)
        RowSum += V * V;
      // Charge FP work proportional to the row length.
      co_await Host.computeWork(
          vm::WorkKind::FloatingPoint,
          sim::SimTime::microseconds(
              static_cast<int64_t>(Cursor->values.size())));
      SumOfSquares += RowSum;
      ++RowCount;
    }
    co_return Unit();
  }

  sim::Task<double> norm() override { co_return SumOfSquares; }
  sim::Task<int32_t> rows() override { co_return RowCount; }

private:
  double SumOfSquares = 0;
  int32_t RowCount = 0;
};

sim::Task<void> farm(scoopp::ScooppRuntime &Runtime, int Workers, int Rows,
                     int Cols) {
  std::vector<std::unique_ptr<RowWorkerProxy>> Proxies;
  for (int W = 0; W < Workers; ++W) {
    auto Proxy = std::make_unique<RowWorkerProxy>(Runtime, 0);
    Error E = co_await Proxy->create();
    if (E) {
      std::printf("create failed: %s\n", E.str().c_str());
      co_return;
    }
    std::printf("worker %d placed on node %d\n", W, Proxy->ref().Node);
    Proxies.push_back(std::move(Proxy));
  }

  // Deal rows round-robin through the generated async method: each call
  // ships a copy of a two-row passive chain.
  double Expected = 0;
  serial::ObjectPool Pool;
  for (int R = 0; R < Rows; R += 2) {
    Row *First = Pool.create<Row>();
    Row *Second = Pool.create<Row>();
    First->next = Second;
    for (Row *Link : {First, Second}) {
      Link->values.resize(static_cast<size_t>(Cols));
      for (int C = 0; C < Cols; ++C) {
        double V = 0.25 * (R + 1) + 0.5 * C;
        Link->values[static_cast<size_t>(C)] = V;
        Expected += V * V;
      }
    }
    co_await Proxies[static_cast<size_t>((R / 2) % Workers)]->accumulate(
        First);
  }

  // Generated sync methods flush the aggregation buffers and collect.
  double Total = 0;
  int TotalRows = 0;
  for (auto &Proxy : Proxies) {
    auto Partial = co_await Proxy->norm();
    auto Count = co_await Proxy->rows();
    if (Partial && Count) {
      Total += *Partial;
      TotalRows += *Count;
    }
  }
  std::printf("Frobenius norm^2 = %.3f (expected %.3f, %s), rows = %d\n",
              Total, Expected,
              std::fabs(Total - Expected) < 1e-6 ? "ok" : "MISMATCH",
              TotalRows);
  std::printf("virtual time: %s\n", Runtime.sim().now().str().c_str());
}

} // namespace

int main() {
  examples::matrix::registerRowPassive(serial::TypeRegistry::global());
  vm::Cluster Machines(3, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), Machines.nodeCount());
  scoopp::ParallelClassRegistry Registry;
  examples::matrix::registerRowWorkerClass<RowWorkerImpl>(Registry);
  scoopp::ScooppConfig Config;
  Config.Grain.MaxCallsPerMessage = 4;
  scoopp::ScooppRuntime Runtime(Machines, Net, std::move(Registry), Config);

  Machines.sim().spawn(farm(Runtime, /*Workers=*/3, /*Rows=*/24,
                            /*Cols=*/64));
  Machines.sim().run();
  return 0;
}
