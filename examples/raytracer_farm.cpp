//===- examples/raytracer_farm.cpp - the paper's Fig. 9 workload ----------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's high-level application: the Java Grande ray tracer,
/// farm-parallelised over ParC# parallel objects, compared against the
/// Java RMI build.  Renders a real image (written to raytracer_out.ppm),
/// verifies the farms produced the same pixels as a sequential render,
/// and prints the virtual execution times.
///
/// Usage: raytracer_farm [width height processors]   (default 160x120, 4)
///
//===----------------------------------------------------------------------===//

#include "apps/ray/Farm.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>

using namespace parcs;
using namespace parcs::apps::ray;

static void writePpm(const Scene &S, int Width, int Height,
                     const char *Path) {
  std::FILE *Out = std::fopen(Path, "wb");
  if (!Out) {
    std::printf("cannot write %s\n", Path);
    return;
  }
  std::fprintf(Out, "P6\n%d %d\n255\n", Width, Height);
  for (int Y = 0; Y < Height; ++Y) {
    LineResult Line = S.renderLine(Y, Width, Height);
    std::fwrite(Line.Rgb.data(), 1, Line.Rgb.size(), Out);
  }
  std::fclose(Out);
  std::printf("wrote %s (%dx%d)\n", Path, Width, Height);
}

int main(int Argc, char **Argv) {
  int Width = 160, Height = 120, Processors = 4;
  if (Argc >= 3) {
    Width = std::atoi(Argv[1]);
    Height = std::atoi(Argv[2]);
  }
  if (Argc >= 4)
    Processors = std::atoi(Argv[3]);
  if (Width <= 0 || Height <= 0 || Processors <= 0) {
    std::printf("usage: raytracer_farm [width height processors]\n");
    return 1;
  }

  auto Job = std::make_shared<RayJob>();
  Job->SceneData = Scene::javaGrande(4);
  Job->Width = Width;
  Job->Height = Height;
  Job->LinesPerTask = std::max(1, Height / 20);
  // Scale the virtual cost as if this were the paper's 500x500 / 100 s
  // frame.
  Job->NsPerOp = calibrateNsPerOp(Job->SceneData, Width, Height,
                                  100.0 * (static_cast<double>(Width) *
                                           Height) /
                                      (500.0 * 500.0));

  SequentialResult Seq = sequentialRender(*Job, vm::VmKind::SunJvm142);
  std::printf("sequential (Sun JVM): %.1f virtual seconds\n", Seq.Seconds);

  FarmConfig Config;
  Config.Processors = Processors;
  FarmResult Parcs = runScooppRayFarm(Job, Config);
  FarmResult Rmi = runRmiRayFarm(Job, Config);

  // The same farm with call aggregation on: render calls to a worker are
  // packed up to 4 per wire message, trading call latency for framing.
  scoopp::GrainPolicy Grain;
  Grain.MaxCallsPerMessage = 4;
  FarmResult Agg = runScooppRayFarm(Job, Config, Grain);

  std::printf("ParC# farm (%d processors): %.1f s  [checksum %s]\n",
              Processors, Parcs.Elapsed.toSecondsF(),
              Parcs.Checksum == Seq.Checksum ? "ok" : "MISMATCH");
  std::printf("ParC# farm, aggregation x4: %.1f s  [checksum %s]\n",
              Agg.Elapsed.toSecondsF(),
              Agg.Checksum == Seq.Checksum ? "ok" : "MISMATCH");
  std::printf("Java RMI farm (%d processors): %.1f s  [checksum %s]\n",
              Processors, Rmi.Elapsed.toSecondsF(),
              Rmi.Checksum == Seq.Checksum ? "ok" : "MISMATCH");
  std::printf("ParC#/RMI ratio: %.2f (paper: ~1.4 from the Mono VM)\n",
              Parcs.Elapsed.toSecondsF() / Rmi.Elapsed.toSecondsF());

  writePpm(Job->SceneData, Width, Height, "raytracer_out.ppm");
  if (!trace::enabled())
    std::printf("hint: PARCS_TRACE=ray.trace.json %s %d %d %d writes a "
                "Chrome/Perfetto trace of the farms\n",
                Argv[0], Width, Height, Processors);
  return 0;
}
