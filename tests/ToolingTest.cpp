//===- tests/ToolingTest.cpp - parcgen tool + runtime dynamics ------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File-level tests of the parcgen tool entry point (generate / check /
/// dump-ast over real files) and dynamics of the runtime's grain
/// estimator that the unit suites don't reach.
///
//===----------------------------------------------------------------------===//

#include "core/ObjectManager.h"
#include "parcgen/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace parcs;

namespace {

/// Writes \p Content to a fresh temp file and returns its path.
std::string writeTemp(const std::string &Name, const std::string &Content) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream Out(Path);
  Out << Content;
  return Path;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

//===----------------------------------------------------------------------===//
// parcgen tool entry
//===----------------------------------------------------------------------===//

TEST(ParcgenToolTest, GenerateModeWritesHeader) {
  std::string In = writeTemp("tool_gen.pci",
                             "module t;\nparallel class W { void go(); }\n");
  std::string Out = ::testing::TempDir() + "tool_gen.h";
  EXPECT_EQ(pcc::runParcgenTool(In, Out), 0);
  std::string Code = slurp(Out);
  EXPECT_NE(Code.find("class WProxy"), std::string::npos);
  EXPECT_NE(Code.find("class WSkeleton"), std::string::npos);
}

TEST(ParcgenToolTest, GenerateModeFailsOnBadSource) {
  std::string In =
      writeTemp("tool_bad.pci", "parallel class W { async int bad(); }\n");
  std::string Out = ::testing::TempDir() + "tool_bad.h";
  std::remove(Out.c_str());
  EXPECT_NE(pcc::runParcgenTool(In, Out), 0);
  EXPECT_TRUE(slurp(Out).empty()) << "no output on failed compile";
}

TEST(ParcgenToolTest, CheckModeWritesNothing) {
  std::string In =
      writeTemp("tool_check.pci", "parallel class W { void go(); }\n");
  EXPECT_EQ(pcc::runParcgenTool(In, "", pcc::ToolMode::Check), 0);
}

TEST(ParcgenToolTest, CheckModeReportsErrors) {
  std::string In =
      writeTemp("tool_check_bad.pci", "parallel class W { async int x(); }");
  EXPECT_NE(pcc::runParcgenTool(In, "", pcc::ToolMode::Check), 0);
}

TEST(ParcgenToolTest, MissingInputFails) {
  EXPECT_NE(pcc::runParcgenTool("/nonexistent/x.pci", "/tmp/x.h"), 0);
}

//===----------------------------------------------------------------------===//
// Grain estimator dynamics
//===----------------------------------------------------------------------===//

TEST(GrainEstimatorTest, ConvergesToStableWorkload) {
  scoopp::GrainEstimator Est;
  EXPECT_FALSE(Est.hasData());
  for (int I = 0; I < 100; ++I)
    Est.note(sim::SimTime::microseconds(200));
  EXPECT_TRUE(Est.hasData());
  EXPECT_NEAR(Est.average().toMicrosF(), 200.0, 1.0);
}

TEST(GrainEstimatorTest, TracksShiftingWorkload) {
  scoopp::GrainEstimator Est;
  for (int I = 0; I < 50; ++I)
    Est.note(sim::SimTime::microseconds(100));
  for (int I = 0; I < 50; ++I)
    Est.note(sim::SimTime::milliseconds(10));
  // The EWMA must have moved decisively toward the new regime.
  EXPECT_GT(Est.average().toMicrosF(), 5000.0);
}

TEST(GrainEstimatorTest, FirstSampleSeedsAverage) {
  scoopp::GrainEstimator Est;
  Est.note(sim::SimTime::microseconds(700));
  EXPECT_NEAR(Est.average().toMicrosF(), 700.0, 1e-9);
}

} // namespace
