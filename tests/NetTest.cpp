//===- tests/NetTest.cpp - network model tests ----------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "net/Network.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace parcs;
using namespace parcs::net;
using namespace parcs::sim;

namespace {

std::vector<uint8_t> bytes(size_t N, uint8_t Fill = 0xab) {
  return std::vector<uint8_t>(N, Fill);
}

Task<void> recvOne(Channel<Message> &Port, Message &Out, Simulator &Sim,
                   SimTime &At) {
  Out = co_await Port.recv();
  At = Sim.now();
}

//===----------------------------------------------------------------------===//
// Wire-time math
//===----------------------------------------------------------------------===//

TEST(WireTimeTest, SmallMessageIsOnePacket) {
  Simulator Sim;
  Network Net(Sim, 2);
  // 4 payload bytes + 78 framing = 82 bytes = 656 bits at 100 Mbit.
  EXPECT_EQ(Net.wireTime(4), SimTime::nanoseconds(6560));
}

TEST(WireTimeTest, SegmentsAtMss) {
  Simulator Sim;
  Network Net(Sim, 2);
  // 1461 bytes -> 2 packets -> 2x framing overhead.
  SimTime One = Net.wireTime(1460);
  SimTime Two = Net.wireTime(1461);
  double ExtraBits = (1 + 78) * 8;
  EXPECT_NEAR((Two - One).toSecondsF(), ExtraBits / 100e6, 1e-12);
}

TEST(WireTimeTest, LargeMessageApproachesGoodputCeiling) {
  Simulator Sim;
  Network Net(Sim, 2);
  size_t Payload = 1 << 20;
  double Seconds = Net.wireTime(Payload).toSecondsF();
  double Goodput = static_cast<double>(Payload) / Seconds;
  // 1460/1538 of 12.5 MB/s ~= 11.87 MB/s.
  EXPECT_NEAR(Goodput / 1e6, 11.87, 0.05);
}

TEST(WireTimeTest, ZeroPayloadStillCostsAFrame) {
  Simulator Sim;
  Network Net(Sim, 2);
  EXPECT_GT(Net.wireTime(0), SimTime());
}

//===----------------------------------------------------------------------===//
// Delivery
//===----------------------------------------------------------------------===//

TEST(NetworkTest, DeliversPayloadIntact) {
  Simulator Sim;
  Network Net(Sim, 2);
  auto &Port = Net.bind(1, 50);
  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  Message Got;
  SimTime At;
  Sim.spawn(recvOne(Port, Got, Sim, At));
  Net.send(0, 1, 50, Payload);
  Sim.run();
  EXPECT_EQ(Got.Payload, Payload);
  EXPECT_EQ(Got.Src, 0);
  EXPECT_EQ(Got.Dst, 1);
  EXPECT_EQ(Got.Port, 50);
  EXPECT_EQ(Net.messagesDelivered(), 1u);
  EXPECT_EQ(Net.payloadBytesDelivered(), 5u);
}

TEST(NetworkTest, DeliveryTimeMatchesModel) {
  Simulator Sim;
  Network Net(Sim, 2);
  auto &Port = Net.bind(1, 50);
  Message Got;
  SimTime At;
  Sim.spawn(recvOne(Port, Got, Sim, At));
  Net.send(0, 1, 50, bytes(1000));
  Sim.run();
  // Cut-through: first packet time + switch latency + full wire time.
  SimTime Expected = Net.firstPacketTime(1000) + Net.config().SwitchLatency +
                     Net.wireTime(1000);
  EXPECT_EQ(At, Expected);
}

TEST(NetworkTest, InOrderDeliveryFromOneSource) {
  Simulator Sim;
  Network Net(Sim, 2);
  auto &Port = Net.bind(1, 9);
  std::vector<int> Order;
  struct Drain {
    static Task<void> run(Channel<Message> &Port, std::vector<int> &Order) {
      for (int I = 0; I < 5; ++I) {
        Message M = co_await Port.recv();
        Order.push_back(M.Payload[0]);
      }
    }
  };
  Sim.spawn(Drain::run(Port, Order));
  for (uint8_t I = 0; I < 5; ++I)
    Net.send(0, 1, 9, {I});
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(NetworkTest, TxSerialisesBackToBackSends) {
  // Two 100 KB messages from node 0: the second's delivery is one full
  // wire time after the first's.
  Simulator Sim;
  Network Net(Sim, 3);
  auto &PortA = Net.bind(1, 1);
  auto &PortB = Net.bind(2, 1);
  Message GotA, GotB;
  SimTime AtA, AtB;
  Sim.spawn(recvOne(PortA, GotA, Sim, AtA));
  Sim.spawn(recvOne(PortB, GotB, Sim, AtB));
  size_t Size = 100 * 1000;
  Net.send(0, 1, 1, bytes(Size));
  Net.send(0, 2, 1, bytes(Size));
  Sim.run();
  EXPECT_NEAR((AtB - AtA).toSecondsF(), Net.wireTime(Size).toSecondsF(),
              1e-9);
}

TEST(NetworkTest, RxPortContentionSerialisesConcurrentSenders) {
  // Nodes 1 and 2 both send 100 KB to node 0 at t=0.  Their transmissions
  // overlap, but node 0's downlink can only carry one at wire rate: the
  // second delivery is ~one wire time after the first.
  Simulator Sim;
  Network Net(Sim, 3);
  auto &Port = Net.bind(0, 7);
  std::vector<SimTime> Arrivals;
  struct Drain {
    static Task<void> run(Simulator &Sim, Channel<Message> &Port,
                          std::vector<SimTime> &Arrivals) {
      for (int I = 0; I < 2; ++I) {
        (void)co_await Port.recv();
        Arrivals.push_back(Sim.now());
      }
    }
  };
  Sim.spawn(Drain::run(Sim, Port, Arrivals));
  size_t Size = 100 * 1000;
  Net.send(1, 0, 7, bytes(Size));
  Net.send(2, 0, 7, bytes(Size));
  Sim.run();
  ASSERT_EQ(Arrivals.size(), 2u);
  EXPECT_NEAR((Arrivals[1] - Arrivals[0]).toSecondsF(),
              Net.wireTime(Size).toSecondsF(), 1e-9);
}

TEST(NetworkTest, LoopbackBypassesWire) {
  Simulator Sim;
  Network Net(Sim, 2);
  auto &Port = Net.bind(0, 3);
  Message Got;
  SimTime At;
  Sim.spawn(recvOne(Port, Got, Sim, At));
  Net.send(0, 0, 3, bytes(1 << 20));
  Sim.run();
  EXPECT_EQ(At, SimTime());
  EXPECT_EQ(Got.Payload.size(), static_cast<size_t>(1 << 20));
  EXPECT_EQ(Net.wireBytesCarried(), 0u);
}

TEST(NetworkTest, DistinctPortsAreIndependent) {
  Simulator Sim;
  Network Net(Sim, 2);
  auto &P1 = Net.bind(1, 1);
  auto &P2 = Net.bind(1, 2);
  Message M1, M2;
  SimTime T1, T2;
  Sim.spawn(recvOne(P1, M1, Sim, T1));
  Sim.spawn(recvOne(P2, M2, Sim, T2));
  Net.send(0, 1, 2, {2});
  Net.send(0, 1, 1, {1});
  Sim.run();
  EXPECT_EQ(M1.Payload[0], 1);
  EXPECT_EQ(M2.Payload[0], 2);
}

TEST(NetworkTest, BindTwiceReturnsSameChannel) {
  Simulator Sim;
  Network Net(Sim, 2);
  EXPECT_EQ(&Net.bind(1, 5), &Net.bind(1, 5));
  EXPECT_TRUE(Net.isBound(1, 5));
  EXPECT_FALSE(Net.isBound(0, 5));
}

//===----------------------------------------------------------------------===//
// Ping-pong sanity: latency ordering of the raw fabric
//===----------------------------------------------------------------------===//

Task<void> pingPong(Simulator &Sim, Network &Net, int Rounds, size_t Size,
                    SimTime &Elapsed) {
  auto &Pong = Net.bind(0, 100);
  SimTime Start = Sim.now();
  for (int I = 0; I < Rounds; ++I) {
    Net.send(0, 1, 200, bytes(Size));
    (void)co_await Pong.recv();
  }
  Elapsed = Sim.now() - Start;
}

Task<void> echoServer(Network &Net, int Rounds) {
  auto &Ping = Net.bind(1, 200);
  for (int I = 0; I < Rounds; ++I) {
    Message M = co_await Ping.recv();
    Net.send(1, 0, 100, std::move(M.Payload));
  }
}

TEST(NetworkTest, RawFabricRoundTripIsTensOfMicroseconds) {
  Simulator Sim;
  Network Net(Sim, 2);
  SimTime Elapsed;
  int Rounds = 100;
  Sim.spawn(echoServer(Net, Rounds));
  Sim.spawn(pingPong(Sim, Net, Rounds, 4, Elapsed));
  Sim.run();
  double OneWayUs = Elapsed.toMicrosF() / (2.0 * Rounds);
  // Raw wire+switch latency must sit well below the software stacks'
  // 100-520 us one-way figures.
  EXPECT_GT(OneWayUs, 5.0);
  EXPECT_LT(OneWayUs, 30.0);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto RunOnce = [] {
    Simulator Sim;
    Network Net(Sim, 2);
    SimTime Elapsed;
    Sim.spawn(echoServer(Net, 10));
    Sim.spawn(pingPong(Sim, Net, 10, 1024, Elapsed));
    Sim.run();
    return Elapsed;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

} // namespace
