//===- tests/SimTest.cpp - discrete-event kernel tests --------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "sim/Channel.h"
#include "sim/SimTime.h"
#include "sim/Simulator.h"
#include "sim/Sync.h"
#include "sim/Task.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace parcs;
using namespace parcs::sim;

namespace {

SimTime us(int64_t N) { return SimTime::microseconds(N); }

//===----------------------------------------------------------------------===//
// SimTime
//===----------------------------------------------------------------------===//

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ(us(5) + us(7), us(12));
  EXPECT_EQ(SimTime::milliseconds(1) - us(1), us(999));
  EXPECT_EQ(us(5) * 3, us(15));
  EXPECT_LT(us(1), us(2));
  EXPECT_TRUE(SimTime().isZero());
}

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(SimTime::seconds(2).toSecondsF(), 2.0);
  EXPECT_DOUBLE_EQ(us(250).toMicrosF(), 250.0);
  EXPECT_EQ(SimTime::fromSecondsF(1e-6), us(1));
  EXPECT_EQ(SimTime::fromMicrosF(273.0), us(273));
}

TEST(SimTimeTest, Rendering) {
  EXPECT_EQ(SimTime::nanoseconds(12).str(), "12ns");
  EXPECT_EQ(us(273).str(), "273.0us");
  EXPECT_EQ(SimTime::milliseconds(12).str(), "12.000ms");
  EXPECT_EQ(SimTime::seconds(3).str(), "3.000s");
}

//===----------------------------------------------------------------------===//
// Simulator event scheduling
//===----------------------------------------------------------------------===//

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator Sim;
  std::vector<int> Order;
  Sim.schedule(us(30), [&] { Order.push_back(3); });
  Sim.schedule(us(10), [&] { Order.push_back(1); });
  Sim.schedule(us(20), [&] { Order.push_back(2); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Sim.now(), us(30));
}

TEST(SimulatorTest, EqualTimestampsRunInScheduleOrder) {
  Simulator Sim;
  std::vector<int> Order;
  for (int I = 0; I < 10; ++I)
    Sim.schedule(us(5), [&Order, I] { Order.push_back(I); });
  Sim.run();
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Order[static_cast<size_t>(I)], I);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator Sim;
  SimTime Inner;
  Sim.schedule(us(10), [&] {
    Sim.schedule(us(10), [&] { Inner = Sim.now(); });
  });
  Sim.run();
  EXPECT_EQ(Inner, us(20));
}

TEST(SimulatorTest, RunUntilAdvancesClock) {
  Simulator Sim;
  int Fired = 0;
  Sim.schedule(us(10), [&] { ++Fired; });
  Sim.schedule(us(50), [&] { ++Fired; });
  Sim.runUntil(us(30));
  EXPECT_EQ(Fired, 1);
  EXPECT_EQ(Sim.now(), us(30));
  Sim.run();
  EXPECT_EQ(Fired, 2);
}

TEST(SimulatorTest, RunHonoursMaxEvents) {
  Simulator Sim;
  int Fired = 0;
  for (int I = 0; I < 5; ++I)
    Sim.schedule(us(I), [&] { ++Fired; });
  EXPECT_EQ(Sim.run(3), 3u);
  EXPECT_EQ(Fired, 3);
  Sim.run();
  EXPECT_EQ(Fired, 5);
}

TEST(SimulatorTest, CountsEvents) {
  Simulator Sim;
  for (int I = 0; I < 4; ++I)
    Sim.schedule(us(I), [] {});
  Sim.run();
  EXPECT_EQ(Sim.eventsProcessed(), 4u);
}

//===----------------------------------------------------------------------===//
// Coroutine tasks
//===----------------------------------------------------------------------===//

Task<void> delayTwice(Simulator &Sim, SimTime D, std::vector<SimTime> &Log) {
  co_await Sim.delay(D);
  Log.push_back(Sim.now());
  co_await Sim.delay(D);
  Log.push_back(Sim.now());
}

TEST(TaskTest, DelaysAdvanceVirtualTime) {
  Simulator Sim;
  std::vector<SimTime> Log;
  Sim.spawn(delayTwice(Sim, us(100), Log));
  Sim.run();
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0], us(100));
  EXPECT_EQ(Log[1], us(200));
}

Task<int> plusOne(Simulator &Sim, int X) {
  co_await Sim.delay(us(1));
  co_return X + 1;
}

Task<void> chainValues(Simulator &Sim, int &Out) {
  int A = co_await plusOne(Sim, 1);
  int B = co_await plusOne(Sim, A);
  Out = B;
}

TEST(TaskTest, ValueReturningTasksChain) {
  Simulator Sim;
  int Out = 0;
  Sim.spawn(chainValues(Sim, Out));
  Sim.run();
  EXPECT_EQ(Out, 3);
  EXPECT_EQ(Sim.now(), us(2));
}

TEST(TaskTest, ManyConcurrentTasksInterleave) {
  Simulator Sim;
  std::vector<int> Finish;
  for (int I = 0; I < 8; ++I) {
    struct Proc {
      static Task<void> run(Simulator &Sim, int Id, std::vector<int> &Out) {
        co_await Sim.delay(us(10 * (8 - Id)));
        Out.push_back(Id);
      }
    };
    Sim.spawn(Proc::run(Sim, I, Finish));
  }
  Sim.run();
  ASSERT_EQ(Finish.size(), 8u);
  // Longest delay was task 0, so completion order is reversed.
  EXPECT_EQ(Finish.front(), 7);
  EXPECT_EQ(Finish.back(), 0);
}

TEST(TaskTest, UnfinishedSpawnedTasksAreReclaimed) {
  // A task suspended forever must be destroyed with the simulator (no leak
  // under ASan, no crash).
  auto Sim = std::make_unique<Simulator>();
  struct Proc {
    static Task<void> run(Simulator &Sim) {
      co_await Sim.delay(SimTime::seconds(1000000));
    }
  };
  Sim->spawn(Proc::run(*Sim));
  Sim->run(1); // Start the task; it parks on its delay.
  Sim.reset(); // Must reclaim the frame.
  SUCCEED();
}

TEST(TaskTest, UnstartedTaskIsReclaimedByDestructor) {
  Simulator Sim;
  {
    struct Proc {
      static Task<void> run(Simulator &Sim) { co_await Sim.delay(us(1)); }
    };
    Task<void> T = Proc::run(Sim);
    EXPECT_TRUE(T.valid());
    // Dropped without being awaited or spawned.
  }
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Future / Promise
//===----------------------------------------------------------------------===//

Task<void> waitFuture(Future<int> F, std::vector<int> &Out) {
  int V = co_await F;
  Out.push_back(V);
}

TEST(FutureTest, WakesAllWaiters) {
  Simulator Sim;
  Promise<int> P(Sim);
  std::vector<int> Out;
  Sim.spawn(waitFuture(P.future(), Out));
  Sim.spawn(waitFuture(P.future(), Out));
  Sim.schedule(us(50), [&] { P.set(99); });
  Sim.run();
  EXPECT_EQ(Out, (std::vector<int>{99, 99}));
}

TEST(FutureTest, AwaitAfterFulfilIsImmediate) {
  Simulator Sim;
  Promise<int> P(Sim);
  P.set(7);
  std::vector<int> Out;
  Sim.spawn(waitFuture(P.future(), Out));
  Sim.run();
  EXPECT_EQ(Out, (std::vector<int>{7}));
  EXPECT_TRUE(P.future().ready());
  EXPECT_EQ(P.future().get(), 7);
}


//===----------------------------------------------------------------------===//
// firstOf / afterDelay combinators
//===----------------------------------------------------------------------===//

TEST(CombinatorTest, FirstOfPicksTheEarlierFuture) {
  Simulator Sim;
  Promise<int> Slow(Sim), Fast(Sim);
  Sim.schedule(us(100), [&] { Slow.set(1); });
  Sim.schedule(us(10), [&] { Fast.set(2); });
  Future<int> Winner = firstOf(Sim, Slow.future(), Fast.future());
  int Got = 0;
  SimTime At;
  struct Proc {
    static Task<void> run(Simulator &Sim, Future<int> F, int &Got,
                          SimTime &At) {
      Got = co_await F;
      At = Sim.now();
    }
  };
  Sim.spawn(Proc::run(Sim, Winner, Got, At));
  Sim.run();
  EXPECT_EQ(Got, 2);
  EXPECT_EQ(At, us(10));
}

TEST(CombinatorTest, FirstOfTieResolvesDeterministically) {
  auto RunOnce = [] {
    Simulator Sim;
    Promise<int> A(Sim), B(Sim);
    Sim.schedule(us(5), [&] { A.set(1); });
    Sim.schedule(us(5), [&] { B.set(2); });
    Future<int> Winner = firstOf(Sim, A.future(), B.future());
    int Got = 0;
    struct Proc {
      static Task<void> run(Future<int> F, int &Got) { Got = co_await F; }
    };
    Sim.spawn(Proc::run(Winner, Got));
    Sim.run();
    return Got;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST(CombinatorTest, AfterDelayBuildsTimeouts) {
  // The canonical timeout pattern: race the real work against a deadline.
  Simulator Sim;
  Promise<std::string> Work(Sim);
  Sim.schedule(SimTime::milliseconds(50), [&] { Work.set("done"); });
  Future<std::string> Result = firstOf(
      Sim, Work.future(),
      afterDelay(Sim, SimTime::milliseconds(10), std::string("timeout")));
  std::string Got;
  struct Proc {
    static Task<void> run(Future<std::string> F, std::string &Got) {
      Got = co_await F;
    }
  };
  Sim.spawn(Proc::run(Result, Got));
  Sim.run();
  EXPECT_EQ(Got, "timeout");
}

//===----------------------------------------------------------------------===//
// Semaphore / Mutex
//===----------------------------------------------------------------------===//

Task<void> holdSema(Simulator &Sim, Semaphore &Sema, SimTime Hold,
                    std::vector<SimTime> &Acquired) {
  co_await Sema.acquire();
  Acquired.push_back(Sim.now());
  co_await Sim.delay(Hold);
  Sema.release();
}

TEST(SemaphoreTest, SerialisesCriticalSections) {
  Simulator Sim;
  Semaphore Sema(Sim, 1);
  std::vector<SimTime> Acquired;
  for (int I = 0; I < 3; ++I)
    Sim.spawn(holdSema(Sim, Sema, us(10), Acquired));
  Sim.run();
  ASSERT_EQ(Acquired.size(), 3u);
  EXPECT_EQ(Acquired[0], us(0));
  EXPECT_EQ(Acquired[1], us(10));
  EXPECT_EQ(Acquired[2], us(20));
}

TEST(SemaphoreTest, CountTwoAllowsTwoConcurrent) {
  Simulator Sim;
  Semaphore Sema(Sim, 2);
  std::vector<SimTime> Acquired;
  for (int I = 0; I < 4; ++I)
    Sim.spawn(holdSema(Sim, Sema, us(10), Acquired));
  Sim.run();
  ASSERT_EQ(Acquired.size(), 4u);
  EXPECT_EQ(Acquired[0], us(0));
  EXPECT_EQ(Acquired[1], us(0));
  EXPECT_EQ(Acquired[2], us(10));
  EXPECT_EQ(Acquired[3], us(10));
}

TEST(SemaphoreTest, FifoWakeOrder) {
  Simulator Sim;
  Semaphore Sema(Sim, 0);
  std::vector<int> Woken;
  for (int I = 0; I < 3; ++I) {
    struct Proc {
      static Task<void> run(Semaphore &Sema, int Id, std::vector<int> &Out) {
        co_await Sema.acquire();
        Out.push_back(Id);
      }
    };
    Sim.spawn(Proc::run(Sema, I, Woken));
  }
  Sim.schedule(us(1), [&] { Sema.release(); });
  Sim.schedule(us(2), [&] { Sema.release(); });
  Sim.schedule(us(3), [&] { Sema.release(); });
  Sim.run();
  EXPECT_EQ(Woken, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(Sema.available(), 0);
  EXPECT_EQ(Sema.waiting(), 0u);
}

//===----------------------------------------------------------------------===//
// WaitGroup
//===----------------------------------------------------------------------===//

TEST(WaitGroupTest, WaitsForAll) {
  Simulator Sim;
  WaitGroup Group(Sim);
  SimTime DoneAt;
  Group.add(3);
  for (int I = 1; I <= 3; ++I)
    Sim.schedule(us(10 * I), [&] { Group.done(); });
  struct Proc {
    static Task<void> run(Simulator &Sim, WaitGroup &Group, SimTime &DoneAt) {
      co_await Group.wait();
      DoneAt = Sim.now();
    }
  };
  Sim.spawn(Proc::run(Sim, Group, DoneAt));
  Sim.run();
  EXPECT_EQ(DoneAt, us(30));
}

TEST(WaitGroupTest, ZeroCountDoesNotBlock) {
  Simulator Sim;
  WaitGroup Group(Sim);
  bool Ran = false;
  struct Proc {
    static Task<void> run(WaitGroup &Group, bool &Ran) {
      co_await Group.wait();
      Ran = true;
    }
  };
  Sim.spawn(Proc::run(Group, Ran));
  Sim.run();
  EXPECT_TRUE(Ran);
}

//===----------------------------------------------------------------------===//
// Channel
//===----------------------------------------------------------------------===//

Task<void> produce(Simulator &Sim, Channel<int> &Chan, int Count,
                   SimTime Gap) {
  for (int I = 0; I < Count; ++I) {
    co_await Sim.delay(Gap);
    co_await Chan.send(I);
  }
}

Task<void> consume(Channel<int> &Chan, int Count, std::vector<int> &Out) {
  for (int I = 0; I < Count; ++I)
    Out.push_back(co_await Chan.recv());
}

TEST(ChannelTest, FifoDelivery) {
  Simulator Sim;
  Channel<int> Chan(Sim);
  std::vector<int> Out;
  Sim.spawn(consume(Chan, 5, Out));
  Sim.spawn(produce(Sim, Chan, 5, us(10)));
  Sim.run();
  EXPECT_EQ(Out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, ReceiverBeforeSender) {
  Simulator Sim;
  Channel<std::string> Chan(Sim);
  std::string Got;
  struct Proc {
    static Task<void> run(Channel<std::string> &Chan, std::string &Got) {
      Got = co_await Chan.recv();
    }
  };
  Sim.spawn(Proc::run(Chan, Got));
  Sim.schedule(us(100), [&] { Chan.trySend("hello"); });
  Sim.run();
  EXPECT_EQ(Got, "hello");
}

TEST(ChannelTest, BoundedChannelBlocksSender) {
  Simulator Sim;
  Channel<int> Chan(Sim, 2);
  std::vector<SimTime> SendTimes;
  struct Producer {
    static Task<void> run(Simulator &Sim, Channel<int> &Chan,
                          std::vector<SimTime> &Times) {
      for (int I = 0; I < 4; ++I) {
        co_await Chan.send(I);
        Times.push_back(Sim.now());
      }
    }
  };
  struct Consumer {
    static Task<void> run(Simulator &Sim, Channel<int> &Chan) {
      for (int I = 0; I < 4; ++I) {
        co_await Sim.delay(us(100));
        (void)co_await Chan.recv();
      }
    }
  };
  Sim.spawn(Producer::run(Sim, Chan, SendTimes));
  Sim.spawn(Consumer::run(Sim, Chan));
  Sim.run();
  ASSERT_EQ(SendTimes.size(), 4u);
  // First two fill the buffer immediately; the rest wait for receives.
  EXPECT_EQ(SendTimes[0], us(0));
  EXPECT_EQ(SendTimes[1], us(0));
  EXPECT_EQ(SendTimes[2], us(100));
  EXPECT_EQ(SendTimes[3], us(200));
}

TEST(ChannelTest, WokenReceiverIsNotStarvedByLateArrival) {
  // Receiver A waits on an empty channel.  An item arrives (A is woken),
  // and before A resumes another receiver B shows up.  The item must go to
  // A (FIFO), and B gets the second item.
  Simulator Sim;
  Channel<int> Chan(Sim);
  std::vector<std::pair<char, int>> Got;
  struct Recv {
    static Task<void> run(Channel<int> &Chan, char Tag,
                          std::vector<std::pair<char, int>> &Got) {
      int V = co_await Chan.recv();
      Got.push_back({Tag, V});
    }
  };
  Sim.spawn(Recv::run(Chan, 'A', Got));
  Sim.schedule(us(10), [&] {
    Chan.trySend(1); // Wakes A (scheduled).
    // B arrives in the same timestamp, before A's resume runs.
    Sim.spawn(Recv::run(Chan, 'B', Got));
    Chan.trySend(2);
  });
  Sim.run();
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0], std::make_pair('A', 1));
  EXPECT_EQ(Got[1], std::make_pair('B', 2));
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  auto RunOnce = [] {
    Simulator Sim;
    Channel<int> Chan(Sim);
    Semaphore Sema(Sim, 2);
    std::vector<int> Trace;
    for (int I = 0; I < 6; ++I) {
      struct Proc {
        static Task<void> run(Simulator &Sim, Channel<int> &Chan,
                              Semaphore &Sema, int Id,
                              std::vector<int> &Trace) {
          co_await Sema.acquire();
          co_await Sim.delay(SimTime::microseconds(7 * (Id % 3) + 1));
          co_await Chan.send(Id);
          Sema.release();
          Trace.push_back(Id);
        }
      };
      Sim.spawn(Proc::run(Sim, Chan, Sema, I, Trace));
    }
    struct Drain {
      static Task<void> run(Channel<int> &Chan, std::vector<int> &Trace) {
        for (int I = 0; I < 6; ++I)
          Trace.push_back(100 + co_await Chan.recv());
      }
    };
    Sim.spawn(Drain::run(Chan, Trace));
    Sim.run();
    return Trace;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

} // namespace
