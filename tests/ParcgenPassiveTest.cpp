//===- tests/ParcgenPassiveTest.cpp - generated passive classes -----------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end check of parcgen's passive-class support:
/// tests/data/shapes.pci is compiled by the parcgen tool at build time
/// into ShapesGen.h; this file builds real graphs with the generated
/// classes (mutual recursion, shared vertices, parallel-object refs),
/// round-trips them through the serialiser, and drives the generated
/// parallel class whose method takes a passive parameter.
///
//===----------------------------------------------------------------------===//

#include "ShapesGen.h"
#include "core/ObjectManager.h"
#include "core/World.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::sim;
using parcstest::shapes::AreaServerProxy;
using parcstest::shapes::AreaServerSkeleton;
using parcstest::shapes::Point;
using parcstest::shapes::Polygon;
using parcstest::shapes::Tag;

namespace {

void registerShapeTypes(serial::TypeRegistry &Registry) {
  parcstest::shapes::registerPointPassive(Registry);
  parcstest::shapes::registerTagPassive(Registry);
  parcstest::shapes::registerPolygonPassive(Registry);
}

/// Builds a unit square polygon with a labelled first vertex.
Polygon *buildSquare(serial::ObjectPool &Pool, const std::string &Name) {
  Polygon *Poly = Pool.create<Polygon>();
  Poly->name = Name;
  double Coords[4][2] = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  for (auto &C : Coords) {
    Point *P = Pool.create<Point>();
    P->x = C[0];
    P->y = C[1];
    Poly->vertices.push_back(P);
  }
  Tag *Label = Pool.create<Tag>();
  Label->text = Name + ":origin";
  Label->owner = Poly->vertices[0]; // Mutual link Tag <-> Point.
  Poly->vertices[0]->label = Label;
  return Poly;
}

/// Shoelace area of a generated polygon.
double area(const Polygon *Poly) {
  double Sum = 0;
  size_t N = Poly->vertices.size();
  for (size_t I = 0; I < N; ++I) {
    const Point *A = Poly->vertices[I];
    const Point *B = Poly->vertices[(I + 1) % N];
    Sum += A->x * B->y - B->x * A->y;
  }
  return Sum / 2.0;
}

//===----------------------------------------------------------------------===//
// Graph round trips with generated classes
//===----------------------------------------------------------------------===//

TEST(ParcgenPassiveTest, GeneratedClassesRoundTripGraphs) {
  serial::TypeRegistry Registry;
  registerShapeTypes(Registry);

  serial::ObjectPool Mine;
  Polygon *Square = buildSquare(Mine, "sq");
  Polygon *Second = buildSquare(Mine, "sq2");
  Square->next = Second;
  Second->next = Square; // Cycle through the polygon list.

  serial::Bytes Wire = scoopp::encodePassiveGraph(Square);
  serial::ObjectPool Theirs;
  auto Copy = scoopp::decodePassiveGraph(Wire, Theirs, Registry);
  ASSERT_TRUE(Copy.hasValue()) << Copy.error().str();
  auto *Square2 = serial::objectCast<Polygon>(*Copy);
  ASSERT_NE(Square2, nullptr);

  EXPECT_EQ(Square2->name, "sq");
  ASSERT_EQ(Square2->vertices.size(), 4u);
  EXPECT_DOUBLE_EQ(area(Square2), 1.0);
  // The cycle closed on the copy.
  ASSERT_NE(Square2->next, nullptr);
  EXPECT_EQ(Square2->next->next, Square2);
  // The Tag <-> Point mutual link survived as *one* shared pair.
  ASSERT_NE(Square2->vertices[0]->label, nullptr);
  EXPECT_EQ(Square2->vertices[0]->label->owner, Square2->vertices[0]);
  EXPECT_EQ(Square2->vertices[0]->label->text, "sq:origin");
}

TEST(ParcgenPassiveTest, RefFieldTravelsInsidePassiveGraph) {
  serial::TypeRegistry Registry;
  registerShapeTypes(Registry);
  serial::ObjectPool Mine;
  Polygon *Poly = buildSquare(Mine, "p");
  Poly->computedBy = scoopp::ParallelRef{2, "io:AreaServer:5"};

  serial::ObjectPool Theirs;
  auto Copy = scoopp::decodePassiveGraph(scoopp::encodePassiveGraph(Poly),
                                         Theirs, Registry);
  ASSERT_TRUE(Copy.hasValue());
  auto *Poly2 = serial::objectCast<Polygon>(*Copy);
  ASSERT_NE(Poly2, nullptr);
  EXPECT_EQ(Poly2->computedBy.Node, 2);
  EXPECT_EQ(Poly2->computedBy.Name, "io:AreaServer:5");
}

TEST(ParcgenPassiveTest, UnregisteredTypeFailsCleanly) {
  serial::ObjectPool Mine;
  Polygon *Poly = buildSquare(Mine, "p");
  serial::TypeRegistry Empty;
  serial::ObjectPool Theirs;
  auto Copy = scoopp::decodePassiveGraph(scoopp::encodePassiveGraph(Poly),
                                         Theirs, Empty);
  ASSERT_FALSE(Copy.hasValue());
  EXPECT_EQ(Copy.error().code(), ErrorCode::UnknownType);
}

//===----------------------------------------------------------------------===//
// Passive parameters through the generated parallel class
//===----------------------------------------------------------------------===//

/// Implementation of the generated skeleton: accumulates polygon areas.
class AreaServerImpl : public AreaServerSkeleton {
public:
  using AreaServerSkeleton::AreaServerSkeleton;

  sim::Task<Unit> accumulate(Polygon *Poly) override {
    co_await Host.compute(SimTime::microseconds(20));
    for (Polygon *Cursor = Poly; Cursor; Cursor = Cursor->next) {
      Sum += area(Cursor);
      ++Count;
      if (Cursor->next == Poly)
        break; // Cyclic list guard.
    }
    co_return Unit();
  }

  sim::Task<double> total() override { co_return Sum; }
  sim::Task<int32_t> polygons() override { co_return Count; }

private:
  double Sum = 0;
  int32_t Count = 0;
};

TEST(ParcgenPassiveTest, PassiveParameterCrossesTheWire) {
  registerShapeTypes(serial::TypeRegistry::global());
  scoopp::ParallelClassRegistry Registry;
  parcstest::shapes::registerAreaServerClass<AreaServerImpl>(Registry);
  scoopp::ScooppWorld W(3, std::move(Registry));

  bool Done = false;
  W.runMain([&Done](scoopp::ScooppRuntime &Runtime) -> Task<void> {
    AreaServerProxy Server(Runtime, 0);
    Error E = co_await Server.create();
    EXPECT_FALSE(E) << E.str();

    serial::ObjectPool Mine;
    Polygon *A = buildSquare(Mine, "a"); // Area 1.
    Polygon *B = buildSquare(Mine, "b");
    for (Point *V : B->vertices) {       // Scale to area 4.
      V->x *= 2;
      V->y *= 2;
    }
    A->next = B;

    co_await Server.accumulate(A); // One call, two chained polygons.
    co_await Server.flush();
    auto Total = co_await Server.total();
    auto Count = co_await Server.polygons();
    EXPECT_TRUE(Total.hasValue());
    EXPECT_TRUE(Count.hasValue());
    if (Total) {
      EXPECT_DOUBLE_EQ(*Total, 5.0);
    }
    if (Count) {
      EXPECT_EQ(*Count, 2);
    }
    // The originals were not consumed or mutated.
    EXPECT_DOUBLE_EQ(area(A), 1.0);
    Done = true;
  });
  EXPECT_TRUE(Done);
}

TEST(ParcgenPassiveTest, NullPassiveParameterIsDelivered) {
  registerShapeTypes(serial::TypeRegistry::global());
  scoopp::ParallelClassRegistry Registry;
  parcstest::shapes::registerAreaServerClass<AreaServerImpl>(Registry);
  scoopp::ScooppWorld W(2, std::move(Registry));
  W.runMain([](scoopp::ScooppRuntime &Runtime) -> Task<void> {
    AreaServerProxy Server(Runtime, 0);
    (void)co_await Server.create();
    co_await Server.accumulate(nullptr); // Null graph: a no-op call.
    co_await Server.flush();
    auto Count = co_await Server.polygons();
    EXPECT_TRUE(Count.hasValue());
    if (Count) {
      EXPECT_EQ(*Count, 0);
    }
  });
}

} // namespace
