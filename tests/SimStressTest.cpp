//===- tests/SimStressTest.cpp - kernel property/stress tests -------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomised property tests of the simulation kernel: large seeded
/// workloads over channels, semaphores and wait groups, checking
/// conservation, mutual exclusion, FIFO per producer, and bit-for-bit
/// determinism across independent runs of the same seed.
///
//===----------------------------------------------------------------------===//

#include "sim/Channel.h"
#include "sim/Simulator.h"
#include "sim/Sync.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace parcs;
using namespace parcs::sim;

namespace {

SimTime us(int64_t N) { return SimTime::microseconds(N); }

//===----------------------------------------------------------------------===//
// Channel conservation + per-producer FIFO under random load
//===----------------------------------------------------------------------===//

struct ChannelStressResult {
  std::vector<std::pair<int, int>> Received; ///< (producer, seq).
  uint64_t FinalClockNs = 0;
};

ChannelStressResult runChannelStress(uint64_t Seed, int Producers,
                                     int ItemsPerProducer,
                                     size_t Capacity) {
  Simulator Sim;
  Channel<std::pair<int, int>> Chan(Sim, Capacity);
  ChannelStressResult Result;
  Rng R(Seed);

  struct Producer {
    static Task<void> run(Simulator &Sim, Channel<std::pair<int, int>> &Chan,
                          int Id, int Items, uint64_t SubSeed) {
      Rng Mine(SubSeed);
      for (int Seq = 0; Seq < Items; ++Seq) {
        co_await Sim.delay(us(static_cast<int64_t>(Mine.nextBelow(50))));
        co_await Chan.send({Id, Seq});
      }
    }
  };
  struct Consumer {
    static Task<void> run(Simulator &Sim, Channel<std::pair<int, int>> &Chan,
                          int Total, uint64_t SubSeed,
                          std::vector<std::pair<int, int>> &Out) {
      Rng Mine(SubSeed);
      for (int I = 0; I < Total; ++I) {
        if (Mine.nextBelow(3) == 0)
          co_await Sim.delay(us(static_cast<int64_t>(Mine.nextBelow(80))));
        Out.push_back(co_await Chan.recv());
      }
    }
  };

  for (int P = 0; P < Producers; ++P)
    Sim.spawn(Producer::run(Sim, Chan, P, ItemsPerProducer, R.next()));
  // Two competing consumers stress the reservation logic.
  int Total = Producers * ItemsPerProducer;
  int Half = Total / 2;
  Sim.spawn(Consumer::run(Sim, Chan, Half, R.next(), Result.Received));
  Sim.spawn(
      Consumer::run(Sim, Chan, Total - Half, R.next(), Result.Received));
  Sim.run();
  Result.FinalClockNs =
      static_cast<uint64_t>(Sim.now().nanosecondsCount());
  return Result;
}

class ChannelStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChannelStressTest, ConservesAndOrdersItems) {
  const int Producers = 7, Items = 40;
  ChannelStressResult Result =
      runChannelStress(GetParam(), Producers, Items, /*Capacity=*/5);
  ASSERT_EQ(Result.Received.size(),
            static_cast<size_t>(Producers * Items));
  // Conservation: every (producer, seq) exactly once.
  std::map<int, std::vector<int>> PerProducer;
  for (auto [P, Seq] : Result.Received)
    PerProducer[P].push_back(Seq);
  ASSERT_EQ(PerProducer.size(), static_cast<size_t>(Producers));
  for (auto &[P, Seqs] : PerProducer) {
    ASSERT_EQ(Seqs.size(), static_cast<size_t>(Items)) << "producer " << P;
    // The two consumers interleave, but the union per producer must
    // contain every sequence number exactly once.
    std::vector<int> Sorted = Seqs;
    std::sort(Sorted.begin(), Sorted.end());
    for (int I = 0; I < Items; ++I)
      EXPECT_EQ(Sorted[static_cast<size_t>(I)], I);
  }
}

TEST_P(ChannelStressTest, DeterministicReplay) {
  ChannelStressResult A = runChannelStress(GetParam(), 5, 30, 3);
  ChannelStressResult B = runChannelStress(GetParam(), 5, 30, 3);
  EXPECT_EQ(A.Received, B.Received);
  EXPECT_EQ(A.FinalClockNs, B.FinalClockNs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelStressTest,
                         ::testing::Values(1u, 42u, 2026u, 777777u));

//===----------------------------------------------------------------------===//
// Semaphore mutual exclusion under random load
//===----------------------------------------------------------------------===//

class SemaphoreStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemaphoreStressTest, NeverOversubscribed) {
  Simulator Sim;
  const int Permits = 3, Tasks = 25;
  Semaphore Sema(Sim, Permits);
  int Inside = 0, MaxInside = 0, Completed = 0;
  Rng R(GetParam());

  struct Worker {
    static Task<void> run(Simulator &Sim, Semaphore &Sema, uint64_t SubSeed,
                          int &Inside, int &MaxInside, int &Completed) {
      Rng Mine(SubSeed);
      for (int Round = 0; Round < 5; ++Round) {
        co_await Sim.delay(us(static_cast<int64_t>(Mine.nextBelow(40))));
        co_await Sema.acquire();
        ++Inside;
        MaxInside = std::max(MaxInside, Inside);
        co_await Sim.delay(us(1 + static_cast<int64_t>(Mine.nextBelow(20))));
        --Inside;
        Sema.release();
      }
      ++Completed;
    }
  };
  for (int T = 0; T < Tasks; ++T)
    Sim.spawn(
        Worker::run(Sim, Sema, R.next(), Inside, MaxInside, Completed));
  Sim.run();
  EXPECT_EQ(Completed, Tasks);
  EXPECT_EQ(Inside, 0);
  EXPECT_LE(MaxInside, Permits);
  EXPECT_EQ(MaxInside, Permits) << "load should reach full concurrency";
  EXPECT_EQ(Sema.available(), Permits);
  EXPECT_EQ(Sema.waiting(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemaphoreStressTest,
                         ::testing::Values(3u, 99u, 123456u));

//===----------------------------------------------------------------------===//
// Pipelines of channels (data integrity through multiple hops)
//===----------------------------------------------------------------------===//

TEST(SimStressTest, MultiStageChannelPipelinePreservesStream) {
  Simulator Sim;
  const int Stages = 6, Items = 200;
  std::vector<std::unique_ptr<Channel<int>>> Links;
  for (int I = 0; I <= Stages; ++I)
    Links.push_back(std::make_unique<Channel<int>>(Sim, 4));

  struct Stage {
    static Task<void> run(Simulator &Sim, Channel<int> &In, Channel<int> &Out,
                          int Items, int Increment) {
      for (int I = 0; I < Items; ++I) {
        int Value = co_await In.recv();
        co_await Sim.delay(us(1));
        co_await Out.send(Value + Increment);
      }
    }
  };
  for (int S = 0; S < Stages; ++S)
    Sim.spawn(Stage::run(Sim, *Links[static_cast<size_t>(S)],
                         *Links[static_cast<size_t>(S + 1)], Items, 1));

  struct Feeder {
    static Task<void> run(Channel<int> &Out, int Items) {
      for (int I = 0; I < Items; ++I)
        co_await Out.send(I * 10);
    }
  };
  std::vector<int> Final;
  struct Drain {
    static Task<void> run(Channel<int> &In, int Items,
                          std::vector<int> &Out) {
      for (int I = 0; I < Items; ++I)
        Out.push_back(co_await In.recv());
    }
  };
  Sim.spawn(Feeder::run(*Links[0], Items));
  Sim.spawn(Drain::run(*Links[static_cast<size_t>(Stages)], Items, Final));
  Sim.run();

  ASSERT_EQ(Final.size(), static_cast<size_t>(Items));
  for (int I = 0; I < Items; ++I)
    EXPECT_EQ(Final[static_cast<size_t>(I)], I * 10 + Stages)
        << "stream order and increments must survive every hop";
}

//===----------------------------------------------------------------------===//
// WaitGroup fan-out/fan-in stress
//===----------------------------------------------------------------------===//

TEST(SimStressTest, NestedWaitGroupFanIn) {
  Simulator Sim;
  WaitGroup Outer(Sim);
  int Leaves = 0;
  struct Branch {
    static Task<void> run(Simulator &Sim, WaitGroup &Outer, int Depth,
                          int Fanout, int &Leaves) {
      if (Depth == 0) {
        co_await Sim.delay(us(3));
        ++Leaves;
        Outer.done();
        co_return;
      }
      for (int I = 0; I < Fanout; ++I) {
        Outer.add(1);
        Sim.spawn(Branch::run(Sim, Outer, Depth - 1, Fanout, Leaves));
      }
      Outer.done();
    }
  };
  Outer.add(1);
  Sim.spawn(Branch::run(Sim, Outer, /*Depth=*/4, /*Fanout=*/3, Leaves));
  bool Finished = false;
  struct Waiter {
    static Task<void> run(WaitGroup &Outer, bool &Finished) {
      co_await Outer.wait();
      Finished = true;
    }
  };
  Sim.spawn(Waiter::run(Outer, Finished));
  Sim.run();
  EXPECT_TRUE(Finished);
  EXPECT_EQ(Leaves, 3 * 3 * 3 * 3);
  EXPECT_EQ(Outer.count(), 0);
}

//===----------------------------------------------------------------------===//
// Event queue scale
//===----------------------------------------------------------------------===//

TEST(SimStressTest, HundredThousandEventsInOrder) {
  Simulator Sim;
  Rng R(11);
  int64_t LastSeen = -1;
  bool Monotonic = true;
  const int Events = 100000;
  for (int I = 0; I < Events; ++I) {
    int64_t At = static_cast<int64_t>(R.nextBelow(1000000));
    Sim.scheduleAt(us(At), [&, At] {
      if (At < LastSeen)
        Monotonic = false;
      LastSeen = std::max(LastSeen, At);
    });
  }
  Sim.run();
  EXPECT_TRUE(Monotonic);
  EXPECT_EQ(Sim.eventsProcessed(), static_cast<uint64_t>(Events));
}

} // namespace
