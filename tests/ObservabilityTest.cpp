//===- tests/ObservabilityTest.cpp - Trace + metrics layer ----------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Covers the observability subsystem end to end: histogram percentile edge
// cases, metric registry reports, env-knob spec parsing, the log-prefix
// hooks, and -- the load-bearing part -- that the trace recorder is
// deterministic (two identical runs export byte-identical JSON) and that
// the exported Chrome trace-event JSON parses with well-formed node/task
// ids from at least two simulated nodes.
//
//===----------------------------------------------------------------------===//

#include "net/Network.h"
#include "remoting/Engine.h"
#include "remoting/Profiles.h"
#include "serial/Archive.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace parcs;
using serial::Bytes;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON parser (objects, arrays, strings, numbers, bools, null).
// Just enough to validate exported traces and reports; throws nothing --
// parse failures surface as a null Value plus Ok=false.
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;

  const JsonValue *field(const std::string &Name) const {
    auto It = Obj.find(Name);
    return It == Obj.end() ? nullptr : &It->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  bool parse(JsonValue &Out) {
    bool Ok = value(Out);
    skipWs();
    return Ok && Pos == Text.size();
  }

private:
  std::string_view Text;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool value(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    }
    if (C == 't') {
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = JsonValue::Kind::Bool;
      Out.B = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    }
    return number(Out);
  }

  bool string(std::string &Out) {
    if (!consume('"'))
      return false;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\') {
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out.push_back(E);
          break;
        case 'n':
          Out.push_back('\n');
          break;
        case 't':
          Out.push_back('\t');
          break;
        default:
          return false; // No \u in our exports.
        }
      } else {
        Out.push_back(C);
      }
    }
    return Pos < Text.size() && Text[Pos++] == '"';
  }

  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::stod(std::string(Text.substr(Start, Pos - Start)));
    return true;
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    if (!consume('['))
      return false;
    skipWs();
    if (consume(']'))
      return true;
    for (;;) {
      JsonValue Elem;
      if (!value(Elem))
        return false;
      Out.Arr.push_back(std::move(Elem));
      if (consume(','))
        continue;
      return consume(']');
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    if (!consume('{'))
      return false;
    skipWs();
    if (consume('}'))
      return true;
    for (;;) {
      skipWs();
      std::string Key;
      if (!string(Key) || !consume(':'))
        return false;
      JsonValue Val;
      if (!value(Val))
        return false;
      Out.Obj.emplace(std::move(Key), std::move(Val));
      if (consume(','))
        continue;
      return consume('}');
    }
  }
};

//===----------------------------------------------------------------------===//
// Histogram edge cases.
//===----------------------------------------------------------------------===//

TEST(HistogramTest, EmptyReportsSentinel) {
  metrics::Histogram H;
  EXPECT_EQ(H.count(), 0u);
  // No samples: every percentile is the documented sentinel, never a
  // fabricated 0.0 (which is a legal sample value).
  EXPECT_EQ(H.percentile(0), metrics::Histogram::EmptyPercentile);
  EXPECT_EQ(H.percentile(50), metrics::Histogram::EmptyPercentile);
  EXPECT_EQ(H.percentile(100), metrics::Histogram::EmptyPercentile);
  EXPECT_LT(metrics::Histogram::EmptyPercentile, 0.0)
      << "sentinel must be outside the clamped sample range";
  EXPECT_EQ(H.overflowCount(), 0u);
  EXPECT_NE(H.str().find("no samples"), std::string::npos);
}

TEST(HistogramTest, SingleSampleIsExactEverywhere) {
  metrics::Histogram H;
  H.record(777);
  for (double P : {0.0, 1.0, 50.0, 90.0, 99.0, 100.0})
    EXPECT_EQ(H.percentile(P), 777.0) << "P" << P;
  EXPECT_EQ(H.summary().min(), 777.0);
  EXPECT_EQ(H.summary().max(), 777.0);
}

TEST(HistogramTest, ZeroAndNegativeSamples) {
  metrics::Histogram H;
  H.record(0);
  H.record(-5); // Clamps to 0.
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.percentile(50), 0.0);
  EXPECT_EQ(H.percentile(100), 0.0);
}

TEST(HistogramTest, OverflowBucketClampsToObservedMax) {
  metrics::Histogram H;
  int64_t Huge = int64_t(1) << 50; // Far past the last finite bucket.
  H.record(Huge);
  H.record(Huge + 3);
  EXPECT_EQ(H.overflowCount(), 2u);
  // Interpolation inside the open-ended bucket must never report beyond
  // (or below) what was actually observed.
  EXPECT_GE(H.percentile(99), double(Huge));
  EXPECT_LE(H.percentile(99), double(Huge + 3));
  EXPECT_EQ(H.percentile(100), double(Huge + 3));
}

TEST(HistogramTest, PercentilesAreMonotonicAndBracketed) {
  metrics::Histogram H;
  for (int64_t I = 1; I <= 1000; ++I)
    H.record(I * 100);
  double Last = 0;
  for (double P : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    double V = H.percentile(P);
    EXPECT_GE(V, Last) << "P" << P;
    EXPECT_GE(V, 100.0);
    EXPECT_LE(V, 100000.0);
    Last = V;
  }
  // p50 of a uniform 100..100000 spread lands mid-range (bucketed, so only
  // roughly).
  EXPECT_NEAR(H.percentile(50), 50000.0, 20000.0);
}

//===----------------------------------------------------------------------===//
// Windowed (sliding sim-time) primitives.
//===----------------------------------------------------------------------===//

TEST(WindowedCounterTest, EmptyAndBasicWindow) {
  metrics::WindowedCounter C(/*WindowNs=*/1000, /*Slots=*/10);
  EXPECT_EQ(C.windowNs(), 1000);
  EXPECT_EQ(C.slotNs(), 100);
  EXPECT_EQ(C.inWindow(0), 0u);
  EXPECT_EQ(C.inWindow(5000), 0u);

  C.add(100);
  C.add(150, 2);
  C.add(950);
  EXPECT_EQ(C.inWindow(1000), 4u);
  // Aging is slot-granular: once the query moves into slot 11, slot 1
  // (the 100ns and 150ns samples) falls out of the 10-slot window.
  EXPECT_EQ(C.inWindow(1199), 1u);
  EXPECT_EQ(C.inWindow(1849), 1u); // Slot 9 (the 950ns sample) still in.
  EXPECT_EQ(C.inWindow(1900), 0u); // ...and out one slot later.
  EXPECT_EQ(C.inWindow(2000), 0u);
}

TEST(WindowedCounterTest, RingRotationAcrossLongIdleGap) {
  metrics::WindowedCounter C(1000, 10);
  C.add(500, 7);
  // An idle gap many multiples of the window: the stale slots must not
  // leak into queries after the ring indices lap.
  int64_t Later = 500 + 1000 * 1000 + 37; // Same ring position, much later.
  EXPECT_EQ(C.inWindow(Later), 0u) << "stale slot leaked across a lap";
  C.add(Later, 3);
  EXPECT_EQ(C.inWindow(Later), 3u);
  EXPECT_EQ(C.inWindow(Later + 900), 3u); // Within the 10-slot window.
  EXPECT_EQ(C.inWindow(Later + 1100), 0u);
}

TEST(WindowedCounterTest, StaleAddIsDropped) {
  metrics::WindowedCounter C(1000, 10);
  C.add(10'000, 5);
  // A sample older than the oldest live slot must be dropped, not recorded
  // into a recycled slot where it would masquerade as recent data.
  C.add(100, 99);
  EXPECT_EQ(C.inWindow(10'000), 5u);
}

TEST(WindowedHistogramTest, EmptyWindowReportsSentinel) {
  metrics::WindowedHistogram H(1000, 10);
  EXPECT_EQ(H.countInWindow(0), 0u);
  EXPECT_EQ(H.percentileInWindow(0, 50), metrics::Histogram::EmptyPercentile);
  EXPECT_EQ(H.percentileInWindow(123456, 99),
            metrics::Histogram::EmptyPercentile);
  metrics::WindowedHistogram::Snapshot S = H.snapshot(500);
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.percentile(50), metrics::Histogram::EmptyPercentile);
}

TEST(WindowedHistogramTest, BucketBoundaryValues) {
  metrics::WindowedHistogram H(1000, 10);
  // Exact powers of two sit on log2 bucket boundaries; make sure both the
  // count and the percentile clamp stay exact at the edges.
  for (int64_t V : {1, 2, 4, 1024, 1 << 20})
    H.record(500, V);
  EXPECT_EQ(H.countInWindow(1000), 5u);
  EXPECT_EQ(H.percentileInWindow(1000, 0), 1.0);
  EXPECT_EQ(H.percentileInWindow(1000, 100), double(1 << 20));
  double P50 = H.percentileInWindow(1000, 50);
  EXPECT_GE(P50, 1.0);
  EXPECT_LE(P50, double(1 << 20));
}

TEST(WindowedHistogramTest, SamplesAgeOut) {
  metrics::WindowedHistogram H(1000, 10);
  H.record(100, 10);
  H.record(900, 1000);
  EXPECT_EQ(H.countInWindow(1000), 2u);
  // After the first slot ages out, only the 1000-valued sample remains and
  // every percentile collapses onto it.
  EXPECT_EQ(H.countInWindow(1500), 1u);
  EXPECT_EQ(H.percentileInWindow(1500, 0), 1000.0);
  EXPECT_EQ(H.percentileInWindow(1500, 100), 1000.0);
  EXPECT_EQ(H.countInWindow(5000), 0u);
}

TEST(WindowedHistogramTest, SnapshotMergeMatchesCombinedRecording) {
  // Merging two snapshots must equal recording every sample into one --
  // the property the telemetry collector's cross-node merge relies on.
  metrics::WindowedHistogram::Snapshot A, B, Both;
  for (int64_t V : {5, 17, 300})
    A.record(V), Both.record(V);
  for (int64_t V : {2, 90000})
    B.record(V), Both.record(V);
  A.merge(B);
  EXPECT_EQ(A.Count, Both.Count);
  EXPECT_EQ(A.Min, Both.Min);
  EXPECT_EQ(A.Max, Both.Max);
  EXPECT_EQ(A.Sum, Both.Sum);
  for (double P : {0.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(A.percentile(P), Both.percentile(P)) << "P" << P;
  // Merging an empty snapshot is the identity.
  metrics::WindowedHistogram::Snapshot Empty;
  A.merge(Empty);
  EXPECT_EQ(A.Count, Both.Count);
  EXPECT_EQ(A.Min, Both.Min);
}

//===----------------------------------------------------------------------===//
// Registry and reports.
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, FindOrCreateAndReport) {
  metrics::Registry Reg;
  Reg.counter("a.calls").add(3);
  Reg.counter("a.calls").add(2);
  Reg.gauge("a.depth").noteMax(7);
  Reg.gauge("a.depth").noteMax(4); // Lower: ignored.
  Reg.histogram("a.lat_ns").record(1000);
  EXPECT_EQ(Reg.size(), 3u);
  EXPECT_EQ(Reg.counter("a.calls").value(), 5u);
  EXPECT_EQ(Reg.gauge("a.depth").value(), 7);

  std::string Text = Reg.textReport();
  EXPECT_NE(Text.find("a.calls"), std::string::npos);
  EXPECT_NE(Text.find("5"), std::string::npos);
  EXPECT_NE(Text.find("a.depth"), std::string::npos);
  EXPECT_NE(Text.find("a.lat_ns"), std::string::npos);

  Reg.reset();
  EXPECT_EQ(Reg.size(), 0u);
}

TEST(MetricsRegistryTest, JsonReportParses) {
  metrics::Registry Reg;
  Reg.counter("x.count").add(42);
  Reg.gauge("x.level").set(-3);
  metrics::Histogram &H = Reg.histogram("x.lat");
  H.record(10);
  H.record(20);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(Reg.jsonReport()).parse(Root));
  ASSERT_EQ(Root.K, JsonValue::Kind::Object);

  const JsonValue *Counters = Root.field("counters");
  ASSERT_NE(Counters, nullptr);
  const JsonValue *Count = Counters->field("x.count");
  ASSERT_NE(Count, nullptr);
  EXPECT_EQ(Count->Num, 42.0);

  const JsonValue *Gauges = Root.field("gauges");
  ASSERT_NE(Gauges, nullptr);
  const JsonValue *Level = Gauges->field("x.level");
  ASSERT_NE(Level, nullptr);
  EXPECT_EQ(Level->Num, -3.0);

  const JsonValue *Hists = Root.field("histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *Lat = Hists->field("x.lat");
  ASSERT_NE(Lat, nullptr);
  const JsonValue *N = Lat->field("n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Num, 2.0);
  EXPECT_NE(Lat->field("p50"), nullptr);
  EXPECT_NE(Lat->field("max"), nullptr);
}

//===----------------------------------------------------------------------===//
// Env-knob spec parsing.
//===----------------------------------------------------------------------===//

TEST(SpecParsingTest, MetricsSpec) {
  metrics::ReportSpec S;
  ASSERT_TRUE(metrics::parseMetricsSpec("run.metrics.json", S));
  EXPECT_EQ(S.Path, "run.metrics.json");
  EXPECT_TRUE(S.Json);

  ASSERT_TRUE(metrics::parseMetricsSpec("run.txt", S));
  EXPECT_EQ(S.Path, "run.txt");
  EXPECT_FALSE(S.Json);

  ASSERT_TRUE(metrics::parseMetricsSpec("plain,format=json", S));
  EXPECT_EQ(S.Path, "plain");
  EXPECT_TRUE(S.Json);

  ASSERT_TRUE(metrics::parseMetricsSpec("data.json,format=text", S));
  EXPECT_FALSE(S.Json);

  EXPECT_FALSE(metrics::parseMetricsSpec("", S));
  EXPECT_FALSE(metrics::parseMetricsSpec("x,format=xml", S));
}

TEST(SpecParsingTest, MetricsSpecNamesBadToken) {
  metrics::ReportSpec S;
  std::string Bad;
  EXPECT_FALSE(metrics::parseMetricsSpec("x,format=xml", S, &Bad));
  EXPECT_EQ(Bad, "format=xml");
  EXPECT_FALSE(metrics::parseMetricsSpec("", S, &Bad));
  EXPECT_EQ(Bad, "<empty path>");
  // A good spec must leave the out-param untouched.
  Bad = "sentinel";
  EXPECT_TRUE(metrics::parseMetricsSpec("run.json", S, &Bad));
  EXPECT_EQ(Bad, "sentinel");
}

TEST(SpecParsingTest, TraceSpec) {
  trace::TraceSpec S;
  ASSERT_TRUE(trace::parseTraceSpec("out.trace.json", S));
  EXPECT_EQ(S.Path, "out.trace.json");
  EXPECT_EQ(S.RingCapacity, size_t(1) << 16);

  ASSERT_TRUE(trace::parseTraceSpec("t.json,cap=1024", S));
  EXPECT_EQ(S.Path, "t.json");
  EXPECT_EQ(S.RingCapacity, 1024u);

  EXPECT_FALSE(trace::parseTraceSpec("", S));
  EXPECT_FALSE(trace::parseTraceSpec("t.json,cap=0", S));
  EXPECT_FALSE(trace::parseTraceSpec("t.json,cap=abc", S));
  EXPECT_FALSE(trace::parseTraceSpec("t.json,bogus=1", S));
}

TEST(SpecParsingTest, TraceSpecNamesBadToken) {
  trace::TraceSpec S;
  std::string Bad;
  EXPECT_FALSE(trace::parseTraceSpec("t.json,cap=abc", S, &Bad));
  EXPECT_EQ(Bad, "cap=abc");
  EXPECT_FALSE(trace::parseTraceSpec("t.json,bogus=1", S, &Bad));
  EXPECT_EQ(Bad, "bogus=1");
  EXPECT_FALSE(trace::parseTraceSpec("", S, &Bad));
  EXPECT_EQ(Bad, "<empty path>");
}

//===----------------------------------------------------------------------===//
// Log-prefix hooks (output formatting is visual; here we pin the
// save/restore contracts the Simulator and call sites rely on).
//===----------------------------------------------------------------------===//

TEST(LogContextTest, ClockAndNodeSaveRestore) {
  LogClock Prev = setLogClock(LogClock{});
  // Installing returns the previous clock; restoring round-trips.
  LogClock Mine;
  Mine.NowNs = [](void *) -> long long { return 42; };
  LogClock BeforeMine = setLogClock(Mine);
  EXPECT_EQ(BeforeMine.NowNs, nullptr);
  LogClock Restored = setLogClock(BeforeMine);
  EXPECT_EQ(Restored.NowNs, Mine.NowNs);

  EXPECT_EQ(setLogNode(3), -1);
  {
    LogNodeScope Scope(5);
    EXPECT_EQ(setLogNode(5), 5); // Peek: set returns previous.
  }
  EXPECT_EQ(setLogNode(-1), 3); // Scope restored the outer node.
  setLogClock(Prev);
}

//===----------------------------------------------------------------------===//
// Trace recorder: determinism and exported-JSON shape.
//===----------------------------------------------------------------------===//

class EchoServer : public remoting::CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view,
                                       const Bytes &Args) override {
    co_return Args;
  }
};

/// A small two-node RPC workload; every layer it crosses (kernel, network,
/// remoting) is instrumented, so with tracing on it produces spans on both
/// node pids plus counter samples.
void runTracedWorkload() {
  vm::Cluster Machines(2, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 2);
  remoting::RpcEndpoint Client(
      Machines.node(0), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117), 1050);
  remoting::RpcEndpoint Server(
      Machines.node(1), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117), 1050);
  Server.publish("echo", std::make_shared<EchoServer>());

  struct Driver {
    static sim::Task<void> run(remoting::RpcEndpoint &Ep) {
      int WorkerTid = trace::track(0, "driver");
      for (int I = 0; I < 6; ++I) {
        int64_t Start = Ep.node().sim().now().nanosecondsCount();
        Bytes Args = serial::encodeValues(std::string(size_t(16 + I), 'q'));
        ErrorOr<Bytes> Reply = co_await Ep.call(1, 1050, "echo", "ping", Args);
        EXPECT_TRUE(Reply);
        trace::complete(0, WorkerTid, "driver.round", Start,
                        Ep.node().sim().now().nanosecondsCount() - Start);
      }
    }
  };
  Machines.sim().spawn(Driver::run(Client));
  Machines.sim().run();
}

/// RAII guard: every trace test leaves the global recorder exactly as it
/// found it (disabled + empty) so test order cannot matter.
struct TraceSession {
  TraceSession() {
    trace::reset();
    trace::setEnabled(true);
  }
  ~TraceSession() {
    trace::setEnabled(false);
    trace::reset();
  }
};

TEST(TraceTest, DisabledRecordsNothing) {
  trace::setEnabled(false);
  trace::reset();
  trace::complete(0, 0, "ignored", 0, 10);
  trace::instant(1, 0, "ignored", 5);
  trace::counter(-1, "ignored", 5, 1);
  EXPECT_EQ(trace::track(0, "ignored"), 0);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(trace::exportJson()).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  EXPECT_TRUE(Events->Arr.empty());
}

TEST(TraceTest, TwoIdenticalRunsExportIdenticalJson) {
  TraceSession Session;
  runTracedWorkload();
  std::string First = trace::exportJson();

  trace::reset();
  runTracedWorkload();
  std::string Second = trace::exportJson();

  EXPECT_FALSE(First.empty());
  // Byte-identical: virtual timestamps only, no wall-clock anywhere.
  EXPECT_EQ(First, Second);
}

TEST(TraceTest, ExportIsWellFormedChromeJson) {
  TraceSession Session;
  runTracedWorkload();

  JsonValue Root;
  ASSERT_TRUE(JsonParser(trace::exportJson()).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Kind::Array);
  ASSERT_FALSE(Events->Arr.empty());

  std::set<int> SpanPids;
  std::set<std::string> Phases;
  bool SawCounter = false, SawMetadata = false;
  for (const JsonValue &Ev : Events->Arr) {
    ASSERT_EQ(Ev.K, JsonValue::Kind::Object);
    const JsonValue *Ph = Ev.field("ph");
    const JsonValue *Pid = Ev.field("pid");
    const JsonValue *Name = Ev.field("name");
    ASSERT_NE(Ph, nullptr);
    ASSERT_NE(Pid, nullptr);
    ASSERT_NE(Name, nullptr);
    EXPECT_GE(Pid->Num, 0.0);
    EXPECT_EQ(Pid->Num, double(int(Pid->Num))) << "pid must be integral";
    Phases.insert(Ph->Str);
    if (Ph->Str == "M") {
      SawMetadata = true;
      continue; // Metadata has args.name, not ts.
    }
    if (Ph->Str == "X" || Ph->Str == "i") {
      const JsonValue *Tid = Ev.field("tid");
      ASSERT_NE(Tid, nullptr);
      EXPECT_GE(Tid->Num, 0.0);
    }
    ASSERT_NE(Ev.field("ts"), nullptr);
    if (Ph->Str == "X") {
      EXPECT_NE(Ev.field("dur"), nullptr);
      SpanPids.insert(int(Pid->Num));
    }
    if (Ph->Str == "C")
      SawCounter = true;
  }
  // Spans from both simulated nodes: client rounds on pid 1 (node 0),
  // rpc.serve on pid 2 (node 1).
  EXPECT_GE(SpanPids.size(), 2u) << "expected spans from >= 2 node pids";
  EXPECT_TRUE(SawCounter) << "expected counter samples (net.in_flight)";
  EXPECT_TRUE(SawMetadata) << "expected process/thread name metadata";
  EXPECT_TRUE(Phases.count("b") && Phases.count("e"))
      << "expected async begin/end pairs (rpc.call / net.transfer)";
}

TEST(TraceTest, NamedTracksGetDistinctTids) {
  TraceSession Session;
  int T1 = trace::track(0, "lane-one");
  int T2 = trace::track(0, "lane-two");
  EXPECT_GT(T1, 0);
  EXPECT_GT(T2, 0);
  EXPECT_NE(T1, T2);
  trace::complete(0, T1, "on-one", 100, 50);
  trace::complete(0, T2, "on-two", 100, 50);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(trace::exportJson()).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  std::set<int> Tids;
  int NamedTracks = 0;
  for (const JsonValue &Ev : Events->Arr) {
    const JsonValue *Ph = Ev.field("ph");
    ASSERT_NE(Ph, nullptr);
    if (Ph->Str == "X") {
      const JsonValue *Tid = Ev.field("tid");
      ASSERT_NE(Tid, nullptr);
      Tids.insert(int(Tid->Num));
    }
    if (Ph->Str == "M" && Ev.field("name")->Str == "thread_name")
      ++NamedTracks;
  }
  EXPECT_EQ(Tids.size(), 2u);
  EXPECT_GE(NamedTracks, 2);
}

TEST(TraceTest, RingOverwritesOldestAndKeepsExportValid) {
  trace::reset();
  trace::setRingCapacity(8);
  trace::setEnabled(true);
  for (int I = 0; I < 40; ++I)
    trace::instant(0, 0, "tick", I * 10);
  std::string Json = trace::exportJson();
  trace::setEnabled(false);
  trace::reset();
  trace::setRingCapacity(size_t(1) << 16); // Restore the default.

  JsonValue Root;
  ASSERT_TRUE(JsonParser(Json).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  int Instants = 0;
  double FirstTs = -1;
  for (const JsonValue &Ev : Events->Arr)
    if (Ev.field("ph")->Str == "i") {
      if (Instants == 0)
        FirstTs = Ev.field("ts")->Num;
      ++Instants;
    }
  // Only the 8 newest survive, oldest-first: 32*10ns..39*10ns.
  EXPECT_EQ(Instants, 8);
  EXPECT_EQ(FirstTs, 0.320); // 320 ns as microseconds.
}

TEST(TraceTest, RingWrapMidSpanMarksTruncated) {
  trace::reset();
  trace::setRingCapacity(8);
  trace::setEnabled(true);
  // The begin is evicted by the wrap; its end survives.  The exporter must
  // mark the surviving half as truncated instead of letting a viewer show
  // a span of unknown extent.
  trace::asyncBegin(0, "span.lost_begin", 100, 1);
  for (int I = 0; I < 10; ++I)
    trace::instant(0, 0, "filler", 200 + I * 10);
  trace::asyncEnd(0, "span.lost_begin", 400, 1);
  // A fully-inside pair for contrast: must NOT be marked.
  trace::asyncBegin(0, "span.whole", 500, 2);
  trace::asyncEnd(0, "span.whole", 510, 2);
  std::string Json = trace::exportJson();
  trace::setEnabled(false);
  trace::reset();
  trace::setRingCapacity(size_t(1) << 16);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(Json).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  int TruncatedEnds = 0, CleanPairs = 0;
  for (const JsonValue &Ev : Events->Arr) {
    const JsonValue *Ph = Ev.field("ph");
    if (Ph->Str != "b" && Ph->Str != "e")
      continue;
    const JsonValue *Args = Ev.field("args");
    bool Truncated = Args && Args->field("truncated") &&
                     Args->field("truncated")->B;
    if (Ev.field("name")->Str == "span.lost_begin") {
      EXPECT_EQ(Ph->Str, "e") << "the begin should have been evicted";
      EXPECT_TRUE(Truncated);
      ++TruncatedEnds;
    }
    if (Ev.field("name")->Str == "span.whole") {
      EXPECT_FALSE(Truncated);
      ++CleanPairs;
    }
  }
  EXPECT_EQ(TruncatedEnds, 1);
  EXPECT_EQ(CleanPairs, 2);
}

TEST(TraceTest, CrossNodeAsyncIdsDoNotMerge) {
  TraceSession Session;
  // Two nodes using the same local async id for unrelated spans: the
  // export must scope ids by pid so a viewer (or parcs-prof) never joins
  // them into one span.
  trace::asyncBegin(0, "work", 100, 42);
  trace::asyncBegin(1, "work", 110, 42);
  trace::asyncEnd(0, "work", 200, 42);
  trace::asyncEnd(1, "work", 300, 42);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(trace::exportJson()).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  std::set<std::string> Ids;
  std::map<std::string, std::set<double>> PidsById;
  for (const JsonValue &Ev : Events->Arr) {
    const JsonValue *Ph = Ev.field("ph");
    if (Ph->Str != "b" && Ph->Str != "e")
      continue;
    const JsonValue *Id = Ev.field("id");
    ASSERT_NE(Id, nullptr);
    ASSERT_EQ(Id->K, JsonValue::Kind::String);
    Ids.insert(Id->Str);
    PidsById[Id->Str].insert(Ev.field("pid")->Num);
  }
  EXPECT_EQ(Ids.size(), 2u) << "same local id on two nodes must stay distinct";
  for (const auto &[Id, Pids] : PidsById)
    EXPECT_EQ(Pids.size(), 1u) << "exported id " << Id << " spans pids";
}

TEST(TraceTest, CausalContextRidesInArgs) {
  TraceSession Session;
  uint64_t Parent = trace::mintCausalId();
  uint64_t Child = trace::mintCausalId();
  ASSERT_NE(Parent, 0u);
  ASSERT_NE(Child, Parent);
  trace::completeCtx(0, 0, "step", 100, 50, Child, Parent);
  trace::instantCtx(0, 0, "mark", 160, Child, 0);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(trace::exportJson()).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  int CtxEvents = 0;
  for (const JsonValue &Ev : Events->Arr) {
    const JsonValue *Args = Ev.field("args");
    if (!Args || !Args->field("ctx"))
      continue;
    ++CtxEvents;
    if (Ev.field("name")->Str == "step") {
      EXPECT_EQ(Args->field("ctx")->Num, double(Child));
      ASSERT_NE(Args->field("parent"), nullptr);
      EXPECT_EQ(Args->field("parent")->Num, double(Parent));
    }
    if (Ev.field("name")->Str == "mark") {
      EXPECT_EQ(Args->field("ctx")->Num, double(Child));
      EXPECT_EQ(Args->field("parent"), nullptr) << "parent 0 is omitted";
    }
  }
  EXPECT_EQ(CtxEvents, 2);
}

TEST(TraceTest, HandoffSlotIsOneShot) {
  TraceSession Session;
  trace::handoff(77);
  EXPECT_EQ(trace::takeHandoff(), 77u);
  EXPECT_EQ(trace::takeHandoff(), 0u) << "take must clear the slot";
}

TEST(TraceTest, FlightModeKeepsBoundedTailWithoutMintingIds) {
  trace::reset();
  trace::setFlightCapacity(8);
  trace::setFlightRecording(true);
  // Flight-only mode must not mint causal ids: the wire bytes of an RPC
  // run with the recorder shadowing must match an uninstrumented run.
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(trace::mintCausalId(), 0u);
  for (int I = 0; I < 40; ++I)
    trace::instant(0, 0, "tick", I * 10);
  std::string Flight = trace::exportFlightJson();
  std::string Full = trace::exportJson();
  trace::setFlightRecording(false);
  trace::reset();
  trace::setFlightCapacity(512);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(Flight).parse(Root));
  const JsonValue *Events = Root.field("traceEvents");
  ASSERT_NE(Events, nullptr);
  int Instants = 0;
  for (const JsonValue &Ev : Events->Arr)
    if (Ev.field("ph")->Str == "i")
      ++Instants;
  EXPECT_EQ(Instants, 8) << "flight ring must keep only the recent tail";

  // The big rings were off: the full-trace export saw nothing.
  JsonValue FullRoot;
  ASSERT_TRUE(JsonParser(Full).parse(FullRoot));
  EXPECT_TRUE(FullRoot.field("traceEvents")->Arr.empty());
}

TEST(TraceTest, FlightTailMatchesFullTraceSuffix) {
  // With both modes on, the flight ring is exactly the tail of the full
  // trace -- the property the crash-dump acceptance check rests on.
  trace::reset();
  trace::setFlightCapacity(4);
  trace::setEnabled(true);
  trace::setFlightRecording(true);
  for (int I = 0; I < 20; ++I)
    trace::instant(0, 0, "tick", I * 10);
  std::string Flight = trace::exportFlightJson();
  std::string Full = trace::exportJson();
  trace::setFlightRecording(false);
  trace::setEnabled(false);
  trace::reset();
  trace::setFlightCapacity(512);

  JsonValue FlightRoot, FullRoot;
  ASSERT_TRUE(JsonParser(Flight).parse(FlightRoot));
  ASSERT_TRUE(JsonParser(Full).parse(FullRoot));
  std::vector<double> FlightTs, FullTs;
  for (const JsonValue &Ev : FlightRoot.field("traceEvents")->Arr)
    if (Ev.field("ph")->Str == "i")
      FlightTs.push_back(Ev.field("ts")->Num);
  for (const JsonValue &Ev : FullRoot.field("traceEvents")->Arr)
    if (Ev.field("ph")->Str == "i")
      FullTs.push_back(Ev.field("ts")->Num);
  ASSERT_EQ(FlightTs.size(), 4u);
  ASSERT_EQ(FullTs.size(), 20u);
  EXPECT_TRUE(std::equal(FlightTs.begin(), FlightTs.end(),
                         FullTs.end() - 4))
      << "flight ring must be the suffix of the full trace";
}

} // namespace
