//===- tests/CoverageTest.cpp - cross-cutting coverage --------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behaviours that the per-module suites do not reach: HTTP-channel
/// end-to-end calls, third-party RMI lookups, move-only task results,
/// node accounting under contention, LocalOnly placement, and pool
/// saturation metrics.
///
//===----------------------------------------------------------------------===//

#include "core/ObjectManager.h"
#include "core/Proxy.h"
#include "core/World.h"
#include "rmi/Rmi.h"
#include "vm/ThreadPool.h"

#include <gtest/gtest.h>

#include <memory>

using namespace parcs;
using namespace parcs::sim;

namespace {

SimTime ms(int64_t N) { return SimTime::milliseconds(N); }

class EchoHandler : public remoting::CallHandler {
public:
  sim::Task<ErrorOr<remoting::Bytes>>
  handleCall(std::string_view Method,
             const remoting::Bytes &Args) override {
    if (Method != "echo")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    co_return remoting::Bytes(Args);
  }
};

//===----------------------------------------------------------------------===//
// HTTP channel end to end
//===----------------------------------------------------------------------===//

TEST(CoverageTest, HttpChannelCarriesRealCalls) {
  vm::Cluster Machines(2, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 2);
  remoting::RpcEndpoint Client(
      Machines.node(0), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingHttp117),
      8080);
  remoting::RpcEndpoint Server(
      Machines.node(1), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingHttp117),
      8080);
  Server.publish("echo", std::make_shared<EchoHandler>());

  ErrorOr<std::vector<int32_t>> Out(std::vector<int32_t>{});
  struct Proc {
    static Task<void> run(remoting::RpcEndpoint &Client,
                          ErrorOr<std::vector<int32_t>> &Out) {
      auto Handle = remoting::getObject(Client, "http://node1:8080/echo");
      EXPECT_TRUE(Handle.hasValue());
      if (!Handle)
        co_return;
      std::vector<int32_t> Data = {10, 20, 30};
      Out = co_await Handle->invokeTyped<std::vector<int32_t>>("echo", Data);
    }
  };
  Machines.sim().spawn(Proc::run(Client, Out));
  Machines.sim().run();
  ASSERT_TRUE(Out.hasValue());
  EXPECT_EQ(*Out, (std::vector<int32_t>{10, 20, 30}));
  // SOAP + HTTP framing really inflates the wire: a 12-byte argument
  // round trip costs ~1 KB.
  EXPECT_GT(Net.wireBytesCarried(), 800u);
}

TEST(CoverageTest, TcpUriRejectedOnHttpEndpoint) {
  vm::Cluster Machines(1, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 1);
  remoting::RpcEndpoint Client(
      Machines.node(0), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingHttp117),
      8080);
  EXPECT_FALSE(
      remoting::getObject(Client, "tcp://node0:8080/echo").hasValue());
}

//===----------------------------------------------------------------------===//
// RMI: third party resolves a binding made by another node
//===----------------------------------------------------------------------===//

TEST(CoverageTest, ThirdNodeResolvesRmiBinding) {
  vm::Cluster Machines(3, vm::VmKind::SunJvm142);
  net::Network Net(Machines.sim(), 3);
  std::vector<std::unique_ptr<remoting::RpcEndpoint>> Eps;
  for (int I = 0; I < 3; ++I)
    Eps.push_back(std::make_unique<remoting::RpcEndpoint>(
        Machines.node(I), Net,
        remoting::stackProfile(remoting::StackKind::JavaRmi),
        rmi::RegistryPort));
  rmi::installRegistry(*Eps[0]);
  Eps[1]->publish("impl", std::make_shared<EchoHandler>());

  ErrorOr<std::vector<int32_t>> Out(std::vector<int32_t>{});
  struct Proc {
    static Task<void> run(remoting::RpcEndpoint &Server,
                          remoting::RpcEndpoint &ThirdParty,
                          ErrorOr<std::vector<int32_t>> &Out) {
      Error Bind = co_await rmi::Naming::rebind(
          Server, "rmi://node0:1099/Echo", "impl");
      EXPECT_FALSE(Bind) << Bind.str();
      // Node 2, which neither hosts the registry nor the object, looks
      // it up and calls it.
      auto Handle =
          co_await rmi::Naming::lookup(ThirdParty, "rmi://node0:1099/Echo");
      EXPECT_TRUE(Handle.hasValue());
      if (!Handle)
        co_return;
      std::vector<int32_t> Data = {7};
      Out = co_await Handle->invokeTyped<std::vector<int32_t>>("echo", Data);
    }
  };
  Machines.sim().spawn(Proc::run(*Eps[1], *Eps[2], Out));
  Machines.sim().run();
  ASSERT_TRUE(Out.hasValue());
  EXPECT_EQ(Out->at(0), 7);
}

//===----------------------------------------------------------------------===//
// Move-only results through Task<T>
//===----------------------------------------------------------------------===//

Task<std::unique_ptr<int>> makeUnique(Simulator &Sim, int Value) {
  co_await Sim.delay(SimTime::microseconds(1));
  co_return std::make_unique<int>(Value);
}

TEST(CoverageTest, TaskCarriesMoveOnlyValues) {
  Simulator Sim;
  int Got = 0;
  struct Proc {
    static Task<void> run(Simulator &Sim, int &Got) {
      std::unique_ptr<int> Ptr = co_await makeUnique(Sim, 99);
      Got = *Ptr;
    }
  };
  Sim.spawn(Proc::run(Sim, Got));
  Sim.run();
  EXPECT_EQ(Got, 99);
}

//===----------------------------------------------------------------------===//
// Node accounting + pool saturation
//===----------------------------------------------------------------------===//

TEST(CoverageTest, BusyTimeAccountsEveryCoreSecond) {
  Simulator Sim;
  vm::Node N(Sim, 0, vm::VmKind::NativeCpp, 2);
  for (int I = 0; I < 5; ++I) {
    struct Burn {
      static Task<void> run(vm::Node &N) { co_await N.compute(ms(40)); }
    };
    Sim.spawn(Burn::run(N));
  }
  Sim.run();
  EXPECT_EQ(N.busyTime(), ms(200));
  EXPECT_EQ(N.runnableThreads(), 0);
  // 5 x 40 ms on 2 cores cannot finish before 100 ms.
  EXPECT_GE(Sim.now(), ms(100));
}

TEST(CoverageTest, PoolQueueDepthVisibleDuringSaturation) {
  Simulator Sim;
  vm::Node N(Sim, 0, vm::VmKind::NativeCpp, 2);
  vm::ThreadPool Pool(N, 1);
  for (int I = 0; I < 4; ++I)
    Pool.post([&N]() -> Task<void> {
      struct Burn {
        static Task<void> run(vm::Node &N) { co_await N.compute(ms(10)); }
      };
      return Burn::run(N);
    });
  // At t=5ms the single worker is mid-way through item 1's 10 ms burn;
  // the other three items must still be queued.
  Sim.runUntil(ms(5));
  EXPECT_EQ(Pool.queueDepth(), 3u);
  Sim.run();
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.posted(), 4u);
}

//===----------------------------------------------------------------------===//
// LocalOnly placement + stats
//===----------------------------------------------------------------------===//

TEST(CoverageTest, LocalOnlyPlacementPinsToHome) {
  scoopp::ParallelClassRegistry Registry;
  Registry.registerClass(
      {"Echo", [](scoopp::ScooppRuntime &, vm::Node &)
                   -> std::shared_ptr<remoting::CallHandler> {
         return std::make_shared<EchoHandler>();
       }});
  scoopp::ScooppConfig Config;
  Config.Placement = scoopp::PlacementPolicy::LocalOnly;
  scoopp::ScooppWorld W(3, std::move(Registry), Config);
  W.runMain([](scoopp::ScooppRuntime &Runtime) -> Task<void> {
    for (int Home = 0; Home < 3; ++Home) {
      scoopp::ProxyBase P(Runtime, Home);
      Error E = co_await P.create("Echo");
      EXPECT_FALSE(E);
      EXPECT_EQ(P.ref().Node, Home);
    }
  });
  for (int N = 0; N < 3; ++N)
    EXPECT_EQ(W.runtime().om(N).hostedObjects(), 1);
}

} // namespace
