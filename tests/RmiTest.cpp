//===- tests/RmiTest.cpp - Java RMI facade tests --------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "rmi/Rmi.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::rmi;
using namespace parcs::sim;

namespace {

/// Fig. 1's DivideServer, as a unicast remote object.
class DivideServer : public UnicastRemoteObject {
public:
  explicit DivideServer(vm::Node &Host) : Host(Host) {}

  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method == "divide") {
      double A = 0, B = 0;
      if (!serial::decodeValues(Args, A, B))
        co_return Error(ErrorCode::MalformedMessage, "divide args");
      co_await Host.compute(SimTime::microseconds(1));
      co_return serial::encodeValues(A / B);
    }
    co_return Error(ErrorCode::UnknownMethod, std::string(Method));
  }

private:
  vm::Node &Host;
};

struct RmiWorld {
  explicit RmiWorld(int Nodes = 2)
      : Machines(Nodes, vm::VmKind::SunJvm142), Net(Machines.sim(), Nodes) {
    for (int I = 0; I < Nodes; ++I)
      Endpoints.push_back(std::make_unique<RpcEndpoint>(
          Machines.node(I), Net,
          remoting::stackProfile(remoting::StackKind::JavaRmi),
          RegistryPort));
    // The registry runs on node 0, like `rmiregistry` on the head node.
    installRegistry(*Endpoints[0]);
  }

  Simulator &sim() { return Machines.sim(); }
  RpcEndpoint &ep(int I) { return *Endpoints[static_cast<size_t>(I)]; }

  vm::Cluster Machines;
  net::Network Net;
  std::vector<std::unique_ptr<RpcEndpoint>> Endpoints;
};

//===----------------------------------------------------------------------===//
// URI parsing
//===----------------------------------------------------------------------===//

TEST(RmiUriTest, ParsesFull) {
  auto U = parseRmiUri("rmi://node1:1099/DivideServer");
  ASSERT_TRUE(U.hasValue());
  EXPECT_EQ(U->Node, 1);
  EXPECT_EQ(U->Port, 1099);
  EXPECT_EQ(U->Name, "DivideServer");
}

TEST(RmiUriTest, DefaultsPort) {
  auto U = parseRmiUri("rmi://localhost/Div");
  ASSERT_TRUE(U.hasValue());
  EXPECT_EQ(U->Node, 0);
  EXPECT_EQ(U->Port, RegistryPort);
}

TEST(RmiUriTest, RejectsMalformed) {
  EXPECT_FALSE(parseRmiUri("tcp://node0:1/x").hasValue());
  EXPECT_FALSE(parseRmiUri("rmi://node0:1").hasValue());
  EXPECT_FALSE(parseRmiUri("rmi://host:1/x").hasValue());
  EXPECT_FALSE(parseRmiUri("rmi://node0:9x/x").hasValue());
}

//===----------------------------------------------------------------------===//
// Registry + calls
//===----------------------------------------------------------------------===//

Task<void> bindLookupDivide(RmiWorld &W, ErrorOr<double> &Out) {
  // Server side (node 1): export + rebind, as in the paper's Fig. 1.
  W.ep(1).publish("DivideServerImpl",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  Error BindErr = co_await Naming::rebind(
      W.ep(1), "rmi://node0:1099/DivideServer", "DivideServerImpl");
  EXPECT_FALSE(BindErr) << BindErr.str();

  // Client side (node 0): lookup then call.
  auto Handle =
      co_await Naming::lookup(W.ep(0), "rmi://node0:1099/DivideServer");
  EXPECT_TRUE(Handle.hasValue());
  if (!Handle)
    co_return;
  Out = co_await Handle->invokeTyped<double>("divide", 21.0, 6.0);
}

TEST(RmiTest, BindLookupInvoke) {
  RmiWorld W;
  ErrorOr<double> Out(0.0);
  W.sim().spawn(bindLookupDivide(W, Out));
  W.sim().run();
  ASSERT_TRUE(Out.hasValue());
  EXPECT_DOUBLE_EQ(*Out, 3.5);
}

TEST(RmiTest, LookupUnboundNameFails) {
  RmiWorld W;
  ErrorOr<remoting::RemoteHandle> Out(remoting::RemoteHandle{});
  struct Proc {
    static Task<void> run(RmiWorld &W,
                          ErrorOr<remoting::RemoteHandle> &Out) {
      Out = co_await Naming::lookup(W.ep(0), "rmi://node0:1099/Nothing");
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.error().code(), ErrorCode::UnknownObject);
}

TEST(RmiTest, RebindReplacesAndUnbindRemoves) {
  RmiWorld W;
  std::vector<std::string> Listed;
  bool UnbindOk = false, LookupAfterUnbind = true;
  struct Proc {
    static Task<void> run(RmiWorld &W, std::vector<std::string> &Listed,
                          bool &UnbindOk, bool &LookupAfterUnbind) {
      W.ep(1).publish("A", std::make_shared<DivideServer>(W.Machines.node(1)));
      W.ep(1).publish("B", std::make_shared<DivideServer>(W.Machines.node(1)));
      (void)co_await Naming::rebind(W.ep(1), "rmi://node0:1099/Svc", "A");
      (void)co_await Naming::rebind(W.ep(1), "rmi://node0:1099/Svc", "B");
      (void)co_await Naming::rebind(W.ep(1), "rmi://node0:1099/Other", "A");
      auto Names = co_await Naming::list(W.ep(0), "rmi://node0:1099/ignored");
      if (Names)
        Listed = *Names;
      Error E = co_await Naming::unbind(W.ep(1), "rmi://node0:1099/Other");
      UnbindOk = !E;
      auto Handle = co_await Naming::lookup(W.ep(0), "rmi://node0:1099/Other");
      LookupAfterUnbind = Handle.hasValue();
    }
  };
  W.sim().spawn(Proc::run(W, Listed, UnbindOk, LookupAfterUnbind));
  W.sim().run();
  EXPECT_EQ(Listed, (std::vector<std::string>{"Other", "Svc"}));
  EXPECT_TRUE(UnbindOk);
  EXPECT_FALSE(LookupAfterUnbind);
}

//===----------------------------------------------------------------------===//
// Latency calibration: RMI is the slowest stack (520 us one-way)
//===----------------------------------------------------------------------===//

Task<void> rmiLatency(RmiWorld &W, int Rounds, double &OneWayUs) {
  W.ep(1).publish("DivideServerImpl",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  (void)co_await Naming::rebind(W.ep(1), "rmi://node0:1099/Div",
                                "DivideServerImpl");
  auto Handle = co_await Naming::lookup(W.ep(0), "rmi://node0:1099/Div");
  EXPECT_TRUE(Handle.hasValue());
  if (!Handle)
    co_return;
  (void)co_await Handle->invokeTyped<double>("divide", 1.0, 1.0);
  SimTime Start = W.sim().now();
  for (int I = 0; I < Rounds; ++I)
    (void)co_await Handle->invokeTyped<double>("divide", 1.0, 1.0);
  OneWayUs = (W.sim().now() - Start).toMicrosF() / (2.0 * Rounds);
}

TEST(RmiCalibrationTest, OneWayLatencyNear520us) {
  RmiWorld W;
  double OneWayUs = 0;
  W.sim().spawn(rmiLatency(W, 50, OneWayUs));
  W.sim().run();
  EXPECT_NEAR(OneWayUs, 520.0, 60.0);
}

} // namespace
