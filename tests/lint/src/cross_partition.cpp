// Fixture for the cross-partition-shared-state rule: PARCS_HOT regions run
// on every PDES partition worker concurrently, so they may only touch
// partition-owned state.  Not real code; never compiled.

namespace metrics {
struct Registry {
  static Registry &global();
  int counter(const char *);
};
} // namespace metrics

int coldCounter() {
  static int Calls = 0; // cold code: statics are fine outside hot regions
  return metrics::Registry::global().counter("cold");
}

// PARCS_HOT_BEGIN(fixture-hot): pretend partition-parallel event loop.
static int internalLinkageFn(int X) { return X + 1; } // function, not state
int hotCounter() {
  static int Calls = 0;
  static const int Limit = 64;
  static constexpr int Shift = 9;
  static thread_local int Local = 0;
  ++Local;
  int Total = metrics::Registry::global().counter("hot");
  int Inst = metrics::Registry::instance().counter("hot2");
  // parcs-lint: allow(cross-partition-shared-state): folded under the
  // window barrier, where only one worker runs.
  int Folded = metrics::Registry::global().counter("barrier");
  return internalLinkageFn(Calls + Limit + Shift + Total + Inst + Folded);
}
// PARCS_HOT_END(fixture-hot)

int coldAgain() {
  static int More = 0; // cold again after the region closes
  return ++More + metrics::Registry::instance().counter("cold2");
}
