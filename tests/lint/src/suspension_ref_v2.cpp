// Fixture: suspension-ref v2 -- flow-sensitive refinements over the CFG.
// Each function isolates one refinement: kill-on-reassign, path
// sensitivity, per-iteration range-for declarations, frame-local roots
// (only structural mutation invalidates), await-initializer ordering, and
// audited stable runtime services.
#include <map>
#include <string>
#include <vector>
struct Aw { bool await_ready(); void await_suspend(int); int await_resume(); };
Aw tick();

int reboundAfterResume(std::map<int, std::string> &M) {
  auto It = M.find(1);
  int X = co_await tick();
  It = M.find(2);
  return X + static_cast<int>(It->second.size()); // clean: re-bound
}

int useOnlyOnColdPath(std::map<int, std::string> &M, bool C) {
  std::string &N = M[0];
  if (C) {
    int X = co_await tick();
    return X;
  }
  return static_cast<int>(N.size()); // clean: never crossed a suspension
}

int useOnHotPath(std::map<int, std::string> &M, bool C) {
  std::string &N = M[0];
  if (C) {
    int X = co_await tick();
    (void)X;
  }
  return static_cast<int>(N.size()); // FINDING: may have crossed
}

int rangeForFrameLocal() {
  std::vector<int> V = {1, 2, 3};
  int S = 0;
  for (int &E : V) {
    S += co_await tick();
    S += E; // clean: V is frame-local and never resized
  }
  return S;
}

int frameLocalRootMutated() {
  std::vector<int> V = {1, 2, 3};
  int &E = V[0];
  int X = co_await tick();
  V.push_back(4);
  return X + E; // FINDING: root mutated while/after suspension
}

int awaitInitializer() {
  const std::string &Value = co_await tick2();
  return static_cast<int>(Value.size()); // clean: bound after resume
}

struct Simulator { void step(); };
Simulator &simOf();
int stableService() {
  Simulator &Sim = simOf();
  int X = co_await tick();
  Sim.step(); // clean: audited stable type
  return X;
}
