// Fixture: determinism-taint -- wall-clock/randomness values flowing
// through assignments and helper returns into export sinks, plus an
// unordered container passed straight into a sink.  Findings come from the
// whole-program layer (lint/Analysis.h), not the per-file rules.
#include <unordered_map>
namespace trace {
void counter(const char *Name, double Value);
void dump(const char *Name, const std::unordered_map<int, int> &M);
}
namespace metrics { void gauge(const char *Name, double Value); }
struct WallTimer { double seconds(); };

double scaled() {
  WallTimer T;
  double Raw = T.seconds();
  return Raw * 1000.0;
}

void exportsDirect() {
  WallTimer T;
  double S = T.seconds();
  trace::counter("elapsed", S); // FINDING
}

void exportsThroughHelper() {
  double MS = scaled();
  metrics::gauge("elapsed_ms", MS); // FINDING: helper returns taint
}

void exportsUnordered() {
  std::unordered_map<int, int> Hist;
  trace::dump("hist", Hist); // FINDING: hash order leaks
}

void simClockIsClean(double SimNow) {
  double S = SimNow * 2.0;
  trace::counter("sim_now", S); // clean
}

void suppressedExport() {
  WallTimer T;
  double S = T.seconds();
  // parcs-lint: allow(determinism-taint): one-shot debug export, audited.
  trace::counter("debug_elapsed", S);
}
