// Fixture: determinism-unordered-iteration in an export-producing path
// (this file's fixture-relative path starts with src/serial/).
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

std::string exportAll(const std::unordered_map<int, int> &Table) {
  std::string Out;
  for (const auto &[K, V] : Table) // FINDING: range-for over Table
    Out += std::to_string(K) + "=" + std::to_string(V) + "\n";
  return Out;
}

int exportIterators(const std::unordered_map<int, int> &Table) {
  int Sum = 0;
  for (auto It = Table.begin(); It != Table.end(); ++It) // FINDING: begin()
    Sum += It->second;
  return Sum;
}

int lookupsAreFine(const std::unordered_map<int, int> &Table, int Key) {
  auto It = Table.find(Key); // point lookup, no finding
  return It == Table.end() ? 0 : It->second;
}

std::string sortedCopyStillNeedsSuppression(
    const std::unordered_map<int, int> &Table) {
  // The copy-then-sort idiom still *iterates* the table; the rule cannot
  // see the later sort, so the author vouches for it inline.
  // parcs-lint: allow(determinism-unordered-iteration): sorted before use.
  std::map<int, int> Sorted(Table.begin(), Table.end());
  std::string Out;
  for (const auto &[K, V] : Sorted) // ordered map, no finding
    Out += std::to_string(K) + ":" + std::to_string(V);
  return Out;
}
