// Fixture: nonreentrant-call (fixture-relative path starts with src/).
#include <cstdlib>
#include <ctime>
#include <string>

struct Tokenizer {
  // A member *declaration* is indistinguishable from a call at the token
  // level (identifier followed by '('); the suppression documents that.
  // parcs-lint: allow(nonreentrant-call): member declaration, not a call.
  char *strtok(char *S) { return S; }
};

std::string splitFirst(char *Buffer) {
  char *Tok = strtok(Buffer, ","); // FINDING: strtok
  Tokenizer T;
  char *Member = T.strtok(Buffer); // member call, no finding
  return Tok && Member ? std::string(Tok) : std::string();
}

long utcParts(std::time_t Stamp) {
  std::tm *Parts = std::gmtime(&Stamp); // FINDING: gmtime
  std::tm *Local = localtime(&Stamp);   // FINDING: localtime
  return Parts->tm_hour + Local->tm_min;
}

void configure() {
  setenv("PARCS_MODE", "test", 1); // FINDING: setenv
}

void configureSuppressed() {
  // parcs-lint: allow(nonreentrant-call): fixture proves suppression.
  setenv("PARCS_MODE", "test", 1);
}
