// Fixture: determinism-wall-clock violations and non-violations.
#include <chrono>
#include <cstdlib>
#include <ctime>

struct Sim {
  // A *declaration* named time() is indistinguishable from a call at the
  // token level; the suppression documents the heuristic's limit.
  // parcs-lint: allow(determinism-wall-clock): member declaration, not a call.
  long time() const { return 42; }
};

namespace mylib {
inline long time(int) { return 7; } // parcs-lint: allow(determinism-wall-clock): declaration; qualified calls to it are proven fine below.
} // namespace mylib

long sampleClockType() {
  auto Now = std::chrono::steady_clock::now(); // FINDING: steady_clock
  return Now.time_since_epoch().count();
}

long sampleCalls() {
  long A = std::time(nullptr); // FINDING: time
  int B = rand();              // FINDING: rand
  Sim S;
  long C = S.time();        // member call, no finding
  long D = mylib::time(0);  // qualified non-std call, no finding
  return A + B + C + D;
}

int sampleSuppressed() {
  // parcs-lint: allow(determinism-wall-clock): fixture proves suppression.
  return static_cast<int>(std::time(nullptr));
}
