// Fixture: hot-path-alloc inside PARCS_HOT regions.
#include <functional>
#include <memory>
#include <string>

int coldAllocationIsFine() {
  auto P = std::make_unique<int>(1); // outside any region, no finding
  return *P;
}

// PARCS_HOT_BEGIN(fixture-kernel)

int hotAllocations(int N) {
  int *Raw = new int(N);                        // FINDING: new
  auto Shared = std::make_shared<int>(N);       // FINDING: make_shared
  std::function<int()> F = [N] { return N; };   // FINDING: std::function
  std::string Tag = std::string("tag");         // FINDING: string temporary
  std::string Num = std::to_string(N);          // FINDING: to_string
  int Result = *Raw + *Shared + F() +
               static_cast<int>(Tag.size() + Num.size());
  delete Raw;
  return Result;
}

int hotButVouchedFor(int N) {
  // parcs-lint: allow(hot-path-alloc): fixture proves suppression.
  int *Raw = new int(N);
  int Result = *Raw;
  delete Raw;
  return Result;
}

// PARCS_HOT_END

// PARCS_HOT_BEGIN(never-closed)  -- FINDING: hot-path-region
int trailing() { return 0; }
