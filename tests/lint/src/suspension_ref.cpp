// Fixture: suspension-ref -- reference/view/iterator locals crossing a
// suspension point.  The awaitable machinery is faked; the rule is purely
// token-based and only needs co_await/scheduleResume spellings.
#include <map>
#include <string>
#include <string_view>
#include <vector>

struct FakeAwaitable {
  bool await_ready() const { return true; }
  void await_suspend(int) {}
  int await_resume() { return 0; }
};

struct FakeTask {
  struct promise_type;
};

struct Registry {
  std::map<int, std::string> Table;
  FakeAwaitable tick() { return {}; }
};

int refAcrossAwait(Registry &R) {
  std::string &Name = R.Table[0]; // reference local
  int X = co_await R.tick();
  return X + static_cast<int>(Name.size()); // FINDING: Name after await
}

int viewAcrossAwait(Registry &R, const std::string &Raw) {
  std::string_view View = Raw;
  int X = co_await R.tick();
  return X + static_cast<int>(View.size()); // FINDING: View after await
}

int iteratorAcrossAwait(Registry &R) {
  auto It = R.Table.find(1);
  int X = co_await R.tick();
  return X + static_cast<int>(It->second.size()); // FINDING: It after await
}

int refUsedOnlyBeforeAwait(Registry &R) {
  std::string &Name = R.Table[0];
  int Len = static_cast<int>(Name.size()); // before suspension, no finding
  int X = co_await R.tick();
  return X + Len;
}

int refDeclaredAfterAwait(Registry &R) {
  int X = co_await R.tick();
  std::string &Name = R.Table[0]; // declared after suspension, no finding
  return X + static_cast<int>(Name.size());
}

int suppressedAtDeclaration(Registry &R) {
  // parcs-lint: allow(suspension-ref): R outlives this coroutine; fixture
  // proves declaration-site suppression covers every later use.
  std::string &Name = R.Table[0];
  int X = co_await R.tick();
  return X + static_cast<int>(Name.size());
}
