// Fixture: sync-call-deadlock -- a seeded cycle of synchronous invokes
// between parallel classes.  facts.json (produced by `parcgen --facts-out`)
// declares Pinger.ping / Ponger.pong / Loopback.depth as sync methods; the
// linter joins those facts with this file's call graph.  poke()/fire() are
// async and contribute no edge.
struct PongerProxy { int pong(); void fire(); };
struct PingerProxy { int ping(); };

struct PingerImpl {
  PongerProxy Peer;
  int ping() { return Peer.pong(); } // edge Pinger -> Ponger
  void poke() { Peer.fire(); }       // async method: no edge
};

struct PongerImpl {
  PingerProxy Back;
  int pong() { return Back.ping(); } // edge Ponger -> Pinger: cycle
};

struct LoopbackImpl {
  int depth() { return invokeSyncTyped("depth", 0); } // self-cycle
};
