//===- tests/DeterminismTest.cpp - Golden event-trace regression ----------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The repo's one non-negotiable invariant: the kernel is bit-for-bit
// deterministic.  This test runs a mixed workload -- RPC over both stacks,
// loopback messages, plain timers -- twice, hashing every executed event's
// (index, virtual time), and checks the hash both between the two runs and
// against a golden constant recorded from the current kernel.  A scheduler
// change that reorders so much as one same-timestamp pair of events fails
// here, not in a paper figure three sessions later.
//
// If a change intentionally alters the trace (e.g. it legitimately removes
// events), re-record the constants:
//   PARCS_PRINT_TRACE=1 ./build/tests/determinism_test
// and update the Golden* values below with the printed ones.
//
//===----------------------------------------------------------------------===//

#include "net/Network.h"
#include "remoting/Engine.h"
#include "remoting/Profiles.h"
#include "serial/Archive.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace parcs;
using serial::Bytes;

namespace {

/// FNV-1a over the step stream: order-sensitive, so any reordering of
/// same-timestamp events changes the hash.
struct TraceHash {
  uint64_t State = 14695981039346656037ULL;
  void mix(uint64_t Value) {
    for (int I = 0; I < 8; ++I) {
      State ^= (Value >> (8 * I)) & 0xff;
      State *= 1099511628211ULL;
    }
  }
};

class EchoServer : public remoting::CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view,
                                       const Bytes &Args) override {
    co_return Args;
  }
};

struct RunResult {
  uint64_t Hash = 0;
  uint64_t Events = 0;
  int64_t FinalNs = 0;
  remoting::EndpointStats ClientTcp;
  remoting::EndpointStats ClientHttp;
  uint64_t NetDelivered = 0;
  uint64_t NetPayloadBytes = 0;
  bool DriversFinished = false;
};

RunResult runWorkload() {
  RunResult Out;
  vm::Cluster Machines(3, vm::VmKind::MonoVm117);
  sim::Simulator &Sim = Machines.sim();
  net::Network Net(Sim, 3);

  remoting::RpcEndpoint TcpClient(
      Machines.node(0), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117), 1050);
  remoting::RpcEndpoint TcpServer(
      Machines.node(1), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117), 1050);
  remoting::RpcEndpoint HttpClient(
      Machines.node(0), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingHttp117), 2080);
  remoting::RpcEndpoint HttpServer(
      Machines.node(2), Net,
      remoting::stackProfile(remoting::StackKind::MonoRemotingHttp117), 2080);
  TcpServer.publish("echo", std::make_shared<EchoServer>());
  HttpServer.publish("echo", std::make_shared<EchoServer>());

  int Finished = 0;

  // RPC traffic over both stacks, interleaved, with growing payloads.
  struct Rpc {
    static sim::Task<void> run(remoting::RpcEndpoint &Ep, int Dst, int Port,
                               int &Finished) {
      for (int I = 0; I < 8; ++I) {
        Bytes Args = serial::encodeValues(std::string(size_t(8 + 16 * I), 'p'));
        ErrorOr<Bytes> Reply =
            co_await Ep.call(Dst, Port, "echo", "ping", Args);
        EXPECT_TRUE(Reply);
        EXPECT_EQ(Reply.get(), Args);
      }
      ++Finished;
    }
  };
  Sim.spawn(Rpc::run(TcpClient, 1, 1050, Finished));
  Sim.spawn(Rpc::run(HttpClient, 2, 2080, Finished));

  // Loopback traffic: exercises the no-coroutine fast path and the
  // immediate FIFO lane.
  sim::Channel<net::Message> &Local = Net.bind(0, 9000);
  struct Loopback {
    static sim::Task<void> produce(net::Network &Net, int &Finished) {
      for (int I = 0; I < 12; ++I) {
        Net.send(0, 0, 9000, Bytes(size_t(I + 1), uint8_t(I)));
        co_await Net.sim().delay(sim::SimTime::nanoseconds(100 * I));
      }
      ++Finished;
    }
    static sim::Task<void> consume(sim::Channel<net::Message> &Local,
                                   int &Finished) {
      for (int I = 0; I < 12; ++I) {
        net::Message Msg = co_await Local.recv();
        EXPECT_EQ(Msg.Payload.size(), size_t(I + 1));
      }
      ++Finished;
    }
  };
  Sim.spawn(Loopback::produce(Net, Finished));
  Sim.spawn(Loopback::consume(Local, Finished));

  // Plain timers with colliding timestamps, so tie-break order matters.
  struct Timers {
    static sim::Task<void> run(sim::Simulator &Sim, int &Finished) {
      for (int I = 0; I < 32; ++I)
        co_await Sim.delay(sim::SimTime::nanoseconds(I % 4 == 0 ? 0 : 512));
      ++Finished;
    }
  };
  Sim.spawn(Timers::run(Sim, Finished));
  Sim.spawn(Timers::run(Sim, Finished));

  TraceHash Hash;
  while (Sim.step()) {
    Hash.mix(Sim.eventsProcessed());
    Hash.mix(uint64_t(Sim.now().nanosecondsCount()));
  }

  Out.Hash = Hash.State;
  Out.Events = Sim.eventsProcessed();
  Out.FinalNs = Sim.now().nanosecondsCount();
  Out.ClientTcp = TcpClient.stats();
  Out.ClientHttp = HttpClient.stats();
  Out.NetDelivered = Net.messagesDelivered();
  Out.NetPayloadBytes = Net.payloadBytesDelivered();
  Out.DriversFinished = Finished == 6;
  return Out;
}

TEST(DeterminismTest, MixedWorkloadGoldenTrace) {
  RunResult A = runWorkload();
  RunResult B = runWorkload();

  ASSERT_TRUE(A.DriversFinished);
  ASSERT_TRUE(B.DriversFinished);

  // Run-to-run: two executions in one process must agree exactly.
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_EQ(A.Events, B.Events);
  EXPECT_EQ(A.FinalNs, B.FinalNs);

  if (std::getenv("PARCS_PRINT_TRACE") != nullptr) {
    std::fprintf(stderr,
                 "GoldenHash       = 0x%016llxULL\n"
                 "GoldenEvents     = %lluULL\n"
                 "GoldenFinalNs    = %lldLL\n"
                 "GoldenDelivered  = %lluULL\n"
                 "GoldenPayload    = %lluULL\n",
                 (unsigned long long)A.Hash, (unsigned long long)A.Events,
                 (long long)A.FinalNs, (unsigned long long)A.NetDelivered,
                 (unsigned long long)A.NetPayloadBytes);
  }

  // Golden constants recorded from the current kernel (see file header for
  // how to re-record after an intentional trace change).
  constexpr uint64_t GoldenHash = 0x95cacf3297e456e3ULL;
  constexpr uint64_t GoldenEvents = 359ULL;
  constexpr int64_t GoldenFinalNs = 32465280LL;
  constexpr uint64_t GoldenDelivered = 44ULL;
  constexpr uint64_t GoldenPayload = 9978ULL;

  EXPECT_EQ(A.Hash, GoldenHash)
      << "event trace changed; if intentional, re-record with "
         "PARCS_PRINT_TRACE=1";
  EXPECT_EQ(A.Events, GoldenEvents);
  EXPECT_EQ(A.FinalNs, GoldenFinalNs);
  EXPECT_EQ(A.NetDelivered, GoldenDelivered);
  EXPECT_EQ(A.NetPayloadBytes, GoldenPayload);

  // Endpoint stats must be identical between runs -- the RPC layer sits on
  // top of the kernel, so this catches ordering drift that happens not to
  // move timestamps.
  EXPECT_EQ(A.ClientTcp.CallsIssued, 8u);
  EXPECT_EQ(A.ClientTcp.RepliesReceived, 8u);
  EXPECT_EQ(A.ClientTcp.WireBytesSent, B.ClientTcp.WireBytesSent);
  EXPECT_EQ(A.ClientTcp.MalformedDropped, 0u);
  EXPECT_EQ(A.ClientHttp.CallsIssued, 8u);
  EXPECT_EQ(A.ClientHttp.RepliesReceived, 8u);
  EXPECT_EQ(A.ClientHttp.WireBytesSent, B.ClientHttp.WireBytesSent);
  EXPECT_EQ(A.ClientHttp.MalformedDropped, 0u);
}

} // namespace
