//===- tests/ParcgenTest.cpp - preprocessor compiler tests ----------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/CodeGen.h"
#include "parcgen/AstPrinter.h"
#include "parcgen/Driver.h"
#include "parcgen/Lexer.h"
#include "parcgen/Parser.h"
#include "parcgen/Sema.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::pcc;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<TokenKind> kindsOf(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : Lex.lexAll())
    Kinds.push_back(Tok.Kind);
  return Kinds;
}

TEST(PccLexerTest, KeywordsAndPunctuation) {
  auto Kinds = kindsOf("parallel class Foo : Bar { async void f(int[] x); }");
  std::vector<TokenKind> Expected = {
      TokenKind::KwParallel, TokenKind::KwClass,    TokenKind::Identifier,
      TokenKind::Colon,      TokenKind::Identifier, TokenKind::LBrace,
      TokenKind::KwAsync,    TokenKind::KwVoid,     TokenKind::Identifier,
      TokenKind::LParen,     TokenKind::KwInt,      TokenKind::LBracket,
      TokenKind::RBracket,   TokenKind::Identifier, TokenKind::RParen,
      TokenKind::Semicolon,  TokenKind::RBrace,     TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(PccLexerTest, CommentsAreSkipped) {
  auto Kinds = kindsOf("// line\nint /* block\nspanning */ x");
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{TokenKind::KwInt,
                                           TokenKind::Identifier,
                                           TokenKind::EndOfFile}));
}

TEST(PccLexerTest, TracksLocations) {
  DiagnosticEngine Diags;
  Lexer Lex("int\n  foo", Diags);
  Token A = Lex.next();
  Token B = Lex.next();
  EXPECT_EQ(A.Loc.Line, 1);
  EXPECT_EQ(A.Loc.Column, 1);
  EXPECT_EQ(B.Loc.Line, 2);
  EXPECT_EQ(B.Loc.Column, 3);
}

TEST(PccLexerTest, StrayCharacterDiagnosed) {
  DiagnosticEngine Diags;
  Lexer Lex("int $ x", Diags);
  (void)Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccLexerTest, UnterminatedBlockCommentDiagnosed) {
  DiagnosticEngine Diags;
  Lexer Lex("/* never closed", Diags);
  (void)Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccLexerTest, IdentifiersWithUnderscores) {
  DiagnosticEngine Diags;
  Lexer Lex("_private my_name2", Diags);
  Token A = Lex.next();
  Token B = Lex.next();
  EXPECT_EQ(A.Text, "_private");
  EXPECT_EQ(B.Text, "my_name2");
  EXPECT_FALSE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

ModuleDecl parseOk(std::string_view Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  ModuleDecl Module = P.parseModule();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("<test>");
  return Module;
}

size_t parseErrorCount(std::string_view Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  (void)P.parseModule();
  return Diags.errorCount();
}

TEST(PccParserTest, ParsesPaperExample) {
  ModuleDecl M = parseOk("module examples.prime;\n"
                         "extern class PrimeFilter;\n"
                         "parallel class PrimeServer : PrimeFilter {\n"
                         "  async void process(int[] num);\n"
                         "  sync int count();\n"
                         "};\n");
  EXPECT_EQ(M.Name, "examples.prime");
  ASSERT_EQ(M.Classes.size(), 2u);
  EXPECT_TRUE(M.Classes[0].IsExtern);
  const ClassDecl &Server = M.Classes[1];
  EXPECT_EQ(Server.Name, "PrimeServer");
  EXPECT_EQ(Server.Base, "PrimeFilter");
  ASSERT_EQ(Server.Methods.size(), 2u);
  EXPECT_EQ(Server.Methods[0].Kind, MethodKind::Async);
  EXPECT_TRUE(Server.Methods[0].Params[0].Type.IsArray);
  EXPECT_EQ(Server.Methods[1].Kind, MethodKind::Sync);
}

TEST(PccParserTest, DefaultKindFollowsScooppRule) {
  ModuleDecl M = parseOk("parallel class A {\n"
                         "  void fire(int x);\n"
                         "  int ask();\n"
                         "}\n");
  EXPECT_EQ(M.Classes[0].Methods[0].Kind, MethodKind::Async);
  EXPECT_FALSE(M.Classes[0].Methods[0].ExplicitKind);
  EXPECT_EQ(M.Classes[0].Methods[1].Kind, MethodKind::Sync);
}

TEST(PccParserTest, ParsesRefTypes) {
  ModuleDecl M = parseOk("parallel class A { sync ref<A> self(); "
                         "async void link(ref<A>[] peers); }");
  const MethodDecl &Self = M.Classes[0].Methods[0];
  EXPECT_EQ(Self.ReturnType.Kind, TypeKind::Ref);
  EXPECT_EQ(Self.ReturnType.RefClass, "A");
  const MethodDecl &Link = M.Classes[0].Methods[1];
  EXPECT_TRUE(Link.Params[0].Type.IsArray);
  EXPECT_EQ(Link.Params[0].Type.Kind, TypeKind::Ref);
}

TEST(PccParserTest, TypeRendering) {
  ModuleDecl M = parseOk("parallel class A { async void f(int[] a, "
                         "ref<A> b, string c); }");
  const auto &Params = M.Classes[0].Methods[0].Params;
  EXPECT_EQ(Params[0].Type.str(), "int[]");
  EXPECT_EQ(Params[0].Type.cppType(), "std::vector<int32_t>");
  EXPECT_EQ(Params[1].Type.str(), "ref<A>");
  EXPECT_EQ(Params[1].Type.cppType(), "parcs::scoopp::ParallelRef");
  EXPECT_EQ(Params[2].Type.cppType(), "std::string");
}

TEST(PccParserTest, ParsesByRefParamModifier) {
  ModuleDecl M =
      parseOk("parallel class A { sync int fill(ref int x, int y); }");
  const auto &Params = M.Classes[0].Methods[0].Params;
  ASSERT_EQ(Params.size(), 2u);
  EXPECT_TRUE(Params[0].ByRef);
  EXPECT_EQ(Params[0].Type.Kind, TypeKind::Int);
  EXPECT_FALSE(Params[1].ByRef);
}

TEST(PccParserTest, ByRefModifierDisambiguatesFromRefType) {
  // 'ref<A> w' is a type, 'ref ref<A> v' is the modifier plus a type; one
  // token of lookahead past 'ref' decides.
  ModuleDecl M = parseOk("parallel class A { sync int f(ref<A> w); "
                         "sync int g(ref ref<A> v); }");
  const auto &W = M.Classes[0].Methods[0].Params[0];
  EXPECT_FALSE(W.ByRef);
  EXPECT_EQ(W.Type.Kind, TypeKind::Ref);
  const auto &V = M.Classes[0].Methods[1].Params[0];
  EXPECT_TRUE(V.ByRef);
  EXPECT_EQ(V.Type.Kind, TypeKind::Ref);
  EXPECT_EQ(V.Type.RefClass, "A");
}

TEST(PccParserTest, MissingSemicolonDiagnosed) {
  EXPECT_GE(parseErrorCount("parallel class A { int ask() }"), 1u);
}

TEST(PccParserTest, NestedArraysRejected) {
  EXPECT_GE(parseErrorCount("parallel class A { async void f(int[][] x); }"),
            1u);
}

TEST(PccParserTest, RecoversAndReportsMultipleErrors) {
  // Two broken methods -> at least two distinct diagnostics.
  EXPECT_GE(parseErrorCount("parallel class A {\n"
                            "  int ask(;\n"
                            "  void go(int);\n"
                            "}\n"),
            2u);
}

TEST(PccParserTest, TopLevelGarbageDiagnosed) {
  EXPECT_GE(parseErrorCount("class A {}"), 1u);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

DiagnosticEngine analyze(std::string_view Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  ModuleDecl Module = P.parseModule();
  EXPECT_FALSE(Diags.hasErrors()) << "test source must parse";
  analyzeModule(Module, Diags);
  return Diags;
}

TEST(PccSemaTest, AcceptsCleanModule) {
  DiagnosticEngine Diags =
      analyze("extern class Base;\n"
              "parallel class A : Base { async void f(int x); }\n"
              "parallel class B { sync ref<A> peer(); }\n");
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("<test>");
}

TEST(PccSemaTest, AsyncWithValueRejected) {
  DiagnosticEngine Diags =
      analyze("parallel class A { async int bad(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, SyncVoidWarns) {
  DiagnosticEngine Diags = analyze("parallel class A { sync void ping(); }");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.all().size(), 1u);
  EXPECT_EQ(Diags.all()[0].Severity, DiagSeverity::Warning);
}

TEST(PccSemaTest, DuplicateClassRejected) {
  DiagnosticEngine Diags =
      analyze("parallel class A { void f(); } parallel class A { void g(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, DuplicateMethodRejected) {
  DiagnosticEngine Diags =
      analyze("parallel class A { void f(); sync int f(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, DuplicateParamRejected) {
  DiagnosticEngine Diags =
      analyze("parallel class A { void f(int x, double x); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, UnknownBaseRejected) {
  DiagnosticEngine Diags = analyze("parallel class A : Missing { void f(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, SelfBaseRejected) {
  DiagnosticEngine Diags = analyze("parallel class A : A { void f(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, RefToUndeclaredRejected) {
  DiagnosticEngine Diags =
      analyze("parallel class A { sync ref<Nope> f(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, RefToExternRejected) {
  DiagnosticEngine Diags = analyze(
      "extern class E; parallel class A { sync ref<E> f(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, RefForwardReferenceAllowed) {
  // B is declared after A but ref<B> inside A must resolve (two-pass).
  DiagnosticEngine Diags =
      analyze("parallel class A { sync ref<B> peer(); }\n"
              "parallel class B { void f(); }\n");
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("<test>");
}

TEST(PccSemaTest, VoidParamRejected) {
  DiagnosticEngine Diags = analyze("parallel class A { void f(void x); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, EmptyClassWarns) {
  DiagnosticEngine Diags = analyze("parallel class A { }");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_GE(Diags.all().size(), 1u);
}

TEST(PccSemaTest, ByRefOnAsyncRejected) {
  DiagnosticEngine Diags =
      analyze("parallel class A { async void push(ref int x); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccSemaTest, ByRefOnSyncWarns) {
  DiagnosticEngine Diags =
      analyze("parallel class A { sync int fill(ref int x); }");
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("<test>");
  ASSERT_EQ(Diags.all().size(), 1u);
  EXPECT_EQ(Diags.all()[0].Severity, DiagSeverity::Warning);
}

TEST(PccSemaTest, UnusedPassiveClassWarns) {
  DiagnosticEngine Diags =
      analyze("passive class Orphan { int x; }\n"
              "parallel class W { async void f(int x); }\n");
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Diags.all().size(), 1u);
  EXPECT_EQ(Diags.all()[0].Severity, DiagSeverity::Warning);
  EXPECT_NE(Diags.all()[0].Message.find("Orphan"), std::string::npos);
}

TEST(PccSemaTest, UsedPassiveClassIsQuiet) {
  DiagnosticEngine Diags =
      analyze("passive class P { int x; }\n"
              "parallel class W { async void f(P p); }\n");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.all().empty()) << Diags.render("<test>");
}

//===----------------------------------------------------------------------===//
// CodeGen + full pipeline
//===----------------------------------------------------------------------===//

TEST(PccCodeGenTest, EmitsExpectedDeclarations) {
  CompileResult Result = compilePci("module m;\n"
                                    "parallel class Worker {\n"
                                    "  async void run(int[] data);\n"
                                    "  sync double score();\n"
                                    "}\n");
  ASSERT_TRUE(Result.Success) << Result.Diags.render("<test>");
  const std::string &Code = Result.Code;
  EXPECT_NE(Code.find("class WorkerSkeleton"), std::string::npos);
  EXPECT_NE(Code.find("class WorkerProxy"), std::string::npos);
  EXPECT_NE(Code.find("registerWorkerClass"), std::string::npos);
  EXPECT_NE(Code.find("invokeAsync(\"run\""), std::string::npos);
  EXPECT_NE(Code.find("invokeSyncTyped<double>(\"score\""),
            std::string::npos);
  EXPECT_NE(Code.find("virtual parcs::sim::Task<double> score()"),
            std::string::npos);
  EXPECT_NE(Code.find("namespace m {"), std::string::npos);
  EXPECT_NE(Code.find("#ifndef PARCSGEN_M_H"), std::string::npos);
}

TEST(PccCodeGenTest, ExternClassesEmitNothing) {
  CompileResult Result =
      compilePci("extern class Ext;\n"
                 "parallel class A : Ext { void f(); }\n");
  ASSERT_TRUE(Result.Success);
  EXPECT_EQ(Result.Code.find("ExtSkeleton"), std::string::npos);
  EXPECT_NE(Result.Code.find("ASkeleton"), std::string::npos);
}

TEST(PccCodeGenTest, DefaultModuleNamespace) {
  CompileResult Result = compilePci("parallel class A { void f(); }");
  ASSERT_TRUE(Result.Success);
  EXPECT_NE(Result.Code.find("namespace parcsgen {"), std::string::npos);
}

TEST(PccCodeGenTest, FailedCompileEmitsNoCode) {
  CompileResult Result = compilePci("parallel class A { async int bad(); }");
  EXPECT_FALSE(Result.Success);
  EXPECT_TRUE(Result.Code.empty());
  EXPECT_TRUE(Result.Diags.hasErrors());
}

TEST(PccCodeGenTest, GenerationIsDeterministic) {
  const char *Source = "module x.y;\nparallel class A { sync int f(int a); }";
  EXPECT_EQ(compilePci(Source).Code, compilePci(Source).Code);
}

TEST(PccDriverTest, DiagnosticRendering) {
  CompileResult Result = compilePci("parallel class A { async int bad(); }");
  std::string Rendered = Result.Diags.render("file.pci");
  EXPECT_NE(Rendered.find("file.pci:1:20: error:"), std::string::npos);
}



//===----------------------------------------------------------------------===//
// Passive classes (language level)
//===----------------------------------------------------------------------===//

TEST(PccPassiveTest, ParsesFieldsAndLinks) {
  ModuleDecl M = parseOk("passive class P { double x; P next; int[] ids; }\n"
                         "parallel class W { void f(P p); }\n");
  ASSERT_EQ(M.Classes.size(), 2u);
  const ClassDecl &P = M.Classes[0];
  EXPECT_TRUE(P.IsPassive);
  ASSERT_EQ(P.Fields.size(), 3u);
  EXPECT_EQ(P.Fields[1].Type.Kind, TypeKind::Passive);
  EXPECT_EQ(P.Fields[1].Type.RefClass, "P");
  EXPECT_TRUE(M.Classes[1].Methods[0].Params[0].Type.isPassive());
}

TEST(PccPassiveTest, SemaAcceptsMutualRecursion) {
  DiagnosticEngine Diags = analyze("passive class A { B other; }\n"
                                   "passive class B { A other; }\n");
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("<test>");
}

TEST(PccPassiveTest, SemaRejectsPassiveReturn) {
  DiagnosticEngine Diags = analyze(
      "passive class P { int x; } parallel class W { sync P get(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccPassiveTest, SemaRejectsPassiveArrayParam) {
  DiagnosticEngine Diags = analyze(
      "passive class P { int x; } parallel class W { void f(P[] ps); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccPassiveTest, SemaRejectsUnknownFieldType) {
  DiagnosticEngine Diags = analyze("passive class P { Mystery m; }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccPassiveTest, SemaRejectsParallelLinkField) {
  DiagnosticEngine Diags = analyze(
      "parallel class W { void f(); } passive class P { W link; }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccPassiveTest, SemaRejectsRefToPassive) {
  DiagnosticEngine Diags = analyze(
      "passive class P { int x; } parallel class W { sync ref<P> g(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccPassiveTest, SemaRejectsDuplicateField) {
  DiagnosticEngine Diags = analyze("passive class P { int x; double x; }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccPassiveTest, SemaWarnsEmptyPassiveClass) {
  DiagnosticEngine Diags = analyze("passive class P { }");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_GE(Diags.all().size(), 1u);
}

TEST(PccPassiveTest, SemaRejectsPassiveBase) {
  DiagnosticEngine Diags = analyze(
      "passive class P { int x; } parallel class W : P { void f(); }");
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(PccPassiveTest, CodegenEmitsSerializableClass) {
  CompileResult Result = compilePci(
      "module m;\npassive class Node { int v; Node next; Node[] kids; }\n"
      "parallel class W { void take(Node n); }\n");
  ASSERT_TRUE(Result.Success) << Result.Diags.render("<test>");
  const std::string &Code = Result.Code;
  EXPECT_NE(Code.find("class Node : public "
                      "parcs::serial::SerializableObject"),
            std::string::npos);
  EXPECT_NE(Code.find("\"m.Node\""), std::string::npos);
  EXPECT_NE(Code.find("registerNodePassive"), std::string::npos);
  EXPECT_NE(Code.find("Writer.writeRef(next)"), std::string::npos);
  EXPECT_NE(Code.find("std::vector<Node *> kids"), std::string::npos);
  // Proxy takes a pointer and ships an encoded graph.
  EXPECT_NE(Code.find("take(const Node *n)"), std::string::npos);
  EXPECT_NE(Code.find("encodePassiveGraph(n)"), std::string::npos);
  // Skeleton decodes into a call-scoped pool.
  EXPECT_NE(Code.find("decodePassiveGraph(n_graph, Pool_)"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// AST printer
//===----------------------------------------------------------------------===//

TEST(PccAstPrinterTest, GoldenDump) {
  CompileResult Result = compilePci("module examples.prime;\n"
                                    "extern class PrimeFilter;\n"
                                    "parallel class PrimeServer : "
                                    "PrimeFilter {\n"
                                    "  async void process(int[] num);\n"
                                    "  int count();\n"
                                    "};\n");
  ASSERT_TRUE(Result.Success);
  std::string Dump = dumpAst(Result.Module);
  EXPECT_EQ(Dump,
            "ModuleDecl 'examples.prime'\n"
            "  ExternClassDecl 'PrimeFilter' <2:1>\n"
            "  ClassDecl 'PrimeServer' : 'PrimeFilter' <3:1>\n"
            "    MethodDecl async 'process' 'void (int[])' <4:3>\n"
            "      ParamDecl 'num' 'int[]'\n"
            "    MethodDecl sync (implicit) 'count' 'int ()' <5:3>\n");
}

TEST(PccAstPrinterTest, DefaultModuleNameShown) {
  CompileResult Result = compilePci("parallel class A { void f(); }");
  ASSERT_TRUE(Result.Success);
  EXPECT_NE(dumpAst(Result.Module).find("ModuleDecl '<default>'"),
            std::string::npos);
}

} // namespace
