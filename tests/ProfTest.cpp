//===- tests/ProfTest.cpp - Critical-path analyzer ------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// Covers the parcs-prof analyzer: DAG reconstruction from synthetic trace
// JSON (ctx/parent args, rpc.link edges, async pairs, truncation), the
// critical-path walk with the gap-jump rule, per-class attribution, and --
// end to end -- that analyzing a real traced RPC workload yields a path
// covering >= 95% of the run window with byte-identical repeat reports.
//
//===----------------------------------------------------------------------===//

#include "prof/Prof.h"

#include "net/Network.h"
#include "remoting/Engine.h"
#include "remoting/Profiles.h"
#include "serial/Archive.h"
#include "support/Trace.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

using namespace parcs;
using serial::Bytes;

namespace {

/// Builds a traceEvents JSON document from raw event fragments.
std::string traceJson(const std::vector<std::string> &Events) {
  std::string Out = "{\"traceEvents\": [";
  for (size_t I = 0; I < Events.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Events[I];
  }
  Out += "]}";
  return Out;
}

/// A complete (X) span with ctx/parent args; ts/dur in microseconds like
/// the exporter emits.
std::string span(const char *Name, int Pid, double TsUs, double DurUs,
                 uint64_t Ctx, uint64_t Parent) {
  char Buf[256];
  if (Parent)
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": 0, "
                  "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"ctx\": %llu, "
                  "\"parent\": %llu}}",
                  Name, Pid, TsUs, DurUs, (unsigned long long)Ctx,
                  (unsigned long long)Parent);
  else
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, \"tid\": 0, "
                  "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"ctx\": %llu}}",
                  Name, Pid, TsUs, DurUs, (unsigned long long)Ctx);
  return Buf;
}

TEST(ProfLoadTest, RejectsGarbage) {
  EXPECT_FALSE(prof::loadTrace("not json").hasValue());
  EXPECT_FALSE(prof::loadTrace("{}").hasValue());
  EXPECT_FALSE(prof::loadTrace("{\"traceEvents\": 3}").hasValue());
}

TEST(ProfLoadTest, EmptyTraceHasNoNodes) {
  auto T = prof::loadTrace("{\"traceEvents\": []}");
  ASSERT_TRUE(T.hasValue());
  EXPECT_TRUE(T->Nodes.empty());
  prof::Analysis A = prof::analyze(*T);
  EXPECT_EQ(A.CriticalNs, 0);
  EXPECT_TRUE(A.Segments.empty());
}

TEST(ProfLoadTest, ParsesCtxSpansAndLinks) {
  auto T = prof::loadTrace(traceJson({
      span("rpc.send", 1, 0.100, 0.050, 10, 0),
      span("net.wire", 1, 0.150, 0.200, 11, 10),
      // rpc.link adds a second parent edge to ctx 12.
      "{\"name\": \"rpc.link\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 2, "
      "\"tid\": 0, \"ts\": 0.350, \"args\": {\"ctx\": 12, \"parent\": 11}}",
      span("rpc.serve", 2, 0.350, 0.100, 12, 10),
  }));
  ASSERT_TRUE(T.hasValue());
  ASSERT_EQ(T->Nodes.size(), 3u);
  // Nodes are sorted by start time.
  EXPECT_EQ(T->Nodes[0].Name, "rpc.send");
  EXPECT_EQ(T->Nodes[0].Ctx, 10u);
  EXPECT_EQ(T->Nodes[0].StartNs, 100);
  EXPECT_EQ(T->Nodes[0].EndNs, 150);
  EXPECT_TRUE(T->Nodes[0].Parents.empty());
  EXPECT_EQ(T->Nodes[1].Name, "net.wire");
  ASSERT_EQ(T->Nodes[1].Parents.size(), 1u);
  EXPECT_EQ(T->Nodes[1].Parents[0], 10u);
  // serve merged its declared parent (10) with the linked one (11).
  EXPECT_EQ(T->Nodes[2].Name, "rpc.serve");
  EXPECT_EQ(T->Nodes[2].Parents, (std::vector<uint64_t>{10, 11}));
  EXPECT_EQ(T->RunStartNs, 100);
  EXPECT_EQ(T->RunEndNs, 450);
}

TEST(ProfLoadTest, AsyncPairBecomesOneNode) {
  auto T = prof::loadTrace(traceJson({
      "{\"name\": \"rpc.call\", \"cat\": \"parcs\", \"ph\": \"b\", \"id\": "
      "\"p1-0x2a\", \"pid\": 1, \"tid\": 0, \"ts\": 0.100, \"args\": "
      "{\"ctx\": 7}}",
      "{\"name\": \"rpc.call\", \"cat\": \"parcs\", \"ph\": \"e\", \"id\": "
      "\"p1-0x2a\", \"pid\": 1, \"tid\": 0, \"ts\": 0.900, \"args\": "
      "{\"ctx\": 7}}",
  }));
  ASSERT_TRUE(T.hasValue());
  ASSERT_EQ(T->Nodes.size(), 1u);
  EXPECT_EQ(T->Nodes[0].StartNs, 100);
  EXPECT_EQ(T->Nodes[0].EndNs, 900);
  EXPECT_FALSE(T->Nodes[0].Truncated);
}

TEST(ProfLoadTest, OrphanAsyncHalvesAreTruncatedNodes) {
  auto T = prof::loadTrace(traceJson({
      // End without begin (begin was wrapped away), marked by the
      // exporter.
      "{\"name\": \"rpc.call\", \"cat\": \"parcs\", \"ph\": \"e\", \"id\": "
      "\"p1-0x1\", \"pid\": 1, \"tid\": 0, \"ts\": 0.500, \"args\": "
      "{\"ctx\": 9, \"truncated\": true}}",
  }));
  ASSERT_TRUE(T.hasValue());
  ASSERT_EQ(T->Nodes.size(), 1u);
  EXPECT_TRUE(T->Nodes[0].Truncated);
  EXPECT_EQ(T->Nodes[0].StartNs, T->Nodes[0].EndNs);
}

TEST(ProfAnalyzeTest, WalksDeclaredParentsAndClassifies) {
  // send(100..150) -> wire(150..350) -> serve(350..450): contiguous chain.
  auto T = prof::loadTrace(traceJson({
      span("rpc.send", 1, 0.100, 0.050, 10, 0),
      span("net.wire", 1, 0.150, 0.200, 11, 10),
      span("rpc.serve", 2, 0.350, 0.100, 12, 11),
  }));
  ASSERT_TRUE(T.hasValue());
  prof::Analysis A = prof::analyze(*T);
  ASSERT_EQ(A.Segments.size(), 3u);
  EXPECT_EQ(A.Segments[0].Name, "rpc.send");
  EXPECT_EQ(A.Segments[0].Class, prof::SegClass::Serialize);
  EXPECT_EQ(A.Segments[1].Name, "net.wire");
  EXPECT_EQ(A.Segments[1].Class, prof::SegClass::Wire);
  EXPECT_EQ(A.Segments[2].Name, "rpc.serve");
  EXPECT_EQ(A.Segments[2].Class, prof::SegClass::Compute);
  EXPECT_EQ(A.CriticalNs, 350);
  EXPECT_EQ(A.runNs(), 350);
  EXPECT_DOUBLE_EQ(A.coverage(), 1.0);
}

TEST(ProfAnalyzeTest, GapJumpAttributesComputeGap) {
  // Two spans on one pid with no declared edge and a 100 ns hole between
  // them: the gap-jump rule bridges the hole as compute.
  auto T = prof::loadTrace(traceJson({
      span("scoopp.execute", 2, 0.100, 0.100, 20, 0),
      span("rpc.send", 2, 0.300, 0.050, 21, 0),
  }));
  ASSERT_TRUE(T.hasValue());
  prof::Analysis A = prof::analyze(*T);
  ASSERT_EQ(A.Segments.size(), 3u);
  EXPECT_EQ(A.Segments[0].Name, "scoopp.execute");
  EXPECT_EQ(A.Segments[1].Name, "<gap>");
  EXPECT_EQ(A.Segments[1].Class, prof::SegClass::Compute);
  EXPECT_EQ(A.Segments[1].StartNs, 200);
  EXPECT_EQ(A.Segments[1].EndNs, 300);
  EXPECT_EQ(A.Segments[2].Name, "rpc.send");
  EXPECT_EQ(A.CriticalNs, 250);
  EXPECT_DOUBLE_EQ(A.coverage(), 1.0);
}

TEST(ProfAnalyzeTest, OverlappingParentClipsSegment) {
  // Parent ends inside the child: only the child's tail beyond the
  // parent's end is attributed to the child.
  auto T = prof::loadTrace(traceJson({
      span("net.wire", 1, 0.100, 0.300, 30, 0),  // 100..400
      span("rpc.serve", 2, 0.200, 0.400, 31, 30) // 200..600, overlaps
  }));
  ASSERT_TRUE(T.hasValue());
  prof::Analysis A = prof::analyze(*T);
  ASSERT_EQ(A.Segments.size(), 2u);
  EXPECT_EQ(A.Segments[0].Name, "net.wire");
  EXPECT_EQ(A.Segments[0].durationNs(), 300);
  EXPECT_EQ(A.Segments[1].Name, "rpc.serve");
  EXPECT_EQ(A.Segments[1].StartNs, 400) << "clipped at the parent's end";
  EXPECT_EQ(A.Segments[1].EndNs, 600);
  EXPECT_EQ(A.CriticalNs, 500);
}

TEST(ProfAnalyzeTest, TruncatedNodesPropagateWarning) {
  auto T = prof::loadTrace(traceJson({
      "{\"name\": \"rpc.call\", \"cat\": \"parcs\", \"ph\": \"e\", \"id\": "
      "\"p1-0x1\", \"pid\": 1, \"tid\": 0, \"ts\": 0.500, \"args\": "
      "{\"ctx\": 9, \"truncated\": true}}",
  }));
  ASSERT_TRUE(T.hasValue());
  prof::Analysis A = prof::analyze(*T);
  EXPECT_TRUE(A.SawTruncated);
  EXPECT_NE(prof::textReport(A).find("truncated"), std::string::npos);
}

TEST(ProfReportTest, FlamegraphAggregatesAndSorts) {
  auto T = prof::loadTrace(traceJson({
      span("rpc.send", 1, 0.100, 0.050, 10, 0),
      span("net.wire", 1, 0.150, 0.200, 11, 10),
      span("rpc.send", 1, 0.350, 0.050, 12, 11),
  }));
  ASSERT_TRUE(T.hasValue());
  std::string Folded = prof::flamegraph(prof::analyze(*T));
  // Two rpc.send segments fold into one line; lines are sorted.
  EXPECT_EQ(Folded, "parcs;serialize;rpc.send 100\n"
                    "parcs;wire;net.wire 200\n");
}

//===----------------------------------------------------------------------===//
// End to end: a real traced RPC workload.
//===----------------------------------------------------------------------===//

class EchoServer : public remoting::CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view,
                                       const Bytes &Args) override {
    co_return Args;
  }
};

std::string runTracedWorkloadAndExport() {
  trace::reset();
  trace::setEnabled(true);
  {
    vm::Cluster Machines(2, vm::VmKind::MonoVm117);
    net::Network Net(Machines.sim(), 2);
    remoting::RpcEndpoint Client(
        Machines.node(0), Net,
        remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117), 1050);
    remoting::RpcEndpoint Server(
        Machines.node(1), Net,
        remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117), 1050);
    Server.publish("echo", std::make_shared<EchoServer>());

    struct Driver {
      static sim::Task<void> run(remoting::RpcEndpoint &Ep) {
        for (int I = 0; I < 8; ++I) {
          Bytes Args = serial::encodeValues(std::string(size_t(32 + I), 'x'));
          ErrorOr<Bytes> Reply =
              co_await Ep.call(1, 1050, "echo", "ping", Args);
          EXPECT_TRUE(Reply);
        }
      }
    };
    Machines.sim().spawn(Driver::run(Client));
    Machines.sim().run();
  }
  std::string Json = trace::exportJson();
  trace::setEnabled(false);
  trace::reset();
  return Json;
}

TEST(ProfEndToEndTest, TracedRpcWorkloadCoversRunWindow) {
  std::string Json = runTracedWorkloadAndExport();
  auto T = prof::loadTrace(Json);
  ASSERT_TRUE(T.hasValue());
  ASSERT_FALSE(T->Nodes.empty());
  prof::Analysis A = prof::analyze(*T);
  // Acceptance bar: the path's segment sim-times sum to >= 95% of the
  // end-to-end window, with honest per-class attribution.
  EXPECT_GE(A.coverage(), 0.95) << prof::textReport(A);
  EXPECT_FALSE(A.SawTruncated);
  int64_t Wire = 0, Serialize = 0;
  for (const auto &[Class, Ns] : A.ByClass) {
    if (Class == prof::SegClass::Wire)
      Wire = Ns;
    if (Class == prof::SegClass::Serialize)
      Serialize = Ns;
  }
  EXPECT_GT(Wire, 0) << "8 remote round trips must cross the wire";
  EXPECT_GT(Serialize, 0);
}

TEST(ProfEndToEndTest, RepeatAnalysesAreByteIdentical) {
  std::string First = runTracedWorkloadAndExport();
  std::string Second = runTracedWorkloadAndExport();
  // Causal ids are minted from a process-global counter that reset()
  // rewinds, so the exports themselves match too.
  EXPECT_EQ(First, Second);
  auto T1 = prof::loadTrace(First);
  auto T2 = prof::loadTrace(Second);
  ASSERT_TRUE(T1.hasValue());
  ASSERT_TRUE(T2.hasValue());
  prof::Analysis A1 = prof::analyze(*T1);
  prof::Analysis A2 = prof::analyze(*T2);
  EXPECT_EQ(prof::textReport(A1), prof::textReport(A2));
  EXPECT_EQ(prof::flamegraph(A1), prof::flamegraph(A2));
}

} // namespace
