//===- tests/VmTest.cpp - VM / node / thread pool tests -------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "vm/Calibration.h"
#include "vm/Cluster.h"
#include "vm/Node.h"
#include "vm/ThreadPool.h"
#include "vm/VmKind.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::sim;
using namespace parcs::vm;

namespace {

SimTime ms(int64_t N) { return SimTime::milliseconds(N); }

//===----------------------------------------------------------------------===//
// Cost models
//===----------------------------------------------------------------------===//

TEST(VmKindTest, PaperRatiosHold) {
  // Section 4: Mono FP code costs 40% more than the Sun JVM, MS CLR 10%
  // more, and the integer sieve is "about the same".
  const VmCostModel &Jvm = vmCostModel(VmKind::SunJvm142);
  const VmCostModel &Mono = vmCostModel(VmKind::MonoVm117);
  const VmCostModel &Clr = vmCostModel(VmKind::MsClr);
  EXPECT_NEAR(Mono.FpMultiplier / Jvm.FpMultiplier, 1.4, 1e-9);
  EXPECT_NEAR(Clr.FpMultiplier / Jvm.FpMultiplier, 1.1, 1e-9);
  EXPECT_NEAR(Mono.IntMultiplier / Jvm.IntMultiplier, 1.0, 1e-9);
}

TEST(VmKindTest, Mono105SlowerThan117) {
  EXPECT_GT(vmCostModel(VmKind::MonoVm105).FpMultiplier,
            vmCostModel(VmKind::MonoVm117).FpMultiplier);
}

TEST(VmKindTest, NamesAreStable) {
  EXPECT_STREQ(vmKindName(VmKind::MonoVm117), "Mono 1.1.7");
  EXPECT_STREQ(vmKindName(VmKind::SunJvm142), "Sun JVM 1.4.2");
}

TEST(VmKindTest, WorkMultiplierSelectsKind) {
  const VmCostModel &Mono = vmCostModel(VmKind::MonoVm117);
  EXPECT_EQ(workMultiplier(Mono, WorkKind::FloatingPoint),
            Mono.FpMultiplier);
  EXPECT_EQ(workMultiplier(Mono, WorkKind::Integer), Mono.IntMultiplier);
  EXPECT_EQ(workMultiplier(Mono, WorkKind::Allocation),
            Mono.AllocMultiplier);
}

TEST(VmKindTest, MonoPoolSmallerThanJvm) {
  EXPECT_LT(vmCostModel(VmKind::MonoVm117).ThreadPoolMax,
            vmCostModel(VmKind::SunJvm142).ThreadPoolMax);
}


TEST(VmKindTest, TunedProjectionSitsBetweenJvmAndMono) {
  const VmCostModel &Tuned = vmCostModel(VmKind::MonoTuned);
  EXPECT_GT(Tuned.FpMultiplier, vmCostModel(VmKind::SunJvm142).FpMultiplier);
  EXPECT_LT(Tuned.FpMultiplier, vmCostModel(VmKind::MonoVm117).FpMultiplier);
  EXPECT_GT(Tuned.ThreadPoolMax, vmCostModel(VmKind::MonoVm117).ThreadPoolMax);
}

//===----------------------------------------------------------------------===//
// Node compute scheduling
//===----------------------------------------------------------------------===//

Task<void> burn(Node &N, SimTime Cpu, SimTime &DoneAt) {
  co_await N.compute(Cpu);
  DoneAt = N.sim().now();
}

TEST(NodeTest, SingleThreadRunsAtFullSpeed) {
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp, /*Cores=*/1);
  SimTime Done;
  Sim.spawn(burn(N, ms(100), Done));
  Sim.run();
  EXPECT_EQ(Done, ms(100));
  EXPECT_EQ(N.busyTime(), ms(100));
}

TEST(NodeTest, TwoThreadsOnOneCoreTimeshare) {
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp, /*Cores=*/1);
  SimTime DoneA, DoneB;
  Sim.spawn(burn(N, ms(100), DoneA));
  Sim.spawn(burn(N, ms(100), DoneB));
  Sim.run();
  // Round-robin: both finish around 200 ms (within one quantum of each
  // other), not one at 100 and one at 200.
  EXPECT_GE(DoneA, ms(190));
  EXPECT_GE(DoneB, ms(190));
  EXPECT_LE(DoneA, ms(200));
  EXPECT_LE(DoneB, ms(200));
}

TEST(NodeTest, TwoThreadsOnTwoCoresRunConcurrently) {
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp, /*Cores=*/2);
  SimTime DoneA, DoneB;
  Sim.spawn(burn(N, ms(100), DoneA));
  Sim.spawn(burn(N, ms(100), DoneB));
  Sim.run();
  EXPECT_EQ(DoneA, ms(100));
  EXPECT_EQ(DoneB, ms(100));
  EXPECT_EQ(N.busyTime(), ms(200));
}

TEST(NodeTest, ZeroComputeCompletesImmediately) {
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp);
  SimTime Done = SimTime::seconds(-1);
  Sim.spawn(burn(N, SimTime(), Done));
  Sim.run();
  EXPECT_EQ(Done, SimTime());
}

TEST(NodeTest, ComputeWorkAppliesVmMultiplier) {
  Simulator Sim;
  Node Mono(Sim, 0, VmKind::MonoVm117, 1);
  Node Jvm(Sim, 1, VmKind::SunJvm142, 1);
  SimTime MonoDone, JvmDone;
  struct Proc {
    static Task<void> run(Node &N, SimTime &Done) {
      co_await N.computeWork(WorkKind::FloatingPoint, ms(100));
      Done = N.sim().now();
    }
  };
  Sim.spawn(Proc::run(Mono, MonoDone));
  Sim.spawn(Proc::run(Jvm, JvmDone));
  Sim.run();
  EXPECT_EQ(JvmDone, ms(100));
  EXPECT_EQ(MonoDone, ms(140)); // 1.4x
}

TEST(NodeTest, FairnessManyThreads) {
  // 4 equal jobs on 2 cores must all complete at ~2x the solo time.
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp, 2);
  SimTime Done[4];
  for (auto &D : Done)
    Sim.spawn(burn(N, ms(50), D));
  Sim.run();
  for (const auto &D : Done) {
    EXPECT_GE(D, ms(90));
    EXPECT_LE(D, ms(100));
  }
}

TEST(NodeTest, StartThreadChargesCreationCost) {
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp, 1);
  SimTime BodyRanAt;
  struct Body {
    static Task<void> run(Simulator &Sim, SimTime &At) {
      At = Sim.now();
      co_return;
    }
  };
  N.startThread(Body::run(Sim, BodyRanAt));
  Sim.run();
  EXPECT_EQ(BodyRanAt, calib::ThreadCreateCost);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsAllPostedWork) {
  Simulator Sim;
  Node N(Sim, 0, VmKind::MonoVm117, 2);
  ThreadPool Pool(N, 4);
  int Ran = 0;
  for (int I = 0; I < 10; ++I)
    Pool.post([&N, &Ran]() -> Task<void> {
      struct Body {
        static Task<void> run(Node &N, int &Ran) {
          co_await N.compute(ms(1));
          ++Ran;
        }
      };
      return Body::run(N, Ran);
    });
  Sim.run();
  EXPECT_EQ(Ran, 10);
  EXPECT_EQ(Pool.posted(), 10u);
  EXPECT_EQ(Pool.queueDepth(), 0u);
}

TEST(ThreadPoolTest, CapLimitsConcurrency) {
  // With 2 workers, 4 long jobs finish in two waves even though the node
  // has 4 cores available.
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp, 4);
  ThreadPool Pool(N, 2);
  std::vector<SimTime> Done;
  for (int I = 0; I < 4; ++I)
    Pool.post([&]() -> Task<void> {
      struct Body {
        static Task<void> run(Node &N, std::vector<SimTime> &Done) {
          co_await N.compute(ms(100));
          Done.push_back(N.sim().now());
        }
      };
      return Body::run(N, Done);
    });
  Sim.run();
  ASSERT_EQ(Done.size(), 4u);
  // First wave ~100ms, second wave ~200ms (plus small dispatch costs).
  EXPECT_LT(Done[1], ms(150));
  EXPECT_GT(Done[2], ms(150));
}

Task<void> awaitIdle(ThreadPool &Pool, Simulator &Sim, SimTime &IdleAt) {
  co_await Pool.waitIdle();
  IdleAt = Sim.now();
}

TEST(ThreadPoolTest, WaitIdleObservesCompletion) {
  Simulator Sim;
  Node N(Sim, 0, VmKind::NativeCpp, 1);
  ThreadPool Pool(N, 1);
  SimTime IdleAt;
  Pool.post([&N]() -> Task<void> {
    struct Body {
      static Task<void> run(Node &N) { co_await N.compute(ms(10)); }
    };
    return Body::run(N);
  });
  Sim.spawn(awaitIdle(Pool, Sim, IdleAt));
  Sim.run();
  EXPECT_GE(IdleAt, ms(10));
}

TEST(ThreadPoolTest, DefaultsToVmCap) {
  Simulator Sim;
  Node Mono(Sim, 0, VmKind::MonoVm117);
  ThreadPool Pool(Mono);
  EXPECT_EQ(Pool.workers(), calib::MonoThreadPoolMax);
}

//===----------------------------------------------------------------------===//
// Cluster
//===----------------------------------------------------------------------===//

TEST(ClusterTest, BuildsRequestedShape) {
  Cluster C(3, VmKind::MonoVm117, 2);
  EXPECT_EQ(C.nodeCount(), 3);
  EXPECT_EQ(C.node(0).cores(), 2);
  EXPECT_EQ(C.node(2).id(), 2);
  EXPECT_EQ(C.node(1).vmKind(), VmKind::MonoVm117);
}

TEST(ClusterTest, CleanTeardownWithPendingWork) {
  Cluster C(2, VmKind::MonoVm117);
  SimTime Ignored;
  C.sim().spawn(burn(C.node(0), SimTime::seconds(100000), Ignored));
  C.sim().run(10); // Partially execute, then drop the cluster.
  SUCCEED();
}

} // namespace
