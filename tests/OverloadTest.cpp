//===- tests/OverloadTest.cpp - admission, backpressure, migration --------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overload-resilience contract: bounded per-node admission with
/// deterministic retry-after hints, callReliable honouring those hints
/// without burning transport attempts, saturation-aware placement, live
/// object migration (state carried, callers rerouted, parked calls
/// replayed exactly once), the SLO-driven rebalancer, and the open-loop
/// traffic generator that exercises all of it.
///
//===----------------------------------------------------------------------===//

#include "apps/loadgen/LoadGen.h"
#include "core/ImplAdapter.h"
#include "core/ObjectManager.h"
#include "core/Proxy.h"
#include "core/Rebalancer.h"
#include "core/Scoopp.h"
#include "net/Network.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "telemetry/Telemetry.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace parcs;
using namespace parcs::scoopp;
using namespace parcs::sim;

namespace {

SimTime us(int64_t N) { return SimTime::microseconds(N); }
SimTime ms(int64_t N) { return SimTime::milliseconds(N); }

uint64_t counterValue(const char *Name) {
  return metrics::Registry::global().counter(Name).value();
}

//===----------------------------------------------------------------------===//
// Raw-endpoint admission control
//===----------------------------------------------------------------------===//

/// Holds each call for a configurable compute time -- wide enough to pile
/// up a backlog against a small admission budget.
class SlowHandler : public remoting::CallHandler {
public:
  SlowHandler(vm::Node &Host, SimTime Hold) : Host(Host), Hold(Hold) {}
  sim::Task<ErrorOr<remoting::Bytes>>
  handleCall(std::string_view, const remoting::Bytes &Args) override {
    ++Started;
    co_await Host.compute(Hold);
    ++Completed;
    co_return remoting::Bytes(Args);
  }
  vm::Node &Host;
  SimTime Hold;
  int Started = 0;
  int Completed = 0;
};

/// Two raw endpoints and a slow server under an admission budget.
struct AdmissionWorld {
  AdmissionWorld(size_t MaxPending, SimTime Hold)
      : Machines(2, vm::VmKind::MonoVm117), Net(Machines.sim(), 2),
        Client(Machines.node(0), Net,
               remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117),
               1060),
        Server(Machines.node(1), Net,
               remoting::stackProfile(remoting::StackKind::MonoRemotingTcp117),
               1060),
        Slow(std::make_shared<SlowHandler>(Machines.node(1), Hold)) {
    remoting::AdmissionPolicy Admission;
    Admission.MaxPending = MaxPending;
    Server.setAdmissionPolicy(Admission);
    Server.publish("slow", Slow);
  }

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  remoting::RpcEndpoint Client;
  remoting::RpcEndpoint Server;
  std::shared_ptr<SlowHandler> Slow;
};

TEST(AdmissionTest, RejectsPastBudgetWithRetryAfterHint) {
  // Budget 2, four near-simultaneous calls holding the server 5 ms each:
  // two admitted, two refused with a parseable retry-after hint.
  AdmissionWorld W(2, ms(5));
  std::vector<ErrorOr<remoting::Bytes>> Out(4, ErrorOr<remoting::Bytes>(
                                                   remoting::Bytes{}));
  struct Proc {
    static Task<void> one(AdmissionWorld &W, ErrorOr<remoting::Bytes> &Slot,
                          int I) {
      co_await W.sim().delay(us(10 * I)); // Staggered, deterministic.
      Slot = co_await W.Client.callReliable(
          1, 1060, "slow", "hold", serial::encodeValues(int32_t(I)));
    }
  };
  for (int I = 0; I < 4; ++I)
    W.sim().spawn(Proc::one(W, Out[size_t(I)], I));
  W.sim().run();

  int Ok = 0, Rejected = 0;
  int64_t HintNs = 0;
  for (const auto &R : Out) {
    if (R.hasValue()) {
      ++Ok;
      continue;
    }
    ASSERT_EQ(R.error().code(), ErrorCode::Overloaded) << R.error().str();
    ++Rejected;
    // The hint rides in the error text: "... retry-after=<N>ns".
    std::string Msg = R.error().message();
    size_t Pos = Msg.find("retry-after=");
    ASSERT_NE(Pos, std::string::npos) << Msg;
    HintNs = std::strtoll(Msg.c_str() + Pos + 12, nullptr, 10);
  }
  EXPECT_EQ(Ok, 2);
  EXPECT_EQ(Rejected, 2);
  EXPECT_EQ(W.Server.stats().OverloadRejected, 2u);
  EXPECT_EQ(W.Slow->Started, 2);
  // Deterministic, non-trivial hint: at least the policy's base (1 ms).
  EXPECT_GE(HintNs, 1'000'000);
}

TEST(AdmissionTest, CallReliableWaitsOutHintWithoutBurningAttempts) {
  // Budget 1: a 5 ms occupier is in flight, then a reliable call arrives.
  // It must be refused, wait the server's hint, and succeed on a later
  // round -- without consuming any transport retry attempt.
  AdmissionWorld W(1, ms(5));
  remoting::RetryPolicy Retry;
  Retry.MaxAttempts = 3;
  Retry.AttemptTimeout = ms(50);
  W.Client.setRetryPolicy(Retry);

  ErrorOr<remoting::Bytes> First(remoting::Bytes{}), Second(remoting::Bytes{});
  struct Proc {
    static Task<void> occupier(AdmissionWorld &W,
                               ErrorOr<remoting::Bytes> &Out) {
      Out = co_await W.Client.callReliable(1, 1060, "slow", "hold",
                                           serial::encodeValues(int32_t(1)));
    }
    static Task<void> waiter(AdmissionWorld &W,
                             ErrorOr<remoting::Bytes> &Out) {
      co_await W.sim().delay(ms(1)); // Occupier is executing by now.
      Out = co_await W.Client.callReliable(1, 1060, "slow", "hold",
                                           serial::encodeValues(int32_t(2)));
    }
  };
  W.sim().spawn(Proc::occupier(W, First));
  W.sim().spawn(Proc::waiter(W, Second));
  W.sim().run();

  EXPECT_TRUE(First.hasValue()) << First.error().str();
  EXPECT_TRUE(Second.hasValue()) << Second.error().str();
  EXPECT_EQ(W.Slow->Completed, 2);
  EXPECT_GE(W.Client.stats().OverloadDeferred, 1u);
  EXPECT_EQ(W.Client.stats().Retries, 0u)
      << "overload waits must not burn transport attempts";
  EXPECT_EQ(W.Client.stats().OverloadExhausted, 0u);
}

TEST(AdmissionTest, PersistentOverloadExhaustsIntoDistinctError) {
  // The occupier holds the only admission slot for 80 ms; the waiter is
  // allowed two polite waits, then must give up with ErrorCode::Overloaded
  // (not a transport error -- the server answered every time).
  AdmissionWorld W(1, ms(80));
  remoting::RetryPolicy Retry;
  Retry.MaxAttempts = 3;
  Retry.AttemptTimeout = ms(200);
  Retry.MaxOverloadWaits = 2;
  W.Client.setRetryPolicy(Retry);

  ErrorOr<remoting::Bytes> First(remoting::Bytes{}), Second(remoting::Bytes{});
  struct Proc {
    static Task<void> occupier(AdmissionWorld &W,
                               ErrorOr<remoting::Bytes> &Out) {
      Out = co_await W.Client.callReliable(1, 1060, "slow", "hold",
                                           serial::encodeValues(int32_t(1)));
    }
    static Task<void> waiter(AdmissionWorld &W,
                             ErrorOr<remoting::Bytes> &Out) {
      co_await W.sim().delay(ms(1));
      Out = co_await W.Client.callReliable(1, 1060, "slow", "hold",
                                           serial::encodeValues(int32_t(2)));
    }
  };
  W.sim().spawn(Proc::occupier(W, First));
  W.sim().spawn(Proc::waiter(W, Second));
  W.sim().run();

  EXPECT_TRUE(First.hasValue()) << First.error().str();
  ASSERT_FALSE(Second.hasValue());
  EXPECT_EQ(Second.error().code(), ErrorCode::Overloaded)
      << Second.error().str();
  EXPECT_EQ(W.Client.stats().OverloadDeferred, 2u);
  EXPECT_EQ(W.Client.stats().OverloadExhausted, 1u);
  EXPECT_EQ(W.Client.stats().RetriesExhausted, 0u)
      << "exhaustion must be reported as overload, not transport failure";
  EXPECT_EQ(W.Slow->Started, 1);
}

//===----------------------------------------------------------------------===//
// SCOOPP world with a migratable, stateful class
//===----------------------------------------------------------------------===//

/// A parallel class whose state survives migration: running (count, sum)
/// pair, persisted through saveState/restoreState.  "slow" burns CPU so
/// tests can hold the object busy across a migration window.
class MigCounterImpl : public remoting::CallHandler {
public:
  explicit MigCounterImpl(vm::Node &Host) : Host(Host) {}

  sim::Task<ErrorOr<remoting::Bytes>>
  handleCall(std::string_view Method, const remoting::Bytes &Args) override {
    if (Method == "add") {
      int32_t V = 0;
      if (!serial::decodeValues(Args, V))
        co_return Error(ErrorCode::MalformedMessage, "add args");
      co_await Host.compute(us(2));
      ++Handled;
      Sum += V;
      co_return serial::encodeValues(Sum);
    }
    if (Method == "slow") {
      int64_t Micros = 0;
      if (!serial::decodeValues(Args, Micros))
        co_return Error(ErrorCode::MalformedMessage, "slow args");
      co_await Host.compute(us(Micros));
      ++Handled;
      Sum += 1;
      co_return serial::encodeValues(Sum);
    }
    if (Method == "handled")
      co_return serial::encodeValues(Handled);
    if (Method == "sum")
      co_return serial::encodeValues(Sum);
    co_return Error(ErrorCode::UnknownMethod, std::string(Method));
  }

  void saveState(serial::OutputArchive &Out) override {
    Out.write(Handled);
    Out.write(Sum);
  }
  bool restoreState(serial::InputArchive &In) override {
    return In.read(Handled) && In.read(Sum);
  }

private:
  vm::Node &Host;
  int64_t Handled = 0;
  int64_t Sum = 0;
};

class MigCounterProxy : public ProxyBase {
public:
  static constexpr const char *ClassName = "MigCounter";
  using ProxyBase::ProxyBase;

  sim::Task<Error> create() { return ProxyBase::create(ClassName); }
  sim::Task<ErrorOr<int64_t>> add(int32_t V) {
    return invokeSyncTyped<int64_t>("add", V);
  }
  sim::Task<ErrorOr<int64_t>> slow(int64_t Micros) {
    return invokeSyncTyped<int64_t>("slow", Micros);
  }
  sim::Task<ErrorOr<int64_t>> handled() {
    return invokeSyncTyped<int64_t>("handled");
  }
  sim::Task<ErrorOr<int64_t>> sum() { return invokeSyncTyped<int64_t>("sum"); }
};

ParallelClassRegistry migRegistry() {
  ParallelClassRegistry Registry;
  Registry.registerClass(
      {"MigCounter",
       [](ScooppRuntime &, vm::Node &Host) -> std::shared_ptr<CallHandler> {
         return std::make_shared<MigCounterImpl>(Host);
       }});
  return Registry;
}

struct MigWorld {
  explicit MigWorld(ScooppConfig Config = ScooppConfig(), int Nodes = 4)
      : Machines(Nodes, vm::VmKind::MonoVm117), Net(Machines.sim(), Nodes),
        Runtime(Machines, Net, migRegistry(), Config) {}

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  ScooppRuntime Runtime;
};

ScooppConfig retryingConfig() {
  ScooppConfig Config;
  Config.Retry.MaxAttempts = 4;
  Config.Retry.AttemptTimeout = ms(10);
  return Config;
}

//===----------------------------------------------------------------------===//
// Backpressure-aware placement
//===----------------------------------------------------------------------===//

TEST(BackpressureTest, SaturatedNodeSkippedUntilTtlExpires) {
  MigWorld W;
  uint64_t DeferredBefore = counterValue("om.creations_deferred");
  struct Proc {
    static Task<void> run(MigWorld &W) {
      // Mark node 1 saturated, then create 3 objects from node 0: round
      // robin would give one to node 1, but saturation steers it away.
      W.Runtime.noteOverloaded(1);
      EXPECT_TRUE(W.Runtime.nodeSaturated(1));
      for (int I = 0; I < 3; ++I) {
        MigCounterProxy P(W.Runtime, 0);
        Error E = co_await P.create();
        EXPECT_FALSE(E) << E.str();
        EXPECT_NE(P.ref().Node, 1) << "placement ignored saturation";
      }
      // Past the TTL the node is a candidate again.
      co_await W.sim().delay(W.Runtime.config().SaturationTtl + ms(1));
      EXPECT_FALSE(W.Runtime.nodeSaturated(1));
      for (int I = 0; I < 4; ++I) {
        MigCounterProxy P(W.Runtime, 0);
        (void)co_await P.create();
      }
      EXPECT_GT(W.Runtime.om(1).hostedObjects(), 0)
          << "saturation must age out";
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_GT(counterValue("om.creations_deferred"), DeferredBefore);
}

TEST(BackpressureTest, AllSaturatedDegradesFailStaticToLocal) {
  MigWorld W;
  struct Proc {
    static Task<void> run(MigWorld &W) {
      for (int N = 1; N < 4; ++N)
        W.Runtime.noteOverloaded(N);
      MigCounterProxy P(W.Runtime, 0);
      Error E = co_await P.create();
      EXPECT_FALSE(E) << E.str();
      // Fail-static: our own node is always usable; work degrades to
      // local placement instead of failing or feeding a refusing node.
      EXPECT_EQ(P.ref().Node, 0);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

//===----------------------------------------------------------------------===//
// Live object migration
//===----------------------------------------------------------------------===//

TEST(MigrationTest, MovesStateAndReroutesExistingProxies) {
  MigWorld W(retryingConfig());
  uint64_t MigrationsBefore = counterValue("om.migrations");
  struct Proc {
    static Task<void> run(MigWorld &W) {
      MigCounterProxy P(W.Runtime, 0);
      Error E = co_await P.create();
      EXPECT_FALSE(E) << E.str();
      if (E)
        co_return;
      int Src = P.ref().Node;
      EXPECT_NE(Src, 0) << "round robin places remotely";
      (void)co_await P.add(5);
      (void)co_await P.add(7);

      int Dst = (Src + 1) % 4 == 0 ? (Src + 2) % 4 : (Src + 1) % 4;
      ErrorOr<ParallelRef> Moved =
          co_await W.Runtime.om(Src).migrate(P.ref().Name, Dst);
      EXPECT_TRUE(Moved.hasValue()) << Moved.error().str();
      if (!Moved)
        co_return;
      EXPECT_EQ(Moved->Node, Dst);

      // The old proxy keeps working and absorbs the new route.
      auto Handled = co_await P.handled();
      auto Sum = co_await P.sum();
      EXPECT_TRUE(Handled.hasValue() && Sum.hasValue());
      if (!Handled || !Sum)
        co_return;
      EXPECT_EQ(*Handled, 2) << "calls lost or duplicated in the move";
      EXPECT_EQ(*Sum, 12) << "state not carried";
      EXPECT_EQ(P.ref().Node, Dst) << "route not absorbed into the proxy";

      // A proxy still holding the stale ref also resolves to the new home.
      MigCounterProxy Stale(W.Runtime, 0);
      Stale.bind(MigCounterProxy::ClassName, ParallelRef{Src, Moved->Name});
      auto Again = co_await Stale.sum();
      EXPECT_TRUE(Again.hasValue()) << Again.error().str();
      if (Again) {
        EXPECT_EQ(*Again, 12);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_EQ(counterValue("om.migrations"), MigrationsBefore + 1);
}

constexpr int ReplayCalls = 20;

TEST(MigrationTest, ParkedCallsReplayExactlyOnceUnderTraffic) {
  MigWorld W(retryingConfig());
  struct Proc {
    static Task<void> caller(MigWorld &W, MigCounterProxy &P, int &Failed) {
      for (int I = 0; I < ReplayCalls; ++I) {
        auto R = co_await P.slow(200); // 200us of served work per call.
        if (!R.hasValue())
          ++Failed;
        co_await W.sim().delay(us(100));
      }
    }
    static Task<void> run(MigWorld &W, int &Failed) {
      MigCounterProxy P(W.Runtime, 0);
      Error E = co_await P.create();
      EXPECT_FALSE(E) << E.str();
      if (E)
        co_return;
      int Src = P.ref().Node;
      W.sim().spawn(Proc::caller(W, P, Failed));
      co_await W.sim().delay(ms(1)); // Mid-stream: calls are in flight.
      ErrorOr<ParallelRef> Moved =
          co_await W.Runtime.om(Src).migrate(P.ref().Name, 0);
      EXPECT_TRUE(Moved.hasValue()) << Moved.error().str();
      if (!Moved)
        co_return;
      // Wait for the caller loop to push all 20 calls through the
      // migrated object, then checksum: each slow() adds exactly 1.
      while (true) {
        auto H = co_await P.handled();
        EXPECT_TRUE(H.hasValue());
        if (!H || *H >= ReplayCalls)
          break;
        co_await W.sim().delay(ms(1));
      }
      auto Handled = co_await P.handled();
      auto Sum = co_await P.sum();
      EXPECT_TRUE(Handled.hasValue() && Sum.hasValue());
      if (!Handled || !Sum)
        co_return;
      EXPECT_EQ(*Handled, ReplayCalls) << "lost or duplicated calls";
      EXPECT_EQ(*Sum, ReplayCalls) << "each slow() adds exactly 1";
    }
  };
  int Failed = 0;
  W.sim().spawn(Proc::run(W, Failed));
  W.sim().run();
  EXPECT_EQ(Failed, 0) << "migration must be invisible to callers";
  // The move actually crossed an active window: calls were parked at the
  // source and/or forwarded off its tombstone.
  uint64_t Parked = 0, Forwarded = 0;
  for (int N = 0; N < 4; ++N) {
    Parked += W.Runtime.endpoint(N).stats().CallsParked;
    Forwarded += W.Runtime.endpoint(N).stats().CallsForwarded;
  }
  EXPECT_GE(Parked + Forwarded, 1u)
      << "migration window never intersected live traffic; widen the test";
}

TEST(MigrationTest, RejectsBadArguments) {
  MigWorld W(retryingConfig());
  struct Proc {
    static Task<void> run(MigWorld &W) {
      MigCounterProxy P(W.Runtime, 0);
      Error E = co_await P.create();
      EXPECT_FALSE(E) << E.str();
      if (E)
        co_return;
      int Src = P.ref().Node;
      auto NoSuch = co_await W.Runtime.om(Src).migrate("io:Nope:99", 0);
      EXPECT_FALSE(NoSuch.hasValue());
      if (!NoSuch) {
        EXPECT_EQ(NoSuch.error().code(), ErrorCode::UnknownObject);
      }
      auto SelfMove = co_await W.Runtime.om(Src).migrate(P.ref().Name, Src);
      EXPECT_FALSE(SelfMove.hasValue());
      if (!SelfMove) {
        EXPECT_EQ(SelfMove.error().code(), ErrorCode::InvalidArgument);
      }
      auto BadNode = co_await W.Runtime.om(Src).migrate(P.ref().Name, 17);
      EXPECT_FALSE(BadNode.hasValue());
      if (!BadNode) {
        EXPECT_EQ(BadNode.error().code(), ErrorCode::InvalidArgument);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(MigrationTest, RepeatedRunsAreByteIdentical) {
  // The migration path is part of the deterministic story: same seed,
  // same virtual timeline, byte-identical trace and metrics exports.
  auto TracedRun = [] {
    metrics::Registry::global().reset();
    trace::reset();
    trace::setEnabled(true);
    int64_t FinalSum = -1;
    {
      MigWorld W(retryingConfig());
      struct Proc {
        static Task<void> run(MigWorld &W, int64_t &FinalSum) {
          MigCounterProxy P(W.Runtime, 0);
          Error E = co_await P.create();
          EXPECT_FALSE(E) << E.str();
          if (E)
            co_return;
          int Src = P.ref().Node;
          (void)co_await P.add(3);
          auto Moved = co_await W.Runtime.om(Src).migrate(P.ref().Name, 0);
          EXPECT_TRUE(Moved.hasValue()) << Moved.error().str();
          auto Sum = co_await P.sum();
          EXPECT_TRUE(Sum.hasValue());
          if (Sum)
            FinalSum = *Sum;
        }
      };
      W.sim().spawn(Proc::run(W, FinalSum));
      W.sim().run();
    } // Teardown folds endpoint stats into the registry.
    trace::setEnabled(false);
    std::string Trace = trace::exportJson();
    trace::reset();
    std::string Metrics = metrics::Registry::global().textReport();
    metrics::Registry::global().reset();
    return std::make_tuple(FinalSum, std::move(Metrics), std::move(Trace));
  };
  auto [SumA, MetricsA, TraceA] = TracedRun();
  auto [SumB, MetricsB, TraceB] = TracedRun();
  EXPECT_EQ(SumA, 3);
  EXPECT_EQ(SumA, SumB);
  EXPECT_EQ(MetricsA, MetricsB) << "migration metrics must replay exactly";
  EXPECT_EQ(TraceA, TraceB) << "migration traces must replay exactly";
  EXPECT_NE(TraceA.find("om.migrate.begin"), std::string::npos);
  EXPECT_NE(TraceA.find("om.migrate.done"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// SLO-driven rebalancer
//===----------------------------------------------------------------------===//

TEST(RebalancerTest, SloBreachTriggersMigrationOffHottestNode) {
  vm::Cluster Machines(4, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 4);
  telemetry::TelemetrySpec Spec;
  Spec.WindowNs = 1000;
  telemetry::SloSpec Slo;
  ASSERT_TRUE(telemetry::parseSloSpec(
      "slo(op.latency, p99 < 500ns, window=2us)", Slo));
  Spec.Slos.push_back(Slo);
  telemetry::Plane Plane(Net, Spec);

  ScooppConfig Config = retryingConfig();
  Config.Placement = PlacementPolicy::LocalOnly;
  ScooppRuntime Runtime(Machines, Net, migRegistry(), Config);

  SloRebalancer::Policy Policy;
  Policy.MaxMigrations = 1;
  Policy.MinLoadGap = 2;
  SloRebalancer Rebalancer(Runtime, Plane, Policy);

  struct Proc {
    // Pile three objects onto node 1 (LocalOnly placement pins them),
    // then breach the SLO and give the rebalancer room to act.
    static Task<void> run(ScooppRuntime &Runtime, Simulator &Sim) {
      std::vector<std::unique_ptr<MigCounterProxy>> Keep;
      for (int I = 0; I < 3; ++I) {
        auto P = std::make_unique<MigCounterProxy>(Runtime, 1);
        Error E = co_await P->create();
        EXPECT_FALSE(E) << E.str();
        EXPECT_EQ(P->ref().Node, 1);
        Keep.push_back(std::move(P));
      }
      // Every node must report: the collector's frontier is the *minimum*
      // heartbeat over all nodes, so a silent node would pin it at zero
      // and no window would ever finalize live (edges found by the
      // teardown pass do not reach the rebalancer).
      for (int T = 0; T < 10; ++T) {
        co_await Sim.delay(SimTime::microseconds(1));
        int64_t Now = Sim.now().nanosecondsCount();
        for (int N = 0; N < 4; ++N)
          telemetry::record(N, "op.latency", Now, N == 1 ? 5000 : 100);
      }
      // Idle long enough for the spawned migration to finish.
      co_await Sim.delay(SimTime::milliseconds(5));
    }
  };
  Machines.sim().spawn(Proc::run(Runtime, Machines.sim()));
  Machines.sim().run();

  EXPECT_GE(Rebalancer.breaches(), 1u);
  EXPECT_EQ(Rebalancer.triggered(), 1u);
  EXPECT_EQ(Rebalancer.succeeded(), 1u) << "migration failed";
  // One object left the hot node for the coldest (node 0, lowest id).
  EXPECT_EQ(Runtime.om(1).hostedObjects(), 2);
  EXPECT_EQ(Runtime.om(0).hostedObjects(), 1);
}

//===----------------------------------------------------------------------===//
// Open-loop generator (the app itself)
//===----------------------------------------------------------------------===//

apps::loadgen::LoadGenConfig smallLoad() {
  apps::loadgen::LoadGenConfig Cfg;
  Cfg.Nodes = 2;
  Cfg.ClientNodes = 1;
  Cfg.Workers = 2;
  Cfg.WorkCost = ms(1);
  Cfg.Duration = ms(10);
  Cfg.OfferedRate = 2.0 * apps::loadgen::saturationRate(Cfg);
  Cfg.Seed = 7;
  return Cfg;
}

TEST(LoadGenTest, ProtectedRunShedsAndAccountsEveryCall) {
  apps::loadgen::LoadGenConfig Cfg = smallLoad();
  Cfg.MaxPending = 3;
  apps::loadgen::LoadGenResult R = apps::loadgen::runLoadGen(Cfg);
  EXPECT_GT(R.Offered, 0u);
  EXPECT_GT(R.Completed, 0u);
  EXPECT_GT(R.Rejected, 0u) << "2x saturation must trip a budget of 3";
  EXPECT_EQ(R.Completed + R.Rejected + R.Failed, R.Offered);
  EXPECT_GT(R.ServerShed, 0u);
}

TEST(LoadGenTest, UnprotectedRunQueuesEverythingAndLosesNothing) {
  apps::loadgen::LoadGenConfig Cfg = smallLoad();
  Cfg.MaxPending = 0;
  apps::loadgen::LoadGenResult R = apps::loadgen::runLoadGen(Cfg);
  EXPECT_EQ(R.Completed, R.Offered) << "open-loop queueing loses nothing";
  EXPECT_EQ(R.Rejected, 0u);
  EXPECT_EQ(R.ServerShed, 0u);
}

TEST(LoadGenTest, RunsAreDeterministic) {
  apps::loadgen::LoadGenConfig Cfg = smallLoad();
  Cfg.MaxPending = 3;
  apps::loadgen::LoadGenResult A = apps::loadgen::runLoadGen(Cfg);
  apps::loadgen::LoadGenResult B = apps::loadgen::runLoadGen(Cfg);
  EXPECT_EQ(A.Offered, B.Offered);
  EXPECT_EQ(A.Completed, B.Completed);
  EXPECT_EQ(A.Rejected, B.Rejected);
  EXPECT_EQ(A.Failed, B.Failed);
  EXPECT_EQ(A.P50Us, B.P50Us);
  EXPECT_EQ(A.P99Us, B.P99Us);
  EXPECT_EQ(A.ServerShed, B.ServerShed);
  EXPECT_EQ(A.SloWaits, B.SloWaits);
}

} // namespace
