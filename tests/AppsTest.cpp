//===- tests/AppsTest.cpp - workload application tests --------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "apps/pingpong/PingPong.h"
#include "core/ObjectManager.h"
#include "apps/ray/Farm.h"
#include "apps/ray/Scene.h"
#include "apps/sieve/Sieve.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace parcs;
using namespace parcs::apps;

namespace {

//===----------------------------------------------------------------------===//
// Ray tracer scene
//===----------------------------------------------------------------------===//

TEST(SceneTest, BuildsSixtyFourSpheres) {
  ray::Scene S = ray::Scene::javaGrande(4);
  EXPECT_EQ(S.sphereCount(), 64u);
}

TEST(SceneTest, RenderingIsDeterministic) {
  ray::Scene S = ray::Scene::javaGrande(3);
  ray::LineResult A = S.renderLine(10, 64, 48);
  ray::LineResult B = S.renderLine(10, 64, 48);
  EXPECT_EQ(A.Rgb, B.Rgb);
  EXPECT_EQ(A.Ops, B.Ops);
}

TEST(SceneTest, LinesDifferAndCountOps) {
  ray::Scene S = ray::Scene::javaGrande(3);
  ray::LineResult Top = S.renderLine(0, 64, 48);
  ray::LineResult Mid = S.renderLine(24, 64, 48);
  EXPECT_GT(Top.Ops, 0u);
  EXPECT_GT(Mid.Ops, Top.Ops) << "centre lines hit spheres: more work";
  EXPECT_NE(Top.Rgb, Mid.Rgb);
}

TEST(SceneTest, WholeFrameAggregatesLines) {
  ray::Scene S = ray::Scene::javaGrande(2);
  int W = 32, H = 24;
  ray::RenderStats Whole = S.renderWhole(W, H);
  uint64_t Ops = 0, Sum = 0;
  for (int Y = 0; Y < H; ++Y) {
    ray::LineResult Line = S.renderLine(Y, W, H);
    Ops += Line.Ops;
    Sum += ray::Scene::lineChecksum(Line.Rgb);
  }
  EXPECT_EQ(Whole.TotalOps, Ops);
  EXPECT_EQ(Whole.Checksum, Sum);
}

TEST(SceneTest, DeeperReflectionCostsMore) {
  ray::Scene S = ray::Scene::javaGrande(3);
  EXPECT_GT(S.renderLine(24, 64, 48, /*MaxDepth=*/4).Ops,
            S.renderLine(24, 64, 48, /*MaxDepth=*/0).Ops);
}

TEST(SceneTest, CalibrationHitsTarget) {
  ray::Scene S = ray::Scene::javaGrande(2);
  double NsPerOp = ray::calibrateNsPerOp(S, 40, 30, 10.0);
  ray::RenderStats Stats = S.renderWhole(40, 30);
  EXPECT_NEAR(static_cast<double>(Stats.TotalOps) * NsPerOp * 1e-9, 10.0,
              1e-6);
}

//===----------------------------------------------------------------------===//
// Ray farms (Fig. 9 machinery, small frames)
//===----------------------------------------------------------------------===//

std::shared_ptr<const ray::RayJob> smallJob() {
  auto Job = std::make_shared<ray::RayJob>();
  Job->SceneData = ray::Scene::javaGrande(2);
  Job->Width = 48;
  Job->Height = 36;
  Job->LinesPerTask = 6;
  // Small virtual cost so tests run fast in virtual time too.
  Job->NsPerOp = ray::calibrateNsPerOp(Job->SceneData, Job->Width,
                                       Job->Height, /*Target=*/2.0);
  return Job;
}

TEST(RayFarmTest, ScooppChecksumMatchesSequential) {
  auto Job = smallJob();
  ray::SequentialResult Seq =
      ray::sequentialRender(*Job, vm::VmKind::SunJvm142);
  ray::FarmResult Farm = ray::runScooppRayFarm(Job, {/*Processors=*/4});
  EXPECT_EQ(Farm.Checksum, Seq.Checksum) << "the farm must render the same "
                                            "image";
  EXPECT_EQ(Farm.PixelBytes,
            static_cast<uint64_t>(Job->Width) * Job->Height * 3);
  EXPECT_GT(Farm.Elapsed, sim::SimTime());
}

TEST(RayFarmTest, RmiChecksumMatchesSequential) {
  auto Job = smallJob();
  ray::SequentialResult Seq =
      ray::sequentialRender(*Job, vm::VmKind::SunJvm142);
  ray::FarmResult Farm = ray::runRmiRayFarm(Job, {/*Processors=*/4});
  EXPECT_EQ(Farm.Checksum, Seq.Checksum);
  EXPECT_EQ(Farm.PixelBytes,
            static_cast<uint64_t>(Job->Width) * Job->Height * 3);
}

TEST(RayFarmTest, MoreProcessorsRunFaster) {
  auto Job = smallJob();
  ray::FarmResult P1 = ray::runScooppRayFarm(Job, {1});
  ray::FarmResult P4 = ray::runScooppRayFarm(Job, {4});
  EXPECT_LT(P4.Elapsed, P1.Elapsed);
  // Speed-up is sub-linear but real.
  EXPECT_GT(P1.Elapsed.toSecondsF() / P4.Elapsed.toSecondsF(), 1.8);
}

TEST(RayFarmTest, ParcsSlowerThanRmiAtEqualProcessors) {
  // Fig. 9: ParC# sits above Java RMI, dominated by the Mono VM's 1.4x
  // sequential penalty.
  auto Job = smallJob();
  ray::FarmResult Parcs = ray::runScooppRayFarm(Job, {2});
  ray::FarmResult Rmi = ray::runRmiRayFarm(Job, {2});
  EXPECT_GT(Parcs.Elapsed, Rmi.Elapsed);
  double Ratio = Parcs.Elapsed.toSecondsF() / Rmi.Elapsed.toSecondsF();
  EXPECT_GT(Ratio, 1.2);
  EXPECT_LT(Ratio, 1.9);
}

TEST(RayFarmTest, SequentialVmRatiosMatchPaper) {
  auto Job = smallJob();
  double Jvm = ray::sequentialRender(*Job, vm::VmKind::SunJvm142).Seconds;
  double Mono = ray::sequentialRender(*Job, vm::VmKind::MonoVm117).Seconds;
  double Clr = ray::sequentialRender(*Job, vm::VmKind::MsClr).Seconds;
  EXPECT_NEAR(Mono / Jvm, 1.4, 1e-9);
  EXPECT_NEAR(Clr / Jvm, 1.1, 1e-9);
}

TEST(RayFarmTest, DeterministicAcrossRuns) {
  auto Job = smallJob();
  ray::FarmResult A = ray::runScooppRayFarm(Job, {3});
  ray::FarmResult B = ray::runScooppRayFarm(Job, {3});
  EXPECT_EQ(A.Elapsed, B.Elapsed);
  EXPECT_EQ(A.Checksum, B.Checksum);
}


TEST(RayFarmTest, MpiFarmChecksumMatchesSequential) {
  auto Job = smallJob();
  ray::SequentialResult Seq =
      ray::sequentialRender(*Job, vm::VmKind::SunJvm142);
  ray::FarmResult Farm = ray::runMpiRayFarm(Job, {/*Processors=*/4});
  EXPECT_EQ(Farm.Checksum, Seq.Checksum);
  EXPECT_EQ(Farm.PixelBytes,
            static_cast<uint64_t>(Job->Width) * Job->Height * 3);
}

TEST(RayFarmTest, StackOrderingMpiFastest) {
  auto Job = smallJob();
  ray::FarmConfig Config;
  Config.Processors = 2;
  ray::FarmResult Mpi = ray::runMpiRayFarm(Job, Config);
  ray::FarmResult Rmi = ray::runRmiRayFarm(Job, Config);
  ray::FarmResult Parcs = ray::runScooppRayFarm(Job, Config);
  EXPECT_LT(Mpi.Elapsed, Rmi.Elapsed);
  EXPECT_LT(Rmi.Elapsed, Parcs.Elapsed);
}

TEST(RayFarmTest, MpiFarmDeterministic) {
  auto Job = smallJob();
  ray::FarmResult A = ray::runMpiRayFarm(Job, {3});
  ray::FarmResult B = ray::runMpiRayFarm(Job, {3});
  EXPECT_EQ(A.Elapsed, B.Elapsed);
  EXPECT_EQ(A.Checksum, B.Checksum);
}

//===----------------------------------------------------------------------===//
// Prime sieve
//===----------------------------------------------------------------------===//

std::vector<int32_t> referencePrimes(int32_t MaxN) {
  std::vector<int32_t> Primes;
  for (int32_t N = 2; N <= MaxN; ++N) {
    bool Composite = false;
    for (int32_t P : Primes) {
      if (static_cast<int64_t>(P) * P > N)
        break;
      if (N % P == 0) {
        Composite = true;
        break;
      }
    }
    if (!Composite)
      Primes.push_back(N);
  }
  return Primes;
}

TEST(SieveTest, SequentialSieveIsCorrect) {
  sieve::SieveJob Job;
  Job.MaxN = 2000;
  auto Result = sieve::sequentialSieve(Job, vm::VmKind::SunJvm142);
  EXPECT_EQ(Result.Primes, referencePrimes(2000));
  EXPECT_GT(Result.Tests, 0u);
  EXPECT_GT(Result.Seconds, 0.0);
}

TEST(SieveTest, VmComparisonMatchesPaper) {
  // "running another application, a prime number sieve, the Mono
  // execution time is about the same as the JVM".
  sieve::SieveJob Job;
  Job.MaxN = 5000;
  double Jvm = sieve::sequentialSieve(Job, vm::VmKind::SunJvm142).Seconds;
  double Mono = sieve::sequentialSieve(Job, vm::VmKind::MonoVm117).Seconds;
  EXPECT_DOUBLE_EQ(Mono / Jvm, 1.0);
}

struct SieveWorld {
  SieveWorld(std::shared_ptr<const sieve::SieveJob> Job,
             scoopp::ScooppConfig Config = scoopp::ScooppConfig(),
             int Nodes = 3)
      : Machines(Nodes, vm::VmKind::MonoVm117), Net(Machines.sim(), Nodes),
        Runtime(Machines, Net, [&Job] {
          scoopp::ParallelClassRegistry Registry;
          sieve::registerSieveClasses(Registry, Job);
          return Registry;
        }(), Config) {}

  vm::Cluster Machines;
  net::Network Net;
  scoopp::ScooppRuntime Runtime;
};

ErrorOr<sieve::PipelineResult>
runPipelineToCompletion(SieveWorld &W, std::shared_ptr<const sieve::SieveJob> Job) {
  ErrorOr<sieve::PipelineResult> Out(sieve::PipelineResult{});
  struct Driver {
    static sim::Task<void> run(SieveWorld &W,
                               std::shared_ptr<const sieve::SieveJob> Job,
                               ErrorOr<sieve::PipelineResult> &Out) {
      Out = co_await sieve::runSievePipeline(W.Runtime, 0, Job);
    }
  };
  W.Machines.sim().spawn(Driver::run(W, Job, Out));
  W.Machines.sim().run();
  return Out;
}

TEST(SieveTest, PipelineMatchesReference) {
  auto Job = std::make_shared<sieve::SieveJob>();
  Job->MaxN = 600;
  Job->FilterCapacity = 8;
  Job->BatchSize = 16;
  SieveWorld W(Job);
  auto Result = runPipelineToCompletion(W, Job);
  ASSERT_TRUE(Result.hasValue()) << Result.error().str();
  EXPECT_EQ(Result->Primes, referencePrimes(600));
  // pi(600) = 109 primes over capacity-8 filters -> a 14-filter chain.
  EXPECT_EQ(Result->FilterCount, 14);
}

class SieveParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SieveParamTest, PipelineCorrectAcrossShapes) {
  auto [MaxN, Capacity, Batch] = GetParam();
  auto Job = std::make_shared<sieve::SieveJob>();
  Job->MaxN = MaxN;
  Job->FilterCapacity = Capacity;
  Job->BatchSize = Batch;
  SieveWorld W(Job);
  auto Result = runPipelineToCompletion(W, Job);
  ASSERT_TRUE(Result.hasValue()) << Result.error().str();
  EXPECT_EQ(Result->Primes, referencePrimes(MaxN));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SieveParamTest,
    ::testing::Values(std::make_tuple(100, 4, 8),
                      std::make_tuple(300, 1, 16),
                      std::make_tuple(300, 16, 4),
                      std::make_tuple(1000, 8, 32),
                      std::make_tuple(50, 100, 5),
                      std::make_tuple(200, 8, 1),
                      std::make_tuple(2, 8, 8),
                      std::make_tuple(3, 1, 1)));

TEST(SieveTest, AggregationPreservesCorrectness) {
  auto Job = std::make_shared<sieve::SieveJob>();
  Job->MaxN = 500;
  scoopp::ScooppConfig Config;
  Config.Grain.MaxCallsPerMessage = 8;
  SieveWorld W(Job, Config);
  auto Result = runPipelineToCompletion(W, Job);
  ASSERT_TRUE(Result.hasValue()) << Result.error().str();
  EXPECT_EQ(Result->Primes, referencePrimes(500));
}

TEST(SieveTest, AgglomerationPreservesCorrectness) {
  auto Job = std::make_shared<sieve::SieveJob>();
  Job->MaxN = 500;
  scoopp::ScooppConfig Config;
  Config.Grain.AgglomerateObjects = true;
  SieveWorld W(Job, Config);
  auto Result = runPipelineToCompletion(W, Job);
  ASSERT_TRUE(Result.hasValue()) << Result.error().str();
  EXPECT_EQ(Result->Primes, referencePrimes(500));
  // Everything was created on the driver's node.
  EXPECT_EQ(W.Runtime.om(0).hostedObjects(), Result->FilterCount);
  EXPECT_EQ(W.Runtime.stats().RemoteCreations, 0u);
  EXPECT_EQ(W.Runtime.stats().LocalCreations,
            static_cast<uint64_t>(Result->FilterCount));
}

TEST(SieveTest, AdaptiveModePreservesCorrectness) {
  auto Job = std::make_shared<sieve::SieveJob>();
  Job->MaxN = 800;
  scoopp::ScooppConfig Config;
  Config.Grain.Adaptive = true;
  Config.Grain.MaxCallsPerMessage = 16;
  SieveWorld W(Job, Config);
  auto Result = runPipelineToCompletion(W, Job);
  ASSERT_TRUE(Result.hasValue()) << Result.error().str();
  EXPECT_EQ(Result->Primes, referencePrimes(800));
}

TEST(SieveTest, AggregationCutsMessageCount) {
  auto CountMessages = [](int Factor) {
    auto Job = std::make_shared<sieve::SieveJob>();
    Job->MaxN = 400;
    Job->BatchSize = 4;
    scoopp::ScooppConfig Config;
    Config.Grain.MaxCallsPerMessage = Factor;
    SieveWorld W(Job, Config);
    auto Result = runPipelineToCompletion(W, Job);
    EXPECT_TRUE(Result.hasValue());
    return W.Net.messagesDelivered();
  };
  EXPECT_GT(CountMessages(1), CountMessages(8));
}

//===----------------------------------------------------------------------===//
// Ping-pong kernels (Fig. 8 machinery, spot checks)
//===----------------------------------------------------------------------===//

TEST(PingPongTest, LatencyOrderingMatchesPaper) {
  int Rounds = 20;
  size_t Small = 4;
  double Mpi = pingpong::runMpiPingPong(Small, Rounds).OneWayLatencyUs;
  double Mono =
      pingpong::runRemotingPingPong(remoting::StackKind::MonoRemotingTcp117,
                                    Small, Rounds)
          .OneWayLatencyUs;
  double Nio = pingpong::runRemotingPingPong(remoting::StackKind::JavaNio,
                                             Small, Rounds)
                   .OneWayLatencyUs;
  double Rmi = pingpong::runRemotingPingPong(remoting::StackKind::JavaRmi,
                                             Small, Rounds)
                   .OneWayLatencyUs;
  EXPECT_LT(Mpi, Nio);
  EXPECT_LT(Nio, Rmi);
  EXPECT_LT(Mono, Rmi);
  EXPECT_NEAR(Mpi, 100.0, 15.0);
  EXPECT_NEAR(Mono, 273.0, 40.0);
  EXPECT_NEAR(Rmi, 520.0, 60.0);
  // "This latency is very close to the performance of the Java nio
  // package."
  EXPECT_NEAR(Nio / Mono, 1.0, 0.25);
}

TEST(PingPongTest, LargeMessageBandwidthOrderingMatchesPaper) {
  int Rounds = 3;
  size_t Large = 1 << 20;
  double Mpi = pingpong::runMpiPingPong(Large, Rounds).BandwidthMBps;
  double Rmi = pingpong::runRemotingPingPong(remoting::StackKind::JavaRmi,
                                             Large, Rounds)
                   .BandwidthMBps;
  double Mono =
      pingpong::runRemotingPingPong(remoting::StackKind::MonoRemotingTcp117,
                                    Large, Rounds)
          .BandwidthMBps;
  double Mono105 =
      pingpong::runRemotingPingPong(remoting::StackKind::MonoRemotingTcp105,
                                    Large, Rounds)
          .BandwidthMBps;
  double Http =
      pingpong::runRemotingPingPong(remoting::StackKind::MonoRemotingHttp117,
                                    Large, Rounds)
          .BandwidthMBps;
  // Fig. 8a: MPI > Java RMI > Mono.  Fig. 8b: 1.1.7 >> 1.0.5, Http worst
  // or comparable to 1.0.5.
  EXPECT_GT(Mpi, Rmi);
  EXPECT_GT(Rmi, Mono);
  EXPECT_GT(Mono, Mono105);
  EXPECT_GT(Mono, Http);
  EXPECT_LT(Mpi, 11.9); // Below the wire-goodput ceiling.
}

TEST(PingPongTest, BandwidthGrowsWithMessageSize) {
  int Rounds = 5;
  auto Stack = remoting::StackKind::MonoRemotingTcp117;
  double B1k = pingpong::runRemotingPingPong(Stack, 1 << 10, Rounds)
                   .BandwidthMBps;
  double B64k = pingpong::runRemotingPingPong(Stack, 1 << 16, Rounds)
                    .BandwidthMBps;
  double B1m = pingpong::runRemotingPingPong(Stack, 1 << 20, Rounds)
                   .BandwidthMBps;
  EXPECT_LT(B1k, B64k);
  EXPECT_LT(B64k, B1m);
}

TEST(PingPongTest, ParcsPenaltyNotNoticeable) {
  int Rounds = 20;
  double Raw =
      pingpong::runRemotingPingPong(remoting::StackKind::MonoRemotingTcp117,
                                    1024, Rounds)
          .OneWayLatencyUs;
  double Parcs = pingpong::runScooppPingPong(1024, Rounds).OneWayLatencyUs;
  EXPECT_GT(Parcs, Raw);
  EXPECT_LT((Parcs - Raw) / Raw, 0.05);
}

} // namespace
