//===- tests/PdesTest.cpp - Conservative PDES determinism tests -----------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The parallel executor's contract: the run digest, the fabric counters,
// and the trace/metrics exports are identical for ANY thread count --
// threads only change wall-clock time, never observable behaviour.  Each
// scenario here runs at 1, 2, 4 and 8 threads and must produce the same
// results bit-for-bit; the 1-thread result is additionally pinned against
// golden constants so a kernel change cannot silently shift the canonical
// order for every thread count at once.
//
// To re-record after an intentional trace change:
//   PARCS_PRINT_TRACE=1 ./build/tests/pdes_test
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"
#include "net/PdesFabric.h"
#include "sim/ParallelExecutor.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace parcs;

namespace {

constexpr int ThreadSweep[] = {1, 2, 4, 8};

std::vector<uint8_t> encode32(uint32_t V) {
  return {uint8_t(V), uint8_t(V >> 8), uint8_t(V >> 16), uint8_t(V >> 24)};
}

uint32_t decode32(const std::vector<uint8_t> &P) {
  return uint32_t(P[0]) | (uint32_t(P[1]) << 8) | (uint32_t(P[2]) << 16) |
         (uint32_t(P[3]) << 24);
}

/// Everything observable about one scenario run.  Two runs are "the same"
/// iff every field matches.
struct PdesResult {
  uint64_t Digest = 0;
  uint64_t Events = 0;
  uint64_t Windows = 0;
  uint64_t MailMerged = 0;
  uint64_t Delivered = 0;
  uint64_t Dropped = 0;
  uint64_t PayloadBytes = 0;
  uint64_t AppChecksum = 0;

  bool operator==(const PdesResult &O) const {
    return Digest == O.Digest && Events == O.Events && Windows == O.Windows &&
           MailMerged == O.MailMerged && Delivered == O.Delivered &&
           Dropped == O.Dropped && PayloadBytes == O.PayloadBytes &&
           AppChecksum == O.AppChecksum;
  }
};

void printGoldens(const char *Tag, const PdesResult &R) {
  if (std::getenv("PARCS_PRINT_TRACE") == nullptr)
    return;
  std::fprintf(stderr,
               "%s: Digest=0x%016llxULL Events=%lluULL Windows=%lluULL "
               "Mail=%lluULL Delivered=%lluULL Dropped=%lluULL "
               "Payload=%lluULL Checksum=%lluULL\n",
               Tag, (unsigned long long)R.Digest, (unsigned long long)R.Events,
               (unsigned long long)R.Windows, (unsigned long long)R.MailMerged,
               (unsigned long long)R.Delivered, (unsigned long long)R.Dropped,
               (unsigned long long)R.PayloadBytes,
               (unsigned long long)R.AppChecksum);
}

//===----------------------------------------------------------------------===//
// Scenario 1: sieve pipeline
//
// Nodes form a chain; node 0 generates 2..20, each filter node keeps the
// first value it sees as its prime and forwards non-multiples.  Mirrors
// the paper's sieve benchmark shape: long dependency chain, every hop a
// cross-partition message under a 4-partition round-robin map.
//===----------------------------------------------------------------------===//

PdesResult runSieve(int Threads) {
  constexpr int Nodes = 8;
  constexpr int Port = 7000;
  net::NetConfig Cfg;

  sim::PdesConfig PC;
  PC.Partitions = 4;
  PC.Threads = Threads;
  PC.LookaheadNs = net::PdesFabric::lookaheadNs(Cfg);
  sim::ParallelExecutor Exec(PC);
  net::PdesFabric Fab(Exec, Nodes, Cfg);

  std::vector<sim::Channel<net::Message> *> In(Nodes);
  for (int N = 0; N < Nodes; ++N)
    In[N] = &Fab.bind(N, Port);

  std::vector<uint64_t> Primes(size_t(Nodes), 0);
  uint64_t PassedThrough = 0;

  struct Drivers {
    static sim::Task<void> generate(net::PdesFabric &Fab, int Port) {
      for (uint32_t V = 2; V <= 20; ++V) {
        Fab.send(0, 1, Port, encode32(V));
        co_await Fab.simOf(0).delay(sim::SimTime::microseconds(2));
      }
    }
    static sim::Task<void> filter(net::PdesFabric &Fab, int Node, int Port,
                                  sim::Channel<net::Message> &In,
                                  std::vector<uint64_t> &Primes,
                                  uint64_t &PassedThrough) {
      while (true) {
        net::Message Msg = co_await In.recv();
        uint32_t V = decode32(Msg.Payload);
        if (Primes[size_t(Node)] == 0) {
          Primes[size_t(Node)] = V;
          continue;
        }
        if (V % Primes[size_t(Node)] == 0)
          continue;
        if (Node + 1 < Fab.nodeCount())
          Fab.send(Node, Node + 1, Port, std::move(Msg.Payload));
        else
          ++PassedThrough;
      }
    }
  };

  Fab.simOf(0).spawn(Drivers::generate(Fab, Port));
  for (int N = 1; N < Nodes; ++N)
    Fab.simOf(N).spawn(
        Drivers::filter(Fab, N, Port, *In[size_t(N)], Primes, PassedThrough));

  Exec.run();

  PdesResult R;
  R.Digest = Exec.digest();
  R.Events = Exec.totalEvents();
  R.Windows = Exec.windowCount();
  R.MailMerged = Exec.mailMerged();
  R.Delivered = Fab.messagesDelivered();
  R.Dropped = Fab.messagesDropped();
  R.PayloadBytes = Fab.payloadBytesDelivered();
  for (int N = 0; N < Nodes; ++N)
    R.AppChecksum = R.AppChecksum * 31 + Primes[size_t(N)];
  R.AppChecksum = R.AppChecksum * 31 + PassedThrough;
  return R;
}

//===----------------------------------------------------------------------===//
// Scenario 2/3: ray farm, optionally under a fault plan
//
// Master (node 0) scatters tasks round-robin over 7 workers; each worker
// simulates shading (a task-dependent compute delay) and sends a result
// back.  The chaos variant layers a crash-with-restart that begins mid
// window, a network partition clause spanning many window barriers, and
// probabilistic loss -- all evaluated from plan + per-source seeded
// streams, so the fault outcome must replay exactly at any thread count.
//===----------------------------------------------------------------------===//

PdesResult runFarm(int Threads, const fault::FaultPlan *Plan) {
  constexpr int Nodes = 8;
  constexpr int Tasks = 42; // 6 per worker
  constexpr int TaskPort = 7100;
  constexpr int ResultPort = 7101;
  net::NetConfig Cfg;

  sim::PdesConfig PC;
  PC.Partitions = 4;
  PC.Threads = Threads;
  PC.LookaheadNs = net::PdesFabric::lookaheadNs(Cfg);
  sim::ParallelExecutor Exec(PC);
  net::PdesFabric Fab(Exec, Nodes, Cfg);
  if (Plan)
    Fab.setPlan(*Plan);

  std::vector<sim::Channel<net::Message> *> WorkerIn(Nodes);
  for (int W = 1; W < Nodes; ++W)
    WorkerIn[W] = &Fab.bind(W, TaskPort);
  sim::Channel<net::Message> &Results = Fab.bind(0, ResultPort);

  uint64_t Checksum = 0;
  uint64_t ResultsSeen = 0;

  struct Drivers {
    static sim::Task<void> master(net::PdesFabric &Fab, int Tasks,
                                  int TaskPort) {
      int Workers = Fab.nodeCount() - 1;
      for (int T = 0; T < Tasks; ++T) {
        Fab.send(0, 1 + T % Workers, TaskPort, encode32(uint32_t(T)));
        co_await Fab.simOf(0).delay(sim::SimTime::microseconds(1));
      }
    }
    static sim::Task<void> worker(net::PdesFabric &Fab, int W,
                                  sim::Channel<net::Message> &In,
                                  int ResultPort) {
      while (true) {
        net::Message Msg = co_await In.recv();
        uint32_t T = decode32(Msg.Payload);
        // "Shade": task-dependent deterministic compute time.
        co_await Fab.simOf(W).delay(
            sim::SimTime::microseconds(int64_t(3 + T % 5)));
        Fab.send(W, 0, ResultPort, encode32(T * T + uint32_t(W)));
      }
    }
    static sim::Task<void> collect(sim::Channel<net::Message> &Results,
                                   uint64_t &Checksum, uint64_t &Seen) {
      while (true) {
        net::Message Msg = co_await Results.recv();
        Checksum = Checksum * 1099511628211ULL + decode32(Msg.Payload);
        ++Seen;
      }
    }
  };

  Fab.simOf(0).spawn(Drivers::master(Fab, Tasks, TaskPort));
  for (int W = 1; W < Nodes; ++W)
    Fab.simOf(W).spawn(Drivers::worker(Fab, W, *WorkerIn[size_t(W)],
                                       ResultPort));
  Fab.simOf(0).spawn(Drivers::collect(Results, Checksum, ResultsSeen));

  Exec.run();

  PdesResult R;
  R.Digest = Exec.digest();
  R.Events = Exec.totalEvents();
  R.Windows = Exec.windowCount();
  R.MailMerged = Exec.mailMerged();
  R.Delivered = Fab.messagesDelivered();
  R.Dropped = Fab.messagesDropped();
  R.PayloadBytes = Fab.payloadBytesDelivered();
  R.AppChecksum = Checksum * 31 + ResultsSeen;
  return R;
}

//===----------------------------------------------------------------------===//
// Scenario 4: overload farm with admission shedding and a mid-run
// "migration"
//
// The overload runtime's observable artifacts -- shed counters and
// migration-shaped routing changes -- must be thread-count invariant like
// everything else.  Workers run a bounded admission budget (backlog past
// the budget is refused with a marked reply instead of queued), and the
// master redirects one worker's share to another at a fixed task index,
// the message-level shape of a live migration cutover.
//===----------------------------------------------------------------------===//

PdesResult runOverloadFarm(int Threads, uint64_t *TotalShed = nullptr) {
  constexpr int Nodes = 8;
  constexpr int Tasks = 70; // 10 per worker before the redirect
  constexpr int Budget = 2; // admitted backlog per worker
  constexpr int MoveAt = 35; // worker 1's share goes to worker 7 from here
  constexpr int TaskPort = 7200;
  constexpr int ResultPort = 7201;
  net::NetConfig Cfg;

  sim::PdesConfig PC;
  PC.Partitions = 4;
  PC.Threads = Threads;
  PC.LookaheadNs = net::PdesFabric::lookaheadNs(Cfg);
  sim::ParallelExecutor Exec(PC);
  net::PdesFabric Fab(Exec, Nodes, Cfg);

  std::vector<sim::Channel<net::Message> *> WorkerIn(Nodes);
  for (int W = 1; W < Nodes; ++W)
    WorkerIn[W] = &Fab.bind(W, TaskPort);
  sim::Channel<net::Message> &Results = Fab.bind(0, ResultPort);

  uint64_t Checksum = 0;
  uint64_t Served = 0;
  uint64_t ShedSeen = 0;
  uint64_t Redirected = 0;
  std::vector<uint64_t> Shed(size_t(Nodes), 0);

  struct Drivers {
    static sim::Task<void> master(net::PdesFabric &Fab, int TaskPort,
                                  uint64_t &Redirected) {
      int Workers = Fab.nodeCount() - 1;
      for (int T = 0; T < Tasks; ++T) {
        int Dst = 1 + T % Workers;
        // The "migration": from task MoveAt on, worker 1's share lands on
        // worker 7 -- the route bump a real cutover performs.
        if (T >= MoveAt && Dst == 1) {
          Dst = 7;
          ++Redirected;
        }
        Fab.send(0, Dst, TaskPort, encode32(uint32_t(T)));
        co_await Fab.simOf(0).delay(sim::SimTime::microseconds(1));
      }
    }
    static sim::Task<void> worker(net::PdesFabric &Fab, int W,
                                  sim::Channel<net::Message> &In,
                                  int ResultPort, uint64_t &MyShed) {
      while (true) {
        net::Message Msg = co_await In.recv();
        uint32_t T = decode32(Msg.Payload);
        if (In.size() >= Budget) {
          // Admission: backlog past the budget is refused immediately --
          // the marked reply is the PDES shape of an Overloaded status.
          ++MyShed;
          Fab.send(W, 0, ResultPort, encode32(0x80000000u | T));
          continue;
        }
        // Service deliberately outruns the per-worker arrival rate (the
        // master's 100 Mbit/s sender link spaces arrivals ~46us apart per
        // worker), so queues build and the budget actually bites.
        co_await Fab.simOf(W).delay(
            sim::SimTime::microseconds(int64_t(80 + T % 7)));
        Fab.send(W, 0, ResultPort, encode32(T * T + uint32_t(W)));
      }
    }
    static sim::Task<void> collect(sim::Channel<net::Message> &Results,
                                   uint64_t &Checksum, uint64_t &Served,
                                   uint64_t &ShedSeen) {
      while (true) {
        net::Message Msg = co_await Results.recv();
        uint32_t V = decode32(Msg.Payload);
        Checksum = Checksum * 1099511628211ULL + V;
        if (V & 0x80000000u)
          ++ShedSeen;
        else
          ++Served;
      }
    }
  };

  Fab.simOf(0).spawn(Drivers::master(Fab, TaskPort, Redirected));
  for (int W = 1; W < Nodes; ++W)
    Fab.simOf(W).spawn(Drivers::worker(Fab, W, *WorkerIn[size_t(W)],
                                       ResultPort, Shed[size_t(W)]));
  Fab.simOf(0).spawn(Drivers::collect(Results, Checksum, Served, ShedSeen));

  Exec.run();

  PdesResult R;
  R.Digest = Exec.digest();
  R.Events = Exec.totalEvents();
  R.Windows = Exec.windowCount();
  R.MailMerged = Exec.mailMerged();
  R.Delivered = Fab.messagesDelivered();
  R.Dropped = Fab.messagesDropped();
  R.PayloadBytes = Fab.payloadBytesDelivered();
  // Fold the overload artifacts -- per-worker shed counts, the collector's
  // served/shed split, and the redirect count -- into the app checksum so
  // a thread-count dependence in any of them fails the sweep.
  R.AppChecksum = Checksum;
  for (int W = 0; W < Nodes; ++W)
    R.AppChecksum = R.AppChecksum * 31 + Shed[size_t(W)];
  R.AppChecksum = R.AppChecksum * 31 + Served;
  R.AppChecksum = R.AppChecksum * 31 + ShedSeen;
  R.AppChecksum = R.AppChecksum * 31 + Redirected;
  if (TotalShed)
    *TotalShed = ShedSeen;
  return R;
}

fault::FaultPlan chaosPlan() {
  fault::FaultPlan Plan;
  Plan.Seed = 20260808;
  // Crash beginning mid-window (the lookahead is ~5us; 42.5us is not a
  // window boundary), with a restart so late traffic flows again.
  Plan.Crashes.push_back({/*Node=*/3,
                          /*At=*/sim::SimTime::nanoseconds(42500),
                          /*RestartAt=*/sim::SimTime::microseconds(140)});
  // Link cut master<->worker 5 spanning dozens of window barriers.
  Plan.Partitions.push_back({/*NodeA=*/0, /*NodeB=*/5,
                             /*From=*/sim::SimTime::microseconds(30),
                             /*Until=*/sim::SimTime::microseconds(200)});
  // Probabilistic loss for the whole run, drawn from per-source streams.
  Plan.Losses.push_back({/*Probability=*/0.2, /*From=*/sim::SimTime(),
                         /*Until=*/sim::SimTime()});
  return Plan;
}

//===----------------------------------------------------------------------===//
// Thread-count invariance + goldens
//===----------------------------------------------------------------------===//

TEST(PdesTest, SievePipelineIdenticalAcrossThreadCounts) {
  PdesResult Base = runSieve(1);
  printGoldens("sieve", Base);
  for (int Threads : ThreadSweep)
    EXPECT_TRUE(runSieve(Threads) == Base)
        << "sieve diverged at Threads=" << Threads;

  // The canonical order itself is pinned: a kernel change that shifts it
  // for every thread count at once fails here, like DeterminismTest does
  // for the serial path.
  EXPECT_EQ(Base.Digest, 0xa263c3f8ae2ca859ULL)
      << "PDES canonical order changed; if intentional, re-record with "
         "PARCS_PRINT_TRACE=1";
  EXPECT_EQ(Base.Delivered, 48u); // 19 generated + 29 forwarded hops
  EXPECT_EQ(Base.Dropped, 0u);
  // Primes 2,3,5,7,11,13,17 at nodes 1..7; 19 passes the whole chain.
  uint64_t Expect = 0;
  for (uint64_t P : {0, 2, 3, 5, 7, 11, 13, 17})
    Expect = Expect * 31 + P;
  Expect = Expect * 31 + 1;
  EXPECT_EQ(Base.AppChecksum, Expect);
}

TEST(PdesTest, RayFarmIdenticalAcrossThreadCounts) {
  PdesResult Base = runFarm(1, nullptr);
  printGoldens("farm", Base);
  for (int Threads : ThreadSweep)
    EXPECT_TRUE(runFarm(Threads, nullptr) == Base)
        << "farm diverged at Threads=" << Threads;

  EXPECT_EQ(Base.Digest, 0xa751f70757650101ULL)
      << "PDES canonical order changed; if intentional, re-record with "
         "PARCS_PRINT_TRACE=1";
  EXPECT_EQ(Base.Delivered, 84u); // 42 tasks out + 42 results back
  EXPECT_EQ(Base.Dropped, 0u);
}

TEST(PdesTest, OverloadFarmShedsAndMigratesIdenticallyAcrossThreadCounts) {
  uint64_t TotalShed = 0;
  PdesResult Base = runOverloadFarm(1, &TotalShed);
  printGoldens("overload", Base);
  for (int Threads : ThreadSweep)
    EXPECT_TRUE(runOverloadFarm(Threads) == Base)
        << "overload farm diverged at Threads=" << Threads;

  // The budget must actually bite: every task is answered (served or
  // refused), and some were refused.
  EXPECT_GT(TotalShed, 0u) << "no task was refused; the budget never bit";
  EXPECT_EQ(Base.Delivered, 140u); // 70 tasks out + 70 answers back
  EXPECT_EQ(Base.Dropped, 0u);
  EXPECT_EQ(Base.Digest, 0x1649fec72f4fe691ULL)
      << "PDES canonical order changed; if intentional, re-record with "
         "PARCS_PRINT_TRACE=1";
}

TEST(PdesTest, ChaosFarmFaultPlanReplaysExactly) {
  fault::FaultPlan Plan = chaosPlan();
  PdesResult Base = runFarm(1, &Plan);
  printGoldens("chaos", Base);

  // Faults must actually bite, and in both directions.
  EXPECT_GT(Base.Dropped, 0u);
  EXPECT_LT(Base.Delivered, 84u);

  // Same plan, same thread count -> bit-identical replay.
  EXPECT_TRUE(runFarm(1, &Plan) == Base) << "fault replay diverged";

  // Same plan, any thread count -> the same faults hit the same messages.
  for (int Threads : ThreadSweep)
    EXPECT_TRUE(runFarm(Threads, &Plan) == Base)
        << "chaos farm diverged at Threads=" << Threads;

  EXPECT_EQ(Base.Digest, 0xed74b73c9853f6cfULL)
      << "PDES canonical order changed; if intentional, re-record with "
         "PARCS_PRINT_TRACE=1";
}

//===----------------------------------------------------------------------===//
// Export byte-identity
//===----------------------------------------------------------------------===//

/// Runs the farm with tracing on and a clean metrics registry; returns
/// (trace json, metrics json) captured after teardown (component
/// destructors fold their counters).
std::pair<std::string, std::string> exportsAt(int Threads) {
  metrics::Registry::global().reset();
  trace::reset();
  trace::setEnabled(true);
  runFarm(Threads, nullptr);
  std::string TraceJson = trace::exportJson();
  trace::setEnabled(false);
  trace::reset();
  std::string MetricsJson = metrics::Registry::global().jsonReport();
  metrics::Registry::global().reset();
  return {std::move(TraceJson), std::move(MetricsJson)};
}

TEST(PdesTest, TraceAndMetricsExportsByteIdenticalAcrossThreadCounts) {
  auto [Trace1, Metrics1] = exportsAt(1);
  auto [Trace4, Metrics4] = exportsAt(4);
  EXPECT_EQ(Trace1, Trace4) << "trace export depends on thread count";
  EXPECT_EQ(Metrics1, Metrics4) << "metrics export depends on thread count";
  EXPECT_NE(Trace1.find("net.transfer"), std::string::npos)
      << "expected fabric transfer spans in the trace";
  EXPECT_NE(Metrics1.find("pdes.windows"), std::string::npos);
  EXPECT_NE(Metrics1.find("net.messages_delivered"), std::string::npos);
  EXPECT_NE(Metrics1.find("net.frames"), std::string::npos)
      << "expected Network-parity wire accounting from the PDES fabric";
}

//===----------------------------------------------------------------------===//
// Environment knob
//===----------------------------------------------------------------------===//

TEST(PdesTest, SimThreadsFromEnvParsesAndClamps) {
  // The suite runs with whatever PARCS_SIM_THREADS CI exports; only check
  // the parse contract, not a specific value.
  int N = sim::simThreadsFromEnv();
  EXPECT_GE(N, 1);
  EXPECT_LE(N, 64);
}

TEST(PdesTest, ExecutorClampsThreadsToPartitions) {
  sim::PdesConfig PC;
  PC.Partitions = 2;
  PC.Threads = 8;
  PC.LookaheadNs = 1000;
  sim::ParallelExecutor Exec(PC);
  EXPECT_EQ(Exec.config().Threads, 2);
  EXPECT_EQ(Exec.partitionCount(), 2);
}

} // namespace
