//===- tests/InlineFunctionTest.cpp - SBO callable unit tests -------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The simulator stores every event callback in an InlineFunction, so this
// type must get object lifetimes exactly right across the inline/heap
// boundary: captures that straddle the buffer size, move-only captures,
// and destruction counts through move/reset/reassign.
//
//===----------------------------------------------------------------------===//

#include "support/InlineFunction.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

using parcs::InlineFunction;

namespace {

using Fn = InlineFunction<int(), 64>;

/// A callable of an exact size, with instance accounting.
template <size_t PayloadBytes> struct Sized {
  static int Live;
  static int Destroyed;
  std::array<unsigned char, PayloadBytes> Payload{};

  Sized() { ++Live; }
  Sized(const Sized &Other) : Payload(Other.Payload) { ++Live; }
  Sized(Sized &&Other) noexcept : Payload(Other.Payload) { ++Live; }
  ~Sized() {
    --Live;
    ++Destroyed;
  }
  int operator()() const { return static_cast<int>(Payload.size()); }
};
template <size_t PayloadBytes> int Sized<PayloadBytes>::Live = 0;
template <size_t PayloadBytes> int Sized<PayloadBytes>::Destroyed = 0;

TEST(InlineFunctionTest, EmptyStates) {
  Fn F;
  EXPECT_FALSE(F);
  EXPECT_TRUE(F.isInline());
  Fn G(nullptr);
  EXPECT_FALSE(G);
  F = std::move(G);
  EXPECT_FALSE(F);
}

TEST(InlineFunctionTest, SmallCaptureIsInlineAndCalls) {
  int X = 41;
  Fn F([&X] { return X + 1; });
  ASSERT_TRUE(F);
  EXPECT_TRUE(F.isInline());
  EXPECT_EQ(F(), 42);
}

TEST(InlineFunctionTest, CaptureSizesStraddleTheBuffer) {
  // 64 bytes: exactly the buffer -- must be inline.
  EXPECT_TRUE((Fn::fitsInline<Sized<64>>()));
  Fn AtLimit(Sized<64>{});
  EXPECT_TRUE(AtLimit.isInline());
  EXPECT_EQ(AtLimit(), 64);

  // 65 bytes: one past the buffer -- must fall back to the heap, and still
  // call and destroy correctly.
  EXPECT_FALSE((Fn::fitsInline<Sized<65>>()));
  {
    Fn PastLimit(Sized<65>{});
    EXPECT_FALSE(PastLimit.isInline());
    EXPECT_EQ(PastLimit(), 65);
    EXPECT_EQ(Sized<65>::Live, 1);
  }
  EXPECT_EQ(Sized<65>::Live, 0);
}

TEST(InlineFunctionTest, MoveOnlyCapture) {
  auto Boxed = std::make_unique<int>(7);
  InlineFunction<int(), 64> F([Boxed = std::move(Boxed)] { return *Boxed; });
  ASSERT_TRUE(F);
  EXPECT_TRUE(F.isInline());

  // Move the wrapper; the capture (and its unique_ptr) must follow.
  InlineFunction<int(), 64> G(std::move(F));
  EXPECT_FALSE(F);
  ASSERT_TRUE(G);
  EXPECT_EQ(G(), 7);
}

TEST(InlineFunctionTest, MoveOnlyCaptureOnHeap) {
  struct Big {
    std::unique_ptr<int> Boxed;
    std::array<unsigned char, 96> Pad{};
    int operator()() const { return *Boxed; }
  };
  InlineFunction<int(), 64> F(Big{std::make_unique<int>(9), {}});
  ASSERT_TRUE(F);
  EXPECT_FALSE(F.isInline());
  InlineFunction<int(), 64> G(std::move(F));
  EXPECT_EQ(G(), 9);
}

TEST(InlineFunctionTest, DestructionCountsInline) {
  Sized<32>::Live = 0;
  Sized<32>::Destroyed = 0;
  {
    Fn F(Sized<32>{});
    EXPECT_TRUE(F.isInline());
    EXPECT_EQ(Sized<32>::Live, 1);
    // Move constructs in the destination and destroys the source copy.
    Fn G(std::move(F));
    EXPECT_EQ(Sized<32>::Live, 1);
    EXPECT_FALSE(F);
    // reset destroys the held callable immediately.
    G.reset();
    EXPECT_EQ(Sized<32>::Live, 0);
    EXPECT_FALSE(G);
  }
  EXPECT_EQ(Sized<32>::Live, 0);
}

TEST(InlineFunctionTest, DestructionCountsHeap) {
  Sized<128>::Live = 0;
  Sized<128>::Destroyed = 0;
  {
    Fn F(Sized<128>{});
    EXPECT_FALSE(F.isInline());
    EXPECT_EQ(Sized<128>::Live, 1);
    // A heap move just transfers the pointer: no construct, no destroy.
    int DestroyedBefore = Sized<128>::Destroyed;
    Fn G(std::move(F));
    EXPECT_EQ(Sized<128>::Live, 1);
    EXPECT_EQ(Sized<128>::Destroyed, DestroyedBefore);
    EXPECT_EQ(G(), 128);
  }
  EXPECT_EQ(Sized<128>::Live, 0);
}

TEST(InlineFunctionTest, ReassignDestroysOldCallable) {
  Sized<16>::Live = 0;
  Fn F(Sized<16>{});
  EXPECT_EQ(Sized<16>::Live, 1);
  F = Fn([] { return 5; });
  EXPECT_EQ(Sized<16>::Live, 0);
  EXPECT_EQ(F(), 5);
}

TEST(InlineFunctionTest, TriviallyCopyableCaptureSurvivesMoves) {
  // The memcpy relocation fast path (Manage == nullptr internally): chase
  // the value through a chain of moves.
  struct Flat {
    int A, B, C, D;
    int operator()() const { return A + B + C + D; }
  };
  static_assert(std::is_trivially_copyable_v<Flat>);
  Fn F(Flat{1, 2, 3, 4});
  Fn G(std::move(F));
  Fn H;
  H = std::move(G);
  EXPECT_EQ(H(), 10);
}

TEST(InlineFunctionTest, ArgumentsAndReturnValues) {
  InlineFunction<std::string(const std::string &, int), 64> F(
      [](const std::string &S, int N) {
        std::string Out;
        for (int I = 0; I < N; ++I)
          Out += S;
        return Out;
      });
  EXPECT_EQ(F("ab", 3), "ababab");
}

TEST(InlineFunctionTest, MutableCallableKeepsState) {
  InlineFunction<int(), 64> Counter([N = 0]() mutable { return ++N; });
  EXPECT_EQ(Counter(), 1);
  EXPECT_EQ(Counter(), 2);
  InlineFunction<int(), 64> Moved(std::move(Counter));
  EXPECT_EQ(Moved(), 3);
}

} // namespace
