//===- tests/WorldTest.cpp - full-stack integration via ScooppWorld -------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-stack integration through the ScooppWorld bundle: multiple
/// applications (ray farm + sieve) coexisting on one runtime, mixed grain
/// policies, and the tuned-Mono projection end to end.
///
//===----------------------------------------------------------------------===//

#include "apps/ray/Farm.h"
#include "apps/sieve/Sieve.h"
#include "core/ObjectManager.h"
#include "core/World.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::scoopp;
using namespace parcs::sim;

namespace {

std::shared_ptr<const apps::ray::RayJob> tinyRayJob() {
  auto Job = std::make_shared<apps::ray::RayJob>();
  Job->SceneData = apps::ray::Scene::javaGrande(2);
  Job->Width = 32;
  Job->Height = 24;
  Job->LinesPerTask = 4;
  Job->NsPerOp = apps::ray::calibrateNsPerOp(Job->SceneData, Job->Width,
                                             Job->Height, 0.5);
  return Job;
}

TEST(WorldTest, RunMainReportsElapsedVirtualTime) {
  ParallelClassRegistry Registry;
  ScooppWorld W(2, std::move(Registry));
  SimTime Elapsed = W.runMain([](ScooppRuntime &Runtime) -> Task<void> {
    co_await Runtime.sim().delay(SimTime::milliseconds(5));
  });
  EXPECT_EQ(Elapsed, SimTime::milliseconds(5));
}

TEST(WorldTest, TwoApplicationsShareOneRuntime) {
  // The sieve pipeline and a ray farm run concurrently over the same
  // cluster, endpoints and object managers -- both must be correct, and
  // both classes' objects appear in the OM accounting.
  auto RayJob = tinyRayJob();
  auto SieveJob = std::make_shared<apps::sieve::SieveJob>();
  SieveJob->MaxN = 300;

  ParallelClassRegistry Registry;
  apps::ray::registerRayWorker(Registry, RayJob);
  apps::sieve::registerSieveClasses(Registry, SieveJob);

  ScooppWorld W(3, std::move(Registry));

  uint64_t RayChecksum = 0;
  std::vector<int32_t> Primes;
  bool RayOk = false, SieveOk = false;

  W.runMain([&](ScooppRuntime &Runtime) -> Task<void> {
    // Kick off the sieve as a concurrent activity.
    struct SieveDriver {
      static Task<void> run(ScooppRuntime &Runtime,
                            std::shared_ptr<const apps::sieve::SieveJob> Job,
                            std::vector<int32_t> &Primes, bool &Ok) {
        auto Result = co_await apps::sieve::runSievePipeline(Runtime, 2, Job);
        if (Result) {
          Primes = Result->Primes;
          Ok = true;
        }
      }
    };
    Runtime.sim().spawn(
        SieveDriver::run(Runtime, SieveJob, Primes, SieveOk));

    // Meanwhile run a 3-worker ray farm from node 0.
    std::vector<std::unique_ptr<apps::ray::RayWorkerProxy>> Workers;
    for (int I = 0; I < 3; ++I) {
      auto P = std::make_unique<apps::ray::RayWorkerProxy>(Runtime, 0);
      Error E = co_await P->create();
      EXPECT_FALSE(E) << E.str();
      Workers.push_back(std::move(P));
    }
    for (int32_t Y = 0; Y < RayJob->Height; Y += RayJob->LinesPerTask) {
      int32_t Y1 = std::min<int32_t>(Y + RayJob->LinesPerTask,
                                     RayJob->Height);
      co_await Workers[static_cast<size_t>((Y / RayJob->LinesPerTask) % 3)]
          ->render(Y, Y1);
    }
    uint64_t Sum = 0;
    for (auto &Worker : Workers) {
      auto Raw = co_await Worker->collect();
      EXPECT_TRUE(Raw.hasValue());
      if (!Raw)
        co_return;
      serial::InputArchive In(*Raw);
      uint64_t Partial = 0;
      EXPECT_TRUE(In.read(Partial));
      Sum += Partial;
    }
    RayChecksum = Sum;
    RayOk = true;
  });

  EXPECT_TRUE(RayOk);
  EXPECT_TRUE(SieveOk);
  apps::ray::RenderStats Seq =
      RayJob->SceneData.renderWhole(RayJob->Width, RayJob->Height);
  EXPECT_EQ(RayChecksum, Seq.Checksum);
  EXPECT_EQ(Primes.size(),
            apps::sieve::sequentialSieve(*SieveJob, vm::VmKind::SunJvm142)
                .Primes.size());
}

TEST(WorldTest, MixedPolicyWorldsAreIndependent) {
  // Two worlds with different grain policies run the same workload and
  // agree on the answer while differing in traffic.
  auto SieveJob = std::make_shared<apps::sieve::SieveJob>();
  SieveJob->MaxN = 400;

  auto RunWith = [&](GrainPolicy Grain, uint64_t &Messages) {
    ParallelClassRegistry Registry;
    apps::sieve::registerSieveClasses(Registry, SieveJob);
    ScooppConfig Config;
    Config.Grain = Grain;
    ScooppWorld W(3, std::move(Registry), Config);
    std::vector<int32_t> Primes;
    W.runMain([&](ScooppRuntime &Runtime) -> Task<void> {
      auto Result = co_await apps::sieve::runSievePipeline(Runtime, 0,
                                                           SieveJob);
      EXPECT_TRUE(Result.hasValue());
      if (Result)
        Primes = Result->Primes;
    });
    Messages = W.net().messagesDelivered();
    return Primes;
  };

  uint64_t FineMessages = 0, PackedMessages = 0;
  GrainPolicy Fine;
  GrainPolicy Packed;
  Packed.MaxCallsPerMessage = 16;
  auto A = RunWith(Fine, FineMessages);
  auto B = RunWith(Packed, PackedMessages);
  EXPECT_EQ(A, B);
  EXPECT_GT(FineMessages, PackedMessages);
}

TEST(WorldTest, TunedMonoWorldRunsFaster) {
  auto SieveJob = std::make_shared<apps::sieve::SieveJob>();
  SieveJob->MaxN = 600;
  auto TimeWith = [&](vm::VmKind Vm, remoting::StackKind Stack) {
    ParallelClassRegistry Registry;
    apps::sieve::registerSieveClasses(Registry, SieveJob);
    ScooppConfig Config;
    Config.Stack = Stack;
    ScooppWorld W(3, std::move(Registry), Config, Vm);
    return W.runMain([&](ScooppRuntime &Runtime) -> Task<void> {
      auto Result =
          co_await apps::sieve::runSievePipeline(Runtime, 0, SieveJob);
      EXPECT_TRUE(Result.hasValue());
    });
  };
  SimTime Paper = TimeWith(vm::VmKind::MonoVm117,
                           remoting::StackKind::MonoRemotingTcp117);
  SimTime Tuned = TimeWith(vm::VmKind::MonoTuned,
                           remoting::StackKind::MonoRemotingTuned);
  EXPECT_LT(Tuned, Paper);
}

} // namespace
