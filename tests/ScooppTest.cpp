//===- tests/ScooppTest.cpp - ParC#/SCOOPP runtime tests ------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/ImplAdapter.h"
#include "core/ObjectManager.h"
#include "core/Passive.h"
#include "core/Proxy.h"
#include "core/Scoopp.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::scoopp;
using namespace parcs::sim;

namespace {

SimTime us(int64_t N) { return SimTime::microseconds(N); }

/// A stateful parallel class: accumulates integers (async "add"), answers
/// the sum (sync "total"), and can burn CPU ("work").
class CounterImpl : public CallHandler {
public:
  explicit CounterImpl(vm::Node &Host) : Host(Host) {}

  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method == "add") {
      int32_t Value = 0;
      if (!serial::decodeValues(Args, Value))
        co_return Error(ErrorCode::MalformedMessage, "add args");
      co_await Host.compute(us(2));
      Sum += Value;
      co_return Bytes{};
    }
    if (Method == "total") {
      co_await Host.compute(us(1));
      co_return serial::encodeValues(Sum);
    }
    if (Method == "work") {
      int64_t Micros = 0;
      if (!serial::decodeValues(Args, Micros))
        co_return Error(ErrorCode::MalformedMessage, "work args");
      co_await Host.compute(us(Micros));
      co_return serial::encodeValues(Unit());
    }
    if (Method == "whereAmI")
      co_return serial::encodeValues(static_cast<int32_t>(Host.id()));
    co_return Error(ErrorCode::UnknownMethod, std::string(Method));
  }

private:
  vm::Node &Host;
  int32_t Sum = 0;
};

/// The generated-proxy shape (what parcgen emits) for CounterImpl.
class CounterProxy : public ProxyBase {
public:
  static constexpr const char *ClassName = "Counter";
  using ProxyBase::ProxyBase;

  sim::Task<Error> create() { return ProxyBase::create(ClassName); }
  sim::Task<void> add(int32_t Value) {
    return invokeAsync("add", serial::encodeValues(Value));
  }
  sim::Task<ErrorOr<int32_t>> total() {
    return invokeSyncTyped<int32_t>("total");
  }
  sim::Task<ErrorOr<Unit>> work(int64_t Micros) {
    return invokeSyncTyped<Unit>("work", Micros);
  }
  sim::Task<ErrorOr<int32_t>> whereAmI() {
    return invokeSyncTyped<int32_t>("whereAmI");
  }
};

ParallelClassRegistry makeRegistry() {
  ParallelClassRegistry Registry;
  Registry.registerClass(
      {"Counter",
       [](ScooppRuntime &, vm::Node &Host) -> std::shared_ptr<CallHandler> {
         return std::make_shared<CounterImpl>(Host);
       }});
  return Registry;
}

struct ScooppWorld {
  explicit ScooppWorld(ScooppConfig Config = ScooppConfig(), int Nodes = 4)
      : Machines(Nodes, vm::VmKind::MonoVm117), Net(Machines.sim(), Nodes),
        Runtime(Machines, Net, makeRegistry(), Config) {}

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  ScooppRuntime Runtime;
};

//===----------------------------------------------------------------------===//
// Creation + placement
//===----------------------------------------------------------------------===//

TEST(ScooppCreateTest, RoundRobinSpreadsObjects) {
  ScooppWorld W;
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      for (int I = 0; I < 8; ++I) {
        CounterProxy P(W.Runtime, 0);
        Error E = co_await P.create();
        EXPECT_FALSE(E) << E.str();
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  // 8 objects over 4 nodes, round robin: two each.
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(W.Runtime.om(I).hostedObjects(), 2) << "node " << I;
  EXPECT_EQ(W.Runtime.stats().RemoteCreations, 8u);
  EXPECT_EQ(W.Runtime.stats().LocalCreations, 0u);
}

TEST(ScooppCreateTest, StaticAgglomerationCreatesLocally) {
  ScooppConfig Config;
  Config.Grain.AgglomerateObjects = true;
  ScooppWorld W(Config);
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      for (int I = 0; I < 5; ++I) {
        CounterProxy P(W.Runtime, 2);
        (void)co_await P.create();
        EXPECT_TRUE(P.isLocal());
        EXPECT_EQ(P.ref().Node, 2);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_EQ(W.Runtime.om(2).hostedObjects(), 5);
  EXPECT_EQ(W.Runtime.stats().LocalCreations, 5u);
  EXPECT_EQ(W.Runtime.stats().RemoteCreations, 0u);
}

TEST(ScooppCreateTest, UnknownClassFails) {
  ScooppWorld W;
  Error Got;
  struct Proc {
    static Task<void> run(ScooppWorld &W, Error &Got) {
      ProxyBase P(W.Runtime, 0);
      Got = co_await P.create("NoSuchClass");
    }
  };
  W.sim().spawn(Proc::run(W, Got));
  W.sim().run();
  EXPECT_TRUE(Got);
  EXPECT_EQ(Got.code(), ErrorCode::UnknownType);
}

TEST(ScooppCreateTest, LeastLoadedAvoidsBusyNode) {
  ScooppConfig Config;
  Config.Placement = PlacementPolicy::LeastLoaded;
  ScooppWorld W(Config);
  // Preload node 1 (and 2 and 3 lightly) by hand.
  (void)W.Runtime.instantiateImpl(1, "Counter");
  (void)W.Runtime.instantiateImpl(1, "Counter");
  (void)W.Runtime.instantiateImpl(1, "Counter");
  (void)W.Runtime.instantiateImpl(2, "Counter");
  int Placed = -1;
  struct Proc {
    static Task<void> run(ScooppWorld &W, int &Placed) {
      CounterProxy P(W.Runtime, 1); // Home is the busy node.
      (void)co_await P.create();
      Placed = P.ref().Node;
    }
  };
  W.sim().spawn(Proc::run(W, Placed));
  W.sim().run();
  // Nodes 0 and 3 are empty; the tie-break picks the lowest id.
  EXPECT_EQ(Placed, 0);
}

TEST(ScooppCreateTest, RandomPlacementIsSeededDeterministic) {
  auto RunOnce = [] {
    ScooppConfig Config;
    Config.Placement = PlacementPolicy::Random;
    Config.Seed = 2026;
    ScooppWorld W(Config);
    std::vector<int> Nodes;
    struct Proc {
      static Task<void> run(ScooppWorld &W, std::vector<int> &Nodes) {
        for (int I = 0; I < 6; ++I) {
          CounterProxy P(W.Runtime, 0);
          (void)co_await P.create();
          Nodes.push_back(P.ref().Node);
        }
      }
    };
    W.sim().spawn(Proc::run(W, Nodes));
    W.sim().run();
    return Nodes;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

//===----------------------------------------------------------------------===//
// Calls: async, sync, ordering
//===----------------------------------------------------------------------===//

TEST(ScooppCallTest, AsyncThenSyncSeesAllEffects) {
  ScooppWorld W;
  ErrorOr<int32_t> Total(0);
  struct Proc {
    static Task<void> run(ScooppWorld &W, ErrorOr<int32_t> &Total) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      EXPECT_FALSE(P.isLocal());
      for (int32_t I = 1; I <= 10; ++I)
        co_await P.add(I);
      Total = co_await P.total();
    }
  };
  W.sim().spawn(Proc::run(W, Total));
  W.sim().run();
  ASSERT_TRUE(Total.hasValue());
  EXPECT_EQ(*Total, 55);
}

TEST(ScooppCallTest, LocalProxyExecutesSynchronouslyAndSerially) {
  ScooppConfig Config;
  Config.Grain.AgglomerateObjects = true;
  ScooppWorld W(Config);
  ErrorOr<int32_t> Total(0);
  uint64_t WireBefore = 0, WireAfter = 0;
  struct Proc {
    static Task<void> run(ScooppWorld &W, ErrorOr<int32_t> &Total) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      EXPECT_TRUE(P.isLocal());
      for (int32_t I = 1; I <= 4; ++I)
        co_await P.add(I);
      Total = co_await P.total();
    }
  };
  WireBefore = W.Net.messagesDelivered();
  W.sim().spawn(Proc::run(W, Total));
  W.sim().run();
  WireAfter = W.Net.messagesDelivered();
  ASSERT_TRUE(Total.hasValue());
  EXPECT_EQ(*Total, 10);
  EXPECT_EQ(WireAfter, WireBefore) << "intra-grain calls must not touch "
                                      "the network";
  EXPECT_EQ(W.Runtime.stats().LocalCalls, 5u);
  EXPECT_EQ(W.Runtime.stats().RemoteAsyncCalls, 0u);
}

TEST(ScooppCallTest, SyncErrorsPropagate) {
  ScooppWorld W;
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(ScooppWorld &W, ErrorOr<Bytes> &Out) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      Out = co_await P.invokeSync("bogus", Bytes{});
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.error().code(), ErrorCode::UnknownMethod);
}

//===----------------------------------------------------------------------===//
// Method call aggregation
//===----------------------------------------------------------------------===//

TEST(ScooppAggregationTest, BuffersUntilFactor) {
  ScooppConfig Config;
  Config.Grain.MaxCallsPerMessage = 4;
  ScooppWorld W(Config);
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      co_await P.add(1);
      co_await P.add(2);
      co_await P.add(3);
      EXPECT_EQ(P.pendingCalls(), 3u) << "below factor: buffered";
      co_await P.add(4);
      EXPECT_EQ(P.pendingCalls(), 0u) << "factor reached: shipped";
      auto Total = co_await P.total();
      EXPECT_TRUE(Total.hasValue());
      if (Total) {
        EXPECT_EQ(*Total, 10);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_EQ(W.Runtime.stats().PackedMessages, 1u);
  EXPECT_EQ(W.Runtime.stats().PackedCalls, 4u);
  // One packed one-way message carried all four adds.
  EXPECT_EQ(W.Runtime.endpoint(0).stats().OneWaySent, 1u);
}

TEST(ScooppAggregationTest, SyncCallFlushesPartialBuffer) {
  ScooppConfig Config;
  Config.Grain.MaxCallsPerMessage = 100;
  ScooppWorld W(Config);
  ErrorOr<int32_t> Total(0);
  struct Proc {
    static Task<void> run(ScooppWorld &W, ErrorOr<int32_t> &Total) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      for (int32_t I = 1; I <= 7; ++I)
        co_await P.add(I);
      EXPECT_EQ(P.pendingCalls(), 7u);
      Total = co_await P.total(); // Must flush first.
    }
  };
  W.sim().spawn(Proc::run(W, Total));
  W.sim().run();
  ASSERT_TRUE(Total.hasValue());
  EXPECT_EQ(*Total, 28);
}

TEST(ScooppAggregationTest, AggregationReducesMessages) {
  auto MessagesFor = [](int Factor) {
    ScooppConfig Config;
    Config.Grain.MaxCallsPerMessage = Factor;
    ScooppWorld W(Config);
    struct Proc {
      static Task<void> run(ScooppWorld &W) {
        CounterProxy P(W.Runtime, 0);
        (void)co_await P.create();
        for (int32_t I = 0; I < 64; ++I)
          co_await P.add(I);
        co_await P.flush();
        (void)co_await P.total();
      }
    };
    W.sim().spawn(Proc::run(W));
    W.sim().run();
    return W.Net.messagesDelivered();
  };
  uint64_t NoAgg = MessagesFor(1);
  uint64_t Agg8 = MessagesFor(8);
  uint64_t Agg64 = MessagesFor(64);
  EXPECT_GT(NoAgg, Agg8);
  EXPECT_GT(Agg8, Agg64);
}

TEST(ScooppAggregationTest, ExplicitFlushShipsRemainder) {
  ScooppConfig Config;
  Config.Grain.MaxCallsPerMessage = 10;
  ScooppWorld W(Config);
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      co_await P.add(5);
      co_await P.add(6);
      EXPECT_EQ(P.pendingCalls(), 2u);
      co_await P.flush();
      EXPECT_EQ(P.pendingCalls(), 0u);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_EQ(W.Runtime.stats().PackedMessages, 1u);
  EXPECT_EQ(W.Runtime.stats().PackedCalls, 2u);
}

//===----------------------------------------------------------------------===//
// Packed-call codec
//===----------------------------------------------------------------------===//

TEST(PackedCallsTest, RoundTrip) {
  std::vector<BufferedCall> Calls = {{Bytes{1, 2, 3}, 0},
                                     {Bytes{}, 0},
                                     {Bytes{9}, 0}};
  auto Back = decodePackedCalls(encodePackedCalls(Calls));
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(*Back, Calls);
}

TEST(PackedCallsTest, RoundTripWithContexts) {
  // Mixed: some calls carry a causal id, some don't.
  std::vector<BufferedCall> Calls = {{Bytes{1, 2, 3}, 41},
                                     {Bytes{}, 0},
                                     {Bytes{9}, 1'000'000'007}};
  Bytes Encoded = encodePackedCalls(Calls);
  auto Back = decodePackedCalls(Encoded);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(*Back, Calls);
  // The ctx-free encoding of the same arguments is strictly smaller --
  // untraced runs keep the legacy byte format.
  std::vector<BufferedCall> NoCtx = Calls;
  for (BufferedCall &Call : NoCtx)
    Call.Ctx = 0;
  EXPECT_LT(encodePackedCalls(NoCtx).size(), Encoded.size());
}

TEST(PackedCallsTest, RejectsTruncated) {
  std::vector<BufferedCall> Calls = {{Bytes{1, 2, 3, 4, 5}, 0}};
  Bytes Encoded = encodePackedCalls(Calls);
  Encoded.pop_back();
  EXPECT_FALSE(decodePackedCalls(Encoded).hasValue());
}

TEST(PackedCallsTest, RejectsTruncatedContext) {
  std::vector<BufferedCall> Calls = {{Bytes{1}, 7}};
  Bytes Encoded = encodePackedCalls(Calls);
  Encoded.pop_back();
  EXPECT_FALSE(decodePackedCalls(Encoded).hasValue());
}

TEST(PackedCallsTest, RejectsTrailingGarbage) {
  Bytes Encoded = encodePackedCalls({{Bytes{1}, 0}});
  Encoded.push_back(0xff);
  EXPECT_FALSE(decodePackedCalls(Encoded).hasValue());
}

//===----------------------------------------------------------------------===//
// Adaptive grain-size control
//===----------------------------------------------------------------------===//

TEST(ScooppAdaptiveTest, FineGrainClassGetsAggregated) {
  ScooppConfig Config;
  Config.Grain.Adaptive = true;
  Config.Grain.MaxCallsPerMessage = 32;
  Config.Grain.SmallGrainThreshold = us(500);
  ScooppWorld W(Config);
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      // Before any feedback, no aggregation.
      EXPECT_EQ(W.Runtime.om(P.ref().Node).aggregationFactor("Counter"), 1);
      // Execute a few tiny (2 us) methods to teach the remote OM.
      for (int32_t I = 0; I < 5; ++I)
        co_await P.add(I);
      (void)co_await P.total();
      // The hosting node's OM now knows the grain is tiny.
      EXPECT_GT(W.Runtime.om(P.ref().Node).aggregationFactor("Counter"), 1);
      EXPECT_TRUE(
          W.Runtime.om(P.ref().Node).shouldAgglomerate("Counter"));
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(ScooppAdaptiveTest, CoarseGrainClassStaysUnaggregated) {
  ScooppConfig Config;
  Config.Grain.Adaptive = true;
  Config.Grain.MaxCallsPerMessage = 32;
  Config.Grain.SmallGrainThreshold = us(500);
  ScooppWorld W(Config);
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      for (int I = 0; I < 5; ++I)
        (void)co_await P.work(5000); // 5 ms >> threshold.
      EXPECT_EQ(W.Runtime.om(P.ref().Node).aggregationFactor("Counter"), 1);
      EXPECT_FALSE(
          W.Runtime.om(P.ref().Node).shouldAgglomerate("Counter"));
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

//===----------------------------------------------------------------------===//
// Parallel-object references as arguments
//===----------------------------------------------------------------------===//

TEST(ParallelRefTest, EncodesAndDecodes) {
  ParallelRef Ref{3, "io:Counter:7"};
  ParallelRef Back;
  ASSERT_TRUE(ParallelRef::fromBytes(Ref.toBytes(), Back));
  EXPECT_EQ(Back, Ref);
  Bytes Junk = {1, 2};
  EXPECT_FALSE(ParallelRef::fromBytes(Junk, Back));
}

TEST(ParallelRefTest, SecondProxySharesState) {
  ScooppWorld W;
  ErrorOr<int32_t> Total(0);
  struct Proc {
    static Task<void> run(ScooppWorld &W, ErrorOr<int32_t> &Total) {
      CounterProxy A(W.Runtime, 0);
      (void)co_await A.create();
      co_await A.add(40);
      co_await A.flush();
      // Ship the reference (as bytes) to another proxy, possibly on a
      // different home node -- "references to parallel objects may be
      // copied or sent as a method argument".
      Bytes Wire = A.ref().toBytes();
      ParallelRef Ref;
      EXPECT_TRUE(ParallelRef::fromBytes(Wire, Ref));
      CounterProxy B(W.Runtime, 2);
      B.bind(CounterProxy::ClassName, Ref);
      co_await B.add(2);
      Total = co_await B.total();
    }
  };
  W.sim().spawn(Proc::run(W, Total));
  W.sim().run();
  ASSERT_TRUE(Total.hasValue());
  EXPECT_EQ(*Total, 42);
}

TEST(ParallelRefTest, BindKeepsAsyncDispatchEvenOnHostingNode) {
  // A received reference addresses a foreign grain: calls stay
  // asynchronous (loopback remoting) even on the hosting node, so
  // co-located parallel objects can use both CPUs.
  ScooppWorld W;
  ErrorOr<int32_t> Total(0);
  struct Proc {
    static Task<void> run(ScooppWorld &W, ErrorOr<int32_t> &Total) {
      CounterProxy A(W.Runtime, 0);
      (void)co_await A.create(); // Round robin from node 0 -> node 1.
      EXPECT_EQ(A.ref().Node, 1);
      CounterProxy B(W.Runtime, 1); // Home == hosting node.
      B.bind(CounterProxy::ClassName, A.ref());
      EXPECT_FALSE(B.isLocal());
      co_await B.add(4);
      Total = co_await B.total(); // Dispatches through loopback.
    }
  };
  W.sim().spawn(Proc::run(W, Total));
  W.sim().run();
  ASSERT_TRUE(Total.hasValue());
  EXPECT_EQ(*Total, 4);
}




//===----------------------------------------------------------------------===//
// Passive objects (copies move between parallel objects)
//===----------------------------------------------------------------------===//

/// A passive linked node (reusable sequential code, per Section 3.1).
class PassiveNode : public serial::SerializableObject {
public:
  static constexpr const char *TypeNameStr = "scoopp.PassiveNode";
  int32_t Value = 0;
  PassiveNode *Next = nullptr;

  std::string_view typeName() const override { return TypeNameStr; }
  void writeFields(serial::ObjectWriter &Writer) const override {
    Writer.write(Value);
    Writer.writeRef(Next);
  }
  bool readFields(serial::ObjectReader &Reader) override {
    return Reader.read(Value) && Reader.readRefAs(Next);
  }
};

/// A parallel class consuming passive graphs: sums the list it receives.
class GraphSumImpl : public CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method != "consume")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    serial::ObjectPool Pool;
    auto Root = decodePassiveGraph(Args, Pool);
    if (!Root)
      co_return Root.error();
    int32_t Sum = 0;
    int Guard = 0;
    for (serial::SerializableObject *Cursor = *Root; Cursor && Guard < 100;
         ++Guard) {
      auto *Node = serial::objectCast<PassiveNode>(Cursor);
      if (!Node)
        co_return Error(ErrorCode::MalformedMessage, "not a PassiveNode");
      Sum += Node->Value;
      // Mutating the received copy must never reach the sender.
      Node->Value = -1;
      Cursor = Node->Next;
    }
    Total += Sum;
    co_return serial::encodeValues(Total);
  }

private:
  int32_t Total = 0;
};

TEST(ScooppPassiveTest, GraphCopiesMoveBetweenParallelObjects) {
  serial::TypeRegistry::global().registerType<PassiveNode>();
  ScooppConfig Config;
  ScooppWorld W(Config);
  W.Runtime.cluster(); // Touch to silence unused warnings if any.
  // Register the consumer class in a fresh registry-backed world is not
  // possible post-construction, so publish it directly.
  auto Made = std::make_shared<GraphSumImpl>();
  W.Runtime.endpoint(1).publish("graphsum", Made);

  bool Done = false;
  struct Proc {
    static Task<void> run(ScooppWorld &W, bool &Done) {
      // Build a passive list 1 -> 2 -> 3 in the caller's context.
      serial::ObjectPool Mine;
      PassiveNode *A = Mine.create<PassiveNode>();
      PassiveNode *B = Mine.create<PassiveNode>();
      PassiveNode *C = Mine.create<PassiveNode>();
      A->Value = 1;
      B->Value = 2;
      C->Value = 3;
      A->Next = B;
      B->Next = C;

      remoting::RemoteHandle Handle(W.Runtime.endpoint(0), 1,
                                    W.Runtime.config().Port, "graphsum");
      ErrorOr<Bytes> First =
          co_await Handle.invoke("consume", encodePassiveGraph(A));
      EXPECT_TRUE(First.hasValue());
      int32_t Total = 0;
      if (First) {
        EXPECT_TRUE(serial::decodeValues(*First, Total));
        EXPECT_EQ(Total, 6);
      }
      // The remote mutated its *copy*; the original is untouched, so a
      // second transfer sums the same values again.
      EXPECT_EQ(A->Value, 1);
      ErrorOr<Bytes> Second =
          co_await Handle.invoke("consume", encodePassiveGraph(A));
      EXPECT_TRUE(Second.hasValue());
      if (Second) {
        EXPECT_TRUE(serial::decodeValues(*Second, Total));
        EXPECT_EQ(Total, 12);
      }
      Done = true;
    }
  };
  W.sim().spawn(Proc::run(W, Done));
  W.sim().run();
  EXPECT_TRUE(Done);
}

TEST(ScooppPassiveTest, CloneIsolatesCoLocatedObjects) {
  serial::TypeRegistry::global().registerType<PassiveNode>();
  serial::ObjectPool Mine;
  PassiveNode *A = Mine.create<PassiveNode>();
  PassiveNode *B = Mine.create<PassiveNode>();
  A->Value = 10;
  B->Value = 20;
  A->Next = B;
  B->Next = A; // Cycle survives the copy.

  serial::ObjectPool Theirs;
  auto Copy = clonePassiveGraph(A, Theirs);
  ASSERT_TRUE(Copy.hasValue());
  auto *A2 = serial::objectCast<PassiveNode>(*Copy);
  ASSERT_NE(A2, nullptr);
  EXPECT_NE(A2, A);
  EXPECT_EQ(A2->Next->Next, A2);
  A2->Value = 999;
  EXPECT_EQ(A->Value, 10);
}

//===----------------------------------------------------------------------===//
// Concurrent access from multiple home nodes (active-object integrity)
//===----------------------------------------------------------------------===//

TEST(ScooppConcurrencyTest, ManyNodesHammerOneObjectWithoutLostUpdates) {
  // Drivers on every node add into the same parallel object through
  // their own proxies.  Parallel objects execute one method at a time,
  // so no update may be lost even though calls interleave arbitrarily.
  ScooppWorld W;
  const int32_t PerDriver = 25;
  struct Owner {
    static Task<void> run(ScooppWorld &W, ParallelRef &Ref,
                          sim::WaitGroup &Ready) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      Ref = P.ref();
      Ready.done();
    }
  };
  struct Driver {
    static Task<void> run(ScooppWorld &W, int Home, ParallelRef &Ref,
                          sim::WaitGroup &Ready, sim::WaitGroup &Done,
                          int32_t PerDriver) {
      co_await Ready.wait();
      CounterProxy P(W.Runtime, Home);
      P.bind(CounterProxy::ClassName, Ref);
      for (int32_t I = 1; I <= PerDriver; ++I)
        co_await P.add(I);
      co_await P.flush();
      Done.done();
    }
  };
  ParallelRef Ref;
  sim::WaitGroup Ready(W.sim()), Done(W.sim());
  Ready.add(1);
  Done.add(4);
  W.sim().spawn(Owner::run(W, Ref, Ready));
  for (int Home = 0; Home < 4; ++Home)
    W.sim().spawn(Driver::run(W, Home, Ref, Ready, Done, PerDriver));

  ErrorOr<int32_t> Total(0);
  struct Check {
    static Task<void> run(ScooppWorld &W, ParallelRef &Ref,
                          sim::WaitGroup &Done, ErrorOr<int32_t> &Total) {
      co_await Done.wait();
      CounterProxy P(W.Runtime, 0);
      P.bind(CounterProxy::ClassName, Ref);
      Total = co_await P.total();
    }
  };
  W.sim().spawn(Check::run(W, Ref, Done, Total));
  W.sim().run();
  ASSERT_TRUE(Total.hasValue());
  EXPECT_EQ(*Total, 4 * PerDriver * (PerDriver + 1) / 2);
}

//===----------------------------------------------------------------------===//
// Object destruction (ParC++ lifetime semantics)
//===----------------------------------------------------------------------===//

TEST(ScooppDestroyTest, RemoteObjectIsDestroyed) {
  ScooppWorld W;
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      int HostNode = P.ref().Node;
      ParallelRef Victim = P.ref();
      EXPECT_EQ(W.Runtime.om(HostNode).hostedObjects(), 1);
      Error E = co_await P.destroy();
      EXPECT_FALSE(E) << E.str();
      EXPECT_FALSE(P.created());
      EXPECT_EQ(W.Runtime.om(HostNode).hostedObjects(), 0);
      // Stale references now fault.
      CounterProxy Stale(W.Runtime, 0);
      Stale.bind(CounterProxy::ClassName, Victim);
      auto Out = co_await Stale.total();
      EXPECT_FALSE(Out.hasValue());
      if (!Out) {
        EXPECT_EQ(Out.error().code(), ErrorCode::UnknownObject);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(ScooppDestroyTest, LocalAgglomeratedObjectIsDestroyed) {
  ScooppConfig Config;
  Config.Grain.AgglomerateObjects = true;
  ScooppWorld W(Config);
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy P(W.Runtime, 1);
      (void)co_await P.create();
      EXPECT_TRUE(P.isLocal());
      EXPECT_EQ(W.Runtime.om(1).hostedObjects(), 1);
      Error E = co_await P.destroy();
      EXPECT_FALSE(E) << E.str();
      EXPECT_EQ(W.Runtime.om(1).hostedObjects(), 0);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(ScooppDestroyTest, DoubleDestroyFaults) {
  ScooppWorld W;
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy A(W.Runtime, 0);
      (void)co_await A.create();
      ParallelRef Victim = A.ref();
      EXPECT_FALSE(co_await A.destroy());
      CounterProxy B(W.Runtime, 0);
      B.bind(CounterProxy::ClassName, Victim);
      Error Second = co_await B.destroy();
      EXPECT_TRUE(Second);
      EXPECT_EQ(Second.code(), ErrorCode::UnknownObject);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(ScooppDestroyTest, PendingAggregatesFlushBeforeDestroy) {
  ScooppConfig Config;
  Config.Grain.MaxCallsPerMessage = 100;
  ScooppWorld W(Config);
  struct Proc {
    static Task<void> run(ScooppWorld &W) {
      CounterProxy P(W.Runtime, 0);
      (void)co_await P.create();
      co_await P.add(1);
      co_await P.add(2);
      EXPECT_EQ(P.pendingCalls(), 2u);
      EXPECT_FALSE(co_await P.destroy());
      EXPECT_EQ(P.pendingCalls(), 0u);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  // The flushed adds really executed before destruction (one packed
  // message).
  EXPECT_EQ(W.Runtime.stats().PackedMessages, 1u);
}

//===----------------------------------------------------------------------===//
// E4: proxy overhead over raw remoting is "not noticeable"
//===----------------------------------------------------------------------===//

TEST(ScooppOverheadTest, ProxyPenaltyUnderFivePercent) {
  // Raw remoting round trips.
  double RawUs = 0, ProxyUs = 0;
  int Rounds = 40;
  {
    ScooppWorld W;
    struct Proc {
      static Task<void> run(ScooppWorld &W, int Rounds, double &OutUs) {
        auto Made = W.Runtime.instantiateImpl(1, "Counter");
        EXPECT_TRUE(Made.hasValue());
        remoting::RemoteHandle Handle(W.Runtime.endpoint(0), 1,
                                      W.Runtime.config().Port, Made->first);
        (void)co_await Handle.invokeTyped<int32_t>("total");
        SimTime Start = W.sim().now();
        for (int I = 0; I < Rounds; ++I)
          (void)co_await Handle.invokeTyped<int32_t>("total");
        OutUs = (W.sim().now() - Start).toMicrosF() / Rounds;
      }
    };
    W.sim().spawn(Proc::run(W, Rounds, RawUs));
    W.sim().run();
  }
  {
    ScooppWorld W;
    struct Proc {
      static Task<void> run(ScooppWorld &W, int Rounds, double &OutUs) {
        CounterProxy P(W.Runtime, 0);
        (void)co_await P.create();
        (void)co_await P.total();
        SimTime Start = W.sim().now();
        for (int I = 0; I < Rounds; ++I)
          (void)co_await P.total();
        OutUs = (W.sim().now() - Start).toMicrosF() / Rounds;
      }
    };
    W.sim().spawn(Proc::run(W, Rounds, ProxyUs));
    W.sim().run();
  }
  EXPECT_GT(ProxyUs, RawUs) << "the proxy is not free";
  EXPECT_LT(ProxyUs, RawUs * 1.05) << "but its penalty is not noticeable";
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(ScooppTest, DeterministicAcrossRuns) {
  auto RunOnce = [] {
    ScooppConfig Config;
    Config.Grain.MaxCallsPerMessage = 4;
    ScooppWorld W(Config);
    struct Proc {
      static Task<void> run(ScooppWorld &W) {
        CounterProxy P(W.Runtime, 0);
        (void)co_await P.create();
        for (int32_t I = 0; I < 20; ++I)
          co_await P.add(I);
        (void)co_await P.total();
      }
    };
    W.sim().spawn(Proc::run(W));
    W.sim().run();
    return W.sim().now();
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

} // namespace
