//===- tests/ModelTest.cpp - Performance-model layer tests ----------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modeling layer end to end: PMNF golden fits on synthetic series
/// (the cross-validation must recover the generating law), byte-stable
/// reports, sweep/telemetry ingestion round-trips, extrapolation inside
/// the confidence band, the regression gate passing a faithful rerun and
/// failing a degraded one, per-leg composition, and the PARCS_MODEL spec
/// grammar.  Everything here is synthetic or simulated-time data, so the
/// suite is deterministic.
///
//===----------------------------------------------------------------------===//

#include "model/Check.h"
#include "model/Compose.h"
#include "model/Ingest.h"
#include "model/Legs.h"

#include "net/Network.h"
#include "telemetry/Telemetry.h"
#include "telemetry/TopReport.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace parcs;
using namespace parcs::model;

namespace {

/// Samples y = Gen(x) at the given xs, \p Repeats times each.
std::vector<Sample> sampled(const std::vector<double> &Xs, int Repeats,
                            double (*Gen)(double)) {
  std::vector<Sample> Out;
  for (double X : Xs)
    for (int R = 0; R < Repeats; ++R)
      Out.push_back({X, Gen(X)});
  return Out;
}

const std::vector<double> StdXs = {2, 4, 8, 16, 32};

/// Deterministic LCG in [-1, 1] for noise (no std::random: the noise must
/// be identical on every platform and run).
struct Lcg {
  uint64_t State = 0x243f6a8885a308d3ull;
  double next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return double(int64_t(State >> 11)) / double(int64_t(1ull << 52)) - 1.0;
  }
};

//===----------------------------------------------------------------------===//
// PMNF fitting
//===----------------------------------------------------------------------===//

TEST(PmnfTest, FitsLinearExactly) {
  auto Fit = fitPmnf(sampled(StdXs, 3, [](double X) { return 5 + 3 * X; }),
                     "n", "lat");
  ASSERT_TRUE(bool(Fit)) << Fit.error().str();
  EXPECT_DOUBLE_EQ(Fit->Exp, 1);
  EXPECT_EQ(Fit->Log, 0);
  EXPECT_NEAR(Fit->C0, 5, 1e-6);
  EXPECT_NEAR(Fit->C1, 3, 1e-6);
  EXPECT_EQ(Fit->functionStr(), "5 + 3 * n");
  EXPECT_NEAR(Fit->R2, 1, 1e-9);
}

TEST(PmnfTest, FitsNLogN) {
  auto Fit = fitPmnf(
      sampled(StdXs, 3,
              [](double X) { return 10 + 2 * X * std::log2(X); }),
      "n", "cost");
  ASSERT_TRUE(bool(Fit)) << Fit.error().str();
  EXPECT_DOUBLE_EQ(Fit->Exp, 1);
  EXPECT_EQ(Fit->Log, 1);
  EXPECT_NEAR(Fit->C0, 10, 1e-6);
  EXPECT_NEAR(Fit->C1, 2, 1e-6);
}

TEST(PmnfTest, FitsQuadraticNotQuadraticLog) {
  // Exact n^2 data also fits n^2*log2(n) to numerical dust; the score
  // floor must hand the tie to the simpler hypothesis.
  auto Fit = fitPmnf(
      sampled(StdXs, 3, [](double X) { return 2 * X * X + 7; }), "n", "work");
  ASSERT_TRUE(bool(Fit)) << Fit.error().str();
  EXPECT_DOUBLE_EQ(Fit->Exp, 2);
  EXPECT_EQ(Fit->Log, 0);
  EXPECT_NEAR(Fit->C1, 2, 1e-6);
}

TEST(PmnfTest, FitsConstant) {
  auto Fit =
      fitPmnf(sampled(StdXs, 2, [](double) { return 42.0; }), "n", "flat");
  ASSERT_TRUE(bool(Fit)) << Fit.error().str();
  EXPECT_DOUBLE_EQ(Fit->C1, 0);
  EXPECT_NEAR(Fit->C0, 42, 1e-9);
  EXPECT_EQ(Fit->functionStr(), "42");
}

TEST(PmnfTest, CrossValidationSurvivesNoise) {
  // +/-2% multiplicative noise must not change the chosen hypothesis,
  // and the LOO residuals must widen the band enough to cover every
  // observation.
  Lcg Noise;
  std::vector<Sample> Samples;
  for (double X : StdXs)
    for (int R = 0; R < 4; ++R) {
      double Y = (5 + 3 * X) * (1 + 0.02 * Noise.next());
      Samples.push_back({X, Y});
    }
  auto Fit = fitPmnf(Samples, "n", "lat");
  ASSERT_TRUE(bool(Fit)) << Fit.error().str();
  EXPECT_DOUBLE_EQ(Fit->Exp, 1);
  EXPECT_EQ(Fit->Log, 0);
  EXPECT_GT(Fit->CvRmse, 0);
  EXPECT_GT(Fit->MaxRelErr, 0);
  for (const Sample &S : Samples)
    EXPECT_LE(std::abs(S.Y - Fit->predict(S.X)), Fit->bandHalfWidth(S.X))
        << "observation at x=" << S.X << " outside the confidence band";
}

TEST(PmnfTest, PredictsHeldOutConfigurationWithinBand) {
  // Fit on 2..16, extrapolate to the held-out 32: the acceptance
  // criterion of the modeling layer.
  Lcg Noise;
  std::vector<Sample> Train;
  for (double X : {2.0, 4.0, 8.0, 16.0})
    for (int R = 0; R < 4; ++R)
      Train.push_back({X, (40 + 7 * X) * (1 + 0.01 * Noise.next())});
  auto Fit = fitPmnf(Train, "nodes", "lat");
  ASSERT_TRUE(bool(Fit)) << Fit.error().str();
  double HeldOut = 40 + 7 * 32;
  EXPECT_LE(std::abs(HeldOut - Fit->predict(32)), Fit->bandHalfWidth(32))
      << "predicted " << Fit->predict(32) << " +/- " << Fit->bandHalfWidth(32)
      << " vs actual " << HeldOut;
}

TEST(PmnfTest, RejectsDegenerateSeries) {
  EXPECT_FALSE(bool(fitPmnf({{1, 1}, {2, 2}, {3, 3}}, "n", "m")))
      << "three samples must not be fittable";
  EXPECT_FALSE(bool(
      fitPmnf({{1, 1}, {1, 2}, {2, 2}, {2, 3}}, "n", "m")))
      << "two distinct xs must not be fittable";
  EXPECT_FALSE(bool(
      fitPmnf({{0, 1}, {1, 2}, {2, 2}, {3, 3}}, "n", "m")))
      << "x = 0 must be rejected (log2 undefined)";
}

TEST(PmnfTest, RepeatedFitsAreByteIdentical) {
  Lcg Noise;
  std::vector<Sample> Samples;
  for (double X : StdXs)
    for (int R = 0; R < 3; ++R)
      Samples.push_back({X, 3 * X * X + 100 * Noise.next()});
  auto A = fitPmnf(Samples, "n", "m");
  auto B = fitPmnf(Samples, "n", "m");
  ASSERT_TRUE(bool(A) && bool(B));
  EXPECT_EQ(A->functionStr(), B->functionStr());
  ModelSet SetA, SetB;
  SetA.Param = SetB.Param = "n";
  SetA.Models.emplace("m", *A);
  SetB.Models.emplace("m", *B);
  EXPECT_EQ(textReport(SetA), textReport(SetB));
  EXPECT_EQ(modelJson(SetA), modelJson(SetB));
}

//===----------------------------------------------------------------------===//
// DataSet + ingestion
//===----------------------------------------------------------------------===//

DataSet syntheticSweep(double Factor = 1.0) {
  DataSet Data;
  Data.Bench = "synthetic";
  Data.Machine = "test";
  for (double N : StdXs)
    for (int R = 0; R < 3; ++R) {
      DataPoint P;
      P.Params["nodes"] = N;
      P.Metrics["lat"] = Factor * (5 + 3 * N);
      P.Metrics["thr"] = Factor * 100 * N;
      Data.Points.push_back(std::move(P));
    }
  return Data;
}

TEST(DataSetTest, SeriesIsSortedAndSkipsIncompletePoints) {
  DataSet Data;
  for (double N : {8.0, 2.0, 4.0}) {
    DataPoint P;
    P.Params["n"] = N;
    P.Metrics["m"] = N * 10;
    Data.Points.push_back(std::move(P));
  }
  Data.Points.push_back({}); // no params, no metrics: skipped
  std::vector<Sample> S = series(Data, "n", "m");
  ASSERT_EQ(S.size(), 3u);
  EXPECT_DOUBLE_EQ(S[0].X, 2);
  EXPECT_DOUBLE_EQ(S[1].X, 4);
  EXPECT_DOUBLE_EQ(S[2].X, 8);
  EXPECT_EQ(varyingParams(Data), std::vector<std::string>{"n"});
  EXPECT_EQ(metricNames(Data), std::vector<std::string>{"m"});
}

TEST(IngestTest, SweepJsonRoundTripsByteIdentically) {
  DataSet Data = syntheticSweep();
  std::string Json = writeSweepJson(Data);
  auto Parsed = parseSweepJson(Json);
  ASSERT_TRUE(bool(Parsed)) << Parsed.error().str();
  EXPECT_EQ(Parsed->Bench, "synthetic");
  EXPECT_EQ(Parsed->Machine, "test");
  ASSERT_EQ(Parsed->Points.size(), Data.Points.size());
  EXPECT_EQ(writeSweepJson(*Parsed), Json);
}

TEST(IngestTest, RejectsMalformedSweeps) {
  EXPECT_FALSE(bool(parseSweepJson("not json at all")));
  EXPECT_FALSE(bool(parseSweepJson("{\"bench\": \"x\"}")))
      << "no points array";
  EXPECT_FALSE(bool(parseSweepJson(
      "{\"points\": [{\"params\": {\"n\": \"four\"}, \"metrics\": {}}]}")))
      << "non-numeric param";
  EXPECT_FALSE(bool(parseSweepJson("{\"points\": [{\"params\": {}}]}")))
      << "point without metrics";
}

TEST(IngestTest, TelemetryExportBecomesOneDataPoint) {
  vm::Cluster Machines(4, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 4);
  telemetry::TelemetrySpec Spec;
  Spec.WindowNs = 4000;
  telemetry::Plane Plane(Net, Spec);
  struct Driver {
    static sim::Task<void> ticks(net::Network &Net, int Node) {
      for (int T = 0; T < 8; ++T) {
        co_await Net.sim().delay(sim::SimTime::microseconds(1));
        int64_t Now = Net.sim().now().nanosecondsCount();
        telemetry::count(Node, "tick.count", Now);
        telemetry::record(Node, "tick.latency", Now, 1000 + T * 10);
      }
    }
  };
  for (int N = 0; N < 4; ++N)
    Net.sim().spawn(Driver::ticks(Net, N));
  Net.sim().run();

  auto Data = pointsFromTelemetryExport(Plane.exportJson());
  ASSERT_TRUE(bool(Data)) << Data.error().str();
  ASSERT_EQ(Data->Points.size(), 1u);
  const DataPoint &P = Data->Points[0];
  EXPECT_DOUBLE_EQ(P.Params.at("nodes"), 4);
  EXPECT_DOUBLE_EQ(P.Metrics.at("tick.count.n"), 32);
  EXPECT_DOUBLE_EQ(P.Metrics.at("tick.latency.n"), 32);
  EXPECT_GT(P.Metrics.at("tick.latency.p50"), 0);
  EXPECT_GT(P.Metrics.at("tick.count.rate_per_s"), 0);
}

//===----------------------------------------------------------------------===//
// Telemetry model= hook
//===----------------------------------------------------------------------===//

TEST(TelemetryModelHookTest, SpecParsesModelOption) {
  telemetry::TelemetrySpec S;
  ASSERT_TRUE(
      telemetry::parseTelemetrySpec("tele.json,model=sweep.json", S));
  EXPECT_EQ(S.ModelPath, "sweep.json");
  std::string Bad;
  EXPECT_FALSE(telemetry::parseTelemetrySpec("tele.json,model=", S, &Bad));
  EXPECT_EQ(Bad, "model=");
}

TEST(TelemetryModelHookTest, ModelPointsAreExactAndByteStable) {
  auto Run = [] {
    vm::Cluster Machines(2, vm::VmKind::MonoVm117);
    net::Network Net(Machines.sim(), 2);
    telemetry::TelemetrySpec Spec;
    Spec.WindowNs = 2000;
    telemetry::Plane Plane(Net, Spec);
    struct Driver {
      static sim::Task<void> ticks(net::Network &Net, int Node) {
        for (int T = 0; T < 10; ++T) {
          co_await Net.sim().delay(sim::SimTime::microseconds(1));
          telemetry::record(Node, "lat", Net.sim().now().nanosecondsCount(),
                            100 * (T + 1));
        }
      }
    };
    for (int N = 0; N < 2; ++N)
      Net.sim().spawn(Driver::ticks(Net, N));
    Net.sim().run();
    return Plane.modelPointsJson();
  };
  std::string A = Run();
  EXPECT_EQ(A, Run()) << "model hook output must be byte-stable";

  auto Data = parseSweepJson(A);
  ASSERT_TRUE(bool(Data)) << Data.error().str();
  ASSERT_EQ(Data->Points.size(), 1u);
  const DataPoint &P = Data->Points[0];
  EXPECT_DOUBLE_EQ(P.Params.at("nodes"), 2);
  EXPECT_DOUBLE_EQ(P.Metrics.at("lat.n"), 20);
  // Whole-run exact percentiles from the merged buckets -- the samples are
  // 100..1000 (x2 nodes), so the p50 sits near 500ns and the mean is
  // exactly 550ns.
  EXPECT_DOUBLE_EQ(P.Metrics.at("lat.mean"), 550);
  EXPECT_GT(P.Metrics.at("lat.p50"), 0);
  EXPECT_GE(P.Metrics.at("lat.p99"), P.Metrics.at("lat.p50"));
}

//===----------------------------------------------------------------------===//
// Reports + model JSON
//===----------------------------------------------------------------------===//

TEST(ReportTest, FitAllInfersTheSingleVaryingParam) {
  auto Set = fitAll(syntheticSweep(), "");
  ASSERT_TRUE(bool(Set)) << Set.error().str();
  EXPECT_EQ(Set->Param, "nodes");
  ASSERT_EQ(Set->Models.size(), 2u);
  EXPECT_EQ(Set->Models.at("lat").functionStr(), "5 + 3 * nodes");
}

TEST(ReportTest, ModelJsonRoundTrips) {
  auto Set = fitAll(syntheticSweep(), "nodes");
  ASSERT_TRUE(bool(Set));
  std::string Json = modelJson(*Set);
  auto Back = parseModelJson(Json);
  ASSERT_TRUE(bool(Back)) << Back.error().str();
  EXPECT_EQ(Back->Param, "nodes");
  EXPECT_EQ(modelJson(*Back), Json) << "parse/render must round-trip";
  // The BENCH wrapper shape: any object with a "model" member.
  auto Wrapped = parseModelJson("{\"note\": \"bench\", \"model\": " + Json +
                                "}");
  ASSERT_TRUE(bool(Wrapped)) << Wrapped.error().str();
  EXPECT_EQ(modelJson(*Wrapped), Json);
}

//===----------------------------------------------------------------------===//
// The regression gate
//===----------------------------------------------------------------------===//

TEST(CheckTest, PassesAFaithfulRerun) {
  auto Envelope = fitAll(syntheticSweep(), "nodes");
  ASSERT_TRUE(bool(Envelope));
  CheckResult R = check(*Envelope, syntheticSweep(), 20);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Breaches, 0u);
  EXPECT_LT(R.MaxDeviationPct, 1e-6);
  EXPECT_EQ(checkReport(R, 20), checkReport(R, 20));
}

TEST(CheckTest, FailsADegradedRun) {
  auto Envelope = fitAll(syntheticSweep(), "nodes");
  ASSERT_TRUE(bool(Envelope));
  CheckResult R = check(*Envelope, syntheticSweep(1.5), 20);
  EXPECT_FALSE(R.Ok);
  EXPECT_GT(R.Breaches, 0u);
  EXPECT_NEAR(R.MaxDeviationPct, 50, 1);
  EXPECT_NE(checkReport(R, 20).find("BREACH"), std::string::npos);
  EXPECT_NE(checkReport(R, 20).find("FAIL"), std::string::npos);
}

TEST(CheckTest, NoSharedMetricsIsNotOk) {
  auto Envelope = fitAll(syntheticSweep(), "nodes");
  ASSERT_TRUE(bool(Envelope));
  DataSet Unrelated;
  DataPoint P;
  P.Params["nodes"] = 4;
  P.Metrics["something_else"] = 1;
  Unrelated.Points.push_back(std::move(P));
  CheckResult R = check(*Envelope, Unrelated, 20);
  EXPECT_FALSE(R.Ok) << "a gate with nothing to compare must not pass";
}

TEST(CheckSpecTest, ParsesPathAndDeviation) {
  CheckSpec S;
  ASSERT_TRUE(parseCheckSpec("model.json", S));
  EXPECT_EQ(S.ModelPath, "model.json");
  EXPECT_DOUBLE_EQ(S.DeviationPct, 20);
  ASSERT_TRUE(parseCheckSpec("m.json,deviation=35%", S));
  EXPECT_DOUBLE_EQ(S.DeviationPct, 35);
  ASSERT_TRUE(parseCheckSpec("m.json,deviation=12.5", S));
  EXPECT_DOUBLE_EQ(S.DeviationPct, 12.5);
}

TEST(CheckSpecTest, NamesTheBadToken) {
  CheckSpec S;
  std::string Bad;
  EXPECT_FALSE(parseCheckSpec("", S, &Bad));
  EXPECT_FALSE(parseCheckSpec("m.json,deviation=lots", S, &Bad));
  EXPECT_EQ(Bad, "deviation=lots");
  EXPECT_FALSE(parseCheckSpec("m.json,bogus=1", S, &Bad));
  EXPECT_EQ(Bad, "bogus=1");
}

//===----------------------------------------------------------------------===//
// Composition along profiler legs
//===----------------------------------------------------------------------===//

TEST(ComposeTest, LegsSumToTheDirectFit) {
  DataSet Data;
  for (double N : StdXs)
    for (int R = 0; R < 2; ++R) {
      DataPoint P;
      P.Params["nodes"] = N;
      P.Metrics["leg.compute"] = 200 * N;
      P.Metrics["leg.wire"] = 300 * N;
      P.Metrics["leg.total"] = 500 * N;
      Data.Points.push_back(std::move(P));
    }
  auto C = compose(Data, "nodes", "");
  ASSERT_TRUE(bool(C)) << C.error().str();
  EXPECT_EQ(C->EndMetric, "leg.total");
  ASSERT_EQ(C->Legs.size(), 2u);
  EXPECT_LT(C->CompositionErr, 1e-6);
  EXPECT_NEAR(C->predict(64), C->Direct.predict(64), 1e-3);
  std::string Report = compositionReport(*C, Data);
  EXPECT_NE(Report.find("leg.compute"), std::string::npos);
  EXPECT_NE(Report.find("composition error"), std::string::npos);
  EXPECT_EQ(Report, compositionReport(*C, Data));
}

TEST(ComposeTest, NoLegsIsAnError) {
  EXPECT_FALSE(bool(compose(syntheticSweep(), "nodes", "lat")));
}

TEST(LegsTest, AnalysisBecomesLegMetrics) {
  prof::Analysis A;
  A.CriticalNs = 1000;
  A.ByClass = {{prof::SegClass::Compute, 600},
               {prof::SegClass::Serialize, 0},
               {prof::SegClass::Wire, 400}};
  NumberMap Params;
  Params["nodes"] = 8;
  DataPoint P = pointFromProfAnalysis(A, Params);
  EXPECT_DOUBLE_EQ(P.Params.at("nodes"), 8);
  EXPECT_DOUBLE_EQ(P.Metrics.at("leg.compute"), 600);
  EXPECT_DOUBLE_EQ(P.Metrics.at("leg.serialize"), 0);
  EXPECT_DOUBLE_EQ(P.Metrics.at("leg.wire"), 400);
  EXPECT_DOUBLE_EQ(P.Metrics.at("leg.total"), 1000);
}

//===----------------------------------------------------------------------===//
// parcs_top empty-percentile rendering
//===----------------------------------------------------------------------===//

TEST(TopReportTest, RendersEmptyWindowPercentilesAsDash) {
  // A histogram window with no samples exports the EmptyPercentile
  // sentinel (-1); the view must show "-", never a negative latency.
  std::string Export =
      "{\"window_ns\": 1000, \"nodes\": 1, \"snapshots\": 1, "
      "\"late_windows\": 0, \"corrupt_snapshots\": 0, \"series\": {"
      "\"lat\": {\"kind\": \"histogram\", \"windows\": ["
      "{\"w\": 0, \"start_ns\": 0, \"n\": 0, \"mean\": 0, \"min\": 0, "
      "\"max\": 0, \"p50\": -1, \"p90\": -1, \"p99\": -1, \"p999\": -1},"
      "{\"w\": 1, \"start_ns\": 1000, \"n\": 4, \"mean\": 2000, "
      "\"min\": 1000, \"max\": 3000, \"p50\": 2000, \"p90\": 3000, "
      "\"p99\": 3000, \"p999\": 3000}]}}, \"slos\": []}";
  std::string Out;
  ASSERT_TRUE(telemetry::renderTopReport(Export, Out)) << Out;
  EXPECT_NE(Out.find("         -          -          -          -"),
            std::string::npos)
      << "empty window must render dashes:\n"
      << Out;
  EXPECT_NE(Out.find("2.0"), std::string::npos)
      << "populated window must keep numeric cells:\n"
      << Out;
  EXPECT_EQ(Out.find("-1.0"), std::string::npos)
      << "the sentinel must never leak as a negative latency:\n"
      << Out;
}

} // namespace
