//===- tests/ChaosTest.cpp - end-to-end fault tolerance -------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos scenarios against the seeded fault injector: node crash/restart
/// with retries riding over the outage, partitions that heal, and the
/// flagship acceptance run -- a ray farm that loses a node mid-render and
/// still produces the checksum-correct image, byte-identically across
/// repeated runs.
///
//===----------------------------------------------------------------------===//

#include "apps/ray/Farm.h"
#include "fault/Injector.h"
#include "remoting/Remoting.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::remoting;
using namespace parcs::sim;

namespace {

SimTime ms(int64_t N) { return SimTime::milliseconds(N); }

fault::FaultPlan mustParse(const char *Spec) {
  ErrorOr<fault::FaultPlan> Plan = fault::FaultPlan::parse(Spec);
  if (!Plan) {
    ADD_FAILURE() << "bad fault plan '" << Spec << "': " << Plan.error().str();
    return fault::FaultPlan();
  }
  return *Plan;
}

class EchoHandler : public CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method != "echo")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    ++Calls;
    co_return Bytes(Args);
  }
  int Calls = 0;
};

/// Two nodes, an echo server on node 1, and the injector driving \p Spec.
struct ChaosWorld {
  explicit ChaosWorld(const char *Spec)
      : Machines(2, vm::VmKind::MonoVm117), Net(Machines.sim(), 2),
        Chaos(Machines.sim(), mustParse(Spec)),
        Client(Machines.node(0), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050),
        Server(Machines.node(1), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050),
        Echo(std::make_shared<EchoHandler>()) {
    Chaos.attach(Machines, Net);
    Server.publish("echo", Echo);
  }

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  fault::Injector Chaos;
  RpcEndpoint Client;
  RpcEndpoint Server;
  std::shared_ptr<EchoHandler> Echo;
};

RetryPolicy quickRetry(int MaxAttempts, SimTime AttemptTimeout,
                       SimTime Backoff) {
  RetryPolicy Retry;
  Retry.MaxAttempts = MaxAttempts;
  Retry.AttemptTimeout = AttemptTimeout;
  Retry.BaseBackoff = Backoff;
  return Retry;
}

//===----------------------------------------------------------------------===//
// Crash and restart
//===----------------------------------------------------------------------===//

TEST(ChaosTest, RetriesRideOverCrashAndRestart) {
  // Node 1 dies at 5 ms and reboots at 12 ms; a reliable call issued
  // during the outage keeps retrying into the restarted node.
  ChaosWorld W("crash(1,5ms,12ms)");
  W.Client.setRetryPolicy(quickRetry(8, ms(5), ms(1)));
  ErrorOr<Bytes> Before(Bytes{}), During(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Before,
                          ErrorOr<Bytes> &During) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
      Before = co_await W.Client.callReliable(1, 1050, "echo", "echo",
                                              Payload);
      co_await W.sim().delay(ms(6)); // Well inside the outage.
      During = co_await W.Client.callReliable(1, 1050, "echo", "echo",
                                              Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Before, During));
  W.sim().run();
  EXPECT_TRUE(Before.hasValue()) << Before.error().str();
  ASSERT_TRUE(During.hasValue()) << During.error().str();
  EXPECT_EQ(W.Echo->Calls, 2);
  EXPECT_EQ(W.Chaos.counters().Crashes, 1u);
  EXPECT_EQ(W.Chaos.counters().Restarts, 1u);
  EXPECT_GE(W.Chaos.counters().NodeDownDropped, 1u);
  EXPECT_GE(W.Client.stats().Retries, 1u);
}

TEST(ChaosTest, CrashWithoutRestartExhaustsRetries) {
  ChaosWorld W("crash(1,1ms)");
  W.Client.setRetryPolicy(quickRetry(3, ms(4), ms(1)));
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Out) {
      co_await W.sim().delay(ms(2));
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(2));
      Out = co_await W.Client.callReliable(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.error().code(), ErrorCode::ConnectionFailed);
  EXPECT_EQ(W.Echo->Calls, 0);
  EXPECT_EQ(W.Client.stats().RetriesExhausted, 1u);
  EXPECT_EQ(W.Chaos.counters().Restarts, 0u);
}

/// Echoes after 5 ms of compute -- wide enough to die mid-handler.
class SlowEchoHandler : public CallHandler {
public:
  explicit SlowEchoHandler(vm::Node &Host) : Host(Host) {}
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view,
                                       const Bytes &Args) override {
    ++Started;
    co_await Host.compute(SimTime::milliseconds(5));
    ++Completed;
    co_return Bytes(Args);
  }
  vm::Node &Host;
  int Started = 0;
  int Completed = 0;
};

TEST(ChaosTest, RestartClearsOrphanedDedupEntries) {
  // The first attempt reaches the server and starts its 5 ms of work; the
  // node crashes mid-handler, orphaning the in-progress dedup entry.
  // After the restart the retry of the *same* dedup id must re-execute
  // rather than being suppressed forever by the stale entry.
  ChaosWorld W("crash(1,10ms,20ms)");
  auto Slow = std::make_shared<SlowEchoHandler>(W.Machines.node(1));
  W.Server.publish("slow", Slow);
  W.Client.setRetryPolicy(quickRetry(8, ms(8), ms(1)));
  ErrorOr<Bytes> Warmup(Bytes{}), Out(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Warmup,
                          ErrorOr<Bytes> &Out) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(3));
      // Warmup pays connection setup, so the real attempt's request
      // lands promptly.
      Warmup = co_await W.Client.callReliable(1, 1050, "echo", "echo",
                                              Payload);
      co_await W.sim().delay(ms(8) - W.sim().now());
      Out = co_await W.Client.callReliable(1, 1050, "slow", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Warmup, Out));
  W.sim().run();
  EXPECT_TRUE(Warmup.hasValue()) << Warmup.error().str();
  ASSERT_TRUE(Out.hasValue()) << Out.error().str();
  EXPECT_GE(W.Client.stats().Retries, 1u);
  EXPECT_GE(Slow->Started, 2) << "the retry must have re-executed";
  EXPECT_EQ(Slow->Completed, Slow->Started - 1)
      << "exactly the crashed execution never finished";
}

//===----------------------------------------------------------------------===//
// Partitions
//===----------------------------------------------------------------------===//

TEST(ChaosTest, PartitionHealsAndCallCompletes) {
  ChaosWorld W("partition(0,1,1ms,20ms)");
  W.Client.setRetryPolicy(quickRetry(6, ms(5), ms(2)));
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Out) {
      co_await W.sim().delay(ms(2));
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(4));
      Out = co_await W.Client.callReliable(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_TRUE(Out.hasValue()) << Out.error().str();
  EXPECT_EQ(W.Echo->Calls, 1);
  EXPECT_GE(W.Chaos.counters().PartitionDropped, 1u);
  EXPECT_GT(W.sim().now(), ms(20)) << "success only after the heal";
}

//===----------------------------------------------------------------------===//
// The chaos ray farm (flagship acceptance scenario)
//===----------------------------------------------------------------------===//

std::shared_ptr<const apps::ray::RayJob> chaosJob() {
  auto Job = std::make_shared<apps::ray::RayJob>();
  Job->SceneData = apps::ray::Scene::javaGrande(2);
  Job->Width = 60;
  Job->Height = 40;
  Job->LinesPerTask = 5;
  // ~5 s of virtual sequential work, so the crash below lands mid-render.
  Job->NsPerOp = apps::ray::calibrateNsPerOp(Job->SceneData, Job->Width,
                                             Job->Height, /*Target=*/5.0);
  return Job;
}

/// Node 2 (of 3) dies mid-render and reboots, under 1% loss and 0.5%
/// corruption.
constexpr const char *ChaosFarmPlan =
    "seed(42);crash(2,300ms,600ms);loss(0.01);corrupt(0.005)";

apps::ray::FarmResult runChaosFarm(
    const std::shared_ptr<const apps::ray::RayJob> &Job) {
  apps::ray::FarmConfig Config;
  Config.Processors = 6; // 3 dual-core nodes, so "node 2" exists.
  Config.Faults = mustParse(ChaosFarmPlan);
  return apps::ray::runScooppRayFarm(Job, Config);
}

TEST(ChaosTest, ChaosFarmRendersChecksumCorrectImage) {
  auto Job = chaosJob();
  apps::ray::SequentialResult Seq =
      apps::ray::sequentialRender(*Job, vm::VmKind::SunJvm142);
  apps::ray::FarmResult Farm = runChaosFarm(Job);
  EXPECT_TRUE(Farm.Complete) << "rows lost to the crash were not recovered";
  EXPECT_EQ(Farm.Checksum, Seq.Checksum)
      << "faults may cost time, never pixels";
  EXPECT_EQ(Farm.PixelBytes,
            static_cast<uint64_t>(Job->Width) * Job->Height * 3);
  EXPECT_GT(Farm.Elapsed, SimTime()) << "the simulation must have drained";
}

TEST(ChaosTest, ChaosFarmIsByteIdenticallyReproducible) {
  auto Job = chaosJob();
  metrics::Registry &Reg = metrics::Registry::global();

  auto tracedRun = [&] {
    Reg.reset();
    trace::reset();
    trace::setEnabled(true);
    apps::ray::FarmResult Farm = runChaosFarm(Job);
    trace::setEnabled(false);
    std::string Trace = trace::exportJson();
    trace::reset();
    return std::make_tuple(Farm, Reg.textReport(), std::move(Trace));
  };

  auto [FarmA, MetricsA, TraceA] = tracedRun();
  auto [FarmB, MetricsB, TraceB] = tracedRun();
  Reg.reset();

  EXPECT_EQ(FarmA.Elapsed, FarmB.Elapsed);
  EXPECT_EQ(FarmA.Checksum, FarmB.Checksum);
  EXPECT_EQ(FarmA.RowsRecovered, FarmB.RowsRecovered);
  EXPECT_EQ(MetricsA, MetricsB) << "metrics must be byte-identical";
  EXPECT_EQ(TraceA, TraceB) << "trace exports must be byte-identical";
}

TEST(ChaosTest, FaultFreeFarmReportsNoRecovery) {
  auto Job = chaosJob();
  apps::ray::FarmConfig Config;
  Config.Processors = 4;
  apps::ray::FarmResult Farm = apps::ray::runScooppRayFarm(Job, Config);
  EXPECT_TRUE(Farm.Complete);
  EXPECT_EQ(Farm.RowsRecovered, 0);
  apps::ray::SequentialResult Seq =
      apps::ray::sequentialRender(*Job, vm::VmKind::SunJvm142);
  EXPECT_EQ(Farm.Checksum, Seq.Checksum);
}

} // namespace
