//===- tests/ChaosTest.cpp - end-to-end fault tolerance -------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos scenarios against the seeded fault injector: node crash/restart
/// with retries riding over the outage, partitions that heal, and the
/// flagship acceptance run -- a ray farm that loses a node mid-render and
/// still produces the checksum-correct image, byte-identically across
/// repeated runs.
///
//===----------------------------------------------------------------------===//

#include "apps/ray/Farm.h"
#include "core/ObjectManager.h"
#include "core/Proxy.h"
#include "core/Scoopp.h"
#include "fault/Injector.h"
#include "remoting/Remoting.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::remoting;
using namespace parcs::sim;

namespace {

SimTime ms(int64_t N) { return SimTime::milliseconds(N); }

fault::FaultPlan mustParse(const char *Spec) {
  ErrorOr<fault::FaultPlan> Plan = fault::FaultPlan::parse(Spec);
  if (!Plan) {
    ADD_FAILURE() << "bad fault plan '" << Spec << "': " << Plan.error().str();
    return fault::FaultPlan();
  }
  return *Plan;
}

class EchoHandler : public CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method != "echo")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    ++Calls;
    co_return Bytes(Args);
  }
  int Calls = 0;
};

/// Two nodes, an echo server on node 1, and the injector driving \p Spec.
struct ChaosWorld {
  explicit ChaosWorld(const char *Spec)
      : Machines(2, vm::VmKind::MonoVm117), Net(Machines.sim(), 2),
        Chaos(Machines.sim(), mustParse(Spec)),
        Client(Machines.node(0), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050),
        Server(Machines.node(1), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050),
        Echo(std::make_shared<EchoHandler>()) {
    Chaos.attach(Machines, Net);
    Server.publish("echo", Echo);
  }

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  fault::Injector Chaos;
  RpcEndpoint Client;
  RpcEndpoint Server;
  std::shared_ptr<EchoHandler> Echo;
};

RetryPolicy quickRetry(int MaxAttempts, SimTime AttemptTimeout,
                       SimTime Backoff) {
  RetryPolicy Retry;
  Retry.MaxAttempts = MaxAttempts;
  Retry.AttemptTimeout = AttemptTimeout;
  Retry.BaseBackoff = Backoff;
  return Retry;
}

//===----------------------------------------------------------------------===//
// Crash and restart
//===----------------------------------------------------------------------===//

TEST(ChaosTest, RetriesRideOverCrashAndRestart) {
  // Node 1 dies at 5 ms and reboots at 12 ms; a reliable call issued
  // during the outage keeps retrying into the restarted node.
  ChaosWorld W("crash(1,5ms,12ms)");
  W.Client.setRetryPolicy(quickRetry(8, ms(5), ms(1)));
  ErrorOr<Bytes> Before(Bytes{}), During(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Before,
                          ErrorOr<Bytes> &During) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
      Before = co_await W.Client.callReliable(1, 1050, "echo", "echo",
                                              Payload);
      co_await W.sim().delay(ms(6)); // Well inside the outage.
      During = co_await W.Client.callReliable(1, 1050, "echo", "echo",
                                              Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Before, During));
  W.sim().run();
  EXPECT_TRUE(Before.hasValue()) << Before.error().str();
  ASSERT_TRUE(During.hasValue()) << During.error().str();
  EXPECT_EQ(W.Echo->Calls, 2);
  EXPECT_EQ(W.Chaos.counters().Crashes, 1u);
  EXPECT_EQ(W.Chaos.counters().Restarts, 1u);
  EXPECT_GE(W.Chaos.counters().NodeDownDropped, 1u);
  EXPECT_GE(W.Client.stats().Retries, 1u);
}

TEST(ChaosTest, CrashWithoutRestartExhaustsRetries) {
  ChaosWorld W("crash(1,1ms)");
  W.Client.setRetryPolicy(quickRetry(3, ms(4), ms(1)));
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Out) {
      co_await W.sim().delay(ms(2));
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(2));
      Out = co_await W.Client.callReliable(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.error().code(), ErrorCode::ConnectionFailed);
  EXPECT_EQ(W.Echo->Calls, 0);
  EXPECT_EQ(W.Client.stats().RetriesExhausted, 1u);
  EXPECT_EQ(W.Chaos.counters().Restarts, 0u);
}

/// Echoes after 5 ms of compute -- wide enough to die mid-handler.
class SlowEchoHandler : public CallHandler {
public:
  explicit SlowEchoHandler(vm::Node &Host) : Host(Host) {}
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view,
                                       const Bytes &Args) override {
    ++Started;
    co_await Host.compute(SimTime::milliseconds(5));
    ++Completed;
    co_return Bytes(Args);
  }
  vm::Node &Host;
  int Started = 0;
  int Completed = 0;
};

TEST(ChaosTest, RestartClearsOrphanedDedupEntries) {
  // The first attempt reaches the server and starts its 5 ms of work; the
  // node crashes mid-handler, orphaning the in-progress dedup entry.
  // After the restart the retry of the *same* dedup id must re-execute
  // rather than being suppressed forever by the stale entry.
  ChaosWorld W("crash(1,10ms,20ms)");
  auto Slow = std::make_shared<SlowEchoHandler>(W.Machines.node(1));
  W.Server.publish("slow", Slow);
  W.Client.setRetryPolicy(quickRetry(8, ms(8), ms(1)));
  ErrorOr<Bytes> Warmup(Bytes{}), Out(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Warmup,
                          ErrorOr<Bytes> &Out) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(3));
      // Warmup pays connection setup, so the real attempt's request
      // lands promptly.
      Warmup = co_await W.Client.callReliable(1, 1050, "echo", "echo",
                                              Payload);
      co_await W.sim().delay(ms(8) - W.sim().now());
      Out = co_await W.Client.callReliable(1, 1050, "slow", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Warmup, Out));
  W.sim().run();
  EXPECT_TRUE(Warmup.hasValue()) << Warmup.error().str();
  ASSERT_TRUE(Out.hasValue()) << Out.error().str();
  EXPECT_GE(W.Client.stats().Retries, 1u);
  EXPECT_GE(Slow->Started, 2) << "the retry must have re-executed";
  EXPECT_EQ(Slow->Completed, Slow->Started - 1)
      << "exactly the crashed execution never finished";
}

//===----------------------------------------------------------------------===//
// Partitions
//===----------------------------------------------------------------------===//

TEST(ChaosTest, PartitionHealsAndCallCompletes) {
  ChaosWorld W("partition(0,1,1ms,20ms)");
  W.Client.setRetryPolicy(quickRetry(6, ms(5), ms(2)));
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(ChaosWorld &W, ErrorOr<Bytes> &Out) {
      co_await W.sim().delay(ms(2));
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(4));
      Out = co_await W.Client.callReliable(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_TRUE(Out.hasValue()) << Out.error().str();
  EXPECT_EQ(W.Echo->Calls, 1);
  EXPECT_GE(W.Chaos.counters().PartitionDropped, 1u);
  EXPECT_GT(W.sim().now(), ms(20)) << "success only after the heal";
}

//===----------------------------------------------------------------------===//
// Live migration under faults
//===----------------------------------------------------------------------===//

/// Stateful migratable class for the chaos scenarios: (count, sum) state
/// persisted through saveState/restoreState, plus a CPU-burning "slow"
/// call wide enough to crash a node mid-drain.
class MigChaosImpl : public CallHandler {
public:
  explicit MigChaosImpl(vm::Node &Host) : Host(Host) {}
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method == "add") {
      int32_t V = 0;
      if (!serial::decodeValues(Args, V))
        co_return Error(ErrorCode::MalformedMessage, "add args");
      ++Handled;
      Sum += V;
      co_return serial::encodeValues(Sum);
    }
    if (Method == "slow") {
      int64_t Micros = 0;
      if (!serial::decodeValues(Args, Micros))
        co_return Error(ErrorCode::MalformedMessage, "slow args");
      co_await Host.compute(SimTime::microseconds(Micros));
      ++Handled;
      Sum += 1;
      co_return serial::encodeValues(Sum);
    }
    if (Method == "handled")
      co_return serial::encodeValues(Handled);
    if (Method == "sum")
      co_return serial::encodeValues(Sum);
    co_return Error(ErrorCode::UnknownMethod, std::string(Method));
  }
  void saveState(serial::OutputArchive &Out) override {
    Out.write(Handled);
    Out.write(Sum);
  }
  bool restoreState(serial::InputArchive &In) override {
    return In.read(Handled) && In.read(Sum);
  }

private:
  vm::Node &Host;
  int64_t Handled = 0;
  int64_t Sum = 0;
};

class MigChaosProxy : public scoopp::ProxyBase {
public:
  static constexpr const char *ClassName = "MigChaos";
  using ProxyBase::ProxyBase;
  sim::Task<Error> create() { return ProxyBase::create(ClassName); }
  sim::Task<ErrorOr<int64_t>> add(int32_t V) {
    return invokeSyncTyped<int64_t>("add", V);
  }
  sim::Task<ErrorOr<int64_t>> slow(int64_t Micros) {
    return invokeSyncTyped<int64_t>("slow", Micros);
  }
  sim::Task<ErrorOr<int64_t>> handled() {
    return invokeSyncTyped<int64_t>("handled");
  }
  sim::Task<ErrorOr<int64_t>> sum() { return invokeSyncTyped<int64_t>("sum"); }
};

/// Three SCOOPP nodes under a fault plan, with the MigChaos class
/// registered everywhere and retries enabled (faults without retries just
/// hang the first lost call).
struct MigChaosWorld {
  MigChaosWorld(const char *Spec, scoopp::ScooppConfig Config)
      : Machines(3, vm::VmKind::MonoVm117), Net(Machines.sim(), 3),
        Chaos(Machines.sim(), mustParse(Spec)),
        Runtime(Machines, Net, makeRegistry(), Config) {
    Chaos.attach(Machines, Net);
  }

  static scoopp::ParallelClassRegistry makeRegistry() {
    scoopp::ParallelClassRegistry Registry;
    Registry.registerClass(
        {"MigChaos",
         [](scoopp::ScooppRuntime &,
            vm::Node &Host) -> std::shared_ptr<CallHandler> {
           return std::make_shared<MigChaosImpl>(Host);
         }});
    return Registry;
  }

  static scoopp::ScooppConfig chaosConfig() {
    scoopp::ScooppConfig Config;
    Config.Retry.MaxAttempts = 6;
    Config.Retry.AttemptTimeout = ms(5);
    Config.Retry.BaseBackoff = ms(2);
    return Config;
  }

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  fault::Injector Chaos;
  scoopp::ScooppRuntime Runtime;
};

TEST(ChaosTest, CrashOfMigrationSourceMidDrainAborts) {
  // The object is busy with 5 ms of work when the migration starts; its
  // node dies at 2 ms, squarely inside the drain loop.  The migration
  // must abort cleanly -- no half-adopted copy at the destination.
  MigChaosWorld W("crash(1,2ms)", MigChaosWorld::chaosConfig());
  uint64_t AbortedBefore =
      metrics::Registry::global().counter("om.migrations_aborted").value();
  ErrorOr<scoopp::ParallelRef> Moved(scoopp::ParallelRef{});
  bool Ran = false;
  struct Proc {
    // Shared ownership: the slow call outlives run() (it keeps retrying
    // into the dead node until its attempts exhaust).
    static Task<void> busy(std::shared_ptr<MigChaosProxy> P) {
      (void)co_await P->slow(5000); // Dies with the node; that is fine.
    }
    static Task<void> run(MigChaosWorld &W,
                          ErrorOr<scoopp::ParallelRef> &Moved, bool &Ran) {
      auto P = std::make_shared<MigChaosProxy>(W.Runtime, 0);
      Error E = co_await P->create();
      EXPECT_FALSE(E) << E.str();
      // Round robin from node 0 deterministically picks node 1 first.
      EXPECT_EQ(P->ref().Node, 1);
      if (E || P->ref().Node != 1)
        co_return;
      W.sim().spawn(Proc::busy(P));
      // Start the migration only once the slow call is actually executing
      // on the source, so the drain loop is guaranteed to span the crash.
      while (W.Runtime.endpoint(1).inFlight(P->ref().Name) == 0 &&
             W.sim().now() < ms(2))
        co_await W.sim().delay(SimTime::microseconds(50));
      EXPECT_GT(W.Runtime.endpoint(1).inFlight(P->ref().Name), 0u);
      Ran = true;
      Moved = co_await W.Runtime.om(1).migrate(P->ref().Name, 2);
    }
  };
  W.sim().spawn(Proc::run(W, Moved, Ran));
  W.sim().run();
  ASSERT_TRUE(Ran);
  ASSERT_FALSE(Moved.hasValue()) << "migration off a dead node succeeded?";
  EXPECT_EQ(Moved.error().code(), ErrorCode::ConnectionFailed)
      << Moved.error().str();
  EXPECT_EQ(
      metrics::Registry::global().counter("om.migrations_aborted").value(),
      AbortedBefore + 1);
  EXPECT_EQ(W.Runtime.om(2).hostedObjects(), 0)
      << "the destination must not adopt a half-transferred object";
  EXPECT_EQ(W.Chaos.counters().Crashes, 1u);
}

TEST(ChaosTest, PartitionDuringHandoffHealsAndMigrationIsExactlyOnce) {
  // The source<->destination link is cut from 0.5 ms to 10 ms -- across
  // the whole state-handoff window.  callReliable rides the
  // "create_migrated" RPC over the heal under one dedup id, calls issued
  // mid-migration park and replay, and the checksum proves every call
  // executed exactly once.
  MigChaosWorld W("partition(1,2,500us,10ms)", MigChaosWorld::chaosConfig());
  ErrorOr<scoopp::ParallelRef> Moved(scoopp::ParallelRef{});
  int64_t FinalHandled = -1, FinalSum = -1;
  struct Proc {
    static Task<void> lateAdd(MigChaosWorld &W,
                              std::shared_ptr<MigChaosProxy> P, SimTime At) {
      if (At > W.sim().now())
        co_await W.sim().delay(At - W.sim().now());
      auto R = co_await P->add(1);
      EXPECT_TRUE(R.hasValue()) << R.error().str();
    }
    static Task<void> run(MigChaosWorld &W,
                          ErrorOr<scoopp::ParallelRef> &Moved,
                          int64_t &FinalHandled, int64_t &FinalSum) {
      auto P = std::make_shared<MigChaosProxy>(W.Runtime, 0);
      Error E = co_await P->create();
      EXPECT_FALSE(E) << E.str();
      EXPECT_EQ(P->ref().Node, 1);
      if (E || P->ref().Node != 1)
        co_return;
      (void)co_await P->add(5);
      (void)co_await P->add(7);
      // Two adds land mid-migration: parked at the source, replayed at
      // the destination (their own retries ride over the park window).
      W.sim().spawn(Proc::lateAdd(W, P, ms(2)));
      W.sim().spawn(Proc::lateAdd(W, P, ms(3)));
      Moved = co_await W.Runtime.om(1).migrate(P->ref().Name, 2);
      if (!Moved.hasValue())
        co_return;
      // Wait (with a virtual-time watchdog) for both late adds to drain
      // through the moved object.
      while (W.sim().now() < ms(200)) {
        auto H = co_await P->handled();
        EXPECT_TRUE(H.hasValue()) << H.error().str();
        if (!H || *H >= 4)
          break;
        co_await W.sim().delay(ms(2));
      }
      auto H = co_await P->handled();
      auto S = co_await P->sum();
      if (H.hasValue())
        FinalHandled = *H;
      if (S.hasValue())
        FinalSum = *S;
    }
  };
  W.sim().spawn(Proc::run(W, Moved, FinalHandled, FinalSum));
  W.sim().run();
  ASSERT_TRUE(Moved.hasValue()) << Moved.error().str();
  EXPECT_EQ(Moved->Node, 2);
  EXPECT_GT(W.sim().now(), ms(10)) << "handoff must have outlived the cut";
  EXPECT_GE(W.Chaos.counters().PartitionDropped, 1u)
      << "the partition never bit; move the window";
  // Exactly-once: 4 calls, each applied once (5 + 7 + 1 + 1).
  EXPECT_EQ(FinalHandled, 4);
  EXPECT_EQ(FinalSum, 14);
  EXPECT_EQ(W.Runtime.om(2).hostedObjects(), 1)
      << "retried create_migrated must dedup, not clone";
}

//===----------------------------------------------------------------------===//
// The chaos ray farm (flagship acceptance scenario)
//===----------------------------------------------------------------------===//

std::shared_ptr<const apps::ray::RayJob> chaosJob() {
  auto Job = std::make_shared<apps::ray::RayJob>();
  Job->SceneData = apps::ray::Scene::javaGrande(2);
  Job->Width = 60;
  Job->Height = 40;
  Job->LinesPerTask = 5;
  // ~5 s of virtual sequential work, so the crash below lands mid-render.
  Job->NsPerOp = apps::ray::calibrateNsPerOp(Job->SceneData, Job->Width,
                                             Job->Height, /*Target=*/5.0);
  return Job;
}

/// Node 2 (of 3) dies mid-render and reboots, under 1% loss and 0.5%
/// corruption.
constexpr const char *ChaosFarmPlan =
    "seed(42);crash(2,300ms,600ms);loss(0.01);corrupt(0.005)";

apps::ray::FarmResult runChaosFarm(
    const std::shared_ptr<const apps::ray::RayJob> &Job) {
  apps::ray::FarmConfig Config;
  Config.Processors = 6; // 3 dual-core nodes, so "node 2" exists.
  Config.Faults = mustParse(ChaosFarmPlan);
  return apps::ray::runScooppRayFarm(Job, Config);
}

TEST(ChaosTest, ChaosFarmRendersChecksumCorrectImage) {
  auto Job = chaosJob();
  apps::ray::SequentialResult Seq =
      apps::ray::sequentialRender(*Job, vm::VmKind::SunJvm142);
  apps::ray::FarmResult Farm = runChaosFarm(Job);
  EXPECT_TRUE(Farm.Complete) << "rows lost to the crash were not recovered";
  EXPECT_EQ(Farm.Checksum, Seq.Checksum)
      << "faults may cost time, never pixels";
  EXPECT_EQ(Farm.PixelBytes,
            static_cast<uint64_t>(Job->Width) * Job->Height * 3);
  EXPECT_GT(Farm.Elapsed, SimTime()) << "the simulation must have drained";
}

TEST(ChaosTest, ChaosFarmIsByteIdenticallyReproducible) {
  auto Job = chaosJob();
  metrics::Registry &Reg = metrics::Registry::global();

  auto tracedRun = [&] {
    Reg.reset();
    trace::reset();
    trace::setEnabled(true);
    apps::ray::FarmResult Farm = runChaosFarm(Job);
    trace::setEnabled(false);
    std::string Trace = trace::exportJson();
    trace::reset();
    return std::make_tuple(Farm, Reg.textReport(), std::move(Trace));
  };

  auto [FarmA, MetricsA, TraceA] = tracedRun();
  auto [FarmB, MetricsB, TraceB] = tracedRun();
  Reg.reset();

  EXPECT_EQ(FarmA.Elapsed, FarmB.Elapsed);
  EXPECT_EQ(FarmA.Checksum, FarmB.Checksum);
  EXPECT_EQ(FarmA.RowsRecovered, FarmB.RowsRecovered);
  EXPECT_EQ(MetricsA, MetricsB) << "metrics must be byte-identical";
  EXPECT_EQ(TraceA, TraceB) << "trace exports must be byte-identical";
}

TEST(ChaosTest, FaultFreeFarmReportsNoRecovery) {
  auto Job = chaosJob();
  apps::ray::FarmConfig Config;
  Config.Processors = 4;
  apps::ray::FarmResult Farm = apps::ray::runScooppRayFarm(Job, Config);
  EXPECT_TRUE(Farm.Complete);
  EXPECT_EQ(Farm.RowsRecovered, 0);
  apps::ray::SequentialResult Seq =
      apps::ray::sequentialRender(*Job, vm::VmKind::SunJvm142);
  EXPECT_EQ(Farm.Checksum, Seq.Checksum);
}

} // namespace
