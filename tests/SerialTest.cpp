//===- tests/SerialTest.cpp - serialisation tests -------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "serial/Archive.h"
#include "serial/Envelope.h"
#include "serial/ObjectGraph.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::serial;

namespace {

//===----------------------------------------------------------------------===//
// Archive round trips
//===----------------------------------------------------------------------===//

TEST(ArchiveTest, PrimitiveRoundTrip) {
  OutputArchive Out;
  Out.write(static_cast<uint8_t>(0xab));
  Out.write(static_cast<int32_t>(-12345));
  Out.write(static_cast<uint64_t>(0x1122334455667788ULL));
  Out.write(true);
  Out.write(3.14159);
  Out.write(2.5f);
  Out.write(std::string("hello"));

  InputArchive In(Out.bytes());
  uint8_t U8 = 0;
  int32_t I32 = 0;
  uint64_t U64 = 0;
  bool Flag = false;
  double D = 0;
  float F = 0;
  std::string S;
  EXPECT_TRUE(In.read(U8));
  EXPECT_TRUE(In.read(I32));
  EXPECT_TRUE(In.read(U64));
  EXPECT_TRUE(In.read(Flag));
  EXPECT_TRUE(In.read(D));
  EXPECT_TRUE(In.read(F));
  EXPECT_TRUE(In.read(S));
  EXPECT_TRUE(In.atEnd());
  EXPECT_EQ(U8, 0xab);
  EXPECT_EQ(I32, -12345);
  EXPECT_EQ(U64, 0x1122334455667788ULL);
  EXPECT_TRUE(Flag);
  EXPECT_DOUBLE_EQ(D, 3.14159);
  EXPECT_FLOAT_EQ(F, 2.5f);
  EXPECT_EQ(S, "hello");
}

TEST(ArchiveTest, LittleEndianLayout) {
  OutputArchive Out;
  Out.write(static_cast<uint32_t>(0x11223344));
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out.bytes()[0], 0x44);
  EXPECT_EQ(Out.bytes()[3], 0x11);
}

TEST(ArchiveTest, VectorRoundTrip) {
  OutputArchive Out;
  std::vector<int32_t> Ints = {1, -2, 3, -4};
  std::vector<std::string> Names = {"a", "bb", ""};
  Out.write(Ints);
  Out.write(Names);
  InputArchive In(Out.bytes());
  std::vector<int32_t> Ints2;
  std::vector<std::string> Names2;
  EXPECT_TRUE(In.read(Ints2));
  EXPECT_TRUE(In.read(Names2));
  EXPECT_EQ(Ints, Ints2);
  EXPECT_EQ(Names, Names2);
}

TEST(ArchiveTest, TruncatedReadFailsSticky) {
  OutputArchive Out;
  Out.write(static_cast<uint16_t>(7));
  InputArchive In(Out.bytes());
  uint32_t Big = 0;
  EXPECT_FALSE(In.read(Big));
  EXPECT_FALSE(In.ok());
  uint8_t Small = 0;
  EXPECT_FALSE(In.read(Small)); // Sticky: even a fitting read now fails.
}

TEST(ArchiveTest, CorruptLengthDoesNotAllocate) {
  // A vector length of ~4 billion with a 4-byte buffer must fail cleanly.
  OutputArchive Out;
  Out.write(static_cast<uint32_t>(0xffffffff));
  InputArchive In(Out.bytes());
  std::vector<int32_t> V;
  EXPECT_FALSE(In.read(V));
}

TEST(ArchiveTest, CorruptStringLengthFails) {
  OutputArchive Out;
  Out.write(static_cast<uint32_t>(1000)); // Claims 1000 chars, has none.
  InputArchive In(Out.bytes());
  std::string S;
  EXPECT_FALSE(In.read(S));
}

TEST(ArchiveTest, RawBytesRoundTrip) {
  OutputArchive Out;
  Bytes Blob = {9, 8, 7};
  Out.writeRaw(Blob);
  InputArchive In(Out.bytes());
  Bytes Back;
  EXPECT_TRUE(In.readRemaining(Back));
  EXPECT_EQ(Back, Blob);
}

TEST(ArchiveTest, FuzzNeverCrashes) {
  // Random bytes must never crash the reader, only fail.
  Rng R(2026);
  for (int Trial = 0; Trial < 200; ++Trial) {
    Bytes Junk(R.nextBelow(64));
    for (uint8_t &B : Junk)
      B = static_cast<uint8_t>(R.nextBelow(256));
    InputArchive In(Junk);
    std::vector<std::string> V;
    std::string S;
    double D;
    (void)In.read(V);
    (void)In.read(S);
    (void)In.read(D);
  }
  SUCCEED();
}


TEST(ArchiveTest, PairAndMapRoundTrip) {
  OutputArchive Out;
  std::pair<int32_t, std::string> P = {7, "seven"};
  std::map<std::string, std::vector<int32_t>> M = {
      {"a", {1, 2}}, {"b", {}}, {"c", {3}}};
  Out.write(P);
  Out.write(M);
  InputArchive In(Out.bytes());
  std::pair<int32_t, std::string> P2;
  std::map<std::string, std::vector<int32_t>> M2;
  EXPECT_TRUE(In.read(P2));
  EXPECT_TRUE(In.read(M2));
  EXPECT_TRUE(In.atEnd());
  EXPECT_EQ(P2, P);
  EXPECT_EQ(M2, M);
}

TEST(ArchiveTest, CorruptMapCountFails) {
  OutputArchive Out;
  Out.write(static_cast<uint32_t>(1000000)); // Claims a million entries.
  InputArchive In(Out.bytes());
  std::map<int32_t, int32_t> M;
  EXPECT_FALSE(In.read(M));
}

TEST(ArchiveTest, NestedContainersRoundTrip) {
  OutputArchive Out;
  std::vector<std::pair<std::string, double>> V = {{"x", 1.5}, {"y", -2.5}};
  Out.write(V);
  InputArchive In(Out.bytes());
  std::vector<std::pair<std::string, double>> V2;
  EXPECT_TRUE(In.read(V2));
  EXPECT_EQ(V2, V);
}

//===----------------------------------------------------------------------===//
// Object graphs
//===----------------------------------------------------------------------===//

/// A passive object with a value and an optional link (list/cycle node).
class ChainNode : public SerializableObject {
public:
  static constexpr const char *TypeNameStr = "test.ChainNode";

  int32_t Value = 0;
  ChainNode *Next = nullptr;

  std::string_view typeName() const override { return TypeNameStr; }
  void writeFields(ObjectWriter &Writer) const override {
    Writer.write(Value);
    Writer.writeRef(Next);
  }
  bool readFields(ObjectReader &Reader) override {
    return Reader.read(Value) && Reader.readRefAs(Next);
  }
};

/// A second type to exercise heterogeneous graphs and cast failures.
class Label : public SerializableObject {
public:
  static constexpr const char *TypeNameStr = "test.Label";

  std::string Text;

  std::string_view typeName() const override { return TypeNameStr; }
  void writeFields(ObjectWriter &Writer) const override {
    Writer.write(Text);
  }
  bool readFields(ObjectReader &Reader) override {
    return Reader.read(Text);
  }
};

TypeRegistry makeRegistry() {
  TypeRegistry Registry;
  Registry.registerType<ChainNode>();
  Registry.registerType<Label>();
  return Registry;
}

TEST(ObjectGraphTest, NullRoot) {
  Bytes Data = encodeObjectGraph(nullptr);
  TypeRegistry Registry = makeRegistry();
  ObjectPool Pool;
  auto Root = decodeObjectGraph(Data, Registry, Pool);
  ASSERT_TRUE(Root);
  EXPECT_EQ(*Root, nullptr);
}

TEST(ObjectGraphTest, LinearChainRoundTrip) {
  ObjectPool Src;
  ChainNode *A = Src.create<ChainNode>();
  ChainNode *B = Src.create<ChainNode>();
  ChainNode *C = Src.create<ChainNode>();
  A->Value = 1;
  B->Value = 2;
  C->Value = 3;
  A->Next = B;
  B->Next = C;

  Bytes Data = encodeObjectGraph(A);
  TypeRegistry Registry = makeRegistry();
  ObjectPool Pool;
  auto Root = decodeObjectGraph(Data, Registry, Pool);
  ASSERT_TRUE(Root);
  ChainNode *A2 = objectCast<ChainNode>(*Root);
  ASSERT_NE(A2, nullptr);
  EXPECT_EQ(A2->Value, 1);
  ASSERT_NE(A2->Next, nullptr);
  EXPECT_EQ(A2->Next->Value, 2);
  ASSERT_NE(A2->Next->Next, nullptr);
  EXPECT_EQ(A2->Next->Next->Value, 3);
  EXPECT_EQ(A2->Next->Next->Next, nullptr);
  EXPECT_EQ(Pool.size(), 3u);
}

TEST(ObjectGraphTest, CycleRoundTrip) {
  ObjectPool Src;
  ChainNode *A = Src.create<ChainNode>();
  ChainNode *B = Src.create<ChainNode>();
  A->Value = 10;
  B->Value = 20;
  A->Next = B;
  B->Next = A; // Cycle.

  Bytes Data = encodeObjectGraph(A);
  TypeRegistry Registry = makeRegistry();
  ObjectPool Pool;
  auto Root = decodeObjectGraph(Data, Registry, Pool);
  ASSERT_TRUE(Root);
  ChainNode *A2 = objectCast<ChainNode>(*Root);
  ASSERT_NE(A2, nullptr);
  ASSERT_NE(A2->Next, nullptr);
  EXPECT_EQ(A2->Next->Next, A2) << "cycle must close on the same object";
  EXPECT_EQ(Pool.size(), 2u) << "sharing must not duplicate objects";
}

TEST(ObjectGraphTest, SelfLoopRoundTrip) {
  ObjectPool Src;
  ChainNode *A = Src.create<ChainNode>();
  A->Value = 42;
  A->Next = A;
  Bytes Data = encodeObjectGraph(A);
  TypeRegistry Registry = makeRegistry();
  ObjectPool Pool;
  auto Root = decodeObjectGraph(Data, Registry, Pool);
  ASSERT_TRUE(Root);
  ChainNode *A2 = objectCast<ChainNode>(*Root);
  ASSERT_NE(A2, nullptr);
  EXPECT_EQ(A2->Next, A2);
}

TEST(ObjectGraphTest, SharedSubobjectPreserved) {
  ObjectPool Src;
  ChainNode *Shared = Src.create<ChainNode>();
  Shared->Value = 7;
  ChainNode *A = Src.create<ChainNode>();
  ChainNode *B = Src.create<ChainNode>();
  A->Next = Shared;
  B->Next = Shared;
  ChainNode *Root = Src.create<ChainNode>();
  Root->Next = A;
  A->Value = 1;
  // Graph: Root -> A -> Shared, and B -> Shared (B reachable via nothing,
  // so serialise A and B explicitly through a two-field wrapper instead).
  OutputArchive Out;
  ObjectWriter Writer(Out);
  Writer.writeRef(A);
  Writer.writeRef(B);

  TypeRegistry Registry = makeRegistry();
  ObjectPool Pool;
  InputArchive In(Out.bytes());
  ObjectReader Reader(In, Registry, Pool);
  SerializableObject *OA = nullptr, *OB = nullptr;
  ASSERT_TRUE(Reader.readRef(OA));
  ASSERT_TRUE(Reader.readRef(OB));
  ChainNode *A2 = objectCast<ChainNode>(OA);
  ChainNode *B2 = objectCast<ChainNode>(OB);
  ASSERT_NE(A2, nullptr);
  ASSERT_NE(B2, nullptr);
  EXPECT_EQ(A2->Next, B2->Next) << "shared object must decode once";
  EXPECT_EQ(A2->Next->Value, 7);
}

TEST(ObjectGraphTest, UnknownTypeFails) {
  ObjectPool Src;
  Label *L = Src.create<Label>();
  L->Text = "x";
  Bytes Data = encodeObjectGraph(L);
  TypeRegistry Registry; // Empty: Label not registered.
  ObjectPool Pool;
  auto Root = decodeObjectGraph(Data, Registry, Pool);
  ASSERT_FALSE(Root);
  EXPECT_EQ(Root.error().code(), ErrorCode::UnknownType);
}

TEST(ObjectGraphTest, TypeMismatchCastFails) {
  ObjectPool Src;
  Label *L = Src.create<Label>();
  L->Text = "not a chain node";
  Bytes Data = encodeObjectGraph(L);
  TypeRegistry Registry = makeRegistry();
  ObjectPool Pool;
  auto Root = decodeObjectGraph(Data, Registry, Pool);
  ASSERT_TRUE(Root);
  EXPECT_EQ(objectCast<ChainNode>(*Root), nullptr);
  EXPECT_NE(objectCast<Label>(*Root), nullptr);
}

TEST(ObjectGraphTest, TruncatedGraphFails) {
  ObjectPool Src;
  ChainNode *A = Src.create<ChainNode>();
  A->Value = 5;
  Bytes Data = encodeObjectGraph(A);
  Data.resize(Data.size() / 2);
  TypeRegistry Registry = makeRegistry();
  ObjectPool Pool;
  auto Root = decodeObjectGraph(Data, Registry, Pool);
  EXPECT_FALSE(Root);
}

TEST(ObjectGraphTest, GlobalRegistryIsIdempotent) {
  TypeRegistry::global().registerType<ChainNode>();
  TypeRegistry::global().registerType<ChainNode>();
  EXPECT_TRUE(TypeRegistry::global().knows(ChainNode::TypeNameStr));
}

//===----------------------------------------------------------------------===//
// Base64
//===----------------------------------------------------------------------===//

TEST(Base64Test, KnownVectors) {
  EXPECT_EQ(base64Encode({}), "");
  EXPECT_EQ(base64Encode({'f'}), "Zg==");
  EXPECT_EQ(base64Encode({'f', 'o'}), "Zm8=");
  EXPECT_EQ(base64Encode({'f', 'o', 'o'}), "Zm9v");
  EXPECT_EQ(base64Encode({'f', 'o', 'o', 'b', 'a', 'r'}), "Zm9vYmFy");
}

TEST(Base64Test, RoundTripAllSizes) {
  Rng R(7);
  for (size_t Size = 0; Size < 70; ++Size) {
    Bytes Data(Size);
    for (uint8_t &B : Data)
      B = static_cast<uint8_t>(R.nextBelow(256));
    auto Back = base64Decode(base64Encode(Data));
    ASSERT_TRUE(Back) << "size " << Size;
    EXPECT_EQ(*Back, Data);
  }
}

TEST(Base64Test, RejectsBadInput) {
  EXPECT_FALSE(base64Decode("abc").hasValue());  // Not 4-aligned.
  EXPECT_FALSE(base64Decode("ab!d").hasValue()); // Bad character.
  EXPECT_FALSE(base64Decode("=abc").hasValue()); // Pad at front.
  EXPECT_FALSE(base64Decode("a=bc").hasValue()); // Data after pad.
  EXPECT_TRUE(base64Decode("abcd").hasValue());
}

//===----------------------------------------------------------------------===//
// Envelopes
//===----------------------------------------------------------------------===//

class EnvelopeFormatTest : public ::testing::TestWithParam<WireFormat> {};

TEST_P(EnvelopeFormatTest, RoundTripsPayload) {
  Bytes Payload;
  Rng R(42);
  for (int I = 0; I < 1000; ++I)
    Payload.push_back(static_cast<uint8_t>(R.nextBelow(256)));
  Bytes Wire = encodeEnvelope(GetParam(), "ProcessCall", Payload);
  auto Decoded = decodeEnvelope(GetParam(), Wire);
  ASSERT_TRUE(Decoded) << Decoded.error().str();
  EXPECT_EQ(Decoded->Payload, Payload);
  if (GetParam() != WireFormat::MpiPack) {
    EXPECT_EQ(Decoded->Name, "ProcessCall");
  }
}

TEST_P(EnvelopeFormatTest, EmptyPayloadRoundTrips) {
  Bytes Wire = encodeEnvelope(GetParam(), "Ping", {});
  auto Decoded = decodeEnvelope(GetParam(), Wire);
  ASSERT_TRUE(Decoded);
  EXPECT_TRUE(Decoded->Payload.empty());
}

TEST_P(EnvelopeFormatTest, GarbageFailsCleanly) {
  Bytes Junk = {0xde, 0xad, 0xbe, 0xef, 0x01};
  EXPECT_FALSE(decodeEnvelope(GetParam(), Junk));
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EnvelopeFormatTest,
                         ::testing::Values(WireFormat::MpiPack,
                                           WireFormat::NetBinary,
                                           WireFormat::JavaStream,
                                           WireFormat::NetSoap),
                         [](const auto &Info) {
                           std::string Name = wireFormatName(Info.param);
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });


/// Size sweep: every format must round-trip payloads from empty to 64 KB.
class EnvelopeSizeTest
    : public ::testing::TestWithParam<std::tuple<WireFormat, size_t>> {};

TEST_P(EnvelopeSizeTest, RoundTripsAtEverySize) {
  auto [Format, Size] = GetParam();
  Rng R(Size + 17);
  Bytes Payload(Size);
  for (uint8_t &B : Payload)
    B = static_cast<uint8_t>(R.nextBelow(256));
  Bytes Wire = encodeEnvelope(Format, "sweep", Payload);
  auto Back = decodeEnvelope(Format, Wire);
  ASSERT_TRUE(Back.hasValue()) << Back.error().str();
  EXPECT_EQ(Back->Payload, Payload);
  EXPECT_GE(Wire.size(), Payload.size());
}

INSTANTIATE_TEST_SUITE_P(
    FormatsAndSizes, EnvelopeSizeTest,
    ::testing::Combine(::testing::Values(WireFormat::MpiPack,
                                         WireFormat::NetBinary,
                                         WireFormat::JavaStream,
                                         WireFormat::NetSoap),
                       ::testing::Values(0u, 1u, 3u, 1000u, 65536u)));

TEST(EnvelopeTest, OverheadOrderingMatchesStacks) {
  // Framing overhead per call: MPI < NetBinary < JavaStream << NetSoap.
  Bytes Payload(1000, 0x5a);
  size_t Mpi = encodeEnvelope(WireFormat::MpiPack, "m", Payload).size();
  size_t Bin = encodeEnvelope(WireFormat::NetBinary, "m", Payload).size();
  size_t Java = encodeEnvelope(WireFormat::JavaStream, "m", Payload).size();
  size_t Soap = encodeEnvelope(WireFormat::NetSoap, "m", Payload).size();
  EXPECT_LT(Mpi, Bin);
  EXPECT_LT(Bin, Java);
  EXPECT_LT(Java, Soap);
  // SOAP inflates by at least 4/3 (base64).
  EXPECT_GT(Soap, Payload.size() * 4 / 3);
}

} // namespace
