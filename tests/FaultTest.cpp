//===- tests/FaultTest.cpp - fault injection + timeout tests --------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Failure-path behaviour: deterministic packet loss in the fabric, call
/// deadlines in the RPC engine, connection-setup costs, and retry logic
/// built from the two.
///
//===----------------------------------------------------------------------===//

#include "fault/Injector.h"
#include "remoting/Remoting.h"
#include "serial/Crc32.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::remoting;
using namespace parcs::sim;

namespace {

SimTime ms(int64_t N) { return SimTime::milliseconds(N); }

class EchoHandler : public CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method != "echo")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    ++Calls;
    co_return Bytes(Args);
  }
  int Calls = 0;
};

struct FaultWorld {
  explicit FaultWorld(int DropEveryNth = 0)
      : Machines(2, vm::VmKind::MonoVm117),
        Net(Machines.sim(), 2, [DropEveryNth] {
          net::NetConfig Config;
          Config.DropEveryNth = DropEveryNth;
          return Config;
        }()),
        Client(Machines.node(0), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050),
        Server(Machines.node(1), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050),
        Echo(std::make_shared<EchoHandler>()) {
    Server.publish("echo", Echo);
  }

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  RpcEndpoint Client;
  RpcEndpoint Server;
  std::shared_ptr<EchoHandler> Echo;
};

//===----------------------------------------------------------------------===//
// Packet loss
//===----------------------------------------------------------------------===//

TEST(FaultTest, DropPatternIsDeterministic) {
  FaultWorld W(/*DropEveryNth=*/3);
  int Ok = 0, TimedOut = 0;
  struct Proc {
    static Task<void> run(FaultWorld &W, int &Ok, int &TimedOut) {
      for (int I = 0; I < 9; ++I) {
        Bytes Payload = serial::encodeValues(static_cast<int32_t>(I));
        ErrorOr<Bytes> Out = co_await W.Client.call(
            1, 1050, "echo", "echo", Payload, /*Timeout=*/ms(50));
        if (Out)
          ++Ok;
        else if (Out.error().code() == ErrorCode::TimedOut)
          ++TimedOut;
      }
    }
  };
  W.sim().spawn(Proc::run(W, Ok, TimedOut));
  W.sim().run();
  // Transfers interleave request/reply, but a dropped request produces no
  // reply, which shifts the pattern: transfer 3 (request 2), 6 (request
  // 4), 9 (request 6), 12 (request 8) are lost -- 4 drops, so calls
  // 2/4/6/8 time out and the odd calls succeed.
  EXPECT_EQ(W.Net.messagesDropped(), 4u);
  EXPECT_EQ(Ok + TimedOut, 9);
  EXPECT_EQ(TimedOut, 4);
  EXPECT_EQ(Ok, 5);
}

TEST(FaultTest, LossyNetworkWithoutTimeoutJustStalls) {
  // A dropped call without a deadline leaves the pending entry parked;
  // the simulation drains and the caller never resumes -- exactly why
  // the timeout API exists.  The frame must still be reclaimed safely.
  FaultWorld W(/*DropEveryNth=*/1); // Everything is lost.
  bool Resumed = false;
  struct Proc {
    static Task<void> run(FaultWorld &W, bool &Resumed) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
      (void)co_await W.Client.call(1, 1050, "echo", "echo", Payload);
      Resumed = true;
    }
  };
  W.sim().spawn(Proc::run(W, Resumed));
  W.sim().run();
  EXPECT_FALSE(Resumed);
  EXPECT_GE(W.Net.messagesDropped(), 1u);
}

TEST(FaultTest, RetryLoopSurvivesLoss) {
  // Standard client pattern: retry with a deadline until success.  A
  // leading one-way message shifts the drop phase so the first attempt
  // loses its reply and the retry goes through.
  FaultWorld W(/*DropEveryNth=*/3);
  int Attempts = 0;
  bool Succeeded = false;
  struct Proc {
    static Task<void> run(FaultWorld &W, int &Attempts, bool &Succeeded) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(42));
      co_await W.Client.callOneWay(1, 1050, "echo", "echo", Payload);
      for (int Try = 0; Try < 10 && !Succeeded; ++Try) {
        ++Attempts;
        ErrorOr<Bytes> Out = co_await W.Client.call(
            1, 1050, "echo", "echo", Payload, /*Timeout=*/ms(20));
        Succeeded = Out.hasValue();
      }
    }
  };
  W.sim().spawn(Proc::run(W, Attempts, Succeeded));
  W.sim().run();
  EXPECT_TRUE(Succeeded);
  EXPECT_EQ(Attempts, 2) << "first attempt's reply is transfer 3 (lost)";
}

TEST(FaultTest, TimeoutDoesNotFireOnFastReply) {
  FaultWorld W;
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(FaultWorld &W, ErrorOr<Bytes> &Out) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(5));
      Out = co_await W.Client.call(1, 1050, "echo", "echo", Payload,
                                   /*Timeout=*/SimTime::seconds(10));
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  EXPECT_TRUE(Out.hasValue());
}

TEST(FaultTest, LateRepliesAfterTimeoutAreDropped) {
  // Timeout shorter than the round trip: the reply arrives after the
  // deadline and must be discarded without crashing or mis-matching.
  FaultWorld W;
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(FaultWorld &W, ErrorOr<Bytes> &Out) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(5));
      Out = co_await W.Client.call(1, 1050, "echo", "echo", Payload,
                                   /*Timeout=*/SimTime::microseconds(100));
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.error().code(), ErrorCode::TimedOut);
  // The server still executed the call; its late reply was recognised as
  // a timed-out call's (not mis-counted as a malformed frame).
  EXPECT_EQ(W.Echo->Calls, 1);
  EXPECT_EQ(W.Client.stats().LateReplies, 1u);
  EXPECT_EQ(W.Client.stats().MalformedDropped, 0u);
}

//===----------------------------------------------------------------------===//
// Connection establishment
//===----------------------------------------------------------------------===//

TEST(FaultTest, FirstCallPaysConnectionSetup) {
  FaultWorld W;
  SimTime First, Second;
  struct Proc {
    static Task<void> run(FaultWorld &W, SimTime &First, SimTime &Second) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
      SimTime T0 = W.sim().now();
      (void)co_await W.Client.call(1, 1050, "echo", "echo", Payload);
      First = W.sim().now() - T0;
      SimTime T1 = W.sim().now();
      (void)co_await W.Client.call(1, 1050, "echo", "echo", Payload);
      Second = W.sim().now() - T1;
    }
  };
  W.sim().spawn(Proc::run(W, First, Second));
  W.sim().run();
  SimTime Setup = stackProfile(StackKind::MonoRemotingTcp117).ConnectSetup;
  EXPECT_GT(First, Second + Setup - SimTime::microseconds(1));
  EXPECT_LT(First - Second, Setup + SimTime::microseconds(50));
}

TEST(FaultTest, LoopbackSkipsConnectionSetup) {
  FaultWorld W;
  W.Client.publish("local-echo", std::make_shared<EchoHandler>());
  SimTime First;
  struct Proc {
    static Task<void> run(FaultWorld &W, SimTime &First) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
      SimTime T0 = W.sim().now();
      (void)co_await W.Client.call(0, 1050, "local-echo", "echo", Payload);
      First = W.sim().now() - T0;
    }
  };
  W.sim().spawn(Proc::run(W, First));
  W.sim().run();
  EXPECT_LT(First,
            stackProfile(StackKind::MonoRemotingTcp117).ConnectSetup);
}

TEST(FaultTest, ConcurrentFirstCallsConnectOnce) {
  FaultWorld W;
  SimTime Done;
  struct Proc {
    static Task<void> run(FaultWorld &W, sim::WaitGroup &Group) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
      (void)co_await W.Client.call(1, 1050, "echo", "echo", Payload);
      Group.done();
    }
  };
  sim::WaitGroup Group(W.sim());
  Group.add(3);
  for (int I = 0; I < 3; ++I)
    W.sim().spawn(Proc::run(W, Group));
  W.sim().run();
  EXPECT_EQ(W.Echo->Calls, 3);
  // All three completed within roughly one connect + one round trip --
  // not three connects back to back.
  EXPECT_LT(W.sim().now(), ms(3));
}

//===----------------------------------------------------------------------===//
// Frame checksums
//===----------------------------------------------------------------------===//

TEST(FaultTest, Crc32MatchesKnownVector) {
  // The CRC-32 (IEEE 802.3) check value for "123456789".
  const char *Digits = "123456789";
  EXPECT_EQ(serial::crc32(reinterpret_cast<const uint8_t *>(Digits), 9),
            0xCBF43926u);
  EXPECT_EQ(serial::crc32(nullptr, 0), 0u);
}

TEST(FaultTest, CorruptedFramesAreCountedAndDropped) {
  // With the injector flipping one bit in every payload, the server must
  // classify the frames as corrupted (CRC mismatch), not as malformed
  // protocol, and the caller times out cleanly.
  FaultWorld W;
  ErrorOr<fault::FaultPlan> Plan = fault::FaultPlan::parse("corrupt(1.0)");
  ASSERT_TRUE(Plan.hasValue()) << Plan.error().str();
  fault::Injector Chaos(W.sim(), *Plan);
  Chaos.attach(W.Machines, W.Net);
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(FaultWorld &W, ErrorOr<Bytes> &Out) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(7));
      Out = co_await W.Client.call(1, 1050, "echo", "echo", Payload,
                                   /*Timeout=*/ms(20));
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out.hasValue());
  EXPECT_EQ(Out.error().code(), ErrorCode::TimedOut);
  EXPECT_EQ(W.Echo->Calls, 0);
  EXPECT_EQ(Chaos.counters().Corrupted, 1u);
  EXPECT_EQ(W.Server.stats().CorruptedDropped, 1u);
  EXPECT_EQ(W.Server.stats().MalformedDropped, 0u);
}

TEST(FaultTest, RetryOutlivesCorruptionWindow) {
  // Corruption active only for the first 5 ms: the first attempt's frame
  // dies on the CRC check, the retry (after the attempt timeout) lands in
  // the clean window and succeeds end to end.
  FaultWorld W;
  ErrorOr<fault::FaultPlan> Plan =
      fault::FaultPlan::parse("corrupt(1.0,0,5ms)");
  ASSERT_TRUE(Plan.hasValue()) << Plan.error().str();
  fault::Injector Chaos(W.sim(), *Plan);
  Chaos.attach(W.Machines, W.Net);
  RetryPolicy Retry;
  Retry.MaxAttempts = 4;
  Retry.AttemptTimeout = ms(10);
  Retry.BaseBackoff = ms(2);
  W.Client.setRetryPolicy(Retry);
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(FaultWorld &W, ErrorOr<Bytes> &Out) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(9));
      Out = co_await W.Client.callReliable(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_TRUE(Out.hasValue()) << Out.error().str();
  EXPECT_EQ(W.Echo->Calls, 1);
  EXPECT_GE(W.Client.stats().Retries, 1u);
  EXPECT_GE(W.Server.stats().CorruptedDropped, 1u);
}

//===----------------------------------------------------------------------===//
// At-most-once (dedup window)
//===----------------------------------------------------------------------===//

TEST(FaultTest, DedupMakesRetriesAtMostOnce) {
  // Same phase trick as RetryLoopSurvivesLoss: the leading one-way shifts
  // the drop pattern so the first attempt's *reply* is transfer 3 (lost).
  // The server already executed the call, so the retry must not run it a
  // second time: the dedup window resends the cached reply instead.
  FaultWorld W(/*DropEveryNth=*/3);
  RetryPolicy Retry;
  Retry.MaxAttempts = 5;
  Retry.AttemptTimeout = ms(20);
  Retry.BaseBackoff = ms(2);
  W.Client.setRetryPolicy(Retry);
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(FaultWorld &W, ErrorOr<Bytes> &Out) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(42));
      co_await W.Client.callOneWay(1, 1050, "echo", "echo", Payload);
      Out = co_await W.Client.callReliable(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_TRUE(Out.hasValue()) << Out.error().str();
  EXPECT_EQ(serial::encodeValues(static_cast<int32_t>(42)), *Out);
  EXPECT_EQ(W.Echo->Calls, 2) << "one-way + exactly one two-way execution";
  EXPECT_EQ(W.Client.stats().Retries, 1u);
  EXPECT_EQ(W.Server.stats().DedupHits, 1u);
  // The first reply's late arrival (it was dropped here, but in general)
  // must not have been misclassified.
  EXPECT_EQ(W.Client.stats().MalformedDropped, 0u);
}

//===----------------------------------------------------------------------===//
// Fault-plan grammar
//===----------------------------------------------------------------------===//

TEST(FaultTest, FaultPlanParsesAndRoundTrips) {
  ErrorOr<fault::FaultPlan> Plan = fault::FaultPlan::parse(
      "seed(7);dropnth(4);crash(2,10s,20s);partition(0,1,3s,4s);"
      "loss(0.01,0,5s);corrupt(0.001);latency(2ms,1s,2s)");
  ASSERT_TRUE(Plan.hasValue()) << Plan.error().str();
  EXPECT_EQ(Plan->Seed, 7u);
  EXPECT_EQ(Plan->DropEveryNth, 4);
  ASSERT_EQ(Plan->Crashes.size(), 1u);
  EXPECT_EQ(Plan->Crashes[0].Node, 2);
  EXPECT_EQ(Plan->Crashes[0].At, SimTime::seconds(10));
  EXPECT_EQ(Plan->Crashes[0].RestartAt, SimTime::seconds(20));
  ASSERT_EQ(Plan->Partitions.size(), 1u);
  ASSERT_EQ(Plan->Losses.size(), 1u);
  ASSERT_EQ(Plan->Corruptions.size(), 1u);
  ASSERT_EQ(Plan->Latencies.size(), 1u);
  EXPECT_FALSE(Plan->empty());
  // A parsed plan re-renders to a spec that parses to the same plan.
  ErrorOr<fault::FaultPlan> Again = fault::FaultPlan::parse(Plan->str());
  ASSERT_TRUE(Again.hasValue()) << Again.error().str();
  EXPECT_EQ(Again->str(), Plan->str());
}

TEST(FaultTest, FaultPlanRejectsNonsense) {
  EXPECT_FALSE(fault::FaultPlan::parse("loss(1.5)").hasValue());
  EXPECT_FALSE(fault::FaultPlan::parse("crash(-1,10s)").hasValue());
  EXPECT_FALSE(fault::FaultPlan::parse("crash(1,10s,5s)").hasValue());
  EXPECT_FALSE(fault::FaultPlan::parse("partition(0,1,5s,2s)").hasValue());
  EXPECT_FALSE(fault::FaultPlan::parse("wibble(3)").hasValue());
  EXPECT_TRUE(fault::FaultPlan::parse("").hasValue());
  EXPECT_TRUE(fault::FaultPlan::parse("")->empty());
}

} // namespace
