//===- tests/MpiTest.cpp - MPI subset tests -------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "mpi/Mpi.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::mpi;
using namespace parcs::sim;

namespace {

struct MpiFixture {
  MpiFixture(int Nodes, int Ranks, int RanksPerNode = 2)
      : Machines(Nodes, vm::VmKind::NativeCpp), Net(Machines.sim(), Nodes),
        World(Machines, Net, Ranks, RanksPerNode) {}

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  MpiWorld World;
};

Bytes packInt(int32_t Value) { return serial::encodeValues(Value); }

int32_t unpackInt(const Bytes &Data) {
  int32_t Value = -1;
  EXPECT_TRUE(serial::decodeValues(Data, Value));
  return Value;
}

//===----------------------------------------------------------------------===//
// Point to point
//===----------------------------------------------------------------------===//

TEST(MpiTest, SendRecvBetweenNodes) {
  MpiFixture F(2, 2, 1);
  std::vector<int32_t> Got;
  F.World.launch([&Got](MpiComm Comm) -> Task<void> {
    if (Comm.rank() == 0) {
      co_await Comm.send(1, /*Tag=*/7, packInt(41));
    } else {
      RecvResult In = co_await Comm.recv(0, 7);
      Got.push_back(unpackInt(In.Data));
      Got.push_back(In.Source);
      Got.push_back(In.Tag);
    }
  });
  F.sim().run();
  EXPECT_EQ(F.World.finishedRanks(), 2);
  EXPECT_EQ(Got, (std::vector<int32_t>{41, 0, 7}));
}

TEST(MpiTest, TagMatchingIsSelective) {
  // Messages with tag 2 must not satisfy a recv posted for tag 1, even if
  // they arrive first.
  MpiFixture F(2, 2, 1);
  std::vector<int32_t> Order;
  F.World.launch([&Order](MpiComm Comm) -> Task<void> {
    if (Comm.rank() == 0) {
      co_await Comm.send(1, 2, packInt(222));
      co_await Comm.send(1, 1, packInt(111));
    } else {
      RecvResult First = co_await Comm.recv(0, 1);
      RecvResult Second = co_await Comm.recv(0, 2);
      Order.push_back(unpackInt(First.Data));
      Order.push_back(unpackInt(Second.Data));
    }
  });
  F.sim().run();
  EXPECT_EQ(Order, (std::vector<int32_t>{111, 222}));
}

TEST(MpiTest, AnySourceReceivesInArrivalOrder) {
  MpiFixture F(3, 3, 1);
  std::vector<int32_t> Sources;
  F.World.launch([&Sources](MpiComm Comm) -> Task<void> {
    if (Comm.rank() == 0) {
      for (int I = 1; I < Comm.size(); ++I) {
        RecvResult In = co_await Comm.recv(AnySource, 5);
        Sources.push_back(In.Source);
      }
    } else {
      // Rank 2 delays so rank 1's message arrives first.
      if (Comm.rank() == 2)
        co_await Comm.node().sim().delay(SimTime::milliseconds(5));
      co_await Comm.send(0, 5, packInt(Comm.rank()));
    }
  });
  F.sim().run();
  EXPECT_EQ(Sources, (std::vector<int32_t>{1, 2}));
}

TEST(MpiTest, UnexpectedMessagesQueueFifo) {
  MpiFixture F(2, 2, 1);
  std::vector<int32_t> Values;
  F.World.launch([&Values](MpiComm Comm) -> Task<void> {
    if (Comm.rank() == 0) {
      for (int32_t I = 0; I < 4; ++I)
        co_await Comm.send(1, 9, packInt(I));
    } else {
      // Let all four arrive unexpected, then drain.
      co_await Comm.node().sim().delay(SimTime::milliseconds(10));
      for (int I = 0; I < 4; ++I) {
        RecvResult In = co_await Comm.recv(0, 9);
        Values.push_back(unpackInt(In.Data));
      }
    }
  });
  F.sim().run();
  EXPECT_EQ(Values, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(MpiTest, IsendIrecvOverlap) {
  MpiFixture F(2, 2, 1);
  std::vector<int32_t> Got;
  F.World.launch([&Got](MpiComm Comm) -> Task<void> {
    if (Comm.rank() == 0) {
      auto R1 = Comm.isend(1, 1, packInt(10));
      auto R2 = Comm.isend(1, 2, packInt(20));
      (void)co_await R1;
      (void)co_await R2;
    } else {
      auto A = Comm.irecv(0, 2);
      auto B = Comm.irecv(0, 1);
      RecvResult MsgA = co_await A;
      RecvResult MsgB = co_await B;
      Got.push_back(unpackInt(MsgA.Data));
      Got.push_back(unpackInt(MsgB.Data));
    }
  });
  F.sim().run();
  EXPECT_EQ(Got, (std::vector<int32_t>{20, 10}));
}

TEST(MpiTest, RanksOnSameNodeCommunicate) {
  // Two ranks sharing a dual-CPU node (loopback path).
  MpiFixture F(1, 2, 2);
  int32_t Got = -1;
  F.World.launch([&Got](MpiComm Comm) -> Task<void> {
    if (Comm.rank() == 0)
      co_await Comm.send(1, 3, packInt(77));
    else
      Got = unpackInt((co_await Comm.recv(0, 3)).Data);
  });
  F.sim().run();
  EXPECT_EQ(Got, 77);
}

//===----------------------------------------------------------------------===//
// Collectives
//===----------------------------------------------------------------------===//

class MpiCollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(MpiCollectiveTest, BarrierSynchronises) {
  int Ranks = GetParam();
  MpiFixture F((Ranks + 1) / 2, Ranks);
  std::vector<SimTime> After(static_cast<size_t>(Ranks));
  SimTime SlowestEntry;
  F.World.launch([&](MpiComm Comm) -> Task<void> {
    // Each rank arrives at a different time; nobody may leave before the
    // last arrival.
    SimTime Entry = SimTime::milliseconds(Comm.rank() * 3);
    co_await Comm.node().sim().delay(Entry);
    if (Entry > SlowestEntry)
      SlowestEntry = Entry;
    co_await Comm.barrier();
    After[static_cast<size_t>(Comm.rank())] = Comm.node().sim().now();
  });
  F.sim().run();
  EXPECT_EQ(F.World.finishedRanks(), Ranks);
  for (const SimTime &T : After)
    EXPECT_GE(T, SlowestEntry);
}

TEST_P(MpiCollectiveTest, BcastReachesAllRanks) {
  int Ranks = GetParam();
  MpiFixture F((Ranks + 1) / 2, Ranks);
  int Root = Ranks / 3;
  std::vector<int32_t> Got(static_cast<size_t>(Ranks), -1);
  F.World.launch([&, Root](MpiComm Comm) -> Task<void> {
    Bytes Data;
    if (Comm.rank() == Root)
      Data = packInt(1234);
    Bytes Out = co_await Comm.bcast(Root, std::move(Data));
    Got[static_cast<size_t>(Comm.rank())] = unpackInt(Out);
  });
  F.sim().run();
  for (int32_t V : Got)
    EXPECT_EQ(V, 1234);
}

TEST_P(MpiCollectiveTest, ReduceSumsVectors) {
  int Ranks = GetParam();
  MpiFixture F((Ranks + 1) / 2, Ranks);
  std::vector<double> RootResult;
  F.World.launch([&](MpiComm Comm) -> Task<void> {
    std::vector<double> Mine = {1.0, static_cast<double>(Comm.rank())};
    std::vector<double> Out = co_await Comm.reduceSum(0, Mine);
    if (Comm.rank() == 0)
      RootResult = Out;
  });
  F.sim().run();
  ASSERT_EQ(RootResult.size(), 2u);
  EXPECT_DOUBLE_EQ(RootResult[0], static_cast<double>(Ranks));
  EXPECT_DOUBLE_EQ(RootResult[1],
                   static_cast<double>(Ranks * (Ranks - 1)) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiCollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 13));

//===----------------------------------------------------------------------===//
// Latency calibration (the 100 us in-text figure)
//===----------------------------------------------------------------------===//

TEST(MpiCalibrationTest, OneWayLatencyNear100us) {
  MpiFixture F(2, 2, 1);
  double OneWayUs = 0;
  int Rounds = 50;
  F.World.launch([&OneWayUs, Rounds](MpiComm Comm) -> Task<void> {
    Bytes Payload = packInt(1);
    if (Comm.rank() == 0) {
      // Warm-up.
      co_await Comm.send(1, 0, Payload);
      (void)co_await Comm.recv(1, 0);
      SimTime Start = Comm.node().sim().now();
      for (int I = 0; I < Rounds; ++I) {
        co_await Comm.send(1, 0, Payload);
        (void)co_await Comm.recv(1, 0);
      }
      OneWayUs =
          (Comm.node().sim().now() - Start).toMicrosF() / (2.0 * Rounds);
    } else {
      for (int I = 0; I < Rounds + 1; ++I) {
        RecvResult In = co_await Comm.recv(0, 0);
        co_await Comm.send(0, 0, std::move(In.Data));
      }
    }
  });
  F.sim().run();
  EXPECT_NEAR(OneWayUs, 100.0, 15.0);
}

TEST(MpiCalibrationTest, LargeMessageBandwidthNearWireCeiling) {
  MpiFixture F(2, 2, 1);
  double MBps = 0;
  size_t Size = 1 << 20;
  F.World.launch([&MBps, Size](MpiComm Comm) -> Task<void> {
    if (Comm.rank() == 0) {
      Bytes Payload(Size, 0x7e);
      co_await Comm.send(1, 0, Payload); // Warm-up.
      (void)co_await Comm.recv(1, 0);
      SimTime Start = Comm.node().sim().now();
      co_await Comm.send(1, 0, Payload);
      (void)co_await Comm.recv(1, 0);
      double Sec = (Comm.node().sim().now() - Start).toSecondsF() / 2.0;
      MBps = static_cast<double>(Size) / Sec / 1e6;
    } else {
      for (int I = 0; I < 2; ++I) {
        RecvResult In = co_await Comm.recv(0, 0);
        co_await Comm.send(0, 0, Bytes(In.Data.size(), 0));
      }
    }
  });
  F.sim().run();
  // Paper Fig. 8a: MPI approaches (but does not exceed) the ~11.9 MB/s
  // goodput ceiling of 100 Mbit Ethernet.
  EXPECT_GT(MBps, 10.0);
  EXPECT_LT(MBps, 11.9);
}


//===----------------------------------------------------------------------===//
// Extended collectives
//===----------------------------------------------------------------------===//

TEST_P(MpiCollectiveTest, AllreduceGivesEveryRankTheSum) {
  int Ranks = GetParam();
  MpiFixture F((Ranks + 1) / 2, Ranks);
  std::vector<std::vector<double>> PerRank(static_cast<size_t>(Ranks));
  F.World.launch([&](MpiComm Comm) -> Task<void> {
    std::vector<double> Mine = {static_cast<double>(Comm.rank() + 1)};
    PerRank[static_cast<size_t>(Comm.rank())] =
        co_await Comm.allreduceSum(Mine);
  });
  F.sim().run();
  double Expected = Ranks * (Ranks + 1) / 2.0;
  for (const auto &V : PerRank) {
    ASSERT_EQ(V.size(), 1u);
    EXPECT_DOUBLE_EQ(V[0], Expected);
  }
}

TEST_P(MpiCollectiveTest, GatherCollectsPerRankBuffers) {
  int Ranks = GetParam();
  MpiFixture F((Ranks + 1) / 2, Ranks);
  int Root = Ranks - 1;
  std::vector<Bytes> AtRoot;
  F.World.launch([&, Root](MpiComm Comm) -> Task<void> {
    // Variable-size buffers: rank r contributes r+1 bytes of value r.
    Bytes Mine(static_cast<size_t>(Comm.rank() + 1),
               static_cast<uint8_t>(Comm.rank()));
    std::vector<Bytes> All = co_await Comm.gather(Root, std::move(Mine));
    if (Comm.rank() == Root)
      AtRoot = std::move(All);
  });
  F.sim().run();
  ASSERT_EQ(AtRoot.size(), static_cast<size_t>(Ranks));
  for (int R = 0; R < Ranks; ++R) {
    EXPECT_EQ(AtRoot[static_cast<size_t>(R)].size(),
              static_cast<size_t>(R + 1));
    if (!AtRoot[static_cast<size_t>(R)].empty()) {
      EXPECT_EQ(AtRoot[static_cast<size_t>(R)][0],
                static_cast<uint8_t>(R));
    }
  }
}

TEST_P(MpiCollectiveTest, ScatterDealsChunks) {
  int Ranks = GetParam();
  MpiFixture F((Ranks + 1) / 2, Ranks);
  std::vector<Bytes> Got(static_cast<size_t>(Ranks));
  F.World.launch([&](MpiComm Comm) -> Task<void> {
    std::vector<Bytes> Chunks;
    if (Comm.rank() == 0)
      for (int R = 0; R < Comm.size(); ++R)
        Chunks.push_back(Bytes(static_cast<size_t>(R + 2),
                               static_cast<uint8_t>(0x40 + R)));
    Bytes Mine = co_await Comm.scatter(0, std::move(Chunks));
    Got[static_cast<size_t>(Comm.rank())] = std::move(Mine);
  });
  F.sim().run();
  for (int R = 0; R < Ranks; ++R) {
    ASSERT_EQ(Got[static_cast<size_t>(R)].size(),
              static_cast<size_t>(R + 2));
    EXPECT_EQ(Got[static_cast<size_t>(R)][0],
              static_cast<uint8_t>(0x40 + R));
  }
}

TEST(MpiTest, SendRecvExchangesWithoutDeadlock) {
  // Pairwise simultaneous exchange: with naive blocking send+recv this
  // can deadlock; MPI_Sendrecv posts the receive first.
  MpiFixture F(2, 2, 1);
  std::vector<int32_t> Got(2, -1);
  F.World.launch([&Got](MpiComm Comm) -> Task<void> {
    int Peer = 1 - Comm.rank();
    mpi::RecvResult In = co_await Comm.sendRecv(
        Peer, /*SendTag=*/4, packInt(100 + Comm.rank()), Peer,
        /*RecvTag=*/4);
    Got[static_cast<size_t>(Comm.rank())] = unpackInt(In.Data);
  });
  F.sim().run();
  EXPECT_EQ(Got[0], 101);
  EXPECT_EQ(Got[1], 100);
}

TEST(MpiTest, RingAllreducePipelineProgram) {
  // A small "real" MPI program over the extended API: every rank holds a
  // slice of a vector, the group normalises it by the global sum.
  int Ranks = 4;
  MpiFixture F(2, Ranks);
  std::vector<double> Normalised(static_cast<size_t>(Ranks), 0.0);
  F.World.launch([&](MpiComm Comm) -> Task<void> {
    double Mine = static_cast<double>((Comm.rank() + 1) * 10);
    std::vector<double> MineVec = {Mine};
    std::vector<double> Sum =
        co_await Comm.allreduceSum(std::move(MineVec));
    co_await Comm.barrier();
    Normalised[static_cast<size_t>(Comm.rank())] = Mine / Sum[0];
  });
  F.sim().run();
  double Total = 0;
  for (double V : Normalised)
    Total += V;
  EXPECT_NEAR(Total, 1.0, 1e-12);
}

TEST(MpiTest, DeterministicAcrossRuns) {
  auto RunOnce = [] {
    MpiFixture F(3, 6);
    F.World.launch([](MpiComm Comm) -> Task<void> {
      std::vector<double> V = {static_cast<double>(Comm.rank())};
      (void)co_await Comm.reduceSum(0, V);
      co_await Comm.barrier();
      Bytes Blob = {1, 2, 3};
      (void)co_await Comm.bcast(0, std::move(Blob));
    });
    F.sim().run();
    return F.sim().now();
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

} // namespace
