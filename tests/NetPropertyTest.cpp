//===- tests/NetPropertyTest.cpp - fabric property tests ------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical-plausibility properties of the Ethernet model: goodput can
/// never exceed the wire, transfer time is monotone in size, per-pair
/// ordering holds under randomised load, and contention degrades
/// gracefully rather than dropping or duplicating traffic.
///
//===----------------------------------------------------------------------===//

#include "net/Network.h"
#include "support/Random.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include <map>

using namespace parcs;
using namespace parcs::net;
using namespace parcs::sim;

namespace {

//===----------------------------------------------------------------------===//
// Wire-time properties
//===----------------------------------------------------------------------===//

TEST(NetPropertyTest, WireTimeIsMonotoneInSize) {
  Simulator Sim;
  Network Net(Sim, 2);
  SimTime Last;
  for (size_t Size = 0; Size < 64 * 1024; Size += 977) {
    SimTime Now = Net.wireTime(Size);
    EXPECT_GE(Now, Last) << "size " << Size;
    Last = Now;
  }
}

TEST(NetPropertyTest, GoodputNeverExceedsWireRate) {
  Simulator Sim;
  Network Net(Sim, 2);
  Rng R(5);
  for (int Trial = 0; Trial < 200; ++Trial) {
    size_t Size = 1 + R.nextBelow(2 * 1024 * 1024);
    double Seconds = Net.wireTime(Size).toSecondsF();
    double Goodput = static_cast<double>(Size) / Seconds;
    EXPECT_LT(Goodput, 12.5e6) << "goodput above the 100 Mbit wire";
  }
}

TEST(NetPropertyTest, FirstPacketNeverExceedsWholeMessage) {
  Simulator Sim;
  Network Net(Sim, 2);
  for (size_t Size : {0ul, 1ul, 100ul, 1460ul, 1461ul, 100000ul})
    EXPECT_LE(Net.firstPacketTime(Size), Net.wireTime(Size));
}

//===----------------------------------------------------------------------===//
// Randomised traffic: conservation + per-pair FIFO
//===----------------------------------------------------------------------===//

struct TrafficLog {
  /// Per (src, dst): sequence numbers in delivery order.
  std::map<std::pair<int, int>, std::vector<uint32_t>> Delivered;
  uint64_t Total = 0;
};

TrafficLog runRandomTraffic(uint64_t Seed, int Nodes, int Messages,
                            int DropEveryNth = 0) {
  Simulator Sim;
  NetConfig Config;
  Config.DropEveryNth = DropEveryNth;
  Network Net(Sim, Nodes, Config);
  TrafficLog Log;

  // One drain loop per node.
  struct Drain {
    static Task<void> run(Channel<Message> &Port, TrafficLog &Log) {
      for (;;) {
        Message Msg = co_await Port.recv();
        std::vector<uint8_t> &B = Msg.Payload;
        uint32_t Seq = 0;
        if (B.size() >= 4)
          Seq = static_cast<uint32_t>(B[0]) |
                (static_cast<uint32_t>(B[1]) << 8) |
                (static_cast<uint32_t>(B[2]) << 16) |
                (static_cast<uint32_t>(B[3]) << 24);
        Log.Delivered[{Msg.Src, Msg.Dst}].push_back(Seq);
        ++Log.Total;
      }
    }
  };
  for (int N = 0; N < Nodes; ++N)
    Sim.spawn(Drain::run(Net.bind(N, 7), Log));

  // Random senders.  Sequence numbers are assigned at actual send time
  // (after the random delay), so "in order per pair" is exactly the
  // property the fabric promises: delivery order matches send order.
  Rng R(Seed);
  auto NextSeq =
      std::make_shared<std::map<std::pair<int, int>, uint32_t>>();
  struct Sender {
    static Task<void>
    run(Simulator &Sim, Network &Net, int Src, int Dst, size_t Size,
        SimTime At,
        std::shared_ptr<std::map<std::pair<int, int>, uint32_t>> NextSeq) {
      co_await Sim.delay(At);
      uint32_t Seq = (*NextSeq)[{Src, Dst}]++;
      std::vector<uint8_t> Payload(std::max<size_t>(Size, 4));
      Payload[0] = static_cast<uint8_t>(Seq);
      Payload[1] = static_cast<uint8_t>(Seq >> 8);
      Payload[2] = static_cast<uint8_t>(Seq >> 16);
      Payload[3] = static_cast<uint8_t>(Seq >> 24);
      Net.send(Src, Dst, 7, std::move(Payload));
    }
  };
  for (int M = 0; M < Messages; ++M) {
    int Src = static_cast<int>(R.nextBelow(static_cast<uint64_t>(Nodes)));
    int Dst = static_cast<int>(R.nextBelow(static_cast<uint64_t>(Nodes)));
    if (Dst == Src)
      Dst = (Dst + 1) % Nodes;
    size_t Size = 4 + R.nextBelow(20000);
    SimTime At = SimTime::microseconds(
        static_cast<int64_t>(R.nextBelow(30000)));
    Sim.spawn(Sender::run(Sim, Net, Src, Dst, Size, At, NextSeq));
  }
  Sim.run();
  return Log;
}

class NetTrafficTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetTrafficTest, AllMessagesDeliveredExactlyOnceInPairOrder) {
  const int Nodes = 5, Messages = 300;
  TrafficLog Log = runRandomTraffic(GetParam(), Nodes, Messages);
  EXPECT_EQ(Log.Total, static_cast<uint64_t>(Messages));
  for (const auto &[Pair, Seqs] : Log.Delivered) {
    for (size_t I = 1; I < Seqs.size(); ++I)
      EXPECT_EQ(Seqs[I], Seqs[I - 1] + 1)
          << "pair " << Pair.first << "->" << Pair.second
          << " delivered out of order";
  }
}

TEST_P(NetTrafficTest, DeterministicReplay) {
  TrafficLog A = runRandomTraffic(GetParam(), 4, 150);
  TrafficLog B = runRandomTraffic(GetParam(), 4, 150);
  EXPECT_EQ(A.Delivered, B.Delivered);
}

TEST_P(NetTrafficTest, DropInjectionLosesExactlyThePattern) {
  const int Nodes = 4, Messages = 200, DropNth = 5;
  TrafficLog Log = runRandomTraffic(GetParam(), Nodes, Messages, DropNth);
  EXPECT_EQ(Log.Total, static_cast<uint64_t>(Messages - Messages / DropNth));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetTrafficTest,
                         ::testing::Values(17u, 404u, 987654u));

//===----------------------------------------------------------------------===//
// Contention behaviour
//===----------------------------------------------------------------------===//

TEST(NetPropertyTest, ManyToOneIncastSerialisesAtWireRate) {
  // 7 senders blast 100 KB each at node 0 simultaneously: total delivery
  // time must be at least 7 x wireTime (the downlink is the bottleneck)
  // and not much more.
  Simulator Sim;
  Network Net(Sim, 8);
  size_t Size = 100 * 1000;
  int Senders = 7;
  int Received = 0;
  SimTime LastArrival;
  struct Drain {
    static Task<void> run(Channel<Message> &Port, Simulator &Sim,
                          int Expect, int &Received, SimTime &Last) {
      for (int I = 0; I < Expect; ++I) {
        (void)co_await Port.recv();
        ++Received;
        Last = Sim.now();
      }
    }
  };
  Sim.spawn(Drain::run(Net.bind(0, 1), Sim, Senders, Received,
                       LastArrival));
  for (int S = 1; S <= Senders; ++S)
    Net.send(S, 0, 1, std::vector<uint8_t>(Size, 0x11));
  Sim.run();
  EXPECT_EQ(Received, Senders);
  double Floor = Senders * Net.wireTime(Size).toSecondsF();
  EXPECT_GE(LastArrival.toSecondsF(), Floor);
  EXPECT_LT(LastArrival.toSecondsF(), Floor * 1.05);
}

TEST(NetPropertyTest, DisjointPairsDoNotInterfere) {
  // 0->1 and 2->3 are independent full-duplex paths: concurrent transfers
  // complete in the same time as isolated ones.
  auto TransferTime = [](bool Both) {
    Simulator Sim;
    Network Net(Sim, 4);
    size_t Size = 200 * 1000;
    SimTime DoneA;
    // DoneB must outlive Sim.run(): the drain coroutine writes to it when
    // the transfer lands, long after the if-block below has exited.
    SimTime DoneB;
    struct Drain {
      static Task<void> run(Channel<Message> &Port, Simulator &Sim,
                            SimTime &Done) {
        (void)co_await Port.recv();
        Done = Sim.now();
      }
    };
    Sim.spawn(Drain::run(Net.bind(1, 1), Sim, DoneA));
    Net.send(0, 1, 1, std::vector<uint8_t>(Size, 1));
    if (Both) {
      Sim.spawn(Drain::run(Net.bind(3, 1), Sim, DoneB));
      Net.send(2, 3, 1, std::vector<uint8_t>(Size, 2));
    }
    Sim.run();
    return DoneA;
  };
  EXPECT_EQ(TransferTime(false), TransferTime(true));
}

} // namespace
