//===- tests/SupportTest.cpp - support library tests ----------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace parcs;

//===----------------------------------------------------------------------===//
// Error / ErrorOr
//===----------------------------------------------------------------------===//

TEST(ErrorTest, DefaultIsSuccess) {
  Error E;
  EXPECT_FALSE(E);
  EXPECT_EQ(E.code(), ErrorCode::None);
  EXPECT_EQ(E.str(), "success");
}

TEST(ErrorTest, CarriesCodeAndMessage) {
  Error E(ErrorCode::UnknownObject, "no such uri");
  EXPECT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::UnknownObject);
  EXPECT_EQ(E.message(), "no such uri");
  EXPECT_EQ(E.str(), "unknown object: no such uri");
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (int Code = 0; Code <= static_cast<int>(ErrorCode::TimedOut); ++Code)
    EXPECT_NE(errorCodeName(static_cast<ErrorCode>(Code)), nullptr);
}

TEST(ErrorOrTest, HoldsValue) {
  ErrorOr<int> Value(42);
  ASSERT_TRUE(Value);
  EXPECT_EQ(*Value, 42);
  EXPECT_EQ(Value.take(), 42);
}

TEST(ErrorOrTest, HoldsError) {
  ErrorOr<int> Failed(ErrorCode::MalformedMessage, "truncated");
  EXPECT_FALSE(Failed);
  EXPECT_EQ(Failed.error().code(), ErrorCode::MalformedMessage);
}

TEST(ErrorOrTest, MovesNonCopyableValues) {
  ErrorOr<std::unique_ptr<int>> Value(std::make_unique<int>(7));
  ASSERT_TRUE(Value);
  std::unique_ptr<int> Taken = Value.take();
  EXPECT_EQ(*Taken, 7);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng R(99);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(5);
  for (int I = 0; I < 1000; ++I) {
    double X = R.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t X = R.nextInRange(-3, 3);
    EXPECT_GE(X, -3);
    EXPECT_LE(X, 3);
    SawLo |= X == -3;
    SawHi |= X == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.variance(), 4.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 2.0);
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(SampleSetTest, PercentilesInterpolate) {
  SampleSet S;
  for (int I = 1; I <= 100; ++I)
    S.add(static_cast<double>(I));
  EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(100), 100.0);
  EXPECT_NEAR(S.median(), 50.5, 1e-9);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet S;
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(S.percentile(99), 3.5);
}

TEST(SampleSetTest, UnsortedInsertOrder) {
  SampleSet S;
  for (double X : {9.0, 1.0, 5.0, 3.0, 7.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(100), 9.0);
  EXPECT_DOUBLE_EQ(S.median(), 5.0);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, SplitBasic) {
  auto Parts = splitString("a,b,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StringUtilsTest, SplitKeepsEmptyParts) {
  auto Parts = splitString("a,,c,", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[3], "");
}

TEST(StringUtilsTest, SplitEmptyString) {
  auto Parts = splitString("", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  hi \t\n"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("x"), "x");
}

TEST(StringUtilsTest, PrefixSuffix) {
  EXPECT_TRUE(startsWith("tcp://host", "tcp://"));
  EXPECT_FALSE(startsWith("tc", "tcp://"));
  EXPECT_TRUE(endsWith("file.pci", ".pci"));
  EXPECT_FALSE(endsWith("pci", ".pci"));
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
  EXPECT_EQ(joinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilsTest, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(1536), "1.5 KB");
  EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.0 MB");
}
