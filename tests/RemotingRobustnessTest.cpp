//===- tests/RemotingRobustnessTest.cpp - hostile-input robustness --------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RPC engine against hostile/corrupt traffic: garbage datagrams,
/// truncated envelopes, wrong formats, unknown call ids -- the endpoint
/// must count and drop them and keep serving.  Plus coverage of endpoint
/// introspection (stats, findPublished) and delegate completion states.
///
//===----------------------------------------------------------------------===//

#include "remoting/Remoting.h"
#include "support/Random.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::remoting;
using namespace parcs::sim;

namespace {

class EchoHandler : public CallHandler {
public:
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method != "echo")
      co_return Error(ErrorCode::UnknownMethod, std::string(Method));
    co_return Bytes(Args);
  }
};

struct RobustWorld {
  RobustWorld()
      : Machines(2, vm::VmKind::MonoVm117), Net(Machines.sim(), 2),
        Client(Machines.node(0), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050),
        Server(Machines.node(1), Net,
               stackProfile(StackKind::MonoRemotingTcp117), 1050) {
    Server.publish("echo", std::make_shared<EchoHandler>());
  }

  Simulator &sim() { return Machines.sim(); }

  /// One good round trip; returns true on success.
  bool roundTrip() {
    bool Ok = false;
    struct Proc {
      static Task<void> run(RobustWorld &W, bool &Ok) {
        Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
        ErrorOr<Bytes> Out =
            co_await W.Client.call(1, 1050, "echo", "echo", Payload);
        Ok = Out.hasValue();
      }
    };
    sim().spawn(Proc::run(*this, Ok));
    sim().run();
    return Ok;
  }

  vm::Cluster Machines;
  net::Network Net;
  RpcEndpoint Client;
  RpcEndpoint Server;
};

TEST(RemotingRobustnessTest, GarbageDatagramsAreCountedAndDropped) {
  RobustWorld W;
  Rng R(99);
  for (int I = 0; I < 20; ++I) {
    std::vector<uint8_t> Junk(R.nextBelow(64));
    for (uint8_t &B : Junk)
      B = static_cast<uint8_t>(R.nextBelow(256));
    W.Net.send(0, 1, 1050, std::move(Junk));
  }
  W.sim().run();
  EXPECT_EQ(W.Server.stats().CallsHandled, 0u);
  EXPECT_EQ(W.Server.stats().MalformedDropped, 20u);
  // The endpoint must still serve real traffic afterwards.
  EXPECT_TRUE(W.roundTrip());
}

TEST(RemotingRobustnessTest, TruncatedCallEnvelopeIsDropped) {
  RobustWorld W;
  // Build a real call wire image, then truncate it at various points.
  struct Proc {
    static Task<void> run(RobustWorld &W) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(7));
      (void)co_await W.Client.call(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  uint64_t DroppedBefore = W.Server.stats().MalformedDropped;
  // A valid-looking but truncated NetBinary envelope with the call kind
  // byte.
  Bytes Wire = serial::encodeEnvelope(serial::WireFormat::NetBinary, "m",
                                      serial::encodeValues(
                                          static_cast<uint64_t>(42)));
  Wire.insert(Wire.begin(), 0xC1); // KindCall.
  Wire.resize(Wire.size() / 2);
  W.Net.send(0, 1, 1050, std::move(Wire));
  W.sim().run();
  EXPECT_GT(W.Server.stats().MalformedDropped, DroppedBefore);
  EXPECT_TRUE(W.roundTrip());
}

TEST(RemotingRobustnessTest, BogusReturnForUnknownCallIdIsDropped) {
  RobustWorld W;
  // Forge a return message with a call id nobody issued.
  serial::OutputArchive Body;
  Body.write(static_cast<uint64_t>(0xdeadbeef)); // CallId.
  Body.write(static_cast<uint8_t>(0));           // StatusOk.
  Bytes Envelope = serial::encodeEnvelope(serial::WireFormat::NetBinary,
                                          "ret", Body.bytes());
  Bytes Wire;
  Wire.push_back(0xC2); // KindReturn.
  Wire.insert(Wire.end(), Envelope.begin(), Envelope.end());
  W.Net.send(1, 0, 1050, std::move(Wire));
  W.sim().run();
  EXPECT_EQ(W.Client.stats().MalformedDropped, 1u);
  EXPECT_TRUE(W.roundTrip());
}

TEST(RemotingRobustnessTest, WrongFormatTrafficIsRejected) {
  // A SOAP envelope arriving at a binary-formatter endpoint must not
  // crash or dispatch.
  RobustWorld W;
  Bytes Envelope = serial::encodeEnvelope(serial::WireFormat::NetSoap,
                                          "call", {1, 2, 3});
  Bytes Wire;
  Wire.push_back(0xC1);
  Wire.insert(Wire.end(), Envelope.begin(), Envelope.end());
  W.Net.send(0, 1, 1050, std::move(Wire));
  W.sim().run();
  // The message reaches dispatch (CallsHandled counts dispatched work)
  // but decoding fails and nothing executes.
  EXPECT_GE(W.Server.stats().MalformedDropped, 1u);
  EXPECT_TRUE(W.roundTrip());
}

TEST(RemotingRobustnessTest, FindPublishedSeesLiveObjects) {
  RobustWorld W;
  EXPECT_NE(W.Server.findPublished("echo"), nullptr);
  EXPECT_EQ(W.Server.findPublished("nope"), nullptr);
  // Well-known singletons materialise on first call.
  vm::Node &Node = W.Machines.node(1);
  W.Server.publishWellKnown(
      "lazy", [&Node] { return std::make_shared<EchoHandler>(); },
      WellKnownObjectMode::Singleton);
  EXPECT_EQ(W.Server.findPublished("lazy"), nullptr);
  struct Proc {
    static Task<void> run(RobustWorld &W) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(1));
      (void)co_await W.Client.call(1, 1050, "lazy", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_NE(W.Server.findPublished("lazy"), nullptr);
}

TEST(RemotingRobustnessTest, StatsAccumulateAcrossTraffic) {
  RobustWorld W;
  struct Proc {
    static Task<void> run(RobustWorld &W) {
      Bytes Payload = serial::encodeValues(static_cast<int32_t>(3));
      for (int I = 0; I < 4; ++I)
        (void)co_await W.Client.call(1, 1050, "echo", "echo", Payload);
      for (int I = 0; I < 2; ++I)
        co_await W.Client.callOneWay(1, 1050, "echo", "echo", Payload);
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_EQ(W.Client.stats().CallsIssued, 4u);
  EXPECT_EQ(W.Client.stats().RepliesReceived, 4u);
  EXPECT_EQ(W.Client.stats().OneWaySent, 2u);
  EXPECT_EQ(W.Server.stats().CallsHandled, 6u);
  EXPECT_GT(W.Client.stats().WireBytesSent, 0u);
  EXPECT_GT(W.Server.stats().WireBytesSent, 0u);
}

TEST(RemotingRobustnessTest, DelegateCompletionStateTransitions) {
  RobustWorld W;
  struct Proc {
    static Task<void> run(RobustWorld &W) {
      auto Handle = getObject(W.Client, "tcp://node1:1050/echo");
      EXPECT_TRUE(Handle.hasValue());
      std::vector<int32_t> Data = {1, 2, 3};
      auto Result = beginInvoke<std::vector<int32_t>>(W.sim(), *Handle,
                                                      "echo", Data);
      EXPECT_FALSE(Result.isCompleted());
      auto Out = co_await Result;
      EXPECT_TRUE(Result.isCompleted());
      EXPECT_TRUE(Out.hasValue());
      if (Out) {
        EXPECT_EQ(*Out, Data);
      }
      // EndInvoke twice is legal on an IAsyncResult-like future.
      auto Again = co_await Result;
      EXPECT_TRUE(Again.hasValue());
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(RemotingRobustnessTest, DelegateErrorsPropagateThroughEndInvoke) {
  RobustWorld W;
  struct Proc {
    static Task<void> run(RobustWorld &W) {
      auto Handle = getObject(W.Client, "tcp://node1:1050/echo");
      auto Result =
          beginInvoke<int32_t>(W.sim(), *Handle, "noSuchMethod");
      auto Out = co_await Result;
      EXPECT_FALSE(Out.hasValue());
      if (!Out) {
        EXPECT_EQ(Out.error().code(), ErrorCode::UnknownMethod);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

} // namespace
