//===- tests/TelemetryTest.cpp - In-band telemetry plane ------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The live telemetry plane end to end: spec/SLO grammar parsing, cluster
// series assembled from in-band snapshots, the determinism contract (the
// export and the SLO breach timeline are byte-identical across PDES
// thread counts and across repeated runs), SLO breach/recover edges, the
// crash flight recorder, and the parcs_top rendering.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"
#include "fault/Injector.h"
#include "net/Network.h"
#include "net/PdesFabric.h"
#include "sim/ParallelExecutor.h"
#include "support/Metrics.h"
#include "support/PostMortem.h"
#include "support/TelemetrySink.h"
#include "support/Trace.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Slo.h"
#include "telemetry/Telemetry.h"
#include "telemetry/TopReport.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace parcs;

namespace {

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

TEST(SloSpecTest, ParsesTheDocumentedForm) {
  telemetry::SloSpec S;
  ASSERT_TRUE(telemetry::parseSloSpec(
      "slo(rpc.call.latency, p99 < 2ms, window=100ms)", S));
  EXPECT_EQ(S.Series, "rpc.call.latency");
  EXPECT_EQ(S.Percentile, 99.0);
  EXPECT_EQ(S.ThresholdNs, 2'000'000);
  EXPECT_EQ(S.WindowNs, 100'000'000);
  EXPECT_FALSE(S.Text.empty());

  ASSERT_TRUE(telemetry::parseSloSpec(
      "slo(app.round.latency, p99.9 < 750us, window=10ms)", S));
  EXPECT_EQ(S.Series, "app.round.latency");
  EXPECT_EQ(S.Percentile, 99.9);
  EXPECT_EQ(S.ThresholdNs, 750'000);
}

TEST(SloSpecTest, RejectsMalformedSpecs) {
  telemetry::SloSpec S;
  EXPECT_FALSE(telemetry::parseSloSpec("p99 < 2ms", S)) << "missing wrapper";
  EXPECT_FALSE(telemetry::parseSloSpec("slo(x, q99 < 2ms, window=1ms)", S));
  EXPECT_FALSE(telemetry::parseSloSpec("slo(x, p101 < 2ms, window=1ms)", S));
  EXPECT_FALSE(telemetry::parseSloSpec("slo(x, p99 < 0, window=1ms)", S));
  EXPECT_FALSE(telemetry::parseSloSpec("slo(x, p99 < 2ms)", S))
      << "window clause is mandatory";
  EXPECT_FALSE(telemetry::parseSloSpec("slo(, p99 < 2ms, window=1ms)", S));
}

TEST(SloSpecTest, ParsesSemicolonSeparatedLists) {
  std::vector<telemetry::SloSpec> Out;
  ASSERT_TRUE(telemetry::parseSloSpecs(
      "slo(a, p50 < 1ms, window=5ms); slo(b, p99 < 2us, window=10us)", Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Series, "a");
  EXPECT_EQ(Out[1].Series, "b");

  // A bad entry anywhere rejects the list and leaves Out unchanged.
  std::string Bad;
  EXPECT_FALSE(telemetry::parseSloSpecs(
      "slo(a, p50 < 1ms, window=5ms); nonsense", Out, &Bad));
  EXPECT_EQ(Out.size(), 2u);
  EXPECT_FALSE(Bad.empty());
}

TEST(TelemetrySpecTest, ParsesPathAndOptions) {
  telemetry::TelemetrySpec S;
  ASSERT_TRUE(telemetry::parseTelemetrySpec("tele.json", S));
  EXPECT_EQ(S.Path, "tele.json");
  EXPECT_EQ(S.WindowNs, 1'000'000);
  EXPECT_EQ(S.FlushNs, 0);
  EXPECT_EQ(S.CollectorNode, 0);

  ASSERT_TRUE(telemetry::parseTelemetrySpec(
      "t.json,window=2ms,flush=4ms,collector=1,port=800", S));
  EXPECT_EQ(S.WindowNs, 2'000'000);
  EXPECT_EQ(S.FlushNs, 4'000'000);
  EXPECT_EQ(S.CollectorNode, 1);
  EXPECT_EQ(S.Port, 800);

  // The slo() value contains commas; the paren-aware splitter must keep
  // them inside the option instead of splitting the spec apart.
  ASSERT_TRUE(telemetry::parseTelemetrySpec(
      "t.json,slo=slo(rpc.call.latency, p99 < 2ms, window=100ms),window=1ms",
      S));
  ASSERT_EQ(S.Slos.size(), 1u);
  EXPECT_EQ(S.Slos[0].Series, "rpc.call.latency");
  EXPECT_EQ(S.WindowNs, 1'000'000);
}

TEST(TelemetrySpecTest, NamesTheBadToken) {
  telemetry::TelemetrySpec S;
  std::string Bad;
  EXPECT_FALSE(telemetry::parseTelemetrySpec("", S, &Bad));
  EXPECT_EQ(Bad, "<empty path>");
  EXPECT_FALSE(telemetry::parseTelemetrySpec("t.json,window=0", S, &Bad));
  EXPECT_EQ(Bad, "window=0");
  EXPECT_FALSE(telemetry::parseTelemetrySpec("t.json,bogus=1", S, &Bad));
  EXPECT_EQ(Bad, "bogus=1");
  EXPECT_FALSE(telemetry::parseTelemetrySpec("t.json,port=0", S, &Bad));
  EXPECT_EQ(Bad, "port=0");
  EXPECT_FALSE(telemetry::parseTelemetrySpec(
      "t.json,slo=slo(x, p99 < 2ms)", S, &Bad));
  EXPECT_EQ(Bad, "slo=slo(x, p99 < 2ms)");
}

//===----------------------------------------------------------------------===//
// Cluster series over a serial fabric
//===----------------------------------------------------------------------===//

/// Eight nodes, each recording one latency sample per microsecond-spaced
/// tick into "tick.latency" plus a "tick.count" counter; values are a pure
/// function of (node, tick) so totals are predictable.
void runTickWorkload(net::Network &Net) {
  struct Driver {
    static sim::Task<void> ticks(net::Network &Net, int Node) {
      for (int T = 0; T < 12; ++T) {
        co_await Net.sim().delay(sim::SimTime::microseconds(1));
        int64_t Now = Net.sim().now().nanosecondsCount();
        telemetry::count(Node, "tick.count", Now);
        telemetry::record(Node, "tick.latency", Now,
                          1000 + Node * 100 + T * 10);
      }
    }
  };
  for (int N = 0; N < Net.nodeCount(); ++N)
    Net.sim().spawn(Driver::ticks(Net, N));
  Net.sim().run();
}

TEST(TelemetryPlaneTest, AssemblesClusterSeriesInBand) {
  vm::Cluster Machines(8, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 8);
  telemetry::TelemetrySpec Spec;
  Spec.WindowNs = 4000; // 4us windows over a ~12us run.
  telemetry::Plane Plane(Net, Spec);
  runTickWorkload(Net);
  std::string Json = Plane.exportJson();

  // Snapshots actually crossed the fabric as framed messages.
  EXPECT_GT(Plane.snapshotsReceived(), 0u);
  EXPECT_EQ(Plane.corruptSnapshots(), 0u);
  EXPECT_GT(Net.wireBytesCarried(), 0u);

  // All 96 records of each kind survive the window/merge pipeline.
  EXPECT_NE(Json.find("\"tick.count\""), std::string::npos);
  EXPECT_NE(Json.find("\"tick.latency\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\": \"counter\""), std::string::npos);
  uint64_t CounterTotal = 0, HistTotal = 0;
  // Count "n": occurrences per series block by scanning between markers.
  size_t CountPos = Json.find("\"tick.count\"");
  size_t LatPos = Json.find("\"tick.latency\"");
  ASSERT_NE(CountPos, std::string::npos);
  ASSERT_NE(LatPos, std::string::npos);
  auto SumN = [&](size_t From, size_t To) {
    uint64_t Sum = 0;
    for (size_t P = Json.find("\"n\": ", From);
         P != std::string::npos && P < To; P = Json.find("\"n\": ", P + 1))
      Sum += std::strtoull(Json.c_str() + P + 5, nullptr, 10);
    return Sum;
  };
  size_t End = Json.find("\"slos\"");
  if (CountPos < LatPos) {
    CounterTotal = SumN(CountPos, LatPos);
    HistTotal = SumN(LatPos, End);
  } else {
    HistTotal = SumN(LatPos, CountPos);
    CounterTotal = SumN(CountPos, End);
  }
  EXPECT_EQ(CounterTotal, 96u) << "12 ticks x 8 nodes";
  EXPECT_EQ(HistTotal, 96u);
}

TEST(TelemetryPlaneTest, RepeatedRunsExportIdenticalJson) {
  auto RunOnce = [] {
    vm::Cluster Machines(8, vm::VmKind::MonoVm117);
    net::Network Net(Machines.sim(), 8);
    telemetry::TelemetrySpec Spec;
    Spec.WindowNs = 4000;
    telemetry::Plane Plane(Net, Spec);
    runTickWorkload(Net);
    return Plane.exportJson();
  };
  std::string First = RunOnce();
  std::string Second = RunOnce();
  EXPECT_FALSE(First.empty());
  EXPECT_EQ(First, Second);
}

//===----------------------------------------------------------------------===//
// PDES: byte-identity across thread counts
//===----------------------------------------------------------------------===//

/// The PdesTest farm shape with telemetry instrumentation: master scatters
/// tasks, workers record per-task latency on their own node.  Returns the
/// plane's export (and, via \p TraceJson, the trace with the slo.breach
/// instants) for byte-comparison across thread counts.
std::string farmTelemetryAt(int Threads, std::string *TraceJson) {
  trace::reset();
  trace::setEnabled(true);
  constexpr int Nodes = 8;
  constexpr int TaskPort = 7100;
  net::NetConfig Cfg;

  sim::PdesConfig PC;
  PC.Partitions = 4;
  PC.Threads = Threads;
  PC.LookaheadNs = net::PdesFabric::lookaheadNs(Cfg);
  sim::ParallelExecutor Exec(PC);
  net::PdesFabric Fab(Exec, Nodes, Cfg);

  telemetry::TelemetrySpec Spec;
  Spec.WindowNs = 10'000; // 10us windows.
  telemetry::SloSpec Slo;
  // Worker "shade" latency is 3..7us; a 5us p99 threshold over a 20us SLO
  // window produces real breach edges as slow tasks cluster.
  EXPECT_TRUE(telemetry::parseSloSpec(
      "slo(task.latency, p99 < 5us, window=20us)", Slo));
  Spec.Slos.push_back(Slo);
  telemetry::Plane Plane(Fab, Spec);

  std::vector<sim::Channel<net::Message> *> WorkerIn(Nodes);
  for (int W = 1; W < Nodes; ++W)
    WorkerIn[W] = &Fab.bind(W, TaskPort);

  struct Drivers {
    static sim::Task<void> master(net::PdesFabric &Fab, int TaskPort) {
      int Workers = Fab.nodeCount() - 1;
      for (uint32_t T = 0; T < 42; ++T) {
        Fab.send(0, 1 + int(T) % Workers, TaskPort,
                 {uint8_t(T), uint8_t(T >> 8), 0, 0});
        co_await Fab.simOf(0).delay(sim::SimTime::microseconds(1));
      }
    }
    static sim::Task<void> worker(net::PdesFabric &Fab, int W,
                                  sim::Channel<net::Message> &In) {
      while (true) {
        net::Message Msg = co_await In.recv();
        uint32_t T = uint32_t(Msg.Payload[0]) | (uint32_t(Msg.Payload[1]) << 8);
        int64_t Start = Fab.simOf(W).now().nanosecondsCount();
        co_await Fab.simOf(W).delay(
            sim::SimTime::microseconds(int64_t(3 + T % 5)));
        int64_t Now = Fab.simOf(W).now().nanosecondsCount();
        telemetry::count(W, "task.done", Now);
        telemetry::record(W, "task.latency", Now, Now - Start);
      }
    }
  };

  Fab.simOf(0).spawn(Drivers::master(Fab, TaskPort));
  for (int W = 1; W < Nodes; ++W)
    Fab.simOf(W).spawn(Drivers::worker(Fab, W, *WorkerIn[size_t(W)]));

  Exec.run();
  std::string Json = Plane.exportJson();
  if (TraceJson)
    *TraceJson = trace::exportJson();
  trace::setEnabled(false);
  trace::reset();
  return Json;
}

TEST(TelemetryPdesTest, ExportByteIdenticalAcrossThreadCounts) {
  std::string BaseTrace;
  std::string Base = farmTelemetryAt(1, &BaseTrace);
  EXPECT_NE(Base.find("task.latency"), std::string::npos);
  EXPECT_NE(Base.find("task.done"), std::string::npos);
  for (int Threads : {2, 4, 8}) {
    std::string Trace;
    std::string Json = farmTelemetryAt(Threads, &Trace);
    EXPECT_EQ(Json, Base) << "telemetry export diverged at Threads="
                          << Threads;
    EXPECT_EQ(Trace, BaseTrace) << "trace (slo instants) diverged at Threads="
                                << Threads;
  }
  // Repeated run at the same thread count is also bit-identical.
  std::string Again = farmTelemetryAt(1, nullptr);
  EXPECT_EQ(Again, Base);
}

//===----------------------------------------------------------------------===//
// SLO breach and recovery
//===----------------------------------------------------------------------===//

TEST(TelemetrySloTest, BreachAndRecoverEdgesFire) {
  vm::Cluster Machines(2, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 2);
  telemetry::TelemetrySpec Spec;
  Spec.WindowNs = 1000;
  telemetry::SloSpec Slo;
  ASSERT_TRUE(telemetry::parseSloSpec(
      "slo(op.latency, p99 < 500ns, window=2us)", Slo));
  Spec.Slos.push_back(Slo);
  telemetry::Plane Plane(Net, Spec);

  struct Driver {
    // Slow (5000ns) samples for 6us, then fast (100ns) for another 10us:
    // the p99-over-2us burns through the threshold, then recovers once
    // the slow windows age out of the SLO span.
    static sim::Task<void> run(net::Network &Net) {
      for (int T = 0; T < 16; ++T) {
        co_await Net.sim().delay(sim::SimTime::nanoseconds(1000));
        int64_t Now = Net.sim().now().nanosecondsCount();
        telemetry::record(1, "op.latency", Now, T < 6 ? 5000 : 100);
      }
    }
  };
  Net.sim().spawn(Driver::run(Net));
  Net.sim().run();
  std::string Json = Plane.exportJson();

  EXPECT_NE(Json.find("\"kind\": \"breach\""), std::string::npos)
      << "expected a breach edge:\n"
      << Json;
  EXPECT_NE(Json.find("\"kind\": \"recover\""), std::string::npos)
      << "expected a recover edge once fast samples displace slow ones:\n"
      << Json;
  // Both burn counters moved off zero.
  EXPECT_EQ(Json.find("\"fast_burn_windows\": 0,"), std::string::npos) << Json;
  EXPECT_EQ(Json.find("\"slow_burn_windows\": 0,"), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, CrashWritesPostMortemDump) {
  std::string Path = testing::TempDir() + "parcs_flight_dump.json";
  std::remove(Path.c_str());
  {
    telemetry::FlightRecorder Flight(Path, /*RingEvents=*/64);
    vm::Cluster Machines(2, vm::VmKind::MonoVm117);
    net::Network Net(Machines.sim(), 2);
    ErrorOr<fault::FaultPlan> Plan = fault::FaultPlan::parse("crash(1,5us)");
    ASSERT_TRUE(Plan.hasValue()) << Plan.error().str();
    fault::Injector Chaos(Machines.sim(), *Plan);
    Chaos.attach(Machines, Net);

    struct Driver {
      static sim::Task<void> run(net::Network &Net) {
        for (int T = 0; T < 10; ++T) {
          co_await Net.sim().delay(sim::SimTime::microseconds(1));
          trace::instant(0, 0, "tick", Net.sim().now().nanosecondsCount());
        }
      }
    };
    Net.sim().spawn(Driver::run(Net));
    Net.sim().run();
    EXPECT_EQ(Flight.dumps(), 1u) << "the fault-plan crash must fire the "
                                     "postmortem hook exactly once";
  }

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "dump file missing: " << Path;
  std::string Body;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Body.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());

  EXPECT_NE(Body.find("\"reason\": \"crash\""), std::string::npos);
  EXPECT_NE(Body.find("\"node\": 1"), std::string::npos);
  EXPECT_NE(Body.find("\"trace\""), std::string::npos);
  EXPECT_NE(Body.find("\"metrics\""), std::string::npos);
  // The flight tail captured the pre-crash ticks without full tracing on.
  EXPECT_NE(Body.find("\"tick\""), std::string::npos);
}

TEST(FlightRecorderTest, RetryExhaustionFiresToo) {
  // The postmortem hook is not crash-only: a handler sees retry
  // exhaustion from the remoting engine as well.  Unit-check the hook
  // contract directly (the engine path is exercised in FaultTest).
  struct Capture {
    std::string Reason;
    int Node = -1;
    int64_t AtNs = -1;
  } Got;
  postmortem::setHandler(
      [](void *Self, const char *Reason, int Node, int64_t AtNs) {
        auto *C = static_cast<Capture *>(Self);
        C->Reason = Reason;
        C->Node = Node;
        C->AtNs = AtNs;
      },
      &Got);
  postmortem::fire("retries_exhausted", 3, 12345);
  postmortem::clearHandler(&Got);
  EXPECT_EQ(Got.Reason, "retries_exhausted");
  EXPECT_EQ(Got.Node, 3);
  EXPECT_EQ(Got.AtNs, 12345);
  // Cleared: firing again is a no-op.
  postmortem::fire("crash", 0, 1);
  EXPECT_EQ(Got.Reason, "retries_exhausted");
}

//===----------------------------------------------------------------------===//
// parcs_top rendering
//===----------------------------------------------------------------------===//

TEST(TopReportTest, RendersTablesAndTimeline) {
  vm::Cluster Machines(8, vm::VmKind::MonoVm117);
  net::Network Net(Machines.sim(), 8);
  telemetry::TelemetrySpec Spec;
  Spec.WindowNs = 4000;
  telemetry::SloSpec Slo;
  ASSERT_TRUE(telemetry::parseSloSpec(
      "slo(tick.latency, p99 < 1200ns, window=8us)", Slo));
  Spec.Slos.push_back(Slo);
  telemetry::Plane Plane(Net, Spec);
  runTickWorkload(Net);
  std::string Json = Plane.exportJson();

  std::string Report;
  ASSERT_TRUE(telemetry::renderTopReport(Json, Report)) << Report;
  EXPECT_NE(Report.find("tick.latency"), std::string::npos);
  EXPECT_NE(Report.find("tick.count"), std::string::npos);
  EXPECT_NE(Report.find("p99"), std::string::npos);
  EXPECT_NE(Report.find("p999"), std::string::npos);
  EXPECT_NE(Report.find("SLO timeline"), std::string::npos);
  EXPECT_NE(Report.find("BREACH"), std::string::npos)
      << "node 7 latencies (>= 1700ns) must breach the 1200ns p99:\n"
      << Report;

  std::string Diag;
  EXPECT_FALSE(telemetry::renderTopReport("not json", Diag));
  EXPECT_FALSE(telemetry::renderTopReport("{\"other\": 1}", Diag));
}

} // namespace
