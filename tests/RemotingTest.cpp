//===- tests/RemotingTest.cpp - RPC engine + C# facade tests --------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "remoting/Engine.h"
#include "remoting/Remoting.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

using namespace parcs;
using namespace parcs::remoting;
using namespace parcs::sim;

namespace {

SimTime us(int64_t N) { return SimTime::microseconds(N); }

/// The paper's Fig. 2 example: a divide server, plus a stateful counter to
/// observe Singleton/SingleCall semantics.
class DivideServer : public CallHandler {
public:
  explicit DivideServer(vm::Node &Host) : Host(Host) {}

  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    if (Method == "divide") {
      double A = 0, B = 0;
      if (!serial::decodeValues(Args, A, B))
        co_return Error(ErrorCode::MalformedMessage, "divide args");
      co_await Host.compute(us(1));
      co_return serial::encodeValues(A / B);
    }
    if (Method == "bump") {
      ++Count;
      co_return serial::encodeValues(Count);
    }
    if (Method == "burn") {
      int64_t Millis = 0;
      if (!serial::decodeValues(Args, Millis))
        co_return Error(ErrorCode::MalformedMessage, "burn args");
      co_await Host.compute(SimTime::milliseconds(Millis));
      co_return serial::encodeValues(Unit());
    }
    if (Method == "oneWayNote") {
      int32_t Value = 0;
      if (!serial::decodeValues(Args, Value))
        co_return Error(ErrorCode::MalformedMessage, "note args");
      Notes.push_back(Value);
      co_return Bytes{};
    }
    co_return Error(ErrorCode::UnknownMethod, std::string(Method));
  }

  int32_t Count = 0;
  std::vector<int32_t> Notes;

private:
  vm::Node &Host;
};

/// A two-node world with one endpoint per node.
struct World {
  explicit World(StackKind Stack = StackKind::MonoRemotingTcp117,
                 int Nodes = 2, int Workers = 0)
      : Machines(Nodes, vm::VmKind::MonoVm117),
        Net(Machines.sim(), Nodes) {
    for (int I = 0; I < Nodes; ++I)
      Endpoints.push_back(std::make_unique<RpcEndpoint>(
          Machines.node(I), Net, stackProfile(Stack), 1050, Workers));
  }

  Simulator &sim() { return Machines.sim(); }
  RpcEndpoint &ep(int I) { return *Endpoints[static_cast<size_t>(I)]; }

  vm::Cluster Machines;
  net::Network Net;
  std::vector<std::unique_ptr<RpcEndpoint>> Endpoints;
};

//===----------------------------------------------------------------------===//
// URI parsing
//===----------------------------------------------------------------------===//

TEST(UriTest, ParsesTcp) {
  auto U = parseObjectUri("tcp://node2:1050/DivideServer");
  ASSERT_TRUE(U);
  EXPECT_EQ(U->Channel, ChannelKind::Tcp);
  EXPECT_EQ(U->Node, 2);
  EXPECT_EQ(U->Port, 1050);
  EXPECT_EQ(U->Name, "DivideServer");
}

TEST(UriTest, ParsesHttpAndLocalhost) {
  auto U = parseObjectUri("http://localhost:8080/factory.soap");
  ASSERT_TRUE(U);
  EXPECT_EQ(U->Channel, ChannelKind::Http);
  EXPECT_EQ(U->Node, 0);
  EXPECT_EQ(U->Name, "factory.soap");
}

TEST(UriTest, RejectsMalformed) {
  EXPECT_FALSE(parseObjectUri("ftp://node1:1/x").hasValue());
  EXPECT_FALSE(parseObjectUri("tcp://node1/x").hasValue());
  EXPECT_FALSE(parseObjectUri("tcp://node1:abc/x").hasValue());
  EXPECT_FALSE(parseObjectUri("tcp://node1:99").hasValue());
  EXPECT_FALSE(parseObjectUri("tcp://box:99/x").hasValue());
  EXPECT_FALSE(parseObjectUri("tcp://nodeX:99/x").hasValue());
}

TEST(UriTest, RoundTripsThroughMake) {
  std::string Uri = makeObjectUri(ChannelKind::Tcp, 3, 1050, "Prime");
  EXPECT_EQ(Uri, "tcp://node3:1050/Prime");
  auto U = parseObjectUri(Uri);
  ASSERT_TRUE(U);
  EXPECT_EQ(U->Node, 3);
}

//===----------------------------------------------------------------------===//
// Basic calls
//===----------------------------------------------------------------------===//

Task<void> divideOnce(World &W, double A, double B, ErrorOr<double> &Out) {
  auto Handle = getObject(W.ep(0), "tcp://node1:1050/DivideServer");
  EXPECT_TRUE(Handle.hasValue());
  if (!Handle)
    co_return;
  Out = co_await Handle->invokeTyped<double>("divide", A, B);
}

TEST(RemotingTest, SyncCallReturnsValue) {
  World W;
  W.ep(1).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  ErrorOr<double> Out(0.0);
  W.sim().spawn(divideOnce(W, 10.0, 4.0, Out));
  W.sim().run();
  ASSERT_TRUE(Out);
  EXPECT_DOUBLE_EQ(*Out, 2.5);
  EXPECT_EQ(W.ep(0).stats().CallsIssued, 1u);
  EXPECT_EQ(W.ep(0).stats().RepliesReceived, 1u);
  EXPECT_EQ(W.ep(1).stats().CallsHandled, 1u);
}

TEST(RemotingTest, UnknownObjectFaults) {
  World W;
  ErrorOr<double> Out(0.0);
  W.sim().spawn(divideOnce(W, 1, 1, Out));
  W.sim().run();
  ASSERT_FALSE(Out);
  EXPECT_EQ(Out.error().code(), ErrorCode::UnknownObject);
}

TEST(RemotingTest, UnknownMethodFaults) {
  World W;
  W.ep(1).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  ErrorOr<int32_t> Out(0);
  struct Proc {
    static Task<void> run(World &W, ErrorOr<int32_t> &Out) {
      auto Handle = getObject(W.ep(0), "tcp://node1:1050/DivideServer");
      Out = co_await Handle->invokeTyped<int32_t>("noSuchMethod");
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out);
  EXPECT_EQ(Out.error().code(), ErrorCode::UnknownMethod);
}

TEST(RemotingTest, MalformedArgsFault) {
  World W;
  W.ep(1).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  ErrorOr<Bytes> Out(Bytes{});
  struct Proc {
    static Task<void> run(World &W, ErrorOr<Bytes> &Out) {
      auto Handle = getObject(W.ep(0), "tcp://node1:1050/DivideServer");
      Bytes Junk = {1, 2}; // Too short for two doubles.
      Out = co_await Handle->invoke("divide", Junk);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_FALSE(Out);
  EXPECT_EQ(Out.error().code(), ErrorCode::MalformedMessage);
}

TEST(RemotingTest, LocalNodeCallWorks) {
  // Calling an object published on the caller's own node (loopback).
  World W;
  W.ep(0).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(0)));
  ErrorOr<double> Out(0.0);
  struct Proc {
    static Task<void> run(World &W, ErrorOr<double> &Out) {
      auto Handle = getObject(W.ep(0), "tcp://node0:1050/DivideServer");
      Out = co_await Handle->invokeTyped<double>("divide", 9.0, 3.0);
    }
  };
  W.sim().spawn(Proc::run(W, Out));
  W.sim().run();
  ASSERT_TRUE(Out);
  EXPECT_DOUBLE_EQ(*Out, 3.0);
}

//===----------------------------------------------------------------------===//
// Well-known object modes
//===----------------------------------------------------------------------===//

Task<void> bumpTimes(World &W, int Times, std::vector<int32_t> &Counts) {
  auto Handle = getObject(W.ep(0), "tcp://node1:1050/Counter");
  for (int I = 0; I < Times; ++I) {
    auto Out = co_await Handle->invokeTyped<int32_t>("bump");
    EXPECT_TRUE(Out.hasValue());
    if (!Out)
      co_return;
    Counts.push_back(*Out);
  }
}

TEST(RemotingTest, SingletonKeepsState) {
  World W;
  vm::Node &N1 = W.Machines.node(1);
  W.ep(1).publishWellKnown(
      "Counter", [&N1] { return std::make_shared<DivideServer>(N1); },
      WellKnownObjectMode::Singleton);
  std::vector<int32_t> Counts;
  W.sim().spawn(bumpTimes(W, 3, Counts));
  W.sim().run();
  EXPECT_EQ(Counts, (std::vector<int32_t>{1, 2, 3}));
}

TEST(RemotingTest, SingleCallForgetsState) {
  World W;
  vm::Node &N1 = W.Machines.node(1);
  W.ep(1).publishWellKnown(
      "Counter", [&N1] { return std::make_shared<DivideServer>(N1); },
      WellKnownObjectMode::SingleCall);
  std::vector<int32_t> Counts;
  W.sim().spawn(bumpTimes(W, 3, Counts));
  W.sim().run();
  EXPECT_EQ(Counts, (std::vector<int32_t>{1, 1, 1}));
}

TEST(RemotingTest, UnpublishMakesObjectUnknown) {
  World W;
  W.ep(1).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  EXPECT_TRUE(W.ep(1).isPublished("DivideServer"));
  EXPECT_TRUE(W.ep(1).unpublish("DivideServer"));
  EXPECT_FALSE(W.ep(1).unpublish("DivideServer"));
  ErrorOr<double> Out(0.0);
  W.sim().spawn(divideOnce(W, 1, 1, Out));
  W.sim().run();
  EXPECT_FALSE(Out.hasValue());
}

//===----------------------------------------------------------------------===//
// One-way calls and async delegates
//===----------------------------------------------------------------------===//

TEST(RemotingTest, OneWayCallsArriveInOrder) {
  World W;
  auto Server = std::make_shared<DivideServer>(W.Machines.node(1));
  W.ep(1).publish("DivideServer", Server);
  struct Proc {
    static Task<void> run(World &W) {
      auto Handle = getObject(W.ep(0), "tcp://node1:1050/DivideServer");
      for (int32_t I = 0; I < 5; ++I)
        co_await Handle->invokeOneWay("oneWayNote",
                                      serial::encodeValues(I));
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
  EXPECT_EQ(Server->Notes, (std::vector<int32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(W.ep(0).stats().OneWaySent, 5u);
}

TEST(RemotingTest, OneWayReturnsBeforeRemoteCompletion) {
  World W;
  auto Server = std::make_shared<DivideServer>(W.Machines.node(1));
  W.ep(1).publish("DivideServer", Server);
  SimTime SendDone, AllDone;
  struct Proc {
    static Task<void> run(World &W, SimTime &SendDone) {
      auto Handle = getObject(W.ep(0), "tcp://node1:1050/DivideServer");
      co_await Handle->invokeOneWay("burn", serial::encodeValues(
                                                static_cast<int64_t>(50)));
      SendDone = W.sim().now();
    }
  };
  W.sim().spawn(Proc::run(W, SendDone));
  W.sim().run();
  AllDone = W.sim().now();
  EXPECT_LT(SendDone, SimTime::milliseconds(1));
  EXPECT_GE(AllDone, SimTime::milliseconds(50));
}

TEST(RemotingTest, AsyncDelegateOverlapsCalls) {
  // Two 20 ms remote computations started with BeginInvoke overlap on the
  // dual-CPU server: both complete in ~20 ms, not 40.
  World W;
  W.ep(1).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  SimTime Done;
  struct Proc {
    static Task<void> run(World &W, SimTime &Done) {
      auto Handle = getObject(W.ep(0), "tcp://node1:1050/DivideServer");
      auto R1 = beginInvoke<Unit>(W.sim(), *Handle, "burn",
                                  static_cast<int64_t>(20));
      auto R2 = beginInvoke<Unit>(W.sim(), *Handle, "burn",
                                  static_cast<int64_t>(20));
      EXPECT_FALSE(R1.isCompleted());
      auto Out1 = co_await R1;
      auto Out2 = co_await R2;
      EXPECT_TRUE(Out1.hasValue());
      EXPECT_TRUE(Out2.hasValue());
      Done = W.sim().now();
    }
  };
  W.sim().spawn(Proc::run(W, Done));
  W.sim().run();
  EXPECT_GE(Done, SimTime::milliseconds(20));
  EXPECT_LT(Done, SimTime::milliseconds(30));
}

TEST(RemotingTest, DispatchPoolCapSerialisesCalls) {
  // Same two 20 ms calls, but the server endpoint has a single dispatch
  // worker: the second call waits for the first (the paper's starvation
  // effect).
  World W(StackKind::MonoRemotingTcp117, 2, /*Workers=*/1);
  W.ep(1).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  SimTime Done;
  struct Proc {
    static Task<void> run(World &W, SimTime &Done) {
      auto Handle = getObject(W.ep(0), "tcp://node1:1050/DivideServer");
      auto R1 = beginInvoke<Unit>(W.sim(), *Handle, "burn",
                                  static_cast<int64_t>(20));
      auto R2 = beginInvoke<Unit>(W.sim(), *Handle, "burn",
                                  static_cast<int64_t>(20));
      (void)co_await R1;
      (void)co_await R2;
      Done = W.sim().now();
    }
  };
  W.sim().spawn(Proc::run(W, Done));
  W.sim().run();
  EXPECT_GE(Done, SimTime::milliseconds(40));
}

//===----------------------------------------------------------------------===//
// Latency calibration (in-text numbers, Section 4)
//===----------------------------------------------------------------------===//

Task<void> pingPongLatency(World &W, int Rounds, double &OneWayUs) {
  // Channel-agnostic handle (the Http worlds cannot use a tcp:// URI).
  RemoteHandle Handle(W.ep(0), 1, 1050, "DivideServer");
  // Warm-up call.
  (void)co_await Handle.invokeTyped<double>("divide", 1.0, 1.0);
  SimTime Start = W.sim().now();
  for (int I = 0; I < Rounds; ++I)
    (void)co_await Handle.invokeTyped<double>("divide", 1.0, 1.0);
  SimTime Elapsed = W.sim().now() - Start;
  OneWayUs = Elapsed.toMicrosF() / (2.0 * Rounds);
}

TEST(RemotingCalibrationTest, MonoTcpLatencyNear273us) {
  World W(StackKind::MonoRemotingTcp117);
  W.ep(1).publish("DivideServer",
                  std::make_shared<DivideServer>(W.Machines.node(1)));
  double OneWayUs = 0;
  W.sim().spawn(pingPongLatency(W, 50, OneWayUs));
  W.sim().run();
  EXPECT_NEAR(OneWayUs, 273.0, 35.0);
}

TEST(RemotingCalibrationTest, HttpChannelIsFarSlower) {
  double TcpUs = 0, HttpUs = 0;
  {
    World W(StackKind::MonoRemotingTcp117);
    W.ep(1).publish("DivideServer",
                    std::make_shared<DivideServer>(W.Machines.node(1)));
    W.sim().spawn(pingPongLatency(W, 20, TcpUs));
    W.sim().run();
  }
  {
    World W(StackKind::MonoRemotingHttp117);
    W.ep(1).publish("DivideServer",
                    std::make_shared<DivideServer>(W.Machines.node(1)));
    W.sim().spawn(pingPongLatency(W, 20, HttpUs));
    W.sim().run();
  }
  EXPECT_GT(HttpUs, 3.0 * TcpUs);
}

TEST(RemotingCalibrationTest, Mono105SlowerThan117) {
  double V117 = 0, V105 = 0;
  {
    World W(StackKind::MonoRemotingTcp117);
    W.ep(1).publish("DivideServer",
                    std::make_shared<DivideServer>(W.Machines.node(1)));
    W.sim().spawn(pingPongLatency(W, 20, V117));
    W.sim().run();
  }
  {
    World W(StackKind::MonoRemotingTcp105);
    W.ep(1).publish("DivideServer",
                    std::make_shared<DivideServer>(W.Machines.node(1)));
    W.sim().spawn(pingPongLatency(W, 20, V105));
    W.sim().run();
  }
  EXPECT_GT(V105, 2.0 * V117);
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(RemotingTest, DeterministicAcrossRuns) {
  auto RunOnce = [] {
    World W;
    W.ep(1).publish("DivideServer",
                    std::make_shared<DivideServer>(W.Machines.node(1)));
    double OneWayUs = 0;
    W.sim().spawn(pingPongLatency(W, 10, OneWayUs));
    W.sim().run();
    return OneWayUs;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

} // namespace
