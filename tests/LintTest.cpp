//===- tests/LintTest.cpp - parcs-lint analyzer tests ---------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "lint/Analysis.h"
#include "lint/Cfg.h"
#include "lint/CppScanner.h"
#include "lint/Facts.h"
#include "lint/Lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace parcs::lint;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Lints a fixture under tests/lint/.  \p RelPath doubles as the path used
/// for per-path rule policy, so fixtures live in a miniature repo layout
/// (src/..., src/serial/...).
std::vector<Finding> lintFixture(const std::string &RelPath,
                                 const LintConfig &Config = LintConfig()) {
  std::string Abs = std::string(PARCS_LINT_FIXTURE_DIR) + "/" + RelPath;
  std::vector<Finding> Findings;
  std::string Error;
  EXPECT_TRUE(lintFile(Abs, RelPath, Config, Findings, Error)) << Error;
  return Findings;
}

bool hasFinding(const std::vector<Finding> &Findings, const std::string &Rule,
                int Line) {
  for (const Finding &F : Findings)
    if (F.Rule == Rule && F.Line == Line)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Scanner
//===----------------------------------------------------------------------===//

TEST(CppScannerTest, TokensAndComments) {
  CppScanner Scanner("int x = 42; // trailing\n/* block */ x += 2;\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  ASSERT_GE(Toks.size(), 9u);
  EXPECT_TRUE(Toks[0].isIdent("int"));
  EXPECT_TRUE(Toks[1].isIdent("x"));
  EXPECT_TRUE(Toks[2].isPunct("="));
  EXPECT_EQ(Toks[3].Kind, TokKind::Number);
  EXPECT_EQ(Toks[3].Text, "42");
  EXPECT_TRUE(Toks[4].isPunct(";"));
  EXPECT_TRUE(Toks[6].isPunct("+="));

  ASSERT_EQ(Comments.size(), 2u);
  EXPECT_EQ(Comments[0].Text, "trailing");
  EXPECT_FALSE(Comments[0].Block);
  EXPECT_EQ(Comments[0].Line, 1);
  EXPECT_EQ(Comments[1].Text, "block");
  EXPECT_TRUE(Comments[1].Block);
  EXPECT_EQ(Comments[1].Line, 2);
}

TEST(CppScannerTest, RawStringsAndDirectives) {
  CppScanner Scanner("#include <map>\n"
                     "auto S = R\"(has // no comment)\";\n"
                     "#define WIDE \\\n  1\n"
                     "int y;\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  EXPECT_TRUE(Comments.empty()) << "raw string must not open a comment";
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Directive);
  // The continued #define collapses to one directive token on line 3.
  bool SawDefine = false;
  for (const CppToken &T : Toks)
    if (T.Kind == TokKind::Directive && T.Line == 3)
      SawDefine = true;
  EXPECT_TRUE(SawDefine);
  // 'y' survives after the continued directive.
  bool SawY = false;
  for (const CppToken &T : Toks)
    if (T.isIdent("y"))
      SawY = true;
  EXPECT_TRUE(SawY);
}

TEST(CppScannerTest, NestedTemplateCloses) {
  CppScanner Scanner(
      "std::map<int, std::vector<std::pair<int, int>>> M;\nint after = 1;\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  // '>>' lexes as one punctuator; the declaration still terminates and the
  // next statement is visible.
  bool SawShiftShift = false, SawAfter = false;
  for (const CppToken &T : Toks) {
    if (T.isPunct(">>"))
      SawShiftShift = true;
    if (T.isIdent("after"))
      SawAfter = true;
  }
  EXPECT_TRUE(SawShiftShift);
  EXPECT_TRUE(SawAfter);
}

TEST(CppScannerTest, RawStringCustomDelimiter) {
  // The d-char sequence guards the close: an embedded `)"` must not end the
  // literal, and nothing inside may open a comment.
  CppScanner Scanner("auto S = R\"sep(quote )\" slash // and /* block)sep\";\n"
                     "int after = 2;\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  EXPECT_TRUE(Comments.empty());
  bool SawAfter = false;
  for (const CppToken &T : Toks)
    if (T.isIdent("after") && T.Line == 2)
      SawAfter = true;
  EXPECT_TRUE(SawAfter);
}

TEST(CppScannerTest, PreprocessorLineContinuations) {
  // The continued #if spans three physical lines; the identifier after it
  // must land on the correct line number.
  CppScanner Scanner("#if defined(A) || \\\n    defined(B) || \\\n"
                     "    defined(C)\n"
                     "int inside;\n"
                     "#endif\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  bool SawInside = false;
  for (const CppToken &T : Toks)
    if (T.isIdent("inside")) {
      SawInside = true;
      EXPECT_EQ(T.Line, 4);
    }
  EXPECT_TRUE(SawInside);
}

TEST(CppScannerTest, IfConstexprScansAsPlainTokens) {
  CppScanner Scanner("template <typename T> int f(T V) {\n"
                     "  if constexpr (sizeof(T) == 4) { return 1; }\n"
                     "  else { return 2; }\n"
                     "}\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  bool SawIf = false, SawConstexpr = false;
  for (size_t I = 0; I + 1 < Toks.size(); ++I)
    if (Toks[I].isIdent("if") && Toks[I + 1].isIdent("constexpr")) {
      SawIf = true;
      SawConstexpr = true;
    }
  EXPECT_TRUE(SawIf && SawConstexpr);

  // The construct must also survive CFG building (branch + join, no
  // suspension) without derailing the brace classifier.
  std::vector<FunctionCfg> Fns = buildFileCfgs(Toks, CfgConfig());
  for (const FunctionCfg &Fn : Fns)
    EXPECT_FALSE(Fn.HasSuspension);
}

TEST(CppScannerTest, MalformedInputDoesNotThrow) {
  CppScanner Scanner("\"unterminated\n/* unterminated block\nchar c = '");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  EXPECT_NO_THROW(Scanner.scanAll(Toks, Comments));
  ASSERT_FALSE(Toks.empty());
  EXPECT_EQ(Toks.back().Kind, TokKind::EndOfFile);
}

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

std::vector<FunctionCfg> buildCfgs(std::string_view Source,
                                   const CfgConfig &Config = CfgConfig()) {
  CppScanner Scanner(Source);
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);
  return buildFileCfgs(Toks, Config);
}

TEST(CfgTest, BranchAndLoopStructure) {
  std::vector<FunctionCfg> Fns = buildCfgs("int f(int N) {\n"
                                           "  int S = 0;\n"
                                           "  if (N > 0) { S = 1; }\n"
                                           "  else { S = 2; }\n"
                                           "  while (N > 0) { N = N - 1; }\n"
                                           "  return S;\n"
                                           "}\n");
  ASSERT_EQ(Fns.size(), 1u);
  const FunctionCfg &Fn = Fns[0];
  EXPECT_EQ(Fn.Name, "f");
  EXPECT_FALSE(Fn.HasSuspension);
  // Entry, exit, then/else arms and the loop need their own blocks.
  EXPECT_GE(Fn.Blocks.size(), 5u);
  // Some block must have two successors (a branch).
  bool SawBranch = false;
  for (const CfgBlock &B : Fn.Blocks)
    if (B.Succs.size() >= 2)
      SawBranch = true;
  EXPECT_TRUE(SawBranch);
}

TEST(CfgTest, SuspensionPointsAndRender) {
  std::vector<FunctionCfg> Fns =
      buildCfgs("int g() {\n"
                "  int X = co_await tick();\n"
                "  scheduleResume();\n"
                "  return X;\n"
                "}\n");
  ASSERT_EQ(Fns.size(), 1u);
  EXPECT_TRUE(Fns[0].HasSuspension);

  std::string Render = renderCfg(Fns[0], "src/g.cpp");
  EXPECT_NE(Render.find("[suspends]"), std::string::npos);
  EXPECT_NE(Render.find("suspend @"), std::string::npos);
  EXPECT_NE(Render.find("cfg src/g.cpp:1 g"), std::string::npos);
}

TEST(CfgTest, OutOfLineScopeAndCallSites) {
  std::vector<FunctionCfg> Fns =
      buildCfgs("int Widget::poke() {\n"
                "  helper();\n"
                "  Peer.nudge(1);\n"
                "  trace::counter(\"k\", 2);\n"
                "  return 0;\n"
                "}\n");
  ASSERT_EQ(Fns.size(), 1u);
  EXPECT_EQ(Fns[0].Scope, "Widget");
  EXPECT_EQ(Fns[0].qualifiedName(), "Widget::poke");

  bool SawFree = false, SawMember = false, SawQualified = false;
  for (const CfgCallSite &C : Fns[0].Calls) {
    if (C.Callee == "helper" && !C.Member && C.Qualifier.empty())
      SawFree = true;
    if (C.Callee == "nudge" && C.Member && C.Receiver == "Peer")
      SawMember = true;
    if (C.Callee == "counter" && C.Qualifier == "trace")
      SawQualified = true;
  }
  EXPECT_TRUE(SawFree);
  EXPECT_TRUE(SawMember);
  EXPECT_TRUE(SawQualified);
}

//===----------------------------------------------------------------------===//
// Fixture goldens: each fixture's rendered report is compared byte-for-byte
// against a committed expected file.
//===----------------------------------------------------------------------===//

void expectGolden(const std::string &FixtureRel, const std::string &Expected) {
  std::vector<Finding> Findings = lintFixture(FixtureRel);
  std::string Golden = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/expected/" + Expected);
  EXPECT_EQ(renderText(Findings), Golden) << "fixture " << FixtureRel;
}

TEST(LintGoldenTest, WallClock) {
  expectGolden("src/wall_clock.cpp", "wall_clock.txt");
}

TEST(LintGoldenTest, UnorderedIteration) {
  expectGolden("src/serial/unordered_iter.cpp", "unordered_iter.txt");
}

TEST(LintGoldenTest, HotPathAlloc) {
  expectGolden("src/hot_alloc.cpp", "hot_alloc.txt");
}

TEST(LintGoldenTest, CrossPartitionSharedState) {
  expectGolden("src/cross_partition.cpp", "cross_partition.txt");
}

TEST(LintGoldenTest, SuspensionRef) {
  expectGolden("src/suspension_ref.cpp", "suspension_ref.txt");
}

TEST(LintGoldenTest, Nonreentrant) {
  expectGolden("src/nonreentrant.cpp", "nonreentrant.txt");
}

TEST(LintGoldenTest, SuspensionRefV2) {
  expectGolden("src/suspension_ref_v2.cpp", "suspension_ref_v2.txt");
}

//===----------------------------------------------------------------------===//
// Rule behaviour on fixtures (independent of exact message wording)
//===----------------------------------------------------------------------===//

TEST(LintRuleTest, WallClockFiresAndSuppresses) {
  std::vector<Finding> Findings = lintFixture("src/wall_clock.cpp");
  EXPECT_TRUE(hasFinding(Findings, rules::WallClock, 18)); // steady_clock
  EXPECT_TRUE(hasFinding(Findings, rules::WallClock, 23)); // std::time
  EXPECT_TRUE(hasFinding(Findings, rules::WallClock, 24)); // rand()
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 10)) // suppressed decl
      << "declaration-line suppression must hold";
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 26)); // member call
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 27)); // mylib::time
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 33)); // suppressed
}

TEST(LintRuleTest, WallClockAllowlistedFileIsExempt) {
  LintConfig Config;
  Config.WallClockAllowedFiles = {"src/wall_clock.cpp"};
  std::vector<Finding> Findings = lintFixture("src/wall_clock.cpp", Config);
  for (const Finding &F : Findings)
    EXPECT_NE(F.Rule, rules::WallClock) << "allowlisted file at line "
                                        << F.Line;
}

TEST(LintRuleTest, UnorderedIterationFiresOnlyUnderExportPrefixes) {
  std::vector<Finding> Findings =
      lintFixture("src/serial/unordered_iter.cpp");
  EXPECT_TRUE(hasFinding(Findings, rules::UnorderedIteration, 10)); // range-for
  EXPECT_TRUE(hasFinding(Findings, rules::UnorderedIteration, 17)); // begin()
  EXPECT_FALSE(hasFinding(Findings, rules::UnorderedIteration, 23)); // find()
  EXPECT_FALSE(hasFinding(Findings, rules::UnorderedIteration, 32)); // allowed
  EXPECT_FALSE(hasFinding(Findings, rules::UnorderedIteration, 34)); // std::map

  // The same source outside an export prefix is clean.
  std::string Source = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/src/serial/unordered_iter.cpp");
  std::vector<Finding> Elsewhere =
      lintSource("src/sim/unordered_iter.cpp", Source, LintConfig());
  for (const Finding &F : Elsewhere)
    EXPECT_NE(F.Rule, rules::UnorderedIteration);
}

TEST(LintRuleTest, HotPathAllocFiresOnlyInsideRegions) {
  std::vector<Finding> Findings = lintFixture("src/hot_alloc.cpp");
  EXPECT_FALSE(hasFinding(Findings, rules::HotPathAlloc, 7)); // cold
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 14)); // new
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 15)); // make_shared
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 16)); // std::function
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 17)); // string temp
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 18)); // to_string
  EXPECT_FALSE(hasFinding(Findings, rules::HotPathAlloc, 27)); // suppressed
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathRegion, 35)); // unclosed
}

TEST(LintRuleTest, CrossPartitionSharedStateFiresOnlyInsideRegions) {
  std::vector<Finding> Findings = lintFixture("src/cross_partition.cpp");
  const char *Rule = rules::CrossPartitionSharedState;
  EXPECT_FALSE(hasFinding(Findings, Rule, 13)); // cold static
  EXPECT_FALSE(hasFinding(Findings, Rule, 14)); // cold global()
  EXPECT_FALSE(hasFinding(Findings, Rule, 18)); // static fn, not state
  EXPECT_TRUE(hasFinding(Findings, Rule, 20));  // mutable static
  EXPECT_FALSE(hasFinding(Findings, Rule, 21)); // static const
  EXPECT_FALSE(hasFinding(Findings, Rule, 22)); // static constexpr
  EXPECT_FALSE(hasFinding(Findings, Rule, 23)); // static thread_local
  EXPECT_TRUE(hasFinding(Findings, Rule, 25));  // Registry::global()
  EXPECT_TRUE(hasFinding(Findings, Rule, 26));  // Registry::instance()
  EXPECT_FALSE(hasFinding(Findings, Rule, 29)); // suppressed
  EXPECT_FALSE(hasFinding(Findings, Rule, 35)); // cold again after END
  EXPECT_FALSE(hasFinding(Findings, Rule, 36)); // cold instance()
}

TEST(LintRuleTest, SuspensionRefFiresAtUseSite) {
  std::vector<Finding> Findings = lintFixture("src/suspension_ref.cpp");
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 27)); // reference
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 33)); // string_view
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 39)); // iterator
  EXPECT_FALSE(hasFinding(Findings, rules::SuspensionRef, 44)) // use before
      << "use before the suspension point is safe";
  EXPECT_FALSE(hasFinding(Findings, rules::SuspensionRef, 52)) // decl after
      << "declaration after the suspension point is safe";
  EXPECT_FALSE(hasFinding(Findings, rules::SuspensionRef, 60)) // suppressed
      << "declaration-site suppression must cover the later use";
}

TEST(LintRuleTest, NonreentrantFiresOnlyUnderSrc) {
  std::vector<Finding> Findings = lintFixture("src/nonreentrant.cpp");
  EXPECT_FALSE(hasFinding(Findings, rules::NonreentrantCall, 10)) // decl
      << "declaration-line suppression must hold";
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 14)); // strtok
  EXPECT_FALSE(hasFinding(Findings, rules::NonreentrantCall, 16)); // member
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 21)); // gmtime
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 22)); // localtime
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 27)); // setenv
  EXPECT_FALSE(hasFinding(Findings, rules::NonreentrantCall, 32)); // allowed

  // The same source under bench/ is out of scope for the rule.
  std::string Source = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/src/nonreentrant.cpp");
  std::vector<Finding> Bench =
      lintSource("bench/nonreentrant.cpp", Source, LintConfig());
  for (const Finding &F : Bench)
    EXPECT_NE(F.Rule, rules::NonreentrantCall);
}

//===----------------------------------------------------------------------===//
// suspension-ref v2: flow-sensitive refinements (one per fixture function;
// the golden pins the exact report, these pin the intent)
//===----------------------------------------------------------------------===//

TEST(SuspensionRefV2Test, RefinementsOnFixture) {
  std::vector<Finding> Findings = lintFixture("src/suspension_ref_v2.cpp");
  // Only the two seeded bugs fire...
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 34)); // may-path use
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 52)); // root mutated
  // ...and every refinement holds as a true negative.
  for (const Finding &F : Findings)
    EXPECT_TRUE(F.Line == 34 || F.Line == 52)
        << "unexpected finding at line " << F.Line << ": " << F.Message;
}

TEST(SuspensionRefV2Test, StableTypesAreConfigurable) {
  std::string Source = "int f() {\n"
                       "  Simulator &Sim = simOf();\n"
                       "  int X = co_await tick();\n"
                       "  Sim.step();\n"
                       "  return X;\n"
                       "}\n";
  EXPECT_TRUE(lintSource("src/x.cpp", Source, LintConfig()).empty())
      << "Simulator is audited-stable by default";

  LintConfig NoStable;
  NoStable.SuspensionStableTypes.clear();
  std::vector<Finding> Findings = lintSource("src/x.cpp", Source, NoStable);
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 4))
      << "without the audit entry the reference is risky again";
}

//===----------------------------------------------------------------------===//
// parcgen facts
//===----------------------------------------------------------------------===//

TEST(FactsTest, ParseWellFormed) {
  FactsDb Db;
  std::string Error;
  ASSERT_TRUE(parseFacts(readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                       "/deadlock/facts.json"),
                         Db, Error))
      << Error;
  ASSERT_EQ(Db.Modules.size(), 1u);
  EXPECT_EQ(Db.Modules[0].Name, "fixtures.deadlock");
  ASSERT_EQ(Db.Modules[0].Classes.size(), 3u);

  const FactsClass *Ponger = Db.findClass("Ponger");
  ASSERT_NE(Ponger, nullptr);
  ASSERT_EQ(Ponger->Methods.size(), 2u);
  EXPECT_TRUE(Ponger->Methods[0].Sync);      // pong
  EXPECT_FALSE(Ponger->Methods[1].Sync);     // fire
  EXPECT_EQ(Db.classWithSyncMethod("pong"), Ponger);
  EXPECT_EQ(Db.classWithSyncMethod("fire"), nullptr);
}

TEST(FactsTest, MalformedInputsAreRejected) {
  FactsDb Db;
  std::string Error;
  EXPECT_FALSE(parseFacts("not json", Db, Error));
  EXPECT_FALSE(parseFacts("{\"classes\": []}", Db, Error))
      << "module name is required";
  EXPECT_FALSE(parseFacts("{\"module\": \"m\"}", Db, Error))
      << "classes array is required";
  EXPECT_FALSE(parseFacts(
      "{\"module\": \"m\", \"classes\": [{\"methods\": []}]}", Db, Error))
      << "class name is required";
}

//===----------------------------------------------------------------------===//
// Whole-program analyses (lint/Analysis.h)
//===----------------------------------------------------------------------===//

std::string fixturePath(const std::string &Rel) {
  return std::string(PARCS_LINT_FIXTURE_DIR) + "/" + Rel;
}

void addFixture(Program &P, const std::string &Rel,
                const LintConfig &Config = LintConfig()) {
  P.addFile(Rel, readWholeFile(fixturePath(Rel)), Config);
}

TEST(DeadlockTest, SeededCycleFixtureIsCaught) {
  Program P;
  addFixture(P, "deadlock/ping_cycle.cpp");
  FactsDb Facts;
  std::string Error;
  ASSERT_TRUE(
      parseFacts(readWholeFile(fixturePath("deadlock/facts.json")), Facts,
                 Error))
      << Error;
  std::vector<Finding> Findings = P.analyze(Facts, LintConfig());
  EXPECT_EQ(renderText(Findings),
            readWholeFile(fixturePath("expected/deadlock.txt")));
}

TEST(DeadlockTest, AsyncLegBreaksTheCycle) {
  Program P;
  addFixture(P, "deadlock/ping_cycle.cpp");
  // Same classes, but Ponger.pong is async: replies queue instead of
  // blocking, so the Pinger/Ponger cycle dissolves.  Loopback's self-cycle
  // remains.
  FactsDb Facts;
  std::string Error;
  ASSERT_TRUE(parseFacts(
      "{\"module\": \"m\", \"classes\": ["
      "{\"name\": \"Pinger\", \"methods\": ["
      "{\"name\": \"ping\", \"kind\": \"sync\", \"returns\": \"int\"}]},"
      "{\"name\": \"Ponger\", \"methods\": ["
      "{\"name\": \"pong\", \"kind\": \"async\", \"returns\": \"int\"}]},"
      "{\"name\": \"Loopback\", \"methods\": ["
      "{\"name\": \"depth\", \"kind\": \"sync\", \"returns\": \"int\"}]}"
      "]}",
      Facts, Error))
      << Error;
  std::vector<Finding> Findings = P.analyze(Facts, LintConfig());
  ASSERT_EQ(Findings.size(), 1u) << renderText(Findings);
  EXPECT_NE(Findings[0].Message.find("Loopback -> Loopback"),
            std::string::npos);
}

TEST(DeadlockTest, SkippedEntirelyWithoutFacts) {
  Program P;
  addFixture(P, "deadlock/ping_cycle.cpp");
  for (const Finding &F : P.analyze(FactsDb(), LintConfig()))
    EXPECT_NE(F.Rule, rules::SyncCallDeadlock);
}

TEST(TaintTest, FlowsMatchGolden) {
  Program P;
  addFixture(P, "src/taint_flow.cpp");
  std::vector<Finding> Findings = P.analyze(FactsDb(), LintConfig());
  EXPECT_EQ(renderText(Findings),
            readWholeFile(fixturePath("expected/taint_flow.txt")));
}

TEST(TaintTest, SinkQualifiersAreConfigurable) {
  Program P;
  addFixture(P, "src/taint_flow.cpp");
  LintConfig NoSinks;
  NoSinks.TaintSinkQualifiers.clear();
  EXPECT_TRUE(P.analyze(FactsDb(), NoSinks).empty())
      << "with no sink qualifiers nothing can be flagged";
}

TEST(ProgramTest, DumpsAreDeterministic) {
  auto Render = [] {
    Program P;
    addFixture(P, "deadlock/ping_cycle.cpp");
    addFixture(P, "src/taint_flow.cpp");
    return P.dumpCfgs() + P.dumpCallGraph();
  };
  std::string A = Render();
  EXPECT_EQ(A, Render());
  EXPECT_NE(A.find("cfg deadlock/ping_cycle.cpp"), std::string::npos);
  EXPECT_NE(A.find("fn src/taint_flow.cpp"), std::string::npos);
  EXPECT_NE(A.find("call trace::counter"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Suppression semantics
//===----------------------------------------------------------------------===//

TEST(LintSuppressionTest, SameLineAndNextCodeLine) {
  LintConfig Config;
  std::string Source = "int a = rand(); // parcs-lint: allow("
                       "determinism-wall-clock): same line.\n"
                       "// parcs-lint: allow(determinism-wall-clock): next\n"
                       "// line, with a justification that keeps going.\n"
                       "int b = rand();\n"
                       "int c = rand();\n";
  std::vector<Finding> Findings = lintSource("src/x.cpp", Source, Config);
  ASSERT_EQ(Findings.size(), 1u) << renderText(Findings);
  EXPECT_EQ(Findings[0].Line, 5) << "only the unsuppressed call survives";
}

TEST(LintSuppressionTest, MultiRuleSuppression) {
  std::string Source =
      "// parcs-lint: allow(determinism-wall-clock, nonreentrant-call): x.\n"
      "int a = rand() + (setenv(\"K\", \"V\", 1));\n";
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", Source, LintConfig());
  EXPECT_TRUE(Findings.empty()) << renderText(Findings);
}

TEST(LintSuppressionTest, MalformedDirectiveIsItselfAFinding) {
  std::string Source = "// parcs-lint: allow(\n"
                       "int a = 1;\n";
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", Source, LintConfig());
  ASSERT_EQ(Findings.size(), 1u);
  EXPECT_EQ(Findings[0].Rule, rules::HotPathRegion);
}

TEST(LintSuppressionTest, DisabledRuleReportsNothing) {
  LintConfig Config;
  Config.DisabledRules.insert(rules::WallClock);
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", Config);
  EXPECT_TRUE(Findings.empty());
}

//===----------------------------------------------------------------------===//
// Baseline
//===----------------------------------------------------------------------===//

TEST(LintBaselineTest, RoundTrip) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\nint b = rand();\n",
                 LintConfig());
  ASSERT_EQ(Findings.size(), 2u);

  std::string Text = Baseline::write(Findings);
  std::vector<std::string> Errors;
  Baseline B = Baseline::parse(Text, Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_EQ(B.size(), 2u);
  EXPECT_TRUE(applyBaseline(Findings, B).empty())
      << "a freshly written baseline must absorb its own findings";
}

TEST(LintBaselineTest, HashedEntryTracksLineShift) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int pad = 1;\nint a = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 1u);
  EXPECT_NE(Findings[0].LineHash, 0u);

  Baseline B;
  Finding Moved = Findings[0];
  Moved.Line += 7; // grandfathered code shifted; content (hash) unchanged
  B.add(Moved);
  EXPECT_TRUE(applyBaseline(Findings, B).empty())
      << "hash-keyed entries must survive pure line shifts";
}

TEST(LintBaselineTest, EditedLineForcesReaudit) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 1u);

  Baseline B;
  Finding Edited = Findings[0];
  Edited.LineHash ^= 0x5a5a5a5au; // same line, different content
  B.add(Edited);
  EXPECT_EQ(applyBaseline(Findings, B).size(), 1u)
      << "an edited flagged line must stop matching its baseline entry";
}

TEST(LintBaselineTest, LegacyEntriesStayLineExact) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 1u);

  std::vector<std::string> Errors;
  Baseline Exact =
      Baseline::parse("determinism-wall-clock|src/x.cpp|1\n", Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_TRUE(applyBaseline(Findings, Exact).empty());

  Baseline Shifted =
      Baseline::parse("determinism-wall-clock|src/x.cpp|2\n", Errors);
  EXPECT_EQ(applyBaseline(Findings, Shifted).size(), 1u)
      << "3-field entries have no hash to follow the code with";
}

TEST(LintBaselineTest, ConsumptionIsOneEntryPerFinding) {
  std::vector<Finding> Findings = lintSource(
      "src/x.cpp", "int a = rand();\nint b = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 2u);

  // One entry cannot absorb two findings, even when hashes collide
  // (`int a = rand();` vs `int b = rand();` differ, so use line 1's entry).
  Baseline B;
  B.add(Findings[0]);
  EXPECT_EQ(applyBaseline(Findings, B).size(), 1u);
}

TEST(LintBaselineTest, WriteEmitsHashesAndJustifyStubs) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 1u);
  std::string Text = Baseline::write(Findings);
  EXPECT_NE(Text.find("# JUSTIFY:"), std::string::npos);
  EXPECT_NE(Text.find("determinism-wall-clock|src/x.cpp|1|"),
            std::string::npos);

  std::vector<std::string> Errors;
  Baseline B = Baseline::parse(Text, Errors);
  EXPECT_TRUE(Errors.empty());
  ASSERT_EQ(B.size(), 1u);
  EXPECT_TRUE(B.entries()[0].HasHash);
  EXPECT_EQ(B.entries()[0].Hash, Findings[0].LineHash);
}

TEST(LintBaselineTest, UpdatePreservesJustificationComments) {
  Finding Kept;
  Kept.Rule = "suspension-ref";
  Kept.File = "src/x.cpp";
  Kept.Line = 14; // was 10: the code shifted
  Kept.Col = 3;
  Kept.Message = "kept finding";
  Kept.LineHash = 0xdeadbeefu;

  Finding Fresh;
  Fresh.Rule = "suspension-ref";
  Fresh.File = "src/y.cpp";
  Fresh.Line = 2;
  Fresh.Col = 1;
  Fresh.Message = "brand new finding";
  Fresh.LineHash = 0x12345678u;

  std::string Old = "# parcs-lint baseline: header to keep.\n"
                    "\n"
                    "# Table outlives the coroutine; audited 2026-08.\n"
                    "suspension-ref|src/x.cpp|10|deadbeef\n"
                    "\n"
                    "# This entry's finding is gone and must be dropped.\n"
                    "suspension-ref|src/z.cpp|99|0badf00d\n";
  std::string New = Baseline::update(Old, {Kept, Fresh});

  EXPECT_NE(New.find("# parcs-lint baseline: header to keep.\n"),
            std::string::npos);
  EXPECT_NE(New.find("# Table outlives the coroutine; audited 2026-08.\n"
                     "suspension-ref|src/x.cpp|14|deadbeef\n"),
            std::string::npos)
      << "matched entry keeps its comment, line refreshed:\n"
      << New;
  EXPECT_EQ(New.find("src/z.cpp"), std::string::npos)
      << "stale entries are dropped";
  EXPECT_NE(New.find("# JUSTIFY: brand new finding\n"
                     "suspension-ref|src/y.cpp|2|12345678\n"),
            std::string::npos)
      << "new findings arrive with a JUSTIFY stub:\n"
      << New;

  // The rewrite must parse back cleanly and absorb both findings.
  std::vector<std::string> Errors;
  Baseline B = Baseline::parse(New, Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_EQ(B.size(), 2u);
  EXPECT_TRUE(applyBaseline({Kept, Fresh}, B).empty());
}

TEST(LintBaselineTest, MalformedLinesAreReported) {
  std::vector<std::string> Errors;
  Baseline B = Baseline::parse("# a comment\n"
                               "determinism-wall-clock|src/a.cpp|12\n"
                               "not-an-entry\n"
                               "rule|file|not-a-number\n",
                               Errors);
  EXPECT_EQ(B.size(), 1u);
  EXPECT_EQ(Errors.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Reporters
//===----------------------------------------------------------------------===//

TEST(LintReportTest, TextFormat) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 1u);
  std::string Text = renderText(Findings);
  EXPECT_NE(Text.find("src/x.cpp:1:"), std::string::npos);
  EXPECT_NE(Text.find("[determinism-wall-clock]"), std::string::npos);
  EXPECT_NE(Text.find("parcs-lint: 1 finding\n"), std::string::npos);
  EXPECT_EQ(renderText({}), "parcs-lint: no findings\n");
}

TEST(LintReportTest, JsonIsByteIdenticalAcrossRuns) {
  std::string Source = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/src/hot_alloc.cpp");
  std::string A =
      renderJson(lintSource("src/hot_alloc.cpp", Source, LintConfig()));
  std::string B =
      renderJson(lintSource("src/hot_alloc.cpp", Source, LintConfig()));
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("\"count\":"), std::string::npos);
  EXPECT_NE(A.find("\"rule\":"), std::string::npos);
}

TEST(LintReportTest, JsonEscapesControlCharacters) {
  std::vector<Finding> Findings;
  Findings.push_back(
      {rules::WallClock, "src/\"odd\".cpp", 1, 1, "tab\there\nline"});
  std::string Json = renderJson(Findings);
  EXPECT_NE(Json.find("\\\"odd\\\""), std::string::npos);
  EXPECT_NE(Json.find("\\t"), std::string::npos);
  EXPECT_NE(Json.find("\\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Findings ordering
//===----------------------------------------------------------------------===//

TEST(LintOrderTest, FindingsAreSorted) {
  std::vector<Finding> Findings = lintFixture("src/hot_alloc.cpp");
  for (size_t I = 1; I < Findings.size(); ++I)
    EXPECT_FALSE(Findings[I] < Findings[I - 1])
        << "findings must come back sorted";
}

} // namespace
