//===- tests/LintTest.cpp - parcs-lint analyzer tests ---------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "lint/CppScanner.h"
#include "lint/Lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace parcs::lint;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Lints a fixture under tests/lint/.  \p RelPath doubles as the path used
/// for per-path rule policy, so fixtures live in a miniature repo layout
/// (src/..., src/serial/...).
std::vector<Finding> lintFixture(const std::string &RelPath,
                                 const LintConfig &Config = LintConfig()) {
  std::string Abs = std::string(PARCS_LINT_FIXTURE_DIR) + "/" + RelPath;
  std::vector<Finding> Findings;
  std::string Error;
  EXPECT_TRUE(lintFile(Abs, RelPath, Config, Findings, Error)) << Error;
  return Findings;
}

bool hasFinding(const std::vector<Finding> &Findings, const std::string &Rule,
                int Line) {
  for (const Finding &F : Findings)
    if (F.Rule == Rule && F.Line == Line)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Scanner
//===----------------------------------------------------------------------===//

TEST(CppScannerTest, TokensAndComments) {
  CppScanner Scanner("int x = 42; // trailing\n/* block */ x += 2;\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  ASSERT_GE(Toks.size(), 9u);
  EXPECT_TRUE(Toks[0].isIdent("int"));
  EXPECT_TRUE(Toks[1].isIdent("x"));
  EXPECT_TRUE(Toks[2].isPunct("="));
  EXPECT_EQ(Toks[3].Kind, TokKind::Number);
  EXPECT_EQ(Toks[3].Text, "42");
  EXPECT_TRUE(Toks[4].isPunct(";"));
  EXPECT_TRUE(Toks[6].isPunct("+="));

  ASSERT_EQ(Comments.size(), 2u);
  EXPECT_EQ(Comments[0].Text, "trailing");
  EXPECT_FALSE(Comments[0].Block);
  EXPECT_EQ(Comments[0].Line, 1);
  EXPECT_EQ(Comments[1].Text, "block");
  EXPECT_TRUE(Comments[1].Block);
  EXPECT_EQ(Comments[1].Line, 2);
}

TEST(CppScannerTest, RawStringsAndDirectives) {
  CppScanner Scanner("#include <map>\n"
                     "auto S = R\"(has // no comment)\";\n"
                     "#define WIDE \\\n  1\n"
                     "int y;\n");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  Scanner.scanAll(Toks, Comments);

  EXPECT_TRUE(Comments.empty()) << "raw string must not open a comment";
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Directive);
  // The continued #define collapses to one directive token on line 3.
  bool SawDefine = false;
  for (const CppToken &T : Toks)
    if (T.Kind == TokKind::Directive && T.Line == 3)
      SawDefine = true;
  EXPECT_TRUE(SawDefine);
  // 'y' survives after the continued directive.
  bool SawY = false;
  for (const CppToken &T : Toks)
    if (T.isIdent("y"))
      SawY = true;
  EXPECT_TRUE(SawY);
}

TEST(CppScannerTest, MalformedInputDoesNotThrow) {
  CppScanner Scanner("\"unterminated\n/* unterminated block\nchar c = '");
  std::vector<CppToken> Toks;
  std::vector<CppComment> Comments;
  EXPECT_NO_THROW(Scanner.scanAll(Toks, Comments));
  ASSERT_FALSE(Toks.empty());
  EXPECT_EQ(Toks.back().Kind, TokKind::EndOfFile);
}

//===----------------------------------------------------------------------===//
// Fixture goldens: each fixture's rendered report is compared byte-for-byte
// against a committed expected file.
//===----------------------------------------------------------------------===//

void expectGolden(const std::string &FixtureRel, const std::string &Expected) {
  std::vector<Finding> Findings = lintFixture(FixtureRel);
  std::string Golden = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/expected/" + Expected);
  EXPECT_EQ(renderText(Findings), Golden) << "fixture " << FixtureRel;
}

TEST(LintGoldenTest, WallClock) {
  expectGolden("src/wall_clock.cpp", "wall_clock.txt");
}

TEST(LintGoldenTest, UnorderedIteration) {
  expectGolden("src/serial/unordered_iter.cpp", "unordered_iter.txt");
}

TEST(LintGoldenTest, HotPathAlloc) {
  expectGolden("src/hot_alloc.cpp", "hot_alloc.txt");
}

TEST(LintGoldenTest, CrossPartitionSharedState) {
  expectGolden("src/cross_partition.cpp", "cross_partition.txt");
}

TEST(LintGoldenTest, SuspensionRef) {
  expectGolden("src/suspension_ref.cpp", "suspension_ref.txt");
}

TEST(LintGoldenTest, Nonreentrant) {
  expectGolden("src/nonreentrant.cpp", "nonreentrant.txt");
}

//===----------------------------------------------------------------------===//
// Rule behaviour on fixtures (independent of exact message wording)
//===----------------------------------------------------------------------===//

TEST(LintRuleTest, WallClockFiresAndSuppresses) {
  std::vector<Finding> Findings = lintFixture("src/wall_clock.cpp");
  EXPECT_TRUE(hasFinding(Findings, rules::WallClock, 18)); // steady_clock
  EXPECT_TRUE(hasFinding(Findings, rules::WallClock, 23)); // std::time
  EXPECT_TRUE(hasFinding(Findings, rules::WallClock, 24)); // rand()
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 10)) // suppressed decl
      << "declaration-line suppression must hold";
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 26)); // member call
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 27)); // mylib::time
  EXPECT_FALSE(hasFinding(Findings, rules::WallClock, 33)); // suppressed
}

TEST(LintRuleTest, WallClockAllowlistedFileIsExempt) {
  LintConfig Config;
  Config.WallClockAllowedFiles = {"src/wall_clock.cpp"};
  std::vector<Finding> Findings = lintFixture("src/wall_clock.cpp", Config);
  for (const Finding &F : Findings)
    EXPECT_NE(F.Rule, rules::WallClock) << "allowlisted file at line "
                                        << F.Line;
}

TEST(LintRuleTest, UnorderedIterationFiresOnlyUnderExportPrefixes) {
  std::vector<Finding> Findings =
      lintFixture("src/serial/unordered_iter.cpp");
  EXPECT_TRUE(hasFinding(Findings, rules::UnorderedIteration, 10)); // range-for
  EXPECT_TRUE(hasFinding(Findings, rules::UnorderedIteration, 17)); // begin()
  EXPECT_FALSE(hasFinding(Findings, rules::UnorderedIteration, 23)); // find()
  EXPECT_FALSE(hasFinding(Findings, rules::UnorderedIteration, 32)); // allowed
  EXPECT_FALSE(hasFinding(Findings, rules::UnorderedIteration, 34)); // std::map

  // The same source outside an export prefix is clean.
  std::string Source = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/src/serial/unordered_iter.cpp");
  std::vector<Finding> Elsewhere =
      lintSource("src/sim/unordered_iter.cpp", Source, LintConfig());
  for (const Finding &F : Elsewhere)
    EXPECT_NE(F.Rule, rules::UnorderedIteration);
}

TEST(LintRuleTest, HotPathAllocFiresOnlyInsideRegions) {
  std::vector<Finding> Findings = lintFixture("src/hot_alloc.cpp");
  EXPECT_FALSE(hasFinding(Findings, rules::HotPathAlloc, 7)); // cold
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 14)); // new
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 15)); // make_shared
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 16)); // std::function
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 17)); // string temp
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathAlloc, 18)); // to_string
  EXPECT_FALSE(hasFinding(Findings, rules::HotPathAlloc, 27)); // suppressed
  EXPECT_TRUE(hasFinding(Findings, rules::HotPathRegion, 35)); // unclosed
}

TEST(LintRuleTest, CrossPartitionSharedStateFiresOnlyInsideRegions) {
  std::vector<Finding> Findings = lintFixture("src/cross_partition.cpp");
  const char *Rule = rules::CrossPartitionSharedState;
  EXPECT_FALSE(hasFinding(Findings, Rule, 13)); // cold static
  EXPECT_FALSE(hasFinding(Findings, Rule, 14)); // cold global()
  EXPECT_FALSE(hasFinding(Findings, Rule, 18)); // static fn, not state
  EXPECT_TRUE(hasFinding(Findings, Rule, 20));  // mutable static
  EXPECT_FALSE(hasFinding(Findings, Rule, 21)); // static const
  EXPECT_FALSE(hasFinding(Findings, Rule, 22)); // static constexpr
  EXPECT_FALSE(hasFinding(Findings, Rule, 23)); // static thread_local
  EXPECT_TRUE(hasFinding(Findings, Rule, 25));  // Registry::global()
  EXPECT_TRUE(hasFinding(Findings, Rule, 26));  // Registry::instance()
  EXPECT_FALSE(hasFinding(Findings, Rule, 29)); // suppressed
  EXPECT_FALSE(hasFinding(Findings, Rule, 35)); // cold again after END
  EXPECT_FALSE(hasFinding(Findings, Rule, 36)); // cold instance()
}

TEST(LintRuleTest, SuspensionRefFiresAtUseSite) {
  std::vector<Finding> Findings = lintFixture("src/suspension_ref.cpp");
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 27)); // reference
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 33)); // string_view
  EXPECT_TRUE(hasFinding(Findings, rules::SuspensionRef, 39)); // iterator
  EXPECT_FALSE(hasFinding(Findings, rules::SuspensionRef, 44)) // use before
      << "use before the suspension point is safe";
  EXPECT_FALSE(hasFinding(Findings, rules::SuspensionRef, 52)) // decl after
      << "declaration after the suspension point is safe";
  EXPECT_FALSE(hasFinding(Findings, rules::SuspensionRef, 60)) // suppressed
      << "declaration-site suppression must cover the later use";
}

TEST(LintRuleTest, NonreentrantFiresOnlyUnderSrc) {
  std::vector<Finding> Findings = lintFixture("src/nonreentrant.cpp");
  EXPECT_FALSE(hasFinding(Findings, rules::NonreentrantCall, 10)) // decl
      << "declaration-line suppression must hold";
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 14)); // strtok
  EXPECT_FALSE(hasFinding(Findings, rules::NonreentrantCall, 16)); // member
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 21)); // gmtime
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 22)); // localtime
  EXPECT_TRUE(hasFinding(Findings, rules::NonreentrantCall, 27)); // setenv
  EXPECT_FALSE(hasFinding(Findings, rules::NonreentrantCall, 32)); // allowed

  // The same source under bench/ is out of scope for the rule.
  std::string Source = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/src/nonreentrant.cpp");
  std::vector<Finding> Bench =
      lintSource("bench/nonreentrant.cpp", Source, LintConfig());
  for (const Finding &F : Bench)
    EXPECT_NE(F.Rule, rules::NonreentrantCall);
}

//===----------------------------------------------------------------------===//
// Suppression semantics
//===----------------------------------------------------------------------===//

TEST(LintSuppressionTest, SameLineAndNextCodeLine) {
  LintConfig Config;
  std::string Source = "int a = rand(); // parcs-lint: allow("
                       "determinism-wall-clock): same line.\n"
                       "// parcs-lint: allow(determinism-wall-clock): next\n"
                       "// line, with a justification that keeps going.\n"
                       "int b = rand();\n"
                       "int c = rand();\n";
  std::vector<Finding> Findings = lintSource("src/x.cpp", Source, Config);
  ASSERT_EQ(Findings.size(), 1u) << renderText(Findings);
  EXPECT_EQ(Findings[0].Line, 5) << "only the unsuppressed call survives";
}

TEST(LintSuppressionTest, MultiRuleSuppression) {
  std::string Source =
      "// parcs-lint: allow(determinism-wall-clock, nonreentrant-call): x.\n"
      "int a = rand() + (setenv(\"K\", \"V\", 1));\n";
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", Source, LintConfig());
  EXPECT_TRUE(Findings.empty()) << renderText(Findings);
}

TEST(LintSuppressionTest, MalformedDirectiveIsItselfAFinding) {
  std::string Source = "// parcs-lint: allow(\n"
                       "int a = 1;\n";
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", Source, LintConfig());
  ASSERT_EQ(Findings.size(), 1u);
  EXPECT_EQ(Findings[0].Rule, rules::HotPathRegion);
}

TEST(LintSuppressionTest, DisabledRuleReportsNothing) {
  LintConfig Config;
  Config.DisabledRules.insert(rules::WallClock);
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", Config);
  EXPECT_TRUE(Findings.empty());
}

//===----------------------------------------------------------------------===//
// Baseline
//===----------------------------------------------------------------------===//

TEST(LintBaselineTest, RoundTrip) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\nint b = rand();\n",
                 LintConfig());
  ASSERT_EQ(Findings.size(), 2u);

  std::string Text = Baseline::write(Findings);
  std::vector<std::string> Errors;
  Baseline B = Baseline::parse(Text, Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_EQ(B.size(), 2u);
  EXPECT_TRUE(applyBaseline(Findings, B).empty())
      << "a freshly written baseline must absorb its own findings";
}

TEST(LintBaselineTest, LineExactOnPurpose) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 1u);
  Baseline B;
  Finding Moved = Findings[0];
  Moved.Line += 1; // grandfathered code moved: entry must stop matching
  B.add(Moved);
  EXPECT_EQ(applyBaseline(Findings, B).size(), 1u);
}

TEST(LintBaselineTest, MalformedLinesAreReported) {
  std::vector<std::string> Errors;
  Baseline B = Baseline::parse("# a comment\n"
                               "determinism-wall-clock|src/a.cpp|12\n"
                               "not-an-entry\n"
                               "rule|file|not-a-number\n",
                               Errors);
  EXPECT_EQ(B.size(), 1u);
  EXPECT_EQ(Errors.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Reporters
//===----------------------------------------------------------------------===//

TEST(LintReportTest, TextFormat) {
  std::vector<Finding> Findings =
      lintSource("src/x.cpp", "int a = rand();\n", LintConfig());
  ASSERT_EQ(Findings.size(), 1u);
  std::string Text = renderText(Findings);
  EXPECT_NE(Text.find("src/x.cpp:1:"), std::string::npos);
  EXPECT_NE(Text.find("[determinism-wall-clock]"), std::string::npos);
  EXPECT_NE(Text.find("parcs-lint: 1 finding\n"), std::string::npos);
  EXPECT_EQ(renderText({}), "parcs-lint: no findings\n");
}

TEST(LintReportTest, JsonIsByteIdenticalAcrossRuns) {
  std::string Source = readWholeFile(std::string(PARCS_LINT_FIXTURE_DIR) +
                                     "/src/hot_alloc.cpp");
  std::string A =
      renderJson(lintSource("src/hot_alloc.cpp", Source, LintConfig()));
  std::string B =
      renderJson(lintSource("src/hot_alloc.cpp", Source, LintConfig()));
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("\"count\":"), std::string::npos);
  EXPECT_NE(A.find("\"rule\":"), std::string::npos);
}

TEST(LintReportTest, JsonEscapesControlCharacters) {
  std::vector<Finding> Findings;
  Findings.push_back(
      {rules::WallClock, "src/\"odd\".cpp", 1, 1, "tab\there\nline"});
  std::string Json = renderJson(Findings);
  EXPECT_NE(Json.find("\\\"odd\\\""), std::string::npos);
  EXPECT_NE(Json.find("\\t"), std::string::npos);
  EXPECT_NE(Json.find("\\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Findings ordering
//===----------------------------------------------------------------------===//

TEST(LintOrderTest, FindingsAreSorted) {
  std::vector<Finding> Findings = lintFixture("src/hot_alloc.cpp");
  for (size_t I = 1; I < Findings.size(); ++I)
    EXPECT_FALSE(Findings[I] < Findings[I - 1])
        << "findings must come back sorted";
}

} // namespace
