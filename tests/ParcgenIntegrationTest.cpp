//===- tests/ParcgenIntegrationTest.cpp - generated-code round trip -------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end check of parcgen: tests/data/accumulator.pci is compiled by
/// the parcgen *tool at build time* (see tests/CMakeLists.txt) into
/// AccumulatorGen.h; this file implements the generated skeleton and
/// drives the generated proxy over a live SCOOPP runtime.
///
//===----------------------------------------------------------------------===//

#include "AccumulatorGen.h"
#include "core/ObjectManager.h"
#include "net/Network.h"
#include "vm/Cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

using namespace parcs;
using namespace parcs::sim;
using parcstest::gen::AccumulatorProxy;
using parcstest::gen::AccumulatorSkeleton;

namespace {

/// Implementation of the generated skeleton.
class AccumulatorImpl : public AccumulatorSkeleton {
public:
  using AccumulatorSkeleton::AccumulatorSkeleton;

  sim::Task<Unit> add(int32_t Value) override {
    co_await Host.compute(SimTime::microseconds(1));
    Sum += Value;
    co_return Unit();
  }

  sim::Task<Unit> addMany(std::vector<int32_t> Values) override {
    for (int32_t V : Values)
      Sum += V;
    co_return Unit();
  }

  sim::Task<int32_t> total() override { co_return Sum; }

  sim::Task<std::string> describe(std::string Prefix, bool Upper) override {
    std::string Text = Prefix + std::to_string(Sum);
    if (Upper)
      std::transform(Text.begin(), Text.end(), Text.begin(), [](char C) {
        return static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
      });
    co_return Text;
  }

  sim::Task<double> scale(double Factor) override {
    co_return Sum * Factor;
  }

  sim::Task<int64_t> big(int64_t X) override { co_return X * 2; }

  sim::Task<scoopp::ParallelRef> self() override { co_return SelfRef; }

  sim::Task<Unit> note(scoopp::ParallelRef Peer) override {
    LastPeer = Peer;
    co_return Unit();
  }

  int32_t Sum = 0;
  scoopp::ParallelRef SelfRef;
  scoopp::ParallelRef LastPeer;
};

struct GenWorld {
  GenWorld()
      : Machines(3, vm::VmKind::MonoVm117), Net(Machines.sim(), 3),
        Runtime(Machines, Net, [] {
          scoopp::ParallelClassRegistry Registry;
          parcstest::gen::registerAccumulatorClass<AccumulatorImpl>(Registry);
          return Registry;
        }()) {}

  Simulator &sim() { return Machines.sim(); }

  vm::Cluster Machines;
  net::Network Net;
  scoopp::ScooppRuntime Runtime;
};

TEST(ParcgenIntegrationTest, GeneratedProxyAndSkeletonInteroperate) {
  GenWorld W;
  bool Done = false;
  struct Proc {
    static Task<void> run(GenWorld &W, bool &Done) {
      AccumulatorProxy P(W.Runtime, 0);
      Error E = co_await P.create();
      EXPECT_FALSE(E) << E.str();

      co_await P.add(5);
      co_await P.add(7);
      std::vector<int32_t> More = {1, 2, 3};
      co_await P.addMany(More);

      auto Total = co_await P.total();
      EXPECT_TRUE(Total.hasValue());
      if (Total) {
        EXPECT_EQ(*Total, 18);
      }

      auto Text = co_await P.describe("sum=", true);
      EXPECT_TRUE(Text.hasValue());
      if (Text) {
        EXPECT_EQ(*Text, "SUM=18");
      }

      auto Scaled = co_await P.scale(0.5);
      EXPECT_TRUE(Scaled.hasValue());
      if (Scaled) {
        EXPECT_DOUBLE_EQ(*Scaled, 9.0);
      }

      auto Big = co_await P.big(1LL << 40);
      EXPECT_TRUE(Big.hasValue());
      if (Big) {
        EXPECT_EQ(*Big, 1LL << 41);
      }
      Done = true;
    }
  };
  W.sim().spawn(Proc::run(W, Done));
  W.sim().run();
  EXPECT_TRUE(Done);
}

TEST(ParcgenIntegrationTest, RefArgumentsRoundTrip) {
  GenWorld W;
  bool Done = false;
  struct Proc {
    static Task<void> run(GenWorld &W, bool &Done) {
      AccumulatorProxy A(W.Runtime, 0);
      AccumulatorProxy B(W.Runtime, 0);
      (void)co_await A.create();
      (void)co_await B.create();
      // Pass B's reference to A through the generated ref<> plumbing.
      co_await A.note(B.ref());
      co_await A.flush();
      // Bind a third proxy to B through the wire-transported ref and use
      // it.
      AccumulatorProxy C(W.Runtime, 2);
      C.bind(AccumulatorProxy::ClassName, B.ref());
      co_await C.add(11);
      auto Total = co_await C.total();
      EXPECT_TRUE(Total.hasValue());
      if (Total) {
        EXPECT_EQ(*Total, 11);
      }
      Done = true;
    }
  };
  W.sim().spawn(Proc::run(W, Done));
  W.sim().run();
  EXPECT_TRUE(Done);
}

TEST(ParcgenIntegrationTest, GeneratedAsyncCallsAggregate) {
  GenWorld W;
  struct Proc {
    static Task<void> run(GenWorld &W) {
      AccumulatorProxy P(W.Runtime, 0);
      (void)co_await P.create();
      for (int32_t I = 1; I <= 12; ++I)
        co_await P.add(I);
      auto Total = co_await P.total();
      EXPECT_TRUE(Total.hasValue());
      if (Total) {
        EXPECT_EQ(*Total, 78);
      }
    }
  };
  scoopp::ScooppConfig Config; // Unused here; default world.
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(ParcgenIntegrationTest, GeneratedDispatchRejectsUnknownMethod) {
  GenWorld W;
  struct Proc {
    static Task<void> run(GenWorld &W) {
      AccumulatorProxy P(W.Runtime, 0);
      (void)co_await P.create();
      auto Out = co_await P.invokeSync("nope", {});
      EXPECT_FALSE(Out.hasValue());
      if (!Out) {
        EXPECT_EQ(Out.error().code(), ErrorCode::UnknownMethod);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

TEST(ParcgenIntegrationTest, GeneratedDispatchRejectsMalformedArgs) {
  GenWorld W;
  struct Proc {
    static Task<void> run(GenWorld &W) {
      AccumulatorProxy P(W.Runtime, 0);
      (void)co_await P.create();
      remoting::Bytes Junk = {1};
      auto Out = co_await P.invokeSync("scale", Junk);
      EXPECT_FALSE(Out.hasValue());
      if (!Out) {
        EXPECT_EQ(Out.error().code(), ErrorCode::MalformedMessage);
      }
    }
  };
  W.sim().spawn(Proc::run(W));
  W.sim().run();
}

} // namespace
