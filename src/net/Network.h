//===- net/Network.h - Switched Ethernet model ------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster interconnect: a switched, full-duplex 100 Mbit Ethernet (the
/// paper's testbed fabric).  The model captures the mechanisms that shape
/// Fig. 8's curves:
///
///  - packetisation: payloads are segmented at the TCP MSS and each packet
///    pays Ethernet+IP+TCP framing overhead, so small messages see poor
///    goodput and large messages approach ~11.9 MB/s;
///  - NIC transmit serialisation: one frame at a time leaves a node, in
///    send order (FIFO);
///  - receive-port contention with cut-through pipelining: a message's
///    receive occupancy overlaps its transmit occupancy (offset by one
///    packet time plus switch latency); concurrent senders to one receiver
///    serialise on the receiver's downlink;
///  - switch latency: a fixed per-message forwarding delay.
///
/// Messages carry real bytes; the protocol stacks above put their actual
/// envelopes in the payload, so wire sizes are honest.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_NET_NETWORK_H
#define PARCS_NET_NETWORK_H

#include "sim/Channel.h"
#include "sim/Simulator.h"
#include "sim/Sync.h"
#include "vm/Calibration.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace parcs::net {

/// A datagram delivered between nodes.  Payload bytes are the real encoded
/// bytes produced by the layer above.
struct Message {
  int Src = -1;
  int Dst = -1;
  int Port = -1;
  uint64_t Id = 0;
  /// Causal id (trace::CausalContext::Id) of the latest fabric-level DAG
  /// node for this message: the sender's context on submission, the
  /// net.wire span's id on delivery.  0 when tracing is off -- the field
  /// is a POD rider, never an allocation.
  uint64_t TraceCtx = 0;
  std::vector<uint8_t> Payload;
};

/// Fabric parameters; defaults reproduce the paper's testbed.
struct NetConfig {
  double LinkBitsPerSecond = calib::LinkBitsPerSecond;
  int FrameOverheadBytes = calib::FrameOverheadBytes;
  int MaxSegmentBytes = calib::MaxSegmentBytes;
  sim::SimTime SwitchLatency = calib::SwitchLatency;
  /// Fault injection: when positive, every Nth non-loopback message is
  /// lost after occupying the wire (deterministic drop pattern).  Layers
  /// above must cope (e.g. RPC call timeouts).
  int DropEveryNth = 0;
};

/// Wire-timing math shared by the serial Network and the PDES fabric
/// (net/PdesFabric.h): packetisation and latency as pure functions of the
/// config, so both fabrics price a byte stream identically and the PDES
/// lookahead is derived from the same constants the serial model bills.
namespace wiremath {
/// Serialisation time of \p Bytes on the link.
sim::SimTime packetTime(const NetConfig &Config, size_t Bytes);
/// Time the wire is occupied by \p PayloadBytes (packetised, with framing).
sim::SimTime wireTime(const NetConfig &Config, size_t PayloadBytes);
/// Serialisation time of the first packet (cut-through pipelining offset).
sim::SimTime firstPacketTime(const NetConfig &Config, size_t PayloadBytes);
/// Conservative lower bound (ns) on the send-to-deliver latency of any
/// cross-node message under \p Config: switch latency plus the
/// empty-payload first-packet and wire-drain floors.  Always positive
/// (framing overhead alone takes nonzero wire time), so it is a valid PDES
/// window width: no message can cross partitions faster than this.
int64_t minLatencyNs(const NetConfig &Config);
} // namespace wiremath

/// Interface the fault-injection subsystem (src/fault) implements.  The
/// fabric consults the installed hook at well-defined points; a null hook
/// (the default) leaves the event stream and wire bytes exactly as before,
/// which is what keeps the determinism golden trace valid for fault-free
/// runs.
class FaultHook {
public:
  virtual ~FaultHook();

  /// Why a message did (or did not) reach its destination port.
  enum class Verdict : uint8_t {
    Deliver,       ///< Pass through (possibly after payload corruption).
    DropLoss,      ///< Probabilistic / burst loss clause fired.
    DropPartition, ///< An active partition separates src and dst.
    DropNodeDown,  ///< The destination node is crashed.
  };

  /// False while \p Node is crashed: its NIC blackholes in both
  /// directions (sends vanish at the source, deliveries at the sink).
  virtual bool nodeAlive(int Node) const = 0;

  /// Extra one-way delay for (\p Src -> \p Dst) at the current virtual
  /// time (latency-degradation clauses).  Zero means no added delay and
  /// no extra simulator event.
  virtual sim::SimTime extraLatency(int Src, int Dst) = 0;

  /// Consulted after the message occupied the wire, right before
  /// delivery.  May mutate \p Payload (bit corruption) and still return
  /// Deliver; any Drop verdict loses the message after it consumed
  /// bandwidth, like real tail drops.
  virtual Verdict onDeliver(int Src, int Dst,
                            std::vector<uint8_t> &Payload) = 0;
};

/// The switched-Ethernet fabric connecting \c NodeCount nodes.
class Network {
public:
  Network(sim::Simulator &Sim, int NodeCount, NetConfig Config = NetConfig());
  Network(const Network &) = delete;
  Network &operator=(const Network &) = delete;
  /// Folds the fabric counters into the global metrics registry.
  ~Network();

  sim::Simulator &sim() { return Sim; }
  int nodeCount() const { return static_cast<int>(Nics.size()); }
  const NetConfig &config() const { return Config; }

  /// Binds (node, port) and returns the delivery channel.  Binding twice
  /// returns the same channel.
  sim::Channel<Message> &bind(int NodeId, int Port);
  bool isBound(int NodeId, int Port) const;

  /// Queues \p Payload for transmission from \p Src to (\p Dst, \p Port).
  /// Non-suspending; the transfer proceeds in virtual time and the message
  /// appears on the destination channel when the last packet arrives.
  /// The destination port must already be bound.  \p TraceCtx is the
  /// sender's causal id; the fabric chains net.queue/net.wire DAG nodes
  /// under it and delivers the final id in Message::TraceCtx.
  void send(int Src, int Dst, int Port, std::vector<uint8_t> Payload,
            uint64_t TraceCtx = 0);

  /// Time the wire is occupied by \p PayloadBytes (packetised, with
  /// framing).
  sim::SimTime wireTime(size_t PayloadBytes) const;

  /// Serialisation time of the first packet of a message (cut-through
  /// pipelining offset).
  sim::SimTime firstPacketTime(size_t PayloadBytes) const;

  uint64_t messagesDelivered() const { return Delivered; }
  uint64_t payloadBytesDelivered() const { return PayloadBytes; }
  uint64_t wireBytesCarried() const { return WireBytes; }
  uint64_t messagesDropped() const { return Dropped; }
  uint64_t framesCarried() const { return Frames; }
  /// Subset of messagesDropped() caused by the fault hook (loss clauses,
  /// partitions, dead nodes); DropEveryNth drops are not included.
  uint64_t messagesFaultDropped() const { return FaultDropped; }

  /// Installs (or clears, with nullptr) the fault-injection hook.  The
  /// hook must outlive all traffic; layers above may key behaviour off a
  /// non-null hook (the RPC engine enables frame checksums), so install
  /// it before any messages flow.
  void setFaultHook(FaultHook *Hook) { this->Hook = Hook; }
  FaultHook *faultHook() const { return Hook; }

private:
  struct Nic {
    explicit Nic(sim::Simulator &Sim) : TxSlot(Sim, 1) {}
    /// Serialises transmissions out of this node, FIFO.
    sim::Semaphore TxSlot;
    /// When this node's receive downlink becomes free (virtual-time
    /// bookkeeping; reservations are made at transmit start).
    sim::SimTime RxFreeAt;
  };

  sim::Task<void> transfer(Message Msg);
  sim::SimTime packetTime(size_t Bytes) const;

  sim::Simulator &Sim;
  NetConfig Config;
  std::vector<std::unique_ptr<Nic>> Nics;
  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<Message>>> Ports;
  uint64_t NextMessageId = 1;
  uint64_t Delivered = 0;
  uint64_t PayloadBytes = 0;
  uint64_t WireBytes = 0;
  uint64_t Dropped = 0;
  uint64_t FaultDropped = 0;
  uint64_t TransferCount = 0;
  FaultHook *Hook = nullptr;
  /// Ethernet frames carried (packetised segments of non-loopback sends).
  uint64_t Frames = 0;
  /// Non-loopback transfers currently occupying the fabric, and the
  /// high-water mark (queue-depth view of the interconnect).
  int64_t InFlight = 0;
  int64_t PeakInFlight = 0;
};

} // namespace parcs::net

#endif // PARCS_NET_NETWORK_H
