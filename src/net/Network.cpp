//===- net/Network.cpp ----------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "net/Network.h"

#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace parcs;
using namespace parcs::net;

FaultHook::~FaultHook() = default;

Network::~Network() {
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("net.messages_delivered").add(Delivered);
  Reg.counter("net.messages_dropped").add(Dropped);
  Reg.counter("net.messages_fault_dropped").add(FaultDropped);
  Reg.counter("net.payload_bytes").add(PayloadBytes);
  Reg.counter("net.wire_bytes").add(WireBytes);
  Reg.counter("net.frames").add(Frames);
  Reg.gauge("net.peak_in_flight").noteMax(PeakInFlight);
}

Network::Network(sim::Simulator &Sim, int NodeCount, NetConfig Config)
    : Sim(Sim), Config(Config) {
  assert(NodeCount > 0 && "network needs at least one node");
  assert(Config.LinkBitsPerSecond > 0 && "link rate must be positive");
  assert(Config.MaxSegmentBytes > 0 && "MSS must be positive");
  Nics.reserve(static_cast<size_t>(NodeCount));
  for (int I = 0; I < NodeCount; ++I)
    Nics.push_back(std::make_unique<Nic>(Sim));
}

sim::Channel<Message> &Network::bind(int NodeId, int Port) {
  assert(NodeId >= 0 && NodeId < nodeCount() && "bind: bad node id");
  auto &Slot = Ports[{NodeId, Port}];
  if (!Slot)
    Slot = std::make_unique<sim::Channel<Message>>(Sim);
  return *Slot;
}

bool Network::isBound(int NodeId, int Port) const {
  return Ports.count({NodeId, Port}) != 0;
}

sim::SimTime wiremath::packetTime(const NetConfig &Config, size_t Bytes) {
  double Seconds = static_cast<double>(Bytes) * 8.0 / Config.LinkBitsPerSecond;
  return sim::SimTime::fromSecondsF(Seconds);
}

sim::SimTime wiremath::wireTime(const NetConfig &Config, size_t PayloadBytes) {
  size_t Mss = static_cast<size_t>(Config.MaxSegmentBytes);
  size_t Packets = PayloadBytes == 0 ? 1 : (PayloadBytes + Mss - 1) / Mss;
  size_t TotalBytes =
      PayloadBytes + Packets * static_cast<size_t>(Config.FrameOverheadBytes);
  return packetTime(Config, TotalBytes);
}

sim::SimTime wiremath::firstPacketTime(const NetConfig &Config,
                                       size_t PayloadBytes) {
  size_t Mss = static_cast<size_t>(Config.MaxSegmentBytes);
  size_t FirstPayload = PayloadBytes < Mss ? PayloadBytes : Mss;
  return packetTime(Config, FirstPayload +
                                static_cast<size_t>(Config.FrameOverheadBytes));
}

int64_t wiremath::minLatencyNs(const NetConfig &Config) {
  int64_t Floor = (Config.SwitchLatency + firstPacketTime(Config, 0) +
                   wireTime(Config, 0))
                      .nanosecondsCount();
  assert(Floor > 0 && "degenerate config: zero cross-node latency");
  return Floor;
}

sim::SimTime Network::packetTime(size_t Bytes) const {
  return wiremath::packetTime(Config, Bytes);
}

sim::SimTime Network::wireTime(size_t PayloadBytes) const {
  return wiremath::wireTime(Config, PayloadBytes);
}

sim::SimTime Network::firstPacketTime(size_t PayloadBytes) const {
  return wiremath::firstPacketTime(Config, PayloadBytes);
}

void Network::send(int Src, int Dst, int Port, std::vector<uint8_t> Payload,
                   uint64_t TraceCtx) {
  assert(Src >= 0 && Src < nodeCount() && "send: bad source node");
  assert(Dst >= 0 && Dst < nodeCount() && "send: bad destination node");
  assert(isBound(Dst, Port) && "send: destination port not bound");
  if (Hook && !Hook->nodeAlive(Src)) {
    // A crashed node's NIC blackholes: the send vanishes at the source
    // without occupying the wire.
    ++Dropped;
    ++FaultDropped;
    return;
  }
  Message Msg;
  Msg.Src = Src;
  Msg.Dst = Dst;
  Msg.Port = Port;
  Msg.Id = NextMessageId++;
  // Loopback skips the fabric, so the sender's context passes through
  // unchanged; transfer() replaces it with the net.wire node's id.
  Msg.TraceCtx = TraceCtx;
  Msg.Payload = std::move(Payload);
  if (Src == Dst) {
    // Loopback: no wire, but keep it asynchronous (one event-queue hop) so
    // local and remote sends have the same re-entrancy behaviour.  A plain
    // callback event -- the capture fits the inline buffer, so unlike the
    // remote path there is no coroutine frame per message.
    sim::Channel<Message> &Chan = bind(Dst, Port);
    Sim.schedule(sim::SimTime(),
                 [this, &Chan, Msg = std::move(Msg)]() mutable {
                   if (Hook && !Hook->nodeAlive(Msg.Dst)) {
                     // The node crashed between send and delivery.
                     ++Dropped;
                     ++FaultDropped;
                     return;
                   }
                   ++Delivered;
                   PayloadBytes += Msg.Payload.size();
                   Chan.trySend(std::move(Msg));
                 });
    return;
  }
  Sim.spawn(transfer(std::move(Msg)));
}

sim::Task<void> Network::transfer(Message Msg) {
  Nic &Tx = *Nics[static_cast<size_t>(Msg.Src)];
  Nic &Rx = *Nics[static_cast<size_t>(Msg.Dst)];

  // The async span covers queueing on the source NIC through delivery (or
  // drop); the in-flight series is the fabric's queue depth over time.
  int64_t EnqueueNs = Sim.now().nanosecondsCount();
  trace::asyncBegin(Msg.Src, "net.transfer", EnqueueNs, Msg.Id);
  ++InFlight;
  if (InFlight > PeakInFlight)
    PeakInFlight = InFlight;
  trace::counter(-1, "net.in_flight", EnqueueNs, InFlight);

  co_await Tx.TxSlot.acquire();

  sim::SimTime Wire = wireTime(Msg.Payload.size());
  sim::SimTime TxStart = Sim.now();

  // DAG leg 1: time queued behind earlier messages on this NIC.
  uint64_t QueueCtx = 0;
  if (trace::enabled()) {
    QueueCtx = trace::mintCausalId();
    trace::completeCtx(Msg.Src, 0, "net.queue", EnqueueNs,
                       TxStart.nanosecondsCount() - EnqueueNs, QueueCtx,
                       Msg.TraceCtx);
  }

  // Reserve the receiver's downlink now (cut-through: the first packet
  // reaches the receiver one packet time + switch latency after transmit
  // starts; later packets pipeline behind it).
  sim::SimTime RxStart = TxStart + firstPacketTime(Msg.Payload.size()) +
                         Config.SwitchLatency;
  if (Rx.RxFreeAt > RxStart)
    RxStart = Rx.RxFreeAt;
  sim::SimTime RxDone = RxStart + Wire;
  Rx.RxFreeAt = RxDone;

  // Occupy our uplink for the transmit time, then free it for the next
  // message queued on this node.
  co_await Sim.delay(Wire);
  Tx.TxSlot.release();

  // Wait until the last packet has drained through the receiver's port.
  if (RxDone > Sim.now())
    co_await Sim.delay(RxDone - Sim.now());

  size_t Mss = static_cast<size_t>(Config.MaxSegmentBytes);
  size_t Packets =
      Msg.Payload.empty() ? 1 : (Msg.Payload.size() + Mss - 1) / Mss;
  WireBytes += Msg.Payload.size() +
               Packets * static_cast<size_t>(Config.FrameOverheadBytes);
  Frames += Packets;

  --InFlight;
  int64_t DoneNs = Sim.now().nanosecondsCount();
  trace::counter(-1, "net.in_flight", DoneNs, InFlight);
  trace::asyncEnd(Msg.Src, "net.transfer", DoneNs, Msg.Id);

  // DAG leg 2: transmit start through last-packet drain at the receiver.
  // Delivery below hands the wire node's id to the dispatcher.
  if (trace::enabled()) {
    uint64_t WireCtx = trace::mintCausalId();
    trace::completeCtx(Msg.Src, 0, "net.wire", TxStart.nanosecondsCount(),
                       DoneNs - TxStart.nanosecondsCount(), WireCtx, QueueCtx);
    Msg.TraceCtx = WireCtx;
  }

  // Fault injection: the message occupied the wire but is lost before
  // delivery.
  ++TransferCount;
  if (Config.DropEveryNth > 0 &&
      TransferCount % static_cast<uint64_t>(Config.DropEveryNth) == 0) {
    ++Dropped;
    trace::instant(Msg.Dst, 0, "net.drop", Sim.now().nanosecondsCount());
    LogNodeScope Scope(Msg.Dst);
    PARCS_LOG(Debug, "net: dropped msg " << Msg.Id << " (fault injection)");
    co_return;
  }

  // Seeded fault injection (src/fault): extra latency first, then the
  // delivery verdict.  The hook owns its own trace/metric emission; the
  // fabric only accounts the drop.
  if (Hook) {
    sim::SimTime Extra = Hook->extraLatency(Msg.Src, Msg.Dst);
    if (Extra > sim::SimTime())
      co_await Sim.delay(Extra);
    FaultHook::Verdict V = Hook->onDeliver(Msg.Src, Msg.Dst, Msg.Payload);
    if (V != FaultHook::Verdict::Deliver) {
      ++Dropped;
      ++FaultDropped;
      LogNodeScope Scope(Msg.Dst);
      PARCS_LOG(Debug, "net: fault-dropped msg " << Msg.Id << " ("
                                                 << static_cast<int>(V)
                                                 << ")");
      co_return;
    }
  }

  ++Delivered;
  PayloadBytes += Msg.Payload.size();

  {
    LogNodeScope Scope(Msg.Dst);
    PARCS_LOG(Debug, "net: delivered msg " << Msg.Id << " " << Msg.Src << "->"
                                           << Msg.Dst << ":" << Msg.Port
                                           << " (" << Msg.Payload.size()
                                           << "B)");
  }
  sim::Channel<Message> &Port = bind(Msg.Dst, Msg.Port);
  Port.trySend(std::move(Msg));
}
