//===- net/PdesFabric.h - Partitioned message fabric ------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-partition message fabric for PDES runs: node-to-node datagram
/// delivery over the parallel executor's mailboxes, priced with the same
/// wiremath the serial Network bills (packetisation, per-source transmit
/// serialization, switch latency), and with seeded fault-plan evaluation.
///
/// The serial Network cannot run under the parallel executor unchanged --
/// its receive-port reservation (Nic::RxFreeAt) is written at *transmit*
/// start by the sender, i.e. cross-node shared state mutated mid-window.
/// The fabric therefore keeps all mutable state partition-owned:
///
///  - per-source transmit serialization (TxFreeNs[src]) is touched only by
///    the source node's partition;
///  - delivery is an envelope posted through Partition::post, landing on
///    the destination's calendar at send-time-computed timestamps;
///  - fault clauses are evaluated as pure functions of the plan and the
///    virtual time (crash/partition windows), or drawn from a per-source
///    Rng in the source's deterministic send order (loss/corruption) -- no
///    clause consults another partition's state.
///
/// The conservative lookahead the executor needs is
/// wiremath::minLatencyNs(config): no message can arrive sooner than the
/// switch latency plus the empty-payload serialization floors, so a window
/// of exactly that width never buffers an envelope into its own window.
///
/// Intra-node sends keep the serial loopback shape (one zero-delay event
/// hop, no wire); intra-partition cross-node sends take the same pricing
/// as cross-partition ones, so the event stream does not depend on the
/// partition map's alignment with the node map.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_NET_PDESFABRIC_H
#define PARCS_NET_PDESFABRIC_H

#include "fault/FaultPlan.h"
#include "net/Network.h"
#include "sim/Channel.h"
#include "sim/ParallelExecutor.h"
#include "support/Random.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace parcs::net {

/// Datagram fabric over a ParallelExecutor's partitions.
class PdesFabric {
public:
  /// Nodes 0..NodeCount-1 are assigned round-robin to the executor's
  /// partitions (node n lives on partition n % K).
  PdesFabric(sim::ParallelExecutor &Exec, int NodeCount,
             NetConfig Config = NetConfig());
  PdesFabric(const PdesFabric &) = delete;
  PdesFabric &operator=(const PdesFabric &) = delete;
  /// Folds fabric counters into the global metrics registry.
  ~PdesFabric();

  /// The executor lookahead this fabric requires (see file comment).
  static int64_t lookaheadNs(const NetConfig &Config) {
    return wiremath::minLatencyNs(Config);
  }

  int nodeCount() const { return int(NodePartition.size()); }
  const NetConfig &config() const { return Config; }

  /// Partition owning \p Node.
  int partitionOf(int Node) const {
    return NodePartition[size_t(Node)];
  }

  /// The simulator \p Node's coroutines must run on.
  sim::Simulator &simOf(int Node) {
    return Exec.partition(partitionOf(Node)).sim();
  }

  /// Binds (node, port) and returns the delivery channel (owned by the
  /// node's partition simulator).  Setup-time only: call before run().
  sim::Channel<Message> &bind(int Node, int Port);

  /// Queues \p Payload from \p Src to (\p Dst, \p Port).  Non-suspending;
  /// must be called from code running on \p Src's partition (a node only
  /// sends from itself).  The destination port must already be bound.
  void send(int Src, int Dst, int Port, std::vector<uint8_t> Payload);

  /// Installs the seeded fault schedule.  Setup-time only.
  void setPlan(fault::FaultPlan Plan);

  // Counters, summed over per-partition shards; read only after run().
  // Same vocabulary as the serial Network, so telemetry reads identically
  // whichever fabric carried the traffic.
  uint64_t messagesDelivered() const;
  uint64_t messagesDropped() const;
  uint64_t payloadBytesDelivered() const;
  uint64_t wireBytesCarried() const;
  uint64_t framesCarried() const;
  /// Peak concurrent transfers outstanding from any one source (the
  /// fabric has no global in-flight count: that would be cross-partition
  /// shared state written on every send).
  int64_t peakInFlight() const;

private:
  /// Per-partition counter shard, cache-line sized so two partitions'
  /// deliveries never write the same line.
  struct alignas(64) Shard {
    uint64_t Delivered = 0;
    uint64_t Dropped = 0;
    uint64_t PayloadBytes = 0;
    uint64_t WireBytes = 0;
    uint64_t Frames = 0;
    int64_t PeakInFlight = 0;
  };

  /// True when \p Node is crashed at \p AtNs (pure function of the plan).
  bool nodeDownAt(int Node, int64_t AtNs) const;
  /// True when a partition clause separates \p A and \p B at \p AtNs.
  bool linkCutAt(int A, int B, int64_t AtNs) const;
  /// Runs on the destination partition at delivery time.
  void deliver(Message Msg, bool Lost, int64_t AtNs);

  sim::ParallelExecutor &Exec;
  NetConfig Config;
  std::vector<int> NodePartition;
  /// When node n's uplink frees (written only by n's partition).
  std::vector<int64_t> TxFreeNs;
  /// Loss/corruption draws, one stream per source node in send order
  /// (written only by the source's partition).
  std::vector<std::unique_ptr<Rng>> NodeRng;
  /// Delivery times of transfers still on the wire, per source (written
  /// only by the source's partition; pruned lazily at each send).
  std::vector<std::vector<int64_t>> SrcInFlight;
  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<Message>>> Ports;
  std::vector<Shard> Shards;
  fault::FaultPlan Plan;
  /// Message ids are (src << 48 | per-source sequence) so id minting stays
  /// partition-owned (a single shared counter would race and leak the
  /// interleaving into ids).
  std::vector<uint64_t> NextMsgSeq;
};

} // namespace parcs::net

#endif // PARCS_NET_PDESFABRIC_H
