//===- net/PdesFabric.cpp -------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "net/PdesFabric.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace parcs;
using namespace parcs::net;

PdesFabric::PdesFabric(sim::ParallelExecutor &Exec, int NodeCount,
                       NetConfig Config)
    : Exec(Exec), Config(Config) {
  assert(NodeCount > 0 && "fabric needs at least one node");
  int K = Exec.partitionCount();
  NodePartition.reserve(size_t(NodeCount));
  for (int Node = 0; Node < NodeCount; ++Node)
    NodePartition.push_back(Node % K);
  TxFreeNs.assign(size_t(NodeCount), 0);
  NextMsgSeq.assign(size_t(NodeCount), 1);
  SrcInFlight.resize(size_t(NodeCount));
  NodeRng.reserve(size_t(NodeCount));
  for (int Node = 0; Node < NodeCount; ++Node)
    NodeRng.push_back(std::make_unique<Rng>(uint64_t(Node) + 1));
  Shards.resize(size_t(K));
  // Ring creation mutates the shared trace table; do it now, while we are
  // still serial, so parallel workers only ever write pre-sized,
  // node-disjoint rings.
  trace::reserveNodes(NodeCount - 1);
}

PdesFabric::~PdesFabric() {
  // Same names the serial Network folds, so end-of-run reports -- and the
  // telemetry plane reading them live -- are fabric-agnostic.  Every
  // fabric drop is fault-induced (loss, link cut, crashed endpoint), so
  // the fault-drop counter mirrors the total.
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("net.messages_delivered").add(messagesDelivered());
  Reg.counter("net.messages_dropped").add(messagesDropped());
  Reg.counter("net.messages_fault_dropped").add(messagesDropped());
  Reg.counter("net.payload_bytes").add(payloadBytesDelivered());
  Reg.counter("net.wire_bytes").add(wireBytesCarried());
  Reg.counter("net.frames").add(framesCarried());
  Reg.gauge("net.peak_in_flight").noteMax(peakInFlight());
}

void PdesFabric::setPlan(fault::FaultPlan NewPlan) {
  Plan = std::move(NewPlan);
  // One draw stream per source node, in the source's deterministic send
  // order; seeds derive from the plan seed so identical (plan, workload)
  // pairs replay bit-for-bit.
  for (size_t Node = 0; Node < NodeRng.size(); ++Node)
    NodeRng[Node]->reseed(Plan.Seed * 0x9e3779b97f4a7c15ULL + Node + 1);
}

sim::Channel<Message> &PdesFabric::bind(int Node, int Port) {
  assert(Node >= 0 && Node < nodeCount() && "bind: bad node id");
  auto &Slot = Ports[{Node, Port}];
  if (!Slot)
    Slot = std::make_unique<sim::Channel<Message>>(simOf(Node));
  return *Slot;
}

bool PdesFabric::nodeDownAt(int Node, int64_t AtNs) const {
  for (const fault::CrashEvent &C : Plan.Crashes) {
    if (C.Node != Node)
      continue;
    int64_t From = C.At.nanosecondsCount();
    int64_t Until = C.RestartAt.nanosecondsCount();
    if (AtNs >= From && (Until == 0 || AtNs < Until))
      return true;
  }
  return false;
}

bool PdesFabric::linkCutAt(int A, int B, int64_t AtNs) const {
  for (const fault::Partition &P : Plan.Partitions) {
    if (!((P.NodeA == A && P.NodeB == B) || (P.NodeA == B && P.NodeB == A)))
      continue;
    int64_t From = P.From.nanosecondsCount();
    int64_t Until = P.Until.nanosecondsCount();
    if (AtNs >= From && (Until == 0 || AtNs < Until))
      return true;
  }
  return false;
}

// PARCS_HOT_BEGIN(pdes-fabric-send): per-message cost on the sending
// partition.  All state touched here -- TxFreeNs[Src], NodeRng[Src], the
// outbox row -- is owned by Src's partition; nothing cross-partition is
// read or written before the mailbox post.

void PdesFabric::send(int Src, int Dst, int Port, std::vector<uint8_t> Payload) {
  assert(Src >= 0 && Src < nodeCount() && "send: bad source node");
  assert(Dst >= 0 && Dst < nodeCount() && "send: bad destination node");
  assert(Ports.count({Dst, Port}) != 0 && "send: destination port not bound");

  sim::Partition &SrcPart = Exec.partition(partitionOf(Src));
  int64_t NowNs = SrcPart.sim().now().nanosecondsCount();

  if (nodeDownAt(Src, NowNs)) {
    // A crashed node's NIC blackholes: the send vanishes at the source.
    ++Shards[size_t(partitionOf(Src))].Dropped;
    return;
  }

  Message Msg;
  Msg.Src = Src;
  Msg.Dst = Dst;
  Msg.Port = Port;
  Msg.Id = (uint64_t(Src) << 48) | NextMsgSeq[size_t(Src)]++;
  Msg.Payload = std::move(Payload);

  if (Src == Dst) {
    // Loopback: no wire, but keep the one-event-hop asynchrony of the
    // serial fabric so local and remote sends re-enter identically.
    sim::Channel<Message> &Chan = *Ports[{Dst, Port}];
    Shard &S = Shards[size_t(partitionOf(Dst))];
    SrcPart.sim().schedule(
        sim::SimTime(), [&Chan, &S, Msg = std::move(Msg)]() mutable {
          ++S.Delivered;
          S.PayloadBytes += Msg.Payload.size();
          Chan.trySend(std::move(Msg));
        });
    return;
  }

  // Transmit serialization on the source uplink, then cut-through
  // delivery: first packet + switch latency ahead of the full drain.
  int64_t WireNs = wiremath::wireTime(Config, Msg.Payload.size())
                       .nanosecondsCount();
  int64_t StartNs = std::max(NowNs, TxFreeNs[size_t(Src)]);
  TxFreeNs[size_t(Src)] = StartNs + WireNs;
  int64_t DeliverNs =
      StartNs + WireNs + Config.SwitchLatency.nanosecondsCount() +
      wiremath::firstPacketTime(Config, Msg.Payload.size()).nanosecondsCount();

  // Latency-degradation clauses, evaluated at send time.
  for (const fault::LatencyClause &L : Plan.Latencies) {
    int64_t From = L.From.nanosecondsCount();
    int64_t Until = L.Until.nanosecondsCount();
    if (NowNs >= From && (Until == 0 || NowNs < Until))
      DeliverNs += L.Extra.nanosecondsCount();
  }

  // Wire accounting and the net.transfer span, mirrored from the serial
  // Network so telemetry reads identically whichever fabric runs.  Both
  // transfer endpoints are known at send time (DeliverNs is computed, not
  // awaited), so the whole span is recorded here on *Src's* trace ring --
  // the serial fabric's global node -1 counter ring would be written by
  // every partition at once.  Lost messages still occupy the wire, like
  // real tail drops, and still count frames.
  size_t Mss = size_t(Config.MaxSegmentBytes);
  size_t Packets =
      Msg.Payload.empty() ? 1 : (Msg.Payload.size() + Mss - 1) / Mss;
  Shard &SrcShard = Shards[size_t(partitionOf(Src))];
  SrcShard.WireBytes +=
      Msg.Payload.size() + Packets * size_t(Config.FrameOverheadBytes);
  SrcShard.Frames += Packets;
  std::vector<int64_t> &Open = SrcInFlight[size_t(Src)];
  Open.erase(std::remove_if(Open.begin(), Open.end(),
                            [NowNs](int64_t T) { return T <= NowNs; }),
             Open.end());
  Open.push_back(DeliverNs);
  if (int64_t(Open.size()) > SrcShard.PeakInFlight)
    SrcShard.PeakInFlight = int64_t(Open.size());
  trace::asyncBegin(Src, "net.transfer", NowNs, Msg.Id);
  trace::counter(Src, "net.in_flight", NowNs, int64_t(Open.size()));
  trace::asyncEnd(Src, "net.transfer", DeliverNs, Msg.Id);

  // Loss and corruption draws come from the *source's* stream in send
  // order, so the draw sequence -- and therefore the fault outcome -- is
  // independent of thread count.  Lost messages still occupy the wire
  // (TxFreeNs already advanced) and are dropped at the destination, like
  // real tail drops.
  bool Lost = false;
  Rng &R = *NodeRng[size_t(Src)];
  for (const fault::LossClause &L : Plan.Losses) {
    int64_t From = L.From.nanosecondsCount();
    int64_t Until = L.Until.nanosecondsCount();
    if (NowNs >= From && (Until == 0 || NowNs < Until) &&
        R.nextDouble() < L.Probability)
      Lost = true;
  }
  for (const fault::CorruptClause &C : Plan.Corruptions) {
    int64_t From = C.From.nanosecondsCount();
    int64_t Until = C.Until.nanosecondsCount();
    if (NowNs >= From && (Until == 0 || NowNs < Until) &&
        !Msg.Payload.empty() && R.nextDouble() < C.Probability) {
      size_t Bit = size_t(R.nextBelow(Msg.Payload.size() * 8));
      Msg.Payload[Bit / 8] ^= uint8_t(1u << (Bit % 8));
    }
  }
  if (linkCutAt(Src, Dst, NowNs))
    Lost = true;

  // The envelope outlives the window; the capture exceeds the inline
  // buffer for large payloads, which is fine off the per-partition hot
  // loop (cross-partition mail is the priced, slower path by design).
  int DstPart = partitionOf(Dst);
  SrcPart.post(DstPart, DeliverNs,
               sim::EventCallback([this, Lost, DeliverNs,
                                   Msg = std::move(Msg)]() mutable {
                 deliver(std::move(Msg), Lost, DeliverNs);
               }));
}

// PARCS_HOT_END

void PdesFabric::deliver(Message Msg, bool Lost, int64_t AtNs) {
  Shard &S = Shards[size_t(partitionOf(Msg.Dst))];
  if (Lost || nodeDownAt(Msg.Dst, AtNs)) {
    ++S.Dropped;
    trace::instant(Msg.Dst, 0, "net.drop", AtNs);
    return;
  }
  ++S.Delivered;
  S.PayloadBytes += Msg.Payload.size();
  auto It = Ports.find({Msg.Dst, Msg.Port});
  assert(It != Ports.end() && "delivery to an unbound port");
  It->second->trySend(std::move(Msg));
}

uint64_t PdesFabric::messagesDelivered() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Delivered;
  return Total;
}

uint64_t PdesFabric::messagesDropped() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Dropped;
  return Total;
}

uint64_t PdesFabric::payloadBytesDelivered() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.PayloadBytes;
  return Total;
}

uint64_t PdesFabric::wireBytesCarried() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.WireBytes;
  return Total;
}

uint64_t PdesFabric::framesCarried() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards)
    Total += S.Frames;
  return Total;
}

int64_t PdesFabric::peakInFlight() const {
  int64_t Peak = 0;
  for (const Shard &S : Shards)
    Peak = std::max(Peak, S.PeakInFlight);
  return Peak;
}
