//===- sim/Simulator.h - Discrete-event simulation kernel -------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic discrete-event simulator.  All concurrency in the
/// reproduction (cluster nodes, VM threads, network transfers) runs as
/// coroutines scheduled on this single-threaded virtual-time event loop, so
/// every run is reproducible bit-for-bit on any machine.
///
/// Events with equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), which makes wake-up ordering of
/// semaphores, channels and futures deterministic as well.
///
/// The kernel is built for throughput -- every paper figure is millions of
/// events:
///  - event callbacks are InlineFunction with a 64-byte inline buffer, so
///    the common captures (a handle, a promise, a small message) never heap
///    allocate;
///  - coroutine resumes (the single hottest event kind: channel wake-ups,
///    delays, semaphore grants) store the raw std::coroutine_handle<> in
///    the event node, with no closure at all;
///  - the pending-event set is the two-level calendar queue in SimKernel
///    (FIFO fast lane + time buckets + overflow heap, free-list recycled
///    nodes: zero allocations per event in steady state).
///
/// The calendar queue, clock and sequence counter live in sim/SimKernel.h
/// so the PDES parallel executor (sim/ParallelExecutor.h) can instantiate
/// one kernel per partition; this class binds a kernel to the coroutine
/// runtime (spawn/reap, delay awaitable, log clock) and remains the
/// single-threaded front door the rest of the library uses.  See
/// docs/perf.md for the design notes and bench/sim_kernel for the numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_SIMULATOR_H
#define PARCS_SIM_SIMULATOR_H

#include "sim/SimKernel.h"
#include "sim/SimTime.h"
#include "sim/Task.h"
#include "support/Logging.h"
#include "support/Statistics.h"

#include <coroutine>
#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace parcs::sim {

/// Single-threaded virtual-time event loop.
class Simulator {
public:
  /// Construction knobs.  Partition simulators under the parallel executor
  /// disable the log-clock install: the global log clock is process-wide
  /// state, and only the executor's lead simulator may own it.
  struct Options {
    bool InstallLogClock = true;
    /// Periodic queue-depth trace sampling writes the simulator-wide (pid
    /// 0) trace ring, which partitions do not own; the executor disables
    /// it for partition simulators.
    bool SampleQueueDepth = true;
  };

  Simulator() : Simulator(Options{}) {}
  explicit Simulator(Options Opts);
  Simulator(const Simulator &) = delete;
  Simulator &operator=(const Simulator &) = delete;
  ~Simulator();

  /// Current virtual time.
  SimTime now() const { return SimTime::nanoseconds(Kernel.nowNs()); }

  /// Number of events executed so far.
  uint64_t eventsProcessed() const { return EventCount; }

  // PARCS_HOT_BEGIN(schedule-inline): the inline half of the kernel; the
  // callable must be emplaced straight into a recycled node.

  /// Schedules \p Fn to run \p Delay after the current time.
  template <typename F> void schedule(SimTime Delay, F &&Fn) {
    scheduleAt(now() + Delay, std::forward<F>(Fn));
  }

  /// Schedules \p Fn at absolute time \p At (must not be in the past).
  /// The callable is constructed directly into a recycled event node --
  /// no temporary wrapper, no relocation.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F> &>)
  void scheduleAt(SimTime At, F &&Fn) {
    assert(At.nanosecondsCount() >= Kernel.nowNs() &&
           "scheduling into the past");
    if constexpr (!EventCallback::fitsInline<std::decay_t<F>>())
      Kernel.noteSboMiss();
    SimKernel::EventNode *Node =
        Kernel.allocNode(At.nanosecondsCount(), Kernel.takeSeq());
    Node->Fn.emplace(std::forward<F>(Fn));
    Kernel.insert(Node);
  }

  /// Overload for a pre-built callback (moved into the node).
  void scheduleAt(SimTime At, EventCallback &&Fn);

  /// Schedules \p Handle to be resumed \p Delay from now.  Stores the raw
  /// handle -- no closure, no allocation.
  void scheduleResume(SimTime Delay, std::coroutine_handle<> Handle) {
    scheduleResumeAt(now() + Delay, Handle);
  }

  /// Absolute-time variant of scheduleResume.
  void scheduleResumeAt(SimTime At, std::coroutine_handle<> Handle);

  // PARCS_HOT_END

  /// Detaches \p T and starts it from the event loop at the current time.
  /// The coroutine frame self-destroys on completion or, if still pending,
  /// is destroyed when the simulator is destroyed (or at reapDetached()).
  void spawn(Task<void> T);

  /// Destroys every detached coroutine frame that has not completed, in
  /// spawn order.  Only callable between run()s (never from inside the
  /// event loop).  Teardown hook for owners of state those frames
  /// reference: a crashed node parks its frames forever, so they outlive
  /// run() and would otherwise be destroyed only by ~Simulator -- after
  /// shorter-lived layers (e.g. the SCOOPP runtime) are already gone.
  void reapDetached();

  /// Awaitable that suspends the caller for \p Duration of virtual time.
  auto delay(SimTime Duration) {
    struct Awaiter {
      Simulator &Sim;
      SimTime Duration;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> Handle) {
        Sim.scheduleResume(Duration, Handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, Duration};
  }

  /// Runs one event.  Returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains or \p MaxEvents have executed.
  /// Returns the number of events executed.
  uint64_t run(uint64_t MaxEvents = UINT64_MAX);

  /// Runs events with timestamp <= \p Until (and advances the clock to
  /// \p Until even if the queue drains earlier).
  void runUntil(SimTime Until);

  /// Runs events with timestamp strictly < \p EndNs, leaving the clock at
  /// the last executed event.  The PDES window loop: events at the window
  /// end belong to the next window.  Returns events executed.
  uint64_t runBefore(int64_t EndNs);

  /// Time (ns) of the earliest pending event, INT64_MAX when idle.  The
  /// PDES executor uses this to place the next window.
  int64_t earliestNs() { return Kernel.earliestOrMaxNs(); }

  /// Number of pending events.
  size_t pendingCount() const { return Kernel.pendingCount(); }

  /// The underlying event kernel (clock + calendar queue).
  SimKernel &kernel() { return Kernel; }

  /// Scheduler observability counters accumulated since construction.
  const SchedulerCounters &counters() const { return Kernel.counters(); }

  /// Counters as a printable name/value group (for benches and logs).
  CounterGroup counterSnapshot() const;

private:
  friend void detail::detachedTaskFinished(Simulator &Sim, void *Frame);

  /// Executes one popped event (shared tail of step()).
  void execute(SimKernel::EventNode *Node);
  /// Cold path of step()'s periodic queue-depth sampling; out of line so
  /// the per-event cost stays one in-register test.
  void sampleQueueDepth(int64_t AtNs);

  SimKernel Kernel;
  uint64_t EventCount = 0;

  /// Whether this simulator installed itself as the log time source (and
  /// must restore PrevLogClock on destruction).
  bool OwnsLogClock = false;
  /// Whether step() samples queue depth into the shared trace ring.
  bool SampleDepth = true;
  /// Log clock that was active before this simulator installed itself as
  /// the time source; restored on destruction (simulators nest in tests).
  LogClock PrevLogClock;

  /// Frames of detached coroutines still alive, keyed to their spawn order.
  /// ~Simulator destroys them in spawn order (sorted by the value), so
  /// teardown side effects -- child Task destructors, logging -- are
  /// deterministic instead of following the hash layout.
  std::unordered_map<void *, uint64_t> LiveDetached;
  uint64_t NextDetachSeq = 0;
};

} // namespace parcs::sim

#endif // PARCS_SIM_SIMULATOR_H
