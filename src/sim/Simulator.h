//===- sim/Simulator.h - Discrete-event simulation kernel -------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic discrete-event simulator.  All concurrency in the
/// reproduction (cluster nodes, VM threads, network transfers) runs as
/// coroutines scheduled on this single-threaded virtual-time event loop, so
/// every run is reproducible bit-for-bit on any machine.
///
/// Events with equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), which makes wake-up ordering of
/// semaphores, channels and futures deterministic as well.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_SIMULATOR_H
#define PARCS_SIM_SIMULATOR_H

#include "sim/SimTime.h"
#include "sim/Task.h"

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace parcs::sim {

/// Single-threaded virtual-time event loop.
class Simulator {
public:
  Simulator() = default;
  Simulator(const Simulator &) = delete;
  Simulator &operator=(const Simulator &) = delete;
  ~Simulator();

  /// Current virtual time.
  SimTime now() const { return Now; }

  /// Number of events executed so far.
  uint64_t eventsProcessed() const { return EventCount; }

  /// Schedules \p Fn to run \p Delay after the current time.
  void schedule(SimTime Delay, std::function<void()> Fn) {
    scheduleAt(Now + Delay, std::move(Fn));
  }

  /// Schedules \p Fn at absolute time \p At (must not be in the past).
  void scheduleAt(SimTime At, std::function<void()> Fn);

  /// Schedules \p Handle to be resumed \p Delay from now.
  void scheduleResume(SimTime Delay, std::coroutine_handle<> Handle) {
    schedule(Delay, [Handle] { Handle.resume(); });
  }

  /// Detaches \p T and starts it from the event loop at the current time.
  /// The coroutine frame self-destroys on completion or, if still pending,
  /// is destroyed when the simulator is destroyed.
  void spawn(Task<void> T);

  /// Awaitable that suspends the caller for \p Duration of virtual time.
  auto delay(SimTime Duration) {
    struct Awaiter {
      Simulator &Sim;
      SimTime Duration;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> Handle) {
        Sim.scheduleResume(Duration, Handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, Duration};
  }

  /// Runs one event.  Returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains or \p MaxEvents have executed.
  /// Returns the number of events executed.
  uint64_t run(uint64_t MaxEvents = UINT64_MAX);

  /// Runs events with timestamp <= \p Until (and advances the clock to
  /// \p Until even if the queue drains earlier).
  void runUntil(SimTime Until);

private:
  friend void detail::detachedTaskFinished(Simulator &Sim, void *Frame);

  struct Scheduled {
    SimTime At;
    uint64_t Seq;
    std::function<void()> Fn;
  };
  struct Later {
    bool operator()(const Scheduled &A, const Scheduled &B) const {
      if (A.At != B.At)
        return B.At < A.At;
      return B.Seq < A.Seq;
    }
  };

  SimTime Now;
  uint64_t NextSeq = 0;
  uint64_t EventCount = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> Queue;
  /// Frames of detached coroutines still alive; destroyed in ~Simulator.
  std::unordered_set<void *> LiveDetached;
};

} // namespace parcs::sim

#endif // PARCS_SIM_SIMULATOR_H
