//===- sim/Simulator.h - Discrete-event simulation kernel -------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic discrete-event simulator.  All concurrency in the
/// reproduction (cluster nodes, VM threads, network transfers) runs as
/// coroutines scheduled on this single-threaded virtual-time event loop, so
/// every run is reproducible bit-for-bit on any machine.
///
/// Events with equal timestamps fire in scheduling order (a monotonically
/// increasing sequence number breaks ties), which makes wake-up ordering of
/// semaphores, channels and futures deterministic as well.
///
/// The kernel is built for throughput -- every paper figure is millions of
/// events:
///  - event callbacks are InlineFunction with a 64-byte inline buffer, so
///    the common captures (a handle, a promise, a small message) never heap
///    allocate;
///  - coroutine resumes (the single hottest event kind: channel wake-ups,
///    delays, semaphore grants) store the raw std::coroutine_handle<> in
///    the event node, with no closure at all;
///  - the pending-event set is a two-level calendar queue with a FIFO fast
///    lane: events scheduled exactly at the current time (wake-ups) go to a
///    plain FIFO -- push order there is already (time, seq) order --
///    near-future events live in time-bucketed per-bucket heaps, and
///    far-future events in an overflow heap that drains into the buckets as
///    the window advances;
///  - event nodes are recycled through a free list, so a steady-state run
///    performs zero allocations per event.
///
/// Pop order is strictly (time, sequence) -- the unique key makes the order
/// independent of heap layout, so the calendar queue is observably
/// identical to the textbook binary-heap implementation, just faster.  See
/// docs/perf.md for the design notes and bench/sim_kernel for the numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_SIMULATOR_H
#define PARCS_SIM_SIMULATOR_H

#include "sim/SimTime.h"
#include "sim/Task.h"
#include "support/InlineFunction.h"
#include "support/Logging.h"
#include "support/Statistics.h"

#include <coroutine>
#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace parcs::sim {

/// Event callback storage: 64 inline bytes covers every capture on the
/// kernel's hot paths (the largest is a network Message plus two pointers).
using EventCallback = parcs::InlineFunction<void(), 64>;

/// Scheduler observability counters (see Simulator::counters).  Plain
/// struct so benches can diff snapshots.
struct SchedulerCounters {
  /// Events executed, by kind.
  uint64_t CallbackEvents = 0;
  uint64_t ResumeEvents = 0;
  /// High-water mark of pending events.
  uint64_t PeakQueueDepth = 0;
  /// Callback captures that exceeded the inline buffer (heap fallback).
  uint64_t SboMisses = 0;
  /// Event nodes allocated (free-list misses; steady state allocates none).
  uint64_t NodesAllocated = 0;
  /// Events that landed beyond the calendar window, into the overflow heap.
  uint64_t OverflowInserts = 0;
  /// Times the calendar window jumped forward to the overflow minimum.
  uint64_t WindowAdvances = 0;
};

/// Single-threaded virtual-time event loop.
class Simulator {
public:
  Simulator();
  Simulator(const Simulator &) = delete;
  Simulator &operator=(const Simulator &) = delete;
  ~Simulator();

  /// Current virtual time.
  SimTime now() const { return Now; }

  /// Number of events executed so far.
  uint64_t eventsProcessed() const { return EventCount; }

  // PARCS_HOT_BEGIN(schedule-inline): the inline half of the kernel; the
  // callable must be emplaced straight into a recycled node.

  /// Schedules \p Fn to run \p Delay after the current time.
  template <typename F> void schedule(SimTime Delay, F &&Fn) {
    scheduleAt(Now + Delay, std::forward<F>(Fn));
  }

  /// Schedules \p Fn at absolute time \p At (must not be in the past).
  /// The callable is constructed directly into a recycled event node --
  /// no temporary wrapper, no relocation.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F> &>)
  void scheduleAt(SimTime At, F &&Fn) {
    assert(At >= Now && "scheduling into the past");
    if constexpr (!EventCallback::fitsInline<std::decay_t<F>>())
      ++Counters.SboMisses;
    EventNode *Node = allocNode(At, NextSeq++);
    Node->Fn.emplace(std::forward<F>(Fn));
    insert(Node);
  }

  /// Overload for a pre-built callback (moved into the node).
  void scheduleAt(SimTime At, EventCallback &&Fn);

  /// Schedules \p Handle to be resumed \p Delay from now.  Stores the raw
  /// handle -- no closure, no allocation.
  void scheduleResume(SimTime Delay, std::coroutine_handle<> Handle) {
    scheduleResumeAt(Now + Delay, Handle);
  }

  /// Absolute-time variant of scheduleResume.
  void scheduleResumeAt(SimTime At, std::coroutine_handle<> Handle);

  // PARCS_HOT_END

  /// Detaches \p T and starts it from the event loop at the current time.
  /// The coroutine frame self-destroys on completion or, if still pending,
  /// is destroyed when the simulator is destroyed (or at reapDetached()).
  void spawn(Task<void> T);

  /// Destroys every detached coroutine frame that has not completed, in
  /// spawn order.  Only callable between run()s (never from inside the
  /// event loop).  Teardown hook for owners of state those frames
  /// reference: a crashed node parks its frames forever, so they outlive
  /// run() and would otherwise be destroyed only by ~Simulator -- after
  /// shorter-lived layers (e.g. the SCOOPP runtime) are already gone.
  void reapDetached();

  /// Awaitable that suspends the caller for \p Duration of virtual time.
  auto delay(SimTime Duration) {
    struct Awaiter {
      Simulator &Sim;
      SimTime Duration;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> Handle) {
        Sim.scheduleResume(Duration, Handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, Duration};
  }

  /// Runs one event.  Returns false when the queue is empty.
  bool step();

  /// Runs until the event queue drains or \p MaxEvents have executed.
  /// Returns the number of events executed.
  uint64_t run(uint64_t MaxEvents = UINT64_MAX);

  /// Runs events with timestamp <= \p Until (and advances the clock to
  /// \p Until even if the queue drains earlier).
  void runUntil(SimTime Until);

  /// Scheduler observability counters accumulated since construction.
  const SchedulerCounters &counters() const { return Counters; }

  /// Counters as a printable name/value group (for benches and logs).
  CounterGroup counterSnapshot() const;

private:
  friend void detail::detachedTaskFinished(Simulator &Sim, void *Frame);

  /// One pending event.  Resume events carry the raw coroutine handle (Fn
  /// stays empty); callback events carry Fn (Handle stays null).  Nodes are
  /// recycled through FreeList, linked via NextFree.
  struct EventNode {
    int64_t AtNs = 0;
    uint64_t Seq = 0;
    EventNode *NextFree = nullptr;
    std::coroutine_handle<> Handle;
    EventCallback Fn;
  };

  /// Calendar geometry: 4096 buckets of 2^9 ns (512 ns) cover a ~2 ms
  /// near-future window -- wider than one RPC round trip, narrower than the
  /// coarse timeouts that belong in the overflow heap.  Narrow buckets keep
  /// the per-bucket heaps a handful of entries, and the scan hint only
  /// moves forward, so the sparse-bucket scan is amortized O(1) per pop.
  static constexpr int BucketShift = 9;
  static constexpr size_t BucketCountLog2 = 12;
  static constexpr size_t NumBuckets = size_t(1) << BucketCountLog2;

  EventNode *allocNode(SimTime At, uint64_t Seq);
  void insert(EventNode *Node);
  void recycle(EventNode *Node);
  /// Removes and returns the earliest event, or null when empty.
  EventNode *popEarliest();
  /// Time of the earliest pending event; only valid when PendingCount > 0.
  int64_t earliestTimeNs();
  /// Repositions the calendar window at the overflow minimum and drains
  /// every overflow event that now falls inside it.
  void advanceWindow();
  /// Executes one popped event (shared tail of step()).
  void execute(EventNode *Node);
  /// Cold path of step()'s periodic queue-depth sampling; out of line so
  /// the per-event cost stays one in-register test.
  void sampleQueueDepth(int64_t AtNs);
  void freeAllNodes();

  SimTime Now;
  uint64_t NextSeq = 0;
  uint64_t EventCount = 0;

  /// Power-of-two ring buffer of event nodes (the immediate lane).
  class EventFifo {
  public:
    EventFifo() : Slots(64), Mask(63) {}
    bool empty() const { return Count == 0; }
    size_t size() const { return Count; }
    EventNode *front() const { return Slots[Head]; }
    void push(EventNode *Node) {
      if (Count == Slots.size())
        grow();
      Slots[(Head + Count) & Mask] = Node;
      ++Count;
    }
    EventNode *pop() {
      EventNode *Node = Slots[Head];
      Head = (Head + 1) & Mask;
      --Count;
      return Node;
    }

  private:
    void grow();
    std::vector<EventNode *> Slots;
    size_t Mask;
    size_t Head = 0;
    size_t Count = 0;
  };

  /// Events scheduled at exactly the current time, in push order.  Because
  /// Now is non-decreasing and Seq is increasing, push order here IS
  /// (time, seq) order, so the head is always this lane's minimum.
  EventFifo Immediate;
  /// Near-future buckets; each is a (time, seq) min-heap of node pointers.
  std::vector<std::vector<EventNode *>> Buckets;
  /// One bit per bucket (set = non-empty), so finding the next occupied
  /// bucket is a word scan + countr_zero instead of touching each bucket.
  std::vector<uint64_t> BucketBits;
  void markBucket(size_t Idx) {
    BucketBits[Idx >> 6] |= uint64_t(1) << (Idx & 63);
  }
  void unmarkBucket(size_t Idx) {
    BucketBits[Idx >> 6] &= ~(uint64_t(1) << (Idx & 63));
  }
  /// First occupied bucket index >= From; call only when BucketedCount > 0.
  size_t firstOccupiedBucket(size_t From) const;
  /// Events at or beyond WindowEndNs, as a (time, seq) min-heap.
  std::vector<EventNode *> Overflow;
  /// Window start (multiple of the bucket width) and one-past-the-end.
  int64_t WindowStartNs = 0;
  int64_t WindowEndNs = 0;
  /// Lowest bucket index that may be non-empty (scan hint).
  size_t ScanHint = 0;
  /// Events currently in Buckets / in total.
  size_t BucketedCount = 0;
  size_t PendingCount = 0;

  EventNode *FreeList = nullptr;
  SchedulerCounters Counters;

  /// Log clock that was active before this simulator installed itself as
  /// the time source; restored on destruction (simulators nest in tests).
  LogClock PrevLogClock;

  /// Frames of detached coroutines still alive, keyed to their spawn order.
  /// ~Simulator destroys them in spawn order (sorted by the value), so
  /// teardown side effects -- child Task destructors, logging -- are
  /// deterministic instead of following the hash layout.
  std::unordered_map<void *, uint64_t> LiveDetached;
  uint64_t NextDetachSeq = 0;
};

} // namespace parcs::sim

#endif // PARCS_SIM_SIMULATOR_H
