//===- sim/Partition.h - One PDES partition ---------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One partition of a conservatively parallelized simulation: a private
/// Simulator (own calendar queue, clock, sequence counter and event arena)
/// plus the cross-partition mail plumbing.  Simulated nodes are assigned to
/// partitions statically; everything a node does -- its coroutines, timers,
/// channels -- lives on its partition's simulator and is only ever touched
/// by the one thread currently running that partition.
///
/// Cross-partition interaction goes through post(): the *sending* partition
/// appends an envelope (timestamp + callback) to a per-destination outbox
/// row during its window, and the thread that owns the destination drains
/// the rows after the window barrier, in ascending source-partition order
/// (see ParallelExecutor).  Because the destination's sequence counter
/// stamps envelopes in that fixed drain order, the merged mail pops in
/// canonical (time, src-partition, send-order) order regardless of thread
/// count or interleaving -- this is the whole determinism argument, made
/// local: no partition ever observes *when* another partition ran, only the
/// timestamped mail it sent.
///
/// Conservative lookahead makes the buffering sound: a window is
/// [T, T + L) where L is the minimum cross-partition latency, so an
/// envelope posted at time t >= T lands at t + latency >= T + L -- always
/// at or beyond the window end, never inside a window another partition is
/// still executing.  post() asserts exactly this.
///
/// Each partition folds an FNV-1a digest over its executed event stream
/// (event index, timestamp -- the same shape as the DeterminismTest golden
/// hash); the executor combines partition digests in partition order into
/// one run digest that must be identical for any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_PARTITION_H
#define PARCS_SIM_PARTITION_H

#include "sim/Simulator.h"

#include <cstdint>
#include <vector>

namespace parcs::sim {

/// Order-sensitive FNV-1a over a stream of 64-bit words.
struct EventDigest {
  uint64_t State = 14695981039346656037ULL;
  void mix(uint64_t Value) {
    for (int I = 0; I < 8; ++I) {
      State ^= (Value >> (8 * I)) & 0xff;
      State *= 1099511628211ULL;
    }
  }
};

/// One partition: a private simulator plus outgoing mailbox rows.
class Partition {
public:
  Partition(int Id, int PartitionCount);
  Partition(const Partition &) = delete;
  Partition &operator=(const Partition &) = delete;

  int id() const { return Id; }
  Simulator &sim() { return Sim; }

  /// Posts \p Fn to run on partition \p Dst at absolute time \p AtNs.
  /// Same-partition posts schedule directly; cross-partition posts are
  /// buffered into the outbox row for \p Dst and merged at the next window
  /// barrier.  Called only by the thread running this partition's window
  /// (or serially outside any window).
  void post(int Dst, int64_t AtNs, EventCallback Fn);

  /// Runs this partition's events with timestamp < \p EndNs, folding the
  /// executed stream into the partition digest.  Returns events executed.
  uint64_t runWindow(int64_t EndNs);

  /// Drains the outbox rows addressed to this partition, in ascending
  /// source-partition order, stamping fresh local sequence numbers in
  /// drain order.  Called by the thread owning this partition, strictly
  /// between window barriers.  \p All is the executor's partition array.
  void mergeInbox(const std::vector<Partition *> &All);

  /// Digest over the events this partition executed (stable across thread
  /// counts by construction).
  uint64_t digest() const { return Digest.State; }

  /// Cross-partition envelopes this partition sent / received.
  uint64_t mailSent() const { return MailSent; }
  uint64_t mailMerged() const { return MailMerged; }

private:
  friend class ParallelExecutor;

  struct Envelope {
    int64_t AtNs;
    EventCallback Fn;
  };

  const int Id;
  /// One-past-the-end of the window currently (or last) executed; posts
  /// during a window must not land before it.  INT64_MAX outside windows
  /// (setup/teardown run serially, where buffering is trivially safe).
  int64_t WindowEndNs = 0;
  Simulator Sim;
  /// Out[Dst]: envelopes this partition sent to Dst during the current
  /// window, in send order.  Written only by the thread running this
  /// partition; drained only by the thread owning Dst, after a barrier.
  std::vector<std::vector<Envelope>> Out;
  EventDigest Digest;
  uint64_t MailSent = 0;
  uint64_t MailMerged = 0;
};

} // namespace parcs::sim

#endif // PARCS_SIM_PARTITION_H
