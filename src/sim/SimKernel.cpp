//===- sim/SimKernel.cpp --------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The two-level calendar queue.  Near-future events (inside a ~2 ms window
// of 4096 buckets, 512 ns each) sit in per-bucket (time, seq) min-heaps;
// far-future events sit in one overflow min-heap.  When the buckets drain,
// the window jumps to the overflow minimum and every overflow event inside
// the new window migrates into buckets.
//
// Correctness does not depend on the window placement: popEarliest always
// compares the first-bucket minimum against the overflow top, so an event
// that lands outside the current window (e.g. scheduled after runUntil
// fast-forwarded the clock) is still popped in exact (time, seq) order.
// Because the (time, seq) key is unique per event, pop order is independent
// of heap internals -- runs are bit-for-bit identical to the former
// binary-heap kernel.
//
//===----------------------------------------------------------------------===//

#include "sim/SimKernel.h"

#include <algorithm>
#include <bit>

using namespace parcs;
using namespace parcs::sim;

/// Min-heap order on the unique (time, seq) key.
static bool laterThan(int64_t AtA, uint64_t SeqA, int64_t AtB, uint64_t SeqB) {
  if (AtA != AtB)
    return AtB < AtA;
  return SeqB < SeqA;
}

SimKernel::SimKernel() : Buckets(NumBuckets), BucketBits(NumBuckets / 64) {
  WindowEndNs = WindowStartNs + (int64_t(NumBuckets) << BucketShift);
}

SimKernel::~SimKernel() { freeAllNodes(); }

size_t SimKernel::firstOccupiedBucket(size_t From) const {
  size_t Word = From >> 6;
  uint64_t Bits = BucketBits[Word] & (~uint64_t(0) << (From & 63));
  while (!Bits)
    Bits = BucketBits[++Word];
  return (Word << 6) + size_t(std::countr_zero(Bits));
}

void SimKernel::EventFifo::grow() {
  std::vector<EventNode *> Bigger(Slots.size() * 2);
  for (size_t I = 0; I < Count; ++I)
    Bigger[I] = Slots[(Head + I) & Mask];
  Slots = std::move(Bigger);
  Mask = Slots.size() - 1;
  Head = 0;
}

void SimKernel::freeAllNodes() {
  while (!Immediate.empty())
    delete Immediate.pop();
  for (std::vector<EventNode *> &Bucket : Buckets)
    for (EventNode *Node : Bucket)
      delete Node;
  Buckets.clear();
  for (EventNode *Node : Overflow)
    delete Node;
  Overflow.clear();
  while (FreeList) {
    EventNode *Next = FreeList->NextFree;
    delete FreeList;
    FreeList = Next;
  }
  BucketedCount = PendingCount = 0;
}

// PARCS_HOT_BEGIN(calendar-queue-kernel): every event pays alloc/insert/
// pop once; a steady-state run must not allocate here.

void SimKernel::insert(EventNode *Node) {
  ++PendingCount;
  Counters.PeakQueueDepth = std::max<uint64_t>(Counters.PeakQueueDepth,
                                               PendingCount);
  auto HeapPush = [](std::vector<EventNode *> &Heap, EventNode *N) {
    Heap.push_back(N);
    std::push_heap(Heap.begin(), Heap.end(),
                   [](const EventNode *A, const EventNode *B) {
                     return laterThan(A->AtNs, A->Seq, B->AtNs, B->Seq);
                   });
  };
  if (Node->AtNs == NowNs) {
    Immediate.push(Node);
    return;
  }
  if (Node->AtNs >= WindowStartNs && Node->AtNs < WindowEndNs) {
    size_t Idx = size_t((Node->AtNs - WindowStartNs) >> BucketShift);
    HeapPush(Buckets[Idx], Node);
    markBucket(Idx);
    ++BucketedCount;
    ScanHint = std::min(ScanHint, Idx);
    return;
  }
  HeapPush(Overflow, Node);
  ++Counters.OverflowInserts;
}

void SimKernel::advanceWindow() {
  assert(BucketedCount == 0 && !Overflow.empty() && "nothing to advance to");
  ++Counters.WindowAdvances;
  auto Later = [](const EventNode *A, const EventNode *B) {
    return laterThan(A->AtNs, A->Seq, B->AtNs, B->Seq);
  };
  int64_t MinNs = Overflow.front()->AtNs;
  WindowStartNs = (MinNs >> BucketShift) << BucketShift;
  WindowEndNs = WindowStartNs + (int64_t(NumBuckets) << BucketShift);
  ScanHint = size_t((MinNs - WindowStartNs) >> BucketShift);
  while (!Overflow.empty() && Overflow.front()->AtNs < WindowEndNs) {
    std::pop_heap(Overflow.begin(), Overflow.end(), Later);
    EventNode *Node = Overflow.back();
    Overflow.pop_back();
    size_t Idx = size_t((Node->AtNs - WindowStartNs) >> BucketShift);
    Buckets[Idx].push_back(Node);
    std::push_heap(Buckets[Idx].begin(), Buckets[Idx].end(), Later);
    markBucket(Idx);
    ++BucketedCount;
  }
}

SimKernel::EventNode *SimKernel::popEarliest() {
  if (PendingCount == 0)
    return nullptr;
  if (Immediate.empty() && BucketedCount == 0)
    advanceWindow();
  // Three candidate lanes; every comparison uses the unique (time, seq)
  // key, so the winner -- and therefore the whole pop order -- does not
  // depend on which lane an event happened to land in.
  EventNode *Best = nullptr;
  enum { FromImmediate, FromBucket, FromOverflow } Src = FromImmediate;
  if (!Immediate.empty())
    Best = Immediate.front();
  size_t Idx = 0;
  if (BucketedCount > 0) {
    Idx = firstOccupiedBucket(ScanHint);
    ScanHint = Idx;
    EventNode *Candidate = Buckets[Idx].front();
    if (!Best || laterThan(Best->AtNs, Best->Seq, Candidate->AtNs,
                           Candidate->Seq)) {
      Best = Candidate;
      Src = FromBucket;
    }
  }
  // An event scheduled outside the current window (only possible after
  // runUntil fast-forwarded the clock past the window) sits in Overflow and
  // may precede every bucketed event.
  if (!Overflow.empty()) {
    EventNode *Candidate = Overflow.front();
    if (!Best || laterThan(Best->AtNs, Best->Seq, Candidate->AtNs,
                           Candidate->Seq)) {
      Best = Candidate;
      Src = FromOverflow;
    }
  }
  auto Later = [](const EventNode *A, const EventNode *B) {
    return laterThan(A->AtNs, A->Seq, B->AtNs, B->Seq);
  };
  switch (Src) {
  case FromImmediate:
    Immediate.pop();
    break;
  case FromBucket:
    std::pop_heap(Buckets[Idx].begin(), Buckets[Idx].end(), Later);
    Buckets[Idx].pop_back();
    if (Buckets[Idx].empty())
      unmarkBucket(Idx);
    --BucketedCount;
    break;
  case FromOverflow:
    std::pop_heap(Overflow.begin(), Overflow.end(), Later);
    Overflow.pop_back();
    break;
  }
  --PendingCount;
  return Best;
}

int64_t SimKernel::earliestTimeNs() {
  assert(PendingCount > 0 && "peeking an empty queue");
  if (Immediate.empty() && BucketedCount == 0)
    advanceWindow();
  int64_t Earliest = INT64_MAX;
  if (!Immediate.empty())
    Earliest = Immediate.front()->AtNs;
  if (BucketedCount > 0) {
    size_t Idx = firstOccupiedBucket(ScanHint);
    ScanHint = Idx;
    Earliest = std::min(Earliest, Buckets[Idx].front()->AtNs);
  }
  if (!Overflow.empty())
    Earliest = std::min(Earliest, Overflow.front()->AtNs);
  return Earliest;
}

// PARCS_HOT_END
