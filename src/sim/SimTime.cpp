//===- sim/SimTime.cpp ----------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "sim/SimTime.h"

#include <cstdio>

using namespace parcs::sim;

std::string SimTime::str() const {
  char Buffer[48];
  int64_t Abs = Ns < 0 ? -Ns : Ns;
  if (Abs < 1000)
    std::snprintf(Buffer, sizeof(Buffer), "%lldns",
                  static_cast<long long>(Ns));
  else if (Abs < 1000 * 1000)
    std::snprintf(Buffer, sizeof(Buffer), "%.1fus",
                  static_cast<double>(Ns) * 1e-3);
  else if (Abs < 1000 * 1000 * 1000)
    std::snprintf(Buffer, sizeof(Buffer), "%.3fms",
                  static_cast<double>(Ns) * 1e-6);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.3fs",
                  static_cast<double>(Ns) * 1e-9);
  return Buffer;
}
