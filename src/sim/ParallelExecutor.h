//===- sim/ParallelExecutor.h - Conservative PDES executor ------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conservative time-windowed parallel executor (classic
/// Chandy-Misra-Bryant style lookahead, specialized to a barrier-stepped
/// window loop).  Rounds alternate three phases over K partitions and W
/// worker threads (partition p is owned by worker p % W; the calling thread
/// is worker 0):
///
///   plan   (serial): T = min over partitions of next-event time;
///                    window = [T, T + L) where L is the lookahead;
///   execute (parallel): each partition runs its own events with
///                    timestamp < T + L on its private Simulator, buffering
///                    cross-partition sends into per-(src,dst) outbox rows;
///   merge  (parallel): after a barrier, each partition drains the rows
///                    addressed to it in ascending source order.
///
/// The lookahead L must be a lower bound on the latency of any
/// cross-partition interaction (for the network fabric: switch latency
/// plus the first-packet serialization floor -- see
/// net::PdesFabric::lookaheadNs).  Then mail produced inside a window
/// lands at or beyond the window end, so partitions cannot causally
/// interact *within* a window and may run it in any order or in parallel:
/// the merged schedule -- and the run digest -- is identical for any
/// thread count, including this executor at Threads=1.  (The legacy
/// single-Simulator path is a different, finer-grained interleaving; the
/// executor's canonical order is its own golden, pinned in PdesTest.)
///
/// Why conservative rather than optimistic (Time Warp): no rollback means
/// no state snapshots, no anti-messages, and -- decisive here -- event
/// handlers may keep arbitrary side effects (coroutine resumes, channel
/// wake-ups, trace records) that could not be unwound.  The price is that
/// parallelism is bounded by events-per-window, i.e. by how much lookahead
/// the fabric latency provides.
///
/// Enabled by the PARCS_SIM_THREADS environment knob (default 1);
/// simThreadsFromEnv() parses it.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_PARALLELEXECUTOR_H
#define PARCS_SIM_PARALLELEXECUTOR_H

#include "sim/Partition.h"
#include "sim/WindowBarrier.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace parcs::sim {

/// Executor shape: how many partitions the model is split into, how many
/// OS threads run them, and the conservative lookahead bound.
struct PdesConfig {
  int Partitions = 1;
  int Threads = 1;
  /// Lower bound (ns) on any cross-partition interaction latency.  Must be
  /// positive; windows have width LookaheadNs.
  int64_t LookaheadNs = 1;
};

/// Runs K partitions to completion in lookahead-bounded windows.
class ParallelExecutor {
public:
  explicit ParallelExecutor(PdesConfig Config);
  ParallelExecutor(const ParallelExecutor &) = delete;
  ParallelExecutor &operator=(const ParallelExecutor &) = delete;
  ~ParallelExecutor();

  int partitionCount() const { return int(Parts.size()); }
  Partition &partition(int Id) { return *Parts[size_t(Id)]; }
  const PdesConfig &config() const { return Config; }

  /// Runs windows until every partition drains.  Returns total events
  /// executed.  Callable once per executor.
  uint64_t run();

  /// Total events executed across partitions.
  uint64_t totalEvents() const;

  /// Run digest: per-partition event digests folded in partition order.
  /// Identical for any Threads value, by construction.
  uint64_t digest() const;

  /// Windows executed (parallelism diagnostics: totalEvents / windows() is
  /// the average events available per synchronization round).
  uint64_t windowCount() const { return Windows; }

  /// Cross-partition envelopes merged over the whole run.
  uint64_t mailMerged() const;

private:
  void workerLoop(int Worker);
  void executePhase(int Worker);
  void mergePhase(int Worker);

  PdesConfig Config;
  std::vector<std::unique_ptr<Partition>> Parts;
  /// Parts as raw pointers, in partition order (the merge order).
  std::vector<Partition *> PartPtrs;
  WindowBarrier Barrier;
  /// Round descriptor, published by worker 0 before the round-start
  /// barrier: the window end, or Stop to shut workers down.
  int64_t RoundEndNs = 0;
  bool Stop = false;
  uint64_t Windows = 0;
};

/// Parses PARCS_SIM_THREADS (default 1, clamped to [1, 64]).
int simThreadsFromEnv();

} // namespace parcs::sim

#endif // PARCS_SIM_PARALLELEXECUTOR_H
