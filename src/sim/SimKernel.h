//===- sim/SimKernel.h - Calendar-queue event kernel ------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation-free calendar-queue event kernel, extracted from the
/// single-threaded Simulator so the PDES executor can own one kernel *per
/// partition* (see sim/Partition.h).  A SimKernel is the pending-event set
/// plus the virtual clock and sequence counter that define pop order:
///
///  - events scheduled at exactly the current time go to a FIFO fast lane
///    (push order there is already (time, seq) order);
///  - near-future events live in time-bucketed per-bucket min-heaps behind
///    an occupancy bitmap;
///  - far-future events live in an overflow heap that drains into the
///    buckets as the window advances;
///  - event nodes are recycled through a free list, so a steady-state run
///    performs zero allocations per event.
///
/// Pop order is strictly (time, sequence); the unique key makes the order
/// independent of heap layout and of which lane an event landed in, so a
/// kernel's event stream is bit-for-bit reproducible.  The kernel is
/// single-threaded by contract: under the parallel executor every kernel is
/// owned by exactly one partition and only ever touched by the thread
/// currently running that partition (mailbox merges happen at window
/// barriers, never concurrently with execution).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_SIMKERNEL_H
#define PARCS_SIM_SIMKERNEL_H

#include "sim/SimTime.h"
#include "support/InlineFunction.h"

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <vector>

namespace parcs::sim {

/// Event callback storage: 64 inline bytes covers every capture on the
/// kernel's hot paths (the largest is a network Message plus two pointers).
using EventCallback = parcs::InlineFunction<void(), 64>;

/// Scheduler observability counters (see Simulator::counters).  Plain
/// struct so benches can diff snapshots.
struct SchedulerCounters {
  /// Events executed, by kind.
  uint64_t CallbackEvents = 0;
  uint64_t ResumeEvents = 0;
  /// High-water mark of pending events.
  uint64_t PeakQueueDepth = 0;
  /// Callback captures that exceeded the inline buffer (heap fallback).
  uint64_t SboMisses = 0;
  /// Event nodes allocated (free-list misses; steady state allocates none).
  uint64_t NodesAllocated = 0;
  /// Events that landed beyond the calendar window, into the overflow heap.
  uint64_t OverflowInserts = 0;
  /// Times the calendar window jumped forward to the overflow minimum.
  uint64_t WindowAdvances = 0;
};

/// The pending-event set of one virtual-time event loop: clock, sequence
/// counter, three-lane calendar queue and the recycling free list.
class SimKernel {
public:
  /// One pending event.  Resume events carry the raw coroutine handle (Fn
  /// stays empty); callback events carry Fn (Handle stays null).  Nodes are
  /// recycled through the free list, linked via NextFree.
  struct EventNode {
    int64_t AtNs = 0;
    uint64_t Seq = 0;
    EventNode *NextFree = nullptr;
    std::coroutine_handle<> Handle;
    EventCallback Fn;
  };

  SimKernel();
  SimKernel(const SimKernel &) = delete;
  SimKernel &operator=(const SimKernel &) = delete;
  ~SimKernel();

  /// Virtual clock, owned by the kernel so the Immediate-lane test and the
  /// not-into-the-past asserts agree with pop order by construction.
  int64_t nowNs() const { return NowNs; }
  void setNowNs(int64_t Ns) {
    assert(Ns >= NowNs && "kernel clock went backwards");
    NowNs = Ns;
  }

  /// Claims the next event sequence number (ties at equal timestamps pop in
  /// claim order).
  uint64_t takeSeq() { return NextSeq++; }

  size_t pendingCount() const { return PendingCount; }

  // PARCS_HOT_BEGIN(calendar-queue-alloc): the inline half of the kernel;
  // a steady-state run must recycle instead of allocating.

  /// Returns a recycled (or, on free-list miss, freshly allocated) node
  /// stamped with (\p AtNs, \p Seq).  The caller emplaces the payload and
  /// hands the node to insert().
  EventNode *allocNode(int64_t AtNs, uint64_t Seq) {
    EventNode *Node = FreeList;
    if (Node) {
      FreeList = Node->NextFree;
      Node->NextFree = nullptr;
    } else {
      // parcs-lint: allow(hot-path-alloc): free-list miss is the cold
      // warm-up path; NodesAllocated counters + bench zero-alloc assert
      // bound it.
      Node = new EventNode();
      ++Counters.NodesAllocated;
    }
    Node->AtNs = AtNs;
    Node->Seq = Seq;
    return Node;
  }

  /// Returns a dead node (payload already destroyed) to the free list.
  void recycle(EventNode *Node) {
    assert(!Node->Fn && !Node->Handle && "recycling a live event");
    Node->NextFree = FreeList;
    FreeList = Node;
  }

  // PARCS_HOT_END

  /// Links \p Node into the lane its timestamp selects.
  void insert(EventNode *Node);

  /// Removes and returns the earliest event, or null when empty.
  EventNode *popEarliest();

  /// Time of the earliest pending event; only valid when pendingCount() > 0.
  /// May advance the calendar window (deterministically) to find it.
  int64_t earliestTimeNs();

  /// earliestTimeNs() that is safe on an empty kernel (INT64_MAX then).
  int64_t earliestOrMaxNs() {
    return PendingCount == 0 ? INT64_MAX : earliestTimeNs();
  }

  /// Bookkeeping hook for callers whose callable fell off the inline
  /// buffer (the template schedule path detects this at compile time).
  void noteSboMiss() { ++Counters.SboMisses; }

  const SchedulerCounters &counters() const { return Counters; }
  SchedulerCounters &counters() { return Counters; }

private:
  /// Calendar geometry: 4096 buckets of 2^9 ns (512 ns) cover a ~2 ms
  /// near-future window -- wider than one RPC round trip, narrower than the
  /// coarse timeouts that belong in the overflow heap.  Narrow buckets keep
  /// the per-bucket heaps a handful of entries, and the scan hint only
  /// moves forward, so the sparse-bucket scan is amortized O(1) per pop.
  static constexpr int BucketShift = 9;
  static constexpr size_t BucketCountLog2 = 12;
  static constexpr size_t NumBuckets = size_t(1) << BucketCountLog2;

  /// Repositions the calendar window at the overflow minimum and drains
  /// every overflow event that now falls inside it.
  void advanceWindow();
  void freeAllNodes();

  /// Power-of-two ring buffer of event nodes (the immediate lane).
  class EventFifo {
  public:
    EventFifo() : Slots(64), Mask(63) {}
    bool empty() const { return Count == 0; }
    size_t size() const { return Count; }
    EventNode *front() const { return Slots[Head]; }
    void push(EventNode *Node) {
      if (Count == Slots.size())
        grow();
      Slots[(Head + Count) & Mask] = Node;
      ++Count;
    }
    EventNode *pop() {
      EventNode *Node = Slots[Head];
      Head = (Head + 1) & Mask;
      --Count;
      return Node;
    }

  private:
    void grow();
    std::vector<EventNode *> Slots;
    size_t Mask;
    size_t Head = 0;
    size_t Count = 0;
  };

  int64_t NowNs = 0;
  uint64_t NextSeq = 0;

  /// Events scheduled at exactly the current time, in push order.  Because
  /// NowNs is non-decreasing and Seq is increasing, push order here IS
  /// (time, seq) order, so the head is always this lane's minimum.
  EventFifo Immediate;
  /// Near-future buckets; each is a (time, seq) min-heap of node pointers.
  std::vector<std::vector<EventNode *>> Buckets;
  /// One bit per bucket (set = non-empty), so finding the next occupied
  /// bucket is a word scan + countr_zero instead of touching each bucket.
  std::vector<uint64_t> BucketBits;
  void markBucket(size_t Idx) {
    BucketBits[Idx >> 6] |= uint64_t(1) << (Idx & 63);
  }
  void unmarkBucket(size_t Idx) {
    BucketBits[Idx >> 6] &= ~(uint64_t(1) << (Idx & 63));
  }
  /// First occupied bucket index >= From; call only when BucketedCount > 0.
  size_t firstOccupiedBucket(size_t From) const;
  /// Events at or beyond WindowEndNs, as a (time, seq) min-heap.
  std::vector<EventNode *> Overflow;
  /// Window start (multiple of the bucket width) and one-past-the-end.
  int64_t WindowStartNs = 0;
  int64_t WindowEndNs = 0;
  /// Lowest bucket index that may be non-empty (scan hint).
  size_t ScanHint = 0;
  /// Events currently in Buckets / in total.
  size_t BucketedCount = 0;
  size_t PendingCount = 0;

  EventNode *FreeList = nullptr;
  SchedulerCounters Counters;
};

} // namespace parcs::sim

#endif // PARCS_SIM_SIMKERNEL_H
