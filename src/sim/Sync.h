//===- sim/Sync.h - Futures, semaphores, wait groups ------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronisation primitives for simulated tasks.  All wake-ups go through
/// the simulator's event queue (never inline), so wake order is FIFO and
/// deterministic, and no primitive can recurse into another's critical
/// section.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_SYNC_H
#define PARCS_SIM_SYNC_H

#include "sim/Simulator.h"

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>

namespace parcs::sim {

namespace detail {

template <typename T> struct FutureState {
  explicit FutureState(Simulator &Sim) : Sim(Sim) {}
  Simulator &Sim;
  std::optional<T> Value;
  std::deque<std::coroutine_handle<>> Waiters;

  void set(T NewValue) {
    assert(!Value && "promise fulfilled twice");
    Value.emplace(std::move(NewValue));
    for (std::coroutine_handle<> Handle : Waiters)
      Sim.scheduleResume(SimTime(), Handle);
    Waiters.clear();
  }
};

} // namespace detail

template <typename T> class Promise;

/// A value that becomes available at some virtual time.  Copyable; any
/// number of tasks may await the same future.  Awaiting yields a const
/// reference to the stored value.
template <typename T> class Future {
public:
  Future() = default;

  bool ready() const { return State && State->Value.has_value(); }
  bool valid() const { return State != nullptr; }

  /// Value accessor; only valid when ready.
  const T &get() const {
    assert(ready() && "future not ready");
    return *State->Value;
  }

  auto operator co_await() const noexcept {
    struct Awaiter {
      std::shared_ptr<detail::FutureState<T>> State;
      bool await_ready() const noexcept {
        return State->Value.has_value();
      }
      void await_suspend(std::coroutine_handle<> Handle) {
        State->Waiters.push_back(Handle);
      }
      const T &await_resume() const { return *State->Value; }
    };
    assert(State && "awaiting an empty future");
    return Awaiter{State};
  }

private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> State)
      : State(std::move(State)) {}
  std::shared_ptr<detail::FutureState<T>> State;
};

/// Producer side of a Future.  Copyable (shared state).
template <typename T> class Promise {
public:
  explicit Promise(Simulator &Sim)
      : State(std::make_shared<detail::FutureState<T>>(Sim)) {}

  Future<T> future() const { return Future<T>(State); }

  /// Publishes the value and wakes all waiters (via the event queue).
  void set(T Value) const { State->set(std::move(Value)); }
  bool fulfilled() const { return State->Value.has_value(); }

private:
  std::shared_ptr<detail::FutureState<T>> State;
};

/// Counting semaphore with FIFO wake order.
class Semaphore {
public:
  Semaphore(Simulator &Sim, int64_t InitialCount)
      : Sim(Sim), Count(InitialCount) {
    assert(InitialCount >= 0 && "negative initial semaphore count");
  }

  /// Awaitable that decrements the count, suspending while it is zero.
  auto acquire() {
    struct Awaiter {
      Semaphore &Sema;
      bool await_ready() {
        if (Sema.Count > 0) {
          --Sema.Count;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> Handle) {
        Sema.Waiters.push_back(Handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Increments the count or hands the permit to the oldest waiter.
  void release() {
    if (!Waiters.empty()) {
      std::coroutine_handle<> Next = Waiters.front();
      Waiters.pop_front();
      // The permit transfers directly to the waiter; Count stays 0.
      Sim.scheduleResume(SimTime(), Next);
      return;
    }
    ++Count;
  }

  int64_t available() const { return Count; }
  size_t waiting() const { return Waiters.size(); }

private:
  Simulator &Sim;
  int64_t Count;
  std::deque<std::coroutine_handle<>> Waiters;
};

/// Mutual exclusion built on a binary semaphore.
class Mutex {
public:
  explicit Mutex(Simulator &Sim) : Sema(Sim, 1) {}
  auto lock() { return Sema.acquire(); }
  void unlock() { Sema.release(); }

private:
  Semaphore Sema;
};

namespace detail {

template <typename T>
void forwardFirst(Simulator &Sim, Future<T> Source, Promise<T> Sink) {
  struct Forward {
    static Task<void> run(Future<T> Source, Promise<T> Sink) {
      const T &Value = co_await Source;
      if (!Sink.fulfilled())
        Sink.set(Value);
    }
  };
  Sim.spawn(Forward::run(std::move(Source), std::move(Sink)));
}

} // namespace detail

/// Returns a future fulfilled with the value of whichever input future
/// fulfils first (a two-way race; the loser's value is dropped).  Ties
/// resolve to \p A (deterministic event order).
template <typename T>
Future<T> firstOf(Simulator &Sim, Future<T> A, Future<T> B) {
  Promise<T> Winner(Sim);
  detail::forwardFirst(Sim, std::move(A), Winner);
  detail::forwardFirst(Sim, std::move(B), Winner);
  return Winner.future();
}

/// Returns a future fulfilled with \p Value after \p Delay -- combined
/// with firstOf this builds timeouts over arbitrary futures.
template <typename T>
Future<T> afterDelay(Simulator &Sim, SimTime Delay, T Value) {
  Promise<T> Done(Sim);
  Sim.schedule(Delay, [Done, Value = std::move(Value)]() mutable {
    Done.set(std::move(Value));
  });
  return Done.future();
}

/// Go-style wait group: tasks call done(); waiters suspend until the
/// counter reaches zero.
class WaitGroup {
public:
  explicit WaitGroup(Simulator &Sim) : Sim(Sim) {}

  void add(int64_t Delta = 1) {
    Count += Delta;
    assert(Count >= 0 && "wait group count went negative");
    if (Count == 0)
      wakeAll();
  }

  void done() { add(-1); }

  auto wait() {
    struct Awaiter {
      WaitGroup &Group;
      bool await_ready() const { return Group.Count == 0; }
      void await_suspend(std::coroutine_handle<> Handle) {
        Group.Waiters.push_back(Handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  int64_t count() const { return Count; }

private:
  void wakeAll() {
    for (std::coroutine_handle<> Handle : Waiters)
      Sim.scheduleResume(SimTime(), Handle);
    Waiters.clear();
  }

  Simulator &Sim;
  int64_t Count = 0;
  std::deque<std::coroutine_handle<>> Waiters;
};

} // namespace parcs::sim

#endif // PARCS_SIM_SYNC_H
