//===- sim/WindowBarrier.h - PDES window synchronization --------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The barrier separating PDES phases (execute / merge / plan; see
/// sim/ParallelExecutor.h).  A sense-reversing counter barrier: arrivals
/// increment a counter, the last arriver resets it and bumps the
/// generation, everyone else spins briefly on the generation and then falls
/// back to atomic wait.  Reusable back-to-back -- a thread released from
/// generation G can arrive for G+1 while stragglers of G are still waking,
/// because the counter was reset *before* the generation store that
/// released them (the release/acquire pair on Generation orders the two).
///
/// All synchronization is std::atomic, so the barrier is exactly as
/// analyzable by TSan as the phases it separates: every cross-thread access
/// in the executor is ordered by an arriveAndWait() pair, and anything that
/// is not is a real race for the sanitizer to find.
///
/// Windows are microseconds of work; the short spin makes the common
/// same-speed-workers case syscall-free, and the wait() fallback keeps
/// oversubscribed runs (more workers than cores) from burning the core the
/// straggler needs.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_WINDOWBARRIER_H
#define PARCS_SIM_WINDOWBARRIER_H

#include <atomic>
#include <cassert>
#include <cstdint>

namespace parcs::sim {

/// Reusable barrier for a fixed party count.
class WindowBarrier {
public:
  explicit WindowBarrier(int Parties) : Parties(Parties) {
    assert(Parties > 0 && "barrier needs at least one party");
  }
  WindowBarrier(const WindowBarrier &) = delete;
  WindowBarrier &operator=(const WindowBarrier &) = delete;

  /// Blocks until all parties have arrived.  With one party, a no-op (the
  /// serial executor path pays two relaxed atomics per phase, nothing
  /// else).
  void arriveAndWait() {
    uint64_t Gen = Generation.load(std::memory_order_acquire);
    if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Parties) {
      // Reset before release: a fast thread re-arriving for the next
      // generation must observe the zeroed counter.
      Arrived.store(0, std::memory_order_relaxed);
      Generation.store(Gen + 1, std::memory_order_release);
      Generation.notify_all();
      return;
    }
    for (int Spin = 0; Spin < 4096; ++Spin)
      if (Generation.load(std::memory_order_acquire) != Gen)
        return;
    while (Generation.load(std::memory_order_acquire) == Gen)
      Generation.wait(Gen, std::memory_order_acquire);
  }

private:
  const int Parties;
  std::atomic<int> Arrived{0};
  std::atomic<uint64_t> Generation{0};
};

} // namespace parcs::sim

#endif // PARCS_SIM_WINDOWBARRIER_H
