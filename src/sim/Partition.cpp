//===- sim/Partition.cpp --------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "sim/Partition.h"

#include <cassert>

using namespace parcs;
using namespace parcs::sim;

Partition::Partition(int Id, int PartitionCount)
    : Id(Id),
      // No log clock (process-global; the lead simulator owns it) and no
      // queue-depth trace sampling (the shared pid-0 ring is not
      // partition-owned state).
      Sim(Simulator::Options{/*InstallLogClock=*/false,
                             /*SampleQueueDepth=*/false}),
      Out(size_t(PartitionCount)) {
  assert(Id >= 0 && Id < PartitionCount && "partition id out of range");
}

void Partition::post(int Dst, int64_t AtNs, EventCallback Fn) {
  assert(Dst >= 0 && Dst < int(Out.size()) && "posting to unknown partition");
  assert(Fn && "posting an empty callback");
  if (Dst == Id) {
    Sim.scheduleAt(SimTime::nanoseconds(AtNs), std::move(Fn));
    return;
  }
  // The conservative-lookahead invariant: cross-partition mail never lands
  // inside the window that produced it, so buffering it until the barrier
  // cannot reorder anything observable.
  assert(AtNs >= WindowEndNs && "cross-partition post inside the lookahead "
                                "window (latency below the configured "
                                "lookahead?)");
  Out[size_t(Dst)].push_back(Envelope{AtNs, std::move(Fn)});
  ++MailSent;
}

// PARCS_HOT_BEGIN(pdes-window-loop): per-event cost of the parallel
// executor; must stay allocation-free in steady state like Simulator::step.

uint64_t Partition::runWindow(int64_t EndNs) {
  WindowEndNs = EndNs;
  uint64_t Executed = 0;
  while (Sim.pendingCount() > 0 && Sim.earliestNs() < EndNs) {
    Sim.step();
    // Same digest shape as the DeterminismTest golden: (index, time) per
    // executed event, order-sensitive.
    Digest.mix(Sim.eventsProcessed());
    Digest.mix(uint64_t(Sim.now().nanosecondsCount()));
    ++Executed;
  }
  return Executed;
}

// PARCS_HOT_END

void Partition::mergeInbox(const std::vector<Partition *> &All) {
  // Ascending source order + the destination sequence counter stamping in
  // drain order = canonical (time, src-partition, send-order) pop order.
  for (Partition *Src : All) {
    std::vector<Envelope> &Row = Src->Out[size_t(Id)];
    for (Envelope &E : Row) {
      assert(E.AtNs >= Sim.now().nanosecondsCount() &&
             "merged mail would land in this partition's past");
      Sim.scheduleAt(SimTime::nanoseconds(E.AtNs), std::move(E.Fn));
      ++MailMerged;
    }
    Row.clear();
  }
}
