//===- sim/Task.h - Coroutine task type -------------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coroutine task type used for all simulated activities.  A Task<T> is
/// a *lazy* coroutine: creating it does not run any code.  It starts either
/// when a parent coroutine `co_await`s it (symmetric transfer) or when it is
/// handed to Simulator::spawn, which detaches it and resumes it from the
/// event loop.
///
/// Ownership rules:
///  - An un-started, un-detached Task owns its frame and destroys it in the
///    Task destructor.
///  - Awaiting a Task transfers control; the frame is destroyed by the
///    awaiting Task object's destructor after completion.
///  - A detached (spawned) Task frame destroys itself at final suspend and
///    unregisters from the simulator's live set.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_TASK_H
#define PARCS_SIM_TASK_H

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

namespace parcs::sim {

class Simulator;

namespace detail {

/// Called from promise final-suspend when a detached coroutine finishes, so
/// the simulator can drop it from the live set.  Defined in Simulator.cpp.
void detachedTaskFinished(Simulator &Sim, void *FramePointer);

/// State shared by all Task promises, independent of the result type.
struct PromiseBase {
  /// Coroutine to resume when this task completes (the awaiting parent).
  std::coroutine_handle<> Continuation;
  /// Non-null when the task was detached via Simulator::spawn.
  Simulator *DetachedIn = nullptr;

  std::suspend_always initial_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept {
    // The library is exception-free by policy; anything reaching here is a
    // bug in user code run inside the simulation.
    std::fprintf(stderr, "parcs: exception escaped a simulated task\n");
    std::abort();
  }

  /// Final awaiter: resume the continuation if any; self-destroy when
  /// detached.
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }

    template <typename PromiseT>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<PromiseT> Handle) noexcept {
      PromiseBase &P = Handle.promise();
      if (P.Continuation)
        return P.Continuation;
      if (P.DetachedIn) {
        detachedTaskFinished(*P.DetachedIn, Handle.address());
        Handle.destroy();
      }
      return std::noop_coroutine();
    }

    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
};

} // namespace detail

/// A lazy coroutine returning T (default void).  Move-only.
template <typename T = void> class [[nodiscard]] Task {
public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> Result;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T Value) { Result.emplace(std::move(Value)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> Handle) : Handle(Handle) {}
  Task(Task &&Other) noexcept : Handle(std::exchange(Other.Handle, nullptr)) {}
  Task &operator=(Task &&Other) noexcept {
    if (this != &Other) {
      destroy();
      Handle = std::exchange(Other.Handle, nullptr);
    }
    return *this;
  }
  Task(const Task &) = delete;
  Task &operator=(const Task &) = delete;
  ~Task() { destroy(); }

  bool valid() const { return Handle != nullptr; }
  bool done() const { return Handle && Handle.done(); }

  /// Awaiting a task starts it and suspends the parent until completion;
  /// resuming yields the co_returned value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> Child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<>
      await_suspend(std::coroutine_handle<> Parent) noexcept {
        Child.promise().Continuation = Parent;
        return Child; // Symmetric transfer: start the child now.
      }
      T await_resume() {
        assert(Child.promise().Result && "task finished without a value");
        return std::move(*Child.promise().Result);
      }
    };
    assert(Handle && "awaiting an empty task");
    return Awaiter{Handle};
  }

private:
  friend class Simulator;

  /// Releases ownership of the frame (used by Simulator::spawn).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(Handle, nullptr);
  }

  void destroy() {
    if (Handle) {
      Handle.destroy();
      Handle = nullptr;
    }
  }

  std::coroutine_handle<promise_type> Handle;
};

/// Specialisation for tasks that produce no value.
template <> class [[nodiscard]] Task<void> {
public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> Handle) : Handle(Handle) {}
  Task(Task &&Other) noexcept : Handle(std::exchange(Other.Handle, nullptr)) {}
  Task &operator=(Task &&Other) noexcept {
    if (this != &Other) {
      destroy();
      Handle = std::exchange(Other.Handle, nullptr);
    }
    return *this;
  }
  Task(const Task &) = delete;
  Task &operator=(const Task &) = delete;
  ~Task() { destroy(); }

  bool valid() const { return Handle != nullptr; }
  bool done() const { return Handle && Handle.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> Child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<>
      await_suspend(std::coroutine_handle<> Parent) noexcept {
        Child.promise().Continuation = Parent;
        return Child;
      }
      void await_resume() {}
    };
    assert(Handle && "awaiting an empty task");
    return Awaiter{Handle};
  }

private:
  friend class Simulator;

  std::coroutine_handle<promise_type> release() {
    return std::exchange(Handle, nullptr);
  }

  void destroy() {
    if (Handle) {
      Handle.destroy();
      Handle = nullptr;
    }
  }

  std::coroutine_handle<promise_type> Handle;
};

} // namespace parcs::sim

#endif // PARCS_SIM_TASK_H
