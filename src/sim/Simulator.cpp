//===- sim/Simulator.cpp --------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The coroutine-runtime half of the simulator: spawn/reap of detached
// frames, the log-clock install, and the step loop.  The calendar queue
// itself lives in sim/SimKernel.cpp.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace parcs;
using namespace parcs::sim;

void parcs::sim::detail::detachedTaskFinished(Simulator &Sim, void *Frame) {
  [[maybe_unused]] size_t Erased = Sim.LiveDetached.erase(Frame);
  assert(Erased == 1 && "detached frame was not registered");
}

/// LogClock callback: virtual time of the simulator passed as context.
static long long simulatorNowNs(void *Ctx) {
  return static_cast<const Simulator *>(Ctx)->now().nanosecondsCount();
}

Simulator::Simulator(Options Opts)
    : OwnsLogClock(Opts.InstallLogClock),
      SampleDepth(Opts.SampleQueueDepth) {
  // The newest simulator becomes the log time source; the previous one is
  // restored when this simulator is destroyed.  Partition simulators under
  // the parallel executor skip this -- the log clock is process-global.
  if (OwnsLogClock)
    PrevLogClock = setLogClock({simulatorNowNs, this});
}

void Simulator::reapDetached() {
  // Destroy coroutines that never finished (e.g. server dispatch loops, or
  // frames parked forever by a node crash) in spawn order, not hash order.
  // Copy first: destroying a frame may cascade into child Task destructors
  // but never into LiveDetached mutation, since children are not detached.
  std::vector<std::pair<uint64_t, void *>> Pending;
  Pending.reserve(LiveDetached.size());
  for (const auto &[Frame, Seq] : LiveDetached)
    Pending.emplace_back(Seq, Frame);
  LiveDetached.clear();
  std::sort(Pending.begin(), Pending.end());
  for (const auto &[Seq, Frame] : Pending)
    std::coroutine_handle<>::from_address(Frame).destroy();
}

Simulator::~Simulator() {
  if (OwnsLogClock)
    setLogClock(PrevLogClock);
  reapDetached();
  // Fold this run's scheduler counters into the end-of-run report.  Under
  // the parallel executor, partition simulators are destroyed serially in
  // partition order, so the folded totals are thread-count independent.
  const SchedulerCounters &C = Kernel.counters();
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("sim.events").add(EventCount);
  Reg.counter("sim.callback_events").add(C.CallbackEvents);
  Reg.counter("sim.resume_events").add(C.ResumeEvents);
  Reg.counter("sim.sbo_misses").add(C.SboMisses);
  Reg.counter("sim.nodes_allocated").add(C.NodesAllocated);
  Reg.counter("sim.overflow_inserts").add(C.OverflowInserts);
  Reg.counter("sim.window_advances").add(C.WindowAdvances);
  Reg.gauge("sim.peak_queue_depth")
      .noteMax(static_cast<int64_t>(C.PeakQueueDepth));
}

// PARCS_HOT_BEGIN(step-dispatch): every event pays schedule/pop/execute
// once; a steady-state run must not allocate here.

void Simulator::scheduleAt(SimTime At, EventCallback &&Fn) {
  assert(At.nanosecondsCount() >= Kernel.nowNs() && "scheduling into the past");
  assert(Fn && "scheduling an empty callback");
  if (!Fn.isInline())
    Kernel.noteSboMiss();
  SimKernel::EventNode *Node =
      Kernel.allocNode(At.nanosecondsCount(), Kernel.takeSeq());
  Node->Fn = std::move(Fn);
  Kernel.insert(Node);
}

void Simulator::scheduleResumeAt(SimTime At, std::coroutine_handle<> Handle) {
  assert(At.nanosecondsCount() >= Kernel.nowNs() && "scheduling into the past");
  assert(Handle && "scheduling a null coroutine handle");
  SimKernel::EventNode *Node =
      Kernel.allocNode(At.nanosecondsCount(), Kernel.takeSeq());
  Node->Handle = Handle;
  Kernel.insert(Node);
}

void Simulator::spawn(Task<void> T) {
  assert(T.valid() && "spawning an empty task");
  auto Handle = T.release();
  Handle.promise().DetachedIn = this;
  LiveDetached.emplace(Handle.address(), NextDetachSeq++);
  scheduleResumeAt(now(), Handle);
}

void Simulator::execute(SimKernel::EventNode *Node) {
  if (Node->Handle) {
    std::coroutine_handle<> Handle = Node->Handle;
    Node->Handle = nullptr;
    ++Kernel.counters().ResumeEvents;
    Kernel.recycle(Node);
    Handle.resume();
    return;
  }
  // Run the callback in place -- the node is already unlinked, so events it
  // schedules cannot touch it -- then destroy the callable and recycle.
  ++Kernel.counters().CallbackEvents;
  Node->Fn();
  Node->Fn.reset();
  Kernel.recycle(Node);
}

bool Simulator::step() {
  SimKernel::EventNode *Node = Kernel.popEarliest();
  if (!Node)
    return false;
  assert(Node->AtNs >= Kernel.nowNs() && "event queue went backwards");
  Kernel.setNowNs(Node->AtNs);
  ++EventCount;
  // The in-register modulus test is all the common path pays; the trace
  // flag is only consulted on the sampled iterations, out of line.
  if ((EventCount & 1023) == 0 && SampleDepth) [[unlikely]]
    sampleQueueDepth(Node->AtNs);
  execute(Node);
  return true;
}

uint64_t Simulator::runBefore(int64_t EndNs) {
  uint64_t Executed = 0;
  while (Kernel.pendingCount() > 0 && Kernel.earliestTimeNs() < EndNs) {
    step();
    ++Executed;
  }
  return Executed;
}

// PARCS_HOT_END

/// Passive observation only (never schedules), so the event stream -- and
/// the determinism golden hash -- is identical with tracing on or off.
__attribute__((noinline)) void Simulator::sampleQueueDepth(int64_t AtNs) {
  trace::counter(-1, "sim.queue_depth", AtNs,
                 static_cast<int64_t>(Kernel.pendingCount()));
}

uint64_t Simulator::run(uint64_t MaxEvents) {
  uint64_t Executed = 0;
  while (Executed < MaxEvents && step())
    ++Executed;
  return Executed;
}

void Simulator::runUntil(SimTime Until) {
  assert(Until >= now() && "runUntil into the past");
  while (Kernel.pendingCount() > 0 &&
         Kernel.earliestTimeNs() <= Until.nanosecondsCount())
    step();
  Kernel.setNowNs(Until.nanosecondsCount());
}

CounterGroup Simulator::counterSnapshot() const {
  const SchedulerCounters &C = Kernel.counters();
  CounterGroup Group;
  Group.add("events", EventCount);
  Group.add("callback_events", C.CallbackEvents);
  Group.add("resume_events", C.ResumeEvents);
  Group.add("peak_queue_depth", C.PeakQueueDepth);
  Group.add("sbo_misses", C.SboMisses);
  Group.add("nodes_allocated", C.NodesAllocated);
  Group.add("overflow_inserts", C.OverflowInserts);
  Group.add("window_advances", C.WindowAdvances);
  return Group;
}
