//===- sim/Simulator.cpp --------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The two-level calendar queue.  Near-future events (inside a ~2 ms window
// of 1024 buckets, ~2 us each) sit in per-bucket (time, seq) min-heaps;
// far-future events sit in one overflow min-heap.  When the buckets drain,
// the window jumps to the overflow minimum and every overflow event inside
// the new window migrates into buckets.
//
// Correctness does not depend on the window placement: popEarliest always
// compares the first-bucket minimum against the overflow top, so an event
// that lands outside the current window (e.g. scheduled after runUntil
// fast-forwarded the clock) is still popped in exact (time, seq) order.
// Because the (time, seq) key is unique per event, pop order is independent
// of heap internals -- runs are bit-for-bit identical to the former
// binary-heap kernel.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace parcs;
using namespace parcs::sim;

/// Min-heap order on the unique (time, seq) key.
static bool laterThan(int64_t AtA, uint64_t SeqA, int64_t AtB, uint64_t SeqB) {
  if (AtA != AtB)
    return AtB < AtA;
  return SeqB < SeqA;
}

void parcs::sim::detail::detachedTaskFinished(Simulator &Sim, void *Frame) {
  [[maybe_unused]] size_t Erased = Sim.LiveDetached.erase(Frame);
  assert(Erased == 1 && "detached frame was not registered");
}

/// LogClock callback: virtual time of the simulator passed as context.
static long long simulatorNowNs(void *Ctx) {
  return static_cast<const Simulator *>(Ctx)->now().nanosecondsCount();
}

Simulator::Simulator() : Buckets(NumBuckets), BucketBits(NumBuckets / 64) {
  WindowEndNs = WindowStartNs + (int64_t(NumBuckets) << BucketShift);
  // The newest simulator becomes the log time source; the previous one is
  // restored when this simulator is destroyed.
  PrevLogClock = setLogClock({simulatorNowNs, this});
}

size_t Simulator::firstOccupiedBucket(size_t From) const {
  size_t Word = From >> 6;
  uint64_t Bits = BucketBits[Word] & (~uint64_t(0) << (From & 63));
  while (!Bits)
    Bits = BucketBits[++Word];
  return (Word << 6) + size_t(std::countr_zero(Bits));
}

void Simulator::reapDetached() {
  // Destroy coroutines that never finished (e.g. server dispatch loops, or
  // frames parked forever by a node crash) in spawn order, not hash order.
  // Copy first: destroying a frame may cascade into child Task destructors
  // but never into LiveDetached mutation, since children are not detached.
  std::vector<std::pair<uint64_t, void *>> Pending;
  Pending.reserve(LiveDetached.size());
  for (const auto &[Frame, Seq] : LiveDetached)
    Pending.emplace_back(Seq, Frame);
  LiveDetached.clear();
  std::sort(Pending.begin(), Pending.end());
  for (const auto &[Seq, Frame] : Pending)
    std::coroutine_handle<>::from_address(Frame).destroy();
}

Simulator::~Simulator() {
  setLogClock(PrevLogClock);
  reapDetached();
  freeAllNodes();
  // Fold this run's scheduler counters into the end-of-run report.
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("sim.events").add(EventCount);
  Reg.counter("sim.callback_events").add(Counters.CallbackEvents);
  Reg.counter("sim.resume_events").add(Counters.ResumeEvents);
  Reg.counter("sim.sbo_misses").add(Counters.SboMisses);
  Reg.counter("sim.nodes_allocated").add(Counters.NodesAllocated);
  Reg.counter("sim.overflow_inserts").add(Counters.OverflowInserts);
  Reg.counter("sim.window_advances").add(Counters.WindowAdvances);
  Reg.gauge("sim.peak_queue_depth")
      .noteMax(static_cast<int64_t>(Counters.PeakQueueDepth));
}

void Simulator::EventFifo::grow() {
  std::vector<EventNode *> Bigger(Slots.size() * 2);
  for (size_t I = 0; I < Count; ++I)
    Bigger[I] = Slots[(Head + I) & Mask];
  Slots = std::move(Bigger);
  Mask = Slots.size() - 1;
  Head = 0;
}

void Simulator::freeAllNodes() {
  while (!Immediate.empty())
    delete Immediate.pop();
  for (std::vector<EventNode *> &Bucket : Buckets)
    for (EventNode *Node : Bucket)
      delete Node;
  Buckets.clear();
  for (EventNode *Node : Overflow)
    delete Node;
  Overflow.clear();
  while (FreeList) {
    EventNode *Next = FreeList->NextFree;
    delete FreeList;
    FreeList = Next;
  }
  BucketedCount = PendingCount = 0;
}

// PARCS_HOT_BEGIN(calendar-queue-kernel): every event pays alloc/insert/
// pop/execute once; a steady-state run must not allocate here.

Simulator::EventNode *Simulator::allocNode(SimTime At, uint64_t Seq) {
  EventNode *Node = FreeList;
  if (Node) {
    FreeList = Node->NextFree;
    Node->NextFree = nullptr;
  } else {
    // parcs-lint: allow(hot-path-alloc): free-list miss is the cold warm-up
    // path; NodesAllocated counters + bench zero-alloc assert bound it.
    Node = new EventNode();
    ++Counters.NodesAllocated;
  }
  Node->AtNs = At.nanosecondsCount();
  Node->Seq = Seq;
  return Node;
}

void Simulator::recycle(EventNode *Node) {
  assert(!Node->Fn && !Node->Handle && "recycling a live event");
  Node->NextFree = FreeList;
  FreeList = Node;
}

void Simulator::insert(EventNode *Node) {
  ++PendingCount;
  Counters.PeakQueueDepth = std::max<uint64_t>(Counters.PeakQueueDepth,
                                               PendingCount);
  auto HeapPush = [](std::vector<EventNode *> &Heap, EventNode *N) {
    Heap.push_back(N);
    std::push_heap(Heap.begin(), Heap.end(),
                   [](const EventNode *A, const EventNode *B) {
                     return laterThan(A->AtNs, A->Seq, B->AtNs, B->Seq);
                   });
  };
  if (Node->AtNs == Now.nanosecondsCount()) {
    Immediate.push(Node);
    return;
  }
  if (Node->AtNs >= WindowStartNs && Node->AtNs < WindowEndNs) {
    size_t Idx = size_t((Node->AtNs - WindowStartNs) >> BucketShift);
    HeapPush(Buckets[Idx], Node);
    markBucket(Idx);
    ++BucketedCount;
    ScanHint = std::min(ScanHint, Idx);
    return;
  }
  HeapPush(Overflow, Node);
  ++Counters.OverflowInserts;
}

void Simulator::advanceWindow() {
  assert(BucketedCount == 0 && !Overflow.empty() && "nothing to advance to");
  ++Counters.WindowAdvances;
  auto Later = [](const EventNode *A, const EventNode *B) {
    return laterThan(A->AtNs, A->Seq, B->AtNs, B->Seq);
  };
  int64_t MinNs = Overflow.front()->AtNs;
  WindowStartNs = (MinNs >> BucketShift) << BucketShift;
  WindowEndNs = WindowStartNs + (int64_t(NumBuckets) << BucketShift);
  ScanHint = size_t((MinNs - WindowStartNs) >> BucketShift);
  while (!Overflow.empty() && Overflow.front()->AtNs < WindowEndNs) {
    std::pop_heap(Overflow.begin(), Overflow.end(), Later);
    EventNode *Node = Overflow.back();
    Overflow.pop_back();
    size_t Idx = size_t((Node->AtNs - WindowStartNs) >> BucketShift);
    Buckets[Idx].push_back(Node);
    std::push_heap(Buckets[Idx].begin(), Buckets[Idx].end(), Later);
    markBucket(Idx);
    ++BucketedCount;
  }
}

Simulator::EventNode *Simulator::popEarliest() {
  if (PendingCount == 0)
    return nullptr;
  if (Immediate.empty() && BucketedCount == 0)
    advanceWindow();
  // Three candidate lanes; every comparison uses the unique (time, seq)
  // key, so the winner -- and therefore the whole pop order -- does not
  // depend on which lane an event happened to land in.
  EventNode *Best = nullptr;
  enum { FromImmediate, FromBucket, FromOverflow } Src = FromImmediate;
  if (!Immediate.empty())
    Best = Immediate.front();
  size_t Idx = 0;
  if (BucketedCount > 0) {
    Idx = firstOccupiedBucket(ScanHint);
    ScanHint = Idx;
    EventNode *Candidate = Buckets[Idx].front();
    if (!Best || laterThan(Best->AtNs, Best->Seq, Candidate->AtNs,
                           Candidate->Seq)) {
      Best = Candidate;
      Src = FromBucket;
    }
  }
  // An event scheduled outside the current window (only possible after
  // runUntil fast-forwarded the clock past the window) sits in Overflow and
  // may precede every bucketed event.
  if (!Overflow.empty()) {
    EventNode *Candidate = Overflow.front();
    if (!Best || laterThan(Best->AtNs, Best->Seq, Candidate->AtNs,
                           Candidate->Seq)) {
      Best = Candidate;
      Src = FromOverflow;
    }
  }
  auto Later = [](const EventNode *A, const EventNode *B) {
    return laterThan(A->AtNs, A->Seq, B->AtNs, B->Seq);
  };
  switch (Src) {
  case FromImmediate:
    Immediate.pop();
    break;
  case FromBucket:
    std::pop_heap(Buckets[Idx].begin(), Buckets[Idx].end(), Later);
    Buckets[Idx].pop_back();
    if (Buckets[Idx].empty())
      unmarkBucket(Idx);
    --BucketedCount;
    break;
  case FromOverflow:
    std::pop_heap(Overflow.begin(), Overflow.end(), Later);
    Overflow.pop_back();
    break;
  }
  --PendingCount;
  return Best;
}

int64_t Simulator::earliestTimeNs() {
  assert(PendingCount > 0 && "peeking an empty queue");
  if (Immediate.empty() && BucketedCount == 0)
    advanceWindow();
  int64_t Earliest = INT64_MAX;
  if (!Immediate.empty())
    Earliest = Immediate.front()->AtNs;
  if (BucketedCount > 0) {
    size_t Idx = firstOccupiedBucket(ScanHint);
    ScanHint = Idx;
    Earliest = std::min(Earliest, Buckets[Idx].front()->AtNs);
  }
  if (!Overflow.empty())
    Earliest = std::min(Earliest, Overflow.front()->AtNs);
  return Earliest;
}

void Simulator::scheduleAt(SimTime At, EventCallback &&Fn) {
  assert(At >= Now && "scheduling into the past");
  assert(Fn && "scheduling an empty callback");
  if (!Fn.isInline())
    ++Counters.SboMisses;
  EventNode *Node = allocNode(At, NextSeq++);
  Node->Fn = std::move(Fn);
  insert(Node);
}

void Simulator::scheduleResumeAt(SimTime At, std::coroutine_handle<> Handle) {
  assert(At >= Now && "scheduling into the past");
  assert(Handle && "scheduling a null coroutine handle");
  EventNode *Node = allocNode(At, NextSeq++);
  Node->Handle = Handle;
  insert(Node);
}

void Simulator::spawn(Task<void> T) {
  assert(T.valid() && "spawning an empty task");
  auto Handle = T.release();
  Handle.promise().DetachedIn = this;
  LiveDetached.emplace(Handle.address(), NextDetachSeq++);
  scheduleResumeAt(Now, Handle);
}

void Simulator::execute(EventNode *Node) {
  if (Node->Handle) {
    std::coroutine_handle<> Handle = Node->Handle;
    Node->Handle = nullptr;
    ++Counters.ResumeEvents;
    recycle(Node);
    Handle.resume();
    return;
  }
  // Run the callback in place -- the node is already unlinked, so events it
  // schedules cannot touch it -- then destroy the callable and recycle.
  ++Counters.CallbackEvents;
  Node->Fn();
  Node->Fn.reset();
  recycle(Node);
}

bool Simulator::step() {
  EventNode *Node = popEarliest();
  if (!Node)
    return false;
  assert(Node->AtNs >= Now.nanosecondsCount() && "event queue went backwards");
  Now = SimTime::nanoseconds(Node->AtNs);
  ++EventCount;
  // The in-register modulus test is all the common path pays; the trace
  // flag is only consulted on the sampled iterations, out of line.
  if ((EventCount & 1023) == 0) [[unlikely]]
    sampleQueueDepth(Node->AtNs);
  execute(Node);
  return true;
}

// PARCS_HOT_END

/// Passive observation only (never schedules), so the event stream -- and
/// the determinism golden hash -- is identical with tracing on or off.
__attribute__((noinline)) void Simulator::sampleQueueDepth(int64_t AtNs) {
  trace::counter(-1, "sim.queue_depth", AtNs,
                 static_cast<int64_t>(PendingCount));
}

uint64_t Simulator::run(uint64_t MaxEvents) {
  uint64_t Executed = 0;
  while (Executed < MaxEvents && step())
    ++Executed;
  return Executed;
}

void Simulator::runUntil(SimTime Until) {
  assert(Until >= Now && "runUntil into the past");
  while (PendingCount > 0 && earliestTimeNs() <= Until.nanosecondsCount())
    step();
  Now = Until;
}

CounterGroup Simulator::counterSnapshot() const {
  CounterGroup Group;
  Group.add("events", EventCount);
  Group.add("callback_events", Counters.CallbackEvents);
  Group.add("resume_events", Counters.ResumeEvents);
  Group.add("peak_queue_depth", Counters.PeakQueueDepth);
  Group.add("sbo_misses", Counters.SboMisses);
  Group.add("nodes_allocated", Counters.NodesAllocated);
  Group.add("overflow_inserts", Counters.OverflowInserts);
  Group.add("window_advances", Counters.WindowAdvances);
  return Group;
}
