//===- sim/Simulator.cpp --------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <cassert>

using namespace parcs::sim;

void parcs::sim::detail::detachedTaskFinished(Simulator &Sim, void *Frame) {
  [[maybe_unused]] size_t Erased = Sim.LiveDetached.erase(Frame);
  assert(Erased == 1 && "detached frame was not registered");
}

Simulator::~Simulator() {
  // Destroy coroutines that never finished (e.g. server dispatch loops).
  // Copy first: destroying a frame may cascade into child Task destructors
  // but never into LiveDetached mutation, since children are not detached.
  std::vector<void *> Pending(LiveDetached.begin(), LiveDetached.end());
  LiveDetached.clear();
  for (void *Frame : Pending)
    std::coroutine_handle<>::from_address(Frame).destroy();
}

void Simulator::scheduleAt(SimTime At, std::function<void()> Fn) {
  assert(At >= Now && "scheduling into the past");
  Queue.push(Scheduled{At, NextSeq++, std::move(Fn)});
}

void Simulator::spawn(Task<void> T) {
  assert(T.valid() && "spawning an empty task");
  auto Handle = T.release();
  Handle.promise().DetachedIn = this;
  LiveDetached.insert(Handle.address());
  schedule(SimTime(), [Handle] { Handle.resume(); });
}

bool Simulator::step() {
  if (Queue.empty())
    return false;
  // Move the event out before running it: the callback may schedule more
  // events and mutating the queue mid-top() would be undefined.
  Scheduled Event = std::move(const_cast<Scheduled &>(Queue.top()));
  Queue.pop();
  assert(Event.At >= Now && "event queue went backwards");
  Now = Event.At;
  ++EventCount;
  Event.Fn();
  return true;
}

uint64_t Simulator::run(uint64_t MaxEvents) {
  uint64_t Executed = 0;
  while (Executed < MaxEvents && step())
    ++Executed;
  return Executed;
}

void Simulator::runUntil(SimTime Until) {
  assert(Until >= Now && "runUntil into the past");
  while (!Queue.empty() && Queue.top().At <= Until)
    step();
  Now = Until;
}
