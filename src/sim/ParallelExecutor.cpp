//===- sim/ParallelExecutor.cpp -------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The window loop.  Worker 0 (the calling thread) is also the coordinator:
// between rounds it computes the global minimum next-event time serially
// -- every other worker is parked at the round-start barrier then, so the
// scan races with nothing -- and publishes the round descriptor the
// barrier release makes visible.  Three barrier crossings per round:
//
//     [plan on worker 0] -> A -> execute -> B -> merge -> C -> [plan ...]
//
// Determinism does not depend on the thread count because no phase ever
// reads state another thread is writing: execution touches only
// partition-private simulators and the partition's own outbox rows, and
// the merge reads rows whose writers finished a barrier ago, in a fixed
// (src ascending) order.
//
//===----------------------------------------------------------------------===//

#include "sim/ParallelExecutor.h"

#include "support/Metrics.h"

#include <cassert>
#include <cstdlib>
#include <thread>

using namespace parcs;
using namespace parcs::sim;

ParallelExecutor::ParallelExecutor(PdesConfig Config)
    : Config(Config),
      Barrier(Config.Threads > Config.Partitions ? Config.Partitions
                                                 : Config.Threads) {
  assert(Config.Partitions >= 1 && "need at least one partition");
  assert(Config.Threads >= 1 && "need at least one thread");
  assert(Config.LookaheadNs > 0 && "lookahead must be positive");
  // More threads than partitions would only park the extras at barriers.
  if (this->Config.Threads > this->Config.Partitions)
    this->Config.Threads = this->Config.Partitions;
  Parts.reserve(size_t(Config.Partitions));
  PartPtrs.reserve(size_t(Config.Partitions));
  for (int Id = 0; Id < Config.Partitions; ++Id) {
    Parts.push_back(std::make_unique<Partition>(Id, Config.Partitions));
    PartPtrs.push_back(Parts.back().get());
  }
}

ParallelExecutor::~ParallelExecutor() {
  // Partitions (and their simulators) are destroyed in partition order by
  // the vector, so metrics folding is thread-count independent.
}

void ParallelExecutor::executePhase(int Worker) {
  for (int Id = Worker; Id < int(PartPtrs.size()); Id += Config.Threads)
    PartPtrs[size_t(Id)]->runWindow(RoundEndNs);
}

void ParallelExecutor::mergePhase(int Worker) {
  for (int Id = Worker; Id < int(PartPtrs.size()); Id += Config.Threads)
    PartPtrs[size_t(Id)]->mergeInbox(PartPtrs);
}

void ParallelExecutor::workerLoop(int Worker) {
  while (true) {
    Barrier.arriveAndWait(); // A: round published by worker 0.
    if (Stop)
      return;
    executePhase(Worker);
    Barrier.arriveAndWait(); // B: all outbox rows written.
    mergePhase(Worker);
    Barrier.arriveAndWait(); // C: all mail scheduled; worker 0 plans next.
  }
}

uint64_t ParallelExecutor::run() {
  // Catch stray setup-time posts (cross-partition posts made before the
  // first window, while everything is still serial).
  for (Partition *P : PartPtrs)
    P->mergeInbox(PartPtrs);

  std::vector<std::thread> Workers;
  Workers.reserve(size_t(Config.Threads - 1));
  for (int W = 1; W < Config.Threads; ++W)
    Workers.emplace_back([this, W] { workerLoop(W); });

  while (true) {
    // Plan: global minimum next-event time across partitions (serial;
    // workers are parked at barrier A).
    int64_t MinNs = INT64_MAX;
    for (Partition *P : PartPtrs) {
      int64_t Earliest = P->sim().earliestNs();
      if (Earliest < MinNs)
        MinNs = Earliest;
    }
    if (MinNs == INT64_MAX)
      break;
    // Windows align to absolute lookahead-width slots rather than starting
    // at MinNs, so the sequence of window boundaries -- and with it every
    // assert and merge point -- is a pure function of the event times.
    RoundEndNs = (MinNs / Config.LookaheadNs + 1) * Config.LookaheadNs;
    ++Windows;
    Barrier.arriveAndWait(); // A
    executePhase(0);
    Barrier.arriveAndWait(); // B
    mergePhase(0);
    Barrier.arriveAndWait(); // C
  }

  Stop = true;
  Barrier.arriveAndWait(); // Release workers into the Stop check.
  for (std::thread &T : Workers)
    T.join();

  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("pdes.windows").add(Windows);
  Reg.counter("pdes.mail_merged").add(mailMerged());
  return totalEvents();
}

uint64_t ParallelExecutor::totalEvents() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Partition> &P : Parts)
    Total += P->sim().eventsProcessed();
  return Total;
}

uint64_t ParallelExecutor::digest() const {
  EventDigest Folded;
  for (const std::unique_ptr<Partition> &P : Parts) {
    Folded.mix(P->digest());
    Folded.mix(P->sim().eventsProcessed());
  }
  return Folded.State;
}

uint64_t ParallelExecutor::mailMerged() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Partition> &P : Parts)
    Total += P->mailMerged();
  return Total;
}

int parcs::sim::simThreadsFromEnv() {
  const char *Env = std::getenv("PARCS_SIM_THREADS");
  if (!Env || !*Env)
    return 1;
  char *End = nullptr;
  long N = std::strtol(Env, &End, 10);
  if (*End != '\0' || N < 1)
    return 1;
  return N > 64 ? 64 : int(N);
}
