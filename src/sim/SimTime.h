//===- sim/SimTime.h - Virtual time type ------------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual time for the discrete-event simulator.  Time is an integer count
/// of nanoseconds so that event ordering is exact; doubles appear only at
/// the reporting boundary.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_SIMTIME_H
#define PARCS_SIM_SIMTIME_H

#include <cassert>
#include <cstdint>
#include <string>

namespace parcs::sim {

/// A point in (or duration of) virtual time, in integer nanoseconds.
class SimTime {
public:
  constexpr SimTime() = default;

  static constexpr SimTime nanoseconds(int64_t Ns) { return SimTime(Ns); }
  static constexpr SimTime microseconds(int64_t Us) {
    return SimTime(Us * 1000);
  }
  static constexpr SimTime milliseconds(int64_t Ms) {
    return SimTime(Ms * 1000 * 1000);
  }
  static constexpr SimTime seconds(int64_t S) {
    return SimTime(S * 1000 * 1000 * 1000);
  }
  /// Builds a time from fractional seconds, rounding to the nearest
  /// nanosecond.  Handy when cost models produce doubles.
  static SimTime fromSecondsF(double S) {
    return SimTime(static_cast<int64_t>(S * 1e9 + (S >= 0 ? 0.5 : -0.5)));
  }
  static SimTime fromMicrosF(double Us) { return fromSecondsF(Us * 1e-6); }

  constexpr int64_t nanosecondsCount() const { return Ns; }
  constexpr double toSecondsF() const { return static_cast<double>(Ns) * 1e-9; }
  constexpr double toMillisF() const { return static_cast<double>(Ns) * 1e-6; }
  constexpr double toMicrosF() const { return static_cast<double>(Ns) * 1e-3; }

  constexpr bool isZero() const { return Ns == 0; }

  friend constexpr SimTime operator+(SimTime A, SimTime B) {
    return SimTime(A.Ns + B.Ns);
  }
  friend constexpr SimTime operator-(SimTime A, SimTime B) {
    return SimTime(A.Ns - B.Ns);
  }
  SimTime &operator+=(SimTime Other) {
    Ns += Other.Ns;
    return *this;
  }
  SimTime &operator-=(SimTime Other) {
    Ns -= Other.Ns;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime A, int64_t K) {
    return SimTime(A.Ns * K);
  }
  friend constexpr SimTime operator*(int64_t K, SimTime A) { return A * K; }

  friend constexpr bool operator==(SimTime A, SimTime B) {
    return A.Ns == B.Ns;
  }
  friend constexpr bool operator!=(SimTime A, SimTime B) {
    return A.Ns != B.Ns;
  }
  friend constexpr bool operator<(SimTime A, SimTime B) { return A.Ns < B.Ns; }
  friend constexpr bool operator<=(SimTime A, SimTime B) {
    return A.Ns <= B.Ns;
  }
  friend constexpr bool operator>(SimTime A, SimTime B) { return A.Ns > B.Ns; }
  friend constexpr bool operator>=(SimTime A, SimTime B) {
    return A.Ns >= B.Ns;
  }

  /// Renders with an adaptive unit, e.g. "273.0us" or "1.500s".
  std::string str() const;

private:
  constexpr explicit SimTime(int64_t Ns) : Ns(Ns) {}
  int64_t Ns = 0;
};

} // namespace parcs::sim

#endif // PARCS_SIM_SIMTIME_H
