//===- sim/Channel.h - FIFO message channel ---------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FIFO channel (mailbox) connecting simulated tasks.  Receivers suspend
/// while the channel is empty; with a bounded capacity, senders suspend
/// while it is full.  NICs, remoting dispatchers and MPI matching queues are
/// all built on this.
///
/// Wake-ups are routed through the simulator event queue.  Items handed to
/// a woken receiver (and slots handed to a woken sender) are *reserved* so
/// that a task arriving between the wake-up being scheduled and it running
/// cannot steal them; this keeps delivery strictly FIFO.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_SIM_CHANNEL_H
#define PARCS_SIM_CHANNEL_H

#include "sim/Simulator.h"

#include <cassert>
#include <coroutine>
#include <deque>
#include <limits>

namespace parcs::sim {

/// FIFO channel of T with deterministic FIFO wake order.
template <typename T> class Channel {
public:
  /// \p Capacity bounds the number of buffered items; the default is
  /// effectively unbounded.
  explicit Channel(Simulator &Sim,
                   size_t Capacity = std::numeric_limits<size_t>::max())
      : Sim(Sim), Capacity(Capacity) {
    assert(Capacity > 0 && "channel capacity must be positive");
  }

  size_t size() const { return Items.size(); }
  bool empty() const { return Items.empty(); }

  /// Non-suspending send; asserts that the channel has room.  Use this from
  /// non-coroutine contexts (e.g. event callbacks).
  void trySend(T Item) {
    assert(hasSpace() && "trySend on a full channel");
    pushAndWake(std::move(Item));
  }

  /// Awaitable send; suspends while the channel is full.
  auto send(T Item) {
    struct Awaiter {
      Channel &Chan;
      T Item;
      bool Suspended = false;
      bool await_ready() { return Chan.hasSpace(); }
      void await_suspend(std::coroutine_handle<> Handle) {
        Suspended = true;
        Chan.SendWaiters.push_back(Handle);
      }
      void await_resume() {
        if (Suspended) {
          assert(Chan.ReservedSlots > 0 && "woken sender without reservation");
          --Chan.ReservedSlots;
        }
        assert(Chan.Items.size() < Chan.Capacity && "send without space");
        Chan.pushAndWake(std::move(Item));
      }
    };
    return Awaiter{*this, std::move(Item)};
  }

  /// Awaitable receive; suspends while the channel is empty.
  auto recv() {
    struct Awaiter {
      Channel &Chan;
      bool Suspended = false;
      bool await_ready() const { return Chan.hasUnreservedItem(); }
      void await_suspend(std::coroutine_handle<> Handle) {
        Suspended = true;
        Chan.RecvWaiters.push_back(Handle);
      }
      T await_resume() {
        if (Suspended) {
          assert(Chan.ReservedItems > 0 &&
                 "woken receiver without reservation");
          --Chan.ReservedItems;
        }
        return Chan.popAndWake();
      }
    };
    return Awaiter{*this};
  }

private:
  /// Space visible to a new sender: capacity minus live items minus slots
  /// already promised to woken senders.
  bool hasSpace() const {
    return Items.size() + ReservedSlots < Capacity;
  }

  /// An item a new receiver may take without starving a woken one.
  bool hasUnreservedItem() const { return Items.size() > ReservedItems; }

  void pushAndWake(T Item) {
    Items.push_back(std::move(Item));
    if (!RecvWaiters.empty()) {
      std::coroutine_handle<> Next = RecvWaiters.front();
      RecvWaiters.pop_front();
      ++ReservedItems;
      Sim.scheduleResume(SimTime(), Next);
    }
  }

  T popAndWake() {
    assert(!Items.empty() && "receive from empty channel");
    T Item = std::move(Items.front());
    Items.pop_front();
    if (!SendWaiters.empty()) {
      std::coroutine_handle<> Next = SendWaiters.front();
      SendWaiters.pop_front();
      ++ReservedSlots;
      Sim.scheduleResume(SimTime(), Next);
    }
    return Item;
  }

  Simulator &Sim;
  size_t Capacity;
  std::deque<T> Items;
  std::deque<std::coroutine_handle<>> RecvWaiters;
  std::deque<std::coroutine_handle<>> SendWaiters;
  /// Items promised to receivers that have been woken but not yet resumed.
  size_t ReservedItems = 0;
  /// Slots promised to senders that have been woken but not yet resumed.
  size_t ReservedSlots = 0;
};

} // namespace parcs::sim

#endif // PARCS_SIM_CHANNEL_H
