//===- fault/FaultPlan.h - Declarative fault schedule -----------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FaultPlan is a declarative, seeded schedule of everything that can go
/// wrong in a run: node crashes (with optional restart), link partitions,
/// probabilistic and burst message loss, payload bit-corruption, and latency
/// degradation.  Plans are plain data -- the Injector turns them into
/// simulator events -- and parse from a compact clause grammar so benches
/// can take them on the command line:
///
///   seed(7);crash(2,40ms,120ms);loss(0.01);corrupt(0.005,10ms,50ms)
///
/// Clause reference (times take s/ms/us/ns suffixes, bare numbers are
/// seconds; 0 means "never"/"forever" where a bound is optional):
///
///   seed(N)                      PRNG seed for the random clauses
///   dropnth(N)                   legacy NetConfig::DropEveryNth pattern
///   crash(node,at[,restartAt])   node crashes at `at`, optional restart
///   partition(a,b,from[,until])  messages between a and b are dropped
///   loss(p[,from[,until]])       each delivery lost with probability p
///   corrupt(p[,from[,until]])    one random payload bit flipped w.p. p
///   latency(extra[,from[,until]]) adds `extra` one-way delay
///
/// A burst outage is loss(1.0,from,until).  Identical (plan, workload)
/// pairs replay bit-for-bit: all randomness flows through support/Random
/// seeded from the plan.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_FAULT_FAULTPLAN_H
#define PARCS_FAULT_FAULTPLAN_H

#include "sim/SimTime.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parcs::fault {

/// One scheduled node crash, optionally followed by a restart.
struct CrashEvent {
  int Node = -1;
  sim::SimTime At;
  /// Zero means the node never comes back.
  sim::SimTime RestartAt;
};

/// A bidirectional link cut between two nodes for a time window.
struct Partition {
  int NodeA = -1;
  int NodeB = -1;
  sim::SimTime From;
  /// Zero means the partition never heals.
  sim::SimTime Until;
};

/// Probabilistic message loss while active.  Probability 1.0 over a window
/// is a burst outage.
struct LossClause {
  double Probability = 0.0;
  sim::SimTime From;
  /// Zero means active for the whole run.
  sim::SimTime Until;
};

/// Probabilistic single-bit payload corruption while active.  Corrupted
/// messages are still delivered -- integrity checking above must catch
/// them.
struct CorruptClause {
  double Probability = 0.0;
  sim::SimTime From;
  sim::SimTime Until;
};

/// Additional one-way latency while active (degraded link).
struct LatencyClause {
  sim::SimTime Extra;
  sim::SimTime From;
  sim::SimTime Until;
};

/// The full declarative schedule.  Default-constructed plans are empty
/// (inject nothing).
struct FaultPlan {
  /// Seed for the loss/corruption draws; same seed, same faults.
  uint64_t Seed = 1;
  /// Legacy deterministic pattern, applied as NetConfig::DropEveryNth by
  /// whoever builds the network (kept as a plan clause for one-stop
  /// configuration).
  int DropEveryNth = 0;
  std::vector<CrashEvent> Crashes;
  std::vector<Partition> Partitions;
  std::vector<LossClause> Losses;
  std::vector<CorruptClause> Corruptions;
  std::vector<LatencyClause> Latencies;

  /// True when the plan injects nothing at all.
  bool empty() const {
    return DropEveryNth == 0 && Crashes.empty() && Partitions.empty() &&
           Losses.empty() && Corruptions.empty() && Latencies.empty();
  }

  /// Renders the plan back into the clause grammar (round-trips through
  /// parse()).
  std::string str() const;

  /// Parses the clause grammar described in the file comment.
  static ErrorOr<FaultPlan> parse(std::string_view Spec);
};

} // namespace parcs::fault

#endif // PARCS_FAULT_FAULTPLAN_H
