//===- fault/Injector.h - Executes a FaultPlan ------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Injector turns a FaultPlan into simulator events and implements the
/// fabric's FaultHook: it schedules node crashes/restarts against the
/// cluster and adjudicates every non-loopback delivery (partition drop,
/// probabilistic loss, bit corruption, latency degradation).  All random
/// draws come from one support/Random stream seeded by the plan, and the
/// single-threaded simulator serialises deliveries, so identical
/// (plan, workload) pairs fault identically -- chaos runs replay
/// bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_FAULT_INJECTOR_H
#define PARCS_FAULT_INJECTOR_H

#include "fault/FaultPlan.h"
#include "net/Network.h"
#include "support/Random.h"
#include "vm/Cluster.h"

namespace parcs::fault {

/// Drives one FaultPlan against one cluster + network.  Attach before the
/// workload starts (the RPC engine keys frame checksums off a hook being
/// installed); the injector must outlive all traffic and detaches itself
/// from the network on destruction.
class Injector final : public net::FaultHook {
public:
  Injector(sim::Simulator &Sim, FaultPlan Plan)
      : Sim(Sim), Plan(std::move(Plan)), Random(this->Plan.Seed) {}
  /// Folds fault.* metrics and clears the network hook.
  ~Injector() override;
  Injector(const Injector &) = delete;
  Injector &operator=(const Injector &) = delete;

  /// Installs this injector as \p Net's fault hook and schedules the
  /// plan's crash/restart events against \p Cluster.  Call once, at
  /// virtual time zero, before any messages flow.
  void attach(vm::Cluster &Cluster, net::Network &Net);

  // FaultHook:
  bool nodeAlive(int Node) const override;
  sim::SimTime extraLatency(int Src, int Dst) override;
  Verdict onDeliver(int Src, int Dst,
                    std::vector<uint8_t> &Payload) override;

  struct Counters {
    uint64_t Crashes = 0;
    uint64_t Restarts = 0;
    uint64_t LossDropped = 0;
    uint64_t PartitionDropped = 0;
    uint64_t NodeDownDropped = 0;
    uint64_t Corrupted = 0;
    uint64_t Delayed = 0;
  };
  const Counters &counters() const { return Stats; }
  const FaultPlan &plan() const { return Plan; }

private:
  /// True when a [From, Until) window is active at the current virtual
  /// time (Until zero = forever).
  bool activeNow(sim::SimTime From, sim::SimTime Until) const;

  sim::Simulator &Sim;
  FaultPlan Plan;
  Rng Random;
  vm::Cluster *Cluster = nullptr;
  net::Network *Net = nullptr;
  Counters Stats;
};

} // namespace parcs::fault

#endif // PARCS_FAULT_INJECTOR_H
