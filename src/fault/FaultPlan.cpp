//===- fault/FaultPlan.cpp ------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include <cstdio>
#include <cstdlib>

using namespace parcs;
using namespace parcs::fault;

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t'))
    S.remove_suffix(1);
  return S;
}

std::vector<std::string_view> split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  while (true) {
    size_t Pos = S.find(Sep);
    if (Pos == std::string_view::npos) {
      Parts.push_back(trim(S));
      return Parts;
    }
    Parts.push_back(trim(S.substr(0, Pos)));
    S.remove_prefix(Pos + 1);
  }
}

ErrorOr<double> parseDouble(std::string_view S) {
  std::string Buf(S);
  char *End = nullptr;
  double Value = std::strtod(Buf.c_str(), &End);
  if (Buf.empty() || End != Buf.c_str() + Buf.size())
    return Error(ErrorCode::ParseError,
                 "fault plan: bad number '" + Buf + "'");
  return Value;
}

ErrorOr<int64_t> parseInt(std::string_view S) {
  std::string Buf(S);
  char *End = nullptr;
  long long Value = std::strtoll(Buf.c_str(), &End, 10);
  if (Buf.empty() || End != Buf.c_str() + Buf.size())
    return Error(ErrorCode::ParseError,
                 "fault plan: bad integer '" + Buf + "'");
  return static_cast<int64_t>(Value);
}

/// Times take s/ms/us/ns suffixes; bare numbers are seconds.
ErrorOr<sim::SimTime> parseTime(std::string_view S) {
  double Scale = 1.0;
  if (S.size() > 2 && S.substr(S.size() - 2) == "ns") {
    Scale = 1e-9;
    S.remove_suffix(2);
  } else if (S.size() > 2 && S.substr(S.size() - 2) == "us") {
    Scale = 1e-6;
    S.remove_suffix(2);
  } else if (S.size() > 2 && S.substr(S.size() - 2) == "ms") {
    Scale = 1e-3;
    S.remove_suffix(2);
  } else if (S.size() > 1 && S.back() == 's') {
    S.remove_suffix(1);
  }
  ErrorOr<double> Value = parseDouble(S);
  if (!Value)
    return Value.error();
  if (*Value < 0)
    return Error(ErrorCode::ParseError, "fault plan: negative time");
  return sim::SimTime::fromSecondsF(*Value * Scale);
}

ErrorOr<double> parseProbability(std::string_view S) {
  ErrorOr<double> P = parseDouble(S);
  if (!P)
    return P.error();
  if (*P < 0.0 || *P > 1.0)
    return Error(ErrorCode::ParseError,
                 "fault plan: probability out of [0,1]");
  return P;
}

std::string timeStr(sim::SimTime T) {
  return std::to_string(T.nanosecondsCount()) + "ns";
}

std::string probStr(double P) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", P);
  return Buf;
}

} // namespace

std::string FaultPlan::str() const {
  std::string Out = "seed(" + std::to_string(Seed) + ")";
  if (DropEveryNth > 0)
    Out += ";dropnth(" + std::to_string(DropEveryNth) + ")";
  for (const CrashEvent &C : Crashes) {
    Out += ";crash(" + std::to_string(C.Node) + "," + timeStr(C.At);
    if (!C.RestartAt.isZero())
      Out += "," + timeStr(C.RestartAt);
    Out += ")";
  }
  for (const Partition &P : Partitions) {
    Out += ";partition(" + std::to_string(P.NodeA) + "," +
           std::to_string(P.NodeB) + "," + timeStr(P.From);
    if (!P.Until.isZero())
      Out += "," + timeStr(P.Until);
    Out += ")";
  }
  for (const LossClause &L : Losses)
    Out += ";loss(" + probStr(L.Probability) + "," + timeStr(L.From) + "," +
           timeStr(L.Until) + ")";
  for (const CorruptClause &C : Corruptions)
    Out += ";corrupt(" + probStr(C.Probability) + "," + timeStr(C.From) +
           "," + timeStr(C.Until) + ")";
  for (const LatencyClause &L : Latencies)
    Out += ";latency(" + timeStr(L.Extra) + "," + timeStr(L.From) + "," +
           timeStr(L.Until) + ")";
  return Out;
}

ErrorOr<FaultPlan> FaultPlan::parse(std::string_view Spec) {
  FaultPlan Plan;
  for (std::string_view Clause : split(Spec, ';')) {
    if (Clause.empty())
      continue;
    size_t Open = Clause.find('(');
    if (Open == std::string_view::npos || Clause.back() != ')')
      return Error(ErrorCode::ParseError,
                   "fault plan: clause '" + std::string(Clause) +
                       "' is not name(args)");
    std::string_view Name = trim(Clause.substr(0, Open));
    std::vector<std::string_view> Args =
        split(Clause.substr(Open + 1, Clause.size() - Open - 2), ',');

    auto wantArgs = [&](size_t Lo, size_t Hi) -> bool {
      return Args.size() >= Lo && Args.size() <= Hi;
    };

    if (Name == "seed") {
      if (!wantArgs(1, 1))
        return Error(ErrorCode::ParseError, "fault plan: seed(N)");
      ErrorOr<int64_t> N = parseInt(Args[0]);
      if (!N)
        return N.error();
      Plan.Seed = static_cast<uint64_t>(*N);
    } else if (Name == "dropnth") {
      if (!wantArgs(1, 1))
        return Error(ErrorCode::ParseError, "fault plan: dropnth(N)");
      ErrorOr<int64_t> N = parseInt(Args[0]);
      if (!N)
        return N.error();
      if (*N < 0)
        return Error(ErrorCode::ParseError, "fault plan: dropnth < 0");
      Plan.DropEveryNth = static_cast<int>(*N);
    } else if (Name == "crash") {
      if (!wantArgs(2, 3))
        return Error(ErrorCode::ParseError,
                     "fault plan: crash(node,at[,restartAt])");
      ErrorOr<int64_t> Node = parseInt(Args[0]);
      if (!Node)
        return Node.error();
      ErrorOr<sim::SimTime> At = parseTime(Args[1]);
      if (!At)
        return At.error();
      CrashEvent C;
      C.Node = static_cast<int>(*Node);
      C.At = *At;
      if (C.Node < 0)
        return Error(ErrorCode::ParseError, "fault plan: crash node < 0");
      if (Args.size() == 3) {
        ErrorOr<sim::SimTime> Restart = parseTime(Args[2]);
        if (!Restart)
          return Restart.error();
        if (!Restart->isZero() && *Restart <= C.At)
          return Error(ErrorCode::ParseError,
                       "fault plan: restart not after crash");
        C.RestartAt = *Restart;
      }
      Plan.Crashes.push_back(C);
    } else if (Name == "partition") {
      if (!wantArgs(3, 4))
        return Error(ErrorCode::ParseError,
                     "fault plan: partition(a,b,from[,until])");
      ErrorOr<int64_t> A = parseInt(Args[0]);
      if (!A)
        return A.error();
      ErrorOr<int64_t> B = parseInt(Args[1]);
      if (!B)
        return B.error();
      ErrorOr<sim::SimTime> From = parseTime(Args[2]);
      if (!From)
        return From.error();
      Partition P;
      P.NodeA = static_cast<int>(*A);
      P.NodeB = static_cast<int>(*B);
      P.From = *From;
      if (P.NodeA < 0 || P.NodeB < 0)
        return Error(ErrorCode::ParseError, "fault plan: partition node < 0");
      if (Args.size() == 4) {
        ErrorOr<sim::SimTime> Until = parseTime(Args[3]);
        if (!Until)
          return Until.error();
        if (!Until->isZero() && *Until <= P.From)
          return Error(ErrorCode::ParseError,
                       "fault plan: partition heals before it starts");
        P.Until = *Until;
      }
      Plan.Partitions.push_back(P);
    } else if (Name == "loss" || Name == "corrupt") {
      if (!wantArgs(1, 3))
        return Error(ErrorCode::ParseError,
                     "fault plan: " + std::string(Name) +
                         "(p[,from[,until]])");
      ErrorOr<double> P = parseProbability(Args[0]);
      if (!P)
        return P.error();
      sim::SimTime From, Until;
      if (Args.size() >= 2) {
        ErrorOr<sim::SimTime> F = parseTime(Args[1]);
        if (!F)
          return F.error();
        From = *F;
      }
      if (Args.size() == 3) {
        ErrorOr<sim::SimTime> U = parseTime(Args[2]);
        if (!U)
          return U.error();
        if (!U->isZero() && *U <= From)
          return Error(ErrorCode::ParseError,
                       "fault plan: window ends before it starts");
        Until = *U;
      }
      if (Name == "loss")
        Plan.Losses.push_back({*P, From, Until});
      else
        Plan.Corruptions.push_back({*P, From, Until});
    } else if (Name == "latency") {
      if (!wantArgs(1, 3))
        return Error(ErrorCode::ParseError,
                     "fault plan: latency(extra[,from[,until]])");
      ErrorOr<sim::SimTime> Extra = parseTime(Args[0]);
      if (!Extra)
        return Extra.error();
      LatencyClause L;
      L.Extra = *Extra;
      if (Args.size() >= 2) {
        ErrorOr<sim::SimTime> F = parseTime(Args[1]);
        if (!F)
          return F.error();
        L.From = *F;
      }
      if (Args.size() == 3) {
        ErrorOr<sim::SimTime> U = parseTime(Args[2]);
        if (!U)
          return U.error();
        if (!U->isZero() && *U <= L.From)
          return Error(ErrorCode::ParseError,
                       "fault plan: window ends before it starts");
        L.Until = *U;
      }
      Plan.Latencies.push_back(L);
    } else {
      return Error(ErrorCode::ParseError,
                   "fault plan: unknown clause '" + std::string(Name) + "'");
    }
  }
  return Plan;
}
