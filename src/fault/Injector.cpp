//===- fault/Injector.cpp -------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "fault/Injector.h"

#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace parcs;
using namespace parcs::fault;

Injector::~Injector() {
  if (Net && Net->faultHook() == this)
    Net->setFaultHook(nullptr);
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("fault.crashes").add(Stats.Crashes);
  Reg.counter("fault.restarts").add(Stats.Restarts);
  Reg.counter("fault.loss_dropped").add(Stats.LossDropped);
  Reg.counter("fault.partition_dropped").add(Stats.PartitionDropped);
  Reg.counter("fault.node_down_dropped").add(Stats.NodeDownDropped);
  Reg.counter("fault.corrupted").add(Stats.Corrupted);
  Reg.counter("fault.delayed").add(Stats.Delayed);
}

void Injector::attach(vm::Cluster &Cluster, net::Network &Net) {
  assert(!this->Cluster && "attach called twice");
  this->Cluster = &Cluster;
  this->Net = &Net;
  Net.setFaultHook(this);
  for (const CrashEvent &C : Plan.Crashes) {
    assert(C.Node >= 0 && C.Node < Cluster.nodeCount() &&
           "crash clause names a node outside the cluster");
    assert(C.At >= Sim.now() && "crash scheduled in the past");
    Sim.schedule(C.At - Sim.now(), [this, C] {
      this->Cluster->node(C.Node).crash();
      ++Stats.Crashes;
      trace::instant(C.Node, 0, "fault.crash", Sim.now().nanosecondsCount());
      LogNodeScope Scope(C.Node);
      PARCS_LOG(Info, "fault: node " << C.Node << " crashed");
    });
    if (!C.RestartAt.isZero())
      Sim.schedule(C.RestartAt - Sim.now(), [this, C] {
        this->Cluster->node(C.Node).restart();
        ++Stats.Restarts;
        trace::instant(C.Node, 0, "fault.restart",
                       Sim.now().nanosecondsCount());
        LogNodeScope Scope(C.Node);
        PARCS_LOG(Info, "fault: node " << C.Node << " restarted");
      });
  }
}

bool Injector::nodeAlive(int Node) const {
  if (!Cluster || Node < 0 || Node >= Cluster->nodeCount())
    return true;
  return Cluster->node(Node).alive();
}

bool Injector::activeNow(sim::SimTime From, sim::SimTime Until) const {
  sim::SimTime Now = Sim.now();
  if (Now < From)
    return false;
  return Until.isZero() || Now < Until;
}

sim::SimTime Injector::extraLatency(int, int) {
  sim::SimTime Total;
  for (const LatencyClause &L : Plan.Latencies)
    if (activeNow(L.From, L.Until))
      Total += L.Extra;
  if (Total > sim::SimTime())
    ++Stats.Delayed;
  return Total;
}

net::FaultHook::Verdict Injector::onDeliver(int Src, int Dst,
                                            std::vector<uint8_t> &Payload) {
  // Fixed adjudication order keeps the Rng draw sequence (and therefore
  // the whole run) a pure function of the delivery sequence: structural
  // checks first (no draws), then one draw per active loss clause, then
  // one draw (plus one position draw on a hit) per active corruption
  // clause.
  if (!nodeAlive(Dst)) {
    ++Stats.NodeDownDropped;
    return Verdict::DropNodeDown;
  }
  for (const Partition &P : Plan.Partitions) {
    bool Matches = (Src == P.NodeA && Dst == P.NodeB) ||
                   (Src == P.NodeB && Dst == P.NodeA);
    if (Matches && activeNow(P.From, P.Until)) {
      ++Stats.PartitionDropped;
      return Verdict::DropPartition;
    }
  }
  for (const LossClause &L : Plan.Losses)
    if (activeNow(L.From, L.Until) && Random.nextDouble() < L.Probability) {
      ++Stats.LossDropped;
      return Verdict::DropLoss;
    }
  for (const CorruptClause &C : Plan.Corruptions)
    if (activeNow(C.From, C.Until) && Random.nextDouble() < C.Probability &&
        !Payload.empty()) {
      uint64_t Bit = Random.nextBelow(Payload.size() * 8);
      Payload[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
      ++Stats.Corrupted;
      trace::instant(Dst, 0, "fault.corrupt", Sim.now().nanosecondsCount());
      LogNodeScope Scope(Dst);
      PARCS_LOG(Debug, "fault: corrupted bit " << Bit << " of " << Src << "->"
                                               << Dst << " payload");
    }
  return Verdict::Deliver;
}
