//===- model/Pmnf.cpp - PMNF fitting --------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "model/Pmnf.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace parcs::model {

namespace {

/// The single-term value x^Exp * log2(x)^Log.
double termValue(double Exp, int Log, double X) {
  double V = Exp == 0 ? 1.0 : std::pow(X, Exp);
  if (Log > 0) {
    double L = std::log2(X);
    V *= Log == 1 ? L : L * L;
  }
  return V;
}

/// Least-squares c0 + c1*g over \p Samples with g = term(Exp, Log).
/// Closed-form normal equations; returns false when the 2x2 system is
/// singular (the term is constant over the xs, e.g. log2(x) on {1}).
bool solveTerm(const std::vector<Sample> &Samples, size_t Skip, double Exp,
               int Log, double &C0, double &C1) {
  double N = 0, Sg = 0, Sgg = 0, Sy = 0, Sgy = 0;
  for (size_t I = 0; I < Samples.size(); ++I) {
    if (I == Skip)
      continue;
    double G = termValue(Exp, Log, Samples[I].X);
    N += 1;
    Sg += G;
    Sgg += G * G;
    Sy += Samples[I].Y;
    Sgy += G * Samples[I].Y;
  }
  double Det = N * Sgg - Sg * Sg;
  // Relative singularity guard: Det is a variance times N, so compare it
  // against the magnitude of its ingredients.
  if (std::abs(Det) <= 1e-12 * (N * Sgg + Sg * Sg + 1e-300))
    return false;
  C1 = (N * Sgy - Sg * Sy) / Det;
  C0 = (Sy - C1 * Sg) / N;
  return std::isfinite(C0) && std::isfinite(C1);
}

/// Mean of y over \p Samples minus the skipped index (the constant model).
double meanY(const std::vector<Sample> &Samples, size_t Skip) {
  double N = 0, Sy = 0;
  for (size_t I = 0; I < Samples.size(); ++I) {
    if (I == Skip)
      continue;
    N += 1;
    Sy += Samples[I].Y;
  }
  return Sy / N;
}

void appendNum(std::string &Out, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

} // namespace

double FittedModel::predict(double X) const {
  return C1 == 0 ? C0 : C0 + C1 * termValue(Exp, Log, X);
}

double FittedModel::bandHalfWidth(double X) const {
  double P = std::abs(predict(X));
  double Band = std::max(4.0 * MaxRelErr * P, 4.0 * CvRmse);
  // Floor: an exact fit still quotes a non-empty band, so "within the
  // band" never degenerates to an equality test on doubles.
  return std::max(Band, 1e-9 * P + 1e-12);
}

std::string FittedModel::functionStr() const {
  std::string Out;
  appendNum(Out, C0);
  if (C1 == 0)
    return Out;
  Out += C1 < 0 ? " - " : " + ";
  appendNum(Out, std::abs(C1));
  if (Exp != 0) {
    Out += " * ";
    Out += Param;
    if (Exp != 1) {
      Out += '^';
      appendNum(Out, Exp);
    }
  }
  if (Log > 0) {
    Out += " * log2(";
    Out += Param;
    Out += ')';
    if (Log > 1) {
      Out += '^';
      appendNum(Out, double(Log));
    }
  }
  return Out;
}

ErrorOr<FittedModel> fitPmnf(const std::vector<Sample> &Samples,
                             std::string_view Param,
                             std::string_view Metric) {
  std::string Where = std::string(Metric) + " vs " + std::string(Param);
  if (Samples.size() < 4)
    return Error(ErrorCode::InvalidArgument,
                 Where + ": need at least 4 samples, have " +
                     std::to_string(Samples.size()));
  std::set<double> DistinctX;
  for (const Sample &S : Samples) {
    if (!(S.X > 0) || !std::isfinite(S.X) || !std::isfinite(S.Y))
      return Error(ErrorCode::InvalidArgument,
                   Where + ": parameter values must be finite and > 0");
    DistinctX.insert(S.X);
  }
  if (DistinctX.size() < 3)
    return Error(ErrorCode::InvalidArgument,
                 Where + ": need at least 3 distinct parameter values, have " +
                     std::to_string(DistinctX.size()));

  // The hypothesis lattice, simplest first: the constant model, then one
  // term x^i * log2(x)^j over ascending (i, j).  Selection requires a
  // strictly better (beyond relative epsilon) LOO score, so on ties the
  // earlier -- simpler -- hypothesis wins, deterministically.
  struct Hypothesis {
    bool Constant;
    double Exp;
    int Log;
  };
  std::vector<Hypothesis> Lattice;
  Lattice.push_back({true, 0, 0});
  for (double Exp : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0})
    for (int Log : {0, 1, 2}) {
      if (Exp == 0 && Log == 0)
        continue; // That is the constant model.
      Lattice.push_back({false, Exp, Log});
    }

  // Scores below a data-scale floor are numerically "exact": clamping
  // them makes every exact hypothesis tie, and ties go to the simplest,
  // so n^2 data picks n^2 and not n^2 * log2(n) on a 1e-13 residual fluke.
  double YScale = 0;
  for (const Sample &S : Samples)
    YScale = std::max(YScale, std::abs(S.Y));
  double ScoreFloor = 1e-10 * YScale;

  FittedModel Best;
  double BestScore = 0;
  bool HaveBest = false;
  for (const Hypothesis &H : Lattice) {
    // Leave-one-out pass: predict each sample from a fit of the others.
    double SumSq = 0, MaxRel = 0;
    bool Valid = true;
    for (size_t K = 0; K < Samples.size() && Valid; ++K) {
      double C0 = 0, C1 = 0;
      if (H.Constant)
        C0 = meanY(Samples, K);
      else if (!solveTerm(Samples, K, H.Exp, H.Log, C0, C1)) {
        Valid = false;
        break;
      }
      double Pred = C0 + C1 * (H.Constant ? 0.0
                                          : termValue(H.Exp, H.Log,
                                                      Samples[K].X));
      double Err = Pred - Samples[K].Y;
      if (!std::isfinite(Err)) {
        Valid = false;
        break;
      }
      SumSq += Err * Err;
      MaxRel = std::max(MaxRel,
                        std::abs(Err) /
                            std::max(std::abs(Samples[K].Y), 1e-12));
    }
    if (!Valid)
      continue;
    double CvRmse = std::sqrt(SumSq / double(Samples.size()));
    double Score = std::max(CvRmse, ScoreFloor);
    if (HaveBest && Score >= BestScore * (1.0 - 1e-9))
      continue;

    // Final coefficients from the full fit.
    double C0 = 0, C1 = 0;
    if (H.Constant)
      C0 = meanY(Samples, size_t(-1));
    else if (!solveTerm(Samples, size_t(-1), H.Exp, H.Log, C0, C1))
      continue;

    FittedModel M;
    M.Param = std::string(Param);
    M.Metric = std::string(Metric);
    M.C0 = C0;
    M.C1 = H.Constant ? 0 : C1;
    M.Exp = H.Constant ? 0 : H.Exp;
    M.Log = H.Constant ? 0 : H.Log;
    M.Points = Samples.size();
    M.CvRmse = CvRmse;
    M.MaxRelErr = MaxRel;

    double MeanAll = meanY(Samples, size_t(-1));
    double SsRes = 0, SsTot = 0;
    for (const Sample &S : Samples) {
      double R = M.predict(S.X) - S.Y;
      SsRes += R * R;
      double T = S.Y - MeanAll;
      SsTot += T * T;
    }
    M.R2 = SsTot > 0 ? 1.0 - SsRes / SsTot : 1.0;

    Best = std::move(M);
    BestScore = Score;
    HaveBest = true;
  }
  if (!HaveBest)
    return Error(ErrorCode::InvalidArgument,
                 Where + ": no hypothesis could be fitted");
  return Best;
}

} // namespace parcs::model
