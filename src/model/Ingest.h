//===- model/Ingest.h - Sweep and telemetry-export ingestion ----*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the two measurement sources into DataSets:
///
///  - sweep files, as written by the bench `--sweep-out` emitters and the
///    telemetry plane's `model=` hook (`{"parcs_sweep": 1, "points":
///    [{"params": {...}, "metrics": {...}}, ...]}`);
///  - raw PARCS_TELEMETRY exports: each export becomes one data point at
///    `params: {nodes}` whose metrics summarize every series -- exact
///    totals and rates for counters, per-window percentiles folded into
///    an n-weighted mean for histograms (the export carries window
///    summaries, not buckets; the plane's own `model=` hook emits exact
///    whole-run percentiles and should be preferred when available).
///
/// loadSweepFile dispatches on the document shape, so the CLI accepts
/// either format anywhere a sweep is expected.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MODEL_INGEST_H
#define PARCS_MODEL_INGEST_H

#include "model/DataSet.h"
#include "support/Error.h"

#include <string>
#include <string_view>

namespace parcs::model {

/// Parses a sweep file ("points" array shape).
ErrorOr<DataSet> parseSweepJson(std::string_view Json);

/// Summarizes a PARCS_TELEMETRY export ("window_ns"/"series" shape) into
/// one data point (see file comment for the metric synthesis).
ErrorOr<DataSet> pointsFromTelemetryExport(std::string_view Json);

/// Reads \p Path and dispatches on the document shape: sweep files parse
/// via parseSweepJson, telemetry exports via pointsFromTelemetryExport.
ErrorOr<DataSet> loadSweepFile(const std::string &Path);

} // namespace parcs::model

#endif // PARCS_MODEL_INGEST_H
