//===- model/Legs.cpp - Profiler attribution as sweep data points ---------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "model/Legs.h"

namespace parcs::model {

DataPoint pointFromProfAnalysis(const prof::Analysis &A,
                                const NumberMap &Params) {
  DataPoint Point;
  Point.Params = Params;
  for (const auto &[Class, Ns] : A.ByClass)
    Point.Metrics[std::string(LegPrefix) + prof::segClassName(Class)] =
        double(Ns);
  Point.Metrics[std::string(LegPrefix) + "total"] = double(A.CriticalNs);
  return Point;
}

ErrorOr<DataPoint> pointFromTraceFile(const std::string &Path,
                                      const NumberMap &Params) {
  ErrorOr<prof::TraceData> Trace = prof::loadTraceFile(Path);
  if (!Trace)
    return Trace.error();
  return pointFromProfAnalysis(prof::analyze(*Trace), Params);
}

} // namespace parcs::model
