//===- model/Pmnf.h - Performance-model-normal-form fitting -----*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Extra-P-style fitter: human-readable scaling laws in performance
/// model normal form (PMNF), restricted -- as Extra-P's default search
/// space is in practice -- to a constant plus one term,
///
///   f(x) = c0 + c1 * x^i * log2(x)^j
///
/// with i drawn from a small lattice of polynomial exponents and j from
/// {0, 1, 2}.  Every hypothesis is fitted by ordinary least squares
/// (linear in c0, c1, so a closed-form 2x2 solve -- no iteration, no
/// tolerance knobs, bit-reproducible) and scored by leave-one-out
/// cross-validation: each point is predicted from a fit of the others,
/// and the hypothesis with the lowest LOO RMSE wins.  Ties -- within a
/// relative epsilon -- go to the simpler hypothesis (the lattice is
/// ordered constant first, then ascending (i, j)), so repeated fits of
/// the same data pick the same model and every report is byte-stable.
///
/// The LOO residuals double as the model's honesty about itself: the
/// confidence band at any x is derived from the worst relative and
/// absolute LOO errors, so noisy sweeps widen their own bands and an
/// extrapolation carries the measured noise with it.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MODEL_PMNF_H
#define PARCS_MODEL_PMNF_H

#include "model/DataSet.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace parcs::model {

/// A fitted PMNF model for one (param, metric) series.
struct FittedModel {
  std::string Param;  ///< The x of the scaling law ("nodes", "threads", ...).
  std::string Metric; ///< The y ("p99", "events_per_sec", ...).

  double C0 = 0; ///< Constant coefficient.
  double C1 = 0; ///< Term coefficient (0 for the constant model).
  double Exp = 0; ///< Polynomial exponent i of the term.
  int Log = 0;    ///< log2 power j of the term.

  size_t Points = 0;    ///< Samples the fit saw (repeats included).
  double CvRmse = 0;    ///< Leave-one-out RMSE.
  double MaxRelErr = 0; ///< Worst LOO relative error (vs |y|).
  double R2 = 0;        ///< Coefficient of determination of the full fit.

  /// The model value at \p X.
  double predict(double X) const;

  /// Half-width of the confidence band at \p X, from the LOO residuals:
  /// max of the worst relative error and the worst absolute error, with
  /// a small floor so exact fits still quote a non-empty band.
  double bandHalfWidth(double X) const;

  /// Human-readable normal form, e.g. "120 + 3.5 * nodes * log2(nodes)".
  /// Byte-stable (%.6g coefficients).
  std::string functionStr() const;
};

/// Fits the PMNF hypothesis lattice to \p Samples (the (x, y) series of
/// \p Metric against \p Param) and returns the cross-validation winner.
/// Requires at least 4 samples, at least 3 distinct x values, and every
/// x > 0 (parameters are counts and sizes).
ErrorOr<FittedModel> fitPmnf(const std::vector<Sample> &Samples,
                             std::string_view Param, std::string_view Metric);

} // namespace parcs::model

#endif // PARCS_MODEL_PMNF_H
