//===- model/Check.h - Regression gate against a fitted envelope -*- C++ -*-//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The perf-regression gate: a fresh bench run is compared against the
/// fitted envelope of an earlier sweep, metric by metric.  Repeats in the
/// fresh run are averaged per parameter value first (single samples are
/// noise; the envelope was fitted on repeats too), then each averaged
/// observation is checked against the model's prediction.  A metric
/// breaches when its deviation exceeds the threshold AND the observation
/// falls outside the model's own confidence band -- so a tight sweep with
/// honest noise does not gate on scheduler jitter, while a real
/// regression (or an overly-noisy baseline that cannot gate anything)
/// is reported as such.
///
/// The threshold comes from the CLI, or from the environment knob
///
///   PARCS_MODEL=<model-file>[,deviation=<N>%]
///
/// parsed with the standard support/EnvSpec grammar and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MODEL_CHECK_H
#define PARCS_MODEL_CHECK_H

#include "model/Report.h"

namespace parcs::model {

/// Outcome of checking one metric at one parameter value.
struct CheckRow {
  std::string Metric;
  double X = 0;         ///< Parameter value of the fresh observation.
  double Actual = 0;    ///< Mean of the fresh repeats at X.
  double Predicted = 0; ///< Model prediction at X.
  double DeviationPct = 0;
  bool Breach = false;
};

struct CheckResult {
  std::vector<CheckRow> Rows; ///< Sorted by metric, then X.
  double MaxDeviationPct = 0;
  size_t Breaches = 0;
  bool Ok = true; ///< No breaches and at least one comparable row.
};

/// Compares \p Fresh against \p Envelope at threshold \p DeviationPct.
CheckResult check(const ModelSet &Envelope, const DataSet &Fresh,
                  double DeviationPct);

/// Byte-stable text rendering of a check (one row per comparison, breach
/// rows marked, verdict line last).
std::string checkReport(const CheckResult &R, double DeviationPct);

/// The PARCS_MODEL knob: model file path plus an optional deviation
/// threshold in percent ("25%" or bare "25").
struct CheckSpec {
  std::string ModelPath;
  double DeviationPct = 20;
};

/// Parses "<file>[,deviation=N%]".  Returns false (leaving \p Out
/// untouched) on malformation; \p BadToken receives the offending token.
bool parseCheckSpec(std::string_view Spec, CheckSpec &Out,
                    std::string *BadToken = nullptr);

/// Reads PARCS_MODEL.  True when set and well-formed; warns on stderr
/// naming the bad token when set but malformed; silent false when unset.
bool envCheckSpec(CheckSpec &Out);

} // namespace parcs::model

#endif // PARCS_MODEL_CHECK_H
