//===- model/Report.h - Fitted model sets, reports, model JSON --*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ModelSet is every metric of a sweep fitted against one parameter --
/// what `parcs-model fit` produces and what the regression gate consumes.
/// It round-trips through a small JSON form (the same shape embedded as
/// the "model" section of BENCH_sim_kernel.json), and renders as a
/// byte-stable text report: fixed column layout, %.6g numbers, metrics in
/// sorted order, so repeated fits of the same sweep diff empty.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MODEL_REPORT_H
#define PARCS_MODEL_REPORT_H

#include "model/Pmnf.h"

#include <map>

namespace parcs::model {

/// Every fittable metric of one sweep, modeled against one parameter.
struct ModelSet {
  std::string Param;
  std::map<std::string, FittedModel, std::less<>> Models;
};

/// Fits every metric of \p Data against \p Param.  Metrics whose series
/// cannot be fitted (too few samples / distinct xs) are skipped; an error
/// is returned only when nothing at all could be fitted.  When \p Param
/// is empty it is inferred: the single varying parameter of the sweep
/// (ambiguous or absent -> error).
ErrorOr<ModelSet> fitAll(const DataSet &Data, std::string_view Param);

/// Aligned, byte-stable text report of the fitted functions and their
/// cross-validation quality.
std::string textReport(const ModelSet &Set);

/// The model JSON form: {"parcs_model": 1, "param": ..., "models":
/// {metric: {function, c0, c1, exp, log, points, cv_rmse, max_rel_err,
/// r2}, ...}}.  Byte-stable.
std::string modelJson(const ModelSet &Set);

/// Parses modelJson output.  Also accepts any JSON object with a "model"
/// member of that shape (so `parcs-model check` can read the fitted
/// envelope straight out of BENCH_sim_kernel.json).
ErrorOr<ModelSet> parseModelJson(std::string_view Json);

/// Reads \p Path and calls parseModelJson; falls back to fitting the file
/// as a sweep when it has no model section but is a loadable sweep.
ErrorOr<ModelSet> loadModelFile(const std::string &Path);

} // namespace parcs::model

#endif // PARCS_MODEL_REPORT_H
