//===- model/Compose.cpp - Compositional per-leg models -------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "model/Compose.h"

#include "model/Legs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace parcs::model {

namespace {

std::string fmtNum(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

bool isLegMetric(std::string_view Name) {
  return Name.substr(0, LegPrefix.size()) == LegPrefix;
}

} // namespace

double Composition::predict(double X) const {
  double Sum = 0;
  for (const auto &[Name, M] : Legs)
    Sum += M.predict(X);
  return Sum;
}

double Composition::bandHalfWidth(double X) const {
  double Sum = 0;
  for (const auto &[Name, M] : Legs)
    Sum += M.bandHalfWidth(X);
  return Sum;
}

ErrorOr<Composition> compose(const DataSet &Data, std::string_view Param,
                             std::string_view EndMetric) {
  std::string End(EndMetric.empty() ? std::string(LegPrefix) + "total"
                                    : std::string(EndMetric));
  ErrorOr<ModelSet> All = fitAll(Data, Param);
  if (!All)
    return All.error();

  Composition C;
  C.Param = All->Param;
  C.EndMetric = End;
  auto DirectIt = All->Models.find(End);
  if (DirectIt == All->Models.end())
    return Error(ErrorCode::InvalidArgument,
                 "end-to-end metric \"" + End + "\" could not be fitted");
  C.Direct = DirectIt->second;
  for (const auto &[Metric, M] : All->Models)
    if (Metric != End && isLegMetric(Metric))
      C.Legs.emplace(Metric, M);
  if (C.Legs.empty())
    return Error(ErrorCode::InvalidArgument,
                 "no \"leg.*\" submodels to compose (run parcs-model legs "
                 "first, or name metrics with a leg. prefix)");

  // Validate: composed vs direct over the xs the fits saw.
  std::set<double> Xs;
  for (const Sample &S : series(Data, C.Param, End))
    Xs.insert(S.X);
  for (double X : Xs) {
    double Composed = C.predict(X);
    double Direct = C.Direct.predict(X);
    double Gap = std::abs(Composed - Direct) /
                 std::max(std::abs(Direct), 1e-12);
    C.CompositionErr = std::max(C.CompositionErr, Gap);
  }
  return C;
}

std::string compositionReport(const Composition &C, const DataSet &Data) {
  std::string Out =
      "parcs-model compose -- additive legs vs " + C.EndMetric + "\n";
  size_t LegW = 6;
  for (const auto &[Name, M] : C.Legs)
    LegW = std::max(LegW, Name.size());
  LegW = std::max(LegW, C.EndMetric.size() + 9); // "direct <metric>"
  for (const auto &[Name, M] : C.Legs) {
    Out += "  ";
    Out += Name;
    Out.append(LegW - Name.size(), ' ');
    Out += "  ";
    Out += M.functionStr();
    Out += '\n';
  }
  std::string DirectLabel = "direct " + C.EndMetric;
  Out += "  ";
  Out += DirectLabel;
  Out.append(LegW - DirectLabel.size(), ' ');
  Out += "  ";
  Out += C.Direct.functionStr();
  Out += '\n';

  std::set<double> Xs;
  for (const Sample &S : series(Data, C.Param, C.EndMetric))
    Xs.insert(S.X);
  Out += "  validation (composed vs direct):\n";
  Out += "    " + C.Param + "    composed      direct      gap\n";
  for (double X : Xs) {
    double Composed = C.predict(X);
    double Direct = C.Direct.predict(X);
    double Gap = std::abs(Composed - Direct) /
                 std::max(std::abs(Direct), 1e-12);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "    %8s  %10s  %10s  %6s%%\n",
                  fmtNum(X).c_str(), fmtNum(Composed).c_str(),
                  fmtNum(Direct).c_str(), fmtNum(100.0 * Gap).c_str());
    Out += Buf;
  }
  Out += "  composition error: " + fmtNum(100.0 * C.CompositionErr) + "%\n";
  return Out;
}

} // namespace parcs::model
