//===- model/DataSet.h - Sweep data points for performance models -*- C++ -*-//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The raw material of the modeling layer: data points measured by the
/// bench sweeps (`--sweep-out`) and the telemetry plane's model export
/// hook.  A point pairs a parameter assignment -- the configuration the
/// measurement ran at (nodes, threads, msgBytes, grain, ...) -- with the
/// metrics observed there (latency percentiles, throughput, events/s).
/// Repeats are simply multiple points with the same parameter assignment;
/// the fitter sees every repeat, so measurement noise flows into the
/// cross-validation error and from there into the confidence bands.
///
/// Everything is keyed by ordered maps and rendered with fixed %.6g
/// formatting, so sweep files and every report derived from them are
/// byte-stable: a pure function of the measured values.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MODEL_DATASET_H
#define PARCS_MODEL_DATASET_H

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace parcs::model {

/// Named doubles in deterministic (sorted) order.
using NumberMap = std::map<std::string, double, std::less<>>;

/// One measurement: the configuration it ran at plus what was observed.
struct DataPoint {
  NumberMap Params;
  NumberMap Metrics;
};

/// A sweep: points plus provenance (which bench produced it, on what
/// machine/toolchain -- free-form, never parsed).
struct DataSet {
  std::string Bench;
  std::string Machine;
  std::vector<DataPoint> Points;

  /// Appends \p Other's points (multi-file ingest).  Provenance fields
  /// keep the first non-empty value seen.
  void append(const DataSet &Other);
};

/// One (x, y) observation of a metric against a parameter.
struct Sample {
  double X = 0;
  double Y = 0;
};

/// Every (param, metric) observation in \p Data, sorted by X then Y --
/// a deterministic order independent of point order in the file.  Points
/// missing either name are skipped.
std::vector<Sample> series(const DataSet &Data, std::string_view Param,
                           std::string_view Metric);

/// Parameter names that take more than one distinct value across the
/// points -- the candidate model parameters -- in sorted order.
std::vector<std::string> varyingParams(const DataSet &Data);

/// Every metric name appearing in any point, in sorted order.
std::vector<std::string> metricNames(const DataSet &Data);

/// Renders \p Data in the sweep-file JSON format the ingester reads
/// (byte-stable; `{"parcs_sweep": 1, "bench": ..., "machine": ...,
/// "points": [{"params": {...}, "metrics": {...}}, ...]}`).
std::string writeSweepJson(const DataSet &Data);

} // namespace parcs::model

#endif // PARCS_MODEL_DATASET_H
