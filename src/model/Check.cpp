//===- model/Check.cpp - Regression gate against a fitted envelope --------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "model/Check.h"

#include "support/EnvSpec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace parcs::model {

namespace {

std::string fmtNum(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Parses a percentage -- "25", "25.5" or "25%" -- into \p Out.
bool parsePercent(std::string_view Text, double &Out) {
  if (!Text.empty() && Text.back() == '%')
    Text.remove_suffix(1);
  if (Text.empty())
    return false;
  std::string Buf(Text);
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size() || !(V >= 0) || !std::isfinite(V))
    return false;
  Out = V;
  return true;
}

} // namespace

CheckResult check(const ModelSet &Envelope, const DataSet &Fresh,
                  double DeviationPct) {
  CheckResult R;
  for (const auto &[Metric, M] : Envelope.Models) {
    // Average the fresh repeats per distinct parameter value: the envelope
    // was fitted on repeats, single samples would gate on noise.
    std::map<double, std::pair<double, size_t>> ByX;
    for (const Sample &S : series(Fresh, Envelope.Param, Metric)) {
      auto &Acc = ByX[S.X];
      Acc.first += S.Y;
      Acc.second += 1;
    }
    for (const auto &[X, Acc] : ByX) {
      CheckRow Row;
      Row.Metric = Metric;
      Row.X = X;
      Row.Actual = Acc.first / double(Acc.second);
      Row.Predicted = M.predict(X);
      double Scale = std::max(std::abs(Row.Predicted), 1e-12);
      Row.DeviationPct = 100.0 * std::abs(Row.Actual - Row.Predicted) / Scale;
      // Breach only when beyond the threshold AND outside the model's own
      // confidence band -- honest noise widens the band, real regressions
      // clear both bars.
      Row.Breach = Row.DeviationPct > DeviationPct &&
                   std::abs(Row.Actual - Row.Predicted) > M.bandHalfWidth(X);
      R.MaxDeviationPct = std::max(R.MaxDeviationPct, Row.DeviationPct);
      if (Row.Breach)
        ++R.Breaches;
      R.Rows.push_back(std::move(Row));
    }
  }
  R.Ok = R.Breaches == 0 && !R.Rows.empty();
  return R;
}

std::string checkReport(const CheckResult &R, double DeviationPct) {
  std::string Out = "parcs-model check -- threshold " + fmtNum(DeviationPct) +
                    "% deviation\n";
  size_t MetricW = 6;
  for (const CheckRow &Row : R.Rows)
    MetricW = std::max(MetricW, Row.Metric.size());
  Out += "  ";
  Out += "metric";
  Out.append(MetricW - 6, ' ');
  Out += "         x      actual   predicted  deviation\n";
  for (const CheckRow &Row : R.Rows) {
    Out += "  ";
    Out += Row.Metric;
    Out.append(MetricW - Row.Metric.size(), ' ');
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "  %8s  %10s  %10s  %8s%%%s\n",
                  fmtNum(Row.X).c_str(), fmtNum(Row.Actual).c_str(),
                  fmtNum(Row.Predicted).c_str(),
                  fmtNum(Row.DeviationPct).c_str(),
                  Row.Breach ? "  BREACH" : "");
    Out += Buf;
  }
  if (R.Rows.empty())
    Out += "  (no comparable points: fresh run shares no metric with the "
           "envelope)\n";
  Out += R.Ok ? "  OK: within the fitted envelope (max deviation " +
                    fmtNum(R.MaxDeviationPct) + "%)\n"
              : "  FAIL: " + std::to_string(R.Breaches) +
                    " breach(es), max deviation " + fmtNum(R.MaxDeviationPct) +
                    "%\n";
  return Out;
}

bool parseCheckSpec(std::string_view Spec, CheckSpec &Out,
                    std::string *BadToken) {
  std::string_view Path;
  std::vector<envspec::Option> Opts;
  if (!envspec::split(Spec, Path, Opts, BadToken))
    return false;
  CheckSpec Parsed;
  Parsed.ModelPath = std::string(Path);
  for (const envspec::Option &O : Opts) {
    if (O.Key == "deviation") {
      if (!parsePercent(O.Value, Parsed.DeviationPct)) {
        if (BadToken)
          *BadToken = std::string(O.Token);
        return false;
      }
    } else {
      if (BadToken)
        *BadToken = std::string(O.Token);
      return false;
    }
  }
  Out = std::move(Parsed);
  return true;
}

bool envCheckSpec(CheckSpec &Out) {
  const char *Spec = std::getenv("PARCS_MODEL");
  if (!Spec || !*Spec)
    return false;
  std::string BadToken;
  if (!parseCheckSpec(Spec, Out, &BadToken)) {
    std::fprintf(stderr,
                 "parcs: ignoring malformed PARCS_MODEL \"%s\" (bad token "
                 "\"%s\")\n",
                 Spec, BadToken.c_str());
    return false;
  }
  return true;
}

} // namespace parcs::model
