//===- model/Legs.h - Profiler attribution as sweep data points -*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge from parcs-prof to the compositional models: one analyzed
/// trace becomes one data point whose metrics are the per-class
/// critical-path attribution -- "leg.compute", "leg.serialize", ...,
/// "leg.send-queue" (prof::segClassName spelling) plus "leg.total", all
/// in nanoseconds.  A set of traces taken at different scales turns into
/// a sweep whose legs can be fitted and composed (model/Compose.h).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MODEL_LEGS_H
#define PARCS_MODEL_LEGS_H

#include "model/DataSet.h"
#include "prof/Prof.h"
#include "support/Error.h"

namespace parcs::model {

/// Prefix of every leg metric.
inline constexpr std::string_view LegPrefix = "leg.";

/// Converts one critical-path analysis into a data point: \p Params
/// become the point's parameters (the caller knows the scale the trace
/// was taken at), the ByClass attribution becomes "leg.<class>" metrics
/// (nanoseconds, zeros included -- the fixed class layout keeps sweeps
/// rectangular), and "leg.total" is CriticalNs.
DataPoint pointFromProfAnalysis(const prof::Analysis &A,
                                const NumberMap &Params);

/// Loads the trace at \p Path, analyzes it, and returns the data point at
/// \p Params.
ErrorOr<DataPoint> pointFromTraceFile(const std::string &Path,
                                      const NumberMap &Params);

} // namespace parcs::model

#endif // PARCS_MODEL_LEGS_H
