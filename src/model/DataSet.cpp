//===- model/DataSet.cpp - Sweep data points ------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "model/DataSet.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace parcs::model {

namespace {

void appendEscaped(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

void appendDouble(std::string &Out, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

void appendMap(std::string &Out, const NumberMap &M) {
  Out += '{';
  bool First = true;
  for (const auto &[Name, Value] : M) {
    if (!First)
      Out += ", ";
    First = false;
    appendEscaped(Out, Name);
    Out += ": ";
    appendDouble(Out, Value);
  }
  Out += '}';
}

} // namespace

void DataSet::append(const DataSet &Other) {
  if (Bench.empty())
    Bench = Other.Bench;
  if (Machine.empty())
    Machine = Other.Machine;
  Points.insert(Points.end(), Other.Points.begin(), Other.Points.end());
}

std::vector<Sample> series(const DataSet &Data, std::string_view Param,
                           std::string_view Metric) {
  std::vector<Sample> Out;
  for (const DataPoint &P : Data.Points) {
    auto X = P.Params.find(Param);
    auto Y = P.Metrics.find(Metric);
    if (X == P.Params.end() || Y == P.Metrics.end())
      continue;
    Out.push_back({X->second, Y->second});
  }
  std::sort(Out.begin(), Out.end(), [](const Sample &A, const Sample &B) {
    return A.X != B.X ? A.X < B.X : A.Y < B.Y;
  });
  return Out;
}

std::vector<std::string> varyingParams(const DataSet &Data) {
  std::map<std::string, std::set<double>, std::less<>> Values;
  for (const DataPoint &P : Data.Points)
    for (const auto &[Name, Value] : P.Params)
      Values[Name].insert(Value);
  std::vector<std::string> Out;
  for (const auto &[Name, Distinct] : Values)
    if (Distinct.size() > 1)
      Out.push_back(Name);
  return Out;
}

std::vector<std::string> metricNames(const DataSet &Data) {
  std::set<std::string, std::less<>> Names;
  for (const DataPoint &P : Data.Points)
    for (const auto &[Name, Value] : P.Metrics) {
      (void)Value;
      Names.insert(Name);
    }
  return {Names.begin(), Names.end()};
}

std::string writeSweepJson(const DataSet &Data) {
  std::string Out = "{\n  \"parcs_sweep\": 1";
  if (!Data.Bench.empty()) {
    Out += ",\n  \"bench\": ";
    appendEscaped(Out, Data.Bench);
  }
  if (!Data.Machine.empty()) {
    Out += ",\n  \"machine\": ";
    appendEscaped(Out, Data.Machine);
  }
  Out += ",\n  \"points\": [";
  bool First = true;
  for (const DataPoint &P : Data.Points) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    Out += "{\"params\": ";
    appendMap(Out, P.Params);
    Out += ", \"metrics\": ";
    appendMap(Out, P.Metrics);
    Out += '}';
  }
  Out += "\n  ]\n}\n";
  return Out;
}

} // namespace parcs::model
