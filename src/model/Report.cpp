//===- model/Report.cpp - Fitted model sets, reports, model JSON ----------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "model/Report.h"

#include "model/Ingest.h"
#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace parcs::model {

namespace {

using json::Value;

void appendEscaped(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

void appendDouble(std::string &Out, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

std::string fmtCell(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

ErrorOr<ModelSet> fitAll(const DataSet &Data, std::string_view Param) {
  std::string ParamName(Param);
  if (ParamName.empty()) {
    std::vector<std::string> Varying = varyingParams(Data);
    if (Varying.empty())
      return Error(ErrorCode::InvalidArgument,
                   "no parameter varies across the sweep; pass --param");
    if (Varying.size() > 1) {
      std::string Names;
      for (const std::string &N : Varying) {
        if (!Names.empty())
          Names += ", ";
        Names += N;
      }
      return Error(ErrorCode::InvalidArgument,
                   "several parameters vary (" + Names +
                       "); pass --param to pick one");
    }
    ParamName = Varying[0];
  }

  ModelSet Set;
  Set.Param = ParamName;
  std::string FirstFailure;
  for (const std::string &Metric : metricNames(Data)) {
    std::vector<Sample> Samples = series(Data, ParamName, Metric);
    ErrorOr<FittedModel> M = fitPmnf(Samples, ParamName, Metric);
    if (M)
      Set.Models.emplace(Metric, std::move(*M));
    else if (FirstFailure.empty())
      FirstFailure = M.error().str();
  }
  if (Set.Models.empty())
    return Error(ErrorCode::InvalidArgument,
                 FirstFailure.empty() ? std::string("sweep has no metrics")
                                      : "no metric could be fitted: " +
                                            FirstFailure);
  return Set;
}

std::string textReport(const ModelSet &Set) {
  std::string Out = "parcs-model -- PMNF fits vs " + Set.Param + "\n";
  // Fixed layout: metric, fitted function, then the CV quality columns.
  size_t MetricW = 6, FuncW = 8;
  for (const auto &[Metric, M] : Set.Models) {
    MetricW = std::max(MetricW, Metric.size());
    FuncW = std::max(FuncW, M.functionStr().size());
  }
  Out += "  ";
  Out += "metric";
  Out.append(MetricW - 6, ' ');
  Out += "  ";
  Out += "model";
  Out.append(FuncW - 5, ' ');
  Out += "  points  cv-rmse  max-rel-err  r2\n";
  for (const auto &[Metric, M] : Set.Models) {
    Out += "  ";
    Out += Metric;
    Out.append(MetricW - Metric.size(), ' ');
    Out += "  ";
    std::string F = M.functionStr();
    Out += F;
    Out.append(FuncW - F.size(), ' ');
    Out += "  ";
    Out += std::to_string(M.Points);
    Out += "  ";
    Out += fmtCell(M.CvRmse);
    Out += "  ";
    Out += fmtCell(M.MaxRelErr);
    Out += "  ";
    Out += fmtCell(M.R2);
    Out += '\n';
  }
  return Out;
}

std::string modelJson(const ModelSet &Set) {
  std::string Out = "{\n  \"parcs_model\": 1,\n  \"param\": ";
  appendEscaped(Out, Set.Param);
  Out += ",\n  \"models\": {";
  bool First = true;
  for (const auto &[Metric, M] : Set.Models) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    appendEscaped(Out, Metric);
    Out += ": {\"function\": ";
    appendEscaped(Out, M.functionStr());
    Out += ", \"c0\": ";
    appendDouble(Out, M.C0);
    Out += ", \"c1\": ";
    appendDouble(Out, M.C1);
    Out += ", \"exp\": ";
    appendDouble(Out, M.Exp);
    Out += ", \"log\": ";
    appendDouble(Out, double(M.Log));
    Out += ", \"points\": ";
    appendDouble(Out, double(M.Points));
    Out += ", \"cv_rmse\": ";
    appendDouble(Out, M.CvRmse);
    Out += ", \"max_rel_err\": ";
    appendDouble(Out, M.MaxRelErr);
    Out += ", \"r2\": ";
    appendDouble(Out, M.R2);
    Out += '}';
  }
  Out += "\n  }\n}\n";
  return Out;
}

ErrorOr<ModelSet> parseModelJson(std::string_view Json) {
  Value Root;
  if (!json::parse(Json, Root) || !Root.isObject())
    return Error(ErrorCode::MalformedMessage, "model file is not JSON");
  const Value *Doc = &Root;
  if (!Doc->field("models")) {
    // Accept a wrapper document (BENCH_sim_kernel.json) whose "model"
    // member is the model JSON.
    const Value *Nested = Root.field("model");
    if (Nested && Nested->isObject() && Nested->field("models"))
      Doc = Nested;
    else
      return Error(ErrorCode::MalformedMessage,
                   "no \"models\" section (not a parcs-model file)");
  }
  ModelSet Set;
  Set.Param = std::string(Doc->str("param"));
  if (Set.Param.empty())
    return Error(ErrorCode::MalformedMessage, "model file names no param");
  const Value *Models = Doc->field("models");
  if (!Models || !Models->isObject())
    return Error(ErrorCode::MalformedMessage, "\"models\" is not an object");
  for (const auto &[Metric, M] : Models->Obj) {
    FittedModel F;
    F.Param = Set.Param;
    F.Metric = Metric;
    F.C0 = M.num("c0");
    F.C1 = M.num("c1");
    F.Exp = M.num("exp");
    F.Log = int(M.num("log"));
    F.Points = size_t(M.num("points"));
    F.CvRmse = M.num("cv_rmse");
    F.MaxRelErr = M.num("max_rel_err");
    F.R2 = M.num("r2");
    Set.Models.emplace(Metric, std::move(F));
  }
  if (Set.Models.empty())
    return Error(ErrorCode::MalformedMessage, "model file has no models");
  return Set;
}

ErrorOr<ModelSet> loadModelFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Error(ErrorCode::InvalidArgument, "cannot open " + Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Body = Buf.str();
  ErrorOr<ModelSet> Parsed = parseModelJson(Body);
  if (Parsed)
    return Parsed;
  // Not a model file: fit it as a sweep (fresh-baseline workflows).
  ErrorOr<DataSet> Sweep = loadSweepFile(Path);
  if (!Sweep)
    return Parsed.error();
  return fitAll(*Sweep, "");
}

} // namespace parcs::model
