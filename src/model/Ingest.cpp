//===- model/Ingest.cpp - Sweep and telemetry-export ingestion ------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "model/Ingest.h"

#include "support/Json.h"

#include <fstream>
#include <sstream>

namespace parcs::model {

namespace {

using json::Value;

Error malformed(const std::string &What) {
  return Error(ErrorCode::MalformedMessage, What);
}

/// Copies the numeric members of \p Obj into \p Out (non-numbers are a
/// format error: params and metrics are numbers by construction).
bool numberMap(const Value &Obj, NumberMap &Out) {
  if (!Obj.isObject())
    return false;
  for (const auto &[Name, Member] : Obj.Obj) {
    if (!Member.isNumber())
      return false;
    Out[Name] = Member.Num;
  }
  return true;
}

} // namespace

ErrorOr<DataSet> parseSweepJson(std::string_view Json) {
  Value Root;
  if (!json::parse(Json, Root) || !Root.isObject())
    return malformed("sweep file is not a JSON object");
  const Value *Points = Root.field("points");
  if (!Points || !Points->isArray())
    return malformed("sweep file has no \"points\" array");
  DataSet Out;
  Out.Bench = std::string(Root.str("bench"));
  Out.Machine = std::string(Root.str("machine"));
  for (const Value &P : Points->Arr) {
    const Value *Params = P.field("params");
    const Value *Metrics = P.field("metrics");
    DataPoint Point;
    if (!Params || !Metrics || !numberMap(*Params, Point.Params) ||
        !numberMap(*Metrics, Point.Metrics))
      return malformed("sweep point needs numeric \"params\" and "
                       "\"metrics\" objects");
    Out.Points.push_back(std::move(Point));
  }
  return Out;
}

ErrorOr<DataSet> pointsFromTelemetryExport(std::string_view Json) {
  Value Root;
  if (!json::parse(Json, Root) || !Root.isObject() ||
      !Root.field("window_ns") || !Root.field("series"))
    return malformed("not a telemetry export (no window_ns/series)");
  double WindowNs = Root.num("window_ns");
  DataPoint Point;
  Point.Params["nodes"] = Root.num("nodes");
  const Value *Series = Root.field("series");
  for (const auto &[Name, S] : Series->Obj) {
    const Value *Windows = S.field("windows");
    if (!Windows || !Windows->isArray())
      continue;
    bool IsHist = S.str("kind") == "histogram";
    double N = 0, WinCount = 0;
    double P50 = 0, P99 = 0, P999 = 0, Mean = 0;
    for (const Value &W : Windows->Arr) {
      double Wn = W.num("n");
      N += Wn;
      WinCount += 1;
      if (IsHist && Wn > 0) {
        P50 += Wn * W.num("p50");
        P99 += Wn * W.num("p99");
        P999 += Wn * W.num("p999");
        Mean += Wn * W.num("mean");
      }
    }
    if (N <= 0)
      continue;
    Point.Metrics[Name + ".n"] = N;
    if (WindowNs > 0 && WinCount > 0)
      Point.Metrics[Name + ".rate_per_s"] =
          N / (WinCount * WindowNs / 1e9);
    if (IsHist) {
      Point.Metrics[Name + ".p50"] = P50 / N;
      Point.Metrics[Name + ".p99"] = P99 / N;
      Point.Metrics[Name + ".p999"] = P999 / N;
      Point.Metrics[Name + ".mean"] = Mean / N;
    }
  }
  DataSet Out;
  Out.Bench = "telemetry-export";
  Out.Points.push_back(std::move(Point));
  return Out;
}

ErrorOr<DataSet> loadSweepFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Error(ErrorCode::InvalidArgument, "cannot open " + Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Body = Buf.str();
  Value Root;
  if (!json::parse(Body, Root) || !Root.isObject())
    return malformed(Path + ": not a JSON object");
  if (Root.field("points"))
    return parseSweepJson(Body);
  if (Root.field("window_ns") && Root.field("series"))
    return pointsFromTelemetryExport(Body);
  return malformed(Path + ": neither a sweep file (\"points\") nor a "
                          "telemetry export (\"series\")");
}

} // namespace parcs::model
