//===- model/Compose.h - Compositional per-leg models -----------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compositional performance modeling along the profiler's RPC legs: each
/// "leg.<class>" metric of a sweep (model/Legs.h) is fitted on its own,
/// and the end-to-end model is their sum -- latency on the critical path
/// is additive, so the composed prediction at any x is the sum of the leg
/// predictions, and its confidence band the sum of the leg bands.
///
/// The composition is validated against the directly-fitted end-to-end
/// series ("leg.total", or any metric the caller names): at every sample
/// x the composed and direct predictions are compared, and the worst
/// relative gap is the composition error.  A small gap means the legs
/// really do add up to the whole (the decomposition is sound and the
/// per-leg models can be trusted for what-if analysis); a large gap
/// flags a leg whose scaling the lattice cannot express.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MODEL_COMPOSE_H
#define PARCS_MODEL_COMPOSE_H

#include "model/Report.h"

namespace parcs::model {

/// Per-leg submodels plus the directly-fitted end-to-end reference.
struct Composition {
  std::string Param;
  std::string EndMetric; ///< The directly-fitted end-to-end series.
  std::map<std::string, FittedModel, std::less<>> Legs;
  FittedModel Direct; ///< Direct fit of EndMetric.

  /// Worst relative gap between composed and direct predictions over the
  /// sample xs the fit saw.
  double CompositionErr = 0;

  /// Sum of the leg predictions at \p X.
  double predict(double X) const;
  /// Sum of the leg bands at \p X (additive composition adds worst-case
  /// errors).
  double bandHalfWidth(double X) const;
};

/// Fits every "leg.*" metric of \p Data (except \p EndMetric itself) as a
/// submodel, fits \p EndMetric directly, and validates the sum against
/// the direct fit.  \p Param empty means infer it (fitAll's rule).
/// \p EndMetric empty means "leg.total".
ErrorOr<Composition> compose(const DataSet &Data, std::string_view Param,
                             std::string_view EndMetric);

/// Byte-stable report: the per-leg fitted functions, the direct fit, and
/// a composed-vs-direct validation table over the sweep's xs.
std::string compositionReport(const Composition &C, const DataSet &Data);

} // namespace parcs::model

#endif // PARCS_MODEL_COMPOSE_H
