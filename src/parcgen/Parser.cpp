//===- parcgen/Parser.cpp -------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/Parser.h"

using namespace parcs;
using namespace parcs::pcc;

Token Parser::consume() {
  Token Tok = Current;
  Current = Lex.next();
  return Tok;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

std::optional<Token> Parser::expect(TokenKind Kind, const char *Context) {
  if (check(Kind))
    return consume();
  Diags.error(Current.Loc, std::string("expected ") + tokenKindName(Kind) +
                               " " + Context + ", found " +
                               tokenKindName(Current.Kind));
  return std::nullopt;
}

void Parser::recover() {
  while (!check(TokenKind::EndOfFile)) {
    if (accept(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace))
      return;
    consume();
  }
}

std::optional<std::string> Parser::parseQualifiedName() {
  std::optional<Token> First = expect(TokenKind::Identifier, "in module name");
  if (!First)
    return std::nullopt;
  std::string Name = First->Text;
  while (accept(TokenKind::Dot)) {
    std::optional<Token> Part =
        expect(TokenKind::Identifier, "after '.' in module name");
    if (!Part)
      return std::nullopt;
    Name += "." + Part->Text;
  }
  return Name;
}

ModuleDecl Parser::parseModule() {
  ModuleDecl Module;
  if (accept(TokenKind::KwModule)) {
    if (std::optional<std::string> Name = parseQualifiedName())
      Module.Name = *Name;
    else
      recover();
    expect(TokenKind::Semicolon, "after module name");
  }

  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwExtern)) {
      if (std::optional<ClassDecl> Class = parseExternClass())
        Module.Classes.push_back(std::move(*Class));
      else
        recover();
      continue;
    }
    if (check(TokenKind::KwParallel)) {
      if (std::optional<ClassDecl> Class = parseParallelClass())
        Module.Classes.push_back(std::move(*Class));
      else
        recover();
      continue;
    }
    if (check(TokenKind::KwPassive)) {
      if (std::optional<ClassDecl> Class = parsePassiveClass())
        Module.Classes.push_back(std::move(*Class));
      else
        recover();
      continue;
    }
    Diags.error(Current.Loc,
                std::string("expected 'parallel', 'passive' or 'extern' at "
                            "top level, found ") +
                    tokenKindName(Current.Kind));
    consume();
    recover();
  }
  return Module;
}

std::optional<ClassDecl> Parser::parseExternClass() {
  ClassDecl Class;
  Class.IsExtern = true;
  Class.Loc = Current.Loc;
  consume(); // 'extern'
  if (!expect(TokenKind::KwClass, "after 'extern'"))
    return std::nullopt;
  std::optional<Token> Name = expect(TokenKind::Identifier, "in class name");
  if (!Name)
    return std::nullopt;
  Class.Name = Name->Text;
  if (!expect(TokenKind::Semicolon, "after extern class declaration"))
    return std::nullopt;
  return Class;
}

std::optional<ClassDecl> Parser::parsePassiveClass() {
  ClassDecl Class;
  Class.IsPassive = true;
  Class.Loc = Current.Loc;
  consume(); // 'passive'
  if (!expect(TokenKind::KwClass, "after 'passive'"))
    return std::nullopt;
  std::optional<Token> Name = expect(TokenKind::Identifier, "in class name");
  if (!Name)
    return std::nullopt;
  Class.Name = Name->Text;
  if (!expect(TokenKind::LBrace, "to open the class body"))
    return std::nullopt;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (std::optional<FieldDecl> Field = parseField())
      Class.Fields.push_back(std::move(*Field));
    else
      recover();
  }
  expect(TokenKind::RBrace, "to close the class body");
  accept(TokenKind::Semicolon); // Optional trailing ';'.
  return Class;
}

std::optional<FieldDecl> Parser::parseField() {
  FieldDecl Field;
  Field.Loc = Current.Loc;
  std::optional<TypeNode> Type = parseType();
  if (!Type)
    return std::nullopt;
  Field.Type = *Type;
  std::optional<Token> Name = expect(TokenKind::Identifier, "in field name");
  if (!Name)
    return std::nullopt;
  Field.Name = Name->Text;
  if (!expect(TokenKind::Semicolon, "after field declaration"))
    return std::nullopt;
  return Field;
}

std::optional<ClassDecl> Parser::parseParallelClass() {
  ClassDecl Class;
  Class.Loc = Current.Loc;
  consume(); // 'parallel'
  if (!expect(TokenKind::KwClass, "after 'parallel'"))
    return std::nullopt;
  std::optional<Token> Name = expect(TokenKind::Identifier, "in class name");
  if (!Name)
    return std::nullopt;
  Class.Name = Name->Text;
  if (accept(TokenKind::Colon)) {
    std::optional<Token> Base =
        expect(TokenKind::Identifier, "after ':' in class declaration");
    if (!Base)
      return std::nullopt;
    Class.Base = Base->Text;
  }
  if (!expect(TokenKind::LBrace, "to open the class body"))
    return std::nullopt;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (std::optional<MethodDecl> Method = parseMethod())
      Class.Methods.push_back(std::move(*Method));
    else
      recover();
  }
  expect(TokenKind::RBrace, "to close the class body");
  accept(TokenKind::Semicolon); // Optional trailing ';'.
  return Class;
}

std::optional<MethodDecl> Parser::parseMethod() {
  MethodDecl Method;
  Method.Loc = Current.Loc;
  if (accept(TokenKind::KwAsync)) {
    Method.Kind = MethodKind::Async;
    Method.ExplicitKind = true;
  } else if (accept(TokenKind::KwSync)) {
    Method.Kind = MethodKind::Sync;
    Method.ExplicitKind = true;
  }

  std::optional<TypeNode> Ret = parseType();
  if (!Ret)
    return std::nullopt;
  Method.ReturnType = *Ret;
  if (!Method.ExplicitKind) {
    // SCOOPP default: void methods are asynchronous, value-returning
    // methods are synchronous.
    Method.Kind =
        Method.ReturnType.isVoid() ? MethodKind::Async : MethodKind::Sync;
  }

  std::optional<Token> Name = expect(TokenKind::Identifier, "in method name");
  if (!Name)
    return std::nullopt;
  Method.Name = Name->Text;

  if (!expect(TokenKind::LParen, "to open the parameter list"))
    return std::nullopt;
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl Param;
      Param.Loc = Current.Loc;
      // 'ref' here is either the by-ref modifier ('ref int x') or the start
      // of a ref<...> type ('ref<Worker> w'); only the next token tells.
      bool ConsumedRef = false;
      if (check(TokenKind::KwRef)) {
        consume();
        ConsumedRef = true;
        if (!check(TokenKind::Less)) {
          Param.ByRef = true;
          ConsumedRef = false;
        }
      }
      std::optional<TypeNode> Type = parseType(/*AfterRef=*/ConsumedRef);
      if (!Type)
        return std::nullopt;
      Param.Type = *Type;
      std::optional<Token> ParamName =
          expect(TokenKind::Identifier, "in parameter name");
      if (!ParamName)
        return std::nullopt;
      Param.Name = ParamName->Text;
      Method.Params.push_back(std::move(Param));
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "to close the parameter list"))
    return std::nullopt;
  if (!expect(TokenKind::Semicolon, "after method declaration"))
    return std::nullopt;
  return Method;
}

std::optional<TypeNode> Parser::parseType(bool AfterRef) {
  TypeNode Type;
  Type.Loc = Current.Loc;
  if (AfterRef) {
    // The caller consumed 'ref' and saw '<': finish the ref<...> type.
    Type.Kind = TypeKind::Ref;
    if (!expect(TokenKind::Less, "after 'ref'"))
      return std::nullopt;
    std::optional<Token> Target =
        expect(TokenKind::Identifier, "in ref<> target");
    if (!Target)
      return std::nullopt;
    Type.RefClass = Target->Text;
    if (!expect(TokenKind::Greater, "to close ref<>"))
      return std::nullopt;
    if (accept(TokenKind::LBracket)) {
      if (!expect(TokenKind::RBracket, "to close the array type"))
        return std::nullopt;
      Type.IsArray = true;
      if (check(TokenKind::LBracket)) {
        Diags.error(Current.Loc, "nested array types are not supported");
        return std::nullopt;
      }
    }
    return Type;
  }
  switch (Current.Kind) {
  case TokenKind::KwVoid:
    Type.Kind = TypeKind::Void;
    consume();
    break;
  case TokenKind::KwBool:
    Type.Kind = TypeKind::Bool;
    consume();
    break;
  case TokenKind::KwInt:
    Type.Kind = TypeKind::Int;
    consume();
    break;
  case TokenKind::KwLong:
    Type.Kind = TypeKind::Long;
    consume();
    break;
  case TokenKind::KwDouble:
    Type.Kind = TypeKind::Double;
    consume();
    break;
  case TokenKind::KwString:
    Type.Kind = TypeKind::String;
    consume();
    break;
  case TokenKind::KwRef: {
    Type.Kind = TypeKind::Ref;
    consume();
    if (!expect(TokenKind::Less, "after 'ref'"))
      return std::nullopt;
    std::optional<Token> Target =
        expect(TokenKind::Identifier, "in ref<> target");
    if (!Target)
      return std::nullopt;
    Type.RefClass = Target->Text;
    if (!expect(TokenKind::Greater, "to close ref<>"))
      return std::nullopt;
    break;
  }
  case TokenKind::Identifier:
    // A bare class name: a passive-object link (validated by sema).
    Type.Kind = TypeKind::Passive;
    Type.RefClass = Current.Text;
    consume();
    break;
  default:
    Diags.error(Current.Loc, std::string("expected a type, found ") +
                                 tokenKindName(Current.Kind));
    return std::nullopt;
  }

  if (accept(TokenKind::LBracket)) {
    if (!expect(TokenKind::RBracket, "to close the array type"))
      return std::nullopt;
    Type.IsArray = true;
    if (check(TokenKind::LBracket)) {
      Diags.error(Current.Loc, "nested array types are not supported");
      return std::nullopt;
    }
  }
  return Type;
}
