//===- parcgen/CodeGen.cpp ------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/CodeGen.h"

#include "support/StringUtils.h"

#include <cctype>
#include <sstream>

using namespace parcs;
using namespace parcs::pcc;

namespace {

/// "examples.prime" -> {"examples", "prime"}; empty -> {"parcsgen"}.
std::vector<std::string> namespaceParts(const ModuleDecl &Module) {
  if (Module.Name.empty())
    return {"parcsgen"};
  return splitString(Module.Name, '.');
}

std::string includeGuard(const ModuleDecl &Module) {
  std::string Guard = "PARCSGEN_";
  std::string Name = Module.Name.empty() ? "default" : Module.Name;
  for (char C : Name)
    Guard += std::isalnum(static_cast<unsigned char>(C))
                 ? static_cast<char>(std::toupper(C))
                 : '_';
  Guard += "_H";
  return Guard;
}

/// Wire type-name of a passive class ("module.Class").
std::string passiveTypeName(const ModuleDecl &Module,
                            const std::string &Class) {
  std::string Prefix = Module.Name.empty() ? "parcsgen" : Module.Name;
  return Prefix + "." + Class;
}

/// C++ type of a method parameter in the *proxy* signature.
std::string proxyParamType(const TypeNode &Type) {
  if (Type.isPassive())
    return "const " + Type.RefClass + " *";
  return "const " + Type.cppType() + " &";
}

/// C++ type of a method parameter in the *skeleton* signature.
std::string skeletonParamType(const TypeNode &Type) {
  if (Type.isPassive())
    return Type.RefClass + " *";
  return Type.cppType() + " ";
}

/// Parameter list rendering.
std::string paramList(const MethodDecl &Method, bool Proxy) {
  std::string Out;
  for (size_t I = 0; I < Method.Params.size(); ++I) {
    if (I)
      Out += ", ";
    const ParamDecl &Param = Method.Params[I];
    Out += Proxy ? proxyParamType(Param.Type) : skeletonParamType(Param.Type);
    Out += Param.Name;
  }
  return Out;
}

/// Argument expressions for the proxy's encodeValues call: passive
/// parameters travel as encoded graphs.
std::string proxyArgExprs(const MethodDecl &Method) {
  std::string Out;
  for (size_t I = 0; I < Method.Params.size(); ++I) {
    if (I)
      Out += ", ";
    const ParamDecl &Param = Method.Params[I];
    if (Param.Type.isPassive())
      Out += "parcs::scoopp::encodePassiveGraph(" + Param.Name + ")";
    else
      Out += Param.Name;
  }
  return Out;
}


//===----------------------------------------------------------------------===//
// Passive classes
//===----------------------------------------------------------------------===//

void emitPassiveDecl(std::ostringstream &Os, const ModuleDecl &Module,
                     const ClassDecl &Class) {
  Os << "/// Passive class " << Class.Name << ": plain serialisable data; "
     << "copies move\n/// between parallel objects.\n";
  Os << "class " << Class.Name
     << " : public parcs::serial::SerializableObject {\n";
  Os << "public:\n";
  Os << "  static constexpr const char *TypeNameStr = \""
     << passiveTypeName(Module, Class.Name) << "\";\n\n";

  for (const FieldDecl &Field : Class.Fields) {
    Os << "  " << Field.Type.cppType();
    if (Field.Type.isPassive() && !Field.Type.IsArray)
      Os << Field.Name << " = nullptr;\n";
    else
      Os << " " << Field.Name << "{};\n";
  }

  Os << "\n  std::string_view typeName() const override {\n";
  Os << "    return TypeNameStr;\n  }\n";
  // Bodies are defined out of line, after every passive class, so that
  // mutually recursive links (A holds B*, B holds A*) compile.
  Os << "  void writeFields(parcs::serial::ObjectWriter &Writer) const "
        "override;\n";
  Os << "  bool readFields(parcs::serial::ObjectReader &Reader) "
        "override;\n";
  Os << "};\n\n";

  Os << "/// Registers " << Class.Name
     << " for graph decoding (call once per registry,\n"
     << "/// e.g. on parcs::serial::TypeRegistry::global()).\n";
  Os << "inline void register" << Class.Name
     << "Passive(parcs::serial::TypeRegistry &Registry) {\n";
  Os << "  Registry.registerType<" << Class.Name << ">();\n";
  Os << "}\n\n";
}

void emitPassiveBodies(std::ostringstream &Os, const ClassDecl &Class) {
  Os << "inline void " << Class.Name
     << "::writeFields(parcs::serial::ObjectWriter &Writer) const {\n";
  if (Class.Fields.empty())
    Os << "  (void)Writer;\n";
  for (const FieldDecl &Field : Class.Fields) {
    if (Field.Type.isPassive() && Field.Type.IsArray) {
      Os << "  Writer.write(static_cast<uint32_t>(" << Field.Name
         << ".size()));\n";
      Os << "  for (const auto *Elem_ : " << Field.Name << ")\n";
      Os << "    Writer.writeRef(Elem_);\n";
      continue;
    }
    if (Field.Type.isPassive()) {
      Os << "  Writer.writeRef(" << Field.Name << ");\n";
      continue;
    }
    Os << "  Writer.write(" << Field.Name << ");\n";
  }
  Os << "}\n\n";

  Os << "inline bool " << Class.Name
     << "::readFields(parcs::serial::ObjectReader &Reader) {\n";
  if (Class.Fields.empty())
    Os << "  (void)Reader;\n";
  for (const FieldDecl &Field : Class.Fields) {
    if (Field.Type.isPassive() && Field.Type.IsArray) {
      Os << "  {\n";
      Os << "    uint32_t Count_ = 0;\n";
      Os << "    if (!Reader.read(Count_))\n      return false;\n";
      Os << "    " << Field.Name << ".clear();\n";
      Os << "    for (uint32_t I_ = 0; I_ < Count_; ++I_) {\n";
      Os << "      " << Field.Type.RefClass << " *Elem_ = nullptr;\n";
      Os << "      if (!Reader.readRefAs(Elem_))\n        return "
            "false;\n";
      Os << "      " << Field.Name << ".push_back(Elem_);\n";
      Os << "    }\n  }\n";
      continue;
    }
    if (Field.Type.isPassive()) {
      Os << "  if (!Reader.readRefAs(" << Field.Name
         << "))\n    return false;\n";
      continue;
    }
    Os << "  if (!Reader.read(" << Field.Name
       << "))\n    return false;\n";
  }
  Os << "  return true;\n}\n\n";
}

//===----------------------------------------------------------------------===//
// Skeleton (IO side)
//===----------------------------------------------------------------------===//

void emitSkeleton(std::ostringstream &Os, const ClassDecl &Class) {
  std::string Skel = Class.Name + "Skeleton";
  bool AnyPassive = false;
  for (const MethodDecl &Method : Class.Methods)
    for (const ParamDecl &Param : Method.Params)
      AnyPassive |= Param.Type.isPassive();
  (void)AnyPassive;

  Os << "/// Abstract implementation-object (IO) base for parallel class\n";
  Os << "/// " << Class.Name << ".  Derive, implement the methods, and\n";
  Os << "/// register the subclass with register" << Class.Name
     << "Class().\n";
  Os << "class " << Skel << " : public parcs::remoting::CallHandler {\n";
  Os << "public:\n";
  Os << "  " << Skel << "(parcs::scoopp::ScooppRuntime &Runtime,\n";
  Os << "      parcs::vm::Node &Host)\n";
  Os << "      : Runtime(Runtime), Host(Host) {}\n\n";

  for (const MethodDecl &Method : Class.Methods) {
    Os << "  /// " << (Method.Kind == MethodKind::Async ? "Asynchronous"
                                                        : "Synchronous")
       << " method '" << Method.Name << "'.";
    bool HasPassive = false;
    for (const ParamDecl &Param : Method.Params)
      HasPassive |= Param.Type.isPassive();
    if (HasPassive)
      Os << "  Passive parameters are\n  /// decoded copies owned by the "
            "call (valid until the method returns).";
    Os << "\n";
    Os << "  virtual parcs::sim::Task<" << Method.ReturnType.cppType()
       << "> " << Method.Name << "(" << paramList(Method, /*Proxy=*/false)
       << ") = 0;\n";
  }

  Os << "\n  parcs::sim::Task<parcs::ErrorOr<parcs::remoting::Bytes>>\n";
  Os << "  handleCall(std::string_view Method,\n";
  Os << "             const parcs::remoting::Bytes &Args) override {\n";
  for (const MethodDecl &Method : Class.Methods) {
    Os << "    if (Method == \"" << Method.Name << "\") {\n";
    bool HasPassive = false;
    for (const ParamDecl &Param : Method.Params) {
      if (Param.Type.isPassive()) {
        HasPassive = true;
        Os << "      parcs::serial::Bytes " << Param.Name << "_graph{};\n";
      } else {
        Os << "      " << Param.Type.cppType() << " " << Param.Name
           << "{};\n";
      }
    }
    if (!Method.Params.empty()) {
      Os << "      if (!parcs::serial::decodeValues(Args";
      for (const ParamDecl &Param : Method.Params) {
        Os << ", " << Param.Name;
        if (Param.Type.isPassive())
          Os << "_graph";
      }
      Os << "))\n";
      Os << "        co_return parcs::Error(\n";
      Os << "            parcs::ErrorCode::MalformedMessage,\n";
      Os << "            \"arguments of " << Class.Name << "."
         << Method.Name << "\");\n";
    } else {
      Os << "      if (!Args.empty())\n";
      Os << "        co_return parcs::Error(\n";
      Os << "            parcs::ErrorCode::MalformedMessage,\n";
      Os << "            \"arguments of " << Class.Name << "."
         << Method.Name << "\");\n";
    }
    if (HasPassive) {
      Os << "      parcs::serial::ObjectPool Pool_;\n";
      for (const ParamDecl &Param : Method.Params) {
        if (!Param.Type.isPassive())
          continue;
        Os << "      " << Param.Type.RefClass << " *" << Param.Name
           << " = nullptr;\n";
        Os << "      {\n";
        Os << "        auto Decoded_ = parcs::scoopp::decodePassiveGraph("
           << Param.Name << "_graph, Pool_);\n";
        Os << "        if (!Decoded_)\n";
        Os << "          co_return Decoded_.error();\n";
        Os << "        if (*Decoded_) {\n";
        Os << "          " << Param.Name << " = parcs::serial::objectCast<"
           << Param.Type.RefClass << ">(*Decoded_);\n";
        Os << "          if (!" << Param.Name << ")\n";
        Os << "            co_return parcs::Error(\n";
        Os << "                parcs::ErrorCode::MalformedMessage,\n";
        Os << "                \"" << Param.Name << " is not a "
           << Param.Type.RefClass << "\");\n";
        Os << "        }\n";
        Os << "      }\n";
      }
    }
    Os << "      " << Method.ReturnType.cppType()
       << " Result_ = co_await " << Method.Name << "(";
    for (size_t I = 0; I < Method.Params.size(); ++I) {
      if (I)
        Os << ", ";
      const ParamDecl &Param = Method.Params[I];
      if (Param.Type.isPassive())
        Os << Param.Name;
      else
        Os << "std::move(" << Param.Name << ")";
    }
    Os << ");\n";
    Os << "      co_return parcs::serial::encodeValues(Result_);\n";
    Os << "    }\n";
  }
  Os << "    co_return parcs::Error(parcs::ErrorCode::UnknownMethod,\n";
  Os << "                           std::string(Method));\n";
  Os << "  }\n\n";
  Os << "protected:\n";
  Os << "  parcs::scoopp::ScooppRuntime &Runtime;\n";
  Os << "  parcs::vm::Node &Host;\n";
  Os << "};\n\n";
}

//===----------------------------------------------------------------------===//
// Proxy (PO side)
//===----------------------------------------------------------------------===//

void emitProxy(std::ostringstream &Os, const ClassDecl &Class) {
  std::string Proxy = Class.Name + "Proxy";
  Os << "/// Proxy object (PO) for parallel class " << Class.Name << ".\n";
  Os << "class " << Proxy << " : public parcs::scoopp::ProxyBase {\n";
  Os << "public:\n";
  Os << "  static constexpr const char *ClassName = \"" << Class.Name
     << "\";\n";
  Os << "  using ProxyBase::ProxyBase;\n\n";
  Os << "  /// Creates the implementation object per the OM's placement\n";
  Os << "  /// and grain decisions.\n";
  Os << "  parcs::sim::Task<parcs::Error> create() {\n";
  Os << "    return ProxyBase::create(ClassName);\n";
  Os << "  }\n";
  for (const MethodDecl &Method : Class.Methods) {
    Os << "\n";
    if (Method.Kind == MethodKind::Async) {
      Os << "  /// Asynchronous (aggregation-aware) invocation.\n";
      Os << "  parcs::sim::Task<void> " << Method.Name << "("
         << paramList(Method, /*Proxy=*/true) << ") {\n";
      Os << "    return invokeAsync(\"" << Method.Name
         << "\", parcs::serial::encodeValues(" << proxyArgExprs(Method)
         << "));\n";
      Os << "  }\n";
      continue;
    }
    Os << "  /// Synchronous invocation.\n";
    Os << "  parcs::sim::Task<parcs::ErrorOr<"
       << Method.ReturnType.cppType() << ">> " << Method.Name << "("
       << paramList(Method, /*Proxy=*/true) << ") {\n";
    Os << "    return invokeSyncTyped<" << Method.ReturnType.cppType()
       << ">(\"" << Method.Name << "\""
       << (Method.Params.empty() ? "" : ", ") << proxyArgExprs(Method)
       << ");\n";
    Os << "  }\n";
  }
  Os << "};\n\n";
}

void emitRegistration(std::ostringstream &Os, const ClassDecl &Class) {
  Os << "/// Registers " << Class.Name
     << " backed by \\p ImplT (a subclass of " << Class.Name
     << "Skeleton\n/// constructible from (ScooppRuntime&, vm::Node&)).\n";
  Os << "template <typename ImplT>\n";
  Os << "void register" << Class.Name
     << "Class(parcs::scoopp::ParallelClassRegistry &Registry) {\n";
  Os << "  static_assert(std::is_base_of_v<" << Class.Name
     << "Skeleton, ImplT>,\n";
  Os << "                \"implementation must derive from " << Class.Name
     << "Skeleton\");\n";
  Os << "  Registry.registerClass(\n";
  Os << "      {" << Class.Name << "Proxy::ClassName,\n";
  Os << "       [](parcs::scoopp::ScooppRuntime &Runtime,\n";
  Os << "          parcs::vm::Node &Host)\n";
  Os << "           -> std::shared_ptr<parcs::remoting::CallHandler> {\n";
  Os << "         return std::make_shared<ImplT>(Runtime, Host);\n";
  Os << "       }});\n";
  Os << "}\n\n";
}

} // namespace

std::string parcs::pcc::generateCpp(const ModuleDecl &Module) {
  std::ostringstream Os;
  std::string Guard = includeGuard(Module);
  Os << "// Generated by parcgen -- do not edit.\n";
  if (!Module.Name.empty())
    Os << "// Module: " << Module.Name << "\n";
  Os << "#ifndef " << Guard << "\n";
  Os << "#define " << Guard << "\n\n";
  Os << "#include \"core/Passive.h\"\n";
  Os << "#include \"core/Proxy.h\"\n";
  Os << "#include \"core/Scoopp.h\"\n";
  Os << "#include \"serial/ObjectGraph.h\"\n\n";
  Os << "#include <cstdint>\n";
  Os << "#include <memory>\n";
  Os << "#include <string>\n";
  Os << "#include <type_traits>\n";
  Os << "#include <vector>\n\n";

  std::vector<std::string> Parts = namespaceParts(Module);
  for (const std::string &Part : Parts)
    Os << "namespace " << Part << " {\n";
  Os << "\n";

  // Passive data classes come first: proxies and skeletons reference them
  // in method signatures.  Forward declarations allow mutually recursive
  // links.
  bool AnyPassive = false;
  for (const ClassDecl &Class : Module.Classes)
    if (Class.IsPassive) {
      Os << "class " << Class.Name << ";\n";
      AnyPassive = true;
    }
  if (AnyPassive)
    Os << "\n";
  for (const ClassDecl &Class : Module.Classes)
    if (Class.IsPassive)
      emitPassiveDecl(Os, Module, Class);
  for (const ClassDecl &Class : Module.Classes)
    if (Class.IsPassive)
      emitPassiveBodies(Os, Class);

  for (const ClassDecl &Class : Module.Classes) {
    if (Class.IsExtern || Class.IsPassive)
      continue;
    emitSkeleton(Os, Class);
    emitProxy(Os, Class);
    emitRegistration(Os, Class);
  }

  for (auto It = Parts.rbegin(); It != Parts.rend(); ++It)
    Os << "} // namespace " << *It << "\n";
  Os << "\n#endif // " << Guard << "\n";
  return Os.str();
}
