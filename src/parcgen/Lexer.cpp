//===- parcgen/Lexer.cpp --------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/Lexer.h"

#include "support/Compiler.h"

#include <cctype>
#include <map>

using namespace parcs;
using namespace parcs::pcc;

const char *parcs::pcc::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwModule:
    return "'module'";
  case TokenKind::KwParallel:
    return "'parallel'";
  case TokenKind::KwPassive:
    return "'passive'";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwAsync:
    return "'async'";
  case TokenKind::KwSync:
    return "'sync'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwString:
    return "'string'";
  case TokenKind::KwRef:
    return "'ref'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Invalid:
    return "invalid token";
  }
  PARCS_UNREACHABLE("unhandled TokenKind");
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Loc.Line;
    Loc.Column = 1;
  } else {
    ++Loc.Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peekAhead() == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peekAhead() == '*') {
      SourceLocation Start = Loc;
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peekAhead() == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::next() {
  skipTrivia();
  SourceLocation TokLoc = Loc;
  if (atEnd())
    return Token{TokenKind::EndOfFile, "", TokLoc};

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    size_t Begin = Pos;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      advance();
    std::string Text(Source.substr(Begin, Pos - Begin));
    static const std::map<std::string, TokenKind> Keywords = {
        {"module", TokenKind::KwModule},   {"parallel", TokenKind::KwParallel},
        {"passive", TokenKind::KwPassive},
        {"class", TokenKind::KwClass},     {"extern", TokenKind::KwExtern},
        {"async", TokenKind::KwAsync},     {"sync", TokenKind::KwSync},
        {"void", TokenKind::KwVoid},       {"bool", TokenKind::KwBool},
        {"int", TokenKind::KwInt},         {"long", TokenKind::KwLong},
        {"double", TokenKind::KwDouble},   {"string", TokenKind::KwString},
        {"ref", TokenKind::KwRef},
    };
    auto It = Keywords.find(Text);
    TokenKind Kind = It == Keywords.end() ? TokenKind::Identifier : It->second;
    return Token{Kind, std::move(Text), TokLoc};
  }

  advance();
  switch (C) {
  case '{':
    return Token{TokenKind::LBrace, "{", TokLoc};
  case '}':
    return Token{TokenKind::RBrace, "}", TokLoc};
  case '(':
    return Token{TokenKind::LParen, "(", TokLoc};
  case ')':
    return Token{TokenKind::RParen, ")", TokLoc};
  case '[':
    return Token{TokenKind::LBracket, "[", TokLoc};
  case ']':
    return Token{TokenKind::RBracket, "]", TokLoc};
  case '<':
    return Token{TokenKind::Less, "<", TokLoc};
  case '>':
    return Token{TokenKind::Greater, ">", TokLoc};
  case ':':
    return Token{TokenKind::Colon, ":", TokLoc};
  case ';':
    return Token{TokenKind::Semicolon, ";", TokLoc};
  case ',':
    return Token{TokenKind::Comma, ",", TokLoc};
  case '.':
    return Token{TokenKind::Dot, ".", TokLoc};
  default:
    Diags.error(TokLoc, std::string("stray character '") + C + "' in input");
    return Token{TokenKind::Invalid, std::string(1, C), TokLoc};
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
