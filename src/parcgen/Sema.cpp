//===- parcgen/Sema.cpp ---------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/Sema.h"

#include <set>

using namespace parcs;
using namespace parcs::pcc;

namespace {

/// Names visible so far: parallel, passive and extern classes.
struct Scope {
  std::set<std::string> Parallel;
  std::set<std::string> Extern;
  std::set<std::string> Passive;

  bool knows(const std::string &Name) const {
    return Parallel.count(Name) || Extern.count(Name) ||
           Passive.count(Name);
  }
};

void checkType(const TypeNode &Type, const Scope &Names, bool IsReturn,
               DiagnosticEngine &Diags) {
  if (Type.Kind == TypeKind::Void) {
    if (Type.IsArray)
      Diags.error(Type.Loc, "void cannot be an array element type");
    if (!IsReturn)
      Diags.error(Type.Loc, "parameters cannot have type void");
    return;
  }
  if (Type.Kind == TypeKind::Ref) {
    if (!Names.Parallel.count(Type.RefClass)) {
      if (Names.Extern.count(Type.RefClass) ||
          Names.Passive.count(Type.RefClass))
        Diags.error(Type.Loc, "ref<" + Type.RefClass +
                                  "> must target a parallel class");
      else
        Diags.error(Type.Loc, "ref<" + Type.RefClass +
                                  "> targets an undeclared class");
    }
  }
  if (Type.Kind == TypeKind::Passive) {
    if (!Names.Passive.count(Type.RefClass)) {
      if (Names.knows(Type.RefClass))
        Diags.error(Type.Loc, "'" + Type.RefClass +
                                  "' is not a passive class; only copies "
                                  "of passive objects move between "
                                  "parallel objects (use ref<> for "
                                  "parallel classes)");
      else
        Diags.error(Type.Loc,
                    "unknown type '" + Type.RefClass + "'");
    }
  }
}

void checkPassiveClass(const ClassDecl &Class, const Scope &Names,
                       DiagnosticEngine &Diags) {
  if (Class.Fields.empty())
    Diags.warning(Class.Loc,
                  "passive class '" + Class.Name + "' declares no fields");
  std::set<std::string> FieldNames;
  for (const FieldDecl &Field : Class.Fields) {
    if (!FieldNames.insert(Field.Name).second)
      Diags.error(Field.Loc, "duplicate field '" + Field.Name +
                                 "' in passive class '" + Class.Name + "'");
    if (Field.Type.isVoid()) {
      Diags.error(Field.Loc, "fields cannot have type void");
      continue;
    }
    checkType(Field.Type, Names, /*IsReturn=*/false, Diags);
  }
}

/// C#-style 'ref' parameters: ParC# marshals every argument by copy (the
/// paper's model moves data between parallel objects by value), so a by-ref
/// parameter can never behave like one.  On an asynchronous method the call
/// returns before the callee even runs -- the caller can never observe the
/// mutation, so it is an error.  On a synchronous method the caller at least
/// waits, so the intent is expressible another way (return the value) and we
/// only warn.
void checkByRefParam(const MethodDecl &Method, const ParamDecl &Param,
                     DiagnosticEngine &Diags) {
  if (!Param.ByRef)
    return;
  if (Method.Kind == MethodKind::Async)
    Diags.error(Param.Loc,
                "by-ref parameter '" + Param.Name +
                    "' on asynchronous method '" + Method.Name +
                    "': arguments are copied and the call returns "
                    "immediately, so the callee's mutations are lost; "
                    "pass by value, or make the method sync and return "
                    "the updated value");
  else
    Diags.warning(Param.Loc,
                  "by-ref parameter '" + Param.Name +
                      "' on synchronous method '" + Method.Name +
                      "' is marshalled by copy; the caller will not "
                      "observe mutations -- return the updated value "
                      "instead");
}

void checkMethod(const MethodDecl &Method, const Scope &Names,
                 DiagnosticEngine &Diags) {
  if (Method.ReturnType.isPassive())
    Diags.error(Method.Loc,
                "method '" + Method.Name +
                    "' cannot return a passive object (the callee owns "
                    "its copies; return scalar data instead)");
  for (const ParamDecl &Param : Method.Params)
    if (Param.Type.isPassive() && Param.Type.IsArray)
      Diags.error(Param.Loc,
                  "arrays of passive objects are not supported as "
                  "parameters; wrap the array in a passive class");
  if (Method.Kind == MethodKind::Async && !Method.ReturnType.isVoid())
    Diags.error(Method.Loc,
                "asynchronous method '" + Method.Name +
                    "' must return void (a value makes the call "
                    "synchronous)");
  if (Method.ExplicitKind && Method.Kind == MethodKind::Sync &&
      Method.ReturnType.isVoid())
    Diags.warning(Method.Loc, "synchronous void method '" + Method.Name +
                                  "' forces an empty round trip");
  checkType(Method.ReturnType, Names, /*IsReturn=*/true, Diags);
  std::set<std::string> ParamNames;
  for (const ParamDecl &Param : Method.Params) {
    checkType(Param.Type, Names, /*IsReturn=*/false, Diags);
    checkByRefParam(Method, Param, Diags);
    if (!ParamNames.insert(Param.Name).second)
      Diags.error(Param.Loc, "duplicate parameter name '" + Param.Name +
                                 "' in method '" + Method.Name + "'");
  }
}

/// Records every class name a type mentions, for the unused-passive check.
void noteTypeUse(const TypeNode &Type, std::set<std::string> &Used) {
  if (!Type.RefClass.empty())
    Used.insert(Type.RefClass);
}

} // namespace

bool parcs::pcc::analyzeModule(const ModuleDecl &Module,
                               DiagnosticEngine &Diags) {
  size_t ErrorsBefore = Diags.errorCount();

  // Pass 1: collect names so ref<> and bases can point at classes
  // declared anywhere in the module (two-pass name resolution).
  Scope Names;
  {
    std::set<std::string> Seen;
    for (const ClassDecl &Class : Module.Classes) {
      if (!Seen.insert(Class.Name).second) {
        Diags.error(Class.Loc,
                    "redefinition of class '" + Class.Name + "'");
        continue;
      }
      if (Class.IsExtern)
        Names.Extern.insert(Class.Name);
      else if (Class.IsPassive)
        Names.Passive.insert(Class.Name);
      else
        Names.Parallel.insert(Class.Name);
    }
  }

  // Pass 2: per-class checks.
  for (const ClassDecl &Class : Module.Classes) {
    if (Class.IsExtern)
      continue;
    if (Class.IsPassive) {
      checkPassiveClass(Class, Names, Diags);
      continue;
    }
    if (!Class.Base.empty() && Names.Passive.count(Class.Base))
      Diags.error(Class.Loc, "parallel class '" + Class.Name +
                                 "' cannot derive from passive class '" +
                                 Class.Base + "'");
    if (!Class.Base.empty() && !Names.knows(Class.Base))
      Diags.error(Class.Loc, "base class '" + Class.Base +
                                 "' of '" + Class.Name +
                                 "' is not declared (declare it as "
                                 "'extern class " +
                                 Class.Base + ";' if it is external)");
    if (Class.Base == Class.Name)
      Diags.error(Class.Loc,
                  "class '" + Class.Name + "' cannot be its own base");
    std::set<std::string> MethodNames;
    if (Class.Methods.empty())
      Diags.warning(Class.Loc, "parallel class '" + Class.Name +
                                   "' declares no methods");
    for (const MethodDecl &Method : Class.Methods) {
      if (!MethodNames.insert(Method.Name).second)
        Diags.error(Method.Loc, "duplicate method '" + Method.Name +
                                    "' in class '" + Class.Name +
                                    "' (overloading is not supported)");
      checkMethod(Method, Names, Diags);
    }
  }

  // Pass 3: a passive class nothing refers to is dead weight -- it cannot
  // participate in any call, so it is almost always a leftover or a typo in
  // the type that was meant to use it.
  std::set<std::string> Used;
  for (const ClassDecl &Class : Module.Classes) {
    if (!Class.Base.empty())
      Used.insert(Class.Base);
    for (const MethodDecl &Method : Class.Methods) {
      noteTypeUse(Method.ReturnType, Used);
      for (const ParamDecl &Param : Method.Params)
        noteTypeUse(Param.Type, Used);
    }
    for (const FieldDecl &Field : Class.Fields)
      noteTypeUse(Field.Type, Used);
  }
  for (const ClassDecl &Class : Module.Classes)
    if (Class.IsPassive && !Used.count(Class.Name))
      Diags.warning(Class.Loc,
                    "passive class '" + Class.Name +
                        "' is never used by any method, field or base in "
                        "this module");

  return Diags.errorCount() == ErrorsBefore;
}
