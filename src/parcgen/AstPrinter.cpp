//===- parcgen/AstPrinter.cpp ---------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/AstPrinter.h"

#include <sstream>

using namespace parcs;
using namespace parcs::pcc;

namespace {

std::string methodSignature(const MethodDecl &Method) {
  std::string Sig = Method.ReturnType.str() + " (";
  for (size_t I = 0; I < Method.Params.size(); ++I) {
    if (I)
      Sig += ", ";
    if (Method.Params[I].ByRef)
      Sig += "ref ";
    Sig += Method.Params[I].Type.str();
  }
  Sig += ")";
  return Sig;
}

} // namespace

std::string parcs::pcc::dumpAst(const ModuleDecl &Module) {
  std::ostringstream Os;
  Os << "ModuleDecl '" << (Module.Name.empty() ? "<default>" : Module.Name)
     << "'\n";
  for (const ClassDecl &Class : Module.Classes) {
    if (Class.IsExtern) {
      Os << "  ExternClassDecl '" << Class.Name << "' <" << Class.Loc.str()
         << ">\n";
      continue;
    }
    if (Class.IsPassive) {
      Os << "  PassiveClassDecl '" << Class.Name << "' <" << Class.Loc.str()
         << ">\n";
      for (const FieldDecl &Field : Class.Fields)
        Os << "    FieldDecl '" << Field.Name << "' '" << Field.Type.str()
           << "' <" << Field.Loc.str() << ">\n";
      continue;
    }
    Os << "  ClassDecl '" << Class.Name << "'";
    if (!Class.Base.empty())
      Os << " : '" << Class.Base << "'";
    Os << " <" << Class.Loc.str() << ">\n";
    for (const MethodDecl &Method : Class.Methods) {
      Os << "    MethodDecl "
         << (Method.Kind == MethodKind::Async ? "async" : "sync")
         << (Method.ExplicitKind ? "" : " (implicit)") << " '" << Method.Name
         << "' '" << methodSignature(Method) << "' <" << Method.Loc.str()
         << ">\n";
      for (const ParamDecl &Param : Method.Params)
        Os << "      ParamDecl '" << Param.Name << "' '"
           << (Param.ByRef ? "ref " : "") << Param.Type.str() << "'\n";
    }
  }
  return Os.str();
}
