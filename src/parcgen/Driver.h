//===- parcgen/Driver.h - parcgen pipeline driver ---------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_DRIVER_H
#define PARCS_PARCGEN_DRIVER_H

#include "parcgen/Ast.h"
#include "parcgen/Diagnostics.h"

#include <string>
#include <string_view>

namespace parcs::pcc {

/// Result of one compilation: generated code (empty on failure) plus the
/// full diagnostic list.
struct CompileResult {
  bool Success = false;
  std::string Code;
  ModuleDecl Module;
  DiagnosticEngine Diags;
};

/// Runs lex -> parse -> sema -> codegen over \p Source.
CompileResult compilePci(std::string_view Source);

/// Tool operating modes.
enum class ToolMode {
  Generate, ///< Compile and write the generated header (default).
  Check,    ///< Parse + sema only; no output file.
  DumpAst,  ///< Parse and print the AST to stdout.
  Facts,    ///< Compile and write the module facts JSON (--facts-out).
};

/// Renders the module's interface facts as deterministic JSON for
/// downstream tools (parcs-lint joins these with the C++ call graph for
/// its sync-call-deadlock rule).  Shape:
///   {"module": "<name>",
///    "classes": [{"name", "extern", "passive",
///                 "methods": [{"name", "kind": "sync"|"async",
///                              "returns"}]}]}
/// Classes and methods appear in declaration order; output is
/// byte-identical across runs for identical input.
std::string renderFactsJson(const ModuleDecl &Module);

/// Command-line entry used by the `parcgen` tool: reads \p InputPath and,
/// in Generate mode, writes the generated header to \p OutputPath.
/// Returns a process exit code and prints diagnostics to stderr.
int runParcgenTool(const std::string &InputPath, const std::string &OutputPath,
                   ToolMode Mode = ToolMode::Generate);

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_DRIVER_H
