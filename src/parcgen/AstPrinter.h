//===- parcgen/AstPrinter.h - AST dumping -----------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable AST dump for parcgen (-dump-ast), in the indented
/// node-per-line style of clang -ast-dump.  Used for compiler debugging
/// and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_ASTPRINTER_H
#define PARCS_PARCGEN_ASTPRINTER_H

#include "parcgen/Ast.h"

#include <string>

namespace parcs::pcc {

/// Renders the module as an indented tree, e.g.:
/// \code
/// ModuleDecl 'examples.prime'
///   ExternClassDecl 'PrimeFilter' <2:1>
///   ClassDecl 'PrimeServer' : 'PrimeFilter' <3:1>
///     MethodDecl async 'process' 'void (int[])' <4:3>
///       ParamDecl 'num' 'int[]'
/// \endcode
std::string dumpAst(const ModuleDecl &Module);

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_ASTPRINTER_H
