//===- parcgen/Ast.h - .pci abstract syntax ---------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST of the .pci language.  The surface grammar:
///
/// \code
///   module      ::= ('module' qualified-name ';')? decl*
///   decl        ::= extern-decl | class-decl
///   extern-decl ::= 'extern' 'class' IDENT ';'
///   class-decl  ::= 'parallel' 'class' IDENT (':' IDENT)?
///                   '{' method* '}' ';'?
///   method      ::= ('async' | 'sync')? type IDENT '(' params? ')' ';'
///   params      ::= param (',' param)*
///   param       ::= 'ref'? type IDENT
///   type        ::= base-type ('[' ']')?
///   base-type   ::= 'void' | 'bool' | 'int' | 'long' | 'double'
///                 | 'string' | 'ref' '<' IDENT '>'
/// \endcode
///
/// Method kind defaults follow the SCOOPP rule: methods returning void
/// are asynchronous, methods returning a value are synchronous.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_AST_H
#define PARCS_PARCGEN_AST_H

#include "parcgen/Token.h"

#include <string>
#include <vector>

namespace parcs::pcc {

/// Scalar kinds of the type system.
enum class TypeKind {
  Void,
  Bool,
  Int,    ///< 32-bit.
  Long,   ///< 64-bit.
  Double,
  String,
  Ref,     ///< ref<ParallelClass>: a parallel-object reference.
  Passive, ///< A passive class named directly: a graph link (pointer).
};

/// A (possibly array) type.
struct TypeNode {
  TypeKind Kind = TypeKind::Void;
  bool IsArray = false;
  /// Target class for TypeKind::Ref / TypeKind::Passive.
  std::string RefClass;
  SourceLocation Loc;

  bool isVoid() const { return Kind == TypeKind::Void && !IsArray; }
  bool isPassive() const { return Kind == TypeKind::Passive; }
  /// Source rendering, e.g. "int[]" or "ref<PrimeServer>".
  std::string str() const;
  /// Generated C++ *value* type, e.g. "std::vector<int32_t>".  Passive
  /// links render as "<Class> *" (or a vector of pointers).
  std::string cppType() const;
};

enum class MethodKind { Async, Sync };

struct ParamDecl {
  TypeNode Type;
  std::string Name;
  /// True for 'ref type name': C#-style by-ref intent.  ParC# marshals
  /// every argument by copy, so sema flags the modifier (error on async
  /// methods, warning on sync ones); codegen ignores it.
  bool ByRef = false;
  SourceLocation Loc;
};

struct MethodDecl {
  MethodKind Kind = MethodKind::Sync;
  /// True when the source spelled the kind explicitly.
  bool ExplicitKind = false;
  TypeNode ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  SourceLocation Loc;
};

/// A data member of a passive class.
struct FieldDecl {
  TypeNode Type;
  std::string Name;
  SourceLocation Loc;
};

struct ClassDecl {
  std::string Name;
  /// Optional base class name (empty = none).
  std::string Base;
  /// True for 'extern class' declarations (no methods, no codegen).
  bool IsExtern = false;
  /// True for 'passive class' declarations (fields, no methods): plain
  /// serialisable data whose *copies* move between parallel objects.
  bool IsPassive = false;
  std::vector<MethodDecl> Methods;
  std::vector<FieldDecl> Fields;
  SourceLocation Loc;
};

struct ModuleDecl {
  /// Dotted module name ("examples.prime"); empty = default.
  std::string Name;
  std::vector<ClassDecl> Classes;
};

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_AST_H
