//===- parcgen/Token.h - Token definitions ----------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the .pci (parallel class interface) language consumed by
/// parcgen, the reproduction of the paper's preprocessor: "It includes a
/// pre-processor ... [that] analyses the application - retrieving
/// information about the declared parallel objects - and generates code
/// for remote object creation and remote method invocation."
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_TOKEN_H
#define PARCS_PARCGEN_TOKEN_H

#include <string>

namespace parcs::pcc {

/// A position in the source buffer (1-based).
struct SourceLocation {
  int Line = 1;
  int Column = 1;

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

enum class TokenKind {
  // Literals / identifiers.
  Identifier,
  // Keywords.
  KwModule,
  KwParallel,
  KwPassive,
  KwClass,
  KwExtern,
  KwAsync,
  KwSync,
  KwVoid,
  KwBool,
  KwInt,
  KwLong,
  KwDouble,
  KwString,
  KwRef,
  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Less,
  Greater,
  Colon,
  Semicolon,
  Comma,
  Dot,
  // Sentinels.
  EndOfFile,
  Invalid,
};

/// Stable display name for diagnostics ("'{'", "identifier", ...).
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Invalid;
  std::string Text;
  SourceLocation Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_TOKEN_H
