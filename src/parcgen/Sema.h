//===- parcgen/Sema.h - .pci semantic checks --------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis of a parsed .pci module.  Enforces the SCOOPP model
/// rules the paper states:
///
///  - asynchronous methods return no value ("asynchronous (when no value
///    is returned) or synchronous method calls (when a value is
///    returned)"), so `async` with a non-void return is an error and
///    `sync void` is allowed but flagged with a warning (it forces a
///    round trip with no payload);
///  - parameter and return types must be copyable passive data or
///    parallel-object references (ref<T> of a *declared* parallel class);
///  - class names are unique; base classes must be declared (parallel or
///    extern) before use; methods are unique per class;
///  - C#-style 'ref' parameters cannot work in a copy-marshalling model:
///    on an async method the mutation is unobservable (error), on a sync
///    method the value should be returned instead (warning);
///  - a passive class no method, field or base ever mentions is dead and
///    flagged with a warning.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_SEMA_H
#define PARCS_PARCGEN_SEMA_H

#include "parcgen/Ast.h"
#include "parcgen/Diagnostics.h"

namespace parcs::pcc {

/// Runs all semantic checks; diagnostics go to \p Diags.  Returns true
/// when the module is clean enough for code generation.
bool analyzeModule(const ModuleDecl &Module, DiagnosticEngine &Diags);

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_SEMA_H
