//===- parcgen/Ast.cpp ----------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/Ast.h"

#include "support/Compiler.h"

using namespace parcs;
using namespace parcs::pcc;

static const char *baseName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Int:
    return "int";
  case TypeKind::Long:
    return "long";
  case TypeKind::Double:
    return "double";
  case TypeKind::String:
    return "string";
  case TypeKind::Ref:
    return "ref";
  case TypeKind::Passive:
    return "passive";
  }
  PARCS_UNREACHABLE("unhandled TypeKind");
}

std::string TypeNode::str() const {
  std::string Text;
  if (Kind == TypeKind::Passive)
    Text = RefClass;
  else
    Text = baseName(Kind);
  if (Kind == TypeKind::Ref)
    Text += "<" + RefClass + ">";
  if (IsArray)
    Text += "[]";
  return Text;
}

std::string TypeNode::cppType() const {
  std::string Base;
  switch (Kind) {
  case TypeKind::Void:
    Base = "parcs::Unit";
    break;
  case TypeKind::Bool:
    Base = "bool";
    break;
  case TypeKind::Int:
    Base = "int32_t";
    break;
  case TypeKind::Long:
    Base = "int64_t";
    break;
  case TypeKind::Double:
    Base = "double";
    break;
  case TypeKind::String:
    Base = "std::string";
    break;
  case TypeKind::Ref:
    Base = "parcs::scoopp::ParallelRef";
    break;
  case TypeKind::Passive:
    Base = RefClass + " *";
    break;
  }
  if (IsArray)
    return "std::vector<" + Base + ">";
  return Base;
}
