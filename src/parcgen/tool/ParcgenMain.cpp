//===- parcgen/tool/ParcgenMain.cpp - parcgen CLI -------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `parcgen` command-line tool: the paper's preprocessor as a build
/// step.
/// Usage: parcgen <input.pci> -o <output.h>
///        parcgen --check <input.pci>
///        parcgen --dump-ast <input.pci>
///        parcgen --facts-out <facts.json> <input.pci>
///
//===----------------------------------------------------------------------===//

#include "parcgen/Driver.h"

#include <cstdio>
#include <cstring>

int main(int Argc, char **Argv) {
  const char *Input = nullptr;
  const char *Output = nullptr;
  parcs::pcc::ToolMode Mode = parcs::pcc::ToolMode::Generate;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 < Argc) {
      Output = Argv[++I];
      continue;
    }
    if (std::strcmp(Argv[I], "--check") == 0) {
      Mode = parcs::pcc::ToolMode::Check;
      continue;
    }
    if (std::strcmp(Argv[I], "--dump-ast") == 0) {
      Mode = parcs::pcc::ToolMode::DumpAst;
      continue;
    }
    if (std::strcmp(Argv[I], "--facts-out") == 0 && I + 1 < Argc) {
      Mode = parcs::pcc::ToolMode::Facts;
      Output = Argv[++I];
      continue;
    }
    if (std::strcmp(Argv[I], "--help") == 0 || std::strcmp(Argv[I], "-h") == 0) {
      std::printf("usage: parcgen <input.pci> -o <output.h>\n"
                  "       parcgen --check <input.pci>\n"
                  "       parcgen --dump-ast <input.pci>\n"
                  "       parcgen --facts-out <facts.json> <input.pci>\n");
      return 0;
    }
    if (!Input) {
      Input = Argv[I];
      continue;
    }
    std::fprintf(stderr, "parcgen: unexpected argument '%s'\n", Argv[I]);
    return 1;
  }
  bool NeedsOutput = Mode == parcs::pcc::ToolMode::Generate ||
                     Mode == parcs::pcc::ToolMode::Facts;
  if (!Input || (NeedsOutput && !Output)) {
    std::fprintf(stderr, "usage: parcgen <input.pci> -o <output.h>\n");
    return 1;
  }
  return parcs::pcc::runParcgenTool(Input, Output ? Output : "", Mode);
}
