//===- parcgen/Parser.h - .pci recursive-descent parser ---------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_PARSER_H
#define PARCS_PARCGEN_PARSER_H

#include "parcgen/Ast.h"
#include "parcgen/Lexer.h"

#include <optional>

namespace parcs::pcc {

/// Recursive-descent parser for the grammar in Ast.h.  On syntax errors
/// it reports a diagnostic and recovers at the next ';' or '}' so that
/// several errors can be reported per run.
class Parser {
public:
  Parser(std::string_view Source, DiagnosticEngine &Diags)
      : Lex(Source, Diags), Diags(Diags) {
    Current = Lex.next();
  }

  /// Parses a whole module; partial results are returned even when
  /// diagnostics were emitted (check Diags.hasErrors()).
  ModuleDecl parseModule();

private:
  const Token &peek() const { return Current; }
  Token consume();
  bool check(TokenKind Kind) const { return Current.is(Kind); }
  bool accept(TokenKind Kind);
  /// Consumes a token of \p Kind or reports "expected X, found Y".
  std::optional<Token> expect(TokenKind Kind, const char *Context);
  /// Skips to the next ';' (consumed) or '}' / EOF (not consumed).
  void recover();

  std::optional<std::string> parseQualifiedName();
  std::optional<ClassDecl> parseExternClass();
  std::optional<ClassDecl> parsePassiveClass();
  std::optional<FieldDecl> parseField();
  std::optional<ClassDecl> parseParallelClass();
  std::optional<MethodDecl> parseMethod();
  /// \p AfterRef: the caller already consumed a 'ref' token that turned out
  /// to start a ref<...> type (one-token lookahead cannot distinguish the
  /// by-ref parameter modifier from the type until it sees '<').
  std::optional<TypeNode> parseType(bool AfterRef = false);

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Current;
};

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_PARSER_H
