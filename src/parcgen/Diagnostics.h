//===- parcgen/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics collected across the parcgen pipeline.  Messages follow the
/// LLVM style: lower-case first word, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_DIAGNOSTICS_H
#define PARCS_PARCGEN_DIAGNOSTICS_H

#include "parcgen/Token.h"

#include <string>
#include <vector>

namespace parcs::pcc {

enum class DiagSeverity { Error, Warning };

struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// "file.pci:3:7: error: ..." rendering (file name supplied by caller).
  std::string str(const std::string &FileName) const;
};

/// Accumulates diagnostics for one compilation.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  }
  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }

  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Severity == DiagSeverity::Error)
        return true;
    return false;
  }
  size_t errorCount() const {
    size_t N = 0;
    for (const Diagnostic &D : Diags)
      N += D.Severity == DiagSeverity::Error;
    return N;
  }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string render(const std::string &FileName) const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_DIAGNOSTICS_H
