//===- parcgen/CodeGen.h - C++ proxy/skeleton emission ----------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C++ code generation from a checked .pci module: exactly what the
/// paper's preprocessor produces, in this library's shapes --
///
///  - a *skeleton* per parallel class (the IO side): an abstract
///    CallHandler with one pure-virtual typed method per declared method
///    and a generated handleCall dispatcher that unmarshals arguments and
///    marshals results (Fig. 6's generated IO code);
///  - a *proxy* per parallel class (the PO side, Fig. 4/5): a ProxyBase
///    subclass with one typed wrapper per method -- asynchronous methods
///    forward through invokeAsync (delegate-style, aggregation-aware),
///    synchronous ones through invokeSyncTyped;
///  - a registration template binding the user's implementation subclass
///    into a ParallelClassRegistry (Fig. 6's factory registration).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_CODEGEN_H
#define PARCS_PARCGEN_CODEGEN_H

#include "parcgen/Ast.h"

#include <string>

namespace parcs::pcc {

/// Emits the generated header for \p Module.  The module must have passed
/// analyzeModule.
std::string generateCpp(const ModuleDecl &Module);

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_CODEGEN_H
