//===- parcgen/Driver.cpp -------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parcgen/Driver.h"

#include "parcgen/AstPrinter.h"
#include "parcgen/CodeGen.h"
#include "parcgen/Parser.h"
#include "parcgen/Sema.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace parcs;
using namespace parcs::pcc;

std::string Diagnostic::str(const std::string &FileName) const {
  std::string Out = FileName + ":" + Loc.str() + ": ";
  Out += Severity == DiagSeverity::Error ? "error: " : "warning: ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::render(const std::string &FileName) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str(FileName);
    Out += '\n';
  }
  return Out;
}

namespace {

/// Minimal JSON string escaping (facts values are identifiers and type
/// renderings, but stay safe on arbitrary input).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

} // namespace

std::string parcs::pcc::renderFactsJson(const ModuleDecl &Module) {
  std::string Out;
  Out += "{\n";
  Out += "  \"module\": \"" + jsonEscape(Module.Name) + "\",\n";
  Out += "  \"classes\": [";
  for (size_t CI = 0; CI < Module.Classes.size(); ++CI) {
    const ClassDecl &C = Module.Classes[CI];
    Out += CI == 0 ? "\n" : ",\n";
    Out += "    {\n";
    Out += "      \"name\": \"" + jsonEscape(C.Name) + "\",\n";
    Out += std::string("      \"extern\": ") + (C.IsExtern ? "true" : "false") +
           ",\n";
    Out += std::string("      \"passive\": ") +
           (C.IsPassive ? "true" : "false") + ",\n";
    Out += "      \"methods\": [";
    for (size_t MI = 0; MI < C.Methods.size(); ++MI) {
      const MethodDecl &M = C.Methods[MI];
      Out += MI == 0 ? "\n" : ",\n";
      Out += "        {\"name\": \"" + jsonEscape(M.Name) + "\", \"kind\": \"";
      Out += M.Kind == MethodKind::Sync ? "sync" : "async";
      Out += "\", \"returns\": \"" + jsonEscape(M.ReturnType.str()) + "\"}";
    }
    Out += C.Methods.empty() ? "]\n" : "\n      ]\n";
    Out += "    }";
  }
  Out += Module.Classes.empty() ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

CompileResult parcs::pcc::compilePci(std::string_view Source) {
  CompileResult Result;
  Parser TheParser(Source, Result.Diags);
  Result.Module = TheParser.parseModule();
  if (Result.Diags.hasErrors())
    return Result;
  if (!analyzeModule(Result.Module, Result.Diags))
    return Result;
  Result.Code = generateCpp(Result.Module);
  Result.Success = true;
  return Result;
}

int parcs::pcc::runParcgenTool(const std::string &InputPath,
                               const std::string &OutputPath,
                               ToolMode Mode) {
  std::ifstream In(InputPath);
  if (!In) {
    std::fprintf(stderr, "parcgen: cannot open input '%s'\n",
                 InputPath.c_str());
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  CompileResult Result = compilePci(Source);
  std::string Rendered = Result.Diags.render(InputPath);
  if (!Rendered.empty())
    std::fputs(Rendered.c_str(), stderr);
  if (Mode == ToolMode::DumpAst) {
    // The AST is printable even when sema failed, as long as parsing
    // produced something.
    std::fputs(dumpAst(Result.Module).c_str(), stdout);
    return Result.Diags.hasErrors() ? 1 : 0;
  }
  if (!Result.Success)
    return 1;
  if (Mode == ToolMode::Check)
    return 0;

  std::ofstream Out(OutputPath);
  if (!Out) {
    std::fprintf(stderr, "parcgen: cannot open output '%s'\n",
                 OutputPath.c_str());
    return 1;
  }
  Out << (Mode == ToolMode::Facts ? renderFactsJson(Result.Module)
                                  : Result.Code);
  return Out ? 0 : 1;
}
