//===- parcgen/Lexer.h - .pci lexer -----------------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#ifndef PARCS_PARCGEN_LEXER_H
#define PARCS_PARCGEN_LEXER_H

#include "parcgen/Diagnostics.h"
#include "parcgen/Token.h"

#include <string_view>
#include <vector>

namespace parcs::pcc {

/// Tokenises .pci source.  Supports // and /* */ comments; unterminated
/// block comments and stray characters produce diagnostics and an
/// Invalid token.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the next token (EndOfFile at the end, repeatedly).
  Token next();

  /// Convenience: lex everything (ending with EndOfFile).
  std::vector<Token> lexAll();

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return atEnd() ? '\0' : Source[Pos]; }
  char peekAhead() const {
    return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
  }
  char advance();
  void skipTrivia();
  Token makeToken(TokenKind Kind, SourceLocation Loc, size_t Begin) const;

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  SourceLocation Loc;
};

} // namespace parcs::pcc

#endif // PARCS_PARCGEN_LEXER_H
