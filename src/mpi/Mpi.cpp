//===- mpi/Mpi.cpp --------------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "mpi/Mpi.h"

#include "serial/Envelope.h"
#include "vm/Calibration.h"

using namespace parcs;
using namespace parcs::mpi;

namespace {

sim::SimTime mpiSideCost(size_t WireBytes) {
  return calib::MpiFixedPerSide +
         sim::SimTime::fromSecondsF(calib::MpiPerByteNs * 1e-9 *
                                    static_cast<double>(WireBytes));
}

} // namespace

//===----------------------------------------------------------------------===//
// MpiWorld
//===----------------------------------------------------------------------===//

MpiWorld::MpiWorld(vm::Cluster &Cluster, net::Network &Net, int TotalRanks,
                   int RanksPerNode, int BasePort)
    : Cluster(Cluster), Net(Net) {
  assert(TotalRanks > 0 && "world needs at least one rank");
  assert(RanksPerNode > 0 && "need at least one slot per node");
  assert(TotalRanks <= Cluster.nodeCount() * RanksPerNode &&
         "not enough slots for the requested ranks");
  Ranks.resize(static_cast<size_t>(TotalRanks));
  for (int R = 0; R < TotalRanks; ++R) {
    RankState &State = Ranks[static_cast<size_t>(R)];
    State.NodeId = R / RanksPerNode;
    State.Port = BasePort + R % RanksPerNode;
    Net.bind(State.NodeId, State.Port);
    Cluster.sim().spawn(matchLoop(R));
  }
}

vm::Node &MpiWorld::nodeOf(int Rank) {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  return Cluster.node(Ranks[static_cast<size_t>(Rank)].NodeId);
}

void MpiWorld::launch(std::function<sim::Task<void>(MpiComm)> Main) {
  for (int R = 0; R < size(); ++R)
    Cluster.sim().spawn(rankMain(MpiComm(*this, R), Main));
}

sim::Task<void>
MpiWorld::rankMain(MpiComm Comm,
                   std::function<sim::Task<void>(MpiComm)> Main) {
  co_await Main(Comm);
  ++Finished;
}

sim::Task<void> MpiWorld::sendImpl(int SrcRank, int DstRank, int Tag,
                                   Bytes Data) {
  assert(DstRank >= 0 && DstRank < size() && "send to invalid rank");
  // Copy the routing scalars out of the rank table before suspending:
  // Ranks may reallocate while this coroutine is parked on the compute
  // queue, and a dangling RankState& would then route the datagram through
  // freed memory.
  int SrcNode = Ranks[static_cast<size_t>(SrcRank)].NodeId;
  int DstNode = Ranks[static_cast<size_t>(DstRank)].NodeId;
  int DstPort = Ranks[static_cast<size_t>(DstRank)].Port;
  serial::OutputArchive Packed;
  Packed.write(static_cast<int32_t>(SrcRank));
  Packed.write(static_cast<int32_t>(Tag));
  Packed.write(static_cast<uint32_t>(Data.size()));
  Packed.writeRaw(Data);
  Bytes Wire =
      serial::encodeEnvelope(serial::WireFormat::MpiPack, "", Packed.bytes());
  BytesSent += Data.size();
  co_await Cluster.node(SrcNode).compute(mpiSideCost(Wire.size()));
  Net.send(SrcNode, DstNode, DstPort, std::move(Wire));
}

void MpiWorld::postRecv(int Rank, int Src, int Tag,
                        sim::Promise<RecvResult> Result) {
  RankState &State = Ranks[static_cast<size_t>(Rank)];
  // Try the unexpected-message queue first, in arrival order.
  for (auto It = State.Unexpected.begin(); It != State.Unexpected.end();
       ++It) {
    if (!matches(*It, Src, Tag))
      continue;
    RecvResult Out;
    Out.Source = It->Src;
    Out.Tag = It->Tag;
    Out.Data = std::move(It->Data);
    State.Unexpected.erase(It);
    Result.set(std::move(Out));
    return;
  }
  State.Posted.push_back(PostedRecv{Src, Tag, std::move(Result)});
}

sim::Task<void> MpiWorld::matchLoop(int Rank) {
  RankState &State = Ranks[static_cast<size_t>(Rank)];
  sim::Channel<net::Message> &Inbox = Net.bind(State.NodeId, State.Port);
  vm::Node &Node = Cluster.node(State.NodeId);
  for (;;) {
    net::Message Msg = co_await Inbox.recv();
    // Receiver-side software cost (progress engine + copy out).
    co_await Node.compute(mpiSideCost(Msg.Payload.size()));
    ErrorOr<serial::Envelope> Env =
        serial::decodeEnvelope(serial::WireFormat::MpiPack, Msg.Payload);
    if (!Env)
      continue; // Malformed datagrams are dropped silently.
    serial::InputArchive In(Env->Payload);
    int32_t Src = 0, Tag = 0;
    uint32_t Size = 0;
    PendingMessage Pending;
    if (!In.read(Src) || !In.read(Tag) || !In.read(Size) ||
        !In.readRaw(Pending.Data, Size))
      continue;
    Pending.Src = Src;
    Pending.Tag = Tag;
    // Hand to the oldest matching posted receive, else queue.
    bool Delivered = false;
    for (auto It = State.Posted.begin(); It != State.Posted.end(); ++It) {
      if ((It->Src != AnySource && It->Src != Pending.Src) ||
          (It->Tag != AnyTag && It->Tag != Pending.Tag))
        continue;
      RecvResult Out;
      Out.Source = Pending.Src;
      Out.Tag = Pending.Tag;
      Out.Data = std::move(Pending.Data);
      It->Result.set(std::move(Out));
      State.Posted.erase(It);
      Delivered = true;
      break;
    }
    if (!Delivered)
      State.Unexpected.push_back(std::move(Pending));
  }
}

//===----------------------------------------------------------------------===//
// MpiComm
//===----------------------------------------------------------------------===//

int MpiComm::size() const { return World.size(); }

vm::Node &MpiComm::node() const { return World.nodeOf(MyRank); }

sim::Task<void> MpiComm::send(int Dst, int Tag, Bytes Data) {
  assert(Tag >= 0 && Tag < FirstInternalTag && "tag out of user range");
  return World.sendImpl(MyRank, Dst, Tag, std::move(Data));
}

sim::Task<RecvResult> MpiComm::recv(int Src, int Tag) {
  sim::Future<RecvResult> Result = irecv(Src, Tag);
  RecvResult Out = co_await Result;
  co_return Out;
}

sim::Future<Unit> MpiComm::isend(int Dst, int Tag, Bytes Data) {
  sim::Promise<Unit> Done(World.Cluster.sim());
  struct Sender {
    static sim::Task<void> run(MpiWorld &World, int Src, int Dst, int Tag,
                               Bytes Data, sim::Promise<Unit> Done) {
      co_await World.sendImpl(Src, Dst, Tag, std::move(Data));
      Done.set(Unit());
    }
  };
  World.Cluster.sim().spawn(
      Sender::run(World, MyRank, Dst, Tag, std::move(Data), Done));
  return Done.future();
}

sim::Future<RecvResult> MpiComm::irecv(int Src, int Tag) {
  sim::Promise<RecvResult> Result(World.Cluster.sim());
  World.postRecv(MyRank, Src, Tag, Result);
  return Result.future();
}

sim::Task<void> MpiComm::barrier() {
  // Linear fan-in to rank 0, then fan-out release: O(P) messages, exactly
  // deterministic.
  constexpr int TagEnter = MpiComm::FirstInternalTag + 1;
  constexpr int TagLeave = MpiComm::FirstInternalTag + 2;
  int P = size();
  if (P == 1)
    co_return;
  if (MyRank == 0) {
    for (int I = 1; I < P; ++I)
      (void)co_await recv(AnySource, TagEnter);
    for (int I = 1; I < P; ++I)
      co_await World.sendImpl(MyRank, I, TagLeave, Bytes{});
    co_return;
  }
  co_await World.sendImpl(MyRank, 0, TagEnter, Bytes{});
  (void)co_await recv(0, TagLeave);
}

sim::Task<Bytes> MpiComm::bcast(int Root, Bytes Data) {
  // Binomial tree over relative ranks.
  constexpr int TagBcast = MpiComm::FirstInternalTag + 3;
  int P = size();
  int Rel = (MyRank - Root + P) % P;
  // A non-root rank receives in the round given by its highest set bit,
  // then forwards in every later round; the root forwards from round 0.
  int FirstSendStep = 1;
  if (Rel != 0) {
    RecvResult In = co_await recv(AnySource, TagBcast);
    Data = std::move(In.Data);
    int HighBit = 1;
    while (HighBit * 2 <= Rel)
      HighBit <<= 1;
    FirstSendStep = HighBit << 1;
  }
  for (int Step = FirstSendStep; Step < P; Step <<= 1) {
    if (Rel + Step < P) {
      int Dst = (Rel + Step + Root) % P;
      co_await World.sendImpl(MyRank, Dst, TagBcast, Data);
    }
  }
  co_return Data;
}

sim::Task<std::vector<double>>
MpiComm::allreduceSum(std::vector<double> Values) {
  std::vector<double> Summed = co_await reduceSum(0, std::move(Values));
  serial::OutputArchive Packed;
  if (MyRank == 0)
    Packed.write(Summed);
  Bytes Wire = co_await bcast(0, Packed.take());
  serial::InputArchive In(Wire);
  std::vector<double> Result;
  if (!In.read(Result))
    Result.clear(); // Malformed internal traffic cannot happen in-sim.
  co_return Result;
}

sim::Task<std::vector<Bytes>> MpiComm::gather(int Root, Bytes Mine) {
  constexpr int TagGather = MpiComm::FirstInternalTag + 5;
  int P = size();
  if (MyRank != Root) {
    serial::OutputArchive Out;
    Out.write(static_cast<int32_t>(MyRank));
    Out.write(static_cast<uint32_t>(Mine.size()));
    Out.writeRaw(Mine);
    co_await World.sendImpl(MyRank, Root, TagGather, Out.take());
    co_return std::vector<Bytes>{};
  }
  std::vector<Bytes> All(static_cast<size_t>(P));
  All[static_cast<size_t>(Root)] = std::move(Mine);
  for (int I = 1; I < P; ++I) {
    RecvResult In = co_await recv(AnySource, TagGather);
    serial::InputArchive Ar(In.Data);
    int32_t Sender = 0;
    uint32_t Len = 0;
    Bytes Chunk;
    if (!Ar.read(Sender) || !Ar.read(Len) || !Ar.readRaw(Chunk, Len))
      continue;
    if (Sender >= 0 && Sender < P)
      All[static_cast<size_t>(Sender)] = std::move(Chunk);
  }
  co_return All;
}

sim::Task<Bytes> MpiComm::scatter(int Root, std::vector<Bytes> Chunks) {
  constexpr int TagScatter = MpiComm::FirstInternalTag + 6;
  int P = size();
  if (MyRank == Root) {
    assert(static_cast<int>(Chunks.size()) == P &&
           "scatter needs one chunk per rank");
    for (int Dst = 0; Dst < P; ++Dst) {
      if (Dst == Root)
        continue;
      co_await World.sendImpl(MyRank, Dst, TagScatter,
                              Chunks[static_cast<size_t>(Dst)]);
    }
    co_return Chunks[static_cast<size_t>(Root)];
  }
  RecvResult In = co_await recv(Root, TagScatter);
  co_return std::move(In.Data);
}

sim::Task<RecvResult> MpiComm::sendRecv(int Dst, int SendTag, Bytes Data,
                                        int Src, int RecvTag) {
  // Post the receive before sending so a symmetric pairwise exchange
  // cannot deadlock.
  sim::Future<RecvResult> Posted = irecv(Src, RecvTag);
  co_await send(Dst, SendTag, std::move(Data));
  RecvResult In = co_await Posted;
  co_return In;
}

sim::Task<std::vector<double>>
MpiComm::reduceSum(int Root, std::vector<double> Values) {
  // Binomial fan-in: children send partial sums to parents.
  constexpr int TagReduce = MpiComm::FirstInternalTag + 4;
  int P = size();
  int Rel = (MyRank - Root + P) % P;
  for (int Step = 1; Step < P; Step <<= 1) {
    if (Rel & Step) {
      // Send our partial sum to the parent and leave.
      int ParentRel = Rel & ~Step;
      int Parent = (ParentRel + Root) % P;
      serial::OutputArchive Out;
      Out.write(Values);
      co_await World.sendImpl(MyRank, Parent, TagReduce, Out.take());
      co_return std::vector<double>{};
    }
    if (Rel + Step < P) {
      RecvResult In = co_await recv(AnySource, TagReduce);
      serial::InputArchive Ar(In.Data);
      std::vector<double> Partial;
      if (Ar.read(Partial)) {
        if (Values.size() < Partial.size())
          Values.resize(Partial.size(), 0.0);
        for (size_t I = 0; I < Partial.size(); ++I)
          Values[I] += Partial[I];
      }
    }
  }
  co_return Values;
}
