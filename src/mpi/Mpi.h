//===- mpi/Mpi.h - Message-passing baseline ---------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MPI baseline of the paper's comparison (MPICH 1.2.6 class): ranks,
/// blocking and non-blocking point-to-point with (source, tag) matching
/// including wildcards, and the collectives the paper names (broadcast,
/// reduction, barrier).  Messages are flat packed buffers -- the paper's
/// Section 2 point that "MPI requires explicit packing and unpacking of
/// messages" is the serial::OutputArchive/InputArchive step the caller
/// performs, in contrast to the remoting stacks' automatic marshalling.
///
/// Costs: MpiFixedPerSide + MpiPerByteNs per wire byte on each side (the
/// lowest-overhead stack, per the paper's 100 us latency and near-wire
/// bandwidth).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_MPI_MPI_H
#define PARCS_MPI_MPI_H

#include "net/Network.h"
#include "serial/Archive.h"
#include "sim/Channel.h"
#include "sim/Sync.h"
#include "support/Error.h"
#include "vm/Cluster.h"

#include <deque>
#include <functional>
#include <memory>

namespace parcs::mpi {

using serial::Bytes;

/// Matches MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int AnySource = -1;
inline constexpr int AnyTag = -1;

/// A received message: payload plus its matched envelope.
struct RecvResult {
  int Source = -1;
  int Tag = -1;
  Bytes Data;
};

class MpiWorld;

/// One rank's view of the world (the MPI_COMM_WORLD handle each rank main
/// receives).
class MpiComm {
public:
  MpiComm(MpiWorld &World, int Rank) : World(World), MyRank(Rank) {}

  int rank() const { return MyRank; }
  int size() const;
  vm::Node &node() const;

  /// Blocking standard-mode send (eager: completes when the buffer has
  /// been handed to the network, after the local per-byte cost).
  sim::Task<void> send(int Dst, int Tag, Bytes Data);

  /// Blocking receive matching (\p Src, \p Tag), wildcards allowed.
  sim::Task<RecvResult> recv(int Src, int Tag);

  /// Non-blocking send; await the returned future to complete it
  /// (MPI_Isend + MPI_Wait).
  sim::Future<Unit> isend(int Dst, int Tag, Bytes Data);

  /// Non-blocking receive (MPI_Irecv + MPI_Wait).
  sim::Future<RecvResult> irecv(int Src, int Tag);

  /// Synchronises all ranks (MPI_Barrier); returns when every rank has
  /// entered.
  sim::Task<void> barrier();

  /// Broadcast from \p Root over a binomial tree; every rank returns the
  /// payload.
  sim::Task<Bytes> bcast(int Root, Bytes Data);

  /// Element-wise sum reduction of equal-length double vectors to \p Root
  /// (other ranks get an empty vector back).
  sim::Task<std::vector<double>> reduceSum(int Root,
                                           std::vector<double> Values);

  /// reduceSum to rank 0 followed by a broadcast: every rank gets the
  /// global sum (MPI_Allreduce).
  sim::Task<std::vector<double>> allreduceSum(std::vector<double> Values);

  /// Gathers every rank's buffer at \p Root (MPI_Gatherv flavour: buffers
  /// may differ in size).  Root receives size() buffers indexed by rank;
  /// other ranks get an empty vector.
  sim::Task<std::vector<Bytes>> gather(int Root, Bytes Mine);

  /// Scatters \p Chunks (root only; one per rank) and returns each rank's
  /// chunk (MPI_Scatterv flavour).
  sim::Task<Bytes> scatter(int Root, std::vector<Bytes> Chunks);

  /// Combined send+receive (MPI_Sendrecv): posts the receive first so the
  /// exchange cannot deadlock even pairwise.
  sim::Task<RecvResult> sendRecv(int Dst, int SendTag, Bytes Data, int Src,
                                 int RecvTag);

private:
  /// Tags above this bound are reserved for collectives.
  static constexpr int FirstInternalTag = 1 << 24;

  MpiWorld &World;
  int MyRank;
};

/// Owns the rank placement and matching machinery.
class MpiWorld {
public:
  /// Places \p TotalRanks ranks block-wise over the cluster's nodes
  /// (\p RanksPerNode slots per node, like an MPICH machinefile).
  MpiWorld(vm::Cluster &Cluster, net::Network &Net, int TotalRanks,
           int RanksPerNode = 2, int BasePort = 2100);
  MpiWorld(const MpiWorld &) = delete;
  MpiWorld &operator=(const MpiWorld &) = delete;

  int size() const { return static_cast<int>(Ranks.size()); }
  vm::Node &nodeOf(int Rank);

  /// Spawns \p Main once per rank (mpirun).  Drive the simulator to run
  /// the program; completion can be observed via finishedRanks().
  void launch(std::function<sim::Task<void>(MpiComm)> Main);

  /// Ranks whose main returned so far.
  int finishedRanks() const { return Finished; }

  /// Total payload bytes moved through send() so far (for benches).
  uint64_t bytesSent() const { return BytesSent; }

private:
  friend class MpiComm;

  struct PendingMessage {
    int Src;
    int Tag;
    Bytes Data;
  };
  struct PostedRecv {
    int Src;
    int Tag;
    sim::Promise<RecvResult> Result;
  };
  struct RankState {
    int NodeId = 0;
    int Port = 0;
    std::deque<PendingMessage> Unexpected;
    std::deque<PostedRecv> Posted;
  };

  sim::Task<void> sendImpl(int SrcRank, int DstRank, int Tag, Bytes Data);
  void postRecv(int Rank, int Src, int Tag, sim::Promise<RecvResult> Result);
  sim::Task<void> matchLoop(int Rank);
  sim::Task<void> rankMain(MpiComm Comm,
                           std::function<sim::Task<void>(MpiComm)> Main);

  static bool matches(const PendingMessage &Msg, int Src, int Tag) {
    return (Src == AnySource || Msg.Src == Src) &&
           (Tag == AnyTag || Msg.Tag == Tag);
  }

  vm::Cluster &Cluster;
  net::Network &Net;
  std::vector<RankState> Ranks;
  int Finished = 0;
  uint64_t BytesSent = 0;
};

} // namespace parcs::mpi

#endif // PARCS_MPI_MPI_H
