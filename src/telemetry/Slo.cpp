//===- telemetry/Slo.cpp - Declarative latency objectives -----------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Slo.h"

#include "support/EnvSpec.h"

namespace parcs::telemetry {

namespace {

std::string_view trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t'))
    S.remove_suffix(1);
  return S;
}

/// "p99" / "p99.9" -> 99.0 / 99.9.  Integer-and-tenths only, matching the
/// duration grammar's integer spirit (no locale-dependent strtod).
bool parsePercentile(std::string_view Text, double &Out) {
  if (Text.empty() || Text.front() != 'p')
    return false;
  Text.remove_prefix(1);
  std::string_view Whole = Text;
  std::string_view Frac;
  if (size_t Dot = Text.find('.'); Dot != std::string_view::npos) {
    Whole = Text.substr(0, Dot);
    Frac = Text.substr(Dot + 1);
    if (Frac.empty())
      return false;
  }
  uint64_t W = 0;
  if (!envspec::parseUint(Whole, W) || W > 100)
    return false;
  double Value = double(W);
  double Scale = 0.1;
  for (char C : Frac) {
    if (C < '0' || C > '9')
      return false;
    Value += double(C - '0') * Scale;
    Scale *= 0.1;
  }
  if (Value > 100.0)
    return false;
  Out = Value;
  return true;
}

} // namespace

bool parseSloSpec(std::string_view Text, SloSpec &Out) {
  std::string_view S = trim(Text);
  constexpr std::string_view Head = "slo(";
  if (S.substr(0, Head.size()) != Head || S.empty() || S.back() != ')')
    return false;
  std::string_view Body = S.substr(Head.size(), S.size() - Head.size() - 1);

  // Three comma-separated clauses: series, "pP < dur", "window=dur".
  std::string_view Parts[3];
  size_t Count = 0;
  while (Count < 3) {
    size_t Comma = Body.find(',');
    Parts[Count++] = trim(Body.substr(0, Comma));
    if (Comma == std::string_view::npos)
      break;
    Body.remove_prefix(Comma + 1);
  }
  if (Count != 3 || Body.find(',') != std::string_view::npos)
    return false;

  SloSpec Spec;
  Spec.Series = std::string(Parts[0]);
  if (Spec.Series.empty())
    return false;

  std::string_view Objective = Parts[1];
  size_t Lt = Objective.find('<');
  if (Lt == std::string_view::npos)
    return false;
  if (!parsePercentile(trim(Objective.substr(0, Lt)), Spec.Percentile))
    return false;
  if (!envspec::parseDurationNs(trim(Objective.substr(Lt + 1)),
                                Spec.ThresholdNs) ||
      Spec.ThresholdNs <= 0)
    return false;

  std::string_view Window = Parts[2];
  constexpr std::string_view Key = "window=";
  if (Window.substr(0, Key.size()) != Key)
    return false;
  if (!envspec::parseDurationNs(trim(Window.substr(Key.size())),
                                Spec.WindowNs) ||
      Spec.WindowNs <= 0)
    return false;

  Spec.Text = std::string(trim(Text));
  Out = std::move(Spec);
  return true;
}

bool parseSloSpecs(std::string_view Text, std::vector<SloSpec> &Out,
                   std::string *BadToken) {
  size_t Before = Out.size();
  while (true) {
    size_t Semi = Text.find(';');
    std::string_view One = Text.substr(0, Semi);
    SloSpec Spec;
    if (!parseSloSpec(One, Spec)) {
      if (BadToken)
        *BadToken = std::string(trim(One));
      Out.resize(Before);
      return false;
    }
    Out.push_back(std::move(Spec));
    if (Semi == std::string_view::npos)
      return true;
    Text.remove_prefix(Semi + 1);
  }
}

} // namespace parcs::telemetry
