//===- telemetry/Slo.h - Declarative latency objectives ---------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Service-level objectives over the telemetry plane's windowed series,
/// declared as spec strings of the shape
///
///   slo(<series>, p<P> < <duration>, window=<duration>)
///
/// e.g. slo(rpc.call.latency, p99 < 2ms, window=100ms).  The collector
/// evaluates each SLO at every window roll: the *fast* burn looks at the
/// single just-finalized window, the *slow* burn at the trailing
/// `window=` span (rounded up to whole plane windows).  The slow burn
/// drives an in-breach state machine that emits deterministic
/// `slo.breach` / `slo.recover` trace instants -- the signal ROADMAP
/// item 2's admission control will consume.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_TELEMETRY_SLO_H
#define PARCS_TELEMETRY_SLO_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parcs::telemetry {

/// One parsed objective.
struct SloSpec {
  std::string Series;      ///< Windowed series the percentile reads.
  double Percentile = 99;  ///< The "p99" in the spec.
  int64_t ThresholdNs = 0; ///< Breach when percentile exceeds this.
  int64_t WindowNs = 0;    ///< Trailing evaluation span (slow burn).
  std::string Text;        ///< Original spec, quoted in reports.
};

/// Parses one "slo(series, pP < dur, window=dur)" spec (surrounding
/// whitespace tolerated).  Returns false leaving \p Out untouched on any
/// malformation.
bool parseSloSpec(std::string_view Text, SloSpec &Out);

/// Parses a ';'-separated list of specs, appending to \p Out.  On failure
/// returns false and, when \p BadToken is non-null, stores the offending
/// spec text.
bool parseSloSpecs(std::string_view Text, std::vector<SloSpec> &Out,
                   std::string *BadToken = nullptr);

} // namespace parcs::telemetry

#endif // PARCS_TELEMETRY_SLO_H
