//===- telemetry/TopReport.cpp - parcs_top rendering ----------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TopReport.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace parcs::telemetry {

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reader -- just enough for the telemetry export format
// (objects, arrays, strings, numbers, bools, null; no \uXXXX escapes,
// which the export never emits).
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  // Vector-of-pairs keeps the export's (already deterministic) key order.
  std::vector<std::pair<std::string, JsonValue>> Obj;

  const JsonValue *field(std::string_view Name) const {
    for (const auto &[Key, Value] : Obj)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
  double num(std::string_view Name, double Default = 0) const {
    const JsonValue *V = field(Name);
    return V && V->K == Kind::Number ? V->Num : Default;
  }
  std::string_view str(std::string_view Name) const {
    const JsonValue *V = field(Name);
    return V && V->K == Kind::String ? std::string_view(V->Str)
                                     : std::string_view();
  }
};

class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  bool parse(JsonValue &Out) {
    if (!value(Out))
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return false;
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool string(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\') {
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos++];
        switch (E) {
        case '"': C = '"'; break;
        case '\\': C = '\\'; break;
        case '/': C = '/'; break;
        case 'n': C = '\n'; break;
        case 't': C = '\t'; break;
        case 'r': C = '\r'; break;
        default: return false;
        }
      }
      Out += C;
    }
    return consume('"');
  }

  bool value(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = JsonValue::Kind::Object;
      skipWs();
      if (consume('}'))
        return true;
      do {
        std::string Key;
        JsonValue Member;
        if (!string(Key) || !consume(':') || !value(Member))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(Member));
      } while (consume(','));
      return consume('}');
    }
    if (C == '[') {
      ++Pos;
      Out.K = JsonValue::Kind::Array;
      skipWs();
      if (consume(']'))
        return true;
      do {
        JsonValue Item;
        if (!value(Item))
          return false;
        Out.Arr.push_back(std::move(Item));
      } while (consume(','));
      return consume(']');
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    }
    if (C == 't') {
      Out.K = JsonValue::Kind::Bool;
      Out.B = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.K = JsonValue::Kind::Bool;
      return literal("false");
    }
    if (C == 'n')
      return literal("null");
    // Number.
    size_t Start = Pos;
    if (C == '-')
      ++Pos;
    while (Pos < Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                          nullptr);
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

void appendLine(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendLine(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
  Out += '\n';
}

/// Window start in a human unit: the window grid is ns, shown as ms with
/// microsecond precision (sim runs are ms-scale).
double toMs(double Ns) { return Ns / 1e6; }

} // namespace

bool renderTopReport(std::string_view ExportJson, std::string &Out) {
  Out.clear();
  JsonValue Root;
  if (!JsonParser(ExportJson).parse(Root) ||
      Root.K != JsonValue::Kind::Object || !Root.field("window_ns") ||
      !Root.field("series")) {
    Out = "parcs_top: input is not a telemetry export "
          "(expected the PARCS_TELEMETRY JSON format)\n";
    return false;
  }

  double WindowNs = Root.num("window_ns");
  appendLine(Out, "parcs_top -- cluster telemetry (window %.6g ms, %d nodes, "
                  "%d snapshots)",
             toMs(WindowNs), int(Root.num("nodes")),
             int(Root.num("snapshots")));
  if (Root.num("late_windows") > 0 || Root.num("corrupt_snapshots") > 0)
    appendLine(Out, "  dropped: %d late window contributions, %d corrupt "
                    "snapshots",
               int(Root.num("late_windows")),
               int(Root.num("corrupt_snapshots")));

  const JsonValue *Series = Root.field("series");
  for (const auto &[Name, S] : Series->Obj) {
    bool IsHist = S.str("kind") == "histogram";
    Out += '\n';
    appendLine(Out, "%s (%s)", Name.c_str(), IsHist ? "histogram" : "counter");
    if (IsHist)
      appendLine(Out, "  %10s %8s %10s %10s %10s %10s", "win(ms)", "n",
                 "p50(us)", "p99(us)", "p999(us)", "max(us)");
    else
      appendLine(Out, "  %10s %8s %12s", "win(ms)", "n", "rate(1/ms)");
    const JsonValue *Windows = S.field("windows");
    if (!Windows)
      continue;
    for (const JsonValue &W : Windows->Arr) {
      double StartMs = toMs(W.num("start_ns"));
      if (IsHist)
        appendLine(Out, "  %10.3f %8d %10.1f %10.1f %10.1f %10.1f", StartMs,
                   int(W.num("n")), W.num("p50") / 1e3, W.num("p99") / 1e3,
                   W.num("p999") / 1e3, W.num("max") / 1e3);
      else
        appendLine(Out, "  %10.3f %8d %12.3g", StartMs, int(W.num("n")),
                   WindowNs > 0 ? W.num("n") / toMs(WindowNs) : 0.0);
    }
  }

  const JsonValue *Slos = Root.field("slos");
  if (Slos && !Slos->Arr.empty()) {
    Out += '\n';
    appendLine(Out, "SLO timeline");
    for (const JsonValue &S : Slos->Arr) {
      appendLine(Out, "  %s  [fast-burn %d, slow-burn %d windows]",
                 std::string(S.str("spec")).c_str(),
                 int(S.num("fast_burn_windows")),
                 int(S.num("slow_burn_windows")));
      const JsonValue *Events = S.field("events");
      if (!Events || Events->Arr.empty()) {
        appendLine(Out, "    (no breaches)");
        continue;
      }
      for (const JsonValue &E : Events->Arr)
        appendLine(Out, "    %10.3f ms  %s", toMs(E.num("at_ns")),
                   E.str("kind") == "breach" ? "BREACH" : "recover");
    }
  }
  return true;
}

} // namespace parcs::telemetry
