//===- telemetry/TopReport.cpp - parcs_top rendering ----------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TopReport.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <cstdarg>
#include <cstdio>
#include <string>

namespace parcs::telemetry {

namespace {

using json::Value;

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

void appendLine(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendLine(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
  Out += '\n';
}

/// Window start in a human unit: the window grid is ns, shown as ms with
/// microsecond precision (sim runs are ms-scale).
double toMs(double Ns) { return Ns / 1e6; }

/// One percentile cell in microseconds.  An empty window reports the
/// Histogram::EmptyPercentile sentinel (-1, impossible for real samples);
/// render it as "-" rather than a negative latency.
std::string pctCell(double Ns) {
  if (Ns < 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Ns / 1e3);
  return Buf;
}

} // namespace

bool renderTopReport(std::string_view ExportJson, std::string &Out) {
  Out.clear();
  Value Root;
  if (!json::parse(ExportJson, Root) || !Root.isObject() ||
      !Root.field("window_ns") || !Root.field("series")) {
    Out = "parcs_top: input is not a telemetry export "
          "(expected the PARCS_TELEMETRY JSON format)\n";
    return false;
  }

  double WindowNs = Root.num("window_ns");
  appendLine(Out, "parcs_top -- cluster telemetry (window %.6g ms, %d nodes, "
                  "%d snapshots)",
             toMs(WindowNs), int(Root.num("nodes")),
             int(Root.num("snapshots")));
  if (Root.num("late_windows") > 0 || Root.num("corrupt_snapshots") > 0)
    appendLine(Out, "  dropped: %d late window contributions, %d corrupt "
                    "snapshots",
               int(Root.num("late_windows")),
               int(Root.num("corrupt_snapshots")));

  const Value *Series = Root.field("series");
  for (const auto &[Name, S] : Series->Obj) {
    bool IsHist = S.str("kind") == "histogram";
    Out += '\n';
    appendLine(Out, "%s (%s)", Name.c_str(), IsHist ? "histogram" : "counter");
    if (IsHist)
      appendLine(Out, "  %10s %8s %10s %10s %10s %10s", "win(ms)", "n",
                 "p50(us)", "p99(us)", "p999(us)", "max(us)");
    else
      appendLine(Out, "  %10s %8s %12s", "win(ms)", "n", "rate(1/ms)");
    const Value *Windows = S.field("windows");
    if (!Windows)
      continue;
    for (const Value &W : Windows->Arr) {
      double StartMs = toMs(W.num("start_ns"));
      if (IsHist)
        appendLine(Out, "  %10.3f %8d %10s %10s %10s %10s", StartMs,
                   int(W.num("n")),
                   pctCell(W.num("p50", metrics::Histogram::EmptyPercentile))
                       .c_str(),
                   pctCell(W.num("p99", metrics::Histogram::EmptyPercentile))
                       .c_str(),
                   pctCell(W.num("p999", metrics::Histogram::EmptyPercentile))
                       .c_str(),
                   pctCell(W.num("n") > 0 ? W.num("max")
                                          : metrics::Histogram::EmptyPercentile)
                       .c_str());
      else
        appendLine(Out, "  %10.3f %8d %12.3g", StartMs, int(W.num("n")),
                   WindowNs > 0 ? W.num("n") / toMs(WindowNs) : 0.0);
    }
  }

  const Value *Slos = Root.field("slos");
  if (Slos && !Slos->Arr.empty()) {
    Out += '\n';
    appendLine(Out, "SLO timeline");
    for (const Value &S : Slos->Arr) {
      appendLine(Out, "  %s  [fast-burn %d, slow-burn %d windows]",
                 std::string(S.str("spec")).c_str(),
                 int(S.num("fast_burn_windows")),
                 int(S.num("slow_burn_windows")));
      const Value *Events = S.field("events");
      if (!Events || Events->Arr.empty()) {
        appendLine(Out, "    (no breaches)");
        continue;
      }
      for (const Value &E : Events->Arr)
        appendLine(Out, "    %10.3f ms  %s", toMs(E.num("at_ns")),
                   E.str("kind") == "breach" ? "BREACH" : "recover");
    }
  }
  return true;
}

} // namespace parcs::telemetry
