//===- telemetry/TopReport.h - parcs_top rendering --------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a telemetry export (telemetry::Plane::exportJson) back into the
/// terminal view `tools/parcs_top` prints: one per-window p50/p99/p999
/// table per histogram series, rate tables for counter series, and the
/// SLO breach timeline.  Lives in the library (not the tool) so tests can
/// pin the rendering against a generated export.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_TELEMETRY_TOPREPORT_H
#define PARCS_TELEMETRY_TOPREPORT_H

#include <string>
#include <string_view>

namespace parcs::telemetry {

/// Renders \p ExportJson (the Plane's export format) as the parcs_top
/// text view.  Returns false -- leaving \p Out with a diagnostic -- when
/// the input is not a telemetry export.
bool renderTopReport(std::string_view ExportJson, std::string &Out);

} // namespace parcs::telemetry

#endif // PARCS_TELEMETRY_TOPREPORT_H
