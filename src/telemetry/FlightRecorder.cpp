//===- telemetry/FlightRecorder.cpp - Crash post-mortem dumps -------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include "support/Metrics.h"
#include "support/PostMortem.h"
#include "support/Trace.h"

#include <cstdio>

namespace parcs::telemetry {

FlightRecorder::FlightRecorder(std::string Path, size_t RingEvents)
    : Path(std::move(Path)) {
  trace::setFlightCapacity(RingEvents);
  trace::setFlightRecording(true);
  postmortem::setHandler(&FlightRecorder::onFatal, this);
}

FlightRecorder::~FlightRecorder() {
  postmortem::clearHandler(this);
  trace::setFlightRecording(false);
  metrics::Registry::global().counter("flight.dumps").add(Dumps);
}

void FlightRecorder::onFatal(void *Self, const char *Reason, int Node,
                             int64_t AtNs) {
  static_cast<FlightRecorder *>(Self)->writeDump(Reason, Node, AtNs);
}

std::string FlightRecorder::dumpJson(const char *Reason, int Node,
                                     int64_t AtNs) const {
  std::string Out = "{\n  \"reason\": \"";
  Out += Reason;
  Out += "\",\n  \"node\": ";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%d", Node);
  Out += Buf;
  Out += ",\n  \"at_ns\": ";
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(AtNs));
  Out += Buf;
  // Both sub-documents are complete JSON objects rendered by their own
  // deterministic exporters, embedded verbatim.
  Out += ",\n  \"trace\": ";
  Out += trace::exportFlightJson();
  Out += ",\n  \"metrics\": ";
  Out += metrics::Registry::global().jsonReport();
  Out += "\n}\n";
  return Out;
}

void FlightRecorder::writeDump(const char *Reason, int Node, int64_t AtNs) {
  ++Dumps;
  std::string Body = dumpJson(Reason, Node, AtNs);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "[parcs:flight] cannot write %s\n", Path.c_str());
    return;
  }
  size_t Written = std::fwrite(Body.data(), 1, Body.size(), F);
  if (std::fclose(F) != 0 || Written != Body.size())
    std::fprintf(stderr, "[parcs:flight] cannot write %s\n", Path.c_str());
}

} // namespace parcs::telemetry
