//===- telemetry/Telemetry.h - In-band cluster telemetry plane --*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live half of the observability subsystem: cluster-wide windowed
/// time-series built *in-band*, out of the object model itself.  Each vm
/// node runs a telemetry agent that accumulates per-window deltas for the
/// series the instrumented layers feed through telemetry::count/record
/// (support/TelemetrySink.h); a periodic heartbeat on the node's own
/// simulator closes fully-elapsed windows and ships them as ordinary
/// framed messages over the fabric -- paying real wire time, competing
/// with real traffic -- to a collector object on one node, which merges
/// them into cluster series and evaluates SLOs (telemetry/Slo.h) at every
/// window roll.
///
/// Everything is keyed on sim-time, so the exported time-series and the
/// slo.breach/slo.recover instants are byte-identical across
/// PARCS_SIM_THREADS values and across repeated runs:
///
///  - agent state is touched only by its node's partition;
///  - merging is commutative (bucket-wise adds), so snapshot arrival
///    interleaving cannot change the merged series;
///  - windows are finalized in index order once the *frontier* -- the
///    minimum heartbeat time heard from every agent (a node never heard
///    from pins it at zero) -- passes their end, so SLO evaluation sees
///    only complete windows, in a deterministic order.
///
/// Agents *park* when a flush finds nothing pending (the heartbeat does
/// not reschedule), and the first record() afterwards re-arms them, so an
/// idle cluster generates no telemetry events and run() terminates.
/// Snapshots that arrive for already-final windows (a parked agent waking
/// late, or heartbeats lost to an in-band fault plan) are counted and
/// dropped, never merged -- late data may not rewrite history that SLOs
/// already judged.
///
/// Enable with
///
///   PARCS_TELEMETRY=<file>[,window=<dur>][,flush=<dur>][,collector=<node>]
///                        [,port=<port>][,model=<file>]
///                        [,slo=slo(<series>, p<P> < <dur>, window=<dur>)]...
///
/// which exports the cluster time-series as JSON to <file> at teardown
/// and writes a crash flight-recorder dump to <file>.flight.json (see
/// telemetry/FlightRecorder.h).  tools/parcs_top renders the export.
/// model=<file> additionally writes a one-point parcs-model sweep whose
/// metrics are *exact* whole-run series summaries (percentiles from the
/// merged buckets, not window averages) -- feed files from runs at
/// several scales to `parcs-model fit` to get scaling laws.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_TELEMETRY_TELEMETRY_H
#define PARCS_TELEMETRY_TELEMETRY_H

#include "net/Network.h"
#include "net/PdesFabric.h"
#include "support/Metrics.h"
#include "support/TelemetrySink.h"
#include "telemetry/Slo.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace parcs::telemetry {

/// How the plane should run (parsed from PARCS_TELEMETRY).
struct TelemetrySpec {
  std::string Path;                ///< Export file ("" = keep in memory).
  int64_t WindowNs = 1'000'000;    ///< Series bucket width (1ms).
  int64_t FlushNs = 0;             ///< Heartbeat period (0 = WindowNs).
  int CollectorNode = 0;           ///< Node hosting the collector object.
  int Port = 9700;                 ///< Fabric port the collector binds.
  std::string ModelPath;           ///< Sweep-point file ("" = none).
  std::vector<SloSpec> Slos;
};

/// Parses "<path>[,window=dur][,flush=dur][,collector=N][,port=N]
/// [,slo=...]...".  Durations use the fault-plan grammar ("2ms", "50us",
/// bare ns).  Returns false leaving \p Out untouched on malformation;
/// \p BadToken (when non-null) receives the offending token.
bool parseTelemetrySpec(std::string_view Spec, TelemetrySpec &Out,
                        std::string *BadToken = nullptr);

/// Reads PARCS_TELEMETRY.  Returns true and fills \p Out when the knob is
/// set and well-formed; warns on stderr naming the bad token (and returns
/// false) when set but malformed; silently returns false when unset.
bool envTelemetrySpec(TelemetrySpec &Out);

/// The telemetry plane: per-node agents + in-band collector + SLO engine.
/// Construct after the fabric and before the workload runs; destroy (or
/// finish()) after run() to fold straggler windows and write the export.
/// Installs itself as the process-wide telemetry::Sink for its lifetime.
class Plane : public Sink {
public:
  Plane(net::Network &Net, TelemetrySpec Spec);
  Plane(net::PdesFabric &Fab, TelemetrySpec Spec);
  ~Plane() override;

  Plane(const Plane &) = delete;
  Plane &operator=(const Plane &) = delete;

  // Sink: called by instrumented layers on the recording node's partition.
  void count(int Node, const char *Series, int64_t AtNs,
             uint64_t N) override;
  void record(int Node, const char *Series, int64_t AtNs,
              int64_t Value) override;

  /// Folds windows still pending in the agents (serially, in node order)
  /// and finalizes every remaining window -- evaluating SLOs for each --
  /// then writes the export file when the spec names one.  Idempotent;
  /// the destructor calls it.  Call only after run() has returned.
  void finish();

  /// The cluster time-series as JSON (calls finish()).  Deterministic:
  /// a pure function of the recorded (node, time, value) stream.
  std::string exportJson();

  /// The run summarized as a one-point parcs-model sweep (calls
  /// finish()): params {nodes}, metrics "<series>.n" / ".rate_per_s" and,
  /// for histogram series, exact whole-run ".p50/.p99/.p999/.mean"
  /// computed from the merged buckets.  Written to spec().ModelPath at
  /// teardown when the model= option names a file.  Deterministic.
  std::string modelPointsJson();

  /// Installs \p Cb to be invoked at every SLO state-machine edge (breach
  /// and recover) during the live run, on the collector node's partition,
  /// at the deterministic window-finalization time.  Edges found by the
  /// teardown finish() pass do NOT fire the callback -- the run is over,
  /// nothing can act on them.  This is the control-plane hook the SCOOPP
  /// rebalancer consumes to trigger live object migration.  Pass nullptr
  /// to uninstall.
  using SloEdgeCallback =
      std::function<void(const SloSpec &Spec, bool Breach, int64_t AtNs)>;
  void onSloEdge(SloEdgeCallback Cb) { EdgeCallback = std::move(Cb); }

  // Collector health, for tests and reports.
  uint64_t snapshotsReceived() const { return SnapshotsReceived; }
  uint64_t lateWindows() const { return LateWindows; }
  uint64_t corruptSnapshots() const { return CorruptSnapshots; }

  const TelemetrySpec &spec() const { return Spec; }

  /// Fabric-agnostic view of Network / PdesFabric (implemented in the
  /// .cpp; public only so those implementations can derive from it).
  class FabricIf;

private:
  /// One series' contribution to one window: counter increments and/or
  /// histogram samples (a series is one or the other; kind mismatches
  /// merge harmlessly because the unused half stays empty).
  struct SeriesDelta {
    uint64_t Count = 0;
    metrics::WindowedHistogram::Snapshot Hist;

    void merge(const SeriesDelta &Other) {
      Count += Other.Count;
      Hist.merge(Other.Hist);
    }
  };
  using WindowDeltas = std::map<std::string, SeriesDelta, std::less<>>;

  /// Per-node accumulation, touched only by that node's partition.
  struct Agent {
    std::map<int64_t, WindowDeltas> Pending; ///< window index -> deltas.
    uint64_t NextSeq = 1;
    bool Armed = false;
  };

  struct SloState {
    SloSpec Spec;
    int64_t SpanWindows = 1; ///< Trailing windows the slow burn reads.
    bool InBreach = false;
    uint64_t FastBurnWindows = 0;
    uint64_t SlowBurnWindows = 0;
    struct Edge {
      int64_t Window;
      int64_t AtNs;
      bool Breach; ///< false = recover.
    };
    std::vector<Edge> Edges;
  };

  void start();
  sim::Task<void> collectorLoop(sim::Channel<net::Message> &Chan);
  SeriesDelta &deltaFor(int Node, const char *Series, int64_t AtNs);
  void arm(int Node, int64_t AtNs);
  void heartbeat(int Node, int64_t NowNs);
  void onSnapshot(const net::Message &Msg);
  void advanceFrontier();
  void finalizeThrough(int64_t FirstOpenWindow);
  void evaluateSlos(int64_t Window);

  TelemetrySpec Spec;
  std::unique_ptr<FabricIf> Fabric;
  std::vector<Agent> Agents;
  Sink *PrevSink = nullptr;

  // Collector state (touched only by the collector node's partition
  // during the run, then serially by finish()).
  std::map<std::string, std::map<int64_t, SeriesDelta>, std::less<>> Merged;
  std::vector<int64_t> LastHeartbeatNs; ///< Per node; -1 = never heard.
  int64_t FirstOpenWindow = 0;          ///< Windows below this are final.
  std::vector<SloState> Slos;
  SloEdgeCallback EdgeCallback;
  uint64_t SnapshotsReceived = 0;
  uint64_t LateWindows = 0;
  uint64_t CorruptSnapshots = 0;
  bool Finished = false;
};

} // namespace parcs::telemetry

#endif // PARCS_TELEMETRY_TELEMETRY_H
