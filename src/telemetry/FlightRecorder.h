//===- telemetry/FlightRecorder.h - Crash post-mortem dumps -----*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on bounded recorder for post-mortem debugging: while alive,
/// every trace-instrumented event also lands in small per-node rings (the
/// trace recorder's flight mode, support/Trace.h), and when something
/// fatal happens -- a fault-plan crash fires vm::Node::crash(), or the
/// remoting engine exhausts its retries -- the recent event tail plus the
/// current metrics snapshot are dumped to a JSON file.  Chaos runs become
/// debuggable without paying for (or perturbing determinism contracts
/// with) full tracing: flight mode never mints causal ids, so RPC wire
/// bytes are identical to an uninstrumented run.
///
/// Each fatal event overwrites the dump, so after a run the file holds
/// the context of the *latest* failure; `flight.dumps` in the metrics
/// report says how many times it fired.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_TELEMETRY_FLIGHTRECORDER_H
#define PARCS_TELEMETRY_FLIGHTRECORDER_H

#include <cstdint>
#include <string>

namespace parcs::telemetry {

/// RAII: enables trace flight mode and installs the postmortem handler
/// for its lifetime.  One per process at a time (the last one wins the
/// handler slot, as support/PostMortem.h documents).
class FlightRecorder {
public:
  /// \p Path is the dump file; \p RingEvents the per-node tail length.
  explicit FlightRecorder(std::string Path, size_t RingEvents = 512);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  /// Renders the dump body as it would be written right now (tests, and
  /// anything wanting a dump without a fatality).
  std::string dumpJson(const char *Reason, int Node, int64_t AtNs) const;

  /// Times a fatal event fired (== times the file was written).
  uint64_t dumps() const { return Dumps; }

private:
  static void onFatal(void *Self, const char *Reason, int Node,
                      int64_t AtNs);
  void writeDump(const char *Reason, int Node, int64_t AtNs);

  std::string Path;
  uint64_t Dumps = 0;
};

} // namespace parcs::telemetry

#endif // PARCS_TELEMETRY_FLIGHTRECORDER_H
