//===- telemetry/Telemetry.cpp - In-band cluster telemetry plane ----------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "serial/Archive.h"
#include "support/EnvSpec.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace parcs::telemetry {

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

bool parseTelemetrySpec(std::string_view SpecText, TelemetrySpec &Out,
                        std::string *BadToken) {
  std::string_view Path;
  std::vector<envspec::Option> Opts;
  if (!envspec::split(SpecText, Path, Opts, BadToken))
    return false;
  auto Fail = [&](std::string_view Token) {
    if (BadToken)
      *BadToken = std::string(Token);
    return false;
  };
  TelemetrySpec Spec;
  Spec.Path = std::string(Path);
  for (const envspec::Option &O : Opts) {
    uint64_t N = 0;
    if (O.Key == "window") {
      if (!envspec::parseDurationNs(O.Value, Spec.WindowNs) ||
          Spec.WindowNs <= 0)
        return Fail(O.Token);
    } else if (O.Key == "flush") {
      if (!envspec::parseDurationNs(O.Value, Spec.FlushNs) ||
          Spec.FlushNs <= 0)
        return Fail(O.Token);
    } else if (O.Key == "collector") {
      if (!envspec::parseUint(O.Value, N))
        return Fail(O.Token);
      Spec.CollectorNode = int(N);
    } else if (O.Key == "port") {
      if (!envspec::parseUint(O.Value, N) || N == 0 || N > 65535)
        return Fail(O.Token);
      Spec.Port = int(N);
    } else if (O.Key == "model") {
      if (O.Value.empty())
        return Fail(O.Token);
      Spec.ModelPath = std::string(O.Value);
    } else if (O.Key == "slo") {
      std::string BadSlo;
      if (!parseSloSpecs(O.Value, Spec.Slos, &BadSlo))
        return Fail(O.Token);
    } else {
      return Fail(O.Token);
    }
  }
  Out = std::move(Spec);
  return true;
}

bool envTelemetrySpec(TelemetrySpec &Out) {
  const char *Env = std::getenv("PARCS_TELEMETRY");
  if (!Env)
    return false;
  std::string BadToken;
  if (parseTelemetrySpec(Env, Out, &BadToken))
    return true;
  std::fprintf(stderr,
               "[parcs:telemetry] ignoring malformed PARCS_TELEMETRY "
               "\"%s\": bad token \"%s\"\n",
               Env, BadToken.c_str());
  return false;
}

//===----------------------------------------------------------------------===//
// Fabric abstraction
//===----------------------------------------------------------------------===//

/// The three operations the plane needs from either fabric.  Heartbeats
/// only ever send from the node they run on, matching both fabrics'
/// send-from-self contract.
class Plane::FabricIf {
public:
  virtual ~FabricIf() = default;
  virtual int nodeCount() = 0;
  virtual sim::Simulator &simOf(int Node) = 0;
  virtual sim::Channel<net::Message> &bind(int Node, int Port) = 0;
  virtual void send(int Src, int Dst, int Port,
                    std::vector<uint8_t> Payload) = 0;
};

namespace {

class SerialFabric final : public Plane::FabricIf {
public:
  explicit SerialFabric(net::Network &Net) : Net(Net) {}
  int nodeCount() override { return Net.nodeCount(); }
  sim::Simulator &simOf(int) override { return Net.sim(); }
  sim::Channel<net::Message> &bind(int Node, int Port) override {
    return Net.bind(Node, Port);
  }
  void send(int Src, int Dst, int Port,
            std::vector<uint8_t> Payload) override {
    Net.send(Src, Dst, Port, std::move(Payload));
  }

private:
  net::Network &Net;
};

class PdesFabricIf final : public Plane::FabricIf {
public:
  explicit PdesFabricIf(net::PdesFabric &Fab) : Fab(Fab) {}
  int nodeCount() override { return Fab.nodeCount(); }
  sim::Simulator &simOf(int Node) override { return Fab.simOf(Node); }
  sim::Channel<net::Message> &bind(int Node, int Port) override {
    return Fab.bind(Node, Port);
  }
  void send(int Src, int Dst, int Port,
            std::vector<uint8_t> Payload) override {
    Fab.send(Src, Dst, Port, std::move(Payload));
  }

private:
  net::PdesFabric &Fab;
};

//===----------------------------------------------------------------------===//
// JSON helpers (same conventions as the metrics report: %.6g doubles)
//===----------------------------------------------------------------------===//

void appendEscaped(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

void appendDouble(std::string &Out, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

void appendInt(std::string &Out, long long V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", V);
  Out += Buf;
}

} // namespace

//===----------------------------------------------------------------------===//
// Plane lifecycle
//===----------------------------------------------------------------------===//

Plane::Plane(net::Network &Net, TelemetrySpec S)
    : Spec(std::move(S)), Fabric(std::make_unique<SerialFabric>(Net)) {
  start();
}

Plane::Plane(net::PdesFabric &Fab, TelemetrySpec S)
    : Spec(std::move(S)), Fabric(std::make_unique<PdesFabricIf>(Fab)) {
  start();
}

void Plane::start() {
  assert(Spec.WindowNs > 0 && "telemetry window must be positive");
  if (Spec.FlushNs <= 0)
    Spec.FlushNs = Spec.WindowNs;
  int Nodes = Fabric->nodeCount();
  assert(Spec.CollectorNode >= 0 && Spec.CollectorNode < Nodes &&
         "collector node out of range");
  Agents.resize(size_t(Nodes));
  LastHeartbeatNs.assign(size_t(Nodes), -1);
  Slos.reserve(Spec.Slos.size());
  for (const SloSpec &S : Spec.Slos) {
    SloState St;
    St.Spec = S;
    St.SpanWindows =
        std::max<int64_t>(1, (S.WindowNs + Spec.WindowNs - 1) / Spec.WindowNs);
    Slos.push_back(std::move(St));
  }
  sim::Channel<net::Message> &Chan =
      Fabric->bind(Spec.CollectorNode, Spec.Port);
  Fabric->simOf(Spec.CollectorNode).spawn(collectorLoop(Chan));
  PrevSink = setSink(this);
}

Plane::~Plane() {
  setSink(PrevSink);
  finish();
}

//===----------------------------------------------------------------------===//
// Agent side (runs on the recording node's partition)
//===----------------------------------------------------------------------===//

Plane::SeriesDelta &Plane::deltaFor(int Node, const char *Series,
                                    int64_t AtNs) {
  Agent &A = Agents[size_t(Node)];
  int64_t Window = std::max<int64_t>(0, AtNs) / Spec.WindowNs;
  return A.Pending[Window][Series];
}

void Plane::count(int Node, const char *Series, int64_t AtNs, uint64_t N) {
  if (Node < 0 || Node >= int(Agents.size()))
    return;
  deltaFor(Node, Series, AtNs).Count += N;
  arm(Node, AtNs);
}

void Plane::record(int Node, const char *Series, int64_t AtNs,
                   int64_t Value) {
  if (Node < 0 || Node >= int(Agents.size()))
    return;
  deltaFor(Node, Series, AtNs).Hist.record(Value);
  arm(Node, AtNs);
}

void Plane::arm(int Node, int64_t AtNs) {
  Agent &A = Agents[size_t(Node)];
  if (A.Armed)
    return;
  A.Armed = true;
  // Heartbeats stay on the FlushNs grid, so two runs that record at the
  // same sim-times flush at the same sim-times whatever the interleaving.
  int64_t T = (std::max<int64_t>(0, AtNs) / Spec.FlushNs + 1) * Spec.FlushNs;
  Fabric->simOf(Node).scheduleAt(sim::SimTime::nanoseconds(T),
                                 [this, Node, T] { heartbeat(Node, T); });
}

void Plane::heartbeat(int Node, int64_t NowNs) {
  Agent &A = Agents[size_t(Node)];
  // Windows whose end lies at or before NowNs are complete: nothing on
  // this node can record into them anymore (sample times never exceed the
  // node's own now).
  int64_t FirstOpen = NowNs / Spec.WindowNs;
  std::vector<std::pair<int64_t, WindowDeltas>> Closed;
  for (auto It = A.Pending.begin();
       It != A.Pending.end() && It->first < FirstOpen;) {
    Closed.emplace_back(It->first, std::move(It->second));
    It = A.Pending.erase(It);
  }
  // Park when nothing is brewing; the next record() re-arms.  A partial
  // window keeps the agent armed so its data ships next flush and run()
  // still terminates (bounded flushes after the last record).
  A.Armed = !A.Pending.empty();
  if (A.Armed) {
    int64_t T = NowNs + Spec.FlushNs;
    Fabric->simOf(Node).scheduleAt(sim::SimTime::nanoseconds(T),
                                   [this, Node, T] { heartbeat(Node, T); });
  }

  serial::OutputArchive Ar;
  Ar.write(int32_t(Node));
  Ar.write(uint64_t(A.NextSeq++));
  Ar.write(int64_t(NowNs));
  Ar.write(uint8_t(A.Armed ? 0 : 1)); // Parked after this heartbeat.
  Ar.write(uint32_t(Closed.size()));
  for (const auto &[Window, Deltas] : Closed) {
    Ar.write(int64_t(Window));
    Ar.write(uint32_t(Deltas.size()));
    for (const auto &[Name, D] : Deltas) {
      Ar.write(Name);
      Ar.write(uint64_t(D.Count));
      Ar.write(uint8_t(D.Hist.Count != 0));
      if (D.Hist.Count != 0) {
        for (uint64_t B : D.Hist.Buckets)
          Ar.write(B);
        Ar.write(uint64_t(D.Hist.Count));
        Ar.write(int64_t(D.Hist.Min));
        Ar.write(int64_t(D.Hist.Max));
        Ar.write(uint64_t(D.Hist.Sum));
      }
    }
  }
  // Ordinary framed traffic: pays wire time, competes with the workload,
  // and is subject to the fault plan like any other message.
  Fabric->send(Node, Spec.CollectorNode, Spec.Port, Ar.take());
}

//===----------------------------------------------------------------------===//
// Collector side (runs on the collector node's partition)
//===----------------------------------------------------------------------===//

sim::Task<void> Plane::collectorLoop(sim::Channel<net::Message> &Chan) {
  for (;;) {
    net::Message Msg = co_await Chan.recv();
    onSnapshot(Msg);
  }
}

void Plane::onSnapshot(const net::Message &Msg) {
  serial::InputArchive Ar(Msg.Payload);
  int32_t Node = -1;
  uint64_t Seq = 0;
  int64_t NowNs = 0;
  uint8_t ParkedFlag = 0;
  uint32_t NumWindows = 0;
  Ar.read(Node);
  Ar.read(Seq);
  Ar.read(NowNs);
  Ar.read(ParkedFlag);
  Ar.read(NumWindows);
  if (!Ar.ok() || Node < 0 || Node >= int(Agents.size())) {
    ++CorruptSnapshots; // Bit corruption from a fault plan, most likely.
    return;
  }
  for (uint32_t W = 0; W < NumWindows; ++W) {
    int64_t Window = 0;
    uint32_t NumSeries = 0;
    Ar.read(Window);
    Ar.read(NumSeries);
    for (uint32_t S = 0; S < NumSeries; ++S) {
      std::string Name;
      SeriesDelta D;
      uint8_t HasHist = 0;
      Ar.read(Name);
      Ar.read(D.Count);
      Ar.read(HasHist);
      if (HasHist) {
        for (uint64_t &B : D.Hist.Buckets)
          Ar.read(B);
        Ar.read(D.Hist.Count);
        Ar.read(D.Hist.Min);
        Ar.read(D.Hist.Max);
        Ar.read(D.Hist.Sum);
      }
      if (!Ar.ok()) {
        ++CorruptSnapshots;
        return;
      }
      if (Window < FirstOpenWindow) {
        // History already judged by the SLO engine; late data may not
        // rewrite it.  Counted so chaos runs can see the loss.
        ++LateWindows;
        continue;
      }
      auto It = Merged[std::move(Name)].try_emplace(Window);
      It.first->second.merge(D);
    }
  }
  if (!Ar.atEnd()) {
    ++CorruptSnapshots;
    return;
  }
  ++SnapshotsReceived;
  // ParkedFlag rides in the snapshot for post-mortem inspection but does
  // not steer the frontier: parked or not, the heartbeat time alone bounds
  // what the node can still ship.
  (void)ParkedFlag;
  LastHeartbeatNs[size_t(Node)] =
      std::max(LastHeartbeatNs[size_t(Node)], NowNs);
  advanceFrontier();
}

void Plane::advanceFrontier() {
  // Conservative frontier, PDES-style: an *arrived* heartbeat at time H
  // promises that everything the node will ever ship for windows below
  // window(H) has already arrived (parked or armed, its later data lands
  // at or after H).  A node never heard from promises nothing -- it may
  // have a first snapshot in flight right now -- so it pins the frontier
  // at zero and its windows are finalized, still deterministically, by
  // finish().  This is what makes the merge immune to arrival
  // interleaving: data can only be "late" once its own node's later
  // heartbeat has landed.
  int64_t Frontier = std::numeric_limits<int64_t>::max();
  for (int64_t H : LastHeartbeatNs)
    Frontier = std::min(Frontier, std::max<int64_t>(H, 0));
  if (LastHeartbeatNs.empty())
    return;
  finalizeThrough(Frontier / Spec.WindowNs);
}

void Plane::finalizeThrough(int64_t NewFirstOpen) {
  for (int64_t W = FirstOpenWindow; W < NewFirstOpen; ++W)
    evaluateSlos(W);
  FirstOpenWindow = std::max(FirstOpenWindow, NewFirstOpen);
}

void Plane::evaluateSlos(int64_t Window) {
  if (Slos.empty())
    return;
  int64_t EndNs = (Window + 1) * Spec.WindowNs;
  for (SloState &S : Slos) {
    auto SeriesIt = Merged.find(S.Spec.Series);
    metrics::WindowedHistogram::Snapshot Fast, Slow;
    if (SeriesIt != Merged.end()) {
      auto &Windows = SeriesIt->second;
      for (int64_t W = Window - S.SpanWindows + 1; W <= Window; ++W) {
        auto It = Windows.find(W);
        if (It == Windows.end())
          continue;
        Slow.merge(It->second.Hist);
        if (W == Window)
          Fast.merge(It->second.Hist);
      }
    }
    double FastP = Fast.percentile(S.Spec.Percentile);
    double SlowP = Slow.percentile(S.Spec.Percentile);
    bool FastViolated = FastP > double(S.Spec.ThresholdNs);
    bool SlowViolated = SlowP > double(S.Spec.ThresholdNs);
    if (FastViolated)
      ++S.FastBurnWindows;
    if (SlowViolated)
      ++S.SlowBurnWindows;
    if (SlowViolated != S.InBreach) {
      S.InBreach = SlowViolated;
      trace::instant(Spec.CollectorNode, 0,
                     SlowViolated ? "slo.breach" : "slo.recover", EndNs);
      S.Edges.push_back({Window, EndNs, SlowViolated});
      // Control-plane hook: live edges only.  Edges discovered by the
      // teardown finish() pass are history -- nothing can act on them.
      if (EdgeCallback && !Finished)
        EdgeCallback(S.Spec, SlowViolated, EndNs);
    }
  }
}

//===----------------------------------------------------------------------===//
// Teardown: fold stragglers, finalize, export
//===----------------------------------------------------------------------===//

void Plane::finish() {
  if (Finished)
    return;
  Finished = true;

  // Whatever the agents still hold never made it onto the wire (the run
  // ended first).  Fold it serially in node order -- commutative merges,
  // so this is byte-identical to having shipped it.
  for (Agent &A : Agents) {
    for (auto &[Window, Deltas] : A.Pending) {
      for (auto &[Name, D] : Deltas) {
        if (Window < FirstOpenWindow) {
          ++LateWindows;
          continue;
        }
        auto It = Merged[Name].try_emplace(Window);
        It.first->second.merge(D);
      }
    }
    A.Pending.clear();
    A.Armed = false;
  }

  int64_t MaxOpen = FirstOpenWindow;
  for (const auto &[Name, Windows] : Merged)
    if (!Windows.empty())
      MaxOpen = std::max(MaxOpen, Windows.rbegin()->first + 1);
  finalizeThrough(MaxOpen);

  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("telemetry.snapshots").add(SnapshotsReceived);
  Reg.counter("telemetry.late_windows").add(LateWindows);
  Reg.counter("telemetry.corrupt_snapshots").add(CorruptSnapshots);
  for (const SloState &S : Slos) {
    Reg.counter("slo.fast_burn_windows").add(S.FastBurnWindows);
    Reg.counter("slo.slow_burn_windows").add(S.SlowBurnWindows);
    uint64_t Breaches = 0;
    for (const SloState::Edge &E : S.Edges)
      Breaches += E.Breach ? 1 : 0;
    Reg.counter("slo.breaches").add(Breaches);
  }

  auto WriteFile = [](const std::string &Path, const std::string &Body) {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "[parcs:telemetry] cannot write %s\n",
                   Path.c_str());
      return;
    }
    size_t Written = std::fwrite(Body.data(), 1, Body.size(), F);
    if (std::fclose(F) != 0 || Written != Body.size())
      std::fprintf(stderr, "[parcs:telemetry] cannot write %s\n",
                   Path.c_str());
  };
  if (!Spec.Path.empty())
    WriteFile(Spec.Path, exportJson());
  if (!Spec.ModelPath.empty())
    WriteFile(Spec.ModelPath, modelPointsJson());
}

std::string Plane::exportJson() {
  finish();
  std::string Out = "{\n  \"window_ns\": ";
  appendInt(Out, Spec.WindowNs);
  Out += ",\n  \"nodes\": ";
  appendInt(Out, int64_t(Agents.size()));
  Out += ",\n  \"snapshots\": ";
  appendInt(Out, int64_t(SnapshotsReceived));
  Out += ",\n  \"late_windows\": ";
  appendInt(Out, int64_t(LateWindows));
  Out += ",\n  \"corrupt_snapshots\": ";
  appendInt(Out, int64_t(CorruptSnapshots));

  Out += ",\n  \"series\": {";
  bool FirstSeries = true;
  for (const auto &[Name, Windows] : Merged) {
    Out += FirstSeries ? "\n    " : ",\n    ";
    FirstSeries = false;
    appendEscaped(Out, Name);
    bool IsHist = false;
    for (const auto &[W, D] : Windows)
      if (D.Hist.Count != 0)
        IsHist = true;
    Out += IsHist ? ": {\"kind\": \"histogram\", \"windows\": ["
                  : ": {\"kind\": \"counter\", \"windows\": [";
    bool FirstWin = true;
    for (const auto &[W, D] : Windows) {
      Out += FirstWin ? "\n      " : ",\n      ";
      FirstWin = false;
      Out += "{\"w\": ";
      appendInt(Out, W);
      Out += ", \"start_ns\": ";
      appendInt(Out, W * Spec.WindowNs);
      if (IsHist) {
        Out += ", \"n\": ";
        appendInt(Out, int64_t(D.Hist.Count));
        Out += ", \"mean\": ";
        appendDouble(Out, D.Hist.mean());
        Out += ", \"min\": ";
        appendInt(Out, D.Hist.Count ? D.Hist.Min : 0);
        Out += ", \"max\": ";
        appendInt(Out, D.Hist.Count ? D.Hist.Max : 0);
        Out += ", \"p50\": ";
        appendDouble(Out, D.Hist.percentile(50));
        Out += ", \"p90\": ";
        appendDouble(Out, D.Hist.percentile(90));
        Out += ", \"p99\": ";
        appendDouble(Out, D.Hist.percentile(99));
        Out += ", \"p999\": ";
        appendDouble(Out, D.Hist.percentile(99.9));
      } else {
        Out += ", \"n\": ";
        appendInt(Out, int64_t(D.Count));
      }
      Out += '}';
    }
    Out += "\n    ]}";
  }
  Out += "\n  }";

  Out += ",\n  \"slos\": [";
  bool FirstSlo = true;
  for (const SloState &S : Slos) {
    Out += FirstSlo ? "\n    " : ",\n    ";
    FirstSlo = false;
    Out += "{\"spec\": ";
    appendEscaped(Out, S.Spec.Text);
    Out += ", \"series\": ";
    appendEscaped(Out, S.Spec.Series);
    Out += ", \"percentile\": ";
    appendDouble(Out, S.Spec.Percentile);
    Out += ", \"threshold_ns\": ";
    appendInt(Out, S.Spec.ThresholdNs);
    Out += ", \"window_ns\": ";
    appendInt(Out, S.SpanWindows * Spec.WindowNs);
    Out += ", \"fast_burn_windows\": ";
    appendInt(Out, int64_t(S.FastBurnWindows));
    Out += ", \"slow_burn_windows\": ";
    appendInt(Out, int64_t(S.SlowBurnWindows));
    Out += ", \"events\": [";
    bool FirstEdge = true;
    for (const SloState::Edge &E : S.Edges) {
      Out += FirstEdge ? "" : ", ";
      FirstEdge = false;
      Out += "{\"window\": ";
      appendInt(Out, E.Window);
      Out += ", \"at_ns\": ";
      appendInt(Out, E.AtNs);
      Out += E.Breach ? ", \"kind\": \"breach\"}" : ", \"kind\": \"recover\"}";
    }
    Out += "]}";
  }
  Out += "\n  ]\n}\n";
  return Out;
}

std::string Plane::modelPointsJson() {
  finish();
  // The run's extent: the last merged window bounds when anything was
  // recorded.  Rates divide by it, so two runs of different lengths at
  // the same throughput model the same.
  int64_t SpanWindows = 0;
  for (const auto &[Name, Windows] : Merged)
    if (!Windows.empty())
      SpanWindows = std::max(SpanWindows, Windows.rbegin()->first + 1);
  double SpanS = double(SpanWindows) * double(Spec.WindowNs) / 1e9;

  std::string Out = "{\n  \"parcs_sweep\": 1,\n  \"bench\": "
                    "\"telemetry\",\n  \"machine\": \"\",\n  \"points\": [\n"
                    "    {\"params\": {\"nodes\": ";
  appendInt(Out, int64_t(Agents.size()));
  Out += "}, \"metrics\": {";
  bool First = true;
  for (const auto &[Name, Windows] : Merged) {
    // Whole-run exact summary: merge every window's buckets, then take
    // percentiles -- no window-average approximation.
    metrics::WindowedHistogram::Snapshot Hist;
    uint64_t Count = 0;
    for (const auto &[W, D] : Windows) {
      Hist.merge(D.Hist);
      Count += D.Count;
    }
    uint64_t N = Hist.Count ? Hist.Count : Count;
    if (N == 0)
      continue;
    auto Metric = [&](const std::string &Suffix, double V) {
      Out += First ? "\n      " : ",\n      ";
      First = false;
      appendEscaped(Out, Name + Suffix);
      Out += ": ";
      appendDouble(Out, V);
    };
    Metric(".n", double(N));
    if (SpanS > 0)
      Metric(".rate_per_s", double(N) / SpanS);
    if (Hist.Count != 0) {
      Metric(".p50", Hist.percentile(50));
      Metric(".p99", Hist.percentile(99));
      Metric(".p999", Hist.percentile(99.9));
      Metric(".mean", Hist.mean());
    }
  }
  Out += "\n    }}\n  ]\n}\n";
  return Out;
}

} // namespace parcs::telemetry
