//===- core/Passive.h - Passive-object transfer -----------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SCOOPP passive objects (Section 3.1): "Passive objects are supported
/// to make easier the reuse of existing code.  These objects are placed
/// in the context of the parallel object that created them, and only
/// copies of them are allowed to move between parallel objects."
///
/// A passive object is any serial::SerializableObject; these helpers move
/// *copies* of whole graphs (including shared structure and cycles, as
/// .Net/Java serialisation does) through parallel-object method calls:
///
/// \code
///   // caller (PO side): pass a copy of a passive graph
///   co_await Proxy.invokeAsync("consume",
///                              scoopp::encodePassiveGraph(Root));
///   // implementation (IO side): rebuild the copy in a local pool
///   serial::ObjectPool Pool;
///   auto Copy = scoopp::decodePassiveGraph(Args, Pool);
/// \endcode
///
/// Passive classes register once in serial::TypeRegistry::global() (or a
/// custom registry passed explicitly).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_PASSIVE_H
#define PARCS_CORE_PASSIVE_H

#include "serial/ObjectGraph.h"

namespace parcs::scoopp {

/// Serialises a passive-object graph rooted at \p Root (null allowed).
serial::Bytes encodePassiveGraph(const serial::SerializableObject *Root);

/// Rebuilds a copy of a transferred graph in \p Pool, resolving types
/// against \p Registry (default: the process-wide registry).
ErrorOr<serial::SerializableObject *> decodePassiveGraph(
    const serial::Bytes &Data, serial::ObjectPool &Pool,
    const serial::TypeRegistry &Registry = serial::TypeRegistry::global());

/// Deep-copies a passive graph locally (what handing a passive object to
/// a co-located parallel object means: the callee gets its own copy).
ErrorOr<serial::SerializableObject *> clonePassiveGraph(
    const serial::SerializableObject *Root, serial::ObjectPool &Pool,
    const serial::TypeRegistry &Registry = serial::TypeRegistry::global());

} // namespace parcs::scoopp

#endif // PARCS_CORE_PASSIVE_H
