//===- core/Rebalancer.cpp ------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/Rebalancer.h"

#include "core/ObjectManager.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <limits>

using namespace parcs;
using namespace parcs::scoopp;

SloRebalancer::SloRebalancer(ScooppRuntime &Runtime, telemetry::Plane &Plane,
                             Policy Pol)
    : Runtime(Runtime), Plane(Plane), Pol(Pol) {
  Plane.onSloEdge([this](const telemetry::SloSpec &Spec, bool Breach,
                         int64_t AtNs) { onEdge(Spec, Breach, AtNs); });
}

SloRebalancer::~SloRebalancer() { Plane.onSloEdge(nullptr); }

void SloRebalancer::onEdge(const telemetry::SloSpec &Spec, bool Breach,
                           int64_t AtNs) {
  if (!Breach)
    return;
  ++Breaches;
  metrics::Registry::global().counter("om.rebalance_breaches").add(1);
  if (Busy || Triggered >= static_cast<uint64_t>(Pol.MaxMigrations) ||
      (LastMoveNs >= 0 &&
       AtNs - LastMoveNs < Pol.Cooldown.nanosecondsCount())) {
    ++Skipped;
    metrics::Registry::global().counter("om.rebalance_skipped").add(1);
    return;
  }
  PARCS_LOG(Info, "rebalancer: slo breach on '" << Spec.Series
                                                << "', scheduling migration");
  Busy = true;
  // Runs at the current virtual time but outside the collector's stack --
  // spawn() enqueues a fresh event, it does not resume inline.
  Runtime.sim().spawn(rebalanceOnce());
}

sim::Task<void> SloRebalancer::rebalanceOnce() {
  // Hottest healthy node by the OM's own load metric (hosted objects +
  // queued dispatch work); ties break toward the lower node id, so the
  // choice is deterministic.
  int Hot = -1, HotLoad = -1;
  for (int N = 0; N < Runtime.nodeCount(); ++N) {
    if (!Runtime.nodeHealthy(N))
      continue;
    int Load = Runtime.om(N).loadMetric();
    if (Load > HotLoad) {
      Hot = N;
      HotLoad = Load;
    }
  }
  // Coldest healthy, non-saturated destination.
  int Cold = -1, ColdLoad = std::numeric_limits<int>::max();
  for (int N = 0; N < Runtime.nodeCount(); ++N) {
    if (N == Hot || !Runtime.nodeHealthy(N) || Runtime.nodeSaturated(N))
      continue;
    int Load = Runtime.om(N).loadMetric();
    if (Load < ColdLoad) {
      Cold = N;
      ColdLoad = Load;
    }
  }
  if (Hot < 0 || Cold < 0 || HotLoad - ColdLoad < Pol.MinLoadGap) {
    ++Skipped;
    metrics::Registry::global().counter("om.rebalance_skipped").add(1);
    Busy = false;
    co_return;
  }
  // Victim: the first migratable parallel object on the hot node.  All
  // IOs publish as "io:<class>:<id>", and the registry iterates sorted,
  // so this pick is deterministic too.
  std::string Victim;
  for (const std::string &Name : Runtime.endpoint(Hot).publishedNames()) {
    if (Name.rfind("io:", 0) == 0 && !Runtime.endpoint(Hot).isParked(Name)) {
      Victim = Name;
      break;
    }
  }
  if (Victim.empty()) {
    ++Skipped;
    metrics::Registry::global().counter("om.rebalance_skipped").add(1);
    Busy = false;
    co_return;
  }
  ++Triggered;
  LastMoveNs = Runtime.sim().now().nanosecondsCount();
  metrics::Registry::global().counter("om.rebalance_migrations").add(1);
  trace::instant(Hot, 0, "om.rebalance.migrate", LastMoveNs);
  PARCS_LOG(Info, "rebalancer: migrating '" << Victim << "' from node " << Hot
                                            << " (load " << HotLoad
                                            << ") to node " << Cold
                                            << " (load " << ColdLoad << ")");
  ErrorOr<ParallelRef> Moved = co_await Runtime.om(Hot).migrate(Victim, Cold);
  if (Moved) {
    ++Succeeded;
  } else {
    metrics::Registry::global().counter("om.rebalance_failed").add(1);
    PARCS_LOG(Warn, "rebalancer: migration of '"
                        << Victim << "' failed: " << Moved.error().str());
  }
  Busy = false;
}
