//===- core/Passive.cpp ---------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/Passive.h"

using namespace parcs;
using namespace parcs::scoopp;

serial::Bytes
parcs::scoopp::encodePassiveGraph(const serial::SerializableObject *Root) {
  return serial::encodeObjectGraph(Root);
}

ErrorOr<serial::SerializableObject *>
parcs::scoopp::decodePassiveGraph(const serial::Bytes &Data,
                                  serial::ObjectPool &Pool,
                                  const serial::TypeRegistry &Registry) {
  return serial::decodeObjectGraph(Data, Registry, Pool);
}

ErrorOr<serial::SerializableObject *>
parcs::scoopp::clonePassiveGraph(const serial::SerializableObject *Root,
                                 serial::ObjectPool &Pool,
                                 const serial::TypeRegistry &Registry) {
  return serial::decodeObjectGraph(serial::encodeObjectGraph(Root), Registry,
                                   Pool);
}
