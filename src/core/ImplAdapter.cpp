//===- core/ImplAdapter.cpp -----------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/ImplAdapter.h"

#include "support/StringUtils.h"
#include "support/Trace.h"

using namespace parcs;
using namespace parcs::scoopp;

Bytes parcs::scoopp::encodePackedCalls(const std::vector<BufferedCall> &Calls) {
  bool AnyCtx = false;
  for (const BufferedCall &Call : Calls)
    AnyCtx |= Call.Ctx != 0;
  serial::OutputArchive Out;
  Out.write(static_cast<uint32_t>(Calls.size()) |
            (AnyCtx ? PackedCtxFlag : 0u));
  for (const BufferedCall &Call : Calls) {
    Out.write(static_cast<uint32_t>(Call.Args.size()));
    Out.writeRaw(Call.Args);
    if (AnyCtx)
      Out.write(Call.Ctx);
  }
  return Out.take();
}

ErrorOr<std::vector<BufferedCall>>
parcs::scoopp::decodePackedCalls(const Bytes &Payload) {
  serial::InputArchive In(Payload);
  uint32_t Count = 0;
  if (!In.read(Count))
    return Error(ErrorCode::MalformedMessage, "packed call count");
  bool HasCtx = (Count & PackedCtxFlag) != 0;
  Count &= ~PackedCtxFlag;
  std::vector<BufferedCall> Calls;
  Calls.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Size = 0;
    BufferedCall Call;
    if (!In.read(Size) || !In.readRaw(Call.Args, Size))
      return Error(ErrorCode::MalformedMessage, "packed call body");
    if (HasCtx && !In.read(Call.Ctx))
      return Error(ErrorCode::MalformedMessage, "packed call context");
    Calls.push_back(std::move(Call));
  }
  if (!In.atEnd())
    return Error(ErrorCode::MalformedMessage, "packed call trailing bytes");
  return Calls;
}

namespace {

/// Releases a mutex on scope exit (coroutine-safe: runs on frame unwind).
struct MutexGuard {
  explicit MutexGuard(sim::Mutex &Lock) : Lock(Lock) {}
  ~MutexGuard() { Lock.unlock(); }
  sim::Mutex &Lock;
};

} // namespace

sim::Task<ErrorOr<Bytes>> ImplAdapter::handleCall(std::string_view Method,
                                                  const Bytes &Args) {
  // Claim the dispatcher's handed-off context before any suspension: Task
  // is lazy, so this runs synchronously inside the caller's co_await while
  // the slot is still ours.
  uint64_t DispatchCtx = trace::takeHandoff();
  co_await CallLock.lock();
  MutexGuard Guard(CallLock);
  if (startsWith(Method, PackedMethodPrefix)) {
    std::string Real(Method.substr(std::string_view(PackedMethodPrefix).size()));
    ErrorOr<std::vector<BufferedCall>> Calls = decodePackedCalls(Args);
    if (!Calls)
      co_return Calls.error();
    // Fig. 7's processN: fetch each invocation from the array structure
    // and run the original method.  Each buffered call executes under the
    // causal id of the proxy invocation that produced it, falling back to
    // the dispatch context for legacy ctx-free payloads.
    for (BufferedCall &Call : *Calls) {
      ErrorOr<Bytes> Result = co_await timedCall(
          Real, std::move(Call.Args), Call.Ctx ? Call.Ctx : DispatchCtx);
      if (!Result)
        co_return Result.error();
    }
    co_return Bytes{};
  }
  ErrorOr<Bytes> Result =
      co_await timedCall(std::string(Method), Bytes(Args), DispatchCtx);
  co_return Result;
}

sim::Task<ErrorOr<Bytes>> ImplAdapter::timedCall(std::string Method,
                                                 Bytes Args,
                                                 uint64_t ParentCtx) {
  sim::Simulator &Sim = Om.runtime().sim();
  sim::SimTime Start = Sim.now();
  ErrorOr<Bytes> Result = co_await Inner->handleCall(Method, Args);
  Om.noteExecution(ClassName, Sim.now() - Start);
  if (trace::enabled()) {
    uint64_t ExecCtx = trace::mintCausalId();
    trace::completeCtx(Om.nodeId(), 0, "scoopp.execute",
                       Start.nanosecondsCount(),
                       (Sim.now() - Start).nanosecondsCount(), ExecCtx,
                       ParentCtx);
  }
  co_return Result;
}
