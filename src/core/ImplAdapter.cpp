//===- core/ImplAdapter.cpp -----------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/ImplAdapter.h"

#include "support/StringUtils.h"

using namespace parcs;
using namespace parcs::scoopp;

Bytes parcs::scoopp::encodePackedCalls(const std::vector<Bytes> &Calls) {
  serial::OutputArchive Out;
  Out.write(static_cast<uint32_t>(Calls.size()));
  for (const Bytes &Call : Calls) {
    Out.write(static_cast<uint32_t>(Call.size()));
    Out.writeRaw(Call);
  }
  return Out.take();
}

ErrorOr<std::vector<Bytes>>
parcs::scoopp::decodePackedCalls(const Bytes &Payload) {
  serial::InputArchive In(Payload);
  uint32_t Count = 0;
  if (!In.read(Count))
    return Error(ErrorCode::MalformedMessage, "packed call count");
  std::vector<Bytes> Calls;
  Calls.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Size = 0;
    Bytes Call;
    if (!In.read(Size) || !In.readRaw(Call, Size))
      return Error(ErrorCode::MalformedMessage, "packed call body");
    Calls.push_back(std::move(Call));
  }
  if (!In.atEnd())
    return Error(ErrorCode::MalformedMessage, "packed call trailing bytes");
  return Calls;
}

namespace {

/// Releases a mutex on scope exit (coroutine-safe: runs on frame unwind).
struct MutexGuard {
  explicit MutexGuard(sim::Mutex &Lock) : Lock(Lock) {}
  ~MutexGuard() { Lock.unlock(); }
  sim::Mutex &Lock;
};

} // namespace

sim::Task<ErrorOr<Bytes>> ImplAdapter::handleCall(std::string_view Method,
                                                  const Bytes &Args) {
  co_await CallLock.lock();
  MutexGuard Guard(CallLock);
  if (startsWith(Method, PackedMethodPrefix)) {
    std::string Real(Method.substr(std::string_view(PackedMethodPrefix).size()));
    ErrorOr<std::vector<Bytes>> Calls = decodePackedCalls(Args);
    if (!Calls)
      co_return Calls.error();
    // Fig. 7's processN: fetch each invocation from the array structure
    // and run the original method.
    for (Bytes &Call : *Calls) {
      ErrorOr<Bytes> Result = co_await timedCall(Real, std::move(Call));
      if (!Result)
        co_return Result.error();
    }
    co_return Bytes{};
  }
  ErrorOr<Bytes> Result =
      co_await timedCall(std::string(Method), Bytes(Args));
  co_return Result;
}

sim::Task<ErrorOr<Bytes>> ImplAdapter::timedCall(std::string Method,
                                                 Bytes Args) {
  sim::Simulator &Sim = Om.runtime().sim();
  sim::SimTime Start = Sim.now();
  ErrorOr<Bytes> Result = co_await Inner->handleCall(Method, Args);
  Om.noteExecution(ClassName, Sim.now() - Start);
  co_return Result;
}
