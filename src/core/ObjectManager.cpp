//===- core/ObjectManager.cpp ---------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/ObjectManager.h"

#include "core/ImplAdapter.h"
#include "support/Compiler.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/TelemetrySink.h"
#include "support/Trace.h"
#include "vm/Calibration.h"

#include <cmath>
#include <cstdint>
#include <utility>

using namespace parcs;
using namespace parcs::scoopp;

bool ObjectManager::shouldAgglomerate(const std::string &ClassName) const {
  const GrainPolicy &Grain = Runtime.config().Grain;
  if (Grain.AgglomerateObjects)
    return true;
  if (!Grain.Adaptive)
    return false;
  // Adaptive rule (after [9]): once the class is known to be fine-grained
  // (average method execution below the threshold), stop exporting new
  // instances -- excess parallelism is being removed.
  auto It = Grains.find(ClassName);
  if (It == Grains.end() || !It->second.hasData())
    return false;
  return It->second.average() < Grain.SmallGrainThreshold;
}

int ObjectManager::aggregationFactor(const std::string &ClassName) const {
  const GrainPolicy &Grain = Runtime.config().Grain;
  if (!Grain.Adaptive)
    return Grain.MaxCallsPerMessage;
  auto It = Grains.find(ClassName);
  if (It == Grains.end() || !It->second.hasData())
    return 1;
  sim::SimTime Avg = It->second.average();
  if (Avg >= Grain.SmallGrainThreshold)
    return 1;
  // Pack enough calls that one packed message amortises to the threshold,
  // bounded by the configured maximum.
  double Ratio = Grain.SmallGrainThreshold.toSecondsF() /
                 std::max(Avg.toSecondsF(), 1e-9);
  int Factor = static_cast<int>(std::ceil(Ratio));
  if (Factor < 1)
    Factor = 1;
  if (Factor > Grain.MaxCallsPerMessage)
    Factor = Grain.MaxCallsPerMessage;
  return Factor;
}

int ObjectManager::loadMetric() const {
  return Hosted +
         static_cast<int>(Runtime.endpoint(NodeId).dispatchPool().queueDepth());
}

sim::Task<int> ObjectManager::probeLoad(int Peer, int Fallback) {
  remoting::RemoteHandle Handle(Runtime.endpoint(NodeId), Peer,
                                Runtime.config().Port, ScooppRuntime::OmName);
  ErrorOr<int32_t> Load = co_await Handle.invokeTyped<int32_t>("getLoad");
  if (!Load) {
    if (ScooppRuntime::transportError(Load.error().code()))
      Runtime.noteCallOutcome(Peer, false);
    co_return Fallback;
  }
  Runtime.noteCallOutcome(Peer, true);
  co_return *Load;
}

sim::Task<int> ObjectManager::placeObject(std::string ClassName) {
  (void)ClassName; // Placement is currently class-independent.
  metrics::Registry::global().counter("om.placements").add(1);
  int Nodes = Runtime.nodeCount();
  // Partition-aware accounting: a placement whose target lives on another
  // PDES partition turns every future call into cross-partition mail, so
  // the ratio is the knob-tuning signal for partition maps.
  auto Chose = [&](int Node) {
    if (Runtime.cluster().partitionOf(Node) !=
        Runtime.cluster().partitionOf(NodeId))
      metrics::Registry::global()
          .counter("om.placements_cross_partition")
          .add(1);
    return Node;
  };
  // Failure awareness: a node the health tracker marked down is skipped,
  // and so is one the backpressure tracker marked saturated -- handing a
  // new object to a node actively refusing work only deepens its backlog
  // (our own node always counts as a candidate: local degradation beats
  // shipping work into a black hole, and all-saturated clusters degrade
  // fail-static to local placement the same way).  In a healthy cluster
  // the first candidate always passes, so the fault-free decisions --
  // including the rng draw sequence -- are exactly the legacy ones.
  auto Usable = [&](int Node) {
    if (Node == NodeId)
      return true;
    if (!Runtime.nodeHealthy(Node))
      return false;
    if (Runtime.nodeSaturated(Node)) {
      metrics::Registry::global().counter("om.creations_deferred").add(1);
      return false;
    }
    return true;
  };
  auto degraded = [&] {
    metrics::Registry::global().counter("om.placements_degraded").add(1);
    return NodeId;
  };
  switch (Runtime.config().Placement) {
  case PlacementPolicy::RoundRobin: {
    int Candidate = (NodeId + 1 + NextPlacement++ % Nodes) % Nodes;
    for (int Step = 0; Step < Nodes; ++Step) {
      if (Usable(Candidate))
        co_return Chose(Candidate);
      Candidate = (Candidate + 1) % Nodes;
    }
    co_return degraded();
  }
  case PlacementPolicy::Random: {
    int Pick = static_cast<int>(
        Runtime.rng().nextBelow(static_cast<uint64_t>(Nodes)));
    if (Usable(Pick))
      co_return Chose(Pick);
    std::vector<int> Alive;
    for (int Node = 0; Node < Nodes; ++Node)
      if (Usable(Node))
        Alive.push_back(Node);
    if (Alive.empty())
      co_return degraded();
    co_return Chose(Alive[Runtime.rng().nextBelow(Alive.size())]);
  }
  case PlacementPolicy::LocalOnly:
    co_return NodeId;
  case PlacementPolicy::LeastLoaded: {
    // Cooperate with peer OMs: small getLoad RPCs, self answered locally.
    int Best = NodeId;
    int BestLoad = loadMetric();
    for (int Peer = 0; Peer < Nodes; ++Peer) {
      if (Peer == NodeId || !Usable(Peer))
        continue;
      remoting::RemoteHandle Handle(Runtime.endpoint(NodeId), Peer,
                                    Runtime.config().Port,
                                    ScooppRuntime::OmName);
      ErrorOr<int32_t> Load =
          co_await Handle.invokeTyped<int32_t>("getLoad");
      if (!Load) {
        if (ScooppRuntime::transportError(Load.error().code()))
          Runtime.noteCallOutcome(Peer, false);
        continue; // Unreachable peers are simply skipped.
      }
      Runtime.noteCallOutcome(Peer, true);
      if (*Load < BestLoad || (*Load == BestLoad && Peer < Best)) {
        Best = Peer;
        BestLoad = *Load;
      }
    }
    co_return Chose(Best);
  }
  case PlacementPolicy::PowerOfTwoChoices: {
    // ROADMAP A4: O(1) probes instead of the O(nodes) LeastLoaded poll.
    // Two distinct seeded draws over the healthy peers (self included as a
    // free candidate -- its load needs no RPC); ties go to the lower node
    // id so the pick is a pure function of the draws and the loads.
    std::vector<int> Alive;
    for (int Node = 0; Node < Nodes; ++Node)
      if (Usable(Node))
        Alive.push_back(Node);
    if (Alive.empty())
      co_return degraded();
    int A = Alive[Runtime.rng().nextBelow(Alive.size())];
    int B = Alive[Runtime.rng().nextBelow(Alive.size())];
    if (A == B && Alive.size() > 1) {
      // Resample the second candidate until distinct: with two or more
      // candidates the draw sequence stays deterministic and terminates.
      while (B == A)
        B = Alive[Runtime.rng().nextBelow(Alive.size())];
    }
    if (A == B)
      co_return Chose(A);
    if (A > B)
      std::swap(A, B);
    int LoadA = A == NodeId ? loadMetric() : co_await probeLoad(A, INT32_MAX);
    int LoadB = B == NodeId ? loadMetric() : co_await probeLoad(B, INT32_MAX);
    if (LoadA == INT32_MAX && LoadB == INT32_MAX)
      co_return degraded();
    co_return Chose(LoadB < LoadA ? B : A);
  }
  }
  PARCS_UNREACHABLE("unhandled PlacementPolicy");
}

sim::Task<ErrorOr<ParallelRef>> ObjectManager::migrate(std::string Name,
                                                       int DstNode) {
  // Deliberately no cached endpoint/node references here: the protocol
  // suspends many times, so every layer is re-acquired through Runtime
  // after each resumption (the suspension-ref lint rule enforces this).
  if (DstNode < 0 || DstNode >= Runtime.nodeCount() || DstNode == NodeId)
    co_return Error(ErrorCode::InvalidArgument,
                    "migrate: bad destination node " +
                        std::to_string(DstNode));
  std::shared_ptr<CallHandler> Target =
      Runtime.endpoint(NodeId).findPublished(Name);
  if (!Target)
    co_return Error(ErrorCode::UnknownObject,
                    "migrate: no object published as '" + Name + "'");
  // Keeping the shared_ptr alive across the whole protocol matters: the
  // cutover unpublishes the name, and the adapter must not die (releasing
  // its OM accounting) until the state snapshot has safely left.
  auto *Adapter = dynamic_cast<ImplAdapter *>(Target.get());
  if (!Adapter)
    co_return Error(ErrorCode::InvalidArgument,
                    "migrate: '" + Name + "' is not a parallel object");
  if (Runtime.endpoint(NodeId).isParked(Name))
    co_return Error(ErrorCode::InvalidArgument,
                    "migrate: '" + Name + "' is already migrating");

  // The liveness epoch pins this migration to one incarnation of the
  // source node: any crash/restart underneath us is detected at the next
  // suspension point and aborts the move (the restart hook has already
  // dropped the park and the parked calls; client retries re-execute them
  // through the wiped dedup entries -- standard crash recovery).
  uint64_t Epoch = Runtime.cluster().node(NodeId).epoch();
  metrics::Registry::global().counter("om.migrations_started").add(1);
  trace::instant(NodeId, 0, "om.migrate.begin",
                 Runtime.sim().now().nanosecondsCount());

  auto Died = [this, Epoch] {
    vm::Node &Src = Runtime.cluster().node(NodeId);
    return !Src.alive() || Src.epoch() != Epoch;
  };
  auto Abort = [&](Error E) {
    metrics::Registry::global().counter("om.migrations_aborted").add(1);
    trace::instant(NodeId, 0, "om.migrate.abort",
                   Runtime.sim().now().nanosecondsCount());
    if (!Died())
      Runtime.endpoint(NodeId).cancelPark(Name);
    return E;
  };

  // 1. Park the mailbox: from here, arriving calls queue behind the move
  //    instead of executing.
  Runtime.endpoint(NodeId).parkName(Name);

  // 2. Drain calls already executing (the active-object lock means at most
  //    one runs the user method, but the adapter may hold several in its
  //    lock queue): deterministic fixed-step poll on virtual time.
  while (Runtime.endpoint(NodeId).inFlight(Name) > 0) {
    co_await Runtime.sim().delay(sim::SimTime::microseconds(10));
    if (Died())
      co_return Abort(Error(ErrorCode::ConnectionFailed,
                            "migrate: source crashed during drain"));
  }

  // 3. Snapshot the object's state through the serial layer, paying a
  //    size-proportional serialization cost.
  serial::OutputArchive State;
  Adapter->saveState(State);
  Bytes StateBytes = State.take();
  if (!co_await Runtime.cluster().node(NodeId).computeChecked(
          sim::SimTime::microseconds(5) +
          sim::SimTime::fromSecondsF(2e-9 *
                                     static_cast<double>(StateBytes.size()))))
    co_return Abort(Error(ErrorCode::ConnectionFailed,
                          "migrate: source crashed during snapshot"));

  // 4. Adopt at the destination: reliable call (retries ride the existing
  //    machinery) to its factory, which instantiates the class and
  //    hydrates it from the snapshot before replying with the new name.
  ErrorOr<Bytes> Raw = co_await Runtime.endpoint(NodeId).callReliable(
      DstNode, Runtime.config().Port, ScooppRuntime::FactoryName,
      "create_migrated",
      serial::encodeValues(Adapter->className(), StateBytes));
  if (Died())
    co_return Abort(Error(ErrorCode::ConnectionFailed,
                          "migrate: source crashed during handoff"));
  if (!Raw) {
    if (ScooppRuntime::transportError(Raw.error().code()))
      Runtime.noteCallOutcome(DstNode, false);
    else if (Raw.error().code() == ErrorCode::Overloaded)
      Runtime.noteOverloaded(DstNode);
    co_return Abort(Raw.error());
  }
  Runtime.noteCallOutcome(DstNode, true);
  std::string NewName;
  if (!serial::decodeValues(*Raw, NewName))
    co_return Abort(
        Error(ErrorCode::MalformedMessage, "create_migrated reply"));

  // 5. Atomic cutover (no suspension): tombstone + parked-call replay,
  //    unpublish the source copy, bump the URI route.  Stragglers that
  //    raced the cutover hit the tombstone and are forwarded; proxies
  //    refresh their refs through the route table on their next call.
  RpcEndpoint &Src = Runtime.endpoint(NodeId);
  Src.completeMove(Name, RpcEndpoint::MovedRoute{
                             DstNode, Runtime.config().Port, NewName});
  Src.unpublish(Name);
  Runtime.noteMigrated(ParallelRef{NodeId, Name},
                       ParallelRef{DstNode, NewName});
  int64_t DoneNs = Runtime.sim().now().nanosecondsCount();
  metrics::Registry::global().counter("om.migrations").add(1);
  trace::instant(NodeId, 0, "om.migrate.done", DoneNs);
  telemetry::count(NodeId, "om.migrations", DoneNs);
  co_return ParallelRef{DstNode, std::move(NewName)};
}

sim::Task<ErrorOr<Bytes>> ObjectManager::handleCall(std::string_view Method,
                                                    const Bytes &Args) {
  (void)Args;
  // Runs before any suspension (Task is lazy), so the dispatcher's
  // handoff slot is still ours to claim.
  uint64_t DispatchCtx = trace::takeHandoff();
  if (Method == "getLoad") {
    sim::Simulator &Sim = Runtime.cluster().node(NodeId).sim();
    int64_t StartNs = Sim.now().nanosecondsCount();
    co_await Runtime.cluster().node(NodeId).compute(
        sim::SimTime::microseconds(2));
    if (trace::enabled()) {
      uint64_t LoadCtx = trace::mintCausalId();
      trace::completeCtx(NodeId, 0, "om.get_load", StartNs,
                         Sim.now().nanosecondsCount() - StartNs, LoadCtx,
                         DispatchCtx);
    }
    co_return serial::encodeValues(static_cast<int32_t>(loadMetric()));
  }
  co_return Error(ErrorCode::UnknownMethod, std::string(Method));
}
