//===- core/Proxy.h - PO base class ------------------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProxyBase is the PO (proxy object) of the paper: "A PO represents a
/// local or a remote parallel object and has the same interface as the
/// object it represents.  It transparently replaces remote parallel
/// objects and forwards all method invocations to the remote parallel
/// object implementation."  Generated proxy classes (parcgen output, or
/// hand-written equivalents) derive from it and add one typed method per
/// user method.
///
/// create() reproduces Fig. 5's generated constructor: consult the OM;
/// either create the IO locally (object agglomeration, call d in Fig. 3)
/// or ask the OM for a host and request creation from that node's remote
/// factory (calls c in Fig. 3).
///
/// invokeAsync() reproduces Fig. 4/7: an asynchronous (delegate-style)
/// invocation that, under method-call aggregation, is buffered and later
/// shipped as one packed message.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_PROXY_H
#define PARCS_CORE_PROXY_H

#include "core/ImplAdapter.h"
#include "core/Scoopp.h"

#include <map>
#include <vector>

namespace parcs::scoopp {

/// Base of all generated proxy (PO) classes.
class ProxyBase {
public:
  /// A proxy living on \p HomeNode (the node whose OM it consults and
  /// whose endpoint it calls through).
  ProxyBase(ScooppRuntime &Runtime, int HomeNode);
  virtual ~ProxyBase();

  ScooppRuntime &runtime() { return Runtime; }
  int homeNode() const { return Home; }
  vm::Node &node();

  /// True once create()/bind() succeeded.
  bool created() const { return Ref.valid(); }
  /// True when the implementation lives on the home node and calls are
  /// intra-grain.
  bool isLocal() const { return Local != nullptr; }
  const ParallelRef &ref() const { return Ref; }
  const std::string &className() const { return Class; }

  /// The generated constructor body: creates the IO (locally or remotely)
  /// per the OM's grain/placement decisions.
  sim::Task<Error> create(std::string ClassName);

  /// Attaches this proxy to an existing parallel object (a received
  /// ParallelRef).  Calls become remote unless the ref is home-hosted.
  void bind(std::string ClassName, ParallelRef ExistingRef);

  /// Asynchronous (void) method invocation; may be buffered for
  /// aggregation.  Completion of the returned task means "accepted", not
  /// "executed" (fire-and-forget, like a delegate BeginInvoke without
  /// EndInvoke).
  sim::Task<void> invokeAsync(std::string Method, Bytes Args);

  /// Synchronous method invocation (a value is returned).  Flushes any
  /// buffered calls for this object first, preserving program order.
  sim::Task<ErrorOr<Bytes>> invokeSync(std::string Method, Bytes Args);

  /// Typed wrapper over invokeSync.
  template <typename Ret, typename... Args>
  sim::Task<ErrorOr<Ret>> invokeSyncTyped(std::string Method,
                                          const Args &...CallArgs) {
    return invokeSyncTypedImpl<Ret>(this, std::move(Method),
                                    serial::encodeValues(CallArgs...));
  }

  /// Ships any buffered aggregated calls immediately.
  sim::Task<void> flush();

  /// Destroys the implementation object (the ParC++ semantics the paper
  /// contrasts with .Net-managed lifetime: "the PO always destroys a
  /// local IO; non-local objects are destroyed by the RTS, upon a request
  /// from the PO").  Buffered calls are flushed first; afterwards the
  /// proxy is unusable and other references to the object fault.
  sim::Task<Error> destroy();

  /// Buffered (not yet shipped) aggregated calls.
  size_t pendingCalls() const;

private:
  template <typename Ret>
  static sim::Task<ErrorOr<Ret>>
  invokeSyncTypedImpl(ProxyBase *Self, std::string Method, Bytes Encoded) {
    ErrorOr<Bytes> Raw =
        co_await Self->invokeSync(std::move(Method), std::move(Encoded));
    if (!Raw)
      co_return Raw.error();
    Ret Value{};
    if (!serial::decodeValues(*Raw, Value))
      co_return Error(ErrorCode::MalformedMessage,
                      "result bytes did not decode");
    co_return Value;
  }

  sim::Task<void> shipPacked(std::string Method,
                             std::vector<BufferedCall> Calls);
  remoting::RemoteHandle remoteHandle();
  /// Trace/metrics record of one agglomerate-vs-parallel grain decision.
  void recordCreateDecision(bool Agglomerated);

  ScooppRuntime &Runtime;
  int Home;
  std::string Class;
  ParallelRef Ref;
  /// Non-null when the IO is local (direct dispatch path).
  std::shared_ptr<CallHandler> Local;
  /// Aggregation buffers, one per method, in insertion order per method.
  /// Each buffered call keeps the causal id minted at its invokeAsync, so
  /// aggregation never collapses causality.
  std::map<std::string, std::vector<BufferedCall>> PendingByMethod;
  /// Methods in first-buffered order, so flush preserves program order
  /// across methods.
  std::vector<std::string> PendingOrder;
};

} // namespace parcs::scoopp

#endif // PARCS_CORE_PROXY_H
