//===- core/Scoopp.h - The ParC#/SCOOPP runtime -----------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: ParC#, an implementation of SCOOPP
/// (Scalable Object Oriented Parallel Programming) on top of the remoting
/// stack.  Section 3's structure maps to this module as follows:
///
///  - *parallel objects* (active objects): a user class is split by the
///    preprocessor (parcgen, or by hand) into a PO class deriving from
///    ProxyBase and an IO class implementing remoting::CallHandler;
///  - *PO (proxy object)*: ProxyBase -- forwards inter-grain calls through
///    remoting and short-circuits intra-grain calls to the local IO;
///    carries the method-call aggregation buffers (Fig. 7);
///  - *IO (implementation object)*: the user implementation wrapped in
///    ImplAdapter, which adds packed-call ("processN") handling and
///    reports grain execution times to the OM;
///  - *SO (server objects)*: the paper notes C# remoting subsumes them --
///    here the RpcEndpoint dispatch loop plays that role;
///  - *OM (object manager)*: one per node; performs placement (load
///    balancing) and grain-size adaptation decisions;
///  - *object factory* (Fig. 6): one per node, published as a well-known
///    object; instantiates IOs on request and returns their names.
///
/// Grain-size adaptation (Section 3.1):
///  - method call aggregation: asynchronous calls are buffered per method
///    and shipped as one packed message;
///  - object agglomeration: new parallel objects are created locally so
///    their calls execute synchronously and serially.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_SCOOPP_H
#define PARCS_CORE_SCOOPP_H

#include "net/Network.h"
#include "remoting/Engine.h"
#include "remoting/Remoting.h"
#include "support/Random.h"
#include "vm/Cluster.h"

#include <map>
#include <memory>
#include <string>

namespace parcs::scoopp {

using remoting::Bytes;
using remoting::CallHandler;
using remoting::RpcEndpoint;

class ObjectManager;
class ScooppRuntime;

//===----------------------------------------------------------------------===//
// Class registry (what the preprocessor discovered)
//===----------------------------------------------------------------------===//

/// Everything the runtime needs to know about one parallel class.
struct ParallelClassInfo {
  std::string Name;
  /// Creates the implementation object (IO) on \p Host.  The runtime is
  /// passed so implementations can themselves create parallel objects
  /// (e.g. a pipeline stage creating its successor).
  std::function<std::shared_ptr<CallHandler>(ScooppRuntime &Runtime,
                                             vm::Node &Host)>
      MakeImpl;
};

/// Registry of parallel classes, normally filled by parcgen-generated
/// registration functions before the runtime boots.
class ParallelClassRegistry {
public:
  void registerClass(ParallelClassInfo Info) {
    assert(!Info.Name.empty() && Info.MakeImpl && "incomplete class info");
    Classes[Info.Name] = std::move(Info);
  }
  const ParallelClassInfo *lookup(const std::string &Name) const {
    auto It = Classes.find(Name);
    return It == Classes.end() ? nullptr : &It->second;
  }
  size_t size() const { return Classes.size(); }

private:
  std::map<std::string, ParallelClassInfo> Classes;
};

//===----------------------------------------------------------------------===//
// Policies
//===----------------------------------------------------------------------===//

/// Where newly created parallel objects are placed.
enum class PlacementPolicy {
  RoundRobin,  ///< Cycle over the nodes (the default farm behaviour).
  LeastLoaded, ///< Query every OM's load and pick the minimum.
  Random,      ///< Uniform random node (seeded, deterministic).
  LocalOnly,   ///< Always the creator's node (degenerate/testing).
  /// "Power of two choices": sample two distinct random candidates, query
  /// only their loads, place on the less loaded.  O(1) probes per creation
  /// instead of LeastLoaded's O(nodes) poll, with near-optimal balance
  /// (Mitzenmacher); the scalable default for large clusters.
  PowerOfTwoChoices,
};

/// Grain-size adaptation parameters (Section 3.1 / [9]).
struct GrainPolicy {
  /// Calls packed per aggregate message ("maxCalls" in Fig. 7); 1 turns
  /// aggregation off.
  int MaxCallsPerMessage = 1;
  /// Statically force object agglomeration (all creations local).
  bool AgglomerateObjects = false;
  /// Enable run-time adaptation: classes whose average method execution
  /// time falls below SmallGrainThreshold get their calls aggregated (up
  /// to MaxCallsPerMessage) and new instances agglomerated.
  bool Adaptive = false;
  sim::SimTime SmallGrainThreshold = sim::SimTime::microseconds(500);
};

/// Runtime configuration.
struct ScooppConfig {
  remoting::StackKind Stack = remoting::StackKind::MonoRemotingTcp117;
  int Port = 1050;
  GrainPolicy Grain;
  PlacementPolicy Placement = PlacementPolicy::RoundRobin;
  /// Per-endpoint dispatch worker cap (0 = the VM's thread-pool cap).
  int DispatchWorkers = 0;
  uint64_t Seed = 1;
  /// Retry policy installed on every endpoint (disabled by default, which
  /// leaves the fault-free event stream untouched).  Enable it when a
  /// FaultPlan is in play so proxies survive loss and crashes.
  remoting::RetryPolicy Retry;
  /// Consecutive transport failures against one node before the runtime
  /// marks it down and steers placement away from it.
  int NodeFailureThreshold = 2;
  /// Admission budget installed on every endpoint (disabled by default:
  /// the fault-free wire bytes and event stream stay exactly legacy).
  /// Enable it under open-loop load so saturated nodes refuse work with a
  /// retry-after hint instead of queueing without bound.
  remoting::AdmissionPolicy Admission;
  /// How long one Overloaded refusal keeps a node marked saturated for
  /// placement purposes (virtual time, so the mark ages deterministically).
  /// A successful call clears it early.
  sim::SimTime SaturationTtl = sim::SimTime::milliseconds(2);
};

//===----------------------------------------------------------------------===//
// Parallel object references
//===----------------------------------------------------------------------===//

/// A location-transparent reference to a parallel object: the paper allows
/// such references to be copied and sent as method arguments.  Always
/// (node, published name); local objects are also published so their refs
/// stay valid remotely.
struct ParallelRef {
  int Node = -1;
  std::string Name;

  bool valid() const { return Node >= 0 && !Name.empty(); }

  void encode(serial::OutputArchive &Out) const {
    Out.write(static_cast<int32_t>(Node));
    Out.write(Name);
  }
  static bool decode(serial::InputArchive &In, ParallelRef &Out) {
    int32_t Node = 0;
    if (!In.read(Node) || !In.read(Out.Name))
      return false;
    Out.Node = Node;
    return true;
  }
  /// Ref packed as call-argument bytes.
  Bytes toBytes() const {
    serial::OutputArchive Out;
    encode(Out);
    return Out.take();
  }
  static bool fromBytes(const Bytes &Data, ParallelRef &Out) {
    serial::InputArchive In(Data);
    return decode(In, Out) && In.atEnd();
  }

  friend bool operator==(const ParallelRef &A, const ParallelRef &B) {
    return A.Node == B.Node && A.Name == B.Name;
  }
};

//===----------------------------------------------------------------------===//
// Runtime
//===----------------------------------------------------------------------===//

/// Counters used by the experiments.
struct ScooppStats {
  uint64_t RemoteCreations = 0;
  uint64_t LocalCreations = 0; ///< Agglomerated objects.
  uint64_t RemoteSyncCalls = 0;
  uint64_t RemoteAsyncCalls = 0;
  uint64_t LocalCalls = 0; ///< Intra-grain (direct) calls.
  uint64_t PackedMessages = 0;
  uint64_t PackedCalls = 0; ///< Calls shipped inside packed messages.
};

/// Boots one ParC# runtime over an existing cluster + network: per node an
/// RpcEndpoint, an ObjectManager and an object factory.
class ScooppRuntime {
public:
  ScooppRuntime(vm::Cluster &Cluster, net::Network &Net,
                ParallelClassRegistry Registry,
                ScooppConfig Config = ScooppConfig());
  ~ScooppRuntime();
  ScooppRuntime(const ScooppRuntime &) = delete;
  ScooppRuntime &operator=(const ScooppRuntime &) = delete;

  vm::Cluster &cluster() { return Cluster; }
  sim::Simulator &sim() { return Cluster.sim(); }
  int nodeCount() const { return Cluster.nodeCount(); }
  const ScooppConfig &config() const { return Config; }
  const ParallelClassRegistry &registry() const { return Registry; }

  RpcEndpoint &endpoint(int Node);
  ObjectManager &om(int Node);

  /// Instantiates an IO of \p ClassName on \p Node: builds the user impl,
  /// wraps it in ImplAdapter, publishes it under a fresh unique name and
  /// returns (published name, handler).  Used by the per-node factories
  /// and by the proxy's agglomerated-creation path.
  ErrorOr<std::pair<std::string, std::shared_ptr<CallHandler>>>
  instantiateImpl(int Node, const std::string &ClassName);

  ScooppStats &stats() { return Stats; }
  const ScooppStats &stats() const { return Stats; }
  Rng &rng() { return Random; }

  //===--------------------------------------------------------------------===//
  // Node health (failure-aware placement)
  //===--------------------------------------------------------------------===//

  /// True for an error code that indicates the transport (not the remote
  /// method) failed -- the signal node-health tracking keys off.
  static bool transportError(ErrorCode Code) {
    return Code == ErrorCode::TimedOut ||
           Code == ErrorCode::ConnectionFailed ||
           Code == ErrorCode::ChecksumMismatch;
  }

  /// False once \p Node accumulated NodeFailureThreshold consecutive
  /// transport failures (and no success since); placement avoids
  /// unhealthy nodes and proxies fail over.
  bool nodeHealthy(int Node) const {
    return Node < 0 || Node >= static_cast<int>(Down.size()) || !Down[Node];
  }

  /// Feeds one RPC outcome against \p Node into the health tracker.  A
  /// success clears the failure streak (and resurrects a down node).
  void noteCallOutcome(int Node, bool Ok);

  //===--------------------------------------------------------------------===//
  // Backpressure (overload-aware placement)
  //===--------------------------------------------------------------------===//

  /// Feeds an Overloaded refusal observed against \p Node into the
  /// backpressure tracker: bumps the om.calls_shed counter and marks the
  /// node saturated for SaturationTtl of virtual time, steering placement
  /// away from it.  Distinct from noteCallOutcome -- an overloaded node is
  /// alive (it answered), just refusing work.
  void noteOverloaded(int Node);

  /// True while \p Node is within SaturationTtl of its last Overloaded
  /// refusal (and no success against it since).  Placement and failover
  /// skip saturated nodes; when every candidate is saturated the runtime
  /// degrades fail-static to local placement.
  bool nodeSaturated(int Node) const;

  //===--------------------------------------------------------------------===//
  // URI routes (live migration's location service)
  //===--------------------------------------------------------------------===//

  /// Records that the object published as \p From now lives at \p To
  /// (called at migration cutover).  Existing chains through \p From are
  /// collapsed so every lookup stays one hop.
  void noteMigrated(const ParallelRef &From, const ParallelRef &To);

  /// Follows the route table: the current home of \p Ref (identity when
  /// it never migrated).  Proxies refresh their cached refs through this,
  /// which is how callers never observe a move.
  ParallelRef resolveRoute(const ParallelRef &Ref) const;

  /// Name under which each node's factory is published ("factory.soap" in
  /// the paper's Fig. 5/6).
  static constexpr const char *FactoryName = "__scoopp_factory";
  static constexpr const char *OmName = "__scoopp_om";

private:
  vm::Cluster &Cluster;
  net::Network &Net;
  ParallelClassRegistry Registry;
  ScooppConfig Config;
  std::vector<std::unique_ptr<RpcEndpoint>> Endpoints;
  std::vector<std::shared_ptr<ObjectManager>> Oms;
  /// Per-node counters for unique IO names.
  std::vector<uint64_t> NextImplId;
  /// Health tracking: consecutive transport failures per node, and the
  /// down flags derived from them.
  std::vector<int> FailStreak;
  std::vector<uint8_t> Down;
  /// Backpressure: sim time of the last Overloaded refusal per node
  /// (-1 = never / cleared by a success).
  std::vector<int64_t> SaturatedAtNs;
  /// Migration route table: origin (node, name) -> current home.
  std::map<std::pair<int, std::string>, ParallelRef> Routes;
  ScooppStats Stats;
  Rng Random;
};

} // namespace parcs::scoopp

#endif // PARCS_CORE_SCOOPP_H
