//===- core/Runtime.cpp - ScooppRuntime boot ------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/ImplAdapter.h"
#include "core/ObjectManager.h"
#include "core/Scoopp.h"

#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace parcs;
using namespace parcs::scoopp;

namespace {

/// The per-node object factory of Fig. 6: instantiates IOs at request and
/// returns their published names.  Registered in the "boot code of each
/// node" (the runtime constructor).
class FactoryHandler : public CallHandler {
public:
  FactoryHandler(ScooppRuntime &Runtime, int NodeId)
      : Runtime(Runtime), NodeId(NodeId) {}

  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override {
    // Runs before any suspension, while the dispatcher's handoff slot is
    // still ours (Task is lazy).
    uint64_t DispatchCtx = trace::takeHandoff();
    if (Method == "create") {
      std::string ClassName;
      if (!serial::decodeValues(Args, ClassName))
        co_return Error(ErrorCode::MalformedMessage, "create args");
      sim::Simulator &Sim = Runtime.cluster().node(NodeId).sim();
      int64_t StartNs = Sim.now().nanosecondsCount();
      // Object construction cost on the hosting node.
      co_await Runtime.cluster().node(NodeId).computeWork(
          vm::WorkKind::Allocation, sim::SimTime::microseconds(10));
      auto Made = Runtime.instantiateImpl(NodeId, ClassName);
      if (!Made)
        co_return Made.error();
      if (trace::enabled()) {
        uint64_t CreateCtx = trace::mintCausalId();
        trace::completeCtx(NodeId, 0, "scoopp.factory_create", StartNs,
                           Sim.now().nanosecondsCount() - StartNs, CreateCtx,
                           DispatchCtx);
      }
      co_return serial::encodeValues(Made->first);
    }
    if (Method == "create_migrated") {
      // Adoption half of a live migration: instantiate the class here and
      // hydrate it from the source's state snapshot before the first
      // forwarded call can arrive (the source only cuts over after this
      // reply, so ordering is safe by construction).
      std::string ClassName;
      Bytes State;
      if (!serial::decodeValues(Args, ClassName, State))
        co_return Error(ErrorCode::MalformedMessage, "create_migrated args");
      sim::Simulator &Sim = Runtime.cluster().node(NodeId).sim();
      int64_t StartNs = Sim.now().nanosecondsCount();
      co_await Runtime.cluster().node(NodeId).computeWork(
          vm::WorkKind::Allocation, sim::SimTime::microseconds(10));
      auto Made = Runtime.instantiateImpl(NodeId, ClassName);
      if (!Made)
        co_return Made.error();
      serial::InputArchive In(State);
      if (!Made->second->restoreState(In)) {
        Runtime.endpoint(NodeId).unpublish(Made->first);
        co_return Error(ErrorCode::MalformedMessage,
                        "create_migrated: state snapshot did not decode");
      }
      if (trace::enabled()) {
        uint64_t AdoptCtx = trace::mintCausalId();
        trace::completeCtx(NodeId, 0, "scoopp.factory_adopt", StartNs,
                           Sim.now().nanosecondsCount() - StartNs, AdoptCtx,
                           DispatchCtx);
      }
      co_return serial::encodeValues(Made->first);
    }
    if (Method == "destroy") {
      std::string ObjectName;
      if (!serial::decodeValues(Args, ObjectName))
        co_return Error(ErrorCode::MalformedMessage, "destroy args");
      if (!Runtime.endpoint(NodeId).unpublish(ObjectName))
        co_return Error(ErrorCode::UnknownObject,
                        "no such object: " + ObjectName);
      co_return serial::encodeValues(Unit());
    }
    co_return Error(ErrorCode::UnknownMethod, std::string(Method));
  }

private:
  ScooppRuntime &Runtime;
  int NodeId;
};

} // namespace

ScooppRuntime::ScooppRuntime(vm::Cluster &Cluster, net::Network &Net,
                             ParallelClassRegistry Registry,
                             ScooppConfig Config)
    : Cluster(Cluster), Net(Net), Registry(std::move(Registry)),
      Config(Config), Random(Config.Seed) {
  int Nodes = Cluster.nodeCount();
  NextImplId.assign(static_cast<size_t>(Nodes), 0);
  FailStreak.assign(static_cast<size_t>(Nodes), 0);
  Down.assign(static_cast<size_t>(Nodes), 0);
  SaturatedAtNs.assign(static_cast<size_t>(Nodes), -1);
  Endpoints.reserve(static_cast<size_t>(Nodes));
  Oms.reserve(static_cast<size_t>(Nodes));
  // Boot order matches the paper: "The application entry code creates one
  // instance of the OM on each processing node" and factories are
  // "automatically registered in the boot code of each node".
  for (int I = 0; I < Nodes; ++I) {
    Endpoints.push_back(std::make_unique<RpcEndpoint>(
        Cluster.node(I), Net, remoting::stackProfile(Config.Stack),
        Config.Port, Config.DispatchWorkers));
    if (Config.Retry.enabled())
      Endpoints.back()->setRetryPolicy(Config.Retry);
    if (Config.Admission.enabled())
      Endpoints.back()->setAdmissionPolicy(Config.Admission);
    auto Om = std::make_shared<ObjectManager>(*this, I);
    Oms.push_back(Om);
    Endpoints.back()->publish(OmName, Om);
    Endpoints.back()->publish(FactoryName,
                              std::make_shared<FactoryHandler>(*this, I));
  }
}

ScooppRuntime::~ScooppRuntime() {
  // Coroutine frames parked forever by node crashes hold references into
  // runtime-owned state (an ImplAdapter's ~dtor notifies its OM); destroy
  // them now, while every layer they can reference is still alive, instead
  // of leaving them to ~Simulator after this runtime is gone.
  Cluster.sim().reapDetached();
  // Fold the SCOOPP decision counters into the end-of-run report.
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter("scoopp.local_creations").add(Stats.LocalCreations);
  Reg.counter("scoopp.remote_creations").add(Stats.RemoteCreations);
  Reg.counter("scoopp.local_calls").add(Stats.LocalCalls);
  Reg.counter("scoopp.remote_sync_calls").add(Stats.RemoteSyncCalls);
  Reg.counter("scoopp.remote_async_calls").add(Stats.RemoteAsyncCalls);
  Reg.counter("scoopp.packed_messages").add(Stats.PackedMessages);
  Reg.counter("scoopp.packed_calls").add(Stats.PackedCalls);
}

void ScooppRuntime::noteCallOutcome(int Node, bool Ok) {
  if (Node < 0 || Node >= static_cast<int>(Down.size()))
    return;
  size_t Idx = static_cast<size_t>(Node);
  if (Ok) {
    FailStreak[Idx] = 0;
    // A successful call is the freshest load signal there is: it clears
    // any saturation mark early.
    SaturatedAtNs[Idx] = -1;
    if (Down[Idx]) {
      Down[Idx] = 0;
      metrics::Registry::global().counter("om.node_up").add(1);
      trace::instant(Node, 0, "om.node_up",
                     sim().now().nanosecondsCount());
      PARCS_LOG(Info, "scoopp: node " << Node << " is healthy again");
    }
    return;
  }
  if (Down[Idx])
    return;
  if (++FailStreak[Idx] >= Config.NodeFailureThreshold) {
    Down[Idx] = 1;
    metrics::Registry::global().counter("om.node_down").add(1);
    trace::instant(Node, 0, "om.node_down",
                   sim().now().nanosecondsCount());
    PARCS_LOG(Warn, "scoopp: node " << Node << " marked down after "
                                    << FailStreak[Idx]
                                    << " transport failures");
  }
}

void ScooppRuntime::noteOverloaded(int Node) {
  if (Node < 0 || Node >= static_cast<int>(SaturatedAtNs.size()))
    return;
  // The deterministic load-shed residue the experiments read.
  metrics::Registry::global().counter("om.calls_shed").add(1);
  int64_t NowNs = sim().now().nanosecondsCount();
  if (!nodeSaturated(Node)) {
    metrics::Registry::global().counter("om.node_saturated").add(1);
    trace::instant(Node, 0, "om.node_saturated", NowNs);
    PARCS_LOG(Info, "scoopp: node " << Node
                                    << " saturated (admission refusals)");
  }
  SaturatedAtNs[static_cast<size_t>(Node)] = NowNs;
}

bool ScooppRuntime::nodeSaturated(int Node) const {
  if (Node < 0 || Node >= static_cast<int>(SaturatedAtNs.size()))
    return false;
  int64_t At = SaturatedAtNs[static_cast<size_t>(Node)];
  if (At < 0)
    return false;
  return Cluster.sim().now().nanosecondsCount() - At <=
         Config.SaturationTtl.nanosecondsCount();
}

void ScooppRuntime::noteMigrated(const ParallelRef &From,
                                 const ParallelRef &To) {
  // Collapse chains: anything that already routed to From now routes
  // straight to To, so resolveRoute stays a single lookup no matter how
  // often an object moves.
  for (auto &[Origin, Current] : Routes)
    if (Current == From)
      Current = To;
  Routes[{From.Node, From.Name}] = To;
}

ParallelRef ScooppRuntime::resolveRoute(const ParallelRef &Ref) const {
  auto It = Routes.find({Ref.Node, Ref.Name});
  return It == Routes.end() ? Ref : It->second;
}

RpcEndpoint &ScooppRuntime::endpoint(int Node) {
  assert(Node >= 0 && Node < nodeCount() && "endpoint: bad node id");
  return *Endpoints[static_cast<size_t>(Node)];
}

ObjectManager &ScooppRuntime::om(int Node) {
  assert(Node >= 0 && Node < nodeCount() && "om: bad node id");
  return *Oms[static_cast<size_t>(Node)];
}

ErrorOr<std::pair<std::string, std::shared_ptr<CallHandler>>>
ScooppRuntime::instantiateImpl(int Node, const std::string &ClassName) {
  const ParallelClassInfo *Info = Registry.lookup(ClassName);
  if (!Info)
    return Error(ErrorCode::UnknownType,
                 "no parallel class registered as '" + ClassName + "'");
  std::shared_ptr<CallHandler> Inner = Info->MakeImpl(*this, Cluster.node(Node));
  auto Adapter =
      std::make_shared<ImplAdapter>(om(Node), ClassName, std::move(Inner));
  uint64_t Id = NextImplId[static_cast<size_t>(Node)]++;
  std::string Name = "io:" + ClassName + ":" + std::to_string(Id);
  endpoint(Node).publish(Name, Adapter);
  PARCS_LOG(Debug, "scoopp: created " << Name << " on node " << Node);
  return std::make_pair(std::move(Name),
                        std::static_pointer_cast<CallHandler>(Adapter));
}
