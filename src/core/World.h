//===- core/World.h - Cluster + network + runtime bundle --------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience bundle owning everything one ParC# program needs, with the
/// correct construction and destruction order (simulator-owned coroutine
/// frames die before the objects they reference).  Benches and examples
/// build one of these and call runMain.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_WORLD_H
#define PARCS_CORE_WORLD_H

#include "core/Scoopp.h"
#include "net/Network.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Telemetry.h"
#include "vm/Cluster.h"

#include <functional>
#include <memory>

namespace parcs::scoopp {

/// A ready-to-run ParC# world: cluster, fabric and runtime.
class ScooppWorld {
public:
  ScooppWorld(int Nodes, ParallelClassRegistry Registry,
              ScooppConfig Config = ScooppConfig(),
              vm::VmKind Vm = vm::VmKind::MonoVm117, int CoresPerNode = 2,
              net::NetConfig NetCfg = net::NetConfig())
      : Machines(Nodes, Vm, CoresPerNode), Fabric(Machines.sim(), Nodes,
                                                  NetCfg),
        Rts(Machines, Fabric, std::move(Registry), Config) {
    // Live telemetry rides in-band over the same fabric when the knob is
    // set; the flight recorder shadows it so chaos runs leave a dump.
    telemetry::TelemetrySpec Spec;
    if (telemetry::envTelemetrySpec(Spec)) {
      Telemetry = std::make_unique<telemetry::Plane>(Fabric, Spec);
      if (!Spec.Path.empty())
        Flight = std::make_unique<telemetry::FlightRecorder>(Spec.Path +
                                                             ".flight.json");
    }
  }

  sim::Simulator &sim() { return Machines.sim(); }
  vm::Cluster &cluster() { return Machines; }
  net::Network &net() { return Fabric; }
  ScooppRuntime &runtime() { return Rts; }

  /// Spawns \p Main and drives the simulation until it (and everything it
  /// triggered) completes.  Returns the virtual time consumed.
  sim::SimTime runMain(std::function<sim::Task<void>(ScooppRuntime &)> Main) {
    sim::SimTime Start = Machines.sim().now();
    Machines.sim().spawn(Main(Rts));
    Machines.sim().run();
    return Machines.sim().now() - Start;
  }

  /// The live telemetry plane, or null when PARCS_TELEMETRY is unset.
  telemetry::Plane *telemetryPlane() { return Telemetry.get(); }

private:
  vm::Cluster Machines;
  net::Network Fabric;
  ScooppRuntime Rts;
  // Declared after Rts so they tear down first: the plane folds straggler
  // windows and writes its export while the fabric is still alive.
  std::unique_ptr<telemetry::Plane> Telemetry;
  std::unique_ptr<telemetry::FlightRecorder> Flight;
};

} // namespace parcs::scoopp

#endif // PARCS_CORE_WORLD_H
