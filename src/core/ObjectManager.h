//===- core/ObjectManager.h - Per-node OM ------------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SCOOPP object manager: one per processing node.  "The OM controls
/// the grain-size adaptation by instructing PO objects to perform method
/// call aggregation and/or object agglomeration", and performs load
/// management for new-object placement.  POs on the same node use the OM
/// through direct calls; peer OMs cooperate through small RPCs (getLoad).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_OBJECTMANAGER_H
#define PARCS_CORE_OBJECTMANAGER_H

#include "core/Scoopp.h"

namespace parcs::scoopp {

/// Exponentially weighted average of method execution times per class,
/// the grain-size estimate behind adaptive decisions.
class GrainEstimator {
public:
  void note(sim::SimTime Exec) {
    double Sample = Exec.toSecondsF();
    if (Count == 0)
      Average = Sample;
    else
      Average = 0.8 * Average + 0.2 * Sample;
    ++Count;
  }
  bool hasData() const { return Count > 0; }
  sim::SimTime average() const { return sim::SimTime::fromSecondsF(Average); }

private:
  double Average = 0.0;
  uint64_t Count = 0;
};

/// Per-node object manager.  Also remotely callable ("getLoad") so peer
/// OMs can implement least-loaded placement.
class ObjectManager : public CallHandler {
public:
  ObjectManager(ScooppRuntime &Runtime, int NodeId)
      : Runtime(Runtime), NodeId(NodeId) {}

  int nodeId() const { return NodeId; }
  ScooppRuntime &runtime() { return Runtime; }

  /// Number of implementation objects hosted on this node.
  int hostedObjects() const { return Hosted; }

  /// Called when an IO is created on this node (by the factory or by a
  /// local agglomerated creation).
  void noteObjectHosted() { ++Hosted; }
  void noteObjectReleased() {
    --Hosted;
    assert(Hosted >= 0 && "released more objects than hosted");
  }

  /// Grain-size feedback from ImplAdapter: \p Exec is the simulated
  /// execution time of one method of \p ClassName.
  void noteExecution(const std::string &ClassName, sim::SimTime Exec) {
    Grains[ClassName].note(Exec);
  }

  /// Decides whether a new object of \p ClassName should be created
  /// locally (object agglomeration).
  bool shouldAgglomerate(const std::string &ClassName) const;

  /// Current method-call aggregation factor for \p ClassName (1 = off).
  int aggregationFactor(const std::string &ClassName) const;

  /// Picks the node for a new object of \p ClassName per the placement
  /// policy.  May RPC peer OMs (LeastLoaded, PowerOfTwoChoices).
  sim::Task<int> placeObject(std::string ClassName);

  /// Live object migration: moves the implementation object published on
  /// this node as \p Name to \p DstNode without its callers noticing.
  /// Protocol: park the mailbox (new calls queue), drain executing calls,
  /// snapshot state through the serial layer, adopt at the destination
  /// (factory "create_migrated"), then cut over atomically -- moved
  /// tombstone + route-table bump + exactly-once replay of the parked
  /// calls through the destination's dedup window.  Returns the object's
  /// new ref.  On failure the park is cancelled and the source copy stays
  /// authoritative; a source crash mid-protocol aborts (the PR 5
  /// crash/park/restart machinery then owns recovery).
  sim::Task<ErrorOr<ParallelRef>> migrate(std::string Name, int DstNode);

  /// Queries \p Peer's load over RPC; falls back to \p Fallback (and feeds
  /// the health tracker) when the peer is unreachable.
  sim::Task<int> probeLoad(int Peer, int Fallback);

  /// Load metric used by LeastLoaded (hosted objects + queued dispatch
  /// work on this node's endpoint).
  int loadMetric() const;

  /// Remote interface: "getLoad" -> int32.
  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override;

private:
  ScooppRuntime &Runtime;
  int NodeId;
  int Hosted = 0;
  int NextPlacement = 0;
  std::map<std::string, GrainEstimator> Grains;
};

} // namespace parcs::scoopp

#endif // PARCS_CORE_OBJECTMANAGER_H
