//===- core/Proxy.cpp -----------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "core/Proxy.h"

#include "core/ImplAdapter.h"
#include "core/ObjectManager.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vm/Calibration.h"

#include <algorithm>

using namespace parcs;
using namespace parcs::scoopp;

ProxyBase::ProxyBase(ScooppRuntime &Runtime, int HomeNode)
    : Runtime(Runtime), Home(HomeNode) {
  assert(HomeNode >= 0 && HomeNode < Runtime.nodeCount() &&
         "proxy home node out of range");
}

ProxyBase::~ProxyBase() {
  if (pendingCalls() > 0)
    PARCS_LOG(Warn, "proxy for '" << Class << "' destroyed with "
                                  << pendingCalls()
                                  << " unflushed aggregated calls");
}

vm::Node &ProxyBase::node() { return Runtime.cluster().node(Home); }

void ProxyBase::recordCreateDecision(bool Agglomerated) {
  metrics::Registry::global()
      .counter(Agglomerated ? "scoopp.creations_agglomerated"
                            : "scoopp.creations_parallel")
      .add(1);
  if (!trace::enabled())
    return;
  // Both cumulative series are sampled on every decision, so the trace
  // always shows the agglomeration balance even when one side stays flat.
  int64_t NowNs = node().sim().now().nanosecondsCount();
  const ScooppStats &S = Runtime.stats();
  trace::instant(Home, 0,
                 Agglomerated ? "scoopp.create.agglomerated"
                              : "scoopp.create.parallel",
                 NowNs);
  trace::counter(Home, "scoopp.local_creations", NowNs,
                 static_cast<int64_t>(S.LocalCreations));
  trace::counter(Home, "scoopp.remote_creations", NowNs,
                 static_cast<int64_t>(S.RemoteCreations));
}

remoting::RemoteHandle ProxyBase::remoteHandle() {
  // Live migration moves objects underneath their proxies; the runtime's
  // route table records each move, and the proxy absorbs the relocation
  // here so subsequent calls go straight to the new home (stragglers that
  // raced a cutover are still forwarded by the source's tombstone).
  ParallelRef Now = Runtime.resolveRoute(Ref);
  if (!(Now == Ref))
    Ref = std::move(Now);
  return remoting::RemoteHandle(Runtime.endpoint(Home), Ref.Node,
                                Runtime.config().Port, Ref.Name);
}

sim::Task<Error> ProxyBase::create(std::string ClassName) {
  assert(!Ref.valid() && "proxy already created/bound");
  Class = std::move(ClassName);
  ObjectManager &Om = Runtime.om(Home);

  // "The first task of the newly created PO is to request the creation of
  // the IO" -- after the OM's grain decision (Fig. 5).
  co_await node().compute(calib::OmPlacementCost);

  if (Om.shouldAgglomerate(Class)) {
    // Intra-grain object creation (call d in Fig. 3): create the IO
    // locally and notify the local OM (done by ImplAdapter).
    auto Made = Runtime.instantiateImpl(Home, Class);
    if (!Made)
      co_return Made.error();
    Ref = ParallelRef{Home, Made->first};
    Local = Made->second;
    ++Runtime.stats().LocalCreations;
    recordCreateDecision(/*Agglomerated=*/true);
    co_return Error();
  }

  // Parallel creation: the OM selects a processing node "according to the
  // current load distribution policy" (calls c in Fig. 3).
  int Target = co_await Om.placeObject(Class);
  ++Runtime.stats().RemoteCreations;
  recordCreateDecision(/*Agglomerated=*/false);
  if (Target == Home) {
    // Placement landed on our own node.  The object is created through
    // the local factory path, but it remains its *own grain*: calls keep
    // asynchronous dispatch semantics (through the loopback endpoint), so
    // co-located parallel objects still exploit both CPUs of a node.
    // Only agglomeration (above) produces the direct intra-grain path.
    auto Made = Runtime.instantiateImpl(Home, Class);
    if (!Made)
      co_return Made.error();
    Ref = ParallelRef{Home, Made->first};
    Local = nullptr;
    co_return Error();
  }
  // Request remote creation through the target node's factory, like
  // Fig. 5's rf.PrimeServer().
  uint64_t CreateCtx = trace::mintCausalId();
  if (CreateCtx)
    trace::instantCtx(Home, 0, "scoopp.create",
                      node().sim().now().nanosecondsCount(), CreateCtx, 0);
  ErrorOr<Bytes> Raw = co_await Runtime.endpoint(Home).callReliable(
      Target, Runtime.config().Port, ScooppRuntime::FactoryName, "create",
      serial::encodeValues(Class), CreateCtx);
  if (!Raw) {
    bool Transport = ScooppRuntime::transportError(Raw.error().code());
    bool Overload = Raw.error().code() == ErrorCode::Overloaded;
    if (Transport)
      Runtime.noteCallOutcome(Target, false);
    else if (Overload)
      Runtime.noteOverloaded(Target);
    if (Transport || Overload) {
      if (Runtime.config().Retry.enabled()) {
        // The target is unreachable (or refusing admission) even after
        // retries: degrade to local agglomeration rather than fail the
        // creation -- the paper's grain machinery makes a local IO
        // semantically equivalent, just less parallel.
        metrics::Registry::global()
            .counter("scoopp.creations_failover")
            .add(1);
        trace::instant(Home, 0, "fault.create_failover",
                       node().sim().now().nanosecondsCount());
        PARCS_LOG(Warn, "scoopp: create of '"
                            << Class << "' on node " << Target
                            << " failed (" << Raw.error().str()
                            << "); falling back to local instance");
        auto Made = Runtime.instantiateImpl(Home, Class);
        if (!Made)
          co_return Made.error();
        Ref = ParallelRef{Home, Made->first};
        Local = nullptr;
        ++Runtime.stats().LocalCreations;
        co_return Error();
      }
    }
    co_return Raw.error();
  }
  Runtime.noteCallOutcome(Target, true);
  std::string Name;
  if (!serial::decodeValues(*Raw, Name))
    co_return Error(ErrorCode::MalformedMessage, "factory reply");
  Ref = ParallelRef{Target, std::move(Name)};
  Local = nullptr;
  co_return Error();
}

void ProxyBase::bind(std::string ClassName, ParallelRef ExistingRef) {
  assert(!Ref.valid() && "proxy already created/bound");
  assert(ExistingRef.valid() && "binding to an invalid ref");
  Class = std::move(ClassName);
  Ref = std::move(ExistingRef);
  // A received reference addresses a foreign grain even when it happens
  // to live on this node, so dispatch stays asynchronous (loopback).
  Local = nullptr;
}

sim::Task<void> ProxyBase::invokeAsync(std::string Method, Bytes Args) {
  assert(Ref.valid() && "invoking through an uncreated proxy");
  // Root of this invocation's causal chain: every downstream span
  // (aggregation, wire, dispatch, execution) parents back to InvokeCtx.
  // 0 when tracing is off, which makes all the plumbing below vanish.
  uint64_t InvokeCtx = trace::mintCausalId();
  if (InvokeCtx)
    trace::instantCtx(Home, 0, "scoopp.invoke",
                      node().sim().now().nanosecondsCount(), InvokeCtx, 0);
  if (Local) {
    // Intra-grain: "its subsequent (asynchronous parallel) method
    // invocations are actually executed synchronously and serially"
    // (call b in Fig. 3).
    co_await node().compute(calib::ProxyLocalCallCost);
    ++Runtime.stats().LocalCalls;
    if (InvokeCtx)
      trace::handoff(InvokeCtx);
    ErrorOr<Bytes> Result = co_await Local->handleCall(Method, Args);
    if (!Result)
      PARCS_LOG(Warn, "local async call '" << Class << "." << Method
                                           << "' failed: "
                                           << Result.error().str());
    co_return;
  }

  co_await node().compute(calib::ProxyRemoteCallCost);
  ++Runtime.stats().RemoteAsyncCalls;
  int Factor = Runtime.om(Home).aggregationFactor(Class);
  if (Factor <= 1) {
    co_await remoteHandle().invokeOneWay(std::move(Method), std::move(Args),
                                         InvokeCtx);
    co_return;
  }
  // Method call aggregation: "(delay and) combine a series of
  // asynchronous method calls into a single aggregate call message".
  std::vector<BufferedCall> &Buffer = PendingByMethod[Method];
  if (Buffer.empty())
    PendingOrder.push_back(Method);
  Buffer.push_back(BufferedCall{std::move(Args), InvokeCtx});
  trace::counter(Home, "scoopp.agg_buffered_calls",
                 node().sim().now().nanosecondsCount(),
                 static_cast<int64_t>(pendingCalls()));
  if (static_cast<int>(Buffer.size()) >= Factor) {
    std::vector<BufferedCall> Calls = std::move(Buffer);
    PendingByMethod.erase(Method);
    PendingOrder.erase(
        std::find(PendingOrder.begin(), PendingOrder.end(), Method));
    co_await shipPacked(std::move(Method), std::move(Calls));
  }
}

sim::Task<ErrorOr<Bytes>> ProxyBase::invokeSync(std::string Method,
                                                Bytes Args) {
  assert(Ref.valid() && "invoking through an uncreated proxy");
  // Program order: everything buffered must leave before a synchronous
  // call observes state.
  co_await flush();
  uint64_t InvokeCtx = trace::mintCausalId();
  if (InvokeCtx)
    trace::instantCtx(Home, 0, "scoopp.invoke",
                      node().sim().now().nanosecondsCount(), InvokeCtx, 0);
  if (Local) {
    co_await node().compute(calib::ProxyLocalCallCost);
    ++Runtime.stats().LocalCalls;
    if (InvokeCtx)
      trace::handoff(InvokeCtx);
    ErrorOr<Bytes> Result = co_await Local->handleCall(Method, Args);
    co_return Result;
  }
  co_await node().compute(calib::ProxyRemoteCallCost);
  ++Runtime.stats().RemoteSyncCalls;
  ErrorOr<Bytes> Result = co_await remoteHandle().invoke(
      std::move(Method), std::move(Args), InvokeCtx);
  // Feed the health tracker: a transport error (even after the handle's
  // retries) counts against the hosting node; anything else proves it up.
  if (Result)
    Runtime.noteCallOutcome(Ref.Node, true);
  else if (ScooppRuntime::transportError(Result.error().code()))
    Runtime.noteCallOutcome(Ref.Node, false);
  else if (Result.error().code() == ErrorCode::Overloaded)
    // Admission refusals mark the node saturated so placement steers new
    // objects away while the backlog drains.
    Runtime.noteOverloaded(Ref.Node);
  co_return Result;
}

sim::Task<void> ProxyBase::flush() {
  while (!PendingOrder.empty()) {
    std::string Method = PendingOrder.front();
    PendingOrder.erase(PendingOrder.begin());
    auto It = PendingByMethod.find(Method);
    assert(It != PendingByMethod.end() && "order/buffer mismatch");
    std::vector<BufferedCall> Calls = std::move(It->second);
    PendingByMethod.erase(It);
    co_await shipPacked(std::move(Method), std::move(Calls));
  }
}

sim::Task<Error> ProxyBase::destroy() {
  assert(Ref.valid() && "destroying an uncreated proxy");
  co_await flush();
  ParallelRef Victim = Ref;
  Ref = ParallelRef();
  bool WasLocal = Local != nullptr;
  Local = nullptr;
  if (WasLocal || Victim.Node == Home) {
    // Local IO: the PO destroys it directly.
    if (!Runtime.endpoint(Home).unpublish(Victim.Name))
      co_return Error(ErrorCode::UnknownObject,
                      "object already destroyed: " + Victim.Name);
    co_return Error();
  }
  // Remote IO: request destruction from the hosting node's RTS factory.
  ErrorOr<Bytes> Raw = co_await Runtime.endpoint(Home).callReliable(
      Victim.Node, Runtime.config().Port, ScooppRuntime::FactoryName,
      "destroy", serial::encodeValues(Victim.Name));
  if (!Raw)
    co_return Raw.error();
  co_return Error();
}

size_t ProxyBase::pendingCalls() const {
  size_t Total = 0;
  for (const auto &[Method, Calls] : PendingByMethod)
    Total += Calls.size();
  return Total;
}

sim::Task<void> ProxyBase::shipPacked(std::string Method,
                                      std::vector<BufferedCall> Calls) {
  assert(!Calls.empty() && "shipping an empty aggregate");
  ++Runtime.stats().PackedMessages;
  Runtime.stats().PackedCalls += Calls.size();
  metrics::Registry::global()
      .histogram("scoopp.pack_size_calls")
      .record(static_cast<int64_t>(Calls.size()));
  if (trace::enabled()) {
    int64_t NowNs = node().sim().now().nanosecondsCount();
    trace::instant(Home, 0, "scoopp.agg_flush", NowNs);
    trace::counter(Home, "scoopp.packed_calls", NowNs,
                   static_cast<int64_t>(Runtime.stats().PackedCalls));
  }
  if (Calls.size() == 1) {
    // No point wrapping a single call.
    co_await remoteHandle().invokeOneWay(std::move(Method),
                                         std::move(Calls.front().Args),
                                         Calls.front().Ctx);
    co_return;
  }
  // The aggregate message itself is parented at the last buffered call
  // (the one whose arrival triggered shipping); each inner call still
  // carries its own context inside the payload.
  uint64_t ShipCtx = Calls.back().Ctx;
  Bytes Payload = encodePackedCalls(Calls);
  metrics::Registry::global()
      .histogram("scoopp.packed_msg_bytes")
      .record(static_cast<int64_t>(Payload.size()));
  co_await remoteHandle().invokeOneWay(PackedMethodPrefix + Method,
                                       std::move(Payload), ShipCtx);
}
