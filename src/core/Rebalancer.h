//===- core/Rebalancer.h - SLO-driven live rebalancing ----------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop between the telemetry plane's SLO engine and the
/// object manager's live migration: when a latency objective enters
/// breach (the deterministic slo.breach edge evaluated at window
/// finalization), the rebalancer picks the most loaded healthy node and
/// moves one of its parallel objects to the least loaded non-saturated
/// node.  One migration per breach edge, rate-limited by a cooldown and
/// a lifetime cap, so a persistently-breaching SLO drains load gradually
/// instead of thrashing the cluster.
///
/// Everything runs on virtual time off deterministic signals, so the
/// sequence of triggered migrations is byte-identical across
/// PARCS_SIM_THREADS values and repeated runs.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_REBALANCER_H
#define PARCS_CORE_REBALANCER_H

#include "core/Scoopp.h"
#include "telemetry/Telemetry.h"

namespace parcs::scoopp {

/// Attaches to a telemetry Plane's SLO edge hook for its lifetime and
/// drives ObjectManager::migrate off breach edges.  Construct after the
/// Plane and keep alive until the run (and the runtime) is torn down --
/// spawned rebalance tasks reference it.
class SloRebalancer {
public:
  struct Policy {
    /// Lifetime cap on migrations this rebalancer may trigger.
    int MaxMigrations = 8;
    /// Minimum virtual time between two triggered migrations.
    sim::SimTime Cooldown = sim::SimTime::milliseconds(5);
    /// Required load-metric gap between the hottest and coldest node; a
    /// smaller imbalance is not worth a state transfer.
    int MinLoadGap = 2;
  };

  SloRebalancer(ScooppRuntime &Runtime, telemetry::Plane &Plane, Policy Pol);
  SloRebalancer(ScooppRuntime &Runtime, telemetry::Plane &Plane)
      : SloRebalancer(Runtime, Plane, Policy()) {}
  ~SloRebalancer();

  SloRebalancer(const SloRebalancer &) = delete;
  SloRebalancer &operator=(const SloRebalancer &) = delete;

  /// Breach edges seen (including ones skipped by rate limits).
  uint64_t breaches() const { return Breaches; }
  /// Migrations actually started / completed successfully / skipped.
  uint64_t triggered() const { return Triggered; }
  uint64_t succeeded() const { return Succeeded; }
  uint64_t skipped() const { return Skipped; }

private:
  void onEdge(const telemetry::SloSpec &Spec, bool Breach, int64_t AtNs);
  sim::Task<void> rebalanceOnce();

  ScooppRuntime &Runtime;
  telemetry::Plane &Plane;
  Policy Pol;
  int64_t LastMoveNs = -1;
  bool Busy = false; ///< At most one rebalance task in flight.
  uint64_t Breaches = 0;
  uint64_t Triggered = 0;
  uint64_t Succeeded = 0;
  uint64_t Skipped = 0;
};

} // namespace parcs::scoopp

#endif // PARCS_CORE_REBALANCER_H
