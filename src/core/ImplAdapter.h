//===- core/ImplAdapter.h - IO wrapper ---------------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wraps a user implementation object (IO) with the runtime behaviours the
/// paper's generated code adds:
///
///  - packed-call handling ("processN" in Fig. 7): a single message
///    carrying N aggregated invocations is unpacked and the method run N
///    times ("the parameters of the several invocations are placed in an
///    array structure that is constructed on the PO side and fetched from
///    the array on the IO side");
///  - grain-size feedback: the simulated execution time of each call is
///    reported to the node's ObjectManager.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_IMPLADAPTER_H
#define PARCS_CORE_IMPLADAPTER_H

#include "core/ObjectManager.h"
#include "core/Scoopp.h"
#include "sim/Sync.h"

namespace parcs::scoopp {

/// Method-name prefix marking an aggregated message; the suffix is the
/// real method name.
inline constexpr const char *PackedMethodPrefix = "#packed:";

/// Encodes N argument buffers into one packed-call payload.
Bytes encodePackedCalls(const std::vector<Bytes> &Calls);

/// Decodes a packed-call payload.
ErrorOr<std::vector<Bytes>> decodePackedCalls(const Bytes &Payload);

/// The dispatch wrapper installed around every IO.
class ImplAdapter : public CallHandler {
public:
  ImplAdapter(ObjectManager &Om, std::string ClassName,
              std::shared_ptr<CallHandler> Inner)
      : Om(Om), ClassName(std::move(ClassName)), Inner(std::move(Inner)),
        CallLock(Om.runtime().sim()) {
    Om.noteObjectHosted();
  }
  ~ImplAdapter() override { Om.noteObjectReleased(); }

  CallHandler &inner() { return *Inner; }

  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override;

private:
  /// Runs one real call on the inner IO, timing it for the OM.
  sim::Task<ErrorOr<Bytes>> timedCall(std::string Method, Bytes Args);

  ObjectManager &Om;
  std::string ClassName;
  std::shared_ptr<CallHandler> Inner;
  /// Parallel objects are *active objects*: one method runs at a time,
  /// even when the endpoint's dispatch pool would allow overlap.
  sim::Mutex CallLock;
};

} // namespace parcs::scoopp

#endif // PARCS_CORE_IMPLADAPTER_H
