//===- core/ImplAdapter.h - IO wrapper ---------------------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wraps a user implementation object (IO) with the runtime behaviours the
/// paper's generated code adds:
///
///  - packed-call handling ("processN" in Fig. 7): a single message
///    carrying N aggregated invocations is unpacked and the method run N
///    times ("the parameters of the several invocations are placed in an
///    array structure that is constructed on the PO side and fetched from
///    the array on the IO side");
///  - grain-size feedback: the simulated execution time of each call is
///    reported to the node's ObjectManager.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_CORE_IMPLADAPTER_H
#define PARCS_CORE_IMPLADAPTER_H

#include "core/ObjectManager.h"
#include "core/Scoopp.h"
#include "sim/Sync.h"

namespace parcs::scoopp {

/// Method-name prefix marking an aggregated message; the suffix is the
/// real method name.
inline constexpr const char *PackedMethodPrefix = "#packed:";

/// One buffered invocation inside an aggregated message: the encoded
/// arguments plus the causal id minted at the original invokeAsync (0 on
/// untraced runs).  Aggregation must not collapse causality -- each packed
/// call keeps its own context so the profiler can attribute each execution
/// to the proxy call that caused it.
struct BufferedCall {
  Bytes Args;
  uint64_t Ctx = 0;
  bool operator==(const BufferedCall &) const = default;
};

/// Set in the packed-call count word when any call carries a causal
/// context; without it the payload is the legacy ctx-free byte format, so
/// untraced wire bytes are unchanged.
inline constexpr uint32_t PackedCtxFlag = 0x80000000u;

/// Encodes N buffered invocations into one packed-call payload.
Bytes encodePackedCalls(const std::vector<BufferedCall> &Calls);

/// Decodes a packed-call payload.
ErrorOr<std::vector<BufferedCall>> decodePackedCalls(const Bytes &Payload);

/// The dispatch wrapper installed around every IO.
class ImplAdapter : public CallHandler {
public:
  ImplAdapter(ObjectManager &Om, std::string ClassName,
              std::shared_ptr<CallHandler> Inner)
      : Om(Om), ClassName(std::move(ClassName)), Inner(std::move(Inner)),
        CallLock(Om.runtime().sim()) {
    Om.noteObjectHosted();
  }
  ~ImplAdapter() override { Om.noteObjectReleased(); }

  CallHandler &inner() { return *Inner; }
  const std::string &className() const { return ClassName; }

  sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                       const Bytes &Args) override;

  /// Migration state capture passes straight through to the user IO; the
  /// adapter itself is reconstructed fresh at the destination (its lock
  /// and grain feedback are per-node runtime state, not object state).
  void saveState(serial::OutputArchive &Out) override {
    Inner->saveState(Out);
  }
  bool restoreState(serial::InputArchive &In) override {
    return Inner->restoreState(In);
  }

private:
  /// Runs one real call on the inner IO, timing it for the OM and emitting
  /// a scoopp.execute span parented at \p ParentCtx on traced runs.
  sim::Task<ErrorOr<Bytes>> timedCall(std::string Method, Bytes Args,
                                      uint64_t ParentCtx);

  ObjectManager &Om;
  std::string ClassName;
  std::shared_ptr<CallHandler> Inner;
  /// Parallel objects are *active objects*: one method runs at a time,
  /// even when the endpoint's dispatch pool would allow overlap.
  sim::Mutex CallLock;
};

} // namespace parcs::scoopp

#endif // PARCS_CORE_IMPLADAPTER_H
