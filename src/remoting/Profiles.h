//===- remoting/Profiles.h - Per-stack cost/format profiles -----*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One StackProfile per messaging stack the paper measures.  A profile is
/// what differentiates Mono Remoting from Java RMI from Java nio in the
/// model: the wire format (real framing bytes), the fixed per-message
/// software cost on each side, the per-byte marshalling cost, and whether
/// calls ride inside real HTTP framing.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_REMOTING_PROFILES_H
#define PARCS_REMOTING_PROFILES_H

#include "serial/Envelope.h"
#include "sim/SimTime.h"

namespace parcs::remoting {

/// The messaging stacks of the paper's evaluation.
enum class StackKind {
  MonoRemotingTcp117, ///< Mono 1.1.7 TcpChannel + binary formatter.
  MonoRemotingTcp105, ///< Mono 1.0.5 TcpChannel (Fig. 8b).
  MonoRemotingHttp117, ///< Mono 1.1.7 HttpChannel + SOAP (Fig. 8b).
  JavaRmi,            ///< Sun JDK 1.4.2 RMI.
  JavaNio,            ///< java.nio message passing (latency comparison).
  MonoRemotingTuned,  ///< Projection: the paper's future-work tuned Mono.
};

/// Cost/format description of one stack.
struct StackProfile {
  const char *Name;
  serial::WireFormat Format;
  /// Fixed software cost per message on each side (marshalling setup,
  /// dispatch, channel sink chain...).
  sim::SimTime FixedPerSide;
  /// Per-byte marshalling cost (ns per wire byte) on each side.
  double PerByteNs;
  /// Wrap each message in real HTTP/1.0 request framing (HttpChannel).
  bool HttpFraming;
  /// One-time TCP connection establishment per destination endpoint
  /// (three-way handshake + stream setup); zero when the cost is already
  /// folded into the fixed per-message cost.
  sim::SimTime ConnectSetup;
};

/// Returns the calibrated profile for \p Kind.
const StackProfile &stackProfile(StackKind Kind);

} // namespace parcs::remoting

#endif // PARCS_REMOTING_PROFILES_H
