//===- remoting/CallHandler.h - Server-side call dispatch -------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-side dispatch interface of the RPC engine.  A CallHandler is
/// the C++ stand-in for a published MarshalByRefObject (C# remoting) or an
/// exported UnicastRemoteObject (Java RMI): it receives a method name and
/// the encoded argument buffer and produces the encoded result.  The
/// paper's preprocessor generates this dispatch code for every parallel
/// class; in this library parcgen emits it (or it is written by hand for
/// the examples).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_REMOTING_CALLHANDLER_H
#define PARCS_REMOTING_CALLHANDLER_H

#include "serial/Archive.h"
#include "sim/Task.h"
#include "support/Error.h"

#include <functional>
#include <memory>
#include <string_view>

namespace parcs::remoting {

using serial::Bytes;

/// A remotely callable object.
class CallHandler {
public:
  virtual ~CallHandler();

  /// Executes \p Method with \p Args (an encodeValues buffer).  Returns the
  /// encoded result (empty for void methods) or an error for unknown
  /// methods / malformed arguments.  Long-running methods charge node CPU
  /// via co_await inside.
  virtual sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                               const Bytes &Args) = 0;
};

/// How a well-known (factory-published) object is instantiated, mirroring
/// .Net's WellKnownObjectMode.
enum class WellKnownObjectMode {
  Singleton,  ///< All calls go to one instance.
  SingleCall, ///< Every call gets a fresh instance (no state kept).
};

/// Factory producing instances for well-known registrations.
using HandlerFactory = std::function<std::shared_ptr<CallHandler>()>;

} // namespace parcs::remoting

#endif // PARCS_REMOTING_CALLHANDLER_H
