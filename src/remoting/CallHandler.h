//===- remoting/CallHandler.h - Server-side call dispatch -------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-side dispatch interface of the RPC engine.  A CallHandler is
/// the C++ stand-in for a published MarshalByRefObject (C# remoting) or an
/// exported UnicastRemoteObject (Java RMI): it receives a method name and
/// the encoded argument buffer and produces the encoded result.  The
/// paper's preprocessor generates this dispatch code for every parallel
/// class; in this library parcgen emits it (or it is written by hand for
/// the examples).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_REMOTING_CALLHANDLER_H
#define PARCS_REMOTING_CALLHANDLER_H

#include "serial/Archive.h"
#include "sim/Task.h"
#include "support/Error.h"

#include <functional>
#include <memory>
#include <string_view>

namespace parcs::remoting {

using serial::Bytes;

/// A remotely callable object.
class CallHandler {
public:
  virtual ~CallHandler();

  /// Executes \p Method with \p Args (an encodeValues buffer).  Returns the
  /// encoded result (empty for void methods) or an error for unknown
  /// methods / malformed arguments.  Long-running methods charge node CPU
  /// via co_await inside.
  virtual sim::Task<ErrorOr<Bytes>> handleCall(std::string_view Method,
                                               const Bytes &Args) = 0;

  /// Serializes the object's migratable state into \p Out (a serial
  /// archive the peer's restoreState() will read).  The default is the
  /// stateless contract: nothing written, nothing read.  Live migration
  /// (ObjectManager::migrate) calls this only after the object's mailbox
  /// is parked and its in-flight calls drained, so implementations never
  /// observe a concurrent method execution.
  virtual void saveState(serial::OutputArchive &Out) { (void)Out; }

  /// Restores state captured by saveState() on the migration source.
  /// Returns false when the bytes cannot be decoded (the migration is
  /// then aborted and the source copy kept authoritative).
  virtual bool restoreState(serial::InputArchive &In) {
    (void)In;
    return true;
  }
};

/// How a well-known (factory-published) object is instantiated, mirroring
/// .Net's WellKnownObjectMode.
enum class WellKnownObjectMode {
  Singleton,  ///< All calls go to one instance.
  SingleCall, ///< Every call gets a fresh instance (no state kept).
};

/// Factory producing instances for well-known registrations.
using HandlerFactory = std::function<std::shared_ptr<CallHandler>()>;

} // namespace parcs::remoting

#endif // PARCS_REMOTING_CALLHANDLER_H
