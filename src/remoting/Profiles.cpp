//===- remoting/Profiles.cpp ----------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "remoting/Profiles.h"

#include "support/Compiler.h"
#include "vm/Calibration.h"

using namespace parcs;
using namespace parcs::remoting;

const StackProfile &parcs::remoting::stackProfile(StackKind Kind) {
  static const StackProfile MonoTcp117 = {
      "Mono 1.1.7 (Tcp)", serial::WireFormat::NetBinary,
      calib::MonoTcpFixedPerSide, calib::MonoTcpPerByteNs,
      /*HttpFraming=*/false, calib::TcpConnectSetup};
  static const StackProfile MonoTcp105 = {
      "Mono 1.0.5 (Tcp)", serial::WireFormat::NetBinary,
      calib::Mono105FixedPerSide, calib::Mono105PerByteNs,
      /*HttpFraming=*/false, 3 * calib::TcpConnectSetup};
  static const StackProfile MonoHttp117 = {
      "Mono 1.1.7 (Http)", serial::WireFormat::NetSoap,
      calib::MonoHttpFixedPerSide, calib::MonoHttpPerByteNs,
      /*HttpFraming=*/true, sim::SimTime()};
  static const StackProfile JavaRmi = {
      "Java RMI", serial::WireFormat::JavaStream, calib::RmiFixedPerSide,
      calib::RmiPerByteNs, /*HttpFraming=*/false,
      calib::TcpConnectSetup};
  static const StackProfile MonoTuned = {
      "Mono tuned (Tcp)", serial::WireFormat::NetBinary,
      calib::MonoTunedFixedPerSide, calib::MonoTunedPerByteNs,
      /*HttpFraming=*/false, calib::TcpConnectSetup};
  static const StackProfile JavaNio = {
      "Java nio", serial::WireFormat::MpiPack, calib::JavaNioFixedPerSide,
      calib::JavaNioPerByteNs, /*HttpFraming=*/false,
      calib::TcpConnectSetup};
  switch (Kind) {
  case StackKind::MonoRemotingTcp117:
    return MonoTcp117;
  case StackKind::MonoRemotingTcp105:
    return MonoTcp105;
  case StackKind::MonoRemotingHttp117:
    return MonoHttp117;
  case StackKind::JavaRmi:
    return JavaRmi;
  case StackKind::JavaNio:
    return JavaNio;
  case StackKind::MonoRemotingTuned:
    return MonoTuned;
  }
  PARCS_UNREACHABLE("unhandled StackKind");
}
