//===- remoting/Remoting.h - C#-remoting flavoured API ----------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The .Net-Remoting-shaped surface over the RPC engine: object URIs
/// ("tcp://node1:1050/DivideServer"), Activator::getObject, well-known
/// service registration, and asynchronous delegates (BeginInvoke /
/// EndInvoke returning an IAsyncResult-like handle) -- the C# features
/// Section 2 of the paper highlights over Java RMI.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_REMOTING_REMOTING_H
#define PARCS_REMOTING_REMOTING_H

#include "remoting/Engine.h"

#include <string>

namespace parcs::remoting {

/// Transport channel of a URI, mirroring TcpChannel/HttpChannel.
enum class ChannelKind { Tcp, Http };

/// A parsed remoting URI.
struct ObjectUri {
  ChannelKind Channel = ChannelKind::Tcp;
  int Node = 0;
  int Port = 0;
  std::string Name;
};

/// Parses "tcp://node<K>:<port>/<name>" or "http://...".  Hosts are the
/// simulated cluster nodes, named node0..nodeN (plus "localhost" = node0).
ErrorOr<ObjectUri> parseObjectUri(const std::string &Uri);

/// Renders the canonical URI string for (channel, node, port, name).
std::string makeObjectUri(ChannelKind Channel, int Node, int Port,
                          const std::string &Name);

/// A reference to a (possibly remote) published object: what the
/// transparent proxy wraps.  Copyable.
class RemoteHandle {
public:
  RemoteHandle() = default;
  RemoteHandle(RpcEndpoint &Local, int DstNode, int DstPort, std::string Name)
      : Local(&Local), DstNode(DstNode), DstPort(DstPort),
        Name(std::move(Name)) {}

  bool valid() const { return Local != nullptr; }
  int dstNode() const { return DstNode; }
  const std::string &name() const { return Name; }

  /// Raw two-way invocation with pre-encoded arguments.  \p ParentCtx is
  /// the caller's causal id, threaded through to the engine (0 = untraced
  /// or root).
  sim::Task<ErrorOr<Bytes>> invoke(std::string Method, Bytes Args,
                                   uint64_t ParentCtx = 0) {
    assert(Local && "invoking through an empty handle");
    // callReliable applies the endpoint's retry policy; with the default
    // (disabled) policy it is exactly one plain call, same wire bytes.
    return Local->callReliable(DstNode, DstPort, Name, std::move(Method),
                               std::move(Args), ParentCtx);
  }

  /// Raw one-way invocation.
  sim::Task<void> invokeOneWay(std::string Method, Bytes Args,
                               uint64_t ParentCtx = 0) {
    assert(Local && "invoking through an empty handle");
    return Local->callOneWay(DstNode, DstPort, Name, std::move(Method),
                             std::move(Args), ParentCtx);
  }

  /// Typed two-way call: encodes \p CallArgs, decodes a Ret.  Use
  /// parcs::Unit as Ret for void methods.
  template <typename Ret, typename... Args>
  sim::Task<ErrorOr<Ret>> invokeTyped(std::string Method,
                                      const Args &...CallArgs) {
    return invokeTypedImpl<Ret>(*this, std::move(Method),
                                serial::encodeValues(CallArgs...));
  }

private:
  template <typename Ret>
  static sim::Task<ErrorOr<Ret>>
  invokeTypedImpl(RemoteHandle Self, std::string Method, Bytes Encoded) {
    ErrorOr<Bytes> Raw =
        co_await Self.invoke(std::move(Method), std::move(Encoded));
    if (!Raw)
      co_return Raw.error();
    Ret Value{};
    if (!serial::decodeValues(*Raw, Value))
      co_return Error(ErrorCode::MalformedMessage,
                      "result bytes did not decode");
    co_return Value;
  }

  RpcEndpoint *Local = nullptr;
  int DstNode = 0;
  int DstPort = 0;
  std::string Name;
};

/// Obtains a handle to a remote well-known object from its URI, like
/// Activator.GetObject(typeof(T), uri).
ErrorOr<RemoteHandle> getObject(RpcEndpoint &Local, const std::string &Uri);

/// The IAsyncResult-shaped handle produced by delegate BeginInvoke.
template <typename Ret> class AsyncResult {
public:
  AsyncResult() = default;
  explicit AsyncResult(sim::Future<ErrorOr<Ret>> Result)
      : Result(std::move(Result)) {}

  bool isCompleted() const { return Result.ready(); }

  /// Awaitable: suspends until the call finishes, then yields the result
  /// (EndInvoke semantics).
  auto operator co_await() const { return Result.operator co_await(); }
  const sim::Future<ErrorOr<Ret>> &future() const { return Result; }

private:
  sim::Future<ErrorOr<Ret>> Result;
};

namespace detail {

template <typename Ret>
sim::Task<void> runDelegate(RemoteHandle Handle, std::string Method,
                            Bytes Args, sim::Promise<ErrorOr<Ret>> Done) {
  ErrorOr<Bytes> Raw =
      co_await Handle.invoke(std::move(Method), std::move(Args));
  if (!Raw) {
    Done.set(Raw.error());
    co_return;
  }
  Ret Value{};
  if (!serial::decodeValues(*Raw, Value)) {
    Done.set(
        Error(ErrorCode::MalformedMessage, "result bytes did not decode"));
    co_return;
  }
  Done.set(std::move(Value));
}

} // namespace detail

/// Starts an asynchronous delegate invocation (delegate.BeginInvoke): the
/// call proceeds in the background and the returned AsyncResult is later
/// awaited (EndInvoke).  \p Sim must be the endpoint's simulator.
template <typename Ret, typename... Args>
AsyncResult<Ret> beginInvoke(sim::Simulator &Sim, RemoteHandle Handle,
                             std::string Method, const Args &...CallArgs) {
  sim::Promise<ErrorOr<Ret>> Done(Sim);
  AsyncResult<Ret> Result(Done.future());
  Sim.spawn(detail::runDelegate<Ret>(std::move(Handle), std::move(Method),
                                     serial::encodeValues(CallArgs...),
                                     std::move(Done)));
  return Result;
}

} // namespace parcs::remoting

#endif // PARCS_REMOTING_REMOTING_H
