//===- remoting/Remoting.cpp ----------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "remoting/Remoting.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace parcs;
using namespace parcs::remoting;

ErrorOr<ObjectUri> parcs::remoting::parseObjectUri(const std::string &Uri) {
  ObjectUri Result;
  std::string Rest;
  if (startsWith(Uri, "tcp://")) {
    Result.Channel = ChannelKind::Tcp;
    Rest = Uri.substr(6);
  } else if (startsWith(Uri, "http://")) {
    Result.Channel = ChannelKind::Http;
    Rest = Uri.substr(7);
  } else {
    return Error(ErrorCode::InvalidArgument,
                 "uri must start with tcp:// or http://: " + Uri);
  }

  size_t Slash = Rest.find('/');
  if (Slash == std::string::npos || Slash + 1 >= Rest.size())
    return Error(ErrorCode::InvalidArgument,
                 "uri missing /objectName: " + Uri);
  Result.Name = Rest.substr(Slash + 1);

  std::string HostPort = Rest.substr(0, Slash);
  size_t Colon = HostPort.find(':');
  if (Colon == std::string::npos)
    return Error(ErrorCode::InvalidArgument, "uri missing :port: " + Uri);
  std::string Host = HostPort.substr(0, Colon);
  std::string PortText = HostPort.substr(Colon + 1);
  if (PortText.empty() ||
      PortText.find_first_not_of("0123456789") != std::string::npos)
    return Error(ErrorCode::InvalidArgument, "bad port in uri: " + Uri);
  Result.Port = std::atoi(PortText.c_str());

  if (Host == "localhost") {
    Result.Node = 0;
  } else if (startsWith(Host, "node")) {
    std::string Id = Host.substr(4);
    if (Id.empty() || Id.find_first_not_of("0123456789") != std::string::npos)
      return Error(ErrorCode::InvalidArgument, "bad host in uri: " + Uri);
    Result.Node = std::atoi(Id.c_str());
  } else {
    return Error(ErrorCode::InvalidArgument,
                 "hosts are node<K> or localhost: " + Uri);
  }
  return Result;
}

std::string parcs::remoting::makeObjectUri(ChannelKind Channel, int Node,
                                           int Port,
                                           const std::string &Name) {
  std::string Uri = Channel == ChannelKind::Tcp ? "tcp://" : "http://";
  Uri += "node" + std::to_string(Node) + ":" + std::to_string(Port) + "/" +
         Name;
  return Uri;
}

ErrorOr<RemoteHandle> parcs::remoting::getObject(RpcEndpoint &Local,
                                                 const std::string &Uri) {
  ErrorOr<ObjectUri> Parsed = parseObjectUri(Uri);
  if (!Parsed)
    return Parsed.error();
  bool WantHttp = Parsed->Channel == ChannelKind::Http;
  if (WantHttp != Local.profile().HttpFraming)
    return Error(ErrorCode::InvalidArgument,
                 "endpoint channel does not match uri channel: " + Uri);
  return RemoteHandle(Local, Parsed->Node, Parsed->Port, Parsed->Name);
}
