//===- remoting/Engine.cpp ------------------------------------------------===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//

#include "remoting/Engine.h"

#include "serial/Crc32.h"
#include "support/Logging.h"
#include "support/PostMortem.h"
#include "support/TelemetrySink.h"
#include "support/Trace.h"

#include <charconv>

using namespace parcs;
using namespace parcs::remoting;

namespace {

/// "Mono 1.1.7 (Tcp)" -> "mono_1_1_7_tcp": profile display names become
/// metric-name segments.
std::string profileSlug(std::string_view Name) {
  std::string Slug;
  Slug.reserve(Name.size());
  for (char C : Name) {
    if (C >= 'A' && C <= 'Z')
      Slug += static_cast<char>(C - 'A' + 'a');
    else if ((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9'))
      Slug += C;
    else if (!Slug.empty() && Slug.back() != '_')
      Slug += '_';
  }
  while (!Slug.empty() && Slug.back() == '_')
    Slug.pop_back();
  return Slug;
}

/// Globally unique async-span id for a call: CallId is only unique per
/// endpoint, so mix in the issuing (node, port).
uint64_t callSpanId(int Node, int Port, uint64_t CallId) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(Node + 1)) << 48) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(Port)) << 32) ^ CallId;
}

void appendText(Bytes &Out, std::string_view Text) {
  Out.insert(Out.end(), Text.begin(), Text.end());
}

void appendNumber(Bytes &Out, size_t Value) {
  char Buf[20];
  char *End = std::to_chars(Buf, Buf + sizeof(Buf), Value).ptr;
  Out.insert(Out.end(), Buf, End);
}

/// Realistic HTTP/1.0 request header for the HttpChannel (the bytes are
/// really on the wire; Content-Length is filled in per message).  Appended
/// piecewise to the wire buffer -- no intermediate header string.
void appendHttpRequestHeader(Bytes &Out, size_t ContentLength,
                             std::string_view Action) {
  appendText(Out, "POST /factory.soap HTTP/1.0\r\n");
  appendText(Out,
             "User-Agent: Mozilla/4.0+(compatible; Mono Remoting; MonoCLR)\r\n");
  appendText(Out, "Content-Type: text/xml; charset=\"utf-8\"\r\n");
  appendText(Out, "SOAPAction: \"http://schemas.microsoft.com/clr/");
  appendText(Out, Action);
  appendText(Out, "\"\r\n");
  appendText(Out, "Expect: 100-continue\r\n");
  appendText(Out, "Connection: Keep-Alive\r\n");
  appendText(Out, "Content-Length: ");
  appendNumber(Out, ContentLength);
  appendText(Out, "\r\n\r\n");
}

void appendHttpResponseHeader(Bytes &Out, size_t ContentLength) {
  appendText(Out, "HTTP/1.0 200 OK\r\n");
  appendText(Out, "Server: Mono Remoting Server/1.1\r\n");
  appendText(Out, "Content-Type: text/xml; charset=\"utf-8\"\r\n");
  appendText(Out, "Content-Length: ");
  appendNumber(Out, ContentLength);
  appendText(Out, "\r\n\r\n");
}

/// Upper bound on the headers above (the request header with a long
/// SOAPAction stays comfortably under this).
constexpr size_t MaxHttpHeaderBytes = 320;

/// Extracts the server's retry-after hint from an ErrorCode::Overloaded
/// message ("... retry-after=<N>ns"); 0 when absent or unparsable.
int64_t parseRetryAfterNs(const std::string &Message) {
  constexpr std::string_view Tag = "retry-after=";
  size_t Pos = Message.find(Tag);
  if (Pos == std::string::npos)
    return 0;
  int64_t Value = 0;
  const char *First = Message.data() + Pos + Tag.size();
  if (std::from_chars(First, Message.data() + Message.size(), Value).ec !=
      std::errc())
    return 0;
  return Value;
}

} // namespace

CallHandler::~CallHandler() = default;

RpcEndpoint::RpcEndpoint(vm::Node &Host, net::Network &Net,
                         const StackProfile &Profile, int Port,
                         int DispatchWorkers)
    : Host(Host), Net(Net), Profile(Profile), Port(Port),
      Pool(Host, DispatchWorkers),
      MetricsPrefix("rpc." + profileSlug(Profile.Name)) {
  assert(!Net.isBound(Host.id(), Port) &&
         "another endpoint is already bound to this node:port");
  CallLatency = &metrics::Registry::global().histogram(MetricsPrefix +
                                                       ".call_latency_ns");
  // A node crash kills every in-flight handler, so dedup entries that were
  // in progress at that moment can never complete -- left in place they
  // would suppress retries forever.  Restart wipes them (exactly the
  // in-flight state a real server loses when it reboots); finished entries
  // keep their cached replies and at-most-once still holds within one
  // liveness epoch.
  RestartHookId = Host.addRestartHook([this] {
    for (auto It = DedupWindow.begin(); It != DedupWindow.end();) {
      if (!It->second.Done) {
        std::erase(DedupOrder, It->first);
        It = DedupWindow.erase(It);
      } else {
        ++It;
      }
    }
    // A crash also kills any in-progress migration on this node: parked
    // calls die with the endpoint's volatile state (their callers' retries
    // re-execute them through the wiped dedup entries above), the park
    // itself lifts, and the executing-handler counts those dead coroutines
    // held are settled.  Moved tombstones survive: they are routing
    // knowledge, not in-flight state, and the destination copy is alive.
    ParkedNames.clear();
    ParkedByName.clear();
    InFlightByName.clear();
    // Queued pool items survived the crash and still decrement the
    // backlog as they run; the executing handlers' decrements died.
    AdmittedBacklog = Pool.queueDepth();
  });
  Net.bind(Host.id(), Port);
  Host.sim().spawn(dispatchLoop());
}

RpcEndpoint::~RpcEndpoint() {
  Host.removeRestartHook(RestartHookId);
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.counter(MetricsPrefix + ".calls_issued").add(Stats.CallsIssued);
  Reg.counter(MetricsPrefix + ".calls_handled").add(Stats.CallsHandled);
  Reg.counter(MetricsPrefix + ".replies_received").add(Stats.RepliesReceived);
  Reg.counter(MetricsPrefix + ".oneway_sent").add(Stats.OneWaySent);
  Reg.counter(MetricsPrefix + ".wire_bytes_sent").add(Stats.WireBytesSent);
  Reg.counter(MetricsPrefix + ".malformed_dropped").add(Stats.MalformedDropped);
  Reg.counter(MetricsPrefix + ".late_replies").add(Stats.LateReplies);
  Reg.counter(MetricsPrefix + ".corrupted_dropped").add(Stats.CorruptedDropped);
  Reg.counter(MetricsPrefix + ".retries").add(Stats.Retries);
  Reg.counter(MetricsPrefix + ".retries_exhausted")
      .add(Stats.RetriesExhausted);
  Reg.counter(MetricsPrefix + ".dedup_hits").add(Stats.DedupHits);
  Reg.counter(MetricsPrefix + ".dedup_suppressed").add(Stats.DedupSuppressed);
  Reg.counter(MetricsPrefix + ".overload_rejected").add(Stats.OverloadRejected);
  Reg.counter(MetricsPrefix + ".overload_shed").add(Stats.OverloadShed);
  Reg.counter(MetricsPrefix + ".overload_deferred").add(Stats.OverloadDeferred);
  Reg.counter(MetricsPrefix + ".overload_exhausted")
      .add(Stats.OverloadExhausted);
  Reg.counter(MetricsPrefix + ".calls_parked").add(Stats.CallsParked);
  Reg.counter(MetricsPrefix + ".calls_forwarded").add(Stats.CallsForwarded);
}

void RpcEndpoint::publish(const std::string &Name,
                          std::shared_ptr<CallHandler> Object) {
  assert(Object && "publishing a null object");
  Registration Reg;
  Reg.Mode = WellKnownObjectMode::Singleton;
  Reg.Instance = std::move(Object);
  Published[Name] = std::move(Reg);
}

void RpcEndpoint::publishWellKnown(const std::string &Name,
                                   HandlerFactory Factory,
                                   WellKnownObjectMode Mode) {
  assert(Factory && "publishing a null factory");
  Registration Reg;
  Reg.Mode = Mode;
  Reg.Factory = std::move(Factory);
  Published[Name] = std::move(Reg);
}

bool RpcEndpoint::unpublish(const std::string &Name) {
  return Published.erase(Name) != 0;
}

sim::SimTime RpcEndpoint::sideCost(size_t WireBytes) const {
  return Profile.FixedPerSide +
         sim::SimTime::fromSecondsF(Profile.PerByteNs * 1e-9 *
                                    static_cast<double>(WireBytes));
}

// PARCS_HOT_BEGIN(wire-framing): once per RPC in each direction; framing
// emits into reserved/reused buffers and unframing aliases the wire bytes.

Bytes RpcEndpoint::frame(MsgKind Kind, std::string_view EnvelopeName,
                         const Bytes &Body, bool Response) const {
  bool Checksummed = wireChecksums();
  Bytes Wire;
  if (!Profile.HttpFraming) {
    // Kind byte + envelope emitted straight into the wire buffer.
    Wire.reserve(Body.size() + 96 + (Checksummed ? 4 : 0));
    Wire.push_back(static_cast<uint8_t>(Kind));
    serial::encodeEnvelopeInto(Profile.Format, EnvelopeName, Body, Wire);
  } else {
    // HTTP framing: the header carries the content length, so stage the
    // content in the endpoint's scratch buffer (capacity reused across
    // calls), then emit header + content into one reserved wire buffer.
    EnvScratch.clear();
    EnvScratch.push_back(static_cast<uint8_t>(Kind));
    serial::encodeEnvelopeInto(Profile.Format, EnvelopeName, Body, EnvScratch);
    Wire.reserve(MaxHttpHeaderBytes + EnvScratch.size() +
                 (Checksummed ? 4 : 0));
    if (Response)
      appendHttpResponseHeader(Wire, EnvScratch.size());
    else
      appendHttpRequestHeader(Wire, EnvScratch.size(), EnvelopeName);
    Wire.insert(Wire.end(), EnvScratch.begin(), EnvScratch.end());
  }
  if (Checksummed) {
    // Integrity trailer (only while faults can corrupt frames): CRC32 of
    // everything before it, little-endian.
    uint32_t Crc = serial::crc32(Wire.data(), Wire.size());
    Wire.push_back(static_cast<uint8_t>(Crc));
    Wire.push_back(static_cast<uint8_t>(Crc >> 8));
    Wire.push_back(static_cast<uint8_t>(Crc >> 16));
    Wire.push_back(static_cast<uint8_t>(Crc >> 24));
  }
  return Wire;
}

ErrorOr<std::span<const uint8_t>> RpcEndpoint::unframe(const Bytes &Wire) const {
  size_t Size = Wire.size();
  if (wireChecksums()) {
    // Verify and strip the integrity trailer before trusting any byte of
    // the frame -- a flipped bit anywhere (header included) must not be
    // mis-decoded.
    if (Size < 5)
      return Error(ErrorCode::ChecksumMismatch,
                   "frame too short for its checksum trailer");
    uint32_t Stored = static_cast<uint32_t>(Wire[Size - 4]) |
                      (static_cast<uint32_t>(Wire[Size - 3]) << 8) |
                      (static_cast<uint32_t>(Wire[Size - 2]) << 16) |
                      (static_cast<uint32_t>(Wire[Size - 1]) << 24);
    if (serial::crc32(Wire.data(), Size - 4) != Stored)
      return Error(ErrorCode::ChecksumMismatch, "frame checksum mismatch");
    Size -= 4;
  }
  if (!Profile.HttpFraming)
    return std::span<const uint8_t>(Wire.data(), Size);
  // Parse the header in place over a view of the wire bytes and honour
  // Content-Length; the returned span aliases the body inside Wire.
  std::string_view Text(reinterpret_cast<const char *>(Wire.data()), Size);
  size_t Split = Text.find("\r\n\r\n");
  if (Split == std::string_view::npos)
    return Error(ErrorCode::MalformedMessage, "http framing: no header end");
  size_t BodyStart = Split + 4;
  size_t LenPos = Text.find("Content-Length: ");
  if (LenPos == std::string_view::npos || LenPos > Split)
    return Error(ErrorCode::MalformedMessage, "http framing: no length");
  size_t Length = 0;
  const char *Digits = Text.data() + LenPos + 16;
  if (std::from_chars(Digits, Text.data() + Text.size(), Length).ec !=
      std::errc())
    return Error(ErrorCode::MalformedMessage, "http framing: bad length");
  if (BodyStart + Length > Size)
    return Error(ErrorCode::MalformedMessage, "http framing: short body");
  return std::span<const uint8_t>(Wire.data() + BodyStart, Length);
}

// PARCS_HOT_END

ErrorOr<std::shared_ptr<CallHandler>>
RpcEndpoint::resolveTarget(const std::string &Name) {
  auto It = Published.find(Name);
  if (It == Published.end())
    return Error(ErrorCode::UnknownObject,
                 "no object published as '" + Name + "'");
  Registration &Reg = It->second;
  if (Reg.Mode == WellKnownObjectMode::SingleCall) {
    // A fresh instance per call; no state is retained.
    return Reg.Factory();
  }
  if (!Reg.Instance) {
    assert(Reg.Factory && "singleton registration without factory");
    Reg.Instance = Reg.Factory();
  }
  return Reg.Instance;
}

sim::Task<void> RpcEndpoint::ensureConnected(int DstNode, int DstPort) {
  if (Profile.ConnectSetup.isZero() || DstNode == Host.id())
    co_return;
  // Mark connected before waiting so concurrent first calls don't each
  // pay the handshake.
  if (!Connected.insert({DstNode, DstPort}).second)
    co_return;
  co_await Host.sim().delay(Profile.ConnectSetup);
}

sim::Task<ErrorOr<Bytes>> RpcEndpoint::call(int DstNode, int DstPort,
                                            std::string ObjectName,
                                            std::string Method, Bytes Args,
                                            sim::SimTime Timeout,
                                            uint64_t ParentCtx,
                                            uint64_t DedupId) {
  co_await ensureConnected(DstNode, DstPort);
  uint64_t CallId = NextCallId++;
  // The round trip's causal identity: minted here, carried in the body's
  // optional context header, restored server-side.  0 (and absent from
  // the wire) when tracing is off.
  uint64_t CallCtx = trace::mintCausalId();
  serial::OutputArchive Body;
  Body.write(CallId);
  Body.write(static_cast<uint8_t>((CallCtx ? FlagHasContext : 0) |
                                  (DedupId ? FlagHasDedup : 0)));
  if (CallCtx)
    serial::encodeCausalContext(Body, CallCtx, ParentCtx);
  if (DedupId)
    Body.write(DedupId);
  Body.write(static_cast<int32_t>(Host.id()));
  Body.write(static_cast<int32_t>(Port));
  Body.write(ObjectName);
  Body.write(Method);
  Body.write(static_cast<uint32_t>(Args.size()));
  Body.writeRaw(Args);

  Bytes Wire = frame(KindCall, Method, Body.bytes(), /*Response=*/false);
  ++Stats.CallsIssued;
  Stats.WireBytesSent += Wire.size();

  int64_t IssuedNs = Host.sim().now().nanosecondsCount();
  trace::asyncBeginCtx(Host.id(), "rpc.call", IssuedNs,
                       callSpanId(Host.id(), Port, CallId), CallCtx,
                       ParentCtx);

  sim::Promise<ErrorOr<Bytes>> Reply(Host.sim());
  PendingCalls.emplace(CallId, PendingCall{Reply, CallCtx});

  // Client-side marshalling + channel sink cost, then hand to the NIC.
  co_await Host.compute(sideCost(Wire.size()));
  uint64_t SendCtx = 0;
  if (CallCtx) {
    SendCtx = trace::mintCausalId();
    trace::completeCtx(Host.id(), 0, "rpc.send", IssuedNs,
                       Host.sim().now().nanosecondsCount() - IssuedNs,
                       SendCtx, CallCtx);
  }
  Net.send(Host.id(), DstNode, DstPort, std::move(Wire), SendCtx);

  if (Timeout > sim::SimTime()) {
    // Arm the deadline: if the reply has not resolved the promise by
    // then, fail the call and forget it (a late reply is dropped as an
    // unknown call id).
    Host.sim().schedule(Timeout, [this, CallId] {
      auto It = PendingCalls.find(CallId);
      if (It == PendingCalls.end())
        return;
      sim::Promise<ErrorOr<Bytes>> Timed = It->second.Reply;
      PendingCalls.erase(It);
      // Remember the id: should the reply still show up, it is a late
      // reply (expected under loss), not a malformed frame.
      noteTimedOut(CallId);
      Timed.set(Error(ErrorCode::TimedOut,
                      "no reply within the call deadline"));
    });
  }

  ErrorOr<Bytes> Result = co_await Reply.future();
  int64_t DoneNs = Host.sim().now().nanosecondsCount();
  CallLatency->record(DoneNs - IssuedNs);
  telemetry::count(Host.id(), "rpc.calls", DoneNs);
  telemetry::record(Host.id(), "rpc.call.latency", DoneNs, DoneNs - IssuedNs);
  trace::asyncEndCtx(Host.id(), "rpc.call", DoneNs,
                     callSpanId(Host.id(), Port, CallId), CallCtx, ParentCtx);
  co_return Result;
}

void RpcEndpoint::noteTimedOut(uint64_t CallId) {
  if (TimedOutOrder.size() >= MaxTimedOutRemembered) {
    TimedOutIds.erase(TimedOutOrder.front());
    TimedOutOrder.pop_front();
  }
  TimedOutIds.insert(CallId);
  TimedOutOrder.push_back(CallId);
}

sim::Task<ErrorOr<Bytes>> RpcEndpoint::callReliable(int DstNode, int DstPort,
                                                    std::string ObjectName,
                                                    std::string Method,
                                                    Bytes Args,
                                                    uint64_t ParentCtx) {
  if (!Retry.enabled())
    // Degraded mode: exactly one plain call -- same frames, same events
    // as code that never heard of retries (AttemptTimeout is zero here
    // unless the caller configured a deadline without retries).
    co_return co_await call(DstNode, DstPort, std::move(ObjectName),
                            std::move(Method), std::move(Args),
                            Retry.AttemptTimeout, ParentCtx);

  uint64_t DedupId = NextDedupId++;
  sim::SimTime Backoff = Retry.BaseBackoff;
  sim::SimTime Deadline = Retry.AttemptTimeout;
  int Attempt = 1;
  int OverloadWaits = 0;
  for (;;) {
    ErrorOr<Bytes> Result =
        co_await call(DstNode, DstPort, ObjectName, Method, Args,
                      Deadline, ParentCtx, DedupId);
    if (Result)
      co_return Result;
    ErrorCode Code = Result.error().code();
    if (Code == ErrorCode::Overloaded) {
      // The server refused admission and said when to come back.  The
      // reply proved the network and the server alive, so this does not
      // burn a transport attempt: it waits out the server's deterministic
      // retry-after hint (its own bounded budget) and tries again under
      // the same dedup id.
      if (OverloadWaits >= Retry.MaxOverloadWaits) {
        ++Stats.OverloadExhausted;
        // Distinct post-mortem reason: congestion collapse at the peer,
        // not a dead network -- operators page differently on the two.
        postmortem::fire("overloaded", Host.id(),
                         Host.sim().now().nanosecondsCount());
        co_return Error(ErrorCode::Overloaded,
                        "server overloaded: '" + ObjectName + "." + Method +
                            "' on node " + std::to_string(DstNode));
      }
      ++OverloadWaits;
      ++Stats.OverloadDeferred;
      trace::instant(Host.id(), 0, "rpc.overload_wait",
                     Host.sim().now().nanosecondsCount());
      int64_t HintNs = parseRetryAfterNs(Result.error().message());
      sim::SimTime Wait =
          HintNs > 0 ? sim::SimTime::nanoseconds(HintNs) : Backoff;
      co_await Host.sim().delay(Wait);
      continue;
    }
    if (Code != ErrorCode::TimedOut && Code != ErrorCode::ChecksumMismatch)
      // Unknown object, remote fault, malformed reply...: retrying won't
      // change the answer.
      co_return Result;
    if (Attempt >= Retry.MaxAttempts) {
      ++Stats.RetriesExhausted;
      postmortem::fire("retries_exhausted", Host.id(),
                       Host.sim().now().nanosecondsCount());
      co_return Error(ErrorCode::ConnectionFailed,
                      "retries exhausted: '" + ObjectName + "." + Method +
                          "' on node " + std::to_string(DstNode));
    }
    ++Attempt;
    ++Stats.Retries;
    trace::instant(Host.id(), 0, "rpc.retry",
                   Host.sim().now().nanosecondsCount());
    // PARCS_HOT_BEGIN(rpc-retry): the backoff/deadline schedule is
    // integer arithmetic plus one seeded draw -- no allocation, no
    // wall clock.
    int64_t HalfNs = Backoff.nanosecondsCount() / 2;
    sim::SimTime Jitter = sim::SimTime::nanoseconds(static_cast<int64_t>(
        RetryRng.nextBelow(static_cast<uint64_t>(HalfNs) + 1)));
    sim::SimTime Wait = Backoff + Jitter;
    sim::SimTime Next = sim::SimTime::fromSecondsF(Backoff.toSecondsF() *
                                                   Retry.BackoffFactor);
    Backoff = Next < Retry.MaxBackoff ? Next : Retry.MaxBackoff;
    if (Retry.TimeoutFactor > 1.0) {
      sim::SimTime Grown = sim::SimTime::fromSecondsF(
          Deadline.toSecondsF() * Retry.TimeoutFactor);
      Deadline = (Retry.MaxAttemptTimeout > sim::SimTime() &&
                  Retry.MaxAttemptTimeout < Grown)
                     ? Retry.MaxAttemptTimeout
                     : Grown;
    }
    // PARCS_HOT_END
    co_await Host.sim().delay(Wait);
  }
}

sim::Task<void> RpcEndpoint::callOneWay(int DstNode, int DstPort,
                                        std::string ObjectName,
                                        std::string Method, Bytes Args,
                                        uint64_t ParentCtx) {
  co_await ensureConnected(DstNode, DstPort);
  uint64_t CallId = NextCallId++;
  uint64_t CallCtx = trace::mintCausalId();
  serial::OutputArchive Body;
  Body.write(CallId);
  Body.write(static_cast<uint8_t>(FlagOneWay |
                                  (CallCtx ? FlagHasContext : 0)));
  if (CallCtx)
    serial::encodeCausalContext(Body, CallCtx, ParentCtx);
  Body.write(static_cast<int32_t>(Host.id()));
  Body.write(static_cast<int32_t>(Port));
  Body.write(ObjectName);
  Body.write(Method);
  Body.write(static_cast<uint32_t>(Args.size()));
  Body.writeRaw(Args);

  Bytes Wire = frame(KindCall, Method, Body.bytes(), /*Response=*/false);
  ++Stats.OneWaySent;
  Stats.WireBytesSent += Wire.size();
  int64_t IssuedNs = Host.sim().now().nanosecondsCount();
  trace::instantCtx(Host.id(), 0, "rpc.oneway", IssuedNs, CallCtx, ParentCtx);
  co_await Host.compute(sideCost(Wire.size()));
  uint64_t SendCtx = 0;
  if (CallCtx) {
    SendCtx = trace::mintCausalId();
    trace::completeCtx(Host.id(), 0, "rpc.send", IssuedNs,
                       Host.sim().now().nanosecondsCount() - IssuedNs,
                       SendCtx, CallCtx);
  }
  Net.send(Host.id(), DstNode, DstPort, std::move(Wire), SendCtx);
}

sim::Task<void> RpcEndpoint::dispatchLoop() {
  // parcs-lint: allow(suspension-ref): the channel lives in Network's bind
  // map, which is stable for the simulation's lifetime.
  sim::Channel<net::Message> &Inbox = Net.bind(Host.id(), Port);
  for (;;) {
    net::Message Msg = co_await Inbox.recv();
    // parcs-lint: allow(suspension-ref): Content aliases Msg.Payload, which
    // this frame owns and does not touch across the compute suspension.
    ErrorOr<std::span<const uint8_t>> Content = unframe(Msg.Payload);
    if (!Content || Content->empty()) {
      if (!Content &&
          Content.error().code() == ErrorCode::ChecksumMismatch) {
        // Fault-injected corruption caught by the wire CRC: counted
        // separately (it is expected under a chaos plan) and dropped
        // before any byte is decoded.  The sender's timeout/retry covers
        // recovery.
        ++Stats.CorruptedDropped;
        trace::instant(Host.id(), 0, "fault.corrupt_dropped",
                       Host.sim().now().nanosecondsCount());
        LogNodeScope Scope(Host.id());
        PARCS_LOG(Debug, "endpoint " << Host.id() << ":" << Port
                                     << " dropped corrupted frame");
        continue;
      }
      ++Stats.MalformedDropped;
      LogNodeScope Scope(Host.id());
      PARCS_LOG(Warn, "endpoint " << Host.id() << ":" << Port
                                  << " dropped malformed message");
      continue;
    }
    uint8_t Kind = Content->front();
    if (Kind == KindReturn) {
      // Replies are decoded on the I/O thread: charge the receive cost,
      // then resolve the pending call.  computeChecked (not compute) so a
      // crash never parks the dispatch loop -- the endpoint must be
      // listening again after a restart.
      int64_t RecvNs = Host.sim().now().nanosecondsCount();
      if (!co_await Host.computeChecked(sideCost(Msg.Payload.size())))
        continue;
      handleReturn(*Content, RecvNs, Msg.TraceCtx);
      continue;
    }
    if (Kind == KindCall) {
      // PARCS_HOT_BEGIN(rpc-admission): the admission decision is one
      // integer compare against live backlog -- no allocation; only the
      // (rare) rejection path builds a reply.
      if (Admission.enabled() && AdmittedBacklog >= Admission.MaxPending) {
        // Budget exhausted: refuse before the call touches the pool, so
        // rejected work costs a fixed-size reply rather than an unbounded
        // queue wait.  Handled inline on the dispatch path -- rejection
        // must not itself queue behind the congestion it polices.
        co_await rejectOverloaded(std::move(Msg));
        continue;
      }
      // PARCS_HOT_END
      // Calls are dispatched through the node's (bounded) thread pool;
      // this is where Mono's small pool throttles overlap.
      ++Stats.CallsHandled;
      ++AdmittedBacklog;
      auto Self = this;
      if (!trace::enabled()) {
        // Untraced shape: [this + Message] fits the pool's inline work
        // item exactly; keep it that way (the traced shape below adds the
        // receive timestamp and may spill to the heap, which only traced
        // runs pay).
        Pool.post([Self,
                   Owned = std::move(Msg)]() mutable -> sim::Task<void> {
          return Self->handleCall(std::move(Owned), 0);
        });
        continue;
      }
      int64_t RecvNs = Host.sim().now().nanosecondsCount();
      Pool.post([Self, RecvNs,
                 Owned = std::move(Msg)]() mutable -> sim::Task<void> {
        return Self->handleCall(std::move(Owned), RecvNs);
      });
      continue;
    }
    ++Stats.MalformedDropped;
  }
}

void RpcEndpoint::handleReturn(std::span<const uint8_t> Content,
                               int64_t RecvNs, uint64_t WireCtx) {
  ErrorOr<serial::Envelope> Env = serial::decodeEnvelope(
      Profile.Format, Content.data() + 1, Content.size() - 1);
  if (!Env) {
    ++Stats.MalformedDropped;
    return;
  }
  serial::InputArchive Body(Env->Payload);
  uint64_t CallId = 0;
  uint8_t Status = 0;
  if (!Body.read(CallId) || !Body.read(Status)) {
    ++Stats.MalformedDropped;
    return;
  }
  auto It = PendingCalls.find(CallId);
  if (It == PendingCalls.end()) {
    auto Timed = TimedOutIds.find(CallId);
    if (Timed != TimedOutIds.end()) {
      // The reply raced the deadline and lost: expected under loss plus
      // timeouts, so count it as late, not malformed, and stay quiet.
      // (The FIFO deque keeps a stale entry; eviction tolerates that.)
      TimedOutIds.erase(Timed);
      ++Stats.LateReplies;
      return;
    }
    ++Stats.MalformedDropped;
    return;
  }
  sim::Promise<ErrorOr<Bytes>> Reply = It->second.Reply;
  uint64_t CallCtx = It->second.Ctx;
  PendingCalls.erase(It);
  ++Stats.RepliesReceived;
  if (trace::enabled()) {
    // Reply-side deserialize leg, chained off the reply's wire node; the
    // rpc.link instant grafts it onto the round trip's DAG node so the
    // chain closes client -> server -> client.
    int64_t NowNs = Host.sim().now().nanosecondsCount();
    uint64_t ReplyCtx = trace::mintCausalId();
    trace::completeCtx(Host.id(), 0, "rpc.reply_recv", RecvNs,
                       NowNs - RecvNs, ReplyCtx, WireCtx);
    trace::instantCtx(Host.id(), 0, "rpc.link", NowNs, CallCtx, ReplyCtx);
  }
  if (Status == StatusOk) {
    Bytes Result;
    if (!Body.readRemaining(Result)) {
      Reply.set(Error(ErrorCode::MalformedMessage, "truncated result"));
      return;
    }
    Reply.set(std::move(Result));
    return;
  }
  if (Status == StatusOverloaded) {
    // Admission refusal: surface the server's retry-after hint in the
    // message so callReliable() can honour it (and callers can log it).
    uint64_t RetryAfterNs = 0;
    Body.read(RetryAfterNs);
    Reply.set(Error(ErrorCode::Overloaded,
                    "server overloaded; retry-after=" +
                        std::to_string(RetryAfterNs) + "ns"));
    return;
  }
  uint8_t Code = 0;
  std::string Message;
  if (!Body.read(Code) || !Body.read(Message)) {
    Reply.set(Error(ErrorCode::MalformedMessage, "truncated fault"));
    return;
  }
  Reply.set(Error(static_cast<ErrorCode>(Code), Message));
}

sim::Task<void> RpcEndpoint::rejectOverloaded(net::Message Msg) {
  // Re-parse the minimal body prefix: just enough to know who to answer.
  ErrorOr<std::span<const uint8_t>> Content = unframe(Msg.Payload);
  assert(Content && !Content->empty() && "checked in dispatchLoop");
  ErrorOr<serial::Envelope> Env = serial::decodeEnvelope(
      Profile.Format, Content->data() + 1, Content->size() - 1);
  if (!Env) {
    ++Stats.MalformedDropped;
    co_return;
  }
  serial::InputArchive Body(Env->Payload);
  uint64_t CallId = 0;
  uint8_t Flags = 0;
  uint64_t WireCtx = 0, WireParent = 0;
  uint64_t DedupId = 0;
  int32_t ReplyNode = 0, ReplyPort = 0;
  if (!Body.read(CallId) || !Body.read(Flags) ||
      ((Flags & FlagHasContext) &&
       !serial::decodeCausalContext(Body, WireCtx, WireParent)) ||
      ((Flags & FlagHasDedup) && !Body.read(DedupId)) ||
      !Body.read(ReplyNode) || !Body.read(ReplyPort)) {
    ++Stats.MalformedDropped;
    co_return;
  }
  int64_t NowNs = Host.sim().now().nanosecondsCount();
  if (Flags & FlagOneWay) {
    // No caller is waiting for a reply, so there is nobody to hint: the
    // call is shed and the counter is its only residue.
    ++Stats.OverloadShed;
    telemetry::count(Host.id(), "rpc.overload_shed", NowNs);
    trace::instant(Host.id(), 0, "rpc.overload_shed", NowNs);
    co_return;
  }
  ++Stats.OverloadRejected;
  telemetry::count(Host.id(), "rpc.overload_rejected", NowNs);
  trace::instant(Host.id(), 0, "rpc.overload_reject", NowNs);
  // Deterministic retry-after: linear in how deep past budget the backlog
  // sits, clamped to the policy's band.  Depth-proportional hints spread
  // a burst of rejected callers over time instead of re-synchronising
  // them onto one future instant.
  size_t Overflow = AdmittedBacklog - Admission.MaxPending + 1;
  int64_t BaseNs = Admission.RetryAfterBase.nanosecondsCount();
  int64_t MaxNs = Admission.RetryAfterMax.nanosecondsCount();
  int64_t HintNs = BaseNs * static_cast<int64_t>(Overflow);
  if (HintNs < BaseNs)
    HintNs = BaseNs;
  if (MaxNs > 0 && HintNs > MaxNs)
    HintNs = MaxNs;
  serial::OutputArchive Out;
  Out.write(CallId);
  Out.write(static_cast<uint8_t>(StatusOverloaded));
  Out.write(static_cast<uint64_t>(HintNs));
  Bytes Wire = frame(KindReturn, "ret", Out.bytes(), /*Response=*/true);
  Stats.WireBytesSent += Wire.size();
  // computeChecked: a crash mid-rejection must not park the dispatch loop.
  if (!co_await Host.computeChecked(sideCost(Wire.size())))
    co_return;
  Net.send(Host.id(), ReplyNode, ReplyPort, std::move(Wire), 0);
}

// PARCS_HOT_BEGIN(migrate-replay): forwarding rebuilds one frame from
// already-parsed fields into a reserved buffer and hands it to the NIC --
// no re-parse, no suspension; cutover itself is plain map surgery.

void RpcEndpoint::forwardCall(const ParkedCall &P, const MovedRoute &Route) {
  serial::OutputArchive Body;
  Body.write(P.CallId);
  Body.write(P.Flags);
  if (P.Flags & FlagHasContext)
    serial::encodeCausalContext(Body, P.WireCtx, P.WireParent);
  if (P.Flags & FlagHasDedup)
    Body.write(P.DedupId);
  Body.write(P.ReplyNode);
  Body.write(P.ReplyPort);
  Body.write(Route.Name);
  Body.write(P.Method);
  Body.write(static_cast<uint32_t>(P.Args.size()));
  Body.writeRaw(P.Args);
  Bytes Wire = frame(KindCall, P.Method, Body.bytes(), /*Response=*/false);
  ++Stats.CallsForwarded;
  Stats.WireBytesSent += Wire.size();
  trace::instant(Host.id(), 0, "om.migrate.forward",
                 Host.sim().now().nanosecondsCount());
  Net.send(Host.id(), Route.Node, Route.Port, std::move(Wire), 0);
}

void RpcEndpoint::completeMove(const std::string &Name,
                               const MovedRoute &Dst) {
  // Atomic cutover (no suspension between these lines): from here on no
  // call can slip between "parked" and "forwarded".
  ParkedNames.erase(Name);
  Moved[Name] = Dst;
  auto It = ParkedByName.find(Name);
  if (It == ParkedByName.end())
    return;
  std::vector<ParkedCall> Replay = std::move(It->second);
  ParkedByName.erase(It);
  // Replay in arrival order; the original CallId / reply coordinates /
  // dedup id ride along, so replies go straight to the callers and the
  // destination's dedup window absorbs any retransmitted twins.
  for (const ParkedCall &P : Replay)
    forwardCall(P, Dst);
}

void RpcEndpoint::cancelPark(const std::string &Name) {
  ParkedNames.erase(Name);
  auto It = ParkedByName.find(Name);
  if (It == ParkedByName.end())
    return;
  std::vector<ParkedCall> Replay = std::move(It->second);
  ParkedByName.erase(It);
  // Aborted migration: the source copy is still published, so re-deliver
  // the parked calls to ourselves over the loopback -- they re-enter the
  // normal dispatch path (admission included) as if the park never
  // happened, in arrival order.
  MovedRoute Self{Host.id(), Port, Name};
  for (const ParkedCall &P : Replay)
    forwardCall(P, Self);
}

// PARCS_HOT_END

sim::Task<void> RpcEndpoint::handleCall(net::Message Msg, int64_t RecvNs) {
  // Thin wrapper settling the admission backlog on normal completion.  A
  // handler that crash-parks never resumes this frame either, so the
  // decrement is simply lost with it -- the restart hook re-bases the
  // count from the surviving pool queue.
  co_await handleCallInner(std::move(Msg), RecvNs);
  if (AdmittedBacklog > 0)
    --AdmittedBacklog;
}

sim::Task<void> RpcEndpoint::handleCallInner(net::Message Msg,
                                             int64_t RecvNs) {
  // Server-side handling as one complete span on the serving node, and as
  // the server leg of the call's async pair (same id the client opened --
  // Perfetto links the legs across node lanes).
  int64_t ServeStartNs = Host.sim().now().nanosecondsCount();

  // Server-side unmarshalling cost for the incoming wire bytes.
  co_await Host.compute(sideCost(Msg.Payload.size()));

  ErrorOr<std::span<const uint8_t>> Content = unframe(Msg.Payload);
  assert(Content && !Content->empty() && "checked in dispatchLoop");
  ErrorOr<serial::Envelope> Env = serial::decodeEnvelope(
      Profile.Format, Content->data() + 1, Content->size() - 1);
  if (!Env) {
    ++Stats.MalformedDropped;
    co_return;
  }

  serial::InputArchive Body(Env->Payload);
  uint64_t CallId = 0;
  uint8_t Flags = 0;
  int32_t ReplyNode = 0, ReplyPort = 0;
  std::string ObjectName, Method;
  uint32_t ArgsSize = 0;
  Bytes Args;
  if (!Body.read(CallId) || !Body.read(Flags)) {
    ++Stats.MalformedDropped;
    co_return;
  }
  // Restore the caller's causal identity from the wire header.
  uint64_t WireCtx = 0, WireParent = 0;
  if ((Flags & FlagHasContext) &&
      !serial::decodeCausalContext(Body, WireCtx, WireParent)) {
    ++Stats.MalformedDropped;
    co_return;
  }
  // Logical-call id for at-most-once handling of retransmissions.
  uint64_t DedupId = 0;
  if ((Flags & FlagHasDedup) && !Body.read(DedupId)) {
    ++Stats.MalformedDropped;
    co_return;
  }
  if (!Body.read(ReplyNode) || !Body.read(ReplyPort) ||
      !Body.read(ObjectName) || !Body.read(Method) || !Body.read(ArgsSize) ||
      !Body.readRaw(Args, ArgsSize)) {
    ++Stats.MalformedDropped;
    co_return;
  }

  // DAG legs on the serving node: time queued between the wire and this
  // handler (the dispatch pool's backlog), then the unmarshal work above.
  // The serve umbrella's declared parent is the restored wire context (the
  // cross-node edge); rpc.link grafts the local timing chain onto it.
  uint64_t ServeCtx = 0;
  if (trace::enabled()) {
    int64_t NowNs = Host.sim().now().nanosecondsCount();
    uint64_t QueueCtx = trace::mintCausalId();
    trace::completeCtx(Host.id(), 0, "rpc.dispatch_queue", RecvNs,
                       ServeStartNs - RecvNs, QueueCtx, Msg.TraceCtx);
    uint64_t UnmarshalCtx = trace::mintCausalId();
    trace::completeCtx(Host.id(), 0, "rpc.unmarshal", ServeStartNs,
                       NowNs - ServeStartNs, UnmarshalCtx, QueueCtx);
    ServeCtx = trace::mintCausalId();
    trace::instantCtx(Host.id(), 0, "rpc.link", NowNs, ServeCtx,
                      UnmarshalCtx);
  }

  // At-most-once: a retransmission of a logical call we have already seen
  // must not execute the method again.  In-progress duplicates are
  // dropped (the original execution's reply, or the client's next retry,
  // covers it); completed ones are answered from the cached reply tail
  // under the retransmission's fresh CallId.
  bool TwoWay = !(Flags & FlagOneWay);
  DedupKey Key{ReplyNode, ReplyPort, DedupId};
  if (TwoWay && DedupId != 0) {
    auto Dup = DedupWindow.find(Key);
    if (Dup != DedupWindow.end()) {
      if (!Dup->second.Done) {
        ++Stats.DedupSuppressed;
        co_return;
      }
      ++Stats.DedupHits;
      serial::OutputArchive Cached;
      Cached.write(CallId);
      Cached.writeRaw(Dup->second.ReplyTail);
      Bytes CachedWire = frame(KindReturn, "ret", Cached.bytes(),
                               /*Response=*/true);
      Stats.WireBytesSent += CachedWire.size();
      co_await Host.compute(sideCost(CachedWire.size()));
      Net.send(Host.id(), ReplyNode, ReplyPort, std::move(CachedWire), 0);
      co_return;
    }
  }

  // Migration interception -- strictly between the dedup *lookup* (a call
  // this node already answered keeps being answered from the cached reply,
  // never re-executed at the destination) and the in-progress *insert* (a
  // parked call must not squat an entry its own forwarded replay would
  // then trip over).
  if (const MovedRoute *Route = movedRoute(ObjectName)) {
    // Straggler for a name that migrated away: forward it under the new
    // name; the destination replies straight to the original caller.
    forwardCall(ParkedCall{CallId, Flags, WireCtx, WireParent, DedupId,
                           ReplyNode, ReplyPort, std::move(Method),
                           std::move(Args)},
                *Route);
    co_return;
  }
  if (ParkedNames.count(ObjectName) != 0) {
    // The object's mailbox is frozen mid-migration: hold the parsed call
    // for replay at cutover (or local re-delivery on abort).
    ++Stats.CallsParked;
    trace::instant(Host.id(), 0, "om.migrate.parked",
                   Host.sim().now().nanosecondsCount());
    ParkedByName[ObjectName].push_back(
        ParkedCall{CallId, Flags, WireCtx, WireParent, DedupId, ReplyNode,
                   ReplyPort, std::move(Method), std::move(Args)});
    co_return;
  }

  if (TwoWay && DedupId != 0) {
    if (DedupOrder.size() >= DedupWindowCap) {
      DedupWindow.erase(DedupOrder.front());
      DedupOrder.pop_front();
    }
    DedupWindow.emplace(Key, DedupEntry{});
    DedupOrder.push_back(Key);
  }

  ErrorOr<Bytes> Result(Bytes{});
  ErrorOr<std::shared_ptr<CallHandler>> Target = resolveTarget(ObjectName);
  if (!Target) {
    Result = Target.error();
  } else {
    // Hand the serve context to the callee: its body up to the first
    // suspension runs synchronously inside this co_await (lazy tasks), so
    // the one-slot hand-off cannot be observed by anything else first.
    // Cleared afterwards in case the target does not claim it.
    if (ServeCtx)
      trace::handoff(ServeCtx);
    // Executing-call count per name: migration drains this to zero after
    // parking, so state capture never races a running method.
    ++InFlightByName[ObjectName];
    Result = co_await (*Target)->handleCall(Method, Args);
    auto InF = InFlightByName.find(ObjectName);
    if (InF != InFlightByName.end() && --InF->second == 0)
      InFlightByName.erase(InF);
    if (ServeCtx)
      trace::handoff(0);
  }

  if (Flags & FlagOneWay) {
    if (!Result) {
      LogNodeScope Scope(Host.id());
      PARCS_LOG(Warn, "one-way call '" << ObjectName << "." << Method
                                       << "' faulted: "
                                       << Result.error().str());
    }
    trace::completeCtx(Host.id(), 0, "rpc.serve", ServeStartNs,
                       Host.sim().now().nanosecondsCount() - ServeStartNs,
                       ServeCtx, WireCtx);
    co_return;
  }

  int64_t ReplyStartNs = Host.sim().now().nanosecondsCount();
  serial::OutputArchive Out;
  Out.write(CallId);
  if (Result) {
    Out.write(static_cast<uint8_t>(StatusOk));
    Out.writeRaw(Result.get());
  } else {
    Out.write(static_cast<uint8_t>(StatusFault));
    Out.write(static_cast<uint8_t>(Result.error().code()));
    Out.write(Result.error().message());
  }
  if (TwoWay && DedupId != 0) {
    // Cache everything after the 8-byte CallId: a retransmission gets the
    // same status + payload under its own attempt's id.  Refind -- the
    // entry may have been FIFO-evicted while the method ran.
    auto Dup = DedupWindow.find(Key);
    if (Dup != DedupWindow.end()) {
      Dup->second.Done = true;
      Dup->second.ReplyTail.assign(Out.bytes().begin() + 8,
                                   Out.bytes().end());
    }
  }
  Bytes Wire = frame(KindReturn, "ret", Out.bytes(), /*Response=*/true);
  Stats.WireBytesSent += Wire.size();
  co_await Host.compute(sideCost(Wire.size()));
  uint64_t ReplySendCtx = 0;
  if (ServeCtx) {
    ReplySendCtx = trace::mintCausalId();
    trace::completeCtx(Host.id(), 0, "rpc.send", ReplyStartNs,
                       Host.sim().now().nanosecondsCount() - ReplyStartNs,
                       ReplySendCtx, ServeCtx);
  }
  Net.send(Host.id(), ReplyNode, ReplyPort, std::move(Wire), ReplySendCtx);
  trace::completeCtx(Host.id(), 0, "rpc.serve", ServeStartNs,
                     Host.sim().now().nanosecondsCount() - ServeStartNs,
                     ServeCtx, WireCtx);
}
