//===- remoting/Engine.h - Generic RPC endpoint -----------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RPC engine underneath every remoting flavour in this library.  One
/// RpcEndpoint per (node, stack) plays both roles: it publishes server
/// objects and issues client calls.  The C#-remoting facade (Remoting.h),
/// the Java RMI facade (rmi/) and the Java nio baseline all instantiate
/// this engine with different StackProfiles, which is exactly the paper's
/// framing: same RPC shape, different software stacks.
///
/// Message path and cost accounting (one call):
///   client thread: marshal args -> envelope -> [HTTP frame] -> charge
///     FixedPerSide + PerByteNs * wire bytes of node CPU -> NIC send
///   wire: packetised transfer (net::Network)
///   server: dispatch loop pulls the message, posts it to the node's
///     dispatch thread pool (Mono's bounded pool!); the pooled handler
///     charges FixedPerSide + PerByteNs * wire bytes, decodes, locates the
///     object, runs the method (which charges its own compute), marshals
///     the result and sends the reply symmetrically.
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_REMOTING_ENGINE_H
#define PARCS_REMOTING_ENGINE_H

#include "net/Network.h"
#include "remoting/CallHandler.h"
#include "remoting/Profiles.h"
#include "sim/Sync.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "vm/Node.h"
#include "vm/ThreadPool.h"

#include <deque>
#include <map>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace parcs::remoting {

/// Statistics an endpoint accumulates (read by benches/tests).
struct EndpointStats {
  uint64_t CallsIssued = 0;
  uint64_t CallsHandled = 0;
  uint64_t RepliesReceived = 0;
  uint64_t OneWaySent = 0;
  uint64_t WireBytesSent = 0;
  uint64_t MalformedDropped = 0;
  /// Replies that arrived after their call's deadline fired.  Expected
  /// under loss + timeouts (the reply raced the timer); dropped silently,
  /// unlike MalformedDropped which flags genuinely bogus frames.
  uint64_t LateReplies = 0;
  /// Frames rejected by the wire checksum (fault-injected corruption).
  uint64_t CorruptedDropped = 0;
  /// Attempts beyond the first made by callReliable().
  uint64_t Retries = 0;
  /// callReliable() invocations that failed every attempt.
  uint64_t RetriesExhausted = 0;
  /// Duplicate calls answered from the dedup window's cached reply.
  uint64_t DedupHits = 0;
  /// Duplicate calls dropped because the first attempt was still running.
  uint64_t DedupSuppressed = 0;
  /// Two-way calls refused at admission (StatusOverloaded replies sent).
  uint64_t OverloadRejected = 0;
  /// One-way calls shed at admission (no caller to tell; just dropped).
  uint64_t OverloadShed = 0;
  /// callReliable() waits taken on a server's retry-after hint (these do
  /// not burn retry attempts; see RetryPolicy::MaxOverloadWaits).
  uint64_t OverloadDeferred = 0;
  /// callReliable() invocations that gave up on persistent Overloaded.
  uint64_t OverloadExhausted = 0;
  /// Calls queued against a parked (migrating) name.
  uint64_t CallsParked = 0;
  /// Calls forwarded to a migrated object's new home (parked replays plus
  /// stragglers hitting the moved tombstone).
  uint64_t CallsForwarded = 0;
};

/// Client-side retry configuration for callReliable(): per-attempt
/// deadline plus exponential backoff with deterministic jitter (the jitter
/// stream is seeded, so retry schedules replay exactly).  The default is
/// disabled -- callReliable() then degrades to a single plain call() and
/// the wire/event stream is untouched.
struct RetryPolicy {
  /// Total attempts (first try included).  <= 1 disables retries.
  int MaxAttempts = 1;
  /// Deadline for each individual attempt; zero disables retries.
  sim::SimTime AttemptTimeout;
  /// Per-attempt deadline escalation (TCP-RTO style): attempt k runs
  /// under AttemptTimeout * TimeoutFactor^(k-1), capped by
  /// MaxAttemptTimeout when that is non-zero.  1.0 keeps every window
  /// fixed.  Escalation lets one policy serve both short control calls
  /// (fail fast on loss) and long server-side executions, where the
  /// at-most-once window answers a late retry from the cached reply
  /// once the original execution finishes.
  double TimeoutFactor = 1.0;
  sim::SimTime MaxAttemptTimeout;
  sim::SimTime BaseBackoff = sim::SimTime::milliseconds(2);
  double BackoffFactor = 2.0;
  sim::SimTime MaxBackoff = sim::SimTime::milliseconds(200);
  /// Seed for the jitter stream; mixed with the endpoint's (node, port)
  /// so endpoints don't retry in lockstep.
  uint64_t JitterSeed = 0x7e57ab1eULL;
  /// How many StatusOverloaded rejections one logical call absorbs before
  /// callReliable() gives up with ErrorCode::Overloaded.  Rejections wait
  /// out the server's retry-after hint instead of burning MaxAttempts:
  /// the reply proved the network and the server alive, so the transport
  /// budget is the wrong thing to spend.
  int MaxOverloadWaits = 8;

  bool enabled() const {
    return MaxAttempts > 1 && AttemptTimeout > sim::SimTime();
  }
};

/// Server-side admission budget: once the endpoint's dispatch backlog
/// (pool queue + executing handlers) reaches MaxPending, new two-way calls
/// are refused with StatusOverloaded carrying a deterministic retry-after
/// hint, and one-way calls are shed.  Bounding the queue is what keeps an
/// open-loop overload from growing latency without bound -- rejected work
/// costs the server a fixed-size reply instead of an unbounded wait.
/// Disabled by default (MaxPending == 0), so fault-free wire bytes and
/// event streams are exactly the legacy ones.
struct AdmissionPolicy {
  /// Calls admitted concurrently (queued + executing).  0 disables.
  size_t MaxPending = 0;
  /// Retry-after hint = clamp(RetryAfterBase * overflow, RetryAfterBase,
  /// RetryAfterMax), where overflow = backlog - MaxPending + 1: the deeper
  /// past budget the arrival, the further out it is pushed.  Integer
  /// arithmetic on simulation state only -- the hint replays exactly.
  sim::SimTime RetryAfterBase = sim::SimTime::milliseconds(1);
  sim::SimTime RetryAfterMax = sim::SimTime::milliseconds(50);

  bool enabled() const { return MaxPending > 0; }
};

/// A combined client/server RPC endpoint on one node.
class RpcEndpoint {
public:
  /// Binds \p Port on \p Host's node and starts the dispatch loop.
  /// \p DispatchWorkers caps concurrent server-side call handling
  /// (0 = the host VM's thread-pool cap).
  RpcEndpoint(vm::Node &Host, net::Network &Net, const StackProfile &Profile,
              int Port, int DispatchWorkers = 0);
  RpcEndpoint(const RpcEndpoint &) = delete;
  RpcEndpoint &operator=(const RpcEndpoint &) = delete;
  /// Folds the endpoint stats into the global metrics registry under
  /// "rpc.<profile-slug>.*" (one channel per messaging stack).
  ~RpcEndpoint();

  vm::Node &node() { return Host; }
  int port() const { return Port; }
  const StackProfile &profile() const { return Profile; }
  const EndpointStats &stats() const { return Stats; }
  vm::ThreadPool &dispatchPool() { return Pool; }

  /// Publishes \p Object under \p Name (an explicitly instantiated
  /// singleton, like RMI's Naming.rebind of a live object).
  void publish(const std::string &Name, std::shared_ptr<CallHandler> Object);

  /// Publishes a well-known service type: the factory instantiates the
  /// object per .Net semantics (Singleton: first call; SingleCall: every
  /// call).
  void publishWellKnown(const std::string &Name, HandlerFactory Factory,
                        WellKnownObjectMode Mode);

  /// Removes a published name; returns false if it was not published.
  bool unpublish(const std::string &Name);

  /// Returns the live instance published under \p Name (null for unknown
  /// names or not-yet-instantiated well-known singletons).  Used by layers
  /// that can short-circuit local calls (the SCOOPP proxy's intra-grain
  /// path).
  std::shared_ptr<CallHandler> findPublished(const std::string &Name) const {
    auto It = Published.find(Name);
    return It == Published.end() ? nullptr : It->second.Instance;
  }
  bool isPublished(const std::string &Name) const {
    return Published.count(Name) != 0;
  }

  /// Every published name, in sorted order (the registry is an ordered
  /// map).  Deterministic iteration for rebalancing policies that pick
  /// migration victims.
  std::vector<std::string> publishedNames() const {
    std::vector<std::string> Names;
    Names.reserve(Published.size());
    for (const auto &[Name, Reg] : Published)
      Names.push_back(Name);
    return Names;
  }

  /// Two-way call: returns the result bytes produced by the remote
  /// handler, or the transported error.  A positive \p Timeout bounds the
  /// wait: if no reply arrives in time the call completes with
  /// ErrorCode::TimedOut (a late reply is then dropped), which is how
  /// callers survive simulated packet loss.
  /// \p ParentCtx is the caller's causal id (trace::mintCausalId); the
  /// call mints its own context, parents it there, and carries it on the
  /// wire so the server restores the chain.  0 (the untraced default)
  /// keeps the body byte-identical to an uninstrumented build.
  /// \p DedupId, when non-zero, rides the wire so the server can detect
  /// retransmissions of the same logical call (see callReliable); 0 (the
  /// default) adds nothing to the frame.
  sim::Task<ErrorOr<Bytes>> call(int DstNode, int DstPort,
                                 std::string ObjectName, std::string Method,
                                 Bytes Args,
                                 sim::SimTime Timeout = sim::SimTime(),
                                 uint64_t ParentCtx = 0,
                                 uint64_t DedupId = 0);

  /// Two-way call with the endpoint's RetryPolicy applied: each attempt
  /// gets the policy's deadline; timed-out attempts are retried with
  /// exponential backoff + deterministic jitter, all attempts sharing one
  /// dedup id so the server executes the method at most once (duplicates
  /// are answered from the cached reply).  With retries disabled (the
  /// default policy) this is exactly one plain call().  Non-transport
  /// errors (unknown object, remote fault, ...) are returned immediately;
  /// exhausting the budget yields ErrorCode::ConnectionFailed.
  sim::Task<ErrorOr<Bytes>> callReliable(int DstNode, int DstPort,
                                         std::string ObjectName,
                                         std::string Method, Bytes Args,
                                         uint64_t ParentCtx = 0);

  /// Installs the retry policy used by callReliable() and reseeds the
  /// jitter stream (mixed with this endpoint's node:port).
  void setRetryPolicy(const RetryPolicy &Policy) {
    Retry = Policy;
    RetryRng.reseed(Policy.JitterSeed ^
                    (static_cast<uint64_t>(static_cast<uint32_t>(Host.id()))
                     << 32) ^
                    static_cast<uint64_t>(static_cast<uint32_t>(Port)));
  }
  const RetryPolicy &retryPolicy() const { return Retry; }

  /// Installs the admission budget consulted by the dispatch loop.  The
  /// default policy admits everything (legacy behaviour).
  void setAdmissionPolicy(const AdmissionPolicy &Policy) {
    Admission = Policy;
  }
  const AdmissionPolicy &admissionPolicy() const { return Admission; }
  /// Current dispatch backlog (queued + executing calls): the quantity the
  /// admission budget bounds.
  size_t backlog() const { return AdmittedBacklog; }

  /// Where a migrated name now lives (see completeMove).
  struct MovedRoute {
    int Node = -1;
    int Port = 0;
    std::string Name;
  };

  /// Parks \p Name: calls arriving for it are queued (not executed, not
  /// entered into the dedup window) until completeMove or cancelPark.
  /// First step of a live migration -- the mailbox freezes while the
  /// object's state is captured.
  void parkName(const std::string &Name) { ParkedNames.insert(Name); }
  bool isParked(const std::string &Name) const {
    return ParkedNames.count(Name) != 0;
  }
  /// Calls currently executing against \p Name (migration drains this to
  /// zero before touching state).
  size_t inFlight(const std::string &Name) const {
    auto It = InFlightByName.find(Name);
    return It == InFlightByName.end() ? 0 : It->second;
  }
  /// Calls parked against \p Name so far.
  size_t parkedCalls(const std::string &Name) const {
    auto It = ParkedByName.find(Name);
    return It == ParkedByName.end() ? 0 : It->second.size();
  }

  /// Atomically (no suspension) finishes a migration: drops the park,
  /// installs the moved tombstone and forwards every parked call -- and,
  /// from now on, every straggler -- to \p Dst under its new name.
  /// Forwarded frames keep the original CallId, reply coordinates and
  /// dedup id, so the destination replies straight to the caller and its
  /// dedup window absorbs retransmissions: exactly-once survives the move.
  void completeMove(const std::string &Name, const MovedRoute &Dst);

  /// Abandons a park (migration aborted): parked calls are re-delivered
  /// locally over the loopback so the still-published source copy serves
  /// them as if the park never happened.
  void cancelPark(const std::string &Name);

  /// The moved tombstone for \p Name (null when it never migrated away).
  const MovedRoute *movedRoute(const std::string &Name) const {
    auto It = Moved.find(Name);
    return It == Moved.end() ? nullptr : &It->second;
  }

  /// One-way (asynchronous, no result) call: returns once the message has
  /// been handed to the NIC; remote faults are dropped, as with .Net
  /// one-way delegate invocations.
  sim::Task<void> callOneWay(int DstNode, int DstPort, std::string ObjectName,
                             std::string Method, Bytes Args,
                             uint64_t ParentCtx = 0);

private:
  enum MsgKind : uint8_t { KindCall = 0xC1, KindReturn = 0xC2 };
  /// FlagHasContext marks a body whose flags byte is followed by the
  /// causal-context header (serial::encodeCausalContext) -- present only
  /// on traced runs, so untraced wire bytes are unchanged.  FlagHasDedup
  /// marks a body carrying a dedup id after the (optional) context --
  /// present only on callReliable() attempts, so plain calls are likewise
  /// unchanged.
  enum CallFlags : uint8_t {
    FlagOneWay = 0x01,
    FlagHasContext = 0x02,
    FlagHasDedup = 0x04,
  };
  enum ReturnStatus : uint8_t {
    StatusOk = 0,
    StatusFault = 1,
    /// Admission refused the call; the reply tail is a uint64 retry-after
    /// hint in nanoseconds.
    StatusOverloaded = 2,
  };

  struct Registration {
    WellKnownObjectMode Mode = WellKnownObjectMode::Singleton;
    HandlerFactory Factory;
    std::shared_ptr<CallHandler> Instance;
  };

  /// Cost of pushing/pulling \p WireBytes through this stack on one side.
  sim::SimTime sideCost(size_t WireBytes) const;

  /// Frames carry a CRC32 trailer only while a fault hook is installed on
  /// the network (corruption is possible); fault-free runs keep the exact
  /// legacy wire bytes.
  bool wireChecksums() const { return Net.faultHook() != nullptr; }

  /// First contact with a destination pays the stack's connection setup.
  sim::Task<void> ensureConnected(int DstNode, int DstPort);

  /// Builds the final wire buffer for a message body: kind byte, envelope
  /// and (for HTTP stacks) the header, emitted into one reserved buffer.
  Bytes frame(MsgKind Kind, std::string_view EnvelopeName, const Bytes &Body,
              bool Response) const;
  /// Strips transport framing; returns a view of the (kind, envelope)
  /// content inside \p Wire -- headers are parsed in place, nothing is
  /// copied.  The view is valid as long as \p Wire is.
  ErrorOr<std::span<const uint8_t>> unframe(const Bytes &Wire) const;

  /// One two-way call awaiting its reply: the promise plus the causal id
  /// minted at issue (so the reply links back into the DAG).
  struct PendingCall {
    sim::Promise<ErrorOr<Bytes>> Reply;
    uint64_t Ctx = 0;
  };

  /// Remembers a timed-out call id (bounded FIFO) so its late reply is
  /// classified as LateReplies rather than MalformedDropped.
  void noteTimedOut(uint64_t CallId);

  sim::Task<void> dispatchLoop();
  /// \p RecvNs is when the dispatch loop pulled the message off the wire
  /// (the rpc.dispatch_queue span start; 0 on untraced runs).
  sim::Task<void> handleCall(net::Message Msg, int64_t RecvNs);
  sim::Task<void> handleCallInner(net::Message Msg, int64_t RecvNs);
  void handleReturn(std::span<const uint8_t> Content, int64_t RecvNs,
                    uint64_t WireCtx);

  /// A call held back by a park (or replayed to a moved object): the
  /// parsed body fields needed to rebuild an equivalent frame.
  struct ParkedCall {
    uint64_t CallId = 0;
    uint8_t Flags = 0;
    uint64_t WireCtx = 0, WireParent = 0;
    uint64_t DedupId = 0;
    int32_t ReplyNode = 0, ReplyPort = 0;
    std::string Method;
    Bytes Args;
  };

  /// Rebuilds \p P's frame under \p Route's object name and hands it to
  /// the NIC towards Route.Node (the loopback when that is this node).
  void forwardCall(const ParkedCall &P, const MovedRoute &Route);

  /// Runs on the dispatch path for an overload rejection: re-parses the
  /// minimal body prefix and answers StatusOverloaded (or sheds a
  /// one-way call).  Deterministic: the hint is pure backlog arithmetic.
  sim::Task<void> rejectOverloaded(net::Message Msg);

  ErrorOr<std::shared_ptr<CallHandler>> resolveTarget(const std::string &Name);

  vm::Node &Host;
  net::Network &Net;
  const StackProfile &Profile;
  int Port;
  vm::ThreadPool Pool;
  std::map<std::string, Registration> Published;
  std::unordered_map<uint64_t, PendingCall> PendingCalls;
  /// Destinations we already hold a connection to.
  std::set<std::pair<int, int>> Connected;
  uint64_t NextCallId = 1;
  /// Logical-call ids for callReliable(); a separate counter so retries
  /// of one logical call share an id while each attempt keeps a fresh
  /// CallId.
  uint64_t NextDedupId = 1;
  RetryPolicy Retry;
  AdmissionPolicy Admission;
  /// Calls admitted but not yet finished (pool queue + executing): the
  /// backlog the admission budget bounds.  Maintained even with admission
  /// disabled (one integer) so the policy can be enabled mid-run.
  size_t AdmittedBacklog = 0;
  /// Names frozen by an in-progress migration.
  std::set<std::string> ParkedNames;
  /// FIFO of calls held per parked name, replayed at completeMove /
  /// cancelPark.
  std::map<std::string, std::vector<ParkedCall>> ParkedByName;
  /// Tombstones for names that migrated away: stragglers are forwarded.
  std::map<std::string, MovedRoute> Moved;
  /// Calls currently executing, per target name (migration drains these).
  std::map<std::string, size_t> InFlightByName;
  /// Jitter stream for retry backoff (seeded; see setRetryPolicy).
  Rng RetryRng;
  /// Recently timed-out call ids, bounded FIFO: distinguishes a late
  /// reply (expected under loss) from a genuinely unknown call id.
  std::unordered_set<uint64_t> TimedOutIds;
  std::deque<uint64_t> TimedOutOrder;
  static constexpr size_t MaxTimedOutRemembered = 128;
  /// Server-side at-most-once window, keyed by the caller's identity plus
  /// its logical-call id.  An entry is born in-progress when the first
  /// attempt starts executing and caches the reply tail (everything after
  /// the CallId) once done; FIFO-evicted.
  struct DedupEntry {
    bool Done = false;
    Bytes ReplyTail;
  };
  using DedupKey = std::tuple<int32_t, int32_t, uint64_t>;
  std::map<DedupKey, DedupEntry> DedupWindow;
  std::deque<DedupKey> DedupOrder;
  static constexpr size_t DedupWindowCap = 256;
  /// Host restart hook that clears in-progress dedup entries (their
  /// handlers died with the crash and would otherwise block retries).
  uint64_t RestartHookId = 0;
  EndpointStats Stats;
  /// "rpc.<profile-slug>" -- the per-channel metric namespace.
  std::string MetricsPrefix;
  /// Round-trip latency of two-way calls, sampled as calls complete
  /// (registry histograms have stable addresses, so caching is safe).
  metrics::Histogram *CallLatency = nullptr;
  /// Staging buffer for HTTP-framed content (the header needs the content
  /// length up front); capacity is reused across calls.
  mutable Bytes EnvScratch;
};

} // namespace parcs::remoting

#endif // PARCS_REMOTING_ENGINE_H
