//===- prof/Prof.h - Causal critical-path analyzer ---------------*- C++ -*-===//
//
// Part of the ParC# reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline analyzer for the trace exports produced by support/Trace: loads
/// the Chrome trace-event JSON, reconstructs the happens-before DAG from
/// the causal-context annotations (args.ctx / args.parent plus rpc.link
/// edges), extracts the critical path ending at the latest-finishing DAG
/// node, and attributes every nanosecond of it to a segment class:
///
///   compute | serialize | send-queue | wire | deserialize |
///   dispatch-queue | execute
///
/// Everything runs on deterministic simulated time, so repeated analyses
/// of the same trace are byte-identical -- reports are diffable artefacts.
///
/// The DAG model:
///  - every ctx-bearing event is a node (spans have extent, ctx instants
///    are zero-width); events sharing a ctx merge into one node whose
///    parent set is the union of the events' parents;
///  - "rpc.link" instants are pure edges: they add args.parent to the
///    parent set of the node identified by args.ctx (used where a
///    causal join cannot be expressed in a single event, e.g. the serve
///    span joining the unmarshal chain, or a reply joining its call);
///  - walking backwards, the critical predecessor of a node is the
///    latest-ending candidate among (a) its declared parents and (b) the
///    latest node on the same pid that ended at or before the node's
///    start (the gap-jump rule: untagged local work keeping the CPU busy
///    shows up as a compute gap rather than a hole in the path).
///
//===----------------------------------------------------------------------===//

#ifndef PARCS_PROF_PROF_H
#define PARCS_PROF_PROF_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parcs::prof {

/// Attribution classes for critical-path segments.
enum class SegClass {
  Compute,
  Serialize,
  SendQueue,
  Wire,
  Deserialize,
  DispatchQueue,
  Execute,
};

/// Printable name ("compute", "send-queue", ...).
const char *segClassName(SegClass C);

/// Maps a span name to its segment class.  Unknown names are Compute: a
/// span we cannot classify was still simulated work on some node.
SegClass classify(const std::string &Name);

/// One node of the happens-before DAG (a ctx-bearing span or instant
/// after merging events that share a ctx).
struct DagNode {
  std::string Name;
  int Pid = 0;
  int64_t StartNs = 0;
  int64_t EndNs = 0;
  uint64_t Ctx = 0;
  /// Declared predecessors (args.parent of the merged events plus any
  /// rpc.link edges).  Sorted, deduplicated.
  std::vector<uint64_t> Parents;
  /// True when either half of an async pair was lost to ring-buffer wrap:
  /// the extent is a lower bound, not the truth.
  bool Truncated = false;
};

/// A parsed trace: the DAG plus the overall event-time window.
struct TraceData {
  std::vector<DagNode> Nodes;
  /// Window over the DAG nodes ([first start, last end]); the denominator
  /// of the coverage figure.
  int64_t RunStartNs = 0;
  int64_t RunEndNs = 0;
  /// Total events seen in the export (spans, instants, counters, ...).
  size_t EventCount = 0;
};

/// Parses a Chrome trace-event JSON export (the exact shape
/// trace::exportJson emits).  Async begin/end halves are matched through
/// their pid-scoped ids; halves marked truncated produce truncated nodes.
ErrorOr<TraceData> loadTrace(std::string_view Json);

/// Convenience: reads \p Path and calls loadTrace.
ErrorOr<TraceData> loadTraceFile(const std::string &Path);

/// One attributed slice of the critical path, in increasing time order.
/// Gap segments (time the path crosses without a covering node) carry the
/// name "<gap>" and class Compute.
struct Segment {
  std::string Name;
  SegClass Class = SegClass::Compute;
  int Pid = 0;
  int64_t StartNs = 0;
  int64_t EndNs = 0;
  int64_t durationNs() const { return EndNs - StartNs; }
};

/// The extracted critical path with per-class attribution.
struct Analysis {
  int64_t RunStartNs = 0;
  int64_t RunEndNs = 0;
  int64_t runNs() const { return RunEndNs - RunStartNs; }
  /// Sum of segment durations (== the covered portion of the run window).
  int64_t CriticalNs = 0;
  std::vector<Segment> Segments;
  /// (class, total ns) for every class, fixed order (enum order), zeros
  /// included -- stable layout for diffing.
  std::vector<std::pair<SegClass, int64_t>> ByClass;
  /// CriticalNs / runNs, in [0, 1]; 0 when the window is empty.
  double coverage() const;
  /// True when any node on the path was truncated at ring wrap.
  bool SawTruncated = false;
};

/// Extracts the critical path of \p Trace.  Deterministic: equal inputs
/// produce equal outputs, byte for byte.
Analysis analyze(const TraceData &Trace);

/// Renders the human-readable report (per-class table, then the path's
/// segments newest-last).  \p MaxSegments truncates the segment listing
/// (0 = all).
std::string textReport(const Analysis &A, size_t MaxSegments = 0);

/// Renders a collapsed-stack flamegraph ("parcs;<class>;<name> <ns>" per
/// line, sorted), foldable by the usual flamegraph.pl / speedscope tools.
std::string flamegraph(const Analysis &A);

} // namespace parcs::prof

#endif // PARCS_PROF_PROF_H
